// Tests for the structured hex mesh: connectivity invariants, geometry,
// boundary detection, chunking.
#include <gtest/gtest.h>

#include <set>

#include "fem/mesh.h"
#include "fem/state.h"
#include "solver/csr.h"

namespace {

using vecfd::fem::kDim;
using vecfd::fem::kNodes;
using vecfd::fem::Mesh;
using vecfd::fem::MeshConfig;

TEST(Mesh, NodeAndElementCounts) {
  const Mesh m({.nx = 4, .ny = 3, .nz = 2});
  EXPECT_EQ(m.num_elements(), 24);
  EXPECT_EQ(m.num_nodes(), 5 * 4 * 3);
}

TEST(Mesh, ConnectivityInRangeAndDistinct) {
  const Mesh m({.nx = 3, .ny = 3, .nz = 3});
  for (int e = 0; e < m.num_elements(); ++e) {
    const auto ln = m.element(e);
    std::set<int> seen;
    for (int a = 0; a < kNodes; ++a) {
      EXPECT_GE(ln[a], 0);
      EXPECT_LT(ln[a], m.num_nodes());
      seen.insert(ln[a]);
    }
    EXPECT_EQ(seen.size(), 8u) << "degenerate element " << e;
  }
}

TEST(Mesh, EveryNodeBelongsToSomeElement) {
  const Mesh m({.nx = 3, .ny = 2, .nz = 2});
  std::set<int> touched;
  for (int e = 0; e < m.num_elements(); ++e) {
    for (int a = 0; a < kNodes; ++a) touched.insert(m.element(e)[a]);
  }
  EXPECT_EQ(static_cast<int>(touched.size()), m.num_nodes());
}

TEST(Mesh, UndistortedCoordinatesAreCartesian) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 2, .lx = 2.0, .ly = 2.0, .lz = 2.0,
                .distortion = 0.0});
  const auto x0 = m.node(0);
  EXPECT_DOUBLE_EQ(x0[0], 0.0);
  EXPECT_DOUBLE_EQ(x0[1], 0.0);
  EXPECT_DOUBLE_EQ(x0[2], 0.0);
  const auto xlast = m.node(m.num_nodes() - 1);
  EXPECT_DOUBLE_EQ(xlast[0], 2.0);
  EXPECT_DOUBLE_EQ(xlast[1], 2.0);
  EXPECT_DOUBLE_EQ(xlast[2], 2.0);
}

TEST(Mesh, BoundaryNodesStayOnBox) {
  const Mesh m({.nx = 4, .ny = 4, .nz = 4, .distortion = 0.1});
  int boundary_count = 0;
  for (int n = 0; n < m.num_nodes(); ++n) {
    if (!m.is_boundary_node(n)) continue;
    ++boundary_count;
    const auto x = m.node(n);
    const bool on_face = x[0] == 0.0 || x[0] == 1.0 || x[1] == 0.0 ||
                         x[1] == 1.0 || x[2] == 0.0 || x[2] == 1.0;
    EXPECT_TRUE(on_face);
  }
  // 5^3 nodes, 3^3 interior
  EXPECT_EQ(boundary_count, 125 - 27);
}

TEST(Mesh, NodeAdjacencyIsSymmetric) {
  const Mesh m({.nx = 3, .ny = 3, .nz = 2});
  const auto adj = m.node_adjacency();
  ASSERT_EQ(static_cast<int>(adj.size()), m.num_nodes());
  for (int i = 0; i < m.num_nodes(); ++i) {
    for (int j : adj[i]) {
      const auto& back = adj[j];
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end())
          << i << "<->" << j;
    }
  }
}

TEST(Mesh, InteriorNodeHas27Neighbours) {
  const Mesh m({.nx = 4, .ny = 4, .nz = 4});
  const auto adj = m.node_adjacency();
  // center node of the 5x5x5 lattice
  const int c = 2 + 5 * (2 + 5 * 2);
  std::set<int> uniq(adj[c].begin(), adj[c].end());
  EXPECT_EQ(uniq.size(), 27u);
}

TEST(Mesh, ChunkingCoversAllElementsOnce) {
  const Mesh m({.nx = 5, .ny = 3, .nz = 2});  // 30 elements
  const int vs = 8;
  EXPECT_EQ(m.num_chunks(vs), 4);
  int covered = 0;
  for (int c = 0; c < m.num_chunks(vs); ++c) {
    const auto r = m.chunk(vs, c);
    EXPECT_EQ(r.first, c * vs);
    covered += r.count;
    if (c < 3) {
      EXPECT_EQ(r.count, 8);
    }
  }
  EXPECT_EQ(covered, 30);
  EXPECT_EQ(m.chunk(vs, 3).count, 6);  // tail
}

TEST(Mesh, ChunkErrors) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 2});
  EXPECT_THROW(m.num_chunks(0), std::invalid_argument);
  EXPECT_THROW(m.chunk(4, -1), std::out_of_range);
  EXPECT_THROW(m.chunk(4, 2), std::out_of_range);
}

TEST(Mesh, ConfigValidation) {
  EXPECT_THROW(Mesh({.nx = 0}), std::invalid_argument);
  EXPECT_THROW(Mesh({.nx = 2, .ny = 2, .nz = 2, .lx = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(Mesh({.nx = 2, .ny = 2, .nz = 2, .distortion = 0.5}),
               std::invalid_argument);
}

TEST(Mesh, MaterialBands) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 4});
  // lower half band 0, upper half band 1
  EXPECT_EQ(m.material(0), 0);
  EXPECT_EQ(m.material(m.num_elements() - 1), 1);
}

// ---- state ------------------------------------------------------------

TEST(State, DeterministicInitialization) {
  const Mesh m({.nx = 3, .ny = 3, .nz = 3});
  const vecfd::fem::State s1(m);
  const vecfd::fem::State s2(m);
  ASSERT_EQ(s1.unknowns().size(), s2.unknowns().size());
  for (std::size_t i = 0; i < s1.unknowns().size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.unknowns()[i], s2.unknowns()[i]);
  }
}

TEST(State, OldLevelIsDecayedVelocity) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 2});
  const vecfd::fem::State s(m);
  for (int n = 0; n < s.num_nodes(); ++n) {
    for (int d = 0; d < kDim; ++d) {
      EXPECT_DOUBLE_EQ(s.velocity_old(n, d), 0.95 * s.velocity(n, d));
    }
  }
}

TEST(State, PushTimeLevelRotates) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 2});
  vecfd::fem::State s(m);
  const double u_before = s.velocity(3, 1);
  const double p_before = s.pressure(3);
  std::vector<double> newv(static_cast<std::size_t>(s.num_nodes()) * kDim,
                           7.5);
  s.push_time_level(newv);
  EXPECT_DOUBLE_EQ(s.velocity(3, 1), 7.5);
  EXPECT_DOUBLE_EQ(s.velocity_old(3, 1), u_before);
  EXPECT_DOUBLE_EQ(s.pressure(3), p_before);  // pressure carried over
  EXPECT_THROW(s.push_time_level(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(State, RejectsNonPhysicalParameters) {
  const Mesh m({.nx = 2, .ny = 2, .nz = 2});
  vecfd::fem::Physics bad;
  bad.dt = 0.0;
  EXPECT_THROW(vecfd::fem::State(m, bad), std::invalid_argument);
  bad = {};
  bad.density = -1.0;
  EXPECT_THROW(vecfd::fem::State(m, bad), std::invalid_argument);
}


// ---- shuffled node numbering -------------------------------------------

TEST(MeshShuffle, PreservesConnectivityInvariants) {
  const Mesh m({.nx = 3, .ny = 3, .nz = 3, .shuffle_nodes = true});
  std::set<int> touched;
  for (int e = 0; e < m.num_elements(); ++e) {
    const auto ln = m.element(e);
    std::set<int> seen;
    for (int a = 0; a < kNodes; ++a) {
      ASSERT_GE(ln[a], 0);
      ASSERT_LT(ln[a], m.num_nodes());
      seen.insert(ln[a]);
      touched.insert(ln[a]);
    }
    EXPECT_EQ(seen.size(), 8u);
  }
  EXPECT_EQ(static_cast<int>(touched.size()), m.num_nodes());
}

TEST(MeshShuffle, SameGeometryDifferentNumbering) {
  const Mesh ordered({.nx = 3, .ny = 3, .nz = 3, .distortion = 0.0});
  const Mesh shuffled(
      {.nx = 3, .ny = 3, .nz = 3, .distortion = 0.0, .shuffle_nodes = true});
  // element 5's node coordinates must coincide as unordered sets
  auto coords_of = [](const Mesh& m, int e) {
    std::multiset<double> s;
    for (int a = 0; a < kNodes; ++a) {
      const auto x = m.node(m.element(e)[a]);
      s.insert(x[0] + 10.0 * x[1] + 100.0 * x[2]);
    }
    return s;
  };
  for (int e = 0; e < ordered.num_elements(); e += 7) {
    EXPECT_EQ(coords_of(ordered, e), coords_of(shuffled, e));
  }
  // and the numbering really is different
  bool any_diff = false;
  for (int e = 0; e < ordered.num_elements(); ++e) {
    for (int a = 0; a < kNodes; ++a) {
      if (ordered.element(e)[a] != shuffled.element(e)[a]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MeshShuffle, BoundaryFlagsFollowTheNodes) {
  const Mesh m({.nx = 4, .ny = 4, .nz = 4, .shuffle_nodes = true});
  int boundary_count = 0;
  for (int n = 0; n < m.num_nodes(); ++n) {
    if (m.is_boundary_node(n)) ++boundary_count;
  }
  EXPECT_EQ(boundary_count, 125 - 27);
}

TEST(MeshShuffle, DeterministicAcrossInstances) {
  const Mesh a({.nx = 3, .ny = 2, .nz = 2, .shuffle_nodes = true});
  const Mesh b({.nx = 3, .ny = 2, .nz = 2, .shuffle_nodes = true});
  for (int e = 0; e < a.num_elements(); ++e) {
    for (int aa = 0; aa < kNodes; ++aa) {
      EXPECT_EQ(a.element(e)[aa], b.element(e)[aa]);
    }
  }
}

TEST(RcmOrdering, IsAValidDeterministicPermutation) {
  const Mesh m({.nx = 4, .ny = 3, .nz = 3, .shuffle_nodes = true});
  const auto adjacency = m.node_adjacency();
  const auto perm = vecfd::fem::rcm_ordering(adjacency);
  ASSERT_EQ(static_cast<int>(perm.size()), m.num_nodes());
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<int>(seen.size()), m.num_nodes());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), m.num_nodes() - 1);
  EXPECT_EQ(perm, vecfd::fem::rcm_ordering(adjacency));  // deterministic
}

TEST(RcmOrdering, ShrinksOperatorBandwidthOfAShuffledMesh) {
  const Mesh m({.nx = 6, .ny = 6, .nz = 6, .shuffle_nodes = true});
  const auto adjacency = m.node_adjacency();
  const vecfd::solver::CsrMatrix a(adjacency);
  const auto perm = vecfd::fem::rcm_ordering(adjacency);
  const vecfd::solver::CsrMatrix ap =
      vecfd::solver::permute_symmetric(a, perm);
  // a shuffled numbering has bandwidth ~num_nodes; RCM restores the
  // plane-by-plane profile of the structured mesh (≲ 2 planes of nodes)
  EXPECT_GT(vecfd::solver::bandwidth(a), m.num_nodes() / 2);
  EXPECT_LT(vecfd::solver::bandwidth(ap), 3 * 7 * 7);
  // RCM never loses entries: same pattern size, symmetric permutation
  EXPECT_EQ(ap.nnz(), a.nnz());
}

TEST(RcmOrdering, HandlesDisconnectedComponentsAndSelfEdges) {
  // two disconnected paths (0-1-2) and (3-4), with noisy self/duplicate
  // edges the helper must ignore
  const std::vector<std::vector<int>> adjacency = {
      {1, 1, 0}, {0, 2}, {1, 2}, {4}, {3, 3}};
  const auto perm = vecfd::fem::rcm_ordering(adjacency);
  ASSERT_EQ(perm.size(), 5u);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 5u);
}
}  // namespace
