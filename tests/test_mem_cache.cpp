// Unit tests for the cache and memory-hierarchy substrate.
#include <gtest/gtest.h>
#include "sanitizer_support.h"

#include <vector>

#include "mem/cache.h"
#include "mem/memory_hierarchy.h"

namespace {

using vecfd::mem::Cache;
using vecfd::mem::CacheConfig;
using vecfd::mem::HierarchyConfig;
using vecfd::mem::MemoryHierarchy;

CacheConfig small_cache() {
  return {.size_bytes = 1024, .line_bytes = 64, .associativity = 2,
          .name = "t"};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x103F));  // same 64B line
  EXPECT_FALSE(c.access(0x1040)); // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, GeometryDerivedSets) {
  Cache c(small_cache());
  // 1024 / (64 * 2) = 8 sets
  EXPECT_EQ(c.config().num_sets(), 8u);
}

// The cache XOR-folds upper line bits into the set index; with 8 sets,
// lines 0, 9 and 18 all fold to set 0 (l ^ (l >> 3) ≡ 0 mod 8).
TEST(Cache, LruEvictionWithinSet) {
  Cache c(small_cache());  // 8 sets, 2 ways
  const std::uintptr_t a = 0 * 64;
  const std::uintptr_t b = 9 * 64;
  const std::uintptr_t d = 18 * 64;
  EXPECT_FALSE(c.access(a));
  EXPECT_FALSE(c.access(b));
  EXPECT_TRUE(c.access(a));   // a is now MRU
  EXPECT_FALSE(c.access(d));  // evicts b (LRU)
  EXPECT_TRUE(c.access(a));
  EXPECT_FALSE(c.access(b));  // b was evicted
}

TEST(Cache, PrefersInvalidWayOverEviction) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x0));
  c.flush();
  EXPECT_EQ(c.resident_lines(), 0u);
  EXPECT_FALSE(c.access(0 * 64));
  EXPECT_FALSE(c.access(9 * 64));  // same folded set as line 0
  EXPECT_EQ(c.resident_lines(), 2u);
  // both lines coexist in the 2-way set
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_TRUE(c.access(9 * 64));
}

TEST(Cache, ZeroCapacityAlwaysMisses) {
  Cache c({.size_bytes = 0, .line_bytes = 64, .associativity = 0,
           .name = "null"});
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(c.access(0x40));
  EXPECT_EQ(c.misses(), 4u);
}

TEST(Cache, RejectsNonPowerOfTwoLine) {
  EXPECT_THROW(Cache({.size_bytes = 1024, .line_bytes = 48,
                      .associativity = 2, .name = "bad"}),
               std::invalid_argument);
}

TEST(Cache, RejectsZeroAssociativityWithCapacity) {
  EXPECT_THROW(Cache({.size_bytes = 1024, .line_bytes = 64,
                      .associativity = 0, .name = "bad"}),
               std::invalid_argument);
}

TEST(Cache, RejectsCapacitySmallerThanOneSet) {
  EXPECT_THROW(Cache({.size_bytes = 64, .line_bytes = 64,
                      .associativity = 4, .name = "bad"}),
               std::invalid_argument);
}

TEST(Cache, FlushPreservesCounters) {
  Cache c(small_cache());
  c.access(0x0);
  c.access(0x0);
  c.flush();
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_FALSE(c.access(0x0));  // cold again after flush
}

// ---- hierarchy ----------------------------------------------------------

HierarchyConfig small_hier() {
  HierarchyConfig h;
  h.l1 = {.size_bytes = 1024, .line_bytes = 64, .associativity = 2,
          .name = "L1"};
  h.l2 = {.size_bytes = 8192, .line_bytes = 64, .associativity = 4,
          .name = "L2"};
  h.l1_latency = 0.0;
  h.l2_latency = 10.0;
  h.mem_latency = 100.0;
  return h;
}

TEST(MemoryHierarchy, LatencyAttributionPerLevel) {
  MemoryHierarchy mh(small_hier());
  auto r1 = mh.access(0x1000);
  EXPECT_EQ(r1.level, 3);  // cold: memory
  EXPECT_DOUBLE_EQ(r1.penalty, 110.0);
  auto r2 = mh.access(0x1000);
  EXPECT_EQ(r2.level, 1);  // L1 hit
  EXPECT_DOUBLE_EQ(r2.penalty, 0.0);
}

TEST(MemoryHierarchy, L2CatchesL1Evictions) {
  MemoryHierarchy mh(small_hier());
  // The hierarchy renames host lines in first-touch order, so touching 19
  // distinct lines in ascending order populates canonical lines 0..18.
  // Canonical lines 0, 9, 18 share an L1 set under the folded index (8
  // sets, 2 ways), so line 18 evicts line 0 from L1 — but not from L2.
  for (std::uintptr_t l = 0; l <= 18; ++l) mh.access(l * 64);
  auto r = mh.access(0 * 64);
  EXPECT_EQ(r.level, 2);
  EXPECT_DOUBLE_EQ(r.penalty, 10.0);
}

TEST(MemoryHierarchy, CanonicalizationErasesAllocatorPlacement) {
  // Two access sequences that differ only in absolute placement must
  // produce identical hit/miss behaviour.
  MemoryHierarchy a(small_hier());
  MemoryHierarchy b(small_hier());
  const std::uintptr_t offsets[] = {0, 64, 4096, 64, 1 << 20, 0};
  for (std::uintptr_t off : offsets) (void)a.access(0x10000 + off);
  for (std::uintptr_t off : offsets) (void)b.access(0x7fff0000 + off);
  EXPECT_EQ(a.l1_misses(), b.l1_misses());
  EXPECT_EQ(a.l2_misses(), b.l2_misses());
  EXPECT_EQ(a.l1_accesses(), b.l1_accesses());
}

TEST(MemoryHierarchy, GlobalAllocationsAreLineAligned) {
  VECFD_SKIP_UNDER_ASAN();
  // mem/aligned_new.cpp pins every heap allocation to the largest modelled
  // line size (128 bytes, SX-Aurora); the determinism story depends on it,
  // so fail loudly if the replacement operator new was not linked in.
  for (std::size_t n : {1ul, 8ul, 100ul, 4097ul}) {
    std::vector<double> v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 128, 0u) << n;
  }
}

TEST(MemoryHierarchy, MismatchedLineSizesAreRejected) {
  HierarchyConfig h = small_hier();
  h.l2.line_bytes = 128;
  EXPECT_THROW(MemoryHierarchy{h}, std::invalid_argument);
}

TEST(MemoryHierarchy, TouchRangeCountsLines) {
  MemoryHierarchy mh(small_hier());
  std::uint64_t misses = 0;
  // 129 bytes starting inside a line → 3 lines
  const double penalty = mh.touch_range(0x100 + 32, 129, &misses);
  EXPECT_EQ(misses, 3u);
  EXPECT_DOUBLE_EQ(penalty, 3 * 110.0);
  EXPECT_EQ(mh.l1_accesses(), 3u);
}

TEST(MemoryHierarchy, TouchRangeZeroBytesIsFree) {
  MemoryHierarchy mh(small_hier());
  EXPECT_DOUBLE_EQ(mh.touch_range(0x100, 0), 0.0);
  EXPECT_EQ(mh.l1_accesses(), 0u);
}

TEST(MemoryHierarchy, StreamLargerThanL1StaysL2Resident) {
  MemoryHierarchy mh(small_hier());
  // stream 4 KB (64 lines): larger than L1 (1 KB), fits L2 (8 KB)
  for (int pass = 0; pass < 2; ++pass) {
    mh.touch_range(0x0, 4096);
  }
  // second pass must have been served from L2, not memory
  EXPECT_EQ(mh.l2_misses(), 64u);
  EXPECT_GT(mh.l1_misses(), 64u);  // first pass + second-pass L1 misses
}

}  // namespace
