// Tests for the thread-parallel sweep engine: the parallel fan-out must be
// indistinguishable from the serial loop — same measurements, same order,
// byte-identical CSV — at any job count.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/csv.h"
#include "core/experiment.h"
#include "sanitizer_support.h"

namespace {

using vecfd::core::Experiment;
using vecfd::core::Measurement;
using vecfd::core::SweepPoint;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::OptLevel;
using vecfd::platforms::riscv_vec;
using vecfd::platforms::sx_aurora;

struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 4, .nz = 2}), state(mesh) {}
  vecfd::fem::Mesh mesh;
  vecfd::fem::State state;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string csv_of(const std::vector<Measurement>& ms) {
  std::ostringstream os;
  vecfd::core::write_csv(os, ms);
  return os.str();
}

constexpr int kSizes[] = {8, 16, 32};

TEST(ParallelSweep, GridMatchesSerialByteForByte) {
  VECFD_SKIP_UNDER_ASAN();
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;

  // Cover both modelled line sizes: riscv-vec (64 B) and sx-aurora (128 B).
  // The 128 B platform is the one that breaks if heap alignment ever drops
  // below the largest modelled line again.
  for (const auto& machine : {riscv_vec(), sx_aurora()}) {
    const auto serial = ex.sweep_grid(machine, cfg, kSizes,
                                      vecfd::core::kSweepOptLevels,
                                      /*jobs=*/1);
    const auto parallel = ex.sweep_grid(machine, cfg, kSizes,
                                        vecfd::core::kSweepOptLevels,
                                        /*jobs=*/4);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(csv_of(serial), csv_of(parallel)) << machine.name;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].app.vector_size, parallel[i].app.vector_size);
      EXPECT_EQ(serial[i].app.opt, parallel[i].app.opt);
      EXPECT_DOUBLE_EQ(serial[i].total_cycles, parallel[i].total_cycles);
      EXPECT_EQ(serial[i].rhs, parallel[i].rhs);
    }
  }
}

TEST(ParallelSweep, GridIsSizeMajorInPaperLevelOrder) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const auto grid = ex.sweep_grid(riscv_vec(), MiniAppConfig{}, kSizes,
                                  vecfd::core::kSweepOptLevels, 2);
  constexpr std::size_t nopts = std::size(vecfd::core::kSweepOptLevels);
  ASSERT_EQ(grid.size(), std::size(kSizes) * nopts);
  for (std::size_t si = 0; si < std::size(kSizes); ++si) {
    for (std::size_t oi = 0; oi < nopts; ++oi) {
      const auto& m = grid[si * nopts + oi];
      EXPECT_EQ(m.app.vector_size, kSizes[si]);
      EXPECT_EQ(m.app.opt, vecfd::core::kSweepOptLevels[oi]);
    }
  }
}

TEST(ParallelSweep, RunPointsPreservesPointOrder) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  std::vector<SweepPoint> points;
  for (int vs : kSizes) {
    MiniAppConfig cfg;
    cfg.vector_size = vs;
    points.push_back({riscv_vec(), cfg});
    points.push_back({sx_aurora(), cfg});
  }
  const auto ms = ex.run_points(points, 3);
  ASSERT_EQ(ms.size(), points.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(ms[i].machine.name, points[i].machine.name);
    EXPECT_EQ(ms[i].app.vector_size, points[i].app.vector_size);
  }
}

TEST(ParallelSweep, SizeAndLevelSweepsMatchSingleRuns) {
  VECFD_SKIP_UNDER_ASAN();
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  const auto by_size = ex.sweep_vector_sizes(riscv_vec(), cfg, kSizes, 4);
  ASSERT_EQ(by_size.size(), std::size(kSizes));
  for (std::size_t i = 0; i < by_size.size(); ++i) {
    cfg.vector_size = kSizes[i];
    EXPECT_DOUBLE_EQ(by_size[i].total_cycles,
                     ex.run(riscv_vec(), cfg).total_cycles);
  }

  cfg.vector_size = 16;
  const auto by_level =
      ex.sweep_opt_levels(riscv_vec(), cfg, vecfd::core::kAllOptLevels, 4);
  ASSERT_EQ(by_level.size(), std::size(vecfd::core::kAllOptLevels));
  for (std::size_t i = 0; i < by_level.size(); ++i) {
    cfg.opt = vecfd::core::kAllOptLevels[i];
    EXPECT_DOUBLE_EQ(by_level[i].total_cycles,
                     ex.run(riscv_vec(), cfg).total_cycles);
  }
}

TEST(ParallelSweep, EmptyPointListIsFine) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  EXPECT_TRUE(ex.run_points({}, 8).empty());
}

TEST(ParallelSweep, WorkerExceptionPropagates) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  std::vector<SweepPoint> points;
  MiniAppConfig cfg;
  points.push_back({riscv_vec(), cfg});
  cfg.vector_size = -1;  // MiniApp ctor throws
  points.push_back({riscv_vec(), cfg});
  EXPECT_THROW((void)ex.run_points(points, 2), std::invalid_argument);
}

}  // namespace
