// SELL-C-σ storage tests (solver/sell.h): layout invariants of the
// σ-window sort, bitwise SpMV equality against the host CSR product on
// every platform, the gather-coalescing fast path, and the pad-lane
// hygiene contract — a masked pad lane must generate ZERO cache-line
// traffic, unlike the old own-row padding that polluted the simulated
// cache with fake locality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "fem/mesh.h"
#include "platforms/platforms.h"
#include "solver/csr.h"
#include "solver/sell.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::CsrMatrix;
using solver::EllMatrix;
using solver::SellMatrix;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

CsrMatrix random_system(int n, int extra, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> col(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  // variable row lengths: row r gets (r % (extra+1)) extra entries, so the
  // σ-window sort has real work to do
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < r % (extra + 1); ++k) {
      adj[static_cast<std::size_t>(r)].push_back(col(rng));
    }
  }
  CsrMatrix a(adj);
  for (int r = 0; r < n; ++r) {
    for (int c : a.row_cols(r)) a.add(r, c, c == r ? 4.0 : val(rng));
  }
  return a;
}

std::vector<double> random_vector(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = u(rng);
  return v;
}

TEST(SellMatrix, SigmaWindowSortIsALocalStablePermutation) {
  const CsrMatrix a = random_system(137, 5, 42);  // odd size: ragged tail
  const int c = 16;
  const SellMatrix s(a, c, /*sigma_slices=*/2);  // σ = 32
  ASSERT_EQ(s.rows(), 137);
  ASSERT_EQ(s.slice_height(), 16);
  ASSERT_EQ(s.sigma(), 32);
  ASSERT_EQ(s.num_slices(), 9);
  EXPECT_EQ(s.slice_rows(8), 137 - 8 * 16);  // ragged tail slice

  std::vector<char> seen(137, 0);
  for (int q = 0; q < s.rows(); ++q) {
    const int r = s.permutation()[static_cast<std::size_t>(q)];
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 137);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]) << "duplicate row " << r;
    seen[static_cast<std::size_t>(r)] = 1;
    // σ-window locality: a row never leaves its sort window
    EXPECT_EQ(q / s.sigma(), r / s.sigma()) << "row " << r << " at " << q;
  }

  // within a window, lengths descend and equal lengths keep CSR order
  for (int w0 = 0; w0 < s.rows(); w0 += s.sigma()) {
    const int w1 = std::min(w0 + s.sigma(), s.rows());
    for (int q = w0; q + 1 < w1; ++q) {
      const int r0 = s.permutation()[static_cast<std::size_t>(q)];
      const int r1 = s.permutation()[static_cast<std::size_t>(q + 1)];
      const auto l0 = a.row_cols(r0).size();
      const auto l1 = a.row_cols(r1).size();
      EXPECT_GE(l0, l1);
      if (l0 == l1) {
        EXPECT_LT(r0, r1);  // stability
      }
    }
  }

  // per-slice width is the max row length of the slice; pads are the
  // sentinel and the pad census matches cells − nnz
  std::uint64_t pads = 0;
  for (int sl = 0; sl < s.num_slices(); ++sl) {
    int want = 0;
    for (int l = 0; l < s.slice_rows(sl); ++l) {
      want = std::max(
          want, static_cast<int>(a.row_cols(s.row_ids(sl)[l]).size()));
    }
    EXPECT_EQ(s.slice_width(sl), want);
    for (int j = 0; j < s.slice_width(sl); ++j) {
      for (int l = 0; l < s.slice_rows(sl); ++l) {
        if (s.cols(sl, j)[l] < 0) {
          EXPECT_DOUBLE_EQ(s.vals(sl, j)[l], 0.0);
          ++pads;
        }
      }
    }
  }
  EXPECT_EQ(s.pad_cells(), pads);
  EXPECT_EQ(s.cells() - s.pad_cells(), a.nnz());
  // the σ sort exists to beat ELL's global-width padding
  const EllMatrix e(a);
  const std::uint64_t ell_cells =
      static_cast<std::uint64_t>(e.rows()) *
      static_cast<std::uint64_t>(e.width());
  EXPECT_LT(s.pad_cells(), ell_cells - a.nnz());
}

TEST(SellSpmv, BitwiseEqualsCsrAndEllOnEveryPlatform) {
  for (const int n : {97, 200}) {
    const CsrMatrix a = random_system(n, 6, 7u + static_cast<unsigned>(n));
    const std::vector<double> x = random_vector(n, 11);
    std::vector<double> y_host(static_cast<std::size_t>(n));
    a.spmv(x, y_host);
    for (const auto& m : kMachines) {
      const int strip = 48;
      const SellMatrix s(a, strip);
      const EllMatrix e(a);
      sim::Vpu vpu(m);
      std::vector<double> y_sell(static_cast<std::size_t>(n), -1.0);
      std::vector<double> y_ell(static_cast<std::size_t>(n), -1.0);
      solver::vspmv(vpu, s, x, y_sell, strip);
      solver::vspmv(vpu, e, x, y_ell, strip);
      std::vector<double> y_csr(static_cast<std::size_t>(n), -1.0);
      solver::vspmv(vpu, a, x, y_csr);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(y_sell[static_cast<std::size_t>(i)],
                  y_host[static_cast<std::size_t>(i)])
            << m.name << " sell row " << i;
        EXPECT_EQ(y_ell[static_cast<std::size_t>(i)],
                  y_host[static_cast<std::size_t>(i)])
            << m.name << " ell row " << i;
        EXPECT_EQ(y_csr[static_cast<std::size_t>(i)],
                  y_host[static_cast<std::size_t>(i)])
            << m.name << " csr row " << i;
      }
    }
  }
}

TEST(SellSpmv, CoalescesBandedSlabsIntoUnitStrideLoads) {
  // A full tridiagonal band: every slab of every interior slice is the
  // unit run {r−1, r, r+1}, so assign() must coalesce it and the kernel
  // must not issue a single gather for it.
  const int n = 128;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[static_cast<std::size_t>(i)].push_back(i - 1);
    if (i < n - 1) adj[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  CsrMatrix a(adj);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i < n - 1) a.add(i, i + 1, -1.0);
  }
  const int c = 32;
  // σ = C: each window is one slice, so the interior slices keep the
  // identity ordering (a wider σ would migrate the short boundary rows
  // across slice boundaries)
  const SellMatrix s(a, c, /*sigma_slices=*/1);
  // interior slices (1, 2): all three slabs coalesce; the identity sort
  // keeps rows contiguous so stores are unit-stride too
  for (int sl = 1; sl < 3; ++sl) {
    EXPECT_EQ(s.slice_row_base(sl), sl * c);
    for (int j = 0; j < s.slice_width(sl); ++j) {
      EXPECT_GE(s.coalesced_col(sl, j), 0) << "slice " << sl << " slab " << j;
    }
  }

  const std::vector<double> xv = random_vector(n, 3);
  std::vector<double> y(static_cast<std::size_t>(n)), y_host(y);
  a.spmv(xv, y_host);
  sim::Vpu vpu(platforms::riscv_vec());
  solver::vspmv(vpu, s, xv, y, c);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(y[static_cast<std::size_t>(i)],
              y_host[static_cast<std::size_t>(i)]);
  }
  const auto& ct = vpu.counters();
  EXPECT_GT(ct.coalesced_lanes, 0u);
  // only the boundary slices still gather (their short rows break the run)
  const EllMatrix e(a);
  sim::Vpu vpu_ell(platforms::riscv_vec());
  solver::vspmv(vpu_ell, e, xv, y, c);
  EXPECT_LT(ct.vmem_indexed_instrs, vpu_ell.counters().vmem_indexed_instrs);
  EXPECT_LT(ct.gather_lines_touched,
            vpu_ell.counters().gather_lines_touched);
}

/// Expected distinct-cache-line count of one vgather over the REAL lanes
/// of a (strip, slab) group — the test-side mirror of the accounting
/// inside Vpu::vgather.
std::uint64_t expected_gather_lines(const std::vector<std::int32_t>& cols,
                                    const double* x, std::size_t line) {
  std::vector<std::uintptr_t> lines;
  for (const std::int32_t c : cols) {
    if (c < 0) continue;
    lines.push_back(reinterpret_cast<std::uintptr_t>(x + c) &
                    ~(static_cast<std::uintptr_t>(line) - 1));
  }
  std::sort(lines.begin(), lines.end());
  return static_cast<std::uint64_t>(
      std::unique(lines.begin(), lines.end()) - lines.begin());
}

TEST(PadLanes, ContributeZeroCacheLineTraffic) {
  // Row 0 holds two far-apart entries, rows 1..63 a single diagonal: the
  // ELL mirror's second slab is 1 real lane + 63 pads.  The masked pads
  // must not touch the hierarchy; the SAME pattern with explicit zero
  // entries at column 0 (the pre-fix behaviour, expressible as structural
  // zeros) must compute the identical y while touching MORE lines.
  const int n = 64;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  adj[0] = {32, 48};
  CsrMatrix a(adj);
  a.add(0, 32, 2.5);
  a.add(0, 48, -1.25);
  for (int r = 0; r < n; ++r) a.add(r, r, 1.0 + r);

  // The same system with every short row topped up to width 3 by explicit
  // STRUCTURAL ZEROS — the "pads as real entries" behaviour this test
  // regresses against: identical y, but the fake entries gather real lines.
  std::vector<std::vector<int>> adj_z(static_cast<std::size_t>(n));
  adj_z[0] = {32, 48};
  adj_z[1] = {0, 2};
  for (int r = 2; r < n; ++r) adj_z[static_cast<std::size_t>(r)] = {0, 1};
  CsrMatrix az(adj_z);
  az.add(0, 32, 2.5);
  az.add(0, 48, -1.25);
  for (int r = 0; r < n; ++r) az.add(r, r, 1.0 + r);

  const EllMatrix e(a), ez(az);
  ASSERT_EQ(e.width(), 3);
  ASSERT_EQ(ez.width(), 3);
  std::vector<double> x = random_vector(n, 9);
  for (double& v : x) v = 0.5 + std::abs(v);  // positive: ±0·x is +0

  const auto m = platforms::riscv_vec();
  sim::Vpu vpu(m), vpu_z(m);
  std::vector<double> y(static_cast<std::size_t>(n));
  std::vector<double> y_z(static_cast<std::size_t>(n));
  solver::vspmv(vpu, e, x, y, n);      // one strip of 64
  solver::vspmv(vpu_z, ez, x, y_z, n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(y[static_cast<std::size_t>(i)],
              y_z[static_cast<std::size_t>(i)])
        << "row " << i;
  }

  // exact pad census: width 3 × 64 cells − nnz real entries
  const auto& ct = vpu.counters();
  EXPECT_EQ(ct.pad_lanes, 3u * 64u - a.nnz());
  EXPECT_EQ(vpu_z.counters().pad_lanes, 0u);

  // the gather-line counter must equal the REAL lanes' distinct lines,
  // computed independently here — pads add exactly nothing
  const std::size_t line = m.memory.l1.line_bytes;
  std::uint64_t want = 0;
  for (int j = 0; j < e.width(); ++j) {
    std::vector<std::int32_t> cols(e.cols(j), e.cols(j) + n);
    want += expected_gather_lines(cols, x.data(), line);
  }
  EXPECT_EQ(ct.gather_lines_touched, want);
  EXPECT_LT(ct.gather_lanes, vpu_z.counters().gather_lanes);
  EXPECT_LT(ct.l1_accesses, vpu_z.counters().l1_accesses);
}

TEST(SellSpmvMulti, ColumnsMatchSingleRhsBitwiseWithActiveMasks) {
  const int n = 75;
  const int k = 3;
  const CsrMatrix a = random_system(n, 5, 21);
  const SellMatrix s(a, 32);
  std::vector<double> X(static_cast<std::size_t>(n) * k);
  for (int d = 0; d < k; ++d) {
    const auto xd = random_vector(n, 100u + static_cast<unsigned>(d));
    std::copy(xd.begin(), xd.end(),
              X.begin() + static_cast<std::ptrdiff_t>(d) * n);
  }
  std::vector<double> Y(static_cast<std::size_t>(n) * k, -7.0);
  const std::vector<char> active = {1, 0, 1};
  sim::Vpu vpu(platforms::riscv_vec());
  solver::vspmv_multi(vpu, s, X, Y, k, 32, active);
  for (int d = 0; d < k; ++d) {
    const std::size_t off = static_cast<std::size_t>(d) * n;
    if (!active[static_cast<std::size_t>(d)]) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(Y[off + static_cast<std::size_t>(i)], -7.0);
      }
      continue;
    }
    sim::Vpu vpu_s(platforms::riscv_vec());
    std::vector<double> y(static_cast<std::size_t>(n));
    solver::vspmv(vpu_s, s,
                  std::span<const double>(X).subspan(off, n), y, 32);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(Y[off + static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)])
          << "col " << d << " row " << i;
    }
  }
}

TEST(SellMatrix, FemOperatorRcmThenSellCutsGatherLines) {
  // The headline co-design composition on a production-like (shuffled)
  // numbering: RCM + SELL must touch far fewer x-lines per SpMV than the
  // padded ELL mirror of the shuffled operator.  The mesh must dwarf one
  // strip (1331 nodes ≫ 128 lanes) or every gather trivially touches most
  // of x and no numbering can help.
  const fem::Mesh mesh({.nx = 10, .ny = 10, .nz = 10, .shuffle_nodes = true});
  const auto adjacency = mesh.node_adjacency();
  CsrMatrix a(adjacency);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c : a.row_cols(r)) a.add(r, c, c == r ? 27.0 : -1.0);
  }
  const int nn = a.rows();
  const std::vector<double> x = random_vector(nn, 5);
  std::vector<double> y(static_cast<std::size_t>(nn));

  sim::Vpu vpu_ell(platforms::riscv_vec());
  const EllMatrix e(a);
  solver::vspmv(vpu_ell, e, x, y, 128);

  const auto perm = fem::rcm_ordering(adjacency);
  const CsrMatrix ap = solver::permute_symmetric(a, perm);
  EXPECT_LT(solver::bandwidth(ap), solver::bandwidth(a));
  sim::Vpu vpu_sell(platforms::riscv_vec());
  const SellMatrix sp(ap, 128);
  std::vector<double> xp(static_cast<std::size_t>(nn));
  for (int q = 0; q < nn; ++q) {
    xp[static_cast<std::size_t>(q)] =
        x[static_cast<std::size_t>(perm[static_cast<std::size_t>(q)])];
  }
  std::vector<double> yp(static_cast<std::size_t>(nn));
  solver::vspmv(vpu_sell, sp, xp, yp, 128);

  // ≥ 30% fewer gathered lines — the acceptance floor of the format sweep
  EXPECT_LT(static_cast<double>(vpu_sell.counters().gather_lines_touched),
            0.7 * static_cast<double>(vpu_ell.counters().gather_lines_touched));
}

}  // namespace
