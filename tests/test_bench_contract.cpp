// CLI contract of the bench_to_json binary's --check mode: a missing,
// unreadable or corrupt baseline is a usage error — exit 2 with the
// offending path on stderr, BEFORE any measurement runs (fail-fast: the
// error must surface in well under the multi-second measurement pass).
// Drift stays exit 1 and is covered by the bench-baseline CI job.
//
// CMake injects the binary path as VECFD_BENCH_TO_JSON_BIN.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

const std::string kBin = VECFD_BENCH_TO_JSON_BIN;

struct RunResult {
  int exit_code = -1;
  std::string stderr_text;
  double seconds = 0.0;
};

RunResult run_args(const std::string& args) {
  const std::string cmd = kBin + " " + args + " 2>&1 1>/dev/null";
  const auto t0 = std::chrono::steady_clock::now();
  FILE* p = popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  RunResult r;
  char buf[256];
  while (p != nullptr && fgets(buf, sizeof buf, p) != nullptr) {
    r.stderr_text += buf;
  }
  if (p != nullptr) {
    const int rc = pclose(p);
    r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return r;
}

RunResult run_check(const std::string& baseline_path) {
  return run_args("--check " + baseline_path);
}

fs::path write_temp(const std::string& name, const std::string& content) {
  const fs::path path = fs::temp_directory_path() / name;
  std::ofstream os(path, std::ios::binary);
  os << content;
  return path;
}

TEST(BenchContract, MissingBaselineExitsTwoNamingThePath) {
  const std::string path =
      (fs::temp_directory_path() / "vecfd_no_such_baseline.json").string();
  fs::remove(path);
  const RunResult r = run_check(path);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stderr_text.find(path), std::string::npos)
      << "stderr must name the offending path:\n"
      << r.stderr_text;
}

TEST(BenchContract, CorruptBaselineWithoutSchemaMarkerExitsTwo) {
  const fs::path path = write_temp("vecfd_corrupt_baseline.json",
                                   "{ \"benches\": { \"b\": { \"m\": 1 } } }\n");
  const RunResult r = run_check(path.string());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stderr_text.find(path.string()), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("vecfd-bench-v1"), std::string::npos)
      << "stderr must say what marker is missing:\n"
      << r.stderr_text;
  fs::remove(path);
}

TEST(BenchContract, TruncatedBaselineWithNoMetricsExitsTwo) {
  // Schema marker present but every metric gone (e.g. a truncated write):
  // must NOT masquerade as "everything drifted" (exit 1).
  const fs::path path = write_temp(
      "vecfd_empty_baseline.json",
      "{\n  \"schema\": \"vecfd-bench-v1\",\n  \"benches\": {\n  }\n}\n");
  const RunResult r = run_check(path.string());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stderr_text.find(path.string()), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("no numeric metrics"), std::string::npos)
      << r.stderr_text;
  fs::remove(path);
}

TEST(BenchContract, BrokenBaselineFailsBeforeMeasuring) {
  // The whole point of validating up front: the failure must arrive in
  // fractions of a second, not after the measurement pass (which takes
  // multiple seconds even on fast hosts).
  const fs::path path = write_temp("vecfd_fast_fail_baseline.json", "junk\n");
  const RunResult r = run_check(path.string());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_LT(r.seconds, 2.0) << "validation must precede measurement";
  fs::remove(path);
}

TEST(BenchContract, UsageErrorsExitTwo) {
  const RunResult both = run_check("a.json --out b.json");
  EXPECT_EQ(both.exit_code, 2);
}

TEST(BenchContract, StringMetricValueIsCorruptNotANestedBench) {
  // Regression: an unparseable metric VALUE used to be mistaken for a
  // nested-bench opener (only lines ending in '{' open one), silently
  // re-homing every later metric under a phantom bench.  It must be an
  // exit-2 corrupt-baseline error naming the offending line.
  const fs::path path = write_temp(
      "vecfd_string_value_baseline.json",
      "{\n  \"schema\": \"vecfd-bench-v1\",\n  \"benches\": {\n"
      "    \"b\": {\n      \"m\": oops\n    }\n  }\n}\n");
  const RunResult r = run_check(path.string());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.stderr_text.find(path.string()), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("oops"), std::string::npos)
      << "stderr must name the offending line:\n"
      << r.stderr_text;
  fs::remove(path);
}

TEST(BenchContract, BadToleranceExitsTwoNamingTheFlag) {
  // --tolerance must reject non-numeric, trailing-junk and negative
  // values with the exit-2 usage contract, naming the flag — before any
  // measurement runs.
  for (const std::string bad : {"abc", "1e-6x", "-0.5", ""}) {
    const RunResult r =
        run_args("--check whatever.json --tolerance '" + bad + "'");
    EXPECT_EQ(r.exit_code, 2) << "--tolerance " << bad;
    EXPECT_NE(r.stderr_text.find("--tolerance"), std::string::npos)
        << "stderr must name the flag for value '" << bad << "':\n"
        << r.stderr_text;
    EXPECT_LT(r.seconds, 2.0) << "validation must precede measurement";
  }
}

}  // namespace
