// Tests for the algebraic substrate: CSR structure, SpMV, Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "solver/csr.h"
#include "solver/krylov.h"

namespace {

using vecfd::solver::bicgstab;
using vecfd::solver::cg;
using vecfd::solver::CsrMatrix;
using vecfd::solver::SolveOptions;

/// 1-D Poisson matrix (tridiagonal 2,-1) of size n.
CsrMatrix poisson1d(int n) {
  std::vector<std::vector<int>> adj(n);
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[i].push_back(i - 1);
    if (i < n - 1) adj[i].push_back(i + 1);
  }
  CsrMatrix a(adj);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i < n - 1) a.add(i, i + 1, -1.0);
  }
  return a;
}

/// Nonsymmetric advection-diffusion-like matrix.
CsrMatrix advdiff1d(int n, double c) {
  std::vector<std::vector<int>> adj(n);
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[i].push_back(i - 1);
    if (i < n - 1) adj[i].push_back(i + 1);
  }
  CsrMatrix a(adj);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0 + 0.1);
    if (i > 0) a.add(i, i - 1, -1.0 - c);
    if (i < n - 1) a.add(i, i + 1, -1.0 + c);
  }
  return a;
}

TEST(Csr, PatternSortedDedupedWithDiagonal) {
  CsrMatrix a(std::vector<std::vector<int>>{{2, 1, 1}, {0}, {0, 1}});
  // row 0: {0(diag), 1, 2}; row 1: {0, 1(diag)}; row 2: {0, 1, 2(diag)}
  EXPECT_EQ(a.rows(), 3);
  ASSERT_EQ(a.row_cols(0).size(), 3u);
  EXPECT_EQ(a.row_cols(0)[0], 0);
  EXPECT_EQ(a.row_cols(0)[1], 1);
  EXPECT_EQ(a.row_cols(0)[2], 2);
  EXPECT_EQ(a.row_cols(1).size(), 2u);
  EXPECT_GE(a.find(2, 2), 0);
  EXPECT_EQ(a.find(1, 2), -1);
}

TEST(Csr, AddAndAtRoundTrip) {
  CsrMatrix a = poisson1d(5);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 4), 0.0);  // outside pattern
  a.add(2, 2, 0.5);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.5);
  EXPECT_THROW(a.add(0, 4, 1.0), std::out_of_range);
}

TEST(Csr, RejectsOutOfRangeAdjacency) {
  EXPECT_THROW(CsrMatrix(std::vector<std::vector<int>>{{5}}),
               std::out_of_range);
}

TEST(Csr, SpmvMatchesDense) {
  CsrMatrix a = advdiff1d(6, 0.3);
  std::vector<double> x{1, -2, 3, -4, 5, -6};
  std::vector<double> y(6);
  a.spmv(x, y);
  for (int i = 0; i < 6; ++i) {
    double expect = 0.0;
    for (int j = 0; j < 6; ++j) expect += a.at(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-13);
  }
}

TEST(Csr, SpmvDimensionCheck) {
  CsrMatrix a = poisson1d(4);
  std::vector<double> x(3), y(4);
  EXPECT_THROW(a.spmv(x, y), std::invalid_argument);
}

TEST(Csr, SetZeroKeepsPattern) {
  CsrMatrix a = poisson1d(4);
  a.set_zero();
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  EXPECT_GE(a.find(1, 1), 0);
}

TEST(Cg, SolvesPoissonToTolerance) {
  const int n = 64;
  CsrMatrix a = poisson1d(n);
  std::vector<double> xref(n);
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (double& v : xref) v = u(rng);
  std::vector<double> b(n);
  a.spmv(xref, b);
  std::vector<double> x(n, 0.0);
  const auto rep = cg(a, b, x, {.max_iterations = 500,
                                .rel_tolerance = 1e-12,
                                .precond = {}});
  EXPECT_TRUE(rep.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(Cg, ResidualHistoryIsRecorded) {
  CsrMatrix a = poisson1d(32);
  std::vector<double> b(32, 1.0);
  std::vector<double> x(32, 0.0);
  const auto rep = cg(a, b, x);
  EXPECT_TRUE(rep.converged);
  // history[0] is the initial residual (1 for a zero guess), then one
  // entry per iteration — the krylov.h length invariant
  ASSERT_EQ(static_cast<int>(rep.history.size()), rep.iterations + 1);
  EXPECT_DOUBLE_EQ(rep.history.front(), 1.0);
  EXPECT_LT(rep.history.back(), rep.history.front());
  EXPECT_DOUBLE_EQ(rep.history.back(), rep.residual);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  CsrMatrix a = poisson1d(8);
  std::vector<double> b(8, 0.0);
  std::vector<double> x(8, 3.0);
  const auto rep = cg(a, b, x);
  EXPECT_TRUE(rep.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, WithoutPreconditionerStillConverges) {
  CsrMatrix a = poisson1d(32);
  std::vector<double> b(32, 1.0);
  std::vector<double> x(32, 0.0);
  const auto rep = cg(a, b, x, {.max_iterations = 200,
                                .rel_tolerance = 1e-10,
                                .jacobi_precondition = false,
                                .precond = {}});
  EXPECT_TRUE(rep.converged);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  const int n = 64;
  CsrMatrix a = advdiff1d(n, 0.6);
  std::vector<double> xref(n);
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (double& v : xref) v = u(rng);
  std::vector<double> b(n);
  a.spmv(xref, b);
  std::vector<double> x(n, 0.0);
  const auto rep = bicgstab(a, b, x, {.max_iterations = 500,
                                      .rel_tolerance = 1e-12,
                                      .precond = {}});
  EXPECT_TRUE(rep.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(Bicgstab, HandlesIdentityInOneIteration) {
  std::vector<std::vector<int>> adj(5);
  CsrMatrix a(adj);
  for (int i = 0; i < 5; ++i) a.add(i, i, 1.0);
  std::vector<double> b{1, 2, 3, 4, 5};
  std::vector<double> x(5, 0.0);
  const auto rep = bicgstab(a, b, x);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.iterations, 2);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

// ---- breakdown-reporting contract (krylov.h) ---------------------------
// A breakdown exit must leave rep.residual equal to the true relative
// residual of the returned x.  The old code `break`-ed without updating it,
// so a first-iteration breakdown returned residual == 0 with
// converged == false — a value that reads as fully converged.

/// diag(1, -1): indefinite, so CG's p·Ap vanishes on the first iteration
/// when preconditioned (z = [1, -1], Ap = [1, 1]).
CsrMatrix indefinite2x2() {
  CsrMatrix a(std::vector<std::vector<int>>(2));
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  return a;
}

TEST(Cg, BreakdownReportsTruthfulResidual) {
  CsrMatrix a = indefinite2x2();
  std::vector<double> b{1.0, 1.0};
  std::vector<double> x(2, 0.0);
  const auto rep = cg(a, b, x);  // p·Ap == 0 immediately
  EXPECT_FALSE(rep.converged);
  // the aborted first iteration is counted (see the krylov.h contract)
  EXPECT_EQ(rep.iterations, 1);
  ASSERT_EQ(rep.history.size(), 2u);  // initial residual + breakdown exit
  // nothing was solved: the true relative residual is ‖b‖/‖b‖ = 1
  EXPECT_NEAR(rep.residual, 1.0, 1e-14);
  EXPECT_NEAR(rep.history.back(), 1.0, 1e-14);
}

TEST(Cg, ExactInitialGuessReportsConvergence) {
  CsrMatrix a = poisson1d(8);
  std::vector<double> xref(8, 1.0);
  std::vector<double> b(8);
  a.spmv(xref, b);
  std::vector<double> x = xref;  // r = 0 → rz = 0 → pap = 0 breakdown path
  const auto rep = cg(a, b, x);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.residual, 0.0);
}

TEST(Bicgstab, R0vBreakdownReportsTruthfulResidual) {
  CsrMatrix a = indefinite2x2();
  std::vector<double> b{1.0, 1.0};
  std::vector<double> x(2, 0.0);
  // unpreconditioned: v = A·r = [1, -1] ⟂ r0 = [1, 1] → r0·v == 0
  const auto rep =
      bicgstab(a, b, x, {.jacobi_precondition = false, .precond = {}});
  EXPECT_FALSE(rep.converged);
  EXPECT_NEAR(rep.residual, 1.0, 1e-14);
  ASSERT_FALSE(rep.history.empty());
  EXPECT_NEAR(rep.history.back(), 1.0, 1e-14);
}

TEST(Bicgstab, SingularOperatorBreakdownReportsTruthfulResidual) {
  // 2x2 zero matrix (pattern holds the diagonal, values stay 0): v = A·p
  // is identically zero, so r0·v == 0 with an untouched residual of 1.
  CsrMatrix a(std::vector<std::vector<int>>(2));
  std::vector<double> b{3.0, 4.0};
  std::vector<double> x(2, 0.0);
  const auto rep =
      bicgstab(a, b, x, {.jacobi_precondition = false, .precond = {}});
  EXPECT_FALSE(rep.converged);
  EXPECT_NEAR(rep.residual, 1.0, 1e-14);
}

TEST(Bicgstab, ExactInitialGuessReportsConvergence) {
  CsrMatrix a = poisson1d(4);
  std::vector<double> xref{1.0, -2.0, 0.5, 3.0};
  std::vector<double> b(4);
  a.spmv(xref, b);
  std::vector<double> x = xref;  // r = 0 → failed ρ restart breakdown path
  const auto rep = bicgstab(a, b, x);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.residual, 0.0);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], xref[i]);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  std::vector<std::vector<int>> adj(2);
  CsrMatrix a(adj);  // zero values on the diagonal
  EXPECT_THROW(vecfd::solver::jacobi_inverse_diagonal(a),
               std::runtime_error);
}

TEST(Blas1, DotNormAxpy) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(vecfd::solver::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(vecfd::solver::norm2(std::vector<double>{3.0, 4.0}), 5.0);
  vecfd::solver::axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  std::vector<double> c{1.0};
  EXPECT_THROW(vecfd::solver::dot(a, c), std::invalid_argument);
}

TEST(SolverDimensionChecks, Throw) {
  CsrMatrix a = poisson1d(4);
  std::vector<double> b(3), x(4);
  EXPECT_THROW(cg(a, b, x), std::invalid_argument);
  EXPECT_THROW(bicgstab(a, b, x), std::invalid_argument);
}

}  // namespace
