// The multi-RHS block solve contract (solver/vkernels.h, DESIGN.md §5):
// per-column results of the blocked kernels and of bicgstab_multi /
// vbicgstab_multi are bit-for-bit those of the single-RHS path, the shared
// operator slabs make the blocked SpMV issue fewer unit loads for the same
// gathers, converged/broken-down columns freeze exactly where a standalone
// solve would leave them, and the transient TimeLoop produces identical
// fields under blocked_momentum = true / false on every scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "scenario_support.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using testsupport::small_scenarios;
using solver::CsrMatrix;
using solver::EllMatrix;
using solver::SolveOptions;
using solver::SolveReport;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

CsrMatrix random_system(int n, int extra, bool spd, std::mt19937& rng) {
  std::uniform_int_distribution<int> col(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, double>>> entries(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < extra; ++k) {
      const int c = col(rng);
      if (c == r) continue;
      const double v = val(rng);
      entries[static_cast<std::size_t>(r)].push_back({c, v});
      adj[static_cast<std::size_t>(r)].push_back(c);
      if (spd) {
        entries[static_cast<std::size_t>(c)].push_back({r, v});
        adj[static_cast<std::size_t>(c)].push_back(r);
      }
    }
  }
  CsrMatrix a(adj);
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    for (const auto& [c, v] : entries[static_cast<std::size_t>(r)]) {
      a.add(r, c, v);
      rowsum[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  for (int r = 0; r < n; ++r) {
    a.add(r, r, rowsum[static_cast<std::size_t>(r)] + 0.5 + 0.1 * (r % 7));
  }
  return a;
}

std::vector<double> random_block(int n, int k, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(k));
  for (double& x : v) x = u(rng);
  return v;
}

std::vector<double> column(const std::vector<double>& blk, int n, int d) {
  const auto off = static_cast<std::ptrdiff_t>(d) * n;
  return {blk.begin() + off, blk.begin() + off + n};
}

TEST(MultiRhsKernels, SpmvMatchesSinglePerColumnAndSharesSlabs) {
  const int n = 97;  // odd: remainder strips
  const int k = 3;
  std::mt19937 rng(7);
  const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
  const EllMatrix ell(a);
  const std::vector<double> X = random_block(n, k, 11);
  std::vector<double> Y(static_cast<std::size_t>(n) * k, 0.0);

  sim::Vpu vpu_multi(platforms::riscv_vec());
  solver::vspmv_multi(vpu_multi, ell, X, Y, k, 64);

  sim::Vpu vpu_single(platforms::riscv_vec());
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int d = 0; d < k; ++d) {
    const std::vector<double> xd = column(X, n, d);
    solver::vspmv(vpu_single, ell, xd, y, 64);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(Y[static_cast<std::size_t>(d) * n + i], y[i])
          << "col " << d << " row " << i;  // bit-for-bit
    }
  }
  // same gather streams, k× fewer value/index slab loads (plus k stores)
  EXPECT_EQ(vpu_multi.counters().vmem_indexed_instrs,
            vpu_single.counters().vmem_indexed_instrs);
  const auto strips = static_cast<std::uint64_t>((n + 63) / 64);
  const auto width = static_cast<std::uint64_t>(ell.width());
  EXPECT_EQ(vpu_multi.counters().vmem_unit_instrs,
            2 * width * strips + k * strips);  // shared slabs + k stores
  EXPECT_EQ(vpu_single.counters().vmem_unit_instrs,
            k * (2 * width * strips + strips));
}

TEST(MultiRhsKernels, Blas1MatchesSinglePerColumn) {
  const int n = 83;
  const int k = 3;
  const std::vector<double> A = random_block(n, k, 1);
  const std::vector<double> B = random_block(n, k, 2);
  const std::vector<double> alpha{0.75, -0.5, 1.25};

  sim::Vpu vpu(platforms::riscv_vec());
  std::vector<double> dots(k, 0.0);
  solver::vdot_multi(vpu, A, B, k, dots, 32);
  std::vector<double> Y = B;
  solver::vaxpy_multi(vpu, alpha, A, Y, k, 32);
  std::vector<double> D(A.size());
  solver::vsub_multi(vpu, A, B, D, k, 32);
  std::vector<double> C(A.size(), 0.0);
  solver::vcopy_multi(vpu, A, C, k, 32);

  sim::Vpu ref(platforms::riscv_vec());
  for (int d = 0; d < k; ++d) {
    const std::vector<double> ad = column(A, n, d);
    const std::vector<double> bd = column(B, n, d);
    EXPECT_EQ(dots[static_cast<std::size_t>(d)], solver::vdot(ref, ad, bd, 32))
        << d;
    std::vector<double> yd = bd;
    solver::vaxpy(ref, alpha[static_cast<std::size_t>(d)], ad, yd, 32);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(Y[static_cast<std::size_t>(d) * n + i], yd[i]) << d;
      EXPECT_EQ(D[static_cast<std::size_t>(d) * n + i], ad[i] - bd[i]) << d;
      EXPECT_EQ(C[static_cast<std::size_t>(d) * n + i], ad[i]) << d;
    }
  }
}

TEST(MultiRhsKernels, InactiveColumnsAreNeverTouched) {
  const int n = 40;
  const int k = 3;
  std::mt19937 rng(5);
  const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
  const EllMatrix ell(a);
  const std::vector<double> X = random_block(n, k, 21);
  const double sentinel = -777.25;
  std::vector<double> Y(static_cast<std::size_t>(n) * k, sentinel);
  const std::vector<char> active{1, 0, 1};

  sim::Vpu vpu(platforms::riscv_vec());
  solver::vspmv_multi(vpu, ell, X, Y, k, 16, active);
  std::vector<double> dots(k, sentinel);
  solver::vdot_multi(vpu, X, X, k, dots, 16, active);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(Y[static_cast<std::size_t>(n) + i], sentinel) << i;
  }
  EXPECT_EQ(dots[1], sentinel);
  EXPECT_NE(dots[0], sentinel);
}

TEST(MultiRhsKernels, DimensionMismatchesThrow) {
  sim::Vpu vpu(platforms::riscv_vec());
  std::mt19937 rng(3);
  const CsrMatrix a = random_system(10, 2, true, rng);
  const EllMatrix ell(a);
  std::vector<double> good(30, 0.0), bad(29, 0.0), out(3, 0.0);
  EXPECT_THROW(solver::vspmv_multi(vpu, ell, bad, bad, 3),
               std::invalid_argument);
  EXPECT_THROW(solver::vspmv_multi(vpu, ell, good, good, 0),
               std::invalid_argument);
  EXPECT_THROW(solver::vdot_multi(vpu, good, bad, 3, out),
               std::invalid_argument);
  std::vector<char> short_mask{1, 0};
  EXPECT_THROW(solver::vcopy_multi(vpu, good, good, 3, 8, short_mask),
               std::invalid_argument);
  std::vector<double> xblk(30, 0.0);
  EXPECT_THROW(solver::vbicgstab_multi(vpu, a, bad, xblk, 3),
               std::invalid_argument);
  EXPECT_THROW(solver::bicgstab_multi(a, bad, xblk, 3),
               std::invalid_argument);
}

TEST(MultiRhsSolvers, HostMultiMatchesHostSinglePerColumn) {
  std::mt19937 rng(90);
  const int n = 61;
  const int k = 3;
  const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
  const std::vector<double> B = random_block(n, k, 13);
  const SolveOptions opts{
      .max_iterations = 300, .rel_tolerance = 1e-11, .precond = {}};

  std::vector<double> X(B.size(), 0.0);
  const auto reps = solver::bicgstab_multi(a, B, X, k, opts);
  ASSERT_EQ(reps.size(), 3u);
  for (int d = 0; d < k; ++d) {
    const std::vector<double> bd = column(B, n, d);
    std::vector<double> xd(static_cast<std::size_t>(n), 0.0);
    const SolveReport ref = solver::bicgstab(a, bd, xd, opts);
    const SolveReport& got = reps[static_cast<std::size_t>(d)];
    EXPECT_EQ(got.converged, ref.converged) << d;
    EXPECT_EQ(got.iterations, ref.iterations) << d;
    EXPECT_EQ(got.history, ref.history) << d;  // bit-for-bit recurrence
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(X[static_cast<std::size_t>(d) * n + i], xd[i])
          << "col " << d << " entry " << i;
    }
  }
}

TEST(MultiRhsSolvers, VpuMultiMatchesVpuSinglePerColumnOnAllPlatforms) {
  std::mt19937 rng(41);
  const int n = 53;
  const int k = 3;
  const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
  const std::vector<double> B = random_block(n, k, 17);
  const SolveOptions opts{
      .max_iterations = 300, .rel_tolerance = 1e-11, .precond = {}};

  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> X(B.size(), 0.0);
    const auto reps = solver::vbicgstab_multi(vpu, a, B, X, k, opts, 48);
    for (int d = 0; d < k; ++d) {
      sim::Vpu ref_vpu(m);
      const std::vector<double> bd = column(B, n, d);
      std::vector<double> xd(static_cast<std::size_t>(n), 0.0);
      const SolveReport ref = solver::vbicgstab(ref_vpu, a, bd, xd, opts, 48);
      const SolveReport& got = reps[static_cast<std::size_t>(d)];
      const std::string what =
          std::string("col ") + std::to_string(d) + " on " + m.name;
      EXPECT_EQ(got.converged, ref.converged) << what;
      EXPECT_EQ(got.iterations, ref.iterations) << what;
      EXPECT_EQ(got.history, ref.history) << what;
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(X[static_cast<std::size_t>(d) * n + i], xd[i]) << what;
      }
    }
  }
}

TEST(MultiRhsSolvers, PerColumnBreakdownLifecycleMatchesStandalone) {
  // diag(1, -1), no preconditioner: b = (1, 1) hits the r₀·v = 0 breakdown
  // immediately, b = (1, 0) decouples and converges — in one block the two
  // columns must retire independently with exactly their standalone
  // reports, and the broken column's iterate must stay frozen.
  CsrMatrix a(std::vector<std::vector<int>>(2));
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  const SolveOptions opts{.max_iterations = 50,
                          .rel_tolerance = 1e-10,
                          .jacobi_precondition = false, .precond = {}};
  const std::vector<double> B{1.0, 1.0, 1.0, 0.0};  // cols (1,1) and (1,0)

  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> X(4, 0.0);
    const auto reps = solver::vbicgstab_multi(vpu, a, B, X, 2, opts, 2);
    for (int d = 0; d < 2; ++d) {
      sim::Vpu ref_vpu(m);
      const std::vector<double> bd{B[static_cast<std::size_t>(d) * 2],
                                   B[static_cast<std::size_t>(d) * 2 + 1]};
      std::vector<double> xd(2, 0.0);
      const SolveReport ref = solver::vbicgstab(ref_vpu, a, bd, xd, opts, 2);
      const std::string what =
          std::string("col ") + std::to_string(d) + " on " + m.name;
      EXPECT_EQ(reps[static_cast<std::size_t>(d)].converged, ref.converged)
          << what;
      EXPECT_EQ(reps[static_cast<std::size_t>(d)].iterations, ref.iterations)
          << what;
      EXPECT_DOUBLE_EQ(reps[static_cast<std::size_t>(d)].residual,
                       ref.residual)
          << what;
      EXPECT_EQ(X[static_cast<std::size_t>(d) * 2], xd[0]) << what;
      EXPECT_EQ(X[static_cast<std::size_t>(d) * 2 + 1], xd[1]) << what;
    }
    EXPECT_FALSE(reps[0].converged) << m.name;  // the breakdown column
    EXPECT_TRUE(reps[1].converged) << m.name;   // the decoupled column
  }
}

TEST(MultiRhsSolvers, ZeroColumnsRetireWithoutWork) {
  std::mt19937 rng(8);
  const int n = 24;
  const CsrMatrix a = random_system(n, 2, /*spd=*/false, rng);
  std::vector<double> B(static_cast<std::size_t>(n) * 2, 0.0);
  std::mt19937 rng2(9);
  for (int i = 0; i < n; ++i) {  // column 1 nonzero, column 0 all-zero
    B[static_cast<std::size_t>(n) + i] =
        std::uniform_real_distribution<double>(-1.0, 1.0)(rng2);
  }
  sim::Vpu vpu(platforms::riscv_vec());
  std::vector<double> X(B.size(), 3.0);
  const auto reps = solver::vbicgstab_multi(vpu, a, B, X, 2, {}, 16);
  EXPECT_TRUE(reps[0].converged);
  EXPECT_EQ(reps[0].iterations, 0);
  ASSERT_EQ(reps[0].history.size(), 1u);
  for (int i = 0; i < n; ++i) EXPECT_EQ(X[i], 0.0) << i;
  EXPECT_TRUE(reps[1].converged);
  EXPECT_GT(reps[1].iterations, 0);
}

TEST(MultiRhsTimeLoop, BlockedMomentumMatchesPerComponentOnAllScenarios) {
  // The acceptance bar: blocked vs per-component fields agree to <= 1e-9
  // per component on every scenario (they are in fact bit-identical — the
  // per-column recurrences are the same FP sequences), with identical
  // Krylov iteration counts and convergence flags.
  for (const miniapp::Scenario& s : small_scenarios()) {
    const fem::Mesh mesh(s.mesh);
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 2;
    cfg.vector_size = 32;

    cfg.blocked_momentum = true;
    miniapp::TimeLoop blocked(mesh, s, cfg);
    sim::Vpu vpu_b(platforms::riscv_vec());
    const auto res_b = blocked.run(vpu_b);

    cfg.blocked_momentum = false;
    miniapp::TimeLoop percomp(mesh, s, cfg);
    sim::Vpu vpu_p(platforms::riscv_vec());
    const auto res_p = percomp.run(vpu_p);

    ASSERT_TRUE(res_b.all_converged) << s.name;
    ASSERT_TRUE(res_p.all_converged) << s.name;
    ASSERT_EQ(res_b.steps.size(), res_p.steps.size()) << s.name;
    for (std::size_t st = 0; st < res_b.steps.size(); ++st) {
      for (int d = 0; d < fem::kDim; ++d) {
        EXPECT_EQ(res_b.steps[st].momentum[static_cast<std::size_t>(d)]
                      .iterations,
                  res_p.steps[st].momentum[static_cast<std::size_t>(d)]
                      .iterations)
            << s.name << " step " << st << " comp " << d;
      }
      EXPECT_EQ(res_b.steps[st].pressure.iterations,
                res_p.steps[st].pressure.iterations)
          << s.name << " step " << st;
      EXPECT_DOUBLE_EQ(res_b.steps[st].div_after, res_p.steps[st].div_after)
          << s.name << " step " << st;
    }
    for (int n = 0; n < mesh.num_nodes(); ++n) {
      for (int d = 0; d < fem::kDim; ++d) {
        EXPECT_NEAR(blocked.state().velocity(n, d),
                    percomp.state().velocity(n, d), 1e-9)
            << s.name << " node " << n << " comp " << d;
      }
    }
  }
}

TEST(MultiRhsTimeLoop, BlockedSolveReducesSolvePhaseUnitLoads) {
  // The traffic claim at time-loop granularity: identical gathers, fewer
  // unit loads (the shared ELL slabs), same iteration counts.
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 4, .ny = 4, .nz = 4, .distortion = 0.05};
  const fem::Mesh mesh(s.mesh);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = 1;
  cfg.vector_size = 64;

  cfg.blocked_momentum = true;
  miniapp::TimeLoop blocked(mesh, s, cfg);
  sim::Vpu vpu_b(platforms::riscv_vec());
  const auto res_b = blocked.run(vpu_b);

  cfg.blocked_momentum = false;
  miniapp::TimeLoop percomp(mesh, s, cfg);
  sim::Vpu vpu_p(platforms::riscv_vec());
  const auto res_p = percomp.run(vpu_p);

  const auto& p9_b = res_b.phase[miniapp::kSolvePhase];
  const auto& p9_p = res_p.phase[miniapp::kSolvePhase];
  EXPECT_EQ(p9_b.vmem_indexed_instrs, p9_p.vmem_indexed_instrs);
  EXPECT_LT(p9_b.vmem_unit_instrs, p9_p.vmem_unit_instrs);
  EXPECT_LT(p9_b.total_cycles(), p9_p.total_cycles());
}

}  // namespace
