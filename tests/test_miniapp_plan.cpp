// Tests for the phase plan: the modelled compiler must reproduce the
// vectorization pattern the paper reports (Table 4, §4 narrative) at every
// optimization level and VECTOR_SIZE.
#include <gtest/gtest.h>

#include "miniapp/plan.h"
#include "platforms/platforms.h"

namespace {

using vecfd::miniapp::build_plan;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::OptLevel;
using vecfd::miniapp::Phase2Shape;
using vecfd::miniapp::PhasePlan;
using vecfd::platforms::riscv_vec;

PhasePlan plan_for(OptLevel opt, int vs) {
  MiniAppConfig cfg;
  cfg.opt = opt;
  cfg.vector_size = vs;
  return build_plan(riscv_vec(), cfg);
}

TEST(Plan, ScalarBuildVectorizesNothing) {
  const PhasePlan p = plan_for(OptLevel::kScalar, 256);
  for (const auto& [id, d] : p.all()) {
    EXPECT_FALSE(d.vectorize) << id;
  }
}

TEST(Plan, VanillaPhases128AreScalar) {
  // Table 4: phases 1, 2 and 8 show Mv ≈ 0 at every VECTOR_SIZE.
  for (int vs : {16, 64, 128, 240, 256, 512}) {
    const PhasePlan p = plan_for(OptLevel::kVanilla, vs);
    EXPECT_FALSE(p.p1_work_b.vectorize) << vs;
    EXPECT_FALSE(p.p2.vectorize) << vs;
    EXPECT_FALSE(p.p8.vectorize) << vs;
    EXPECT_EQ(p.p2_shape, Phase2Shape::kScalarOuterIvect);
  }
}

TEST(Plan, VanillaVs16OnlyLeanLoopsVectorize) {
  // Table 4 at VECTOR_SIZE = 16: phase 7 vectorizes, phases 3 and 6 "very
  // little" (their lean subkernels), phases 4 and 5 do not.
  const PhasePlan p = plan_for(OptLevel::kVanilla, 16);
  EXPECT_TRUE(p.p7_blk.vectorize);
  EXPECT_TRUE(p.p7_apply.vectorize);
  EXPECT_TRUE(p.p3_inv.vectorize);   // lean det/inverse subkernel
  EXPECT_FALSE(p.p3_jac.vectorize);
  EXPECT_FALSE(p.p3_car.vectorize);
  EXPECT_TRUE(p.p6_dw.vectorize);    // lean advective-test subkernel
  EXPECT_FALSE(p.p6_cab.vectorize);
  EXPECT_FALSE(p.p6_apply.vectorize);
  EXPECT_FALSE(p.p4_vel.vectorize);
  EXPECT_FALSE(p.p4_gve.vectorize);
  EXPECT_FALSE(p.p5_tau.vectorize);
}

TEST(Plan, VanillaVs64SaturatesTheMix) {
  // "Values of VECTOR_SIZE > 64 do not influence the ratio of vector
  // instructions" — by 64 every compute subkernel vectorizes.
  for (int vs : {64, 128, 240, 256, 512}) {
    const PhasePlan p = plan_for(OptLevel::kVanilla, vs);
    for (const auto& [id, d] : p.all()) {
      if (id.rfind("phase1", 0) == 0 || id.rfind("phase2", 0) == 0 ||
          id.rfind("phase8", 0) == 0) {
        EXPECT_FALSE(d.vectorize) << id << " vs=" << vs;
      } else {
        EXPECT_TRUE(d.vectorize) << id << " vs=" << vs;
      }
    }
  }
}

TEST(Plan, Vec2VectorizesDofLoopWithVl4) {
  const PhasePlan p = plan_for(OptLevel::kVec2, 256);
  EXPECT_EQ(p.p2_shape, Phase2Shape::kDofInner);
  ASSERT_TRUE(p.p2.vectorize);
  EXPECT_EQ(p.p2.vl, 4);  // the paper's measured AVL ≈ 4 diagnosis
}

TEST(Plan, IVec2VectorizesIvectLoopWithLongVl) {
  for (int vs : {16, 64, 128, 240, 256, 512}) {
    const PhasePlan p = plan_for(OptLevel::kIVec2, vs);
    EXPECT_EQ(p.p2_shape, Phase2Shape::kIvectInner);
    ASSERT_TRUE(p.p2.vectorize) << vs;
    EXPECT_EQ(p.p2.vl, std::min(vs, 256)) << vs;
  }
}

TEST(Plan, Vec1SplitsPhase1AndVectorizesWorkB) {
  const PhasePlan p0 = plan_for(OptLevel::kIVec2, 240);
  EXPECT_FALSE(p0.p1_split);
  EXPECT_FALSE(p0.p1_work_b.vectorize);
  const PhasePlan p1 = plan_for(OptLevel::kVec1, 240);
  EXPECT_TRUE(p1.p1_split);
  EXPECT_TRUE(p1.p1_work_b.vectorize);
  // VEC1 keeps the IVEC2 phase-2 shape (cumulative optimizations)
  EXPECT_EQ(p1.p2_shape, Phase2Shape::kIvectInner);
  EXPECT_TRUE(p1.p2.vectorize);
}

TEST(Plan, Phase8NeverVectorizes) {
  for (auto opt : {OptLevel::kVanilla, OptLevel::kVec2, OptLevel::kIVec2,
                   OptLevel::kVec1}) {
    const PhasePlan p = plan_for(opt, 512);
    EXPECT_FALSE(p.p8.vectorize);
    EXPECT_NE(p.p8.remark.find("aliasing"), std::string::npos);
  }
}

TEST(Plan, RemarkExplainsVanillaPhase2) {
  const PhasePlan p = plan_for(OptLevel::kVanilla, 256);
  EXPECT_NE(p.p2.remark.find("compile-time"), std::string::npos);
}

TEST(Plan, LoopInfosCoverAllPhases) {
  MiniAppConfig cfg;
  cfg.opt = OptLevel::kVanilla;
  cfg.vector_size = 240;
  const auto loops = vecfd::miniapp::loop_infos(cfg);
  EXPECT_GE(loops.size(), 16u);
  bool saw_phase8 = false;
  for (const auto& l : loops) {
    if (l.id.rfind("phase8", 0) == 0) saw_phase8 = true;
  }
  EXPECT_TRUE(saw_phase8);
}

TEST(Plan, AllListsEveryDecision) {
  const PhasePlan p = plan_for(OptLevel::kVec1, 240);
  EXPECT_EQ(p.all().size(), 16u);
}

}  // namespace
