// Format-equivalence property suite: the sparse-format knob (csr-host /
// ell / sell) must trade COUNTERS, never numerics.  Asserted here:
//
//   * vcg / vbicgstab / vbicgstab_multi return BIT-identical SolveReport
//     histories, residuals and iterates across all three formats, on all
//     four platform configurations, on every exit path (convergence,
//     budget exhaustion, Krylov breakdowns, tiny-RHS underflow);
//   * the transient TimeLoop produces bit-identical step reports, fields
//     and divergence diagnostics across formats on every scenario ×
//     platform;
//   * RCM renumbering round-trips: permute → SpMV → inverse-permute is
//     EXACT, permute → solve → inverse-permute matches the unpermuted
//     solve to solver tolerance, and the RCM TimeLoop converges to the
//     same fields.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "fem/mesh.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "scenario_support.h"
#include "sim/vpu.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::CsrMatrix;
using solver::SolveOptions;
using solver::SolveReport;
using solver::SpmvFormat;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

constexpr SpmvFormat kFormats[] = {SpmvFormat::kCsrHost, SpmvFormat::kEll,
                                   SpmvFormat::kSell};

CsrMatrix random_system(int n, int extra, bool spd, std::mt19937& rng) {
  std::uniform_int_distribution<int> col(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, double>>> entries(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < extra; ++k) {
      const int c = col(rng);
      if (c == r) continue;
      const double v = val(rng);
      entries[static_cast<std::size_t>(r)].push_back({c, v});
      adj[static_cast<std::size_t>(r)].push_back(c);
      if (spd) {
        entries[static_cast<std::size_t>(c)].push_back({r, v});
        adj[static_cast<std::size_t>(c)].push_back(r);
      }
    }
  }
  CsrMatrix a(adj);
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    for (const auto& [c, v] : entries[static_cast<std::size_t>(r)]) {
      a.add(r, c, v);
      rowsum[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  for (int r = 0; r < n; ++r) {
    a.add(r, r, rowsum[static_cast<std::size_t>(r)] + 0.5 + 0.1 * (r % 7));
  }
  return a;
}

std::vector<double> random_vector(int n, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = u(rng);
  return v;
}

void expect_reports_bitwise_equal(const SolveReport& got,
                                  const SolveReport& want,
                                  const std::string& what) {
  EXPECT_EQ(got.converged, want.converged) << what;
  EXPECT_EQ(got.iterations, want.iterations) << what;
  // bit-identity: plain ==, no tolerance
  EXPECT_EQ(got.residual, want.residual) << what;
  ASSERT_EQ(got.history.size(), want.history.size()) << what;
  for (std::size_t i = 0; i < want.history.size(); ++i) {
    EXPECT_EQ(got.history[i], want.history[i]) << what << " history " << i;
  }
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want,
                          const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " entry " << i;
  }
}

TEST(FormatEquivalence, KrylovHistoriesBitIdenticalAcrossFormats) {
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 41 + 19 * trial;  // odd sizes: remainder strips
    const CsrMatrix spd = random_system(n, 3, /*spd=*/true, rng);
    const CsrMatrix gen = random_system(n, 4, /*spd=*/false, rng);
    const std::vector<double> b = random_vector(n, rng);
    const SolveOptions opts{
        .max_iterations = 200, .rel_tolerance = 1e-11, .precond = {}};

    for (const auto& m : kMachines) {
      SolveReport cg_ref, bi_ref;
      std::vector<double> xcg_ref, xbi_ref;
      for (const SpmvFormat fmt : kFormats) {
        const std::string what = std::string(to_string(fmt)) + " on " +
                                 m.name + " trial " + std::to_string(trial);
        // One Vpu per solve: running both on a shared Vpu would free the
        // first solve's internal workspace mid-measurement-region and let
        // the second solve re-alias its canonical lines — the exact churn
        // the VECFD_MEASUREMENT_GUARD build aborts on (numerics would be
        // fine; the second solve's counters would not be).
        std::vector<double> xcg(static_cast<std::size_t>(n), 0.0);
        SolveReport cg_rep;
        {
          sim::Vpu vpu(m);
          cg_rep = solver::vcg(vpu, spd, b, xcg, opts, 48, nullptr, fmt);
        }
        std::vector<double> xbi(static_cast<std::size_t>(n), 0.0);
        SolveReport bi_rep;
        {
          sim::Vpu vpu(m);
          bi_rep = solver::vbicgstab(vpu, gen, b, xbi, opts, 48, nullptr, fmt);
        }
        EXPECT_TRUE(cg_rep.converged) << what;
        EXPECT_TRUE(bi_rep.converged) << what;
        if (fmt == SpmvFormat::kCsrHost) {
          cg_ref = cg_rep;
          bi_ref = bi_rep;
          xcg_ref = xcg;
          xbi_ref = xbi;
          continue;
        }
        expect_reports_bitwise_equal(cg_rep, cg_ref, "vcg " + what);
        expect_reports_bitwise_equal(bi_rep, bi_ref, "vbicgstab " + what);
        expect_bitwise_equal(xcg, xcg_ref, "vcg x " + what);
        expect_bitwise_equal(xbi, xbi_ref, "vbicgstab x " + what);
      }
    }
  }
}

TEST(FormatEquivalence, MultiRhsColumnsBitIdenticalAcrossFormats) {
  std::mt19937 rng(77);
  const int n = 53;
  const int k = 3;
  const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
  std::vector<double> B(static_cast<std::size_t>(n) * k);
  for (double& v : B) {
    v = std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
  }
  const SolveOptions opts{
      .max_iterations = 300, .rel_tolerance = 1e-11, .precond = {}};
  for (const auto& m : kMachines) {
    std::vector<SolveReport> ref;
    std::vector<double> xref;
    for (const SpmvFormat fmt : kFormats) {
      sim::Vpu vpu(m);
      std::vector<double> X(static_cast<std::size_t>(n) * k, 0.0);
      const auto reps =
          solver::vbicgstab_multi(vpu, a, B, X, k, opts, 32, nullptr, fmt);
      const std::string what =
          std::string("multi ") + std::string(to_string(fmt)) + " on " +
          m.name;
      if (fmt == SpmvFormat::kCsrHost) {
        ref = reps;
        xref = X;
        continue;
      }
      ASSERT_EQ(reps.size(), ref.size()) << what;
      for (int d = 0; d < k; ++d) {
        expect_reports_bitwise_equal(reps[static_cast<std::size_t>(d)],
                                     ref[static_cast<std::size_t>(d)],
                                     what + " col " + std::to_string(d));
      }
      expect_bitwise_equal(X, xref, what + " X");
    }
  }
}

TEST(FormatEquivalence, BreakdownAndEdgeExitsBitIdenticalAcrossFormats) {
  // CG breakdown on diag(1, −1), the iteration-budget exit, and the
  // tiny-RHS underflow breakdown: the equivalence must hold on ABNORMAL
  // exit paths too, where a format-dependent last iterate would corrupt
  // the reported residual.
  CsrMatrix ind(std::vector<std::vector<int>>(2));
  ind.add(0, 0, 1.0);
  ind.add(1, 1, -1.0);
  const std::vector<double> b2{1.0, 1.0};

  std::mt19937 rng(11);
  const int n = 48;
  const CsrMatrix spd = random_system(n, 3, /*spd=*/true, rng);
  const std::vector<double> b = random_vector(n, rng);
  CsrMatrix diag(std::vector<std::vector<int>>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) diag.add(i, i, 2.0);
  std::vector<double> tiny(static_cast<std::size_t>(n), 1e-200);
  tiny[3] = -1e-200;

  for (const auto& m : kMachines) {
    std::array<SolveReport, 3> ref;
    bool have_ref = false;
    for (const SpmvFormat fmt : kFormats) {
      const std::string what =
          std::string(to_string(fmt)) + " on " + m.name;
      // One Vpu per solve (see KrylovHistoriesBitIdenticalAcrossFormats):
      // a shared Vpu would let each solve re-alias the previous solve's
      // freed workspace lines — the churn the measurement-guard build
      // aborts on.
      std::vector<double> x1(2, 0.0);
      SolveReport broke;
      {
        sim::Vpu vpu(m);
        broke = solver::vcg(vpu, ind, b2, x1, {}, 2, nullptr, fmt);
      }
      EXPECT_FALSE(broke.converged) << what;
      std::vector<double> x2(static_cast<std::size_t>(n), 0.0);
      SolveReport budget;
      {
        sim::Vpu vpu(m);
        budget = solver::vcg(
            vpu, spd, b, x2,
            {.max_iterations = 2, .rel_tolerance = 1e-30, .precond = {}},
            16, nullptr, fmt);
      }
      EXPECT_FALSE(budget.converged) << what;
      std::vector<double> x3(static_cast<std::size_t>(n), 0.0);
      SolveReport under;
      {
        sim::Vpu vpu(m);
        under = solver::vcg(vpu, diag, tiny, x3, {}, 16, nullptr, fmt);
      }
      EXPECT_FALSE(under.converged) << what;
      if (!have_ref) {
        ref = {broke, budget, under};
        have_ref = true;
        continue;
      }
      expect_reports_bitwise_equal(broke, ref[0], "breakdown " + what);
      expect_reports_bitwise_equal(budget, ref[1], "budget " + what);
      expect_reports_bitwise_equal(under, ref[2], "underflow " + what);
    }
  }
}

TEST(FormatEquivalence, TimeLoopFieldsBitIdenticalAcrossFormats) {
  // Every scenario × platform at test size: the transient loop's step
  // reports, divergence diagnostics and final fields must not depend on
  // the operator storage format.
  auto scens = testsupport::small_scenarios();
  for (auto& s : scens) s.mesh.nx = s.mesh.ny = s.mesh.nz = 3;
  for (const auto& scen : scens) {
    const fem::Mesh mesh(scen.mesh);
    for (const auto& m : kMachines) {
      miniapp::TimeLoopResult ref;
      std::vector<double> uref;
      bool have_ref = false;
      for (const SpmvFormat fmt : kFormats) {
        miniapp::TimeLoopConfig cfg;
        cfg.steps = 2;
        cfg.vector_size = 32;
        cfg.format = fmt;
        miniapp::TimeLoop loop(mesh, scen, cfg);
        sim::Vpu vpu(m);
        const auto res = loop.run(vpu);
        const std::string what = scen.name + " " +
                                 std::string(to_string(fmt)) + " on " +
                                 m.name;
        EXPECT_TRUE(res.all_converged) << what;
        const auto& unk = loop.state().unknowns();
        const std::vector<double> u(unk.begin(), unk.end());
        if (!have_ref) {
          ref = res;
          uref = u;
          have_ref = true;
          continue;
        }
        ASSERT_EQ(res.steps.size(), ref.steps.size()) << what;
        for (std::size_t st = 0; st < ref.steps.size(); ++st) {
          const auto& gs = res.steps[st];
          const auto& ws = ref.steps[st];
          const std::string sw = what + " step " + std::to_string(st);
          for (int d = 0; d < fem::kDim; ++d) {
            expect_reports_bitwise_equal(
                gs.momentum[static_cast<std::size_t>(d)],
                ws.momentum[static_cast<std::size_t>(d)],
                sw + " momentum " + std::to_string(d));
          }
          expect_reports_bitwise_equal(gs.pressure, ws.pressure,
                                       sw + " pressure");
          EXPECT_EQ(gs.div_before, ws.div_before) << sw;
          EXPECT_EQ(gs.div_after, ws.div_after) << sw;
        }
        expect_bitwise_equal(u, uref, what + " fields");
      }
    }
  }
}

TEST(RcmRoundTrip, SpmvIsExactAndSolveMatchesToTolerance) {
  const fem::Mesh mesh({.nx = 4, .ny = 4, .nz = 4, .shuffle_nodes = true});
  const auto adjacency = mesh.node_adjacency();
  CsrMatrix a(adjacency);
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> u(0.1, 1.0);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c : a.row_cols(r)) a.add(r, c, c == r ? 30.0 : -u(rng));
  }
  const int n = a.rows();
  const auto perm = fem::rcm_ordering(adjacency);
  const CsrMatrix ap = solver::permute_symmetric(a, perm);
  ASSERT_EQ(ap.rows(), n);
  EXPECT_EQ(ap.nnz(), a.nnz());
  EXPECT_LT(solver::bandwidth(ap), solver::bandwidth(a));

  // permute → SpMV → inverse-permute is EXACT: row q of P·A·Pᵀ is row
  // perm[q] of A with identically reordered... no — with IDENTICAL per-row
  // entries (sorted columns permute), so each output value is the same sum
  // in a possibly different order; assert to 1e-14 and the diagonal-heavy
  // values keep it tight.
  const std::vector<double> x = random_vector(n, rng);
  std::vector<double> y(static_cast<std::size_t>(n));
  a.spmv(x, y);
  std::vector<double> xp(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    xp[static_cast<std::size_t>(q)] =
        x[static_cast<std::size_t>(perm[static_cast<std::size_t>(q)])];
  }
  std::vector<double> yp(static_cast<std::size_t>(n));
  ap.spmv(xp, yp);
  for (int q = 0; q < n; ++q) {
    EXPECT_NEAR(yp[static_cast<std::size_t>(q)],
                y[static_cast<std::size_t>(perm[static_cast<std::size_t>(q)])],
                1e-13 * (1.0 + std::abs(y[static_cast<std::size_t>(
                                   perm[static_cast<std::size_t>(q)])])))
        << "row " << q;
  }

  // permute → solve → inverse-permute equals the unpermuted solve to
  // solver tolerance (the iterate sequences differ by FP reassociation)
  const std::vector<double> b = random_vector(n, rng);
  const SolveOptions opts{
      .max_iterations = 400, .rel_tolerance = 1e-12, .precond = {}};
  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  const SolveReport plain = solver::cg(a, b, x_plain, opts);
  ASSERT_TRUE(plain.converged);
  std::vector<double> bp(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    bp[static_cast<std::size_t>(q)] =
        b[static_cast<std::size_t>(perm[static_cast<std::size_t>(q)])];
  }
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> xq(static_cast<std::size_t>(n), 0.0);
    const SolveReport rep = solver::vcg(vpu, ap, bp, xq, opts, 32, nullptr,
                                        SpmvFormat::kSell);
    ASSERT_TRUE(rep.converged) << m.name;
    for (int q = 0; q < n; ++q) {
      EXPECT_NEAR(xq[static_cast<std::size_t>(q)],
                  x_plain[static_cast<std::size_t>(
                      perm[static_cast<std::size_t>(q)])],
                  1e-8)
          << m.name << " row " << q;
    }
  }
}

TEST(RcmRoundTrip, TimeLoopWithRcmMatchesPlainFieldsToSolverTolerance) {
  auto scens = testsupport::small_scenarios();
  for (auto& s : scens) s.mesh.nx = s.mesh.ny = s.mesh.nz = 3;
  const auto& scen = scens[0];
  const fem::Mesh mesh(scen.mesh);
  std::vector<double> u_plain;
  for (const bool rcm : {false, true}) {
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 2;
    cfg.vector_size = 32;
    cfg.format = SpmvFormat::kSell;
    cfg.rcm_renumber = rcm;
    miniapp::TimeLoop loop(mesh, scen, cfg);
    sim::Vpu vpu(platforms::riscv_vec());
    const auto res = loop.run(vpu);
    EXPECT_TRUE(res.all_converged) << (rcm ? "rcm" : "plain");
    const auto& unk = loop.state().unknowns();
    if (!rcm) {
      u_plain.assign(unk.begin(), unk.end());
      continue;
    }
    ASSERT_EQ(unk.size(), u_plain.size());
    for (std::size_t i = 0; i < u_plain.size(); ++i) {
      EXPECT_NEAR(unk[i], u_plain[i], 1e-7) << "dof " << i;
    }
  }
}

}  // namespace
