// Golden-file regression of the sweep CSV schema and values.
//
// A small-mesh sweep (assembly + phase-9 solve) is serialized through
// core::write_csv and compared against the checked-in golden at
// tests/golden/sweep_small.csv:
//
//   * the SCHEMA (header row) must match byte for byte — any column
//     addition/rename/reorder is a deliberate, reviewed change;
//   * the VALUES are tolerance-compared per cell (numeric cells within
//     1e-9 relative, everything else exactly), so last-ulp timing noise
//     across compilers doesn't flake while real counter regressions fail.
//
// Updating the golden is deliberate: run the test binary with
// `--regen-golden` and commit the rewritten file.
//
// This suite links plain GTest (no gtest_main): the custom main owns the
// --regen-golden flag.  The exact-value comparison is skipped under ASan,
// whose allocator breaks the 128-byte-aligned deterministic memory model
// (see sanitizer_support.h); the schema check always runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/csv.h"
#include "platforms/platforms.h"
#include "sanitizer_support.h"

namespace {

using namespace vecfd;

const char* kGoldenPath = VECFD_GOLDEN_FILE;

/// The golden workload: small mesh, two VECTOR_SIZEs x two optimization
/// levels, semi-implicit with the chained phase-9 solve, serial (jobs=1)
/// so the golden never depends on the host's core count.
std::string generate_sweep_csv() {
  const fem::Mesh mesh({.nx = 4, .ny = 4, .nz = 2});
  const fem::State state(mesh);
  const core::Experiment ex(mesh, state);
  miniapp::MiniAppConfig cfg;
  cfg.scheme = fem::Scheme::kSemiImplicit;
  cfg.run_solve = true;
  const int sizes[] = {16, 64};
  const miniapp::OptLevel levels[] = {miniapp::OptLevel::kVanilla,
                                      miniapp::OptLevel::kVec1};
  const auto ms =
      ex.sweep_grid(platforms::riscv_vec(), cfg, sizes, levels, /*jobs=*/1);
  std::ostringstream os;
  core::write_csv(os, ms);
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string l;
  while (std::getline(is, l)) out.push_back(l);
  return out;
}

std::vector<std::string> cells_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string c;
  while (std::getline(is, c, ',')) out.push_back(c);
  return out;
}

std::string slurp_golden() {
  std::ifstream is(kGoldenPath, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(GoldenCsv, GoldenFileExists) {
  EXPECT_FALSE(slurp_golden().empty())
      << "missing " << kGoldenPath
      << " — regenerate with: test_golden_csv --regen-golden";
}

TEST(GoldenCsv, SchemaIsByteStable) {
  const auto fresh = lines_of(generate_sweep_csv());
  const auto golden = lines_of(slurp_golden());
  ASSERT_FALSE(golden.empty());
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0], golden[0])
      << "CSV header changed — if intentional, regenerate the golden with "
         "--regen-golden and review the schema diff";
}

TEST(GoldenCsv, ValuesMatchWithinTolerance) {
  VECFD_SKIP_UNDER_ASAN();
  const auto fresh = lines_of(generate_sweep_csv());
  const auto golden = lines_of(slurp_golden());
  ASSERT_EQ(fresh.size(), golden.size()) << "row count changed";
  for (std::size_t row = 1; row < golden.size(); ++row) {
    const auto got = cells_of(fresh[row]);
    const auto want = cells_of(golden[row]);
    ASSERT_EQ(got.size(), want.size()) << "arity of row " << row;
    for (std::size_t col = 0; col < want.size(); ++col) {
      if (got[col] == want[col]) continue;  // fast path, incl. text cells
      char* end_g = nullptr;
      char* end_w = nullptr;
      const double g = std::strtod(got[col].c_str(), &end_g);
      const double w = std::strtod(want[col].c_str(), &end_w);
      const bool numeric = end_g != got[col].c_str() && *end_g == '\0' &&
                           end_w != want[col].c_str() && *end_w == '\0';
      ASSERT_TRUE(numeric) << "non-numeric mismatch at row " << row
                           << " col " << col << ": '" << got[col] << "' vs '"
                           << want[col] << "'";
      EXPECT_NEAR(g, w, 1e-9 * (1.0 + std::abs(w)))
          << "row " << row << " col " << col;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool regen = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen-golden") regen = true;
  }
  if (regen) {
    std::ofstream os(kGoldenPath, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", kGoldenPath);
      return 1;
    }
    os << generate_sweep_csv();
    std::printf("regenerated %s\n", kGoldenPath);
    return 0;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
