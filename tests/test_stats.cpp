// Tests for OLS regression and summary statistics (the Table 6 machinery).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ols.h"

namespace {

using vecfd::stats::mean;
using vecfd::stats::ols_fit;
using vecfd::stats::pearson;
using vecfd::stats::variance;

TEST(Ols, RecoversExactLinearModel) {
  // y = 2 + 3·x1 − 0.5·x2, no noise → R² = 1 and exact coefficients
  std::vector<double> x1{1, 2, 3, 4, 5, 6};
  std::vector<double> x2{3, 1, 4, 1, 5, 9};
  std::vector<double> y(6);
  for (int i = 0; i < 6; ++i) y[i] = 2.0 + 3.0 * x1[i] - 0.5 * x2[i];
  const auto r = ols_fit({x1, x2}, y);
  EXPECT_NEAR(r.beta[0], 2.0, 1e-9);
  EXPECT_NEAR(r.beta[1], 3.0, 1e-9);
  EXPECT_NEAR(r.beta[2], -0.5, 1e-9);
  EXPECT_NEAR(r.r_squared, 1.0, 1e-12);
}

TEST(Ols, RSquaredDropsWithNoise) {
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y{1.2, 1.8, 3.4, 3.6, 5.5, 5.4, 7.3, 7.8};
  const auto r = ols_fit({x}, y);
  EXPECT_GT(r.r_squared, 0.95);
  EXPECT_LT(r.r_squared, 1.0);
}

TEST(Ols, PredictMatchesFit) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{1, 3, 5, 7};  // y = 1 + 2x
  const auto r = ols_fit({x}, y);
  const double p = r.predict(std::vector<double>{10.0});
  EXPECT_NEAR(p, 21.0, 1e-9);
}

TEST(Ols, PredictRejectsWrongArity) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{1, 3, 5, 7};
  const auto r = ols_fit({x}, y);
  EXPECT_THROW(r.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Ols, RejectsShapeErrors) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y2{1, 2};
  EXPECT_THROW(ols_fit({x}, y2), std::invalid_argument);
  EXPECT_THROW(ols_fit({}, std::vector<double>{}), std::invalid_argument);
  // underdetermined: n ≤ k
  std::vector<double> a{1, 2};
  std::vector<double> b{2, 1};
  std::vector<double> yy{1, 2};
  EXPECT_THROW(ols_fit({a, b}, yy), std::invalid_argument);
}

TEST(Ols, SingularOnCollinearRegressors) {
  std::vector<double> x1{1, 2, 3, 4};
  std::vector<double> x2{2, 4, 6, 8};  // 2·x1
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_THROW(ols_fit({x1, x2}, y), std::runtime_error);
}

TEST(Ols, ConstantTargetHasUnitR2) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{5, 5, 5, 5};
  const auto r = ols_fit({x}, y);
  // ss_tot == 0 AND the fit is exact (ss_res == 0): R² = 1 is earned
  EXPECT_DOUBLE_EQ(r.ss_res, 0.0);
  EXPECT_DOUBLE_EQ(r.r_squared, 1.0);
}

TEST(Ols, ConstantTargetWithImperfectFitGetsZeroR2) {
  // y is exactly constant (ss_tot == 0 in exact FP) but the huge-scale
  // regressor makes the normal-equation solve round: the fitted line
  // misses the constant, ss_res > 0, and the old `ss_tot == 0 → R² = 1`
  // convention reported a perfect fit for a visibly bad one.
  std::vector<double> x{1.3e8, 2.7e8, 4.1e8, 8.9e8};
  std::vector<double> y{7.0, 7.0, 7.0, 7.0};
  const auto r = ols_fit({x}, y);
  EXPECT_DOUBLE_EQ(r.ss_tot, 0.0);
  ASSERT_GT(r.ss_res, 0.0);
  EXPECT_DOUBLE_EQ(r.r_squared, 0.0);
}

TEST(Summary, MeanVariance) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Summary, PearsonPerfectAndInverse) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  EXPECT_THROW(pearson(a, std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
