// Tests for the CSV export used by vecfd-run and plotting scripts.
#include <gtest/gtest.h>

#include <sstream>

#include "core/csv.h"

namespace {

using vecfd::core::Experiment;
using vecfd::core::Measurement;

struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 2, .nz = 2}), state(mesh) {}
  vecfd::fem::Mesh mesh;
  vecfd::fem::State state;
};

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

TEST(Csv, HeaderAndRowHaveSameArity) {
  Fixture f;
  const Experiment ex(f.mesh, f.state);
  vecfd::miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;
  const Measurement m = ex.run(vecfd::platforms::riscv_vec(), cfg);

  std::ostringstream os;
  vecfd::core::write_csv_header(os);
  vecfd::core::write_measurement_row(os, m);
  std::istringstream is(os.str());
  std::string header;
  std::string row;
  std::getline(is, header);
  std::getline(is, row);
  const auto h = split(header);
  const auto r = split(row);
  EXPECT_EQ(h.size(), r.size());
  // 23 scalar columns (incl. effective_strip, the solve format, the
  // gather-quality counters and the halo counters of the sharded solve)
  // + 11 phases x 3 (8 assembly + momentum solve + pressure solve +
  // correction), both derived from miniapp::kNumInstrumentedPhases
  EXPECT_EQ(h.size(), 23u + 3u * vecfd::miniapp::kNumInstrumentedPhases);
  EXPECT_NE(header.find("vector_size,effective_strip"), std::string::npos);
  EXPECT_NE(header.find("scheme,format"), std::string::npos);
  EXPECT_NE(header.find("gather_lines,coalesced_lanes,pad_lanes"),
            std::string::npos);
  EXPECT_NE(header.find("ph9_cycles"), std::string::npos);
  EXPECT_NE(header.find("ph11_avl"), std::string::npos);
}

// Regression: a requested VECTOR_SIZE above vlmax is clamped by vsetvl
// inside every solve kernel (solver::solve_effective_strip); the row must
// carry the strip that actually ran next to the requested size, not
// mislabel e.g. a vs=512 sweep point on a vlmax=256 machine.
TEST(Csv, EffectiveStripRecordsTheClampedStrip) {
  Fixture f;
  const Experiment ex(f.mesh, f.state);
  vecfd::miniapp::MiniAppConfig cfg;
  cfg.vector_size = 512;

  const auto vec = vecfd::platforms::riscv_vec();
  ASSERT_LT(vec.vlmax, 512);  // the premise of the mislabeling bug
  std::ostringstream os;
  vecfd::core::write_measurement_row(os, ex.run(vec, cfg));
  auto r = split(os.str());
  EXPECT_EQ(r[4], "512");                             // requested
  EXPECT_EQ(r[5], std::to_string(vec.vlmax));         // actually ran

  // at or below vlmax the strip passes through...
  cfg.vector_size = 64;
  std::ostringstream os2;
  vecfd::core::write_measurement_row(os2, ex.run(vec, cfg));
  EXPECT_EQ(split(os2.str())[5], "64");

  // ...and a scalar-only machine runs scalar loops honouring the request
  cfg.vector_size = 512;
  std::ostringstream os3;
  vecfd::core::write_measurement_row(
      os3, ex.run(vecfd::platforms::riscv_vec_scalar(), cfg));
  EXPECT_EQ(split(os3.str())[5], "512");
}

TEST(Csv, SolveRunPopulatesPhase9Columns) {
  Fixture f;
  const Experiment ex(f.mesh, f.state);
  vecfd::miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.scheme = vecfd::fem::Scheme::kSemiImplicit;

  // without the solve the ph9 columns are zero...
  const Measurement off = ex.run(vecfd::platforms::riscv_vec(), cfg);
  std::ostringstream os_off;
  vecfd::core::write_measurement_row(os_off, off);
  const auto r_off = split(os_off.str());
  ASSERT_EQ(r_off.size(), 23u + 3u * vecfd::miniapp::kNumInstrumentedPhases);
  EXPECT_DOUBLE_EQ(std::stod(r_off[23 + 24]), 0.0);  // ph9_cycles

  // ...and a --solve run fills them, same arity as the header
  cfg.run_solve = true;
  const Measurement on = ex.run(vecfd::platforms::riscv_vec(), cfg);
  std::ostringstream os_on;
  vecfd::core::write_csv_header(os_on);
  vecfd::core::write_measurement_row(os_on, on);
  std::istringstream is(os_on.str());
  std::string header;
  std::string row;
  std::getline(is, header);
  std::getline(is, row);
  const auto h = split(header);
  const auto r_on = split(row);
  EXPECT_EQ(h.size(), r_on.size());
  EXPECT_GT(std::stod(r_on[23 + 24]), 0.0);                    // ph9_cycles
  EXPECT_NEAR(std::stod(r_on[23 + 26]), on.phase_metrics[9].avl, 1e-9);
}

TEST(Csv, RowCarriesIdentityAndMetrics) {
  Fixture f;
  const Experiment ex(f.mesh, f.state);
  vecfd::miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = vecfd::miniapp::OptLevel::kIVec2;
  const Measurement m = ex.run(vecfd::platforms::sx_aurora(), cfg);

  std::ostringstream os;
  vecfd::core::write_measurement_row(os, m);
  const auto r = split(os.str());
  EXPECT_EQ(r[0], "sx-aurora");
  EXPECT_EQ(r[1], "IVEC2");
  EXPECT_EQ(r[2], "explicit");
  EXPECT_EQ(r[3], "ell");                               // solve format
  EXPECT_EQ(r[4], "16");
  EXPECT_EQ(r[5], "16");                                // effective strip
  EXPECT_GT(std::stod(r[6]), 0.0);                      // cycles
  EXPECT_NEAR(std::stod(r[9]), m.overall.mv, 1e-9);     // mv
  EXPECT_NEAR(std::stod(r[12]), m.overall.avl, 1e-9);   // avl
}

TEST(Csv, WriteCsvEmitsAllRows) {
  Fixture f;
  const Experiment ex(f.mesh, f.state);
  vecfd::miniapp::MiniAppConfig cfg;
  const int sizes[] = {8, 16};
  const auto ms =
      ex.sweep_vector_sizes(vecfd::platforms::riscv_vec(), cfg, sizes);
  std::ostringstream os;
  vecfd::core::write_csv(os, ms);
  int lines = 0;
  std::string l;
  std::istringstream is(os.str());
  while (std::getline(is, l)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rows
}

}  // namespace
