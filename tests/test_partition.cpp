// Partitioner invariants for domain-decomposition sharding (DESIGN.md §9):
// solver::strip_bounds must produce contiguous quantum-aligned ownership
// ranges (proof obligation 1 of the ShardedCg P-independence contract —
// no global strip may straddle a shard), and fem::partition_mesh must
// derive EXACTLY the overlap-1 ghost closure of the operator sparsity in
// the solve ordering, so every column a shard's owned rows reference is
// locally addressable.  The closure is recomputed here independently from
// Mesh::node_adjacency and compared element-for-element.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "fem/mesh.h"
#include "fem/partition.h"
#include "solver/sharding.h"

namespace {

using namespace vecfd;

// ---------------------------------------------------------------------------
// strip_bounds
// ---------------------------------------------------------------------------

TEST(StripBounds, CoreInvariants) {
  for (const int n : {0, 1, 7, 64, 125, 216, 343, 1000}) {
    for (const int shards : {1, 2, 3, 4, 8}) {
      for (const int quantum : {1, 4, 16, 64, 240}) {
        const auto b = solver::strip_bounds(n, shards, quantum);
        ASSERT_EQ(b.size(), static_cast<std::size_t>(shards) + 1);
        EXPECT_EQ(b.front(), 0);
        EXPECT_EQ(b.back(), n);
        for (int p = 0; p < shards; ++p) {
          // Monotone: ownership ranges tile [0, n) without overlap.
          EXPECT_LE(b[static_cast<std::size_t>(p)],
                    b[static_cast<std::size_t>(p) + 1])
              << "n=" << n << " P=" << shards << " q=" << quantum;
        }
        for (int p = 1; p < shards; ++p) {
          // Obligation 1: interior bounds are strip-aligned (a bound
          // clamped to n coincides with the global tail, which no strip
          // crosses either).
          const int bp = b[static_cast<std::size_t>(p)];
          EXPECT_TRUE(bp % quantum == 0 || bp == n)
              << "bound " << bp << " n=" << n << " P=" << shards
              << " q=" << quantum;
        }
        for (int p = 0; p < shards; ++p) {
          // Balance: each shard within one quantum of the ideal share.
          const int owned = b[static_cast<std::size_t>(p) + 1] -
                            b[static_cast<std::size_t>(p)];
          EXPECT_LE(std::abs(owned - n / shards), quantum)
              << "n=" << n << " P=" << shards << " q=" << quantum;
        }
      }
    }
  }
}

TEST(StripBounds, SingleShardOwnsEverything) {
  const auto b = solver::strip_bounds(343, 1, 240);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 343);
}

TEST(StripBounds, QuantumLargerThanRangeLeavesEmptyShards) {
  // A quantum coarser than the whole range cannot split it: all interior
  // bounds collapse to 0 or n and some shards legitimately own nothing.
  const int n = 100;
  const auto b = solver::strip_bounds(n, 4, 512);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), n);
  for (int p = 1; p < 4; ++p) {
    EXPECT_TRUE(b[static_cast<std::size_t>(p)] == 0 ||
                b[static_cast<std::size_t>(p)] == n);
  }
}

TEST(StripBounds, ExactDivisionIsExact) {
  // 256 nodes, 4 shards, quantum 16: the ideal split is representable.
  const auto b = solver::strip_bounds(256, 4, 16);
  const std::vector<int> want = {0, 64, 128, 192, 256};
  EXPECT_EQ(b, want);
}

// ---------------------------------------------------------------------------
// partition_mesh
// ---------------------------------------------------------------------------

/// Independent recomputation of the overlap-1 ghost closure in the solve
/// ordering: for shard p, every solve-ordered neighbor of an owned node
/// that p does not own.  @p adj is in ORIGINAL node ids; @p perm maps
/// solve id -> original id (empty = identity).
std::vector<int> expected_ghosts(const solver::ShardPlan& plan, int p,
                                 const std::vector<std::vector<int>>& adj,
                                 const std::vector<int>& perm) {
  const int n = plan.size();
  std::vector<int> inv(static_cast<std::size_t>(n));
  if (perm.empty()) {
    for (int i = 0; i < n; ++i) inv[static_cast<std::size_t>(i)] = i;
  } else {
    for (int i = 0; i < n; ++i)
      inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  }
  std::set<int> ghosts;
  const int lo = plan.bounds[static_cast<std::size_t>(p)];
  const int hi = plan.bounds[static_cast<std::size_t>(p) + 1];
  for (int i = lo; i < hi; ++i) {
    const int orig = perm.empty() ? i : perm[static_cast<std::size_t>(i)];
    for (const int j_orig : adj[static_cast<std::size_t>(orig)]) {
      const int j = inv[static_cast<std::size_t>(j_orig)];
      if (j < lo || j >= hi) ghosts.insert(j);
    }
  }
  return {ghosts.begin(), ghosts.end()};
}

TEST(PartitionMesh, GhostsAreExactlyTheOverlap1Closure) {
  const fem::Mesh mesh({.nx = 5, .ny = 5, .nz = 5});
  const auto adj = mesh.node_adjacency();
  for (const int shards : {2, 4, 8}) {
    for (const int quantum : {8, 64}) {
      const fem::MeshPartition part =
          fem::partition_mesh(mesh, shards, quantum);
      ASSERT_EQ(part.plan.shards, shards);
      ASSERT_EQ(part.plan.size(), mesh.num_nodes());
      for (int p = 0; p < shards; ++p) {
        const auto want = expected_ghosts(part.plan, p, adj, {});
        EXPECT_EQ(part.plan.ghosts[static_cast<std::size_t>(p)], want)
            << "shard " << p << " of " << shards << " q=" << quantum;
      }
    }
  }
}

TEST(PartitionMesh, GhostClosureComposesWithRcm) {
  const fem::Mesh mesh({.nx = 4, .ny = 4, .nz = 4});
  const auto adj = mesh.node_adjacency();
  const std::vector<int> perm = fem::rcm_ordering(adj);
  const fem::MeshPartition part = fem::partition_mesh(mesh, 4, 16, perm);
  for (int p = 0; p < 4; ++p) {
    const auto want = expected_ghosts(part.plan, p, adj, perm);
    EXPECT_EQ(part.plan.ghosts[static_cast<std::size_t>(p)], want)
        << "shard " << p;
  }
}

TEST(PartitionMesh, EveryElementAssignedToLowestNodeOwner) {
  const fem::Mesh mesh({.nx = 4, .ny = 4, .nz = 4});
  for (const int shards : {2, 4}) {
    const fem::MeshPartition part = fem::partition_mesh(mesh, shards, 16);
    ASSERT_EQ(part.element_shard.size(),
              static_cast<std::size_t>(mesh.num_elements()));
    for (int e = 0; e < mesh.num_elements(); ++e) {
      const auto nodes = mesh.element(e);
      // Identity solve ordering: the lowest solve-ordered node IS the
      // lowest node id.
      int lowest = nodes[0];
      for (const int n : nodes) lowest = std::min(lowest, n);
      EXPECT_EQ(part.element_shard[static_cast<std::size_t>(e)],
                part.plan.owner(lowest))
          << "element " << e;
      EXPECT_GE(part.element_shard[static_cast<std::size_t>(e)], 0);
      EXPECT_LT(part.element_shard[static_cast<std::size_t>(e)], shards);
    }
  }
}

TEST(PartitionMesh, LocalGlobalRoundTrip) {
  const fem::Mesh mesh({.nx = 4, .ny = 4, .nz = 4});
  const std::vector<int> perm = fem::rcm_ordering(mesh.node_adjacency());
  const fem::MeshPartition part = fem::partition_mesh(mesh, 4, 16, perm);
  const solver::ShardPlan& plan = part.plan;
  for (int p = 0; p < plan.shards; ++p) {
    const int lo = plan.bounds[static_cast<std::size_t>(p)];
    const int hi = plan.bounds[static_cast<std::size_t>(p) + 1];
    for (int g = lo; g < hi; ++g) {
      EXPECT_EQ(plan.owner(g), p);
      EXPECT_EQ(plan.local_index(p, g), g - lo);
    }
    const auto& ghosts = plan.ghosts[static_cast<std::size_t>(p)];
    EXPECT_TRUE(std::is_sorted(ghosts.begin(), ghosts.end()));
    for (std::size_t k = 0; k < ghosts.size(); ++k) {
      const int g = ghosts[k];
      EXPECT_NE(plan.owner(g), p) << "owned node listed as ghost";
      EXPECT_EQ(plan.local_index(p, g),
                plan.num_owned(p) + static_cast<int>(k));
    }
    // A node that is neither owned nor ghost has no local slot.
    for (int g = 0; g < plan.size(); ++g) {
      const bool owned = g >= lo && g < hi;
      const bool ghost = std::binary_search(ghosts.begin(), ghosts.end(), g);
      if (!owned && !ghost) {
        EXPECT_EQ(plan.local_index(p, g), -1);
      }
    }
  }
}

TEST(PartitionMesh, HaloIsSublinearInOwned) {
  // Surface-to-volume: on the 1-D strip partition the per-shard ghost set
  // is one element layer (O(width²)) against an O(width³) owned volume, so
  // summed ghosts stay well below summed owned nodes.
  const fem::Mesh mesh({.nx = 6, .ny = 6, .nz = 6});
  const fem::MeshPartition part = fem::partition_mesh(mesh, 4, 8);
  int total_ghosts = 0;
  for (int p = 0; p < 4; ++p) total_ghosts += part.plan.num_ghosts(p);
  EXPECT_GT(total_ghosts, 0);
  EXPECT_LT(total_ghosts, mesh.num_nodes());
}

TEST(PartitionMesh, RejectsInvalidArguments) {
  const fem::Mesh mesh({.nx = 3, .ny = 3, .nz = 3});
  EXPECT_THROW(fem::partition_mesh(mesh, 0, 8), std::invalid_argument);
  EXPECT_THROW(fem::partition_mesh(mesh, 2, 0), std::invalid_argument);
  // perm of the wrong size is not a permutation of the node range.
  std::vector<int> short_perm(static_cast<std::size_t>(mesh.num_nodes()) - 1);
  for (std::size_t i = 0; i < short_perm.size(); ++i)
    short_perm[i] = static_cast<int>(i);
  EXPECT_THROW(fem::partition_mesh(mesh, 2, 8, short_perm),
               std::invalid_argument);
  // duplicate entry: node 0 mapped twice, node 1 never.
  std::vector<int> dup(static_cast<std::size_t>(mesh.num_nodes()));
  for (std::size_t i = 0; i < dup.size(); ++i) dup[i] = static_cast<int>(i);
  dup[1] = 0;
  EXPECT_THROW(fem::partition_mesh(mesh, 2, 8, dup), std::invalid_argument);
}

}  // namespace
