// The central correctness property of the reproduction: every optimization
// level, VECTOR_SIZE and scheme computes the same global system as the
// golden scalar reference — the paper's refactors are performance
// transformations, never semantic ones.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fem/reference_assembly.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"

namespace {

using vecfd::fem::assemble_global;
using vecfd::fem::kDim;
using vecfd::fem::Mesh;
using vecfd::fem::Scheme;
using vecfd::fem::ShapeTable;
using vecfd::fem::State;
using vecfd::miniapp::MiniApp;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::MiniAppResult;
using vecfd::miniapp::OptLevel;
using vecfd::platforms::riscv_vec;
using vecfd::platforms::riscv_vec_scalar;

// 4x4x4 = 64 elements: covers multi-chunk runs for vs <= 64 and
// tail-padding for vs that do not divide 64.
struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 4, .nz = 4}), state(mesh), shape() {}
  Mesh mesh;
  State state;
  ShapeTable shape;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void expect_rhs_matches(const std::vector<double>& got,
                        const std::vector<double>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  double max_rel = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(want[i]));
    max_rel = std::max(max_rel, std::fabs(got[i] - want[i]) / scale);
  }
  EXPECT_LT(max_rel, 1e-12) << label;
}

class Equivalence
    : public ::testing::TestWithParam<std::tuple<OptLevel, int>> {};

TEST_P(Equivalence, ExplicitRhsMatchesReference) {
  Fixture& f = fixture();
  const auto [opt, vs] = GetParam();
  MiniAppConfig cfg;
  cfg.opt = opt;
  cfg.vector_size = vs;
  cfg.scheme = Scheme::kExplicit;
  MiniApp app(f.mesh, f.state, cfg);
  const auto machine =
      opt == OptLevel::kScalar ? riscv_vec_scalar() : riscv_vec();
  vecfd::sim::Vpu vpu(machine);
  const MiniAppResult r = app.run(vpu);

  const auto ref = assemble_global(f.mesh, f.state, f.shape,
                                   Scheme::kExplicit);
  expect_rhs_matches(r.rhs, ref.rhs,
                     std::string(to_string(opt)) + "/vs=" +
                         std::to_string(vs));
}

INSTANTIATE_TEST_SUITE_P(
    OptByVs, Equivalence,
    ::testing::Combine(::testing::Values(OptLevel::kScalar,
                                         OptLevel::kVanilla,
                                         OptLevel::kVec2, OptLevel::kIVec2,
                                         OptLevel::kVec1),
                       // 24 exercises tail padding (64 % 24 != 0)
                       ::testing::Values(8, 16, 24, 64)),
    // `param_info`, not `info`: the macro splices this lambda into a gtest
    // function whose parameter is already named `info` (-Wshadow).
    [](const auto& param_info) {
      return std::string(to_string(std::get<0>(param_info.param))) + "_vs" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(EquivalenceSemiImplicit, MatrixAndRhsMatchReference) {
  Fixture& f = fixture();
  for (OptLevel opt : {OptLevel::kScalar, OptLevel::kVanilla,
                       OptLevel::kVec1}) {
    MiniAppConfig cfg;
    cfg.opt = opt;
    cfg.vector_size = 16;
    cfg.scheme = Scheme::kSemiImplicit;
    MiniApp app(f.mesh, f.state, cfg);
    const auto machine =
        opt == OptLevel::kScalar ? riscv_vec_scalar() : riscv_vec();
    vecfd::sim::Vpu vpu(machine);
    const MiniAppResult r = app.run(vpu);
    ASSERT_TRUE(r.has_matrix);

    const auto ref = assemble_global(f.mesh, f.state, f.shape,
                                     Scheme::kSemiImplicit);
    expect_rhs_matches(r.rhs, ref.rhs, "semi rhs");
    ASSERT_EQ(r.matrix.nnz(), ref.matrix.nnz());
    const auto gv = r.matrix.vals();
    const auto rv = ref.matrix.vals();
    double max_rel = 0.0;
    for (std::size_t i = 0; i < gv.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(rv[i]));
      max_rel = std::max(max_rel, std::fabs(gv[i] - rv[i]) / scale);
    }
    EXPECT_LT(max_rel, 1e-12) << to_string(opt);
  }
}

TEST(EquivalenceAcrossMachines, SameValuesOnEveryPlatform) {
  // The numbers must not depend on the machine model, only the cycles do.
  Fixture& f = fixture();
  MiniAppConfig cfg;
  cfg.opt = OptLevel::kVec1;
  cfg.vector_size = 16;
  MiniApp app(f.mesh, f.state, cfg);

  vecfd::sim::Vpu v1(riscv_vec());
  vecfd::sim::Vpu v2(vecfd::platforms::sx_aurora());
  vecfd::sim::Vpu v3(vecfd::platforms::mn4_avx512());
  const auto r1 = app.run(v1);
  const auto r2 = app.run(v2);
  const auto r3 = app.run(v3);
  expect_rhs_matches(r2.rhs, r1.rhs, "aurora vs riscv");
  expect_rhs_matches(r3.rhs, r1.rhs, "mn4 vs riscv");
}

TEST(EquivalenceDeterminism, RepeatedRunsBitIdenticalValues) {
  Fixture& f = fixture();
  MiniAppConfig cfg;
  cfg.opt = OptLevel::kVanilla;
  cfg.vector_size = 24;
  MiniApp app(f.mesh, f.state, cfg);
  vecfd::sim::Vpu vpu(riscv_vec());
  const auto r1 = app.run(vpu);
  const auto r2 = app.run(vpu);
  ASSERT_EQ(r1.rhs.size(), r2.rhs.size());
  for (std::size_t i = 0; i < r1.rhs.size(); ++i) {
    EXPECT_EQ(r1.rhs[i], r2.rhs[i]);
  }
  // Cycles are only near-deterministic: the global RHS buffer is a fresh
  // allocation each run, so its cache-set mapping (and thus conflict
  // misses) shifts slightly — as on real hardware.
  EXPECT_NEAR(r1.cycles, r2.cycles, 0.005 * r1.cycles);
}

TEST(MiniAppValidation, RejectsBadVectorSize) {
  Fixture& f = fixture();
  MiniAppConfig cfg;
  cfg.vector_size = 0;
  EXPECT_THROW(MiniApp(f.mesh, f.state, cfg), std::invalid_argument);
}

}  // namespace
