// Tests for the experiment runner and report rendering.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/report.h"
#include "sanitizer_support.h"

namespace {

using vecfd::core::Experiment;
using vecfd::core::Measurement;
using vecfd::core::Table;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::OptLevel;
using vecfd::platforms::riscv_vec;
using vecfd::platforms::riscv_vec_scalar;

struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 4, .nz = 2}), state(mesh) {}
  vecfd::fem::Mesh mesh;
  vecfd::fem::State state;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Experiment, PhaseSharesSumToOne) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kVanilla;
  const Measurement m = ex.run(riscv_vec(), cfg);
  double sum = 0.0;
  for (int p = 1; p <= 8; ++p) sum += m.phase_share(p);
  EXPECT_NEAR(sum, 1.0, 1e-9);  // nothing outside the 8 phases
  EXPECT_GT(m.total_cycles, 0.0);
}

TEST(Experiment, ScalarRunHasZeroVectorActivity) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kScalar;
  const Measurement m = ex.run(riscv_vec_scalar(), cfg);
  EXPECT_DOUBLE_EQ(m.overall.mv, 0.0);
  EXPECT_DOUBLE_EQ(m.overall.av, 0.0);
}

TEST(Experiment, VanillaVectorizesComputePhases) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;  // = 4x4x2/2 chunks of 16
  cfg.opt = OptLevel::kVanilla;
  const Measurement m = ex.run(riscv_vec(), cfg);
  // at vs=16 only the lean subkernels vectorize (Table 4), so the overall
  // mix is small but non-zero
  EXPECT_GT(m.overall.mv, 0.02);
  EXPECT_GT(m.phase_metrics[7].mv, 0.3);    // phase 7 vectorized at vs=16
  EXPECT_LT(m.phase_metrics[2].mv, 1e-9);   // phase 2 scalar
  EXPECT_LT(m.phase_metrics[8].mv, 1e-9);   // phase 8 scalar
}

TEST(Experiment, SweepVectorSizesPreservesOrder) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.opt = OptLevel::kVanilla;
  const int sizes[] = {8, 16, 32};
  const auto ms = ex.sweep_vector_sizes(riscv_vec(), cfg, sizes);
  ASSERT_EQ(ms.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ms[i].app.vector_size, sizes[i]);
  }
}

TEST(Experiment, SweepOptLevels) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  const OptLevel levels[] = {OptLevel::kVanilla, OptLevel::kVec1};
  const auto ms = ex.sweep_opt_levels(riscv_vec(), cfg, levels);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].app.opt, OptLevel::kVanilla);
  EXPECT_EQ(ms[1].app.opt, OptLevel::kVec1);
  // VEC1 (cumulative: includes IVEC2) must not be slower overall
  EXPECT_LT(ms[1].total_cycles, ms[0].total_cycles);
}

TEST(Experiment, SolveRunRecordsPhase9) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.scheme = vecfd::fem::Scheme::kSemiImplicit;
  cfg.run_solve = true;
  const Measurement m = ex.run(riscv_vec(), cfg);

  ASSERT_TRUE(m.has_solve);
  EXPECT_TRUE(m.solve.converged) << "res=" << m.solve.residual;
  EXPECT_GT(m.solve.iterations, 0);
  // the solve is attributed to phase 9 with live vector counters
  const int p = vecfd::miniapp::kSolvePhase;
  EXPECT_GT(m.phase_cycles(p), 0.0);
  EXPECT_GT(m.phase[p].vector_instrs(), 0u);
  EXPECT_GT(m.phase[p].vmem_indexed_instrs, 0u);  // the vgather SpMV
  EXPECT_GT(m.phase_metrics[p].avl, 0.0);
  // phase shares (1..9) still account for every cycle
  double sum = 0.0;
  for (int q = 1; q <= vecfd::miniapp::kNumInstrumentedPhases; ++q) {
    sum += m.phase_share(q);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Experiment, SolveWithoutMatrixThrows) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.run_solve = true;  // explicit scheme: nothing to solve
  EXPECT_THROW(ex.run(riscv_vec(), cfg), std::invalid_argument);
}

TEST(Experiment, SolveSweepIsDeterministicAcrossJobs) {
  VECFD_SKIP_UNDER_ASAN();
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.scheme = vecfd::fem::Scheme::kSemiImplicit;
  cfg.run_solve = true;
  const int sizes[] = {8, 16};
  const auto serial = ex.sweep_vector_sizes(riscv_vec(), cfg, sizes, 1);
  const auto parallel = ex.sweep_vector_sizes(riscv_vec(), cfg, sizes, 2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].total_cycles, parallel[i].total_cycles);
    EXPECT_EQ(serial[i].phase[9].vl_sum, parallel[i].phase[9].vl_sum);
    EXPECT_EQ(serial[i].solve.iterations, parallel[i].solve.iterations);
    EXPECT_EQ(serial[i].solve.residual, parallel[i].solve.residual);
  }
}

TEST(Experiment, RhsCarriedInMeasurement) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 8;
  const Measurement m = ex.run(riscv_vec(), cfg);
  EXPECT_EQ(m.rhs.size(),
            static_cast<std::size_t>(f.mesh.num_nodes()) * 3);
}

// ---- report ------------------------------------------------------------

TEST(Report, TableAlignsAndCounts) {
  Table t({"phase", "cycles", "share"});
  t.add_row({"6", "123456", "35.1%"});
  t.add_row({"7", "98765", "28.0%"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| phase"), std::string::npos);
  EXPECT_NE(s.find("| 6"), std::string::npos);
  // header separator present
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Report, TableRejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Report, Formatters) {
  EXPECT_EQ(vecfd::core::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(vecfd::core::fmt_pct(0.421, 1), "42.1%");
  EXPECT_EQ(vecfd::core::fmt_speedup(7.6), "7.60x");
  EXPECT_EQ(vecfd::core::fmt_sci(1430000.0, 2), "1.43e+06");
  const std::string b = vecfd::core::banner("Table 5", "vCPI");
  EXPECT_NE(b.find("Table 5"), std::string::npos);
}

}  // namespace
