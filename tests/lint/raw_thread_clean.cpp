// vecfd-lint fixture: raw-thread COMPLIANT patterns — zero findings.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <atomic>

namespace core {
class Mutex;
class MutexLock;
void parallel_for_index(int n, int grain, void (*body)(int));
}  // namespace core

namespace fixture {

// Fan-out through the annotated pool, locking through core::Mutex — the
// only primitives the thread-safety analysis and TSan job vouch for.
void good_fanout(int n) { core::parallel_for_index(n, 1, nullptr); }

// Atomics are allowed: they carry no lock to annotate.
std::atomic<int> progress{0};

// std::thread in comments and "std::mutex" in strings are not code.
const char* kDoc = "std::mutex belongs in core/parallel.h only";

}  // namespace fixture
