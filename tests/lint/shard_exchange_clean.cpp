// vecfd-lint fixture: shard-exchange CLEAN.
// Ghost slots refreshed through sim::HaloExchange::exchange, ghost setup
// before measurement opens, and plain reads are all fine — zero findings.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <span>
#include <vector>

namespace sim {
class Vpu;
class HaloExchange;
}  // namespace sim

namespace fixture {

double vnorm2(sim::Vpu& vpu, const std::vector<double>& v);
void exchange(sim::HaloExchange& halo, std::span<sim::Vpu* const> vpus,
              std::span<double* const> fields);

// Seeding ghost slots BEFORE the first Vpu use is setup, not measurement.
double good_setup_then_exchange(sim::Vpu& vpu, sim::HaloExchange& halo,
                                std::vector<double>& ghost_x,
                                std::span<sim::Vpu* const> vpus,
                                std::span<double* const> fields) {
  ghost_x[0] = 0.0;  // pre-measurement seed: allowed
  double n = vnorm2(vpu, ghost_x);
  // The sanctioned path: the exchange itself notes the halo counters.
  exchange(halo, vpus, fields);
  return n + vnorm2(vpu, ghost_x);
}

// Reading ghost slots inside the region is what they are for.
double good_ghost_read(sim::Vpu& vpu, const std::vector<double>& halo_recv) {
  double n = vnorm2(vpu, halo_recv);
  double acc = 0.0;
  for (std::size_t i = 0; i < halo_recv.size(); ++i) {
    acc += halo_recv[i];  // read, not a store
  }
  bool empty = halo_recv[0] == 0.0;  // comparison, not assignment
  return empty ? n : n + acc;
}

// Stores into buffers without halo/ghost names are out of scope here
// (measured-alloc polices allocation churn; plain owned stores are work).
double good_owned_store(sim::Vpu& vpu, std::vector<double>& owned) {
  double n = vnorm2(vpu, owned);
  owned[0] = n;
  return vnorm2(vpu, owned);
}

}  // namespace fixture
