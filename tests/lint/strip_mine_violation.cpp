// vecfd-lint fixture: strip-mine-contract VIOLATIONS — hand-rolled strip
// loops calling set_vl / issuing vector ops outside for_strips.  One
// finding per function, anchored at the first offending call.  Not
// compiled.
#include <algorithm>

namespace sim {
struct Vec {};
struct Vpu {
  int set_vl(int n);
  Vec vload(const double* p);
  void vstore(double* p, Vec v);
  Vec vfma(Vec a, Vec b, Vec c);
};
}  // namespace sim

void hand_rolled_strips(sim::Vpu& vpu, const double* x, double* y, int n) {
  for (int i = 0; i < n;) {
    const int vl = vpu.set_vl(std::min(256, n - i));  // EXPECT-FINDING(strip-mine-contract)
    const sim::Vec a = vpu.vload(x + i);
    vpu.vstore(y + i, a);
    i += vl;
  }
}

void vector_issue_in_while(sim::Vpu& vpu, const double* x, double* y, int n) {
  int i = 0;
  while (i < n) {
    const sim::Vec a = vpu.vload(x + i);  // EXPECT-FINDING(strip-mine-contract)
    const sim::Vec b = vpu.vload(y + i);
    vpu.vstore(y + i, vpu.vfma(a, b, a));
    i += 8;
  }
}
