// vecfd-lint fixture: determinism-audit VIOLATIONS — cross-iteration FP
// accumulation inside a parallel_for_index callback, and unordered-map
// iteration feeding report output.  Not compiled.
#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace core {
template <class Fn>
void parallel_for_index(std::size_t count, int jobs, Fn&& fn);
}

double sum_parallel(const std::vector<double>& data, int jobs) {
  double total = 0.0;
  core::parallel_for_index(data.size(), jobs, [&](std::size_t i) {
    total += data[i] * data[i];  // EXPECT-FINDING(determinism-audit)
  });
  return total;
}

void write_report(std::ostream& os,
                  const std::unordered_map<std::string, double>& m) {  // EXPECT-FINDING(determinism-audit)
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
}
