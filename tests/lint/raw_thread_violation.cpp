// vecfd-lint fixture: raw-thread VIOLATIONS.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <mutex>
#include <thread>

namespace fixture {

int worker();

int bad_fanout() {
  std::thread t(worker);  // EXPECT-FINDING(raw-thread)
  t.join();
  return 0;
}

class BadCounter {
 public:
  void bump() {
    std::lock_guard<std::mutex> g(mu_);  // EXPECT-FINDING(raw-thread) EXPECT-FINDING(raw-thread)
    ++n_;
  }

 private:
  std::mutex mu_;  // EXPECT-FINDING(raw-thread)
  int n_ = 0;
};

// Mentioning std::thread in a comment or string is NOT a finding:
// std::thread is fine to discuss.
const char* kDoc = "never use std::thread directly";

}  // namespace fixture
