// vecfd-lint fixture: csv-phase-literal COMPLIANT patterns — zero
// findings.  Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <string>

namespace miniapp {
inline constexpr int kNumInstrumentedPhases = 10;
}

namespace fixture {

// The compliant pattern (src/core/csv.cpp): derive every phase column
// from kNumInstrumentedPhases so header and rows can never desync.
std::string good_header() {
  std::string h = "scenario";
  for (int p = 0; p < miniapp::kNumInstrumentedPhases; ++p) {
    h += ",ph" + std::to_string(p) + "_cycles";  // built, not hard-coded
  }
  return h + "\n";
}

// "ph" followed by a non-digit is not a phase column.
const char* kLabel = "phase table";

// Comments may say ph9_cycles freely; only string literals are schema.
std::string good_doc() { return "see DESIGN.md"; }

}  // namespace fixture
