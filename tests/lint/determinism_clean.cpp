// vecfd-lint fixture: determinism-audit COMPLIANT.  Parallel callbacks
// write per-slot results (reduced deterministically after the join), local
// accumulators declared inside the callback are fine, and ordered
// containers feed the output layer.  Not compiled.
#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace core {
template <class Fn>
void parallel_for_index(std::size_t count, int jobs, Fn&& fn);
}

double sum_parallel(const std::vector<double>& data, int jobs) {
  std::vector<double> slot(data.size());
  core::parallel_for_index(data.size(), jobs, [&](std::size_t i) {
    double local = 0.0;  // per-iteration accumulator: declared inside
    local += data[i] * data[i];
    slot[i] = local;  // per-slot write: deterministic regardless of schedule
  });
  double total = 0.0;
  for (double v : slot) total += v;  // serial reduction after the join
  return total;
}

void write_report(std::ostream& os, const std::map<std::string, double>& m) {
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
}
