// vecfd-lint fixture: solve-report-history COMPLIANT patterns — zero
// findings.  Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <utility>
#include <vector>

namespace solver {
struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
  std::vector<double> history;
};
SolveReport& checked(SolveReport& rep);
std::vector<SolveReport>& checked(std::vector<SolveReport>& reps);
}  // namespace solver

namespace fixture {

using solver::SolveReport;
using solver::checked;

// Every exit funnels through the gate.
SolveReport good_solver(int iters) {
  SolveReport rep;
  rep.history.push_back(1.0);
  for (int it = 0; it < iters; ++it) {
    rep.iterations = it + 1;
    rep.history.push_back(0.5);
    rep.residual = rep.history.back();
  }
  rep.residual = rep.history.back();
  return checked(rep);
}

std::vector<SolveReport> good_multi(int k) {
  std::vector<SolveReport> reps(static_cast<std::size_t>(k));
  for (auto& rep : reps) rep.history.push_back(0.0);
  return checked(reps);
}

// Reference-returning helpers (like checked() itself) pass reports
// through; the gate applies to by-value producers only.
SolveReport& passthrough(SolveReport& rep) { return rep; }

// Nested lambdas returning non-report values are not producer exits.
SolveReport good_with_lambda(int iters) {
  SolveReport rep;
  rep.history.push_back(1.0);
  auto half = [](int v) { return v / 2; };
  rep.iterations = half(iters) * 0;
  rep.residual = rep.history.back();
  return checked(rep);
}

}  // namespace fixture
