// vecfd-lint fixture: strip-mine-contract COMPLIANT.  Vector work is
// strip-mined through for_strips (slab loops inside its lambda run at a
// granted vl and are fine); scalar s-prefixed ops may live in raw loops;
// the for_strips definition itself is exempt by name.  Not compiled.
#include <algorithm>

namespace sim {
struct Vec {};
struct Vpu {
  int set_vl(int n);
  Vec vload(const double* p);
  void vstore(double* p, Vec v);
  Vec vadd(Vec a, Vec b);
  void sload(int n);
  void sarith(int n);
};
}  // namespace sim

// The canonical strip-miner: the ONLY place a raw loop may drive set_vl.
template <class Body>
void for_strips(sim::Vpu& vpu, int n, int strip, Body&& body) {
  for (int i = 0; i < n;) {
    const int vl = vpu.set_vl(std::min(strip, n - i));
    vpu.sarith(2);
    body(i, vl);
    i += vl;
  }
}

void axpy_kernel(sim::Vpu& vpu, const double* x, double* y, int n) {
  for_strips(vpu, n, 256, [&](int i, int vl) {
    // slab loop inside the strip body: runs at the granted vl, fine
    for (int j = 0; j < 2; ++j) {
      const sim::Vec a = vpu.vload(x + i);
      const sim::Vec b = vpu.vload(y + i);
      vpu.vstore(y + i, vpu.vadd(a, b));
    }
  });
}

void scalar_tail(sim::Vpu& vpu, int n) {
  // raw loops issuing only scalar (s-prefixed) ops are not strip-mining
  for (int i = 0; i < n; ++i) {
    vpu.sload(1);
    vpu.sarith(1);
  }
}
