// vecfd-lint fixture: csv-phase-literal VIOLATIONS.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <string>

namespace fixture {

// Hard-coding one phase's column name is exactly how the PR 2 CSV
// header/row desync happened: the header said N phases, the rows wrote M.
std::string bad_header() {
  return "scenario,ph0_cycles,ph1_cycles\n";  // EXPECT-FINDING(csv-phase-literal)
}

std::string bad_key() {
  std::string k = "ph9_l2_misses";  // EXPECT-FINDING(csv-phase-literal)
  return k;
}

}  // namespace fixture
