// vecfd-lint fixture: strip-mine-contract VIOLATIONS — transfer kernels
// hand-rolling the strip walk instead of going through for_strips.  One
// finding per function, anchored at the first offending call.  Not
// compiled.
#include <algorithm>

namespace sim {
struct Vec {};
struct Vpu {
  int set_vl(int n);
  Vec vsplat(double s);
  Vec vload(const double* p);
  Vec vload_i32(const int* p);
  Vec vgather(const double* base, Vec idx);
  void vstore(double* p, Vec v);
  Vec vadd(Vec a, Vec b);
  Vec vfma_s(Vec a, double s, Vec c);
};
}  // namespace sim

void restrict_sum_hand_rolled(sim::Vpu& vpu, const int* cols, int width,
                              int nc, const double* r, double* rc) {
  for (int c = 0; c < nc;) {
    const int vl = vpu.set_vl(std::min(256, nc - c));  // EXPECT-FINDING(strip-mine-contract)
    sim::Vec acc = vpu.vsplat(0.0);
    for (int w = 0; w < width; ++w) {
      acc = vpu.vadd(acc, vpu.vgather(r, vpu.vload_i32(cols + w * nc + c)));
    }
    vpu.vstore(rc + c, acc);
    c += vl;
  }
}

void prolong_axpy_in_while(sim::Vpu& vpu, const int* agg, double alpha,
                           const double* zc, double* z, int n) {
  int i = 0;
  while (i < n) {
    const sim::Vec idx = vpu.vload_i32(agg + i);  // EXPECT-FINDING(strip-mine-contract)
    const sim::Vec cs = vpu.vgather(zc, idx);
    vpu.vstore(z + i, vpu.vfma_s(cs, alpha, vpu.vload(z + i)));
    i += 8;
  }
}
