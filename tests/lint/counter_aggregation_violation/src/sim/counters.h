// vecfd-lint fixture: counter-aggregation VIOLATIONS (mini repo root).
// Parsed only by tools/vecfd_lint.py --self-test via --repo-root.
#pragma once
#include <cstdint>

namespace vecfd::sim {

struct Counters {
  std::uint64_t ok_counter = 0;
  std::uint64_t missing_plus = 0;  // EXPECT-FINDING(counter-aggregation)
  std::uint64_t missing_minus = 0;  // EXPECT-FINDING(counter-aggregation)
  double missing_test = 0.0;  // EXPECT-FINDING(counter-aggregation)

  Counters& operator+=(const Counters& o);
  Counters& operator-=(const Counters& o);
};

inline Counters& Counters::operator+=(const Counters& o) {
  ok_counter += o.ok_counter;
  missing_minus += o.missing_minus;
  missing_test += o.missing_test;
  return *this;
}

inline Counters& Counters::operator-=(const Counters& o) {
  ok_counter -= o.ok_counter;
  missing_plus -= o.missing_plus;
  missing_test -= o.missing_test;
  return *this;
}

}  // namespace vecfd::sim
