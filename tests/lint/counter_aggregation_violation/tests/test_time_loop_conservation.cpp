// vecfd-lint fixture: the conservation test covers ok_counter, missing_plus
// and missing_minus but NOT missing_test — so missing_test must be flagged.
// Not compiled.
#include "sim/counters.h"

void check(const vecfd::sim::Counters& total,
           const vecfd::sim::Counters& sum) {
  (void)total.ok_counter;
  (void)sum.missing_plus;
  (void)sum.missing_minus;
}
