// vecfd-lint fixture: conservation coverage for both fields.  Not compiled.
#include "sim/counters.h"

void check(const vecfd::sim::Counters& total,
           const vecfd::sim::Counters& sum) {
  (void)total.cycles;
  (void)sum.flops;
}
