// vecfd-lint fixture: counter-aggregation COMPLIANT (mini repo root) —
// every field appears in operator+=, operator-= and the conservation test.
// Parsed only by tools/vecfd_lint.py --self-test via --repo-root.
#pragma once
#include <cstdint>

namespace vecfd::sim {

struct Counters {
  std::uint64_t cycles = 0;
  double flops = 0.0;

  Counters& operator+=(const Counters& o);
  Counters& operator-=(const Counters& o);

  /// Derived accessors carry no '=' initialiser, so they are not fields.
  std::uint64_t total() const { return cycles; }
};

inline Counters& Counters::operator+=(const Counters& o) {
  cycles += o.cycles;
  flops += o.flops;
  return *this;
}

inline Counters& Counters::operator-=(const Counters& o) {
  cycles -= o.cycles;
  flops -= o.flops;
  return *this;
}

}  // namespace vecfd::sim
