// vecfd-lint fixture: strip-mine-contract COMPLIANT — preconditioner-style
// transfer kernels (the deflation restriction/prolongation shape of
// solver/preconditioner.cpp).  The padded-slab gather walk and the width-1
// prolongation gather both run inside for_strips bodies; per-slab inner
// loops run at the granted vl and are fine.  Not compiled.
#include <algorithm>

namespace sim {
struct Vec {};
struct Vpu {
  int set_vl(int n);
  Vec vsplat(double s);
  Vec vload(const double* p);
  Vec vload_i32(const int* p);
  Vec vgather(const double* base, Vec idx);
  void vstore(double* p, Vec v);
  Vec vadd(Vec a, Vec b);
  Vec vfma_s(Vec a, double s, Vec c);
  void sarith(int n);
};
}  // namespace sim

template <class Body>
void for_strips(sim::Vpu& vpu, int n, int strip, Body&& body) {
  for (int i = 0; i < n;) {
    const int vl = vpu.set_vl(std::min(strip, n - i));
    vpu.sarith(2);
    body(i, vl);
    i += vl;
  }
}

// Restriction rc[c] = Σ r[cols[w][c]] over padded column slabs (pads are
// masked −1 indices): the slab loop lives inside the strip body.
void restrict_sum(sim::Vpu& vpu, const int* cols, int width, int nc,
                  const double* r, double* rc, int strip) {
  for_strips(vpu, nc, strip, [&](int c, int /*vl*/) {
    sim::Vec acc = vpu.vsplat(0.0);
    for (int w = 0; w < width; ++w) {
      const sim::Vec idx = vpu.vload_i32(cols + w * nc + c);
      acc = vpu.vadd(acc, vpu.vgather(r, idx));
      vpu.sarith(1);
    }
    vpu.vstore(rc + c, acc);
  });
}

// Prolongation z[i] += alpha * zc[agg[i]]: a width-1 gather feeding a
// scaled accumulate, strip-mined like every other BLAS-1 kernel.
void prolong_axpy(sim::Vpu& vpu, const int* agg, double alpha,
                  const double* zc, double* z, int n, int strip) {
  for_strips(vpu, n, strip, [&](int i, int /*vl*/) {
    const sim::Vec idx = vpu.vload_i32(agg + i);
    const sim::Vec cs = vpu.vgather(zc, idx);
    const sim::Vec vz = vpu.vload(z + i);
    vpu.vstore(z + i, vpu.vfma_s(cs, alpha, vz));
  });
}
