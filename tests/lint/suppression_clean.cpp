// vecfd-lint fixture: inline suppressions — zero findings.  Each would-be
// violation carries a justified `vecfd-lint: allow(...)` marker on the
// offending line or the line above.  Not compiled.
#include <vector>

namespace sim {
class Vpu;
}

namespace fixture {

double vnorm2(sim::Vpu& vpu, const std::vector<double>& v);

double suppressed_alloc(sim::Vpu& vpu, const std::vector<double>& x) {
  double n = vnorm2(vpu, x);
  // vecfd-lint: allow(measured-alloc) fixture: storage never Vpu-touched
  std::vector<double> scratch(x.size());
  scratch[0] = n;
  return scratch[0];
}

std::string suppressed_phase_key() {
  return "ph9_cycles";  // vecfd-lint: allow(csv-phase-literal) fixture demo
}

}  // namespace fixture
