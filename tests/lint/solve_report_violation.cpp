// vecfd-lint fixture: solve-report-history VIOLATIONS.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <vector>

namespace solver {
struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
  std::vector<double> history;
};
SolveReport& checked(SolveReport& rep);
}  // namespace solver

namespace fixture {

using solver::SolveReport;

// A producer returning its report without the checked() gate: the PR 4
// history off-by-one class escapes unverified.
SolveReport bad_solver(int iters) {
  SolveReport rep;
  rep.iterations = iters;
  if (iters == 0) {
    return rep;  // EXPECT-FINDING(solve-report-history)
  }
  rep.history.push_back(0.0);
  return rep;  // EXPECT-FINDING(solve-report-history)
}

// A braced literal bypasses the gate just as thoroughly.
SolveReport bad_literal() {
  return SolveReport{true, 0, 0.0, {}};  // EXPECT-FINDING(solve-report-history)
}

// Multi-RHS producers owe the gate per column.
std::vector<SolveReport> bad_multi(int k) {
  std::vector<SolveReport> reps(static_cast<std::size_t>(k));
  return reps;  // EXPECT-FINDING(solve-report-history)
}

}  // namespace fixture
