// vecfd-lint fixture: measured-alloc COMPLIANT patterns — zero findings.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <vector>

namespace sim {
class Vpu;
}

namespace fixture {

double vnorm2(sim::Vpu& vpu, const std::vector<double>& v);

/// Hoisted workspace: all storage exists before the region opens.
struct Workspace {
  std::vector<double> scratch;
};

// Allocation BEFORE the first Vpu use is outside the measurement region.
double good_hoisted(sim::Vpu& vpu, const std::vector<double>& x) {
  std::vector<double> scratch(x.size());  // region not open yet: fine
  double n = vnorm2(vpu, x);
  scratch[0] = n;
  return vnorm2(vpu, scratch);
}

// In-place refresh of a reusable workspace keeps the same heap block in
// the steady state — the compliant pattern from the PR 3 fix.
double good_workspace(sim::Vpu& vpu, Workspace& ws,
                      const std::vector<double>& x) {
  double n = vnorm2(vpu, x);
  ws.scratch.assign(x.size(), n);  // assign: no flagged churn
  return vnorm2(vpu, ws.scratch);
}

// Reference bindings name existing buffers; they allocate nothing.
double good_reference(sim::Vpu& vpu, Workspace& ws) {
  double n = vnorm2(vpu, ws.scratch);
  std::vector<double>& r = ws.scratch;
  return n + vnorm2(vpu, r);
}

// Functions that never touch the Vpu have no measurement region at all.
double no_region(sim::Vpu& /*vpu*/, const std::vector<double>& x) {
  std::vector<double> copy(x);
  return copy.empty() ? 0.0 : copy[0];
}

}  // namespace fixture
