// vecfd-lint fixture: checkpoint-fields VIOLATION — `next_step` is written
// by serialize_state but never restored by deserialize_state, the exact
// drift the rule fences (a resumed run would restart from step 0 with
// step-k fields and silently break bit-identity).
#include "miniapp/checkpoint.h"

namespace vecfd::miniapp {

std::vector<std::uint8_t> serialize_state(const TimeLoopCheckpoint& c) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(c.config_hash));
  out.push_back(static_cast<std::uint8_t>(c.next_step));
  out.push_back(static_cast<std::uint8_t>(c.unknowns.size()));
  return out;
}

TimeLoopCheckpoint deserialize_state(const std::vector<std::uint8_t>& buf) {  // EXPECT-FINDING(checkpoint-fields)
  TimeLoopCheckpoint c;
  c.config_hash = buf.at(0);
  c.unknowns.resize(buf.at(2));
  return c;
}

}  // namespace vecfd::miniapp
