// vecfd-lint fixture: measured-alloc VIOLATIONS.
// Each line tagged EXPECT-FINDING(...) must be reported; nothing else may be.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <vector>

namespace sim {
class Vpu;
}

namespace fixture {

double vnorm2(sim::Vpu& vpu, const std::vector<double>& v);

// The PR 3 bug shape: a scratch vector allocated after measurement starts.
double bad_kernel(sim::Vpu& vpu, const std::vector<double>& x) {
  double n = vnorm2(vpu, x);  // first Vpu use: the measurement region opens
  std::vector<double> scratch(x.size());  // EXPECT-FINDING(measured-alloc)
  scratch[0] = n;
  return vnorm2(vpu, scratch);
}

// Resizing a live buffer mid-region can free-and-realloc its lines.
double bad_resize(sim::Vpu& vpu, std::vector<double>& work) {
  double n = vnorm2(vpu, work);
  work.resize(work.size() * 2);  // EXPECT-FINDING(measured-alloc)
  return n + vnorm2(vpu, work);
}

// Raw delete of a (potentially touched) buffer inside the region.
double bad_delete(sim::Vpu& vpu, const std::vector<double>& x) {
  double n = vnorm2(vpu, x);
  double* tmp = new double[8];
  tmp[0] = n;
  n += tmp[0];
  delete[] tmp;  // EXPECT-FINDING(measured-alloc)
  return n;
}

}  // namespace fixture
