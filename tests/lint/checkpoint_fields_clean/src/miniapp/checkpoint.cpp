// vecfd-lint fixture: checkpoint-fields CLEAN — every registered field is
// mentioned in both directions.
#include "miniapp/checkpoint.h"

namespace vecfd::miniapp {

std::vector<std::uint8_t> serialize_state(const TimeLoopCheckpoint& c) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(c.config_hash));
  out.push_back(static_cast<std::uint8_t>(c.next_step));
  out.push_back(static_cast<std::uint8_t>(c.unknowns.size()));
  return out;
}

TimeLoopCheckpoint deserialize_state(const std::vector<std::uint8_t>& buf) {
  TimeLoopCheckpoint c;
  c.config_hash = buf.at(0);
  c.next_step = buf.at(1);
  c.unknowns.resize(buf.at(2));
  return c;
}

}  // namespace vecfd::miniapp
