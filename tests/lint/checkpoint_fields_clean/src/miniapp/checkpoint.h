// vecfd-lint fixture: checkpoint-fields CLEAN (mini repo root).
// Parsed only by tools/vecfd_lint.py --self-test via --repo-root.
#pragma once
#include <cstdint>
#include <vector>

namespace vecfd::miniapp {

#define VECFD_TIMELOOP_STATE(X) \
  X(config_hash)                \
  X(next_step)                  \
  X(unknowns)

struct TimeLoopCheckpoint {
  std::uint64_t config_hash = 0;
  std::int64_t next_step = 0;
  std::vector<double> unknowns;
};

std::vector<std::uint8_t> serialize_state(const TimeLoopCheckpoint& c);
TimeLoopCheckpoint deserialize_state(const std::vector<std::uint8_t>& buf);

}  // namespace vecfd::miniapp
