// vecfd-lint fixture: the JSON emitter iterates the registry too.  Not
// compiled.
#include <ostream>

#include "sim/counters.h"

void emit(std::ostream& os, const vecfd::sim::Counters& c) {
  c.visit([&](const char* col, const auto& v) {
    os << '"' << col << "\": " << v << '\n';
  });
}
