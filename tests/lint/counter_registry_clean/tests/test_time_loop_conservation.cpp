// vecfd-lint fixture: the conservation test compares counters through the
// visitor, so a counter is covered the moment it enters the registry.  Not
// compiled.
#include "sim/counters.h"

void check(const vecfd::sim::Counters& total,
           const vecfd::sim::Counters& sum) {
  vecfd::sim::Counters delta = total;
  delta -= sum;
  delta.visit([](const char*, const auto& v) { (void)v; });
}
