// vecfd-lint fixture: counter-registry COMPLIANT (mini repo root) — every
// field is a VECFD_COUNTERS entry, the operators are pure registry
// expansions, member functions may keep locals (masked out of the member
// scan).  Parsed only by tools/vecfd_lint.py --self-test via --repo-root.
#pragma once
#include <cstdint>

namespace vecfd::sim {

#define VECFD_COUNTERS(X)                \
  X(cycles, std::uint64_t, "cycles")     \
  X(flops, double, "flops")

#define VECFD_COUNTER_FIELD(name, type, col) type name = {};
#define VECFD_COUNTER_ADD(name, type, col) name += o.name;
#define VECFD_COUNTER_SUB(name, type, col) name -= o.name;
#define VECFD_COUNTER_VISIT(name, type, col) fn(col, name);

struct Counters {
  VECFD_COUNTERS(VECFD_COUNTER_FIELD)

  template <class Fn>
  void visit(Fn&& fn) const {
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
  }

  Counters& operator+=(const Counters& o) {
    VECFD_COUNTERS(VECFD_COUNTER_ADD)
    return *this;
  }

  Counters& operator-=(const Counters& o) {
    VECFD_COUNTERS(VECFD_COUNTER_SUB)
    return *this;
  }

  /// Member-function locals are masked out of the field scan: this `=`
  /// initialiser must not read as a smuggled data member.
  std::uint64_t busy() const {
    std::uint64_t t = 0;
    visit([&](const char*, const auto& v) { t += static_cast<std::uint64_t>(v); });
    return t;
  }
};

}  // namespace vecfd::sim
