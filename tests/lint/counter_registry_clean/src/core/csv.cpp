// vecfd-lint fixture: a registry consumer that iterates the registry
// instead of naming counters — columns and values both derive from
// Counters::visit, so they cannot drift.  Not compiled.
#include <ostream>

#include "sim/counters.h"

void write_row(std::ostream& os, const vecfd::sim::Counters& c) {
  c.visit([&](const char* col, const auto& v) { os << ',' << v; (void)col; });
}
