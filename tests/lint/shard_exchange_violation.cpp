// vecfd-lint fixture: shard-exchange VIOLATIONS.
// Each line tagged EXPECT-FINDING(...) must be reported; nothing else may be.
// Not compiled — parsed only by tools/vecfd_lint.py --self-test.
#include <cstring>
#include <vector>

namespace sim {
class Vpu;
}

namespace fixture {

double vnorm2(sim::Vpu& vpu, const std::vector<double>& v);

// The bug shape the rule exists for: hand-copying a remote value into a
// ghost slot after measurement starts — the transfer never reaches the
// halo_lines_sent/recv counters, so the volume model undercounts.
double bad_ghost_store(sim::Vpu& vpu, std::vector<double>& ghost_x,
                       const std::vector<double>& remote) {
  double n = vnorm2(vpu, ghost_x);  // first Vpu use: measurement region opens
  ghost_x[0] = remote[0];  // EXPECT-FINDING(shard-exchange)
  return n + vnorm2(vpu, ghost_x);
}

// Accumulating into a halo buffer is the same free transfer.
double bad_halo_accumulate(sim::Vpu& vpu, std::vector<double>& halo_recv,
                           const std::vector<double>& remote) {
  double n = vnorm2(vpu, halo_recv);
  for (std::size_t i = 0; i < halo_recv.size(); ++i) {
    halo_recv[i] += remote[i];  // EXPECT-FINDING(shard-exchange)
  }
  return n;
}

// Writes through .data() are still raw ghost-slot stores.
double bad_ghost_data_store(sim::Vpu& vpu, std::vector<double>& ghosts,
                            double v) {
  double n = vnorm2(vpu, ghosts);
  ghosts.data()[1] = v;  // EXPECT-FINDING(shard-exchange)
  return n;
}

}  // namespace fixture
