// vecfd-lint fixture: counter-registry VIOLATIONS (mini repo root).
// Parsed only by tools/vecfd_lint.py --self-test via --repo-root.
#pragma once
#include <cstdint>

namespace vecfd::sim {

#define VECFD_COUNTERS(X)                        \
  X(cycles, std::uint64_t, "cycles")             \
  X(flops, double, "flops")                      \
  X(hidden_from_csv, std::uint64_t, "hidden")

#define VECFD_COUNTER_FIELD(name, type, col) type name = {};
#define VECFD_COUNTER_SUB(name, type, col) name -= o.name;
#define VECFD_COUNTER_VISIT(name, type, col) fn(col, name);

struct Counters {
  VECFD_COUNTERS(VECFD_COUNTER_FIELD)

  // A field smuggled past the registry: never aggregated, never emitted.
  std::uint64_t smuggled = 0;  // EXPECT-FINDING(counter-registry)

  template <class Fn>
  void visit(Fn&& fn) const {
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
  }

  // Hand-written aggregation: drifts the moment the registry grows.
  Counters& operator+=(const Counters& o) {  // EXPECT-FINDING(counter-registry)
    cycles += o.cycles;
    flops += o.flops;
    return *this;
  }

  // Expands the registry but ALSO names a field on the side.
  Counters& operator-=(const Counters& o) {  // EXPECT-FINDING(counter-registry)
    VECFD_COUNTERS(VECFD_COUNTER_SUB)
    flops -= o.flops;
    return *this;
  }
};

}  // namespace vecfd::sim
