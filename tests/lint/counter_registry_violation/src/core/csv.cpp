// vecfd-lint fixture: a consumer with a hand-kept column list.  It names
// cycles and flops but NOT hidden_from_csv — the registry entry exists yet
// one consumer silently drops it.  Both direct reads are findings: the rule
// makes a hidden field impossible by banning the hand list itself.  Not
// compiled.
#include <ostream>

#include "sim/counters.h"

void write_row(std::ostream& os, const vecfd::sim::Counters& c) {
  os << c.cycles;         // EXPECT-FINDING(counter-registry)
  os << ',' << c.flops;   // EXPECT-FINDING(counter-registry)
}
