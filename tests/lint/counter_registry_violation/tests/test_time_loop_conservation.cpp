// vecfd-lint fixture: the conservation test goes through the visitor but
// ALSO asserts one counter by name — the moment that counter is renamed or
// split, the assert silently pins the wrong thing.  Not compiled.
#include "sim/counters.h"

void check(const vecfd::sim::Counters& total,
           const vecfd::sim::Counters& sum) {
  vecfd::sim::Counters delta = total;
  delta -= sum;
  delta.visit([](const char*, const auto& v) { (void)v; });
  (void)total.hidden_from_csv;  // EXPECT-FINDING(counter-registry)
}
