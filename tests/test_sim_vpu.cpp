// Tests for the Vpu execution engine: data correctness of every operation,
// counter accounting, phase attribution, vl semantics, failure modes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "platforms/platforms.h"
#include "sim/vpu.h"

namespace {

using vecfd::platforms::riscv_vec;
using vecfd::platforms::riscv_vec_scalar;
using vecfd::sim::Vec;
using vecfd::sim::Vpu;

Vpu make_vpu() { return Vpu(riscv_vec()); }

TEST(Vpu, SetVlClampsToVlmax) {
  Vpu v = make_vpu();
  EXPECT_EQ(v.set_vl(1000), 256);
  EXPECT_EQ(v.vl(), 256);
  EXPECT_EQ(v.set_vl(17), 17);
  EXPECT_EQ(v.counters().vconfig_instrs, 2u);
}

TEST(Vpu, SetVlRejectsNonPositive) {
  Vpu v = make_vpu();
  EXPECT_THROW(v.set_vl(0), std::invalid_argument);
  EXPECT_THROW(v.set_vl(-3), std::invalid_argument);
}

TEST(Vpu, VectorOpsThrowOnScalarMachine) {
  Vpu v{riscv_vec_scalar()};
  EXPECT_THROW(v.set_vl(8), std::logic_error);
  EXPECT_THROW(v.vsplat(1.0), std::logic_error);
}

TEST(Vpu, LoadComputeStoreRoundTrip) {
  Vpu v = make_vpu();
  std::vector<double> a(64), b(64), out(64);
  std::iota(a.begin(), a.end(), 1.0);
  std::iota(b.begin(), b.end(), 100.0);
  v.set_vl(64);
  const Vec va = v.vload(a.data());
  const Vec vb = v.vload(b.data());
  const Vec vc = v.vfma(va, vb, va);  // a*b + a
  v.vstore(out.data(), vc);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(out[i], a[i] * b[i] + a[i]);
  }
  EXPECT_EQ(v.counters().vmem_unit_instrs, 3u);
  EXPECT_EQ(v.counters().varith_instrs, 1u);
  EXPECT_EQ(v.counters().flops, 2u * 64u);
}

TEST(Vpu, ArithmeticSemantics) {
  Vpu v = make_vpu();
  std::vector<double> a{4.0, 9.0, 16.0, 25.0};
  v.set_vl(4);
  const Vec va = v.vload(a.data());
  const Vec sum = v.vadd(va, va);
  const Vec diff = v.vsub(sum, va);
  const Vec prod = v.vmul(va, va);
  const Vec quot = v.vdiv(prod, va);
  const Vec root = v.vsqrt(va);
  const Vec cbrt = v.vcbrt(va);
  const Vec neg = v.vfnma(va, v.vsplat(1.0), v.vsplat(10.0));  // 10 - a
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sum[i], 2.0 * a[i]);
    EXPECT_DOUBLE_EQ(diff[i], a[i]);
    EXPECT_DOUBLE_EQ(prod[i], a[i] * a[i]);
    EXPECT_DOUBLE_EQ(quot[i], a[i]);
    EXPECT_DOUBLE_EQ(root[i], std::sqrt(a[i]));
    EXPECT_DOUBLE_EQ(cbrt[i], std::cbrt(a[i]));
    EXPECT_DOUBLE_EQ(neg[i], 10.0 - a[i]);
  }
}

TEST(Vpu, VectorScalarForms) {
  Vpu v = make_vpu();
  std::vector<double> a{1.0, 2.0, 3.0};
  v.set_vl(3);
  const Vec va = v.vload(a.data());
  const Vec m = v.vmul_s(va, 2.5);
  const Vec s = v.vadd_s(va, -1.0);
  const Vec f = v.vfma_s(va, 3.0, m);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i], a[i] * 2.5);
    EXPECT_DOUBLE_EQ(s[i], a[i] - 1.0);
    EXPECT_DOUBLE_EQ(f[i], a[i] * 3.0 + m[i]);
  }
}

TEST(Vpu, GatherScatterWithIndexVector) {
  Vpu v = make_vpu();
  std::vector<double> table(100);
  std::iota(table.begin(), table.end(), 0.0);
  std::vector<std::int32_t> idx{7, 42, 3, 99};
  std::vector<double> out(100, 0.0);
  v.set_vl(4);
  const Vec vi = v.vload_i32(idx.data());
  const Vec g = v.vgather(table.data(), vi);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g[i], double(idx[i]));
  v.vscatter(out.data(), vi, g);
  EXPECT_DOUBLE_EQ(out[42], 42.0);
  EXPECT_DOUBLE_EQ(out[99], 99.0);
  EXPECT_EQ(v.counters().vmem_indexed_instrs, 2u);
}

TEST(Vpu, StridedAccess) {
  Vpu v = make_vpu();
  std::vector<double> m(12);
  std::iota(m.begin(), m.end(), 0.0);
  v.set_vl(4);
  const Vec col = v.vload_strided(m.data() + 1, 3);  // 1, 4, 7, 10
  EXPECT_DOUBLE_EQ(col[0], 1.0);
  EXPECT_DOUBLE_EQ(col[3], 10.0);
  std::vector<double> out(12, 0.0);
  v.vstore_strided(out.data(), 3, col);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[9], 10.0);
  EXPECT_EQ(v.counters().vmem_strided_instrs, 2u);
}

TEST(Vpu, ControlLaneOps) {
  Vpu v = make_vpu();
  v.set_vl(5);
  const Vec s = v.vsplat(3.25);
  const Vec i = v.viota();
  const Vec mask = v.vge_s(i, 2.0);
  const Vec sel = v.vmerge(mask, s, i);
  for (int k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(s[k], 3.25);
    EXPECT_DOUBLE_EQ(i[k], double(k));
    EXPECT_DOUBLE_EQ(sel[k], k >= 2 ? 3.25 : double(k));
  }
  EXPECT_EQ(v.counters().vctrl_instrs, 4u);
}

TEST(Vpu, ReductionSemanticsAndClassification) {
  Vpu v = make_vpu();
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  v.set_vl(8);
  const Vec va = v.vload(a.data());
  EXPECT_DOUBLE_EQ(v.vredsum(va), 36.0);
  EXPECT_EQ(v.counters().varith_instrs, 1u);
}

TEST(Vpu, OperandLengthMismatchThrows) {
  Vpu v = make_vpu();
  std::vector<double> a(8, 1.0);
  v.set_vl(8);
  const Vec va = v.vload(a.data());
  v.set_vl(4);
  const Vec vb = v.vload(a.data());
  EXPECT_THROW(v.vadd(va, vb), std::invalid_argument);
  EXPECT_THROW(v.vscatter(a.data(), va, vb), std::invalid_argument);
}

TEST(Vpu, ScalarHelpersComputeAndCount) {
  Vpu v = make_vpu();
  EXPECT_DOUBLE_EQ(v.sadd(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(v.ssub(2, 3), -1.0);
  EXPECT_DOUBLE_EQ(v.smul(2, 3), 6.0);
  EXPECT_DOUBLE_EQ(v.sdiv(3, 2), 1.5);
  EXPECT_DOUBLE_EQ(v.sfma(2, 3, 4), 10.0);
  EXPECT_DOUBLE_EQ(v.sfnma(2, 3, 4), -2.0);
  EXPECT_DOUBLE_EQ(v.ssqrt(9), 3.0);
  EXPECT_DOUBLE_EQ(v.scbrt(27), 3.0);
  EXPECT_EQ(v.counters().scalar_alu_instrs, 8u);
  EXPECT_EQ(v.counters().flops, 1u + 1 + 1 + 1 + 2 + 2 + 1 + 1);
}

TEST(Vpu, ScalarMemoryTouchesCache) {
  Vpu v = make_vpu();
  double x = 1.5;
  EXPECT_DOUBLE_EQ(v.sload(&x), 1.5);
  v.sstore(&x, 2.5);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(v.counters().scalar_mem_instrs, 2u);
  EXPECT_EQ(v.counters().l1_accesses, 2u);
  EXPECT_EQ(v.counters().l1_misses, 1u);  // second access hits
}

TEST(Vpu, PhaseAttribution) {
  Vpu v = make_vpu();
  v.profiler().begin(3);
  v.sarith(10);
  v.profiler().end(3);
  v.sarith(5);
  EXPECT_EQ(v.profiler().phase(3).scalar_alu_instrs, 10u);
  EXPECT_EQ(v.profiler().phase(0).scalar_alu_instrs, 5u);
  EXPECT_EQ(v.counters().scalar_alu_instrs, 15u);
}

TEST(Vpu, PhaseMisuseThrows) {
  Vpu v = make_vpu();
  v.profiler().begin(1);
  EXPECT_THROW(v.profiler().begin(2), std::logic_error);
  EXPECT_THROW(v.profiler().end(2), std::logic_error);
  v.profiler().end(1);
  EXPECT_THROW(v.profiler().end(1), std::logic_error);
  EXPECT_THROW(v.profiler().begin(0), std::out_of_range);
  // phase 9 (the Krylov solve) is in range by default; 10 is not
  v.profiler().begin(vecfd::sim::kDefaultNumPhases);
  v.profiler().end(vecfd::sim::kDefaultNumPhases);
  EXPECT_THROW(v.profiler().begin(vecfd::sim::kDefaultNumPhases + 1),
               std::out_of_range);
}

TEST(Vpu, ResetClearsEverything) {
  Vpu v = make_vpu();
  double x = 0.0;
  v.sstore(&x, 1.0);
  v.set_vl(8);
  v.vsplat(1.0);
  v.reset();
  EXPECT_EQ(v.counters().total_instrs(), 0u);
  EXPECT_DOUBLE_EQ(v.counters().total_cycles(), 0.0);
  EXPECT_EQ(v.vl(), v.vlmax());
  // cache was flushed: next access misses again
  v.sload(&x);
  EXPECT_EQ(v.counters().l1_misses, 1u);
}

TEST(Vpu, VlSumTracksVectorLengths) {
  Vpu v = make_vpu();
  std::vector<double> a(300, 1.0);
  v.set_vl(300);  // clamps to 256
  const Vec x = v.vload(a.data());
  v.set_vl(40);
  const Vec y = v.vload(a.data());
  (void)x;
  (void)y;
  EXPECT_EQ(v.counters().vl_sum, 256u + 40u);
}

TEST(Vpu, SecondsFollowFrequency) {
  Vpu v = make_vpu();
  const std::uint64_t n = 50 * 1000 * 1000;
  v.sarith(n);  // n instructions at scalar_cpi each
  const double expect =
      double(n) * v.config().scalar_cpi / (v.config().frequency_mhz * 1e6);
  EXPECT_NEAR(v.seconds(), expect, 1e-9);
}

TEST(Vpu, InvalidConfigRejected) {
  vecfd::sim::MachineConfig bad = riscv_vec();
  bad.vlmax = 0;
  EXPECT_THROW(Vpu{bad}, std::invalid_argument);
  bad = riscv_vec();
  bad.lanes = -1;
  EXPECT_THROW(Vpu{bad}, std::invalid_argument);
}

}  // namespace
