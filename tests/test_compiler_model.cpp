// Tests for the auto-vectorization decision model — it must reproduce the
// decisions the paper reports in §4 / Table 4.
#include <gtest/gtest.h>

#include "compiler/vectorization_model.h"
#include "platforms/platforms.h"

namespace {

using vecfd::compiler::AccessPattern;
using vecfd::compiler::Decision;
using vecfd::compiler::LoopInfo;
using vecfd::compiler::VectorizationModel;
using vecfd::platforms::riscv_vec;

LoopInfo simple_loop(int trip) {
  return {.id = "t",
          .trip_count = trip,
          .bound_is_compile_time_constant = true,
          .pattern = AccessPattern::kContiguous,
          .memory_streams = 2};
}

TEST(VectorizationModel, DisabledMeansScalar) {
  const auto m = riscv_vec();
  const VectorizationModel vm(m, /*enabled=*/false);
  const Decision d = vm.analyze(simple_loop(256));
  EXPECT_FALSE(d.vectorize);
  EXPECT_NE(d.remark.find("disabled"), std::string::npos);
}

TEST(VectorizationModel, ScalarMachineNeverVectorizes) {
  const auto m = vecfd::platforms::riscv_vec_scalar();
  const VectorizationModel vm(m, /*enabled=*/true);
  EXPECT_FALSE(vm.analyze(simple_loop(256)).vectorize);
}

TEST(VectorizationModel, OpaqueBoundBlocksVectorization) {
  // the phase-2 story: VECTOR_DIM dummy argument re-fetched each iteration
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  LoopInfo l = simple_loop(256);
  l.bound_is_compile_time_constant = false;
  const Decision d = vm.analyze(l);
  EXPECT_FALSE(d.vectorize);
  EXPECT_NE(d.remark.find("compile-time"), std::string::npos);
}

TEST(VectorizationModel, FusedNonVectorizableBlocksAtRuntime) {
  // the phase-1 story: work B is vectorizable but fused with work A
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  LoopInfo l = simple_loop(256);
  l.fused_with_nonvectorizable = true;
  const Decision d = vm.analyze(l);
  EXPECT_FALSE(d.vectorize);
  EXPECT_NE(d.remark.find("fission"), std::string::npos);
}

TEST(VectorizationModel, AliasedScatterBlocks) {
  // the phase-8 story
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  LoopInfo l = simple_loop(256);
  l.pattern = AccessPattern::kIndexed;
  l.may_alias_stores = true;
  EXPECT_FALSE(vm.analyze(l).vectorize);
}

TEST(VectorizationModel, GrantedVlClampsToVlmax) {
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  EXPECT_EQ(vm.analyze(simple_loop(512)).vl, 256);
  EXPECT_EQ(vm.analyze(simple_loop(240)).vl, 240);
}

TEST(VectorizationModel, Vec2TripFourIsProfitable) {
  // VEC2 vectorizes the dof loop (trip 4, contiguous, lean body)
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  const Decision d = vm.analyze(simple_loop(4));
  EXPECT_TRUE(d.vectorize);
  EXPECT_EQ(d.vl, 4);
}

TEST(VectorizationModel, CostModelThresholds) {
  using VM = VectorizationModel;
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kContiguous, 2), 4);
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kContiguous, 6), 8);
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kContiguous, 10), 32);
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kStrided, 2), 8);
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kIndexed, 4), 16);
  EXPECT_EQ(VM::min_profitable_trip(AccessPattern::kIndexed, 10), 128);
}

TEST(VectorizationModel, UnprofitableBelowThreshold) {
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  LoopInfo l = simple_loop(16);
  l.memory_streams = 10;  // threshold 32
  const Decision d = vm.analyze(l);
  EXPECT_FALSE(d.vectorize);
  EXPECT_NE(d.remark.find("unprofitable"), std::string::npos);
  l.trip_count = 64;
  EXPECT_TRUE(vm.analyze(l).vectorize);
}

TEST(VectorizationModel, NonPositiveTripThrows) {
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  EXPECT_THROW(vm.analyze(simple_loop(0)), std::invalid_argument);
}

TEST(VectorizationModel, RemarksBatchHelper) {
  const auto m = riscv_vec();
  const VectorizationModel vm(m);
  const auto rs =
      vecfd::compiler::remarks(vm, {simple_loop(256), simple_loop(2)});
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_NE(rs[0].find("vectorized"), std::string::npos);
  EXPECT_NE(rs[1].find("unprofitable"), std::string::npos);
}

}  // namespace
