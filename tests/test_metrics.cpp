// Tests for the §2.2 metrics: definitions, identities, degenerate inputs.
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "sim/counters.h"

namespace {

using vecfd::metrics::compute;
using vecfd::metrics::instruction_mix;
using vecfd::sim::Counters;
using vecfd::sim::InstrKind;

Counters sample_counters() {
  Counters c;
  // 10 scalar (6 alu + 4 mem), 2 vconfig, 8 vector (5 arith + 2 mem + 1 ctrl)
  for (int i = 0; i < 6; ++i) c.record(InstrKind::kScalarAlu, 1.0);
  for (int i = 0; i < 4; ++i) c.record(InstrKind::kScalarMem, 2.0);
  for (int i = 0; i < 2; ++i) c.record(InstrKind::kVConfig, 1.0);
  for (int i = 0; i < 5; ++i) c.record(InstrKind::kVArith, 34.0, 240);
  c.record(InstrKind::kVMemUnit, 40.0, 240);
  c.record(InstrKind::kVMemIndexed, 130.0, 240);
  c.record(InstrKind::kVCtrl, 19.0, 240);
  return c;
}

TEST(Metrics, InstructionMixMv) {
  const Counters c = sample_counters();
  const auto m = compute(c, 256);
  // iv = 8, it = 10 + 2 + 8 = 20
  EXPECT_DOUBLE_EQ(m.mv, 8.0 / 20.0);
  EXPECT_EQ(m.vector_instrs, 8u);
  EXPECT_EQ(m.total_instrs, 20u);
}

TEST(Metrics, VectorActivityAv) {
  const Counters c = sample_counters();
  const auto m = compute(c, 256);
  const double cv = 5 * 34.0 + 40.0 + 130.0 + 19.0;
  const double ct = cv + 6 * 1.0 + 4 * 2.0 + 2 * 1.0;
  EXPECT_DOUBLE_EQ(m.av, cv / ct);
  EXPECT_DOUBLE_EQ(m.vector_cycles, cv);
  EXPECT_DOUBLE_EQ(m.total_cycles, ct);
}

TEST(Metrics, VcpiAvlOccupancy) {
  const Counters c = sample_counters();
  const auto m = compute(c, 256);
  const double cv = 5 * 34.0 + 40.0 + 130.0 + 19.0;
  EXPECT_DOUBLE_EQ(m.vcpi, cv / 8.0);
  EXPECT_DOUBLE_EQ(m.avl, 240.0);
  EXPECT_DOUBLE_EQ(m.ev, 240.0 / 256.0);
}

TEST(Metrics, IdentityAvTimesCtEqualsCv) {
  const Counters c = sample_counters();
  const auto m = compute(c, 256);
  EXPECT_NEAR(m.av * m.total_cycles, m.vector_cycles, 1e-9);
  EXPECT_NEAR(m.ev * 256.0, m.avl, 1e-9);
  EXPECT_NEAR(m.vcpi * double(m.vector_instrs), m.vector_cycles, 1e-9);
}

TEST(Metrics, ZeroInstructionsYieldZeros) {
  const auto m = compute(Counters{}, 256);
  EXPECT_DOUBLE_EQ(m.mv, 0.0);
  EXPECT_DOUBLE_EQ(m.av, 0.0);
  EXPECT_DOUBLE_EQ(m.vcpi, 0.0);
  EXPECT_DOUBLE_EQ(m.avl, 0.0);
  EXPECT_DOUBLE_EQ(m.ev, 0.0);
}

TEST(Metrics, ScalarOnlyRunHasZeroMv) {
  Counters c;
  for (int i = 0; i < 100; ++i) c.record(InstrKind::kScalarAlu, 1.0);
  const auto m = compute(c, 256);
  EXPECT_DOUBLE_EQ(m.mv, 0.0);
  EXPECT_DOUBLE_EQ(m.av, 0.0);
  EXPECT_GT(m.total_cycles, 0.0);
}

TEST(Metrics, MixClassification) {
  const Counters c = sample_counters();
  const auto mix = instruction_mix(c);
  EXPECT_EQ(mix.arith, 5u);
  EXPECT_EQ(mix.mem_unit, 1u);
  EXPECT_EQ(mix.mem_indexed, 1u);
  EXPECT_EQ(mix.ctrl, 1u);
  EXPECT_EQ(mix.total(), 8u);
  EXPECT_DOUBLE_EQ(mix.memory_fraction(), 2.0 / 8.0);
}

TEST(Metrics, MemoryInstrFractionCountsBothSides) {
  const Counters c = sample_counters();
  // memory instructions: 4 scalar + 2 vector of 20 total
  EXPECT_DOUBLE_EQ(vecfd::metrics::memory_instr_fraction(c), 6.0 / 20.0);
}

TEST(Metrics, L1DcmPerKiloInstr) {
  Counters c;
  for (int i = 0; i < 2000; ++i) c.record(InstrKind::kScalarAlu, 1.0);
  c.l1_misses = 50;
  EXPECT_DOUBLE_EQ(vecfd::metrics::l1_dcm_per_kilo_instr(c), 25.0);
}

TEST(Counters, AdditionAndSubtractionRoundTrip) {
  const Counters a = sample_counters();
  Counters b = sample_counters();
  b.record(InstrKind::kVArith, 10.0, 64);
  const Counters sum = a + b;
  const Counters diff = sum - a;
  EXPECT_EQ(diff.varith_instrs, b.varith_instrs);
  EXPECT_DOUBLE_EQ(diff.vector_cycles, b.vector_cycles);
  EXPECT_EQ(diff.vl_sum, b.vl_sum);
}

TEST(Counters, InstrHierarchyTotals) {
  const Counters c = sample_counters();
  EXPECT_EQ(c.scalar_instrs(), 10u);
  EXPECT_EQ(c.vmem_instrs(), 2u);
  EXPECT_EQ(c.vector_instrs(), 8u);
  EXPECT_EQ(c.total_instrs(), 20u);
}

}  // namespace
