// Transient campaign engine (core/campaign.h): the scenario × platform ×
// VECTOR_SIZE grid runs on the parallel sweep fan-out, produces live
// phase-1..11 counters on all four platforms, reports solve-phase AVL per
// VECTOR_SIZE, and serializes deterministically to the campaign CSV schema.
//
// This is the heavyweight suite of the transient subsystem (dozens of
// time-loop runs); it carries the `slow` ctest label so the sanitizer CI
// job can skip it while still running the solver/property suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/campaign.h"
#include "core/csv.h"
#include "platforms/platforms.h"
#include "sanitizer_support.h"
#include "scenario_support.h"

namespace {

using namespace vecfd;
using testsupport::small_scenarios;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

TEST(TransientCampaign, GridCoversScenarioByPlatformByVectorSize) {
  const core::Campaign camp(small_scenarios());
  const int sizes[] = {16, 64};
  const auto points = camp.grid(kMachines, sizes, 2);
  ASSERT_EQ(points.size(), 3u * 4u * 2u);
  // scenario-major, then machine, then size
  EXPECT_EQ(points[0].scenario, 0);
  EXPECT_EQ(points[0].vector_size, 16);
  EXPECT_EQ(points[1].vector_size, 64);
  EXPECT_EQ(points.back().scenario, 2);
  EXPECT_EQ(points.back().machine.name, kMachines[3].name);
}

TEST(TransientCampaign, AllPlatformsProducePhase1To11Counters) {
  const core::Campaign camp(small_scenarios());
  const int sizes[] = {32};
  const auto points = camp.grid(kMachines, sizes, 2);
  const auto runs = camp.run_points(points, 0);
  ASSERT_EQ(runs.size(), points.size());
  for (const auto& r : runs) {
    EXPECT_TRUE(r.all_converged) << r.scenario << " on "
                                 << r.point.machine.name;
    for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
      EXPECT_GT(r.phase_cycles(p), 0.0)
          << r.scenario << " on " << r.point.machine.name << " phase " << p;
    }
    EXPECT_GT(r.momentum_iterations, 0);
    EXPECT_GT(r.pressure_iterations, 0);
    if (!r.point.machine.vector_enabled) {
      EXPECT_EQ(r.loop.total.vector_instrs(), 0u) << r.scenario;
    }
  }
}

TEST(TransientCampaign, SolvePhaseAvlIsReportedPerVectorSize) {
  auto scens = small_scenarios();
  scens.resize(1);  // cavity only
  const core::Campaign camp(std::move(scens));
  const sim::MachineConfig vec_machine[] = {platforms::riscv_vec()};
  const int sizes[] = {8, 32};
  const auto runs = camp.run_points(camp.grid(vec_machine, sizes, 1), 0);
  ASSERT_EQ(runs.size(), 2u);
  const double avl_8 = runs[0].phase_metrics[miniapp::kSolvePhase].avl;
  const double avl_32 = runs[1].phase_metrics[miniapp::kSolvePhase].avl;
  EXPECT_NEAR(avl_8, 8.0, 1.0);
  EXPECT_GT(avl_32, 2.0 * avl_8);
  // the campaign CSV carries those AVLs in the ph9 column block
  std::ostringstream os;
  core::write_campaign_csv(os, runs);
  EXPECT_NE(os.str().find("ph9_avl"), std::string::npos);
  EXPECT_NE(os.str().find("ph10_avl"), std::string::npos);
  EXPECT_NE(os.str().find("ph11_avl"), std::string::npos);
}

TEST(TransientCampaign, ParallelAndSerialRunsAgreeByteForByte) {
  VECFD_SKIP_UNDER_ASAN();
  auto scens = small_scenarios();
  scens.erase(scens.begin() + 1);  // drop channel: keep the grid light
  const core::Campaign camp(std::move(scens));
  const sim::MachineConfig machines[] = {platforms::riscv_vec(),
                                         platforms::mn4_avx512()};
  const int sizes[] = {16, 64};
  const auto points = camp.grid(machines, sizes, 2);

  std::ostringstream serial;
  std::ostringstream parallel;
  core::write_campaign_csv(serial, camp.run_points(points, 1));
  core::write_campaign_csv(parallel, camp.run_points(points, 4));
  EXPECT_FALSE(serial.str().empty());
  EXPECT_EQ(serial.str(), parallel.str());
}

TEST(TransientCampaign, CsvSchemaDerivesFromInstrumentedPhaseCount) {
  auto scens = small_scenarios();
  scens.resize(1);
  const core::Campaign camp(std::move(scens));
  core::CampaignPoint p;
  p.machine = platforms::riscv_vec();
  p.vector_size = 16;
  p.steps = 1;
  const core::CampaignRun run = camp.run(p);

  std::ostringstream os;
  core::write_campaign_csv_header(os);
  core::write_campaign_row(os, run);
  std::istringstream is(os.str());
  std::string header;
  std::string row;
  std::getline(is, header);
  std::getline(is, row);
  const auto count_cols = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };
  EXPECT_EQ(count_cols(header), count_cols(row));
  // 24 identity/metric columns (incl. format/rcm/precond/shards and the
  // gather-quality + halo counters), the ph block, the 6-column
  // convergence digest (iterations, divergence, convergence,
  // solver_failures + pressure makespan) and the 3-column retry digest
  // (attempts, degraded, final_status — inert 1,0,ok on plain runs)
  EXPECT_EQ(count_cols(header),
            24 + 3 * miniapp::kNumInstrumentedPhases + 6 + 3);
  EXPECT_NE(header.find("vector_size,effective_strip"), std::string::npos);
}

}  // namespace
