// Shared test helper: the scenario library at test size.  Every suite that
// sweeps all scenarios (campaign, conservation, multi-RHS equivalence)
// shrinks the meshes the same way, so "all scenarios at test size" means
// the same thing everywhere.
#pragma once

#include <algorithm>
#include <vector>

#include "miniapp/scenarios.h"

namespace vecfd::testsupport {

/// Every scenario with its mesh halved per axis (floor 3 elements), so the
/// full scenario × platform grids stay test-sized.
inline std::vector<miniapp::Scenario> small_scenarios() {
  auto scens = miniapp::all_scenarios();
  for (auto& s : scens) {
    s.mesh.nx = std::max(3, s.mesh.nx / 2);
    s.mesh.ny = std::max(3, s.mesh.ny / 2);
    s.mesh.nz = std::max(3, s.mesh.nz / 2);
  }
  return scens;
}

}  // namespace vecfd::testsupport
