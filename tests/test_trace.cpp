// Tests for the Vehave-style trace and Paraver export.
#include <gtest/gtest.h>

#include <sstream>

#include "platforms/platforms.h"
#include "sim/vpu.h"
#include "trace/paraver.h"
#include "trace/vehave_trace.h"

namespace {

using vecfd::platforms::riscv_vec;
using vecfd::sim::InstrKind;
using vecfd::sim::Vpu;
using vecfd::trace::VehaveTrace;

TEST(VehaveTrace, RecordsVectorInstructionsOnly) {
  Vpu vpu{riscv_vec()};
  VehaveTrace tr;
  vpu.set_observer(&tr);
  std::vector<double> a(64, 1.0);
  vpu.set_vl(64);
  const auto x = vpu.vload(a.data());
  (void)vpu.vadd(x, x);
  vpu.sarith(10);  // scalar: not recorded in vectors-only mode
  double s = 0.0;
  vpu.sstore(&s, 1.0);
  ASSERT_EQ(tr.records().size(), 2u);
  EXPECT_EQ(tr.records()[0].kind, InstrKind::kVMemUnit);
  EXPECT_EQ(tr.records()[1].kind, InstrKind::kVArith);
  EXPECT_EQ(tr.records()[0].vl, 64);
}

TEST(VehaveTrace, AvlMeasurement) {
  Vpu vpu{riscv_vec()};
  VehaveTrace tr;
  vpu.set_observer(&tr);
  std::vector<double> a(256, 1.0);
  vpu.set_vl(4);
  (void)vpu.vload(a.data());
  vpu.set_vl(240);
  (void)vpu.vload(a.data());
  EXPECT_DOUBLE_EQ(tr.avl(), (4.0 + 240.0) / 2.0);
}

TEST(VehaveTrace, PerPhaseAvl) {
  Vpu vpu{riscv_vec()};
  VehaveTrace tr;
  vpu.set_observer(&tr);
  std::vector<double> a(256, 1.0);
  vpu.profiler().begin(2);
  vpu.set_vl(4);
  (void)vpu.vload(a.data());
  vpu.profiler().end(2);
  vpu.profiler().begin(6);
  vpu.set_vl(240);
  (void)vpu.vload(a.data());
  vpu.profiler().end(6);
  EXPECT_DOUBLE_EQ(tr.avl(2), 4.0);    // the VEC2 diagnosis
  EXPECT_DOUBLE_EQ(tr.avl(6), 240.0);
  EXPECT_EQ(tr.count(InstrKind::kVMemUnit, 2), 1u);
  EXPECT_EQ(tr.count(InstrKind::kVMemUnit), 2u);
}

TEST(VehaveTrace, CapacityBoundDropsButCounts) {
  VehaveTrace tr(2);
  tr.on_instr(1, InstrKind::kVArith, 8, 10.0);
  tr.on_instr(1, InstrKind::kVArith, 8, 10.0);
  tr.on_instr(1, InstrKind::kVArith, 8, 10.0);
  EXPECT_EQ(tr.records().size(), 2u);
  EXPECT_EQ(tr.dropped(), 1u);
  tr.clear();
  EXPECT_TRUE(tr.records().empty());
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(VehaveTrace, EmptyTraceAvlIsZero) {
  VehaveTrace tr;
  EXPECT_DOUBLE_EQ(tr.avl(), 0.0);
  EXPECT_DOUBLE_EQ(tr.avl(5), 0.0);
}

TEST(Paraver, PrvStructure) {
  VehaveTrace tr;
  tr.on_instr(2, InstrKind::kVMemIndexed, 240, 130.0);
  tr.on_instr(6, InstrKind::kVArith, 240, 34.0);
  std::ostringstream os;
  const std::size_t n = vecfd::trace::write_paraver_prv(os, tr);
  EXPECT_EQ(n, 2u);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("#Paraver", 0), 0u);  // header first
  EXPECT_NE(s.find("42000001"), std::string::npos);  // kind event type
  EXPECT_NE(s.find("42000002:240"), std::string::npos);  // vl value
  EXPECT_NE(s.find("42000003:2"), std::string::npos);    // phase value
}

TEST(Paraver, PcfNamesAllKinds) {
  std::ostringstream os;
  vecfd::trace::write_paraver_pcf(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("vmem-indexed"), std::string::npos);
  EXPECT_NE(s.find("vconfig"), std::string::npos);
  EXPECT_NE(s.find("scalar-alu"), std::string::npos);
}

}  // namespace
