// Tests that the host-compiled loop-order variants (the real-hardware
// portability subjects) all compute identical results.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "fem/element.h"
#include "miniapp/native_kernels.h"

namespace {

namespace native = vecfd::miniapp::native;
using vecfd::fem::kDim;
using vecfd::fem::kDofs;
using vecfd::fem::kGauss;
using vecfd::fem::kNodes;

struct GatherFixture {
  explicit GatherFixture(int vector_size, int nnode = 1000)
      : vs(vector_size) {
    std::mt19937 rng(11);
    std::uniform_int_distribution<int> node(0, nnode - 1);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    lnods.resize(static_cast<std::size_t>(kNodes) * vs);
    for (auto& n : lnods) n = node(rng);
    unk.resize(static_cast<std::size_t>(nnode) * kDofs);
    unk_old.resize(unk.size());
    for (auto& v : unk) v = val(rng);
    for (auto& v : unk_old) v = val(rng);
    elunk.assign(static_cast<std::size_t>(kDofs) * kNodes * vs, 0.0);
    elvel_old.assign(static_cast<std::size_t>(kDim) * kNodes * vs, 0.0);
  }
  int vs;
  std::vector<std::int32_t> lnods;
  std::vector<double> unk, unk_old, elunk, elvel_old;
};

TEST(NativeKernels, Phase2VariantsAgree) {
  for (int vs : {16, 64, 240}) {
    GatherFixture a(vs), b(vs), c(vs);
    const int bound = vs;
    native::phase2_vanilla(a.lnods.data(), a.unk.data(), a.unk_old.data(),
                           a.elunk.data(), a.elvel_old.data(), &bound);
    native::phase2_dof_inner(b.lnods.data(), b.unk.data(), b.unk_old.data(),
                             b.elunk.data(), b.elvel_old.data(), vs);
    native::phase2_ivect_inner(c.lnods.data(), c.unk.data(),
                               c.unk_old.data(), c.elunk.data(),
                               c.elvel_old.data(), vs);
    EXPECT_EQ(a.elunk, b.elunk) << vs;
    EXPECT_EQ(a.elunk, c.elunk) << vs;
    EXPECT_EQ(a.elvel_old, b.elvel_old) << vs;
    EXPECT_EQ(a.elvel_old, c.elvel_old) << vs;
  }
}

TEST(NativeKernels, Phase2GathersTheRightValues) {
  GatherFixture f(8);
  const int bound = 8;
  native::phase2_vanilla(f.lnods.data(), f.unk.data(), f.unk_old.data(),
                         f.elunk.data(), f.elvel_old.data(), &bound);
  for (int a = 0; a < kNodes; ++a) {
    for (int iv = 0; iv < 8; ++iv) {
      const int n = f.lnods[a * 8 + iv];
      for (int dof = 0; dof < kDofs; ++dof) {
        EXPECT_DOUBLE_EQ(f.elunk[(dof * kNodes + a) * 8 + iv],
                         f.unk[static_cast<std::size_t>(n) * kDofs + dof]);
      }
    }
  }
}

TEST(NativeKernels, Phase1FusedAndSplitAgree) {
  const int vs = 64;
  const int nelem = 256;
  const int nnode = 1500;
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> node(0, nnode - 1);
  std::uniform_int_distribution<int> mat(0, 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::int32_t> mesh_lnods(
      static_cast<std::size_t>(nelem) * kNodes);
  for (auto& n : mesh_lnods) n = node(rng);
  std::vector<std::int32_t> elmat(nelem);
  for (auto& m : elmat) m = mat(rng);
  std::vector<double> coords(static_cast<std::size_t>(nnode) * kDim);
  for (auto& c : coords) c = val(rng);

  auto run = [&](auto&& fn) {
    std::vector<std::int32_t> lnods(static_cast<std::size_t>(kNodes) * vs);
    std::vector<double> dtfac(vs);
    std::vector<double> elcod(static_cast<std::size_t>(kDim) * kNodes * vs);
    fn(mesh_lnods.data(), elmat.data(), coords.data(), lnods.data(),
       dtfac.data(), elcod.data(), 32, vs, 20.0);
    return std::make_tuple(lnods, dtfac, elcod);
  };
  const auto [l1, d1, e1] = run(native::phase1_fused);
  const auto [l2, d2, e2] = run(native::phase1_split);
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(e1, e2);
}

TEST(NativeKernels, ConvBlockMatchesNaive) {
  const int vs = 32;
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> wmat(static_cast<std::size_t>(kGauss) * kNodes * vs);
  std::vector<double> dmat(wmat.size());
  for (auto& v : wmat) v = val(rng);
  for (auto& v : dmat) v = val(rng);
  std::vector<double> conv(static_cast<std::size_t>(kNodes) * kNodes * vs);
  native::conv_block(wmat.data(), dmat.data(), conv.data(), vs);
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      for (int iv = 0; iv < vs; iv += 7) {
        double expect = 0.0;
        for (int g = 0; g < kGauss; ++g) {
          expect = wmat[(g * kNodes + a) * vs + iv] *
                       dmat[(g * kNodes + b) * vs + iv] +
                   expect;
        }
        // conv_block is compiled -march=native: FMA contraction may fuse
        // w*d+acc, so compare with a tight tolerance instead of bit-exact
        EXPECT_NEAR(conv[(a * kNodes + b) * vs + iv], expect,
                    1e-12 * std::max(1.0, std::fabs(expect)));
      }
    }
  }
}

TEST(NativeKernels, ChecksumIsPlainSum) {
  std::vector<double> v{1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(native::checksum(v.data(), v.size()), 6.5);
}

}  // namespace
