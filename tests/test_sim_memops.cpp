// Tests for the memory side of the Vpu: cache-counter interaction of every
// access pattern, the vl-dependent miss-overlap interpolation, and the
// folded set-index behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "platforms/platforms.h"
#include "sim/vpu.h"

namespace {

using vecfd::platforms::riscv_vec;
using vecfd::sim::MachineConfig;
using vecfd::sim::Vec;
using vecfd::sim::Vpu;

MachineConfig machine_with_penalties() {
  MachineConfig m = riscv_vec();
  m.memory.l2_latency = 10.0;
  m.memory.mem_latency = 100.0;
  return m;
}

TEST(VpuMem, UnitStrideLoadTouchesWholeLines) {
  Vpu v{machine_with_penalties()};
  std::vector<double> a(256, 1.0);
  v.set_vl(256);
  (void)v.vload(a.data());
  // 256 doubles = 2048 bytes = 32-33 lines depending on alignment
  EXPECT_GE(v.counters().l1_accesses, 32u);
  EXPECT_LE(v.counters().l1_accesses, 33u);
  EXPECT_EQ(v.counters().l1_misses, v.counters().l1_accesses);  // cold
}

TEST(VpuMem, RepeatedLoadHitsInL1) {
  Vpu v{machine_with_penalties()};
  std::vector<double> a(64, 1.0);
  v.set_vl(64);
  (void)v.vload(a.data());
  const auto misses_after_first = v.counters().l1_misses;
  (void)v.vload(a.data());
  EXPECT_EQ(v.counters().l1_misses, misses_after_first);
}

TEST(VpuMem, GatherTouchesOneLinePerElement) {
  Vpu v{machine_with_penalties()};
  std::vector<double> table(4096, 1.0);
  std::vector<std::int32_t> idx(16);
  for (int i = 0; i < 16; ++i) idx[i] = i * 64;  // distinct lines
  v.set_vl(16);
  const Vec vi = v.vload_i32(idx.data());
  const auto before = v.counters().l1_accesses;
  (void)v.vgather(table.data(), vi);
  EXPECT_EQ(v.counters().l1_accesses - before, 16u);
}

TEST(VpuMem, ShortUnitLoadsExposeMoreMissLatencyThanLongOnes) {
  // the VEC2 effect: a vl=4 load behaves like a scalar access, a vl=256
  // stream hides almost everything
  const MachineConfig m = machine_with_penalties();
  std::vector<double> a(4096, 1.0);

  auto cost_per_line = [&](int vl) {
    Vpu v{m};
    v.set_vl(vl);
    (void)v.vload(a.data());  // cold: every line misses
    const double base = v.timing().vmem_unit_cycles(vl);
    const double total = v.counters().vector_cycles;
    const double penalty = total - base;
    return penalty / double(v.counters().l1_misses);
  };
  const double short_cost = cost_per_line(4);
  const double long_cost = cost_per_line(256);
  EXPECT_GT(short_cost, 5.0 * long_cost);
}

TEST(VpuMem, StridedStoreExposesMostMissLatency) {
  MachineConfig m = machine_with_penalties();
  Vpu v{m};
  std::vector<double> dst(64 * 64, 0.0);
  v.set_vl(8);
  const Vec x = v.vsplat(1.0);
  const double base = v.timing().vmem_strided_cycles(8);
  const double before = v.counters().vector_cycles;
  v.vstore_strided(dst.data(), 64, x);  // 8 distinct lines, all cold
  const double penalty = v.counters().vector_cycles - before - base;
  // 8 cold misses at l1->mem (110) with strided exposure 0.9
  EXPECT_NEAR(penalty, 8 * 110.0 * m.miss_overlap_strided, 1.0);
}

TEST(VpuMem, ScalarAccessPaysFullPenalty) {
  MachineConfig m = machine_with_penalties();
  Vpu v{m};
  double x = 0.0;
  const double before = v.counters().scalar_cycles;
  (void)v.sload(&x);  // cold: L1+L2 miss
  const double cost = v.counters().scalar_cycles - before;
  EXPECT_NEAR(cost, m.scalar_mem_cpi + 110.0, 1e-9);
  (void)v.sload(&x);  // hit
  const double hit_cost = v.counters().scalar_cycles - before - cost;
  EXPECT_NEAR(hit_cost, m.scalar_mem_cpi, 1e-9);
}

TEST(VpuMem, L2MissesCountedSeparately) {
  MachineConfig m = machine_with_penalties();
  m.memory.l1.size_bytes = 1024;  // tiny L1, normal L2
  m.memory.l1.associativity = 2;
  Vpu v{m};
  // stream 16 KB twice: second pass hits L2, misses L1
  std::vector<double> a(2048, 1.0);
  v.set_vl(256);
  for (int pass = 0; pass < 2; ++pass) {
    for (int off = 0; off < 2048; off += 256) {
      (void)v.vload(a.data() + off);
    }
  }
  EXPECT_GT(v.counters().l1_misses, 256u);  // both passes miss L1
  EXPECT_LE(v.counters().l2_misses, 260u);  // only the first misses L2
}

TEST(VpuMem, FoldedIndexSpreadsPageAlignedBuffers) {
  // buffers at 4 KB stride would collide catastrophically in a modulo
  // cache; folding keeps them spread across sets
  vecfd::mem::Cache c({.size_bytes = 64 * 1024,
                       .line_bytes = 64,
                       .associativity = 2,
                       .name = "t"});
  // 64 KB / (64·2) = 512 sets; touch 64 lines, each 512 lines apart
  // (the modulo-mapping worst case: all to set 0)
  for (int i = 0; i < 64; ++i) {
    c.access(static_cast<std::uintptr_t>(i) * 512 * 64);
  }
  // with 2-way sets and modulo mapping only 2 would survive
  EXPECT_GE(c.resident_lines(), 32u);
}

TEST(VpuMem, TraceObserverSeesMemoryOps) {
  Vpu v{riscv_vec()};
  struct Probe final : vecfd::sim::InstrObserver {
    int mem = 0;
    void on_instr(int, vecfd::sim::InstrKind k, int, double) override {
      if (vecfd::sim::is_vector_memory(k)) ++mem;
    }
  } probe;
  v.set_observer(&probe);
  std::vector<double> a(16, 1.0);
  std::vector<std::int32_t> idx(16, 0);
  v.set_vl(16);
  const Vec vi = v.vload_i32(idx.data());
  (void)v.vgather(a.data(), vi);
  (void)v.vload_strided(a.data(), 1);
  v.vstore(a.data(), v.vsplat(2.0));
  EXPECT_EQ(probe.mem, 4);
}

}  // namespace
