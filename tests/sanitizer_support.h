// Sanitizer detection for the test suite.
//
// The deterministic memory model requires every heap buffer to start on a
// 128-byte boundary (mem/aligned_new.cpp).  AddressSanitizer interposes
// the global operator new with its own redzone-packing allocator, which
// does not honour that alignment — so byte-identical-measurement and
// alignment assertions cannot hold in the ASan CI job and are skipped
// there.  Everything else (bounds, lifetime, UB) stays fully checked.
#pragma once

#if defined(__SANITIZE_ADDRESS__)
#define VECFD_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VECFD_ASAN 1
#endif
#endif

#if defined(VECFD_ASAN)
#define VECFD_SKIP_UNDER_ASAN()                                       \
  GTEST_SKIP() << "ASan replaces the 128-byte-aligned operator new; " \
                  "layout-determinism assertions do not apply"
#else
#define VECFD_SKIP_UNDER_ASAN() (void)0
#endif
