// Sanitizer detection for the test suite.
//
// The deterministic memory model requires every heap buffer to start on a
// 128-byte boundary (mem/aligned_new.cpp).  AddressSanitizer and
// ThreadSanitizer both interpose the global operator new with their own
// allocators, which do not honour that alignment — so byte-identical-
// measurement and alignment assertions cannot hold in the asan-ubsan or
// tsan CI jobs and are skipped there.  Everything else (bounds, lifetime,
// UB, data races) stays fully checked: in particular the tsan job still
// runs the full parallel fan-out with all its locking, it just cannot
// assert layout-determinism of the measured counters.
#pragma once

#if defined(__SANITIZE_ADDRESS__)
#define VECFD_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define VECFD_TSAN_BUILD 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VECFD_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define VECFD_TSAN_BUILD 1
#endif
#endif

#if defined(VECFD_ASAN) || defined(VECFD_TSAN_BUILD)
#define VECFD_SKIP_UNDER_ASAN()                                           \
  GTEST_SKIP() << "this sanitizer replaces the 128-byte-aligned operator " \
                  "new; layout-determinism assertions do not apply"
#else
#define VECFD_SKIP_UNDER_ASAN() (void)0
#endif
