// Phase-by-phase white-box tests: drive the 8 kernels directly on a single
// chunk and verify each phase's outputs against independently computed
// values (gathers against the mesh/state, Gauss-point arrays against the
// shape tables, operator blocks against their defining sums).
#include <gtest/gtest.h>

#include <cmath>

#include "fem/reference_assembly.h"
#include "miniapp/chunk.h"
#include "miniapp/phases.h"
#include "platforms/platforms.h"

namespace {

using namespace vecfd;
using fem::kDim;
using fem::kDofs;
using fem::kGauss;
using fem::kNodes;
using miniapp::ElementChunk;

/// Single-chunk harness: 3x3x3 mesh, one chunk of 27 elements.
struct Harness {
  Harness(miniapp::OptLevel opt = miniapp::OptLevel::kVec1,
          fem::Scheme scheme = fem::Scheme::kExplicit)
      : mesh({.nx = 3, .ny = 3, .nz = 3}),
        state(mesh),
        shape(),
        cfg{.vector_size = 27, .scheme = scheme, .opt = opt},
        plan(miniapp::build_plan(platforms::riscv_vec(), cfg)),
        vpu(platforms::riscv_vec()),
        chunk(27, scheme == fem::Scheme::kSemiImplicit),
        rhs(static_cast<std::size_t>(mesh.num_nodes()) * kDim, 0.0) {
    chunk.reset(0, 27);
    bound = 27.0;
    ctx.mesh = &mesh;
    ctx.state = &state;
    ctx.shape = &shape;
    ctx.plan = &plan;
    ctx.cfg = cfg;
    ctx.vector_dim_slot = &bound;
    ctx.global_rhs = &rhs;
    ctx.global_matrix = nullptr;
  }

  void run_through(int last_phase) {
    using Fn = void (*)(sim::Vpu&, const miniapp::Ctx&, ElementChunk&);
    const Fn fns[] = {miniapp::phase1, miniapp::phase2, miniapp::phase3,
                      miniapp::phase4, miniapp::phase5, miniapp::phase6,
                      miniapp::phase7, miniapp::phase8};
    for (int p = 1; p <= last_phase; ++p) {
      sim::ScopedPhase sp(vpu.profiler(), p);
      fns[p - 1](vpu, ctx, chunk);
    }
  }

  fem::Mesh mesh;
  fem::State state;
  fem::ShapeTable shape;
  miniapp::MiniAppConfig cfg;
  miniapp::PhasePlan plan;
  sim::Vpu vpu;
  ElementChunk chunk;
  std::vector<double> rhs;
  double bound = 0.0;
  miniapp::Ctx ctx;
};

TEST(Phases, Phase1GathersConnectivityAndFactors) {
  Harness h;
  h.run_through(1);
  for (int iv = 0; iv < 27; ++iv) {
    EXPECT_EQ(h.chunk.valid()[iv], 1);
    EXPECT_EQ(h.chunk.etype()[iv], 0);
    const auto ln = h.mesh.element(iv);
    for (int a = 0; a < kNodes; ++a) {
      EXPECT_EQ(h.chunk.lnods(a)[iv], ln[a]);
      for (int d = 0; d < kDim; ++d) {
        EXPECT_DOUBLE_EQ(h.chunk.elcod(d, a)[iv], h.mesh.node(ln[a])[d]);
      }
    }
    EXPECT_DOUBLE_EQ(
        h.chunk.dtfac()[iv],
        fem::element_dt_factor(h.state.physics(), h.mesh.material(iv)));
  }
}

TEST(Phases, Phase1PadsTailWithClampedElements) {
  Harness h;
  h.chunk.reset(0, 20);  // 7 padding lanes
  miniapp::phase1(h.vpu, h.ctx, h.chunk);
  for (int iv = 20; iv < 27; ++iv) {
    EXPECT_EQ(h.chunk.valid()[iv], 0);
    // padding clamps to the chunk's first element
    EXPECT_EQ(h.chunk.lnods(0)[iv], h.mesh.element(0)[0]);
  }
}

TEST(Phases, Phase2GathersUnknownsBothLevels) {
  for (auto opt : {miniapp::OptLevel::kVanilla, miniapp::OptLevel::kVec2,
                   miniapp::OptLevel::kIVec2}) {
    Harness h(opt);
    h.run_through(2);
    for (int iv = 0; iv < 27; ++iv) {
      const auto ln = h.mesh.element(iv);
      for (int a = 0; a < kNodes; ++a) {
        for (int d = 0; d < kDim; ++d) {
          EXPECT_DOUBLE_EQ(h.chunk.elvel(d, a)[iv],
                           h.state.velocity(ln[a], d))
              << to_string(opt);
          EXPECT_DOUBLE_EQ(h.chunk.elvel_old(d, a)[iv],
                           h.state.velocity_old(ln[a], d));
        }
        EXPECT_DOUBLE_EQ(h.chunk.elpre(a)[iv], h.state.pressure(ln[a]));
      }
    }
  }
}

TEST(Phases, Phase3VolumesPositiveAndSumToElementVolume) {
  Harness h;
  h.run_through(3);
  for (int iv = 0; iv < 27; ++iv) {
    double vol = 0.0;
    for (int g = 0; g < kGauss; ++g) {
      EXPECT_GT(h.chunk.gpvol(g)[iv], 0.0);
      vol += h.chunk.gpvol(g)[iv];
    }
    // distorted cells: volume near the uniform (1/3)³ but not exactly
    EXPECT_NEAR(vol, 1.0 / 27.0, 0.3 / 27.0);
  }
  // total volume is exact (the distortion is volume-preserving to 1e-10)
  double total = 0.0;
  for (int iv = 0; iv < 27; ++iv) {
    for (int g = 0; g < kGauss; ++g) total += h.chunk.gpvol(g)[iv];
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Phases, Phase3CartesianDerivativesSumToZero) {
  // Σ_a ∂N_a/∂x_d = 0 at every Gauss point of every element
  Harness h;
  h.run_through(3);
  for (int iv = 0; iv < 27; iv += 5) {
    for (int g = 0; g < kGauss; ++g) {
      for (int d = 0; d < kDim; ++d) {
        double s = 0.0;
        for (int a = 0; a < kNodes; ++a) s += h.chunk.gpcar(g, d, a)[iv];
        EXPECT_NEAR(s, 0.0, 1e-12);
      }
    }
  }
}

TEST(Phases, Phase3GradientOfLinearFieldIsExact) {
  // gpcar must differentiate x_d exactly: Σ_a gpcar(d,a)·x_e(a) = δ_de
  Harness h;
  h.run_through(3);
  for (int iv = 0; iv < 27; iv += 7) {
    for (int g = 0; g < kGauss; ++g) {
      for (int d = 0; d < kDim; ++d) {
        for (int e = 0; e < kDim; ++e) {
          double s = 0.0;
          for (int a = 0; a < kNodes; ++a) {
            s += h.chunk.gpcar(g, d, a)[iv] * h.chunk.elcod(e, a)[iv];
          }
          EXPECT_NEAR(s, d == e ? 1.0 : 0.0, 1e-11);
        }
      }
    }
  }
}

TEST(Phases, Phase4InterpolatesVelocityAndPressure) {
  Harness h;
  h.run_through(4);
  const int iv = 13;  // middle element
  for (int g = 0; g < kGauss; ++g) {
    for (int d = 0; d < kDim; ++d) {
      double expect = 0.0;
      for (int a = 0; a < kNodes; ++a) {
        expect = h.shape.n(g, a) * h.chunk.elvel(d, a)[iv] + expect;
      }
      EXPECT_DOUBLE_EQ(h.chunk.gpvel(0, g, d)[iv], expect);
      EXPECT_DOUBLE_EQ(h.chunk.gpadv(g, d)[iv], expect);
    }
    double pexpect = 0.0;
    for (int a = 0; a < kNodes; ++a) {
      pexpect = h.shape.n(g, a) * h.chunk.elpre(a)[iv] + pexpect;
    }
    EXPECT_DOUBLE_EQ(h.chunk.gppre(g)[iv], pexpect);
  }
}

TEST(Phases, Phase4GradientMatchesManualSum) {
  Harness h;
  h.run_through(4);
  const int iv = 8;
  for (int g = 0; g < kGauss; g += 3) {
    for (int j = 0; j < kDim; ++j) {
      for (int d = 0; d < kDim; ++d) {
        double expect = 0.0;
        for (int a = 0; a < kNodes; ++a) {
          expect = h.chunk.gpcar(g, j, a)[iv] * h.chunk.elvel(d, a)[iv] +
                   expect;
        }
        EXPECT_DOUBLE_EQ(h.chunk.gpgve(g, j, d)[iv], expect);
      }
    }
  }
}

TEST(Phases, Phase5TauPositiveAndBounded) {
  Harness h;
  h.run_through(5);
  const double dtmax = 1.02 * h.state.physics().density /
                       h.state.physics().dt;
  for (int iv = 0; iv < 27; ++iv) {
    for (int g = 0; g < kGauss; ++g) {
      const double tau = h.chunk.tau(g)[iv];
      EXPECT_GT(tau, 0.0);
      // τ = 1/(… + dtfac) ≤ 1/dtfac_min ≤ dt/ρ
      EXPECT_LT(tau, 1.0 / (h.state.physics().density /
                            h.state.physics().dt));
      (void)dtmax;
    }
  }
}

TEST(Phases, Phase6ConvectionRowSumsVanish) {
  // Σ_b C[a][b] = Σ_g W(g,a)·(adv·Σ_b ∇N_b) = 0 because Σ_b gpcar_b = 0.
  Harness h;
  h.run_through(6);
  for (int iv = 0; iv < 27; iv += 4) {
    for (int a = 0; a < kNodes; ++a) {
      double s = 0.0;
      double mag = 0.0;
      for (int b = 0; b < kNodes; ++b) {
        s += h.chunk.conv(a, b)[iv];
        mag += std::fabs(h.chunk.conv(a, b)[iv]);
      }
      EXPECT_LE(std::fabs(s), 1e-12 * std::max(1.0, mag));
    }
  }
}

TEST(Phases, Phase7ViscousBlockSymmetricWithZeroRowSums) {
  Harness h;
  h.run_through(7);
  for (int iv = 0; iv < 27; iv += 6) {
    for (int a = 0; a < kNodes; ++a) {
      double s = 0.0;
      for (int b = 0; b < kNodes; ++b) {
        EXPECT_DOUBLE_EQ(h.chunk.visc(a, b)[iv], h.chunk.visc(b, a)[iv]);
        s += h.chunk.visc(a, b)[iv];
      }
      EXPECT_NEAR(s, 0.0, 1e-12);
      EXPECT_GT(h.chunk.visc(a, a)[iv], 0.0);  // diagonal dominance source
    }
  }
}

TEST(Phases, ElementRhsMatchesReferencePerElement) {
  Harness h;
  h.run_through(7);
  fem::ElementSystem es;
  for (int iv = 0; iv < 27; ++iv) {
    fem::assemble_element(h.mesh, h.state, h.shape, iv,
                          fem::Scheme::kExplicit, es);
    for (int d = 0; d < kDim; ++d) {
      for (int a = 0; a < kNodes; ++a) {
        const double got = h.chunk.elrhs(d, a)[iv];
        const double want = es.rhs_at(d, a);
        EXPECT_NEAR(got, want, 1e-12 * std::max(1.0, std::fabs(want)))
            << "iv=" << iv << " d=" << d << " a=" << a;
      }
    }
  }
}

TEST(Phases, Phase8SkipsInvalidLanes) {
  Harness h;
  h.chunk.reset(0, 20);
  h.run_through(8);
  // rhs contributions only from elements 0..19
  std::vector<double> expect(h.rhs.size(), 0.0);
  fem::ElementSystem es;
  for (int e = 0; e < 20; ++e) {
    fem::assemble_element(h.mesh, h.state, h.shape, e,
                          fem::Scheme::kExplicit, es);
    const auto ln = h.mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      for (int d = 0; d < kDim; ++d) {
        expect[static_cast<std::size_t>(ln[a]) * kDim + d] +=
            es.rhs[d * kNodes + a];
      }
    }
  }
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(h.rhs[i], expect[i],
                1e-12 * std::max(1.0, std::fabs(expect[i])));
  }
}

TEST(Phases, SemiImplicitBlockMatchesReference) {
  Harness h(miniapp::OptLevel::kVanilla, fem::Scheme::kSemiImplicit);
  h.run_through(7);
  fem::ElementSystem es;
  for (int iv = 0; iv < 27; iv += 9) {
    fem::assemble_element(h.mesh, h.state, h.shape, iv,
                          fem::Scheme::kSemiImplicit, es);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        const double want = es.block_at(a, b);
        EXPECT_NEAR(h.chunk.block(a, b)[iv], want,
                    1e-12 * std::max(1.0, std::fabs(want)));
      }
    }
  }
}

TEST(Phases, CountersAttributeWorkToTheRightPhase) {
  Harness h;
  h.run_through(8);
  const auto& prof = h.vpu.profiler();
  // every phase did something
  for (int p = 1; p <= 8; ++p) {
    EXPECT_GT(prof.phase(p).total_instrs(), 0u) << "phase " << p;
  }
  // phase 6 has the most FLOPs (the paper's "almost all the floating-point
  // operations reside" claim, §4)
  for (int p = 1; p <= 8; ++p) {
    if (p == 6) continue;
    EXPECT_GE(prof.phase(6).flops, prof.phase(p).flops) << "phase " << p;
  }
  // phases 1, 2, 8 never issue vector instructions by default... except
  // phase 1/2 under kVec1 (split+interchange) — here kVec1: phase 8 only
  EXPECT_EQ(prof.phase(8).vector_instrs(), 0u);
}

}  // namespace
