// Cross-cutting invariants of the measured mini-app runs: the arithmetic is
// the same no matter how it is issued, so FLOP counts must be identical
// across optimization levels and machines; AVL must equal the plan's
// granted vl; vector metrics must be consistent with the plan's decisions.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace {

using namespace vecfd;
using core::Experiment;
using miniapp::MiniAppConfig;
using miniapp::OptLevel;

struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 4, .nz = 2}), state(mesh) {}
  fem::Mesh mesh;
  fem::State state;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(RunInvariants, FlopsIdenticalAcrossOptLevels) {
  // VEC2/IVEC2/VEC1 are data-movement transformations: the floating-point
  // work is bit-for-bit the same, so the FLOP counter must not move.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kVanilla;
  const auto base = ex.run(platforms::riscv_vec(), cfg).total.flops;
  EXPECT_GT(base, 0u);
  for (auto opt : {OptLevel::kVec2, OptLevel::kIVec2, OptLevel::kVec1}) {
    cfg.opt = opt;
    EXPECT_EQ(ex.run(platforms::riscv_vec(), cfg).total.flops, base)
        << to_string(opt);
  }
  // the scalar build performs the same arithmetic too
  cfg.opt = OptLevel::kScalar;
  EXPECT_EQ(ex.run(platforms::riscv_vec_scalar(), cfg).total.flops, base);
}

TEST(RunInvariants, FlopsIdenticalAcrossMachines) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kVec1;
  const auto a = ex.run(platforms::riscv_vec(), cfg).total.flops;
  const auto b = ex.run(platforms::sx_aurora(), cfg).total.flops;
  const auto c = ex.run(platforms::mn4_avx512(), cfg).total.flops;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(RunInvariants, FlopsScaleLinearlyWithElements) {
  const fem::Mesh m1({.nx = 2, .ny = 2, .nz = 2});
  const fem::Mesh m2({.nx = 4, .ny = 2, .nz = 2});
  const fem::State s1(m1);
  const fem::State s2(m2);
  MiniAppConfig cfg;
  cfg.vector_size = 8;
  cfg.opt = OptLevel::kVanilla;
  const auto f1 =
      Experiment(m1, s1).run(platforms::riscv_vec(), cfg).total.flops;
  const auto f2 =
      Experiment(m2, s2).run(platforms::riscv_vec(), cfg).total.flops;
  EXPECT_EQ(f2, 2u * f1);
}

class AvlPerPhase : public ::testing::TestWithParam<int> {};

TEST_P(AvlPerPhase, EqualsGrantedVectorLength) {
  // every vectorized compute phase issues vl = min(VECTOR_SIZE, vlmax)
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const int vs = GetParam();
  MiniAppConfig cfg;
  cfg.vector_size = vs;
  cfg.opt = OptLevel::kVec1;
  const auto m = ex.run(platforms::riscv_vec(), cfg);
  const double expect = std::min(vs, 256);
  for (int p = 3; p <= 7; ++p) {
    EXPECT_NEAR(m.phase_metrics[p].avl, expect, 0.5) << "phase " << p;
  }
  // IVEC2'd phase 2 as well
  EXPECT_NEAR(m.phase_metrics[2].avl, expect, 0.5);
}

// from 32 upward every compute subkernel vectorizes (Table 4 saturation)
INSTANTIATE_TEST_SUITE_P(Sweep, AvlPerPhase, ::testing::Values(32, 48, 64));

TEST(RunInvariants, MvConsistentWithPlanDecisions) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 32;  // all compute subkernels profitable
  cfg.opt = OptLevel::kVanilla;
  const auto m = ex.run(platforms::riscv_vec(), cfg);
  // fully vectorized phases have a dominantly vector instruction stream
  for (int p : {3, 4, 5, 6, 7}) {
    EXPECT_GT(m.phase_metrics[p].mv, 0.7) << "phase " << p;
  }
  // scalar phases have exactly none
  for (int p : {1, 2, 8}) {
    EXPECT_DOUBLE_EQ(m.phase_metrics[p].mv, 0.0) << "phase " << p;
  }
}

TEST(RunInvariants, VectorActivityHighOnVectorPhases) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 32;
  cfg.opt = OptLevel::kVec1;
  const auto m = ex.run(platforms::riscv_vec(), cfg);
  // Av >= Mv on vector phases: vector instructions are multi-cycle
  for (int p : {3, 4, 5, 6, 7}) {
    EXPECT_GT(m.phase_metrics[p].av, m.phase_metrics[p].mv) << p;
  }
}

TEST(RunInvariants, CyclesDecreaseWhenFrequencyIrrelevant) {
  // cycles are frequency-independent in the model; seconds are not
  Fixture& f = fixture();
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kVec1;
  sim::MachineConfig slow = platforms::riscv_vec();
  sim::MachineConfig fast = platforms::riscv_vec();
  fast.frequency_mhz = 1000.0;
  miniapp::MiniApp app(f.mesh, f.state, cfg);
  sim::Vpu v_slow(slow);
  sim::Vpu v_fast(fast);
  const auto r_slow = app.run(v_slow);
  const double t_slow = v_slow.seconds();
  const auto r_fast = app.run(v_fast);
  const double t_fast = v_fast.seconds();
  // cycles match up to allocation-address cache noise (< 0.5%)
  EXPECT_NEAR(r_slow.cycles, r_fast.cycles, 5e-3 * r_slow.cycles);
  EXPECT_NEAR(t_slow / t_fast, 20.0, 0.2);
}

TEST(RunInvariants, SemiImplicitCostsMoreThanExplicit) {
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = OptLevel::kVec1;
  cfg.scheme = fem::Scheme::kExplicit;
  const double exp_cycles = ex.run(platforms::riscv_vec(), cfg).total_cycles;
  cfg.scheme = fem::Scheme::kSemiImplicit;
  const auto semi = ex.run(platforms::riscv_vec(), cfg);
  EXPECT_GT(semi.total_cycles, exp_cycles);
  // and the extra work is concentrated in phases 5 (mass), 7 (K) and
  // 8 (CSR scatter)
  EXPECT_GT(semi.phase_share(8), 0.05);
}

}  // namespace
