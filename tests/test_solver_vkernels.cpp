// Tests for the Vpu-instrumented solve kernels (solver/vkernels.h): the
// ELL mirror, SpMV/BLAS-1 golden equality against the host kernels, the
// vcg/vbicgstab golden match against cg/bicgstab, the scalar-machine
// fallback, and the long-vector AVL behaviour the co-design case rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "fem/reference_assembly.h"
#include "metrics/metrics.h"
#include "platforms/platforms.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::bicgstab;
using solver::cg;
using solver::CsrMatrix;
using solver::EllMatrix;
using solver::SolveOptions;
using solver::vbicgstab;
using solver::vcg;

CsrMatrix poisson1d(int n) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[static_cast<std::size_t>(i)].push_back(i - 1);
    if (i < n - 1) adj[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  CsrMatrix a(adj);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i < n - 1) a.add(i, i + 1, -1.0);
  }
  return a;
}

std::vector<double> random_vector(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = u(rng);
  return v;
}

double rel_l2_diff(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// The semi-implicit momentum operator of a small cavity mesh — the system
/// phase 9 solves.
struct FemSystem {
  FemSystem()
      : mesh({.nx = 4, .ny = 4, .nz = 4}),
        state(mesh),
        shape(),
        sys(fem::assemble_global(mesh, state, shape,
                                 fem::Scheme::kSemiImplicit)) {}
  fem::Mesh mesh;
  fem::State state;
  fem::ShapeTable shape;
  fem::GlobalSystem sys;
};

TEST(EllMatrix, MirrorsCsrWithMaskedPadding) {
  const CsrMatrix a = poisson1d(5);
  const EllMatrix e(a);
  EXPECT_EQ(e.rows(), 5);
  EXPECT_EQ(e.width(), 3);  // interior rows hold {-1, 2, -1}
  // row 0 has only 2 nonzeros: slab 2 must pad with the masked-lane
  // sentinel (column −1, 0.0) so the pad gathers nothing
  EXPECT_EQ(e.cols(2)[0], -1);
  EXPECT_DOUBLE_EQ(e.vals(2)[0], 0.0);
  // interior row 2, slab order follows the sorted CSR columns {1, 2, 3}
  EXPECT_EQ(e.cols(0)[2], 1);
  EXPECT_DOUBLE_EQ(e.vals(0)[2], -1.0);
  EXPECT_EQ(e.cols(1)[2], 2);
  EXPECT_DOUBLE_EQ(e.vals(1)[2], 2.0);
}

TEST(Vspmv, MatchesHostSpmv) {
  const CsrMatrix a = poisson1d(97);  // odd size: remainder strips
  const EllMatrix e(a);
  const std::vector<double> x = random_vector(97, 7);
  std::vector<double> y_host(97), y_vpu(97);
  a.spmv(x, y_host);

  sim::Vpu vpu(platforms::riscv_vec());
  solver::vspmv(vpu, e, x, y_vpu, 64);
  for (int i = 0; i < 97; ++i) {
    EXPECT_NEAR(y_vpu[i], y_host[i], 1e-13) << "row " << i;
  }
  // the instrumented SpMV must be the paper's indexed-load workload
  EXPECT_GT(vpu.counters().vmem_indexed_instrs, 0u);  // vgather x[cols]
  EXPECT_GT(vpu.counters().vmem_unit_instrs, 0u);     // vals/cols slabs
  EXPECT_GT(vpu.counters().flops, 0u);
}

TEST(Vblas1, MatchesHostBlas1) {
  const int n = 83;
  std::vector<double> a = random_vector(n, 1);
  std::vector<double> b = random_vector(n, 2);
  sim::Vpu vpu(platforms::riscv_vec());

  EXPECT_NEAR(solver::vdot(vpu, a, b, 32), solver::dot(a, b), 1e-12);
  EXPECT_NEAR(solver::vnorm2(vpu, a, 32), solver::norm2(a), 1e-12);

  std::vector<double> y_host = b;
  std::vector<double> y_vpu = b;
  solver::axpy(0.75, a, y_host);
  solver::vaxpy(vpu, 0.75, a, y_vpu, 32);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(y_vpu[i], y_host[i], 1e-14);

  // y = x + beta·y
  std::vector<double> p_vpu = b;
  solver::vxpby(vpu, a, -0.5, p_vpu, 32);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(p_vpu[i], a[i] - 0.5 * b[i], 1e-14);
  }

  std::vector<double> out(n);
  solver::vsub(vpu, a, b, out, 32);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] - b[i], 1e-14);

  std::vector<double> packed(n / 3);
  solver::vpack_strided(vpu, a.data(), 3, packed, 16);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    EXPECT_DOUBLE_EQ(packed[i], a[3 * i]);
  }
}

TEST(Vcg, GoldenMatchAgainstHostCg) {
  const int n = 100;
  const CsrMatrix a = poisson1d(n);
  std::vector<double> xref = random_vector(n, 3);
  std::vector<double> b(n);
  a.spmv(xref, b);
  const SolveOptions opts{
      .max_iterations = 500, .rel_tolerance = 1e-12, .precond = {}};

  std::vector<double> x_host(n, 0.0);
  const auto rep_host = cg(a, b, x_host, opts);
  ASSERT_TRUE(rep_host.converged);

  sim::Vpu vpu(platforms::riscv_vec());
  std::vector<double> x_vpu(n, 0.0);
  const auto rep_vpu = vcg(vpu, a, b, x_vpu, opts, 128);
  ASSERT_TRUE(rep_vpu.converged);

  EXPECT_LE(rel_l2_diff(x_vpu, x_host), 1e-10);
  EXPECT_GT(vpu.counters().vector_instrs(), 0u);
  EXPECT_GT(vpu.counters().vmem_indexed_instrs, 0u);
}

TEST(Vbicgstab, GoldenMatchAgainstHostOnFemOperator) {
  FemSystem f;
  ASSERT_TRUE(f.sys.has_matrix);
  const int n = f.sys.matrix.rows();
  std::vector<double> xref(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xref[static_cast<std::size_t>(i)] = std::sin(0.37 * i) + 0.2;
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  f.sys.matrix.spmv(xref, b);
  const SolveOptions opts{
      .max_iterations = 500, .rel_tolerance = 1e-12, .precond = {}};

  std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
  const auto rep_host = bicgstab(f.sys.matrix, b, x_host, opts);
  ASSERT_TRUE(rep_host.converged);

  sim::Vpu vpu(platforms::riscv_vec());
  std::vector<double> x_vpu(static_cast<std::size_t>(n), 0.0);
  const auto rep_vpu = vbicgstab(vpu, f.sys.matrix, b, x_vpu, opts, 240);
  ASSERT_TRUE(rep_vpu.converged) << "res=" << rep_vpu.residual;

  EXPECT_LE(rel_l2_diff(x_vpu, x_host), 1e-10);
  // and both sit on the manufactured solution
  EXPECT_LE(rel_l2_diff(x_vpu, xref), 1e-8);
}

TEST(Vkernels, ScalarMachineFallbackComputesIdenticalValues) {
  const int n = 64;
  const CsrMatrix a = poisson1d(n);
  std::vector<double> xref = random_vector(n, 5);
  std::vector<double> b(n);
  a.spmv(xref, b);
  const SolveOptions opts{
      .max_iterations = 300, .rel_tolerance = 1e-12, .precond = {}};

  sim::Vpu vpu(platforms::riscv_vec_scalar());
  std::vector<double> x(n, 0.0);
  const auto rep = vcg(vpu, a, b, x, opts, 64);
  ASSERT_TRUE(rep.converged);

  std::vector<double> x_host(n, 0.0);
  const auto rep_host = cg(a, b, x_host, opts);
  ASSERT_TRUE(rep_host.converged);
  EXPECT_LE(rel_l2_diff(x, x_host), 1e-10);

  // a scalar-only machine must not execute a single vector instruction
  EXPECT_EQ(vpu.counters().vector_instrs(), 0u);
  EXPECT_GT(vpu.counters().scalar_instrs(), 0u);
}

TEST(Vkernels, BreakdownContractMatchesHost) {
  // diag(1, -1) → CG breaks down immediately; the instrumented variant
  // must honour the same truthful-residual contract as the host solver.
  CsrMatrix a(std::vector<std::vector<int>>(2));
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  std::vector<double> b{1.0, 1.0};
  sim::Vpu vpu(platforms::riscv_vec());
  std::vector<double> x(2, 0.0);
  const auto rep = vcg(vpu, a, b, x);
  EXPECT_FALSE(rep.converged);
  EXPECT_NEAR(rep.residual, 1.0, 1e-14);
  ASSERT_FALSE(rep.history.empty());
}

TEST(Vkernels, AvlApproachesVlmaxWithLargeStrips) {
  // the acceptance claim: strip-mining the solve at large VECTOR_SIZE
  // drives AVL toward vlmax — the vgather SpMV exploits long vectors.
  const int n = 1024;
  const CsrMatrix a = poisson1d(n);
  std::vector<double> xref = random_vector(n, 11);
  std::vector<double> b(n);
  a.spmv(xref, b);
  const SolveOptions opts{
      .max_iterations = 50, .rel_tolerance = 1e-10, .precond = {}};
  const int vlmax = platforms::riscv_vec().vlmax;

  auto solve_avl = [&](int strip) {
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(n, 0.0);
    (void)vcg(vpu, a, b, x, opts, strip);
    return metrics::compute(vpu.counters(), vlmax).avl;
  };

  const double avl_short = solve_avl(16);
  const double avl_long = solve_avl(512);
  EXPECT_NEAR(avl_short, 16.0, 1.0);
  EXPECT_GT(avl_long, 0.9 * vlmax);
  EXPECT_GT(avl_long, 10.0 * avl_short);
}

}  // namespace
