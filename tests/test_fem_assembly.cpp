// Tests for the golden reference assembly: geometric sanity (Jacobians,
// volumes), physical sanity (zero-flow limits), and global assembly
// structure.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fem/reference_assembly.h"

namespace {

using vecfd::fem::assemble_element;
using vecfd::fem::assemble_global;
using vecfd::fem::element_dt_factor;
using vecfd::fem::ElementSystem;
using vecfd::fem::kDim;
using vecfd::fem::kNodes;
using vecfd::fem::Mesh;
using vecfd::fem::Physics;
using vecfd::fem::Scheme;
using vecfd::fem::ShapeTable;
using vecfd::fem::State;

struct Fixture {
  Fixture() : mesh({.nx = 3, .ny = 3, .nz = 3}), state(mesh), shape() {}
  Mesh mesh;
  State state;
  ShapeTable shape;
};

TEST(ReferenceAssembly, ElementVolumeFromGpvol) {
  // Σ_g gpvol = element volume; with an undistorted unit mesh each element
  // has volume (1/nx)³.  We recover gpvol indirectly via the mass-matrix
  // row sums of the semi-implicit block at ρ/Δt dominance.
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2, .distortion = 0.0});
  Physics phys;
  phys.viscosity = 0.0;
  phys.dt = 1.0;
  phys.density = 1.0;
  // zero velocity field → no convection; block = M·(ρ/Δt)
  State state(mesh, phys);
  std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
  std::fill(state.unknowns_old().begin(), state.unknowns_old().end(), 0.0);
  const ShapeTable shape;
  ElementSystem es;
  assemble_element(mesh, state, shape, 0, Scheme::kSemiImplicit, es);
  double total = 0.0;
  for (double v : es.block) total += v;
  // Σ_ab M_ab = ∫ 1 = volume = 0.125
  EXPECT_NEAR(total, 0.125, 1e-12);
}

TEST(ReferenceAssembly, ZeroFieldGivesPureForceResidual) {
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2, .distortion = 0.0});
  Physics phys;
  phys.force[0] = 0.0;
  phys.force[1] = 0.0;
  phys.force[2] = -2.0;
  State state(mesh, phys);
  std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
  std::fill(state.unknowns_old().begin(), state.unknowns_old().end(), 0.0);
  const ShapeTable shape;
  ElementSystem es;
  assemble_element(mesh, state, shape, 0, Scheme::kExplicit, es);
  // elrhs[d][a] = Σ_g N_a ρ f_d gpvol: x/y components zero, z negative
  for (int a = 0; a < kNodes; ++a) {
    EXPECT_NEAR(es.rhs_at(0, a), 0.0, 1e-14);
    EXPECT_NEAR(es.rhs_at(1, a), 0.0, 1e-14);
    EXPECT_LT(es.rhs_at(2, a), 0.0);
  }
  // total z-residual = ρ f_z · volume
  double tot = 0.0;
  for (int a = 0; a < kNodes; ++a) tot += es.rhs_at(2, a);
  EXPECT_NEAR(tot, -2.0 * 0.125, 1e-12);
}

TEST(ReferenceAssembly, ViscousBlockSymmetricPositive) {
  Fixture f;
  ElementSystem es;
  assemble_element(f.mesh, f.state, f.shape, 5, Scheme::kSemiImplicit, es);
  // The full block is M/dt + C + V; symmetry holds for M and V, so check
  // the symmetric part dominates the skew part (C is the only skew source).
  double sym = 0.0;
  double skew = 0.0;
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      const double kab = es.block_at(a, b);
      const double kba = es.block_at(b, a);
      sym += std::fabs(0.5 * (kab + kba));
      skew += std::fabs(0.5 * (kab - kba));
    }
  }
  EXPECT_GT(sym, skew);
}

TEST(ReferenceAssembly, DtFactorMaterialBands) {
  Physics phys;
  phys.density = 2.0;
  phys.dt = 0.5;
  EXPECT_DOUBLE_EQ(element_dt_factor(phys, 0), 4.0);
  EXPECT_DOUBLE_EQ(element_dt_factor(phys, 1), 1.02 * 4.0);
}

TEST(ReferenceAssembly, GlobalRhsIsSumOfElementContributions) {
  Fixture f;
  const auto sys = assemble_global(f.mesh, f.state, f.shape,
                                   Scheme::kExplicit);
  ASSERT_EQ(sys.rhs.size(),
            static_cast<std::size_t>(f.mesh.num_nodes()) * kDim);
  EXPECT_FALSE(sys.has_matrix);

  // recompute by hand
  std::vector<double> expect(sys.rhs.size(), 0.0);
  ElementSystem es;
  for (int e = 0; e < f.mesh.num_elements(); ++e) {
    assemble_element(f.mesh, f.state, f.shape, e, Scheme::kExplicit, es);
    const auto ln = f.mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      for (int d = 0; d < kDim; ++d) {
        expect[static_cast<std::size_t>(ln[a]) * kDim + d] +=
            es.rhs[d * kNodes + a];
      }
    }
  }
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ(sys.rhs[i], expect[i]);
  }
}

TEST(ReferenceAssembly, SemiImplicitMatrixRowsMatchAdjacency) {
  Fixture f;
  const auto sys = assemble_global(f.mesh, f.state, f.shape,
                                   Scheme::kSemiImplicit);
  ASSERT_TRUE(sys.has_matrix);
  EXPECT_EQ(sys.matrix.rows(), f.mesh.num_nodes());
  // a corner node has 8 neighbours (2x2x2 including itself)
  EXPECT_EQ(sys.matrix.row_cols(0).size(), 8u);
  // diagonal entries positive (mass + viscosity dominate)
  for (int r = 0; r < sys.matrix.rows(); ++r) {
    EXPECT_GT(sys.matrix.at(r, r), 0.0) << "row " << r;
  }
}

TEST(ReferenceAssembly, DistortionChangesJacobiansButNotTotals) {
  // The total body-force residual is mesh-volume dependent only.
  Physics phys;
  phys.force[0] = 1.0;
  phys.force[1] = 0.0;
  phys.force[2] = 0.0;
  const ShapeTable shape;
  double totals[2];
  int idx = 0;
  for (double dist : {0.0, 0.1}) {
    const Mesh mesh({.nx = 3, .ny = 3, .nz = 3, .distortion = dist});
    State state(mesh, phys);
    std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
    std::fill(state.unknowns_old().begin(), state.unknowns_old().end(), 0.0);
    const auto sys = assemble_global(mesh, state, shape, Scheme::kExplicit);
    double t = 0.0;
    for (int n = 0; n < mesh.num_nodes(); ++n) t += sys.rhs[n * kDim];
    totals[idx++] = t;
  }
  EXPECT_NEAR(totals[0], totals[1], 1e-10);  // both = ρ·f·|Ω| = 1
  EXPECT_NEAR(totals[0], 1.0, 1e-10);
}

TEST(ReferenceAssembly, TimeTermPullsTowardOldVelocity) {
  // With only the dt term active (no force, no viscosity, old velocity u⁰,
  // current velocity 0): residual ≈ ∫ N ρ/Δt u⁰ > 0 along u⁰'s direction.
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2, .distortion = 0.0});
  Physics phys;
  phys.viscosity = 0.0;
  phys.force[2] = 0.0;
  State state(mesh, phys);
  std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
  for (int n = 0; n < state.num_nodes(); ++n) {
    state.unknowns_old()[static_cast<std::size_t>(n) * 4 + 0] = 1.0;  // u=1
    state.unknowns_old()[static_cast<std::size_t>(n) * 4 + 1] = 0.0;
    state.unknowns_old()[static_cast<std::size_t>(n) * 4 + 2] = 0.0;
  }
  const ShapeTable shape;
  const auto sys = assemble_global(mesh, state, shape, Scheme::kExplicit);
  double tx = 0.0;
  for (int n = 0; n < mesh.num_nodes(); ++n) tx += sys.rhs[n * kDim];
  // ∫ ρ/Δt·1 over unit cube (materials alter dt factor slightly upward)
  EXPECT_GT(tx, 0.99 * phys.density / phys.dt);
  EXPECT_LT(tx, 1.03 * phys.density / phys.dt);
}

}  // namespace
