// Integration of the algebraic substrate with the assembled operators:
// the full "CFD = assembly + solver" pipeline of §2.3 at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "fem/reference_assembly.h"
#include "solver/krylov.h"

namespace {

using namespace vecfd;
using fem::kDim;
using fem::kDofs;

struct System {
  System()
      : mesh({.nx = 4, .ny = 4, .nz = 4}),
        state(mesh),
        shape(),
        sys(fem::assemble_global(mesh, state, shape,
                                 fem::Scheme::kSemiImplicit)) {}
  fem::Mesh mesh;
  fem::State state;
  fem::ShapeTable shape;
  fem::GlobalSystem sys;
};

TEST(SolverFem, MomentumOperatorIsSolvable) {
  System s;
  ASSERT_TRUE(s.sys.has_matrix);
  const int n = s.sys.matrix.rows();
  // manufactured solution
  std::vector<double> xref(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xref[static_cast<std::size_t>(i)] = std::sin(0.37 * i) + 0.2;
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  s.sys.matrix.spmv(xref, b);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto rep = solver::bicgstab(s.sys.matrix, b, x,
                                    {.max_iterations = 500,
                                     .rel_tolerance = 1e-11,
                                     .precond = {}});
  ASSERT_TRUE(rep.converged) << "res=" << rep.residual;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                xref[static_cast<std::size_t>(i)], 1e-7);
  }
}

TEST(SolverFem, JacobiPreconditioningReducesIterations) {
  System s;
  const int n = s.sys.matrix.rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x2(static_cast<std::size_t>(n), 0.0);
  const auto plain = solver::bicgstab(
      s.sys.matrix, b, x1,
      {.max_iterations = 2000, .rel_tolerance = 1e-10,
       .jacobi_precondition = false, .precond = {}});
  const auto precond = solver::bicgstab(
      s.sys.matrix, b, x2,
      {.max_iterations = 2000, .rel_tolerance = 1e-10,
       .jacobi_precondition = true, .precond = {}});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(precond.converged);
  EXPECT_LE(precond.iterations, plain.iterations);
}

TEST(SolverFem, OperatorIsDiagonallyDominantEnoughForJacobi) {
  // the ρ/Δt mass term keeps the diagonal strong — Jacobi must be valid
  System s;
  EXPECT_NO_THROW(solver::jacobi_inverse_diagonal(s.sys.matrix));
  for (int r = 0; r < s.sys.matrix.rows(); ++r) {
    EXPECT_GT(s.sys.matrix.at(r, r), 0.0);
  }
}

TEST(SolverFem, ShrinkingDtScalesTheMassTerm) {
  // K = (ρ/Δt)·M + C + V: halving Δt must grow every diagonal entry by
  // (close to) the mass contribution's share — and never shrink it.
  const fem::Mesh mesh({.nx = 3, .ny = 3, .nz = 3});
  const fem::ShapeTable shape;
  std::vector<double> diag_small;
  std::vector<double> diag_large;
  for (double dt : {0.01, 1.0}) {
    fem::Physics phys;
    phys.dt = dt;
    const fem::State state(mesh, phys);
    const auto sys =
        fem::assemble_global(mesh, state, shape, fem::Scheme::kSemiImplicit);
    auto& dst = dt == 0.01 ? diag_small : diag_large;
    for (int r = 0; r < sys.matrix.rows(); ++r) {
      dst.push_back(sys.matrix.at(r, r));
    }
  }
  ASSERT_EQ(diag_small.size(), diag_large.size());
  for (std::size_t r = 0; r < diag_small.size(); ++r) {
    EXPECT_GT(diag_small[r], diag_large[r]) << "row " << r;
  }
}

TEST(SolverFem, ExplicitRhsIsBoundedByData) {
  // basic stability: the explicit residual stays finite and scales with
  // the field magnitude
  System s;
  const auto r1 = fem::assemble_global(s.mesh, s.state, s.shape,
                                       fem::Scheme::kExplicit);
  double norm = 0.0;
  for (double v : r1.rhs) norm = std::max(norm, std::fabs(v));
  EXPECT_TRUE(std::isfinite(norm));
  EXPECT_GT(norm, 0.0);
  EXPECT_LT(norm, 1e3);
}

}  // namespace
