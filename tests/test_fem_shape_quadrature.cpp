// Tests for quadrature rules and Q1 hex shape functions, including the
// classic FEM property tests (partition of unity, derivative consistency,
// polynomial exactness).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>

#include "fem/quadrature.h"
#include "fem/shape.h"

namespace {

using vecfd::fem::gauss_legendre_1d;
using vecfd::fem::HexQuadrature;
using vecfd::fem::kDim;
using vecfd::fem::kGauss;
using vecfd::fem::kNodes;
using vecfd::fem::shape_derivatives;
using vecfd::fem::shape_values;
using vecfd::fem::ShapeTable;

TEST(Quadrature1D, WeightsSumToTwo) {
  for (int n = 1; n <= 4; ++n) {
    const auto r = gauss_legendre_1d(n);
    double s = 0.0;
    for (double w : r.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-14) << "n=" << n;
  }
}

TEST(Quadrature1D, RejectsUnsupportedOrders) {
  EXPECT_THROW(gauss_legendre_1d(0), std::invalid_argument);
  EXPECT_THROW(gauss_legendre_1d(5), std::invalid_argument);
}

// Gauss-Legendre with n points integrates x^k exactly for k ≤ 2n−1.
class QuadratureExactness : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureExactness, IntegratesPolynomialsExactly) {
  const int n = GetParam();
  const auto r = gauss_legendre_1d(n);
  for (int k = 0; k <= 2 * n - 1; ++k) {
    double got = 0.0;
    for (std::size_t i = 0; i < r.points.size(); ++i) {
      got += r.weights[i] * std::pow(r.points[i], k);
    }
    const double exact = (k % 2 == 1) ? 0.0 : 2.0 / (k + 1);
    EXPECT_NEAR(got, exact, 1e-12) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureExactness,
                         ::testing::Values(1, 2, 3, 4));

TEST(HexQuadrature, TensorProductSize) {
  EXPECT_EQ(HexQuadrature(1).size(), 1);
  EXPECT_EQ(HexQuadrature(2).size(), 8);
  EXPECT_EQ(HexQuadrature(3).size(), 27);
}

TEST(HexQuadrature, WeightsSumToReferenceVolume) {
  const HexQuadrature q(2);
  double s = 0.0;
  for (int g = 0; g < q.size(); ++g) s += q.weight(g);
  EXPECT_NEAR(s, 8.0, 1e-13);
}

TEST(Shape, PartitionOfUnityAtRandomPoints) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    const std::array<double, 3> xi{u(rng), u(rng), u(rng)};
    const auto n = shape_values(xi);
    double s = 0.0;
    for (double v : n) s += v;
    EXPECT_NEAR(s, 1.0, 1e-13);
  }
}

TEST(Shape, DerivativesSumToZero) {
  // Σ_a ∂N_a/∂ξ_j = 0 (constant field has zero gradient)
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    const std::array<double, 3> xi{u(rng), u(rng), u(rng)};
    const auto dn = shape_derivatives(xi);
    for (int j = 0; j < kDim; ++j) {
      double s = 0.0;
      for (int a = 0; a < kNodes; ++a) s += dn[j * kNodes + a];
      EXPECT_NEAR(s, 0.0, 1e-13);
    }
  }
}

TEST(Shape, KroneckerDeltaAtNodes) {
  constexpr std::array<std::array<double, 3>, kNodes> nodes = {{
      {-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
      {-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
  }};
  for (int b = 0; b < kNodes; ++b) {
    const auto n = shape_values(nodes[b]);
    for (int a = 0; a < kNodes; ++a) {
      EXPECT_NEAR(n[a], a == b ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Shape, DerivativeMatchesFiniteDifference) {
  const std::array<double, 3> xi{0.3, -0.2, 0.55};
  const auto dn = shape_derivatives(xi);
  const double h = 1e-6;
  for (int j = 0; j < kDim; ++j) {
    std::array<double, 3> xp = xi;
    std::array<double, 3> xm = xi;
    xp[j] += h;
    xm[j] -= h;
    const auto np = shape_values(xp);
    const auto nm = shape_values(xm);
    for (int a = 0; a < kNodes; ++a) {
      const double fd = (np[a] - nm[a]) / (2.0 * h);
      EXPECT_NEAR(dn[j * kNodes + a], fd, 1e-8);
    }
  }
}

TEST(Shape, InterpolatesTrilinearFieldsExactly) {
  // f(x) = 2 + x − 3y + 0.5z + xy − yz + 0.25xyz is trilinear → exact
  auto f = [](double x, double y, double z) {
    return 2.0 + x - 3.0 * y + 0.5 * z + x * y - y * z + 0.25 * x * y * z;
  };
  constexpr std::array<std::array<double, 3>, kNodes> nodes = {{
      {-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
      {-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
  }};
  std::array<double, kNodes> fa{};
  for (int a = 0; a < kNodes; ++a) {
    fa[a] = f(nodes[a][0], nodes[a][1], nodes[a][2]);
  }
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 100; ++trial) {
    const std::array<double, 3> xi{u(rng), u(rng), u(rng)};
    const auto n = shape_values(xi);
    double got = 0.0;
    for (int a = 0; a < kNodes; ++a) got += n[a] * fa[a];
    EXPECT_NEAR(got, f(xi[0], xi[1], xi[2]), 1e-12);
  }
}

TEST(ShapeTable, MatchesPointwiseEvaluation) {
  const HexQuadrature q(2);
  const ShapeTable t(q);
  ASSERT_EQ(t.num_gauss(), kGauss);
  for (int g = 0; g < kGauss; ++g) {
    const auto n = shape_values(q.point(g));
    const auto dn = shape_derivatives(q.point(g));
    for (int a = 0; a < kNodes; ++a) {
      EXPECT_DOUBLE_EQ(t.n(g, a), n[a]);
      for (int j = 0; j < kDim; ++j) {
        EXPECT_DOUBLE_EQ(t.dn(g, j, a), dn[j * kNodes + a]);
      }
    }
    EXPECT_DOUBLE_EQ(t.weight(g), q.weight(g));
  }
}

TEST(ShapeTable, RejectsNon8PointRules) {
  EXPECT_THROW(ShapeTable(HexQuadrature(3)), std::invalid_argument);
}

}  // namespace
