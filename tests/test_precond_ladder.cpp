// Property tests for the phase-10 preconditioner ladder (DESIGN.md §8):
//
//   * every rung's M⁻¹ is symmetric positive definite on the pinned
//     pressure Laplacian (the property that keeps plain CG valid);
//   * rungs order monotonically on refined cavity meshes — deflate ≤
//     cheby ≤ jacobi pressure iterations, with the two-level rung's count
//     levelling off where Jacobi's grows;
//   * the SolveReport residual/history contract of krylov.h holds per
//     rung on EVERY exit path — convergence, budget exhaustion, zero RHS,
//     breakdown, and the failure exit a zero operator diagonal takes;
//   * a zero diagonal surfaces as SolveReport::failure from every solver
//     (host and Vpu, single and multi RHS) instead of escaping as an
//     exception out of the time loop (the regression this suite pins);
//   * per-rung counter conservation: Σ phase counters == run totals and
//     host-side setup charges nothing (phase 0 stays empty), i.e. the
//     instrumented preconditioner setup/apply work lands in phase 10;
//   * structured_aggregates is dense, non-empty, bounded and
//     numbering-robust, and malformed aggregates are rejected loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/campaign.h"
#include "core/csv.h"
#include "fem/mesh.h"
#include "fem/projection.h"
#include "fem/shape.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "solver/krylov.h"
#include "solver/preconditioner.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::CsrMatrix;
using solver::PrecondKind;
using solver::SolveOptions;
using solver::SolveReport;

constexpr PrecondKind kRungs[] = {PrecondKind::kJacobi, PrecondKind::kCheby,
                                  PrecondKind::kDeflate};

// vector path + scalar fallback; the middle machines add nothing the
// format-equivalence suite doesn't already cover
const sim::MachineConfig kMachines[] = {platforms::riscv_vec(),
                                        platforms::riscv_vec_scalar()};

/// Pinned cavity pressure Laplacian of an n³ mesh (the phase-10 operator).
CsrMatrix pinned_laplacian(const fem::Mesh& mesh) {
  const fem::ShapeTable shape;
  CsrMatrix a = fem::assemble_pressure_laplacian(mesh, shape);
  const int pin[] = {0};
  fem::pin_dirichlet(a, pin);
  return a;
}

SolveOptions rung_options(PrecondKind kind, const fem::Mesh& mesh) {
  SolveOptions opts{.max_iterations = 600, .rel_tolerance = 1e-10,
                    .precond = {}};
  opts.precond.kind = kind;
  if (kind == PrecondKind::kDeflate) {
    opts.precond.aggregates = fem::structured_aggregates(mesh, 2);
  }
  return opts;
}

double true_relative_residual(const CsrMatrix& a,
                              const std::vector<double>& b,
                              const std::vector<double>& x) {
  std::vector<double> ax(b.size());
  a.spmv(x, ax);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += (b[i] - ax[i]) * (b[i] - ax[i]);
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// The krylov.h residual contract (see test_property_solvers).
void expect_contract(const SolveReport& rep, const CsrMatrix& a,
                     const std::vector<double>& b,
                     const std::vector<double>& x, const SolveOptions& opts,
                     const std::string& what) {
  const double truth = true_relative_residual(a, b, x);
  EXPECT_NEAR(rep.residual, truth, 1e-8 * (1.0 + truth)) << what;
  if (rep.converged) {
    EXPECT_LT(rep.residual, opts.rel_tolerance) << what;
  }
  ASSERT_EQ(rep.history.size(),
            static_cast<std::size_t>(rep.iterations) + 1u)
      << what;
  EXPECT_DOUBLE_EQ(rep.history.back(), rep.residual) << what;
}

/// Deterministic pseudo-random vector (no RNG state shared across tests).
std::vector<double> hashed_vector(int n, unsigned seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const unsigned h = (static_cast<unsigned>(i) + seed) * 2654435761u;
    v[static_cast<std::size_t>(i)] =
        static_cast<double>(h & 0xffffu) / 32768.0 - 1.0;
  }
  return v;
}

/// Small SPD-patterned system whose row `zero_row` keeps its implicit 0.0
/// diagonal — the operator jacobi_inverse_diagonal_into must reject.
CsrMatrix zero_diagonal_system(int n, int zero_row) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int r = 0; r + 1 < n; ++r) {
    adj[static_cast<std::size_t>(r)].push_back(r + 1);
    adj[static_cast<std::size_t>(r + 1)].push_back(r);
  }
  CsrMatrix a(adj);
  for (int r = 0; r < n; ++r) {
    if (r != zero_row) a.add(r, r, 2.0);
    if (r + 1 < n) {
      a.add(r, r + 1, -0.5);
      a.add(r + 1, r, -0.5);
    }
  }
  return a;
}

TEST(PrecondLadder, EveryRungIsSymmetricPositiveDefinite) {
  const fem::Mesh mesh(fem::MeshConfig{.nx = 5, .ny = 5, .nz = 5});
  const CsrMatrix a = pinned_laplacian(mesh);
  const int n = a.rows();
  for (const auto kind : kRungs) {
    const SolveOptions opts = rung_options(kind, mesh);
    sim::Vpu vpu(platforms::riscv_vec());
    solver::OperatorMirror op;
    op.assign(a, solver::SpmvFormat::kEll,
              solver::solve_effective_strip(64, vpu.config()));
    solver::Preconditioner pc;
    pc.setup(vpu, a, op, opts, 64);
    std::vector<double> mu(static_cast<std::size_t>(n));
    std::vector<double> mv(static_cast<std::size_t>(n));
    for (unsigned trial = 0; trial < 6; ++trial) {
      const auto u = hashed_vector(n, 2 * trial + 1);
      const auto v = hashed_vector(n, 2 * trial + 2);
      pc.apply(vpu, u, mu, 64);
      pc.apply(vpu, v, mv, 64);
      double umv = 0.0;
      double vmu = 0.0;
      double umu = 0.0;
      double uu = 0.0;
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        umv += u[ui] * mv[ui];
        vmu += v[ui] * mu[ui];
        umu += u[ui] * mu[ui];
        uu += u[ui] * u[ui];
      }
      const std::string what = std::string("rung ") + to_string(kind) +
                               " trial " + std::to_string(trial);
      // symmetry: <u, M⁻¹v> == <M⁻¹u, v> up to float evaluation order
      EXPECT_NEAR(umv, vmu, 1e-9 * (1.0 + std::abs(umv))) << what;
      // definiteness: <u, M⁻¹u> > 0 for u != 0
      EXPECT_GT(umu, 0.0) << what;
      EXPECT_GT(uu, 0.0) << what;
    }
  }
}

TEST(PrecondLadder, RungsOrderMonotonicallyUnderRefinement) {
  // deflate <= cheby <= jacobi at every refinement, and the two-level
  // rung's count must level off where Jacobi's grows (the κ-capping
  // property bench/precond_ladder quantifies on the finest mesh).
  int prev_jacobi = 0;
  int prev_deflate = 0;
  for (const int nref : {6, 8}) {
    const fem::Mesh mesh(
        fem::MeshConfig{.nx = nref, .ny = nref, .nz = nref});
    const CsrMatrix a = pinned_laplacian(mesh);
    const int n = a.rows();
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    b[0] = 0.0;  // pinned row
    int iters[3] = {0, 0, 0};
    for (int k = 0; k < 3; ++k) {
      const SolveOptions opts = rung_options(kRungs[k], mesh);
      sim::Vpu vpu(platforms::riscv_vec());
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const auto rep = solver::vcg(vpu, a, b, x, opts, 240);
      ASSERT_TRUE(rep.converged)
          << to_string(kRungs[k]) << " at " << nref << "^3";
      expect_contract(rep, a, b, x, opts,
                      std::string(to_string(kRungs[k])) + " converged");
      iters[k] = rep.iterations;
    }
    EXPECT_LE(iters[2], iters[1]) << nref << "^3: deflate vs cheby";
    EXPECT_LE(iters[1], iters[0]) << nref << "^3: cheby vs jacobi";
    if (prev_jacobi > 0) {
      // refinement growth: Jacobi must grow strictly faster than the
      // two-level rung (which stays within a couple of iterations)
      EXPECT_LT(iters[2] - prev_deflate, iters[0] - prev_jacobi)
          << "deflation must level off where Jacobi grows";
    }
    prev_jacobi = iters[0];
    prev_deflate = iters[2];
  }
}

TEST(PrecondLadder, ContractHoldsOnEveryExitPathPerRung) {
  const fem::Mesh mesh(fem::MeshConfig{.nx = 5, .ny = 5, .nz = 5});
  const CsrMatrix a = pinned_laplacian(mesh);
  const int n = a.rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  b[0] = 0.0;
  for (const auto kind : kRungs) {
    for (const auto& m : kMachines) {
      const std::string tag =
          std::string(to_string(kind)) + " on " + m.name;
      // convergence exit
      {
        SolveOptions opts = rung_options(kind, mesh);
        sim::Vpu vpu(m);
        std::vector<double> x(static_cast<std::size_t>(n), 0.0);
        const auto rep = solver::vcg(vpu, a, b, x, opts, 64);
        EXPECT_TRUE(rep.converged) << tag;
        EXPECT_TRUE(rep.failure.empty()) << tag;
        expect_contract(rep, a, b, x, opts, tag + " convergence");
      }
      // budget exit
      {
        SolveOptions opts = rung_options(kind, mesh);
        opts.max_iterations = 2;
        opts.rel_tolerance = 1e-30;
        sim::Vpu vpu(m);
        std::vector<double> x(static_cast<std::size_t>(n), 0.0);
        const auto rep = solver::vcg(vpu, a, b, x, opts, 64);
        EXPECT_FALSE(rep.converged) << tag;
        EXPECT_EQ(rep.iterations, 2) << tag;
        expect_contract(rep, a, b, x, opts, tag + " budget");
      }
      // zero-RHS exit
      {
        SolveOptions opts = rung_options(kind, mesh);
        sim::Vpu vpu(m);
        const std::vector<double> zero(static_cast<std::size_t>(n), 0.0);
        std::vector<double> x = hashed_vector(n, 7);
        const auto rep = solver::vcg(vpu, a, zero, x, opts, 64);
        EXPECT_TRUE(rep.converged) << tag;
        EXPECT_EQ(rep.iterations, 0) << tag;
        expect_contract(rep, a, zero, x, opts, tag + " zero RHS");
        for (const double xi : x) EXPECT_EQ(xi, 0.0);
      }
    }
  }
  // breakdown exit: indefinite diag(1, −1) makes pᵀAp vanish.  The
  // deflation rung is excluded — a Galerkin coarse operator of an
  // indefinite matrix is not a meaningful configuration.
  for (const auto kind : {PrecondKind::kJacobi, PrecondKind::kCheby}) {
    CsrMatrix ind(std::vector<std::vector<int>>(2));
    ind.add(0, 0, 1.0);
    ind.add(1, 1, -1.0);
    SolveOptions opts{.max_iterations = 50, .rel_tolerance = 1e-12,
                      .precond = {}};
    opts.precond.kind = kind;
    const std::vector<double> b2{1.0, 1.0};
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(2, 0.0);
    const auto rep = solver::vcg(vpu, ind, b2, x, opts, 8);
    EXPECT_FALSE(rep.converged) << to_string(kind);
    expect_contract(rep, ind, b2, x, opts,
                    std::string(to_string(kind)) + " breakdown");
  }
}

TEST(PrecondLadder, ZeroDiagonalSurfacesAsFailureNotAsAnException) {
  // Regression: jacobi_inverse_diagonal_into throws std::runtime_error on
  // a zero diagonal, and no solver caught it — a degenerate operator blew
  // the whole time loop up.  Every solver now converts it into the
  // SolveReport::failure exit (krylov.h): failure set, zero iterations,
  // history == {rel0}, x untouched.
  const CsrMatrix a = zero_diagonal_system(24, 7);
  const std::vector<double> b(24, 1.0);
  const SolveOptions opts{.max_iterations = 50, .rel_tolerance = 1e-10,
                          .precond = {}};

  auto expect_failure = [&](const SolveReport& rep,
                            const std::vector<double>& x,
                            const std::string& what) {
    EXPECT_FALSE(rep.failure.empty()) << what;
    EXPECT_FALSE(rep.converged) << what;
    EXPECT_EQ(rep.iterations, 0) << what;
    expect_contract(rep, a, b, x, opts, what);
    for (const double xi : x) EXPECT_EQ(xi, 0.5) << what;  // untouched
  };

  {
    std::vector<double> x(24, 0.5);
    expect_failure(cg(a, b, x, opts), x, "host cg");
  }
  {
    std::vector<double> x(24, 0.5);
    expect_failure(bicgstab(a, b, x, opts), x, "host bicgstab");
  }
  for (const auto& m : kMachines) {
    {
      sim::Vpu vpu(m);
      std::vector<double> x(24, 0.5);
      expect_failure(solver::vcg(vpu, a, b, x, opts, 8), x,
                     std::string("vcg on ") + m.name);
    }
    {
      sim::Vpu vpu(m);
      std::vector<double> x(24, 0.5);
      expect_failure(solver::vbicgstab(vpu, a, b, x, opts, 8), x,
                     std::string("vbicgstab on ") + m.name);
    }
    {
      // multi-RHS: every active column fails; a zero column keeps its
      // ordinary converged-at-zero exit
      sim::Vpu vpu(m);
      std::vector<double> B(48, 1.0);
      std::fill(B.begin() + 24, B.end(), 0.0);
      std::vector<double> X(48, 0.5);
      const auto reps = solver::vbicgstab_multi(vpu, a, B, X, 2, opts, 8);
      ASSERT_EQ(reps.size(), 2u);
      EXPECT_FALSE(reps[0].failure.empty()) << m.name;
      EXPECT_EQ(reps[0].iterations, 0) << m.name;
      EXPECT_TRUE(reps[1].failure.empty()) << m.name;
      EXPECT_TRUE(reps[1].converged) << m.name;
      for (int i = 0; i < 24; ++i) {
        EXPECT_EQ(X[static_cast<std::size_t>(i)], 0.5) << m.name;
        EXPECT_EQ(X[static_cast<std::size_t>(24 + i)], 0.0) << m.name;
      }
    }
  }

  // kCheby / kDeflate setups hit the same throw before any rung-specific
  // work; the vcg failure exit must cover them too
  for (const auto kind : {PrecondKind::kCheby, PrecondKind::kDeflate}) {
    SolveOptions ro{.max_iterations = 50, .rel_tolerance = 1e-10,
                    .precond = {}};
    ro.precond.kind = kind;
    ro.precond.aggregates.assign(24, 0);  // size matches the 24-row system
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(24, 0.5);
    const auto rep = solver::vcg(vpu, a, b, x, ro, 8);
    EXPECT_FALSE(rep.failure.empty()) << to_string(kind);
    EXPECT_EQ(rep.iterations, 0) << to_string(kind);
  }
}

TEST(PrecondLadder, FailureCountSurfacesInCampaignCsv) {
  // The campaign CSV grew `precond` and `solver_failures` columns; a
  // healthy run must report its rung and zero failures.
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 3, .ny = 3, .nz = 3};
  core::Campaign camp({scen});
  core::CampaignPoint p;
  p.machine = platforms::riscv_vec();
  p.vector_size = 16;
  p.steps = 1;
  p.precond = PrecondKind::kDeflate;
  const core::CampaignRun run = camp.run(p);
  EXPECT_EQ(run.solver_failures, 0);
  EXPECT_TRUE(run.all_converged);
  std::ostringstream os;
  core::write_campaign_csv(os, {&run, 1});
  const std::string csv = os.str();
  EXPECT_NE(csv.find(",precond,"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",solver_failures"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",deflate,"), std::string::npos) << csv;
}

TEST(PrecondLadder, CountersConservePerRung) {
  // Per-rung conservation: Σ phase == totals field by field, phase 0
  // ("outside") stays empty — i.e. all instrumented preconditioner work
  // (power iterations, transfers, extra SpMVs) lands in phase 10 and
  // host-side setup charges nothing.
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 4, .ny = 4, .nz = 4};
  const fem::Mesh mesh(s.mesh);
  for (const auto kind : kRungs) {
    for (const auto& m : kMachines) {
      miniapp::TimeLoopConfig cfg;
      cfg.steps = 2;
      cfg.vector_size = 32;
      cfg.precond = kind;
      miniapp::TimeLoop loop(mesh, s, cfg);
      sim::Vpu vpu(m);
      const auto res = loop.run(vpu);
      const std::string what =
          std::string(to_string(kind)) + " on " + m.name;
      EXPECT_TRUE(res.all_converged) << what;
      sim::Counters sum;
      for (const sim::Counters& c : res.phase) sum += c;
      sim::Counters::visit_pairs(
          sum, res.total,
          [&](const sim::CounterInfo& info, const auto& g, const auto& w) {
            if constexpr (std::is_floating_point_v<
                              std::decay_t<decltype(g)>>) {
              EXPECT_NEAR(g, w, 1e-9 * (1.0 + w)) << what << ": "
                                                  << info.name;
            } else {
              EXPECT_EQ(g, w) << what << ": " << info.name;
            }
          });
      EXPECT_EQ(res.phase[0].total_instrs(), 0u) << what;
      EXPECT_DOUBLE_EQ(res.phase[0].total_cycles(), 0.0) << what;
      double step_sum = 0.0;
      for (const miniapp::StepReport& st : res.steps) step_sum += st.cycles;
      EXPECT_NEAR(step_sum, res.cycles, 1e-9 * res.cycles) << what;
    }
  }
}

TEST(PrecondLadder, StructuredAggregatesAreDenseBoundedAndRobust) {
  for (const bool shuffle : {false, true}) {
    const fem::Mesh mesh(fem::MeshConfig{.nx = 5, .ny = 4, .nz = 3,
                                         .distortion = 0.3,
                                         .shuffle_nodes = shuffle});
    const int factor = 2;
    const auto agg = fem::structured_aggregates(mesh, factor);
    ASSERT_EQ(agg.size(), static_cast<std::size_t>(mesh.num_nodes()));
    const int bx = (5 + 1 + factor - 1) / factor;
    const int by = (4 + 1 + factor - 1) / factor;
    const int bz = (3 + 1 + factor - 1) / factor;
    const int nagg = bx * by * bz;
    std::vector<int> count(static_cast<std::size_t>(nagg), 0);
    for (const int c : agg) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, nagg);
      ++count[static_cast<std::size_t>(c)];
    }
    for (int c = 0; c < nagg; ++c) {
      EXPECT_GT(count[static_cast<std::size_t>(c)], 0) << "aggregate " << c;
      EXPECT_LE(count[static_cast<std::size_t>(c)], factor * factor * factor);
    }
    // numbering-robust: the aggregate is a function of the node's lattice
    // position alone, so nodes of one aggregate stay within one block
    // extent of each other per axis
    const double d[3] = {1.0 / 5, 1.0 / 4, 1.0 / 3};
    std::vector<std::array<double, 6>> box(
        static_cast<std::size_t>(nagg),
        {1e30, -1e30, 1e30, -1e30, 1e30, -1e30});
    for (int i = 0; i < mesh.num_nodes(); ++i) {
      const auto p = mesh.node(i);
      auto& bb = box[static_cast<std::size_t>(agg[
          static_cast<std::size_t>(i)])];
      for (int ax = 0; ax < 3; ++ax) {
        bb[2 * ax] = std::min(bb[2 * ax], p[ax]);
        bb[2 * ax + 1] = std::max(bb[2 * ax + 1], p[ax]);
      }
    }
    for (int c = 0; c < nagg; ++c) {
      const auto& bb = box[static_cast<std::size_t>(c)];
      for (int ax = 0; ax < 3; ++ax) {
        // factor−1 lattice spacings + 2 × the max distortion offset
        EXPECT_LE(bb[2 * ax + 1] - bb[2 * ax],
                  (factor - 1 + 2 * 0.3) * d[ax] + 1e-12)
            << "aggregate " << c << " axis " << ax;
      }
    }
  }
  const fem::Mesh mesh(fem::MeshConfig{.nx = 2, .ny = 2, .nz = 2});
  EXPECT_THROW(fem::structured_aggregates(mesh, 0), std::invalid_argument);
}

TEST(PrecondLadder, MalformedAggregatesAndWrongSolversRejectLoudly) {
  const fem::Mesh mesh(fem::MeshConfig{.nx = 3, .ny = 3, .nz = 3});
  const CsrMatrix a = pinned_laplacian(mesh);
  const int n = a.rows();
  const std::vector<double> b(static_cast<std::size_t>(n), 1.0);

  // wrong-size aggregate map
  {
    SolveOptions opts = rung_options(PrecondKind::kDeflate, mesh);
    opts.precond.aggregates.resize(static_cast<std::size_t>(n) - 1);
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    EXPECT_THROW((void)solver::vcg(vpu, a, b, x, opts, 16),
                 std::invalid_argument);
  }
  // empty aggregate (id 5 used, 4 skipped)
  {
    SolveOptions opts = rung_options(PrecondKind::kDeflate, mesh);
    opts.precond.aggregates.assign(static_cast<std::size_t>(n), 0);
    opts.precond.aggregates[1] = 5;
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    EXPECT_THROW((void)solver::vcg(vpu, a, b, x, opts, 16),
                 std::invalid_argument);
  }
  // negative aggregate id
  {
    SolveOptions opts = rung_options(PrecondKind::kDeflate, mesh);
    opts.precond.aggregates[0] = -1;
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    EXPECT_THROW((void)solver::vcg(vpu, a, b, x, opts, 16),
                 std::invalid_argument);
  }
  // non-Jacobi rungs are vcg-only: the nonsymmetric solvers and the host
  // cg reject them instead of silently solving unpreconditioned
  {
    SolveOptions opts = rung_options(PrecondKind::kCheby, mesh);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    EXPECT_THROW((void)cg(a, b, x, opts), std::invalid_argument);
    EXPECT_THROW((void)bicgstab(a, b, x, opts), std::invalid_argument);
    sim::Vpu vpu(platforms::riscv_vec());
    EXPECT_THROW((void)solver::vbicgstab(vpu, a, b, x, opts, 16),
                 std::invalid_argument);
    std::vector<double> X(static_cast<std::size_t>(2 * n), 0.0);
    std::vector<double> B(static_cast<std::size_t>(2 * n), 1.0);
    EXPECT_THROW((void)solver::vbicgstab_multi(vpu, a, B, X, 2, opts, 16),
                 std::invalid_argument);
  }
}

TEST(PrecondLadder, RcmComposedDeflationSolvesTheSameSystem) {
  // Under --rcm the solve runs in permuted order; the TimeLoop composes
  // the aggregates with the permutation.  Both runs must converge with
  // zero failures and produce fields agreeing to solver tolerance.
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 4, .ny = 4, .nz = 4, .shuffle_nodes = true};
  const fem::Mesh mesh(s.mesh);
  std::vector<double> plain;
  std::vector<double> rcm;
  int plain_iters = 0;
  int rcm_iters = 0;
  for (const bool renumber : {false, true}) {
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 2;
    cfg.vector_size = 32;
    cfg.precond = PrecondKind::kDeflate;
    cfg.rcm_renumber = renumber;
    miniapp::TimeLoop loop(mesh, s, cfg);
    sim::Vpu vpu(platforms::riscv_vec());
    const auto res = loop.run(vpu);
    EXPECT_TRUE(res.all_converged) << (renumber ? "rcm" : "plain");
    int iters = 0;
    for (const auto& st : res.steps) iters += st.pressure.iterations;
    auto unk = loop.state().unknowns();
    std::vector<double> fields(unk.begin(), unk.end());
    (renumber ? rcm : plain) = std::move(fields);
    (renumber ? rcm_iters : plain_iters) = iters;
  }
  ASSERT_EQ(plain.size(), rcm.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(plain[i], rcm[i], 1e-6 * (1.0 + std::abs(plain[i])))
        << "dof " << i;
  }
  // the permuted coarse space is the same space: iteration counts stay
  // within a few reassociation-driven iterations of each other
  EXPECT_NEAR(plain_iters, rcm_iters, 0.25 * plain_iters + 4.0);
}

}  // namespace
