// Integration tests asserting the paper-shape invariants end to end on a
// reduced mesh (960 elements, divisible by 16/32/48/240 for clean sweeps).
// These are the claims of §4/§5 at small scale; the bench binaries
// reproduce them at full scale.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "trace/vehave_trace.h"

namespace {

using vecfd::core::Experiment;
using vecfd::core::Measurement;
using vecfd::miniapp::MiniApp;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::OptLevel;
using vecfd::platforms::riscv_vec;
using vecfd::platforms::riscv_vec_scalar;

struct Fixture {
  // 8 x 10 x 12 = 960 elements
  Fixture() : mesh({.nx = 8, .ny = 10, .nz = 12}), state(mesh) {}
  vecfd::fem::Mesh mesh;
  vecfd::fem::State state;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

MiniAppConfig cfg_of(OptLevel opt, int vs) {
  MiniAppConfig c;
  c.opt = opt;
  c.vector_size = vs;
  return c;
}

TEST(PaperShape, ScalarHotPhasesDominate) {
  // Table 3: phases 6, 7, 3, 4 account for ~90% of scalar cycles and
  // phases 1 + 2 only a few percent.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const Measurement m =
      ex.run(riscv_vec_scalar(), cfg_of(OptLevel::kScalar, 48));
  const double top4 =
      m.phase_share(3) + m.phase_share(4) + m.phase_share(6) +
      m.phase_share(7);
  EXPECT_GT(top4, 0.80);
  EXPECT_LT(top4, 0.97);
  EXPECT_LT(m.phase_share(1) + m.phase_share(2), 0.10);
  // phase 6 is the most expensive phase
  for (int p = 1; p <= 8; ++p) {
    if (p == 6) continue;
    EXPECT_GE(m.phase_share(6), m.phase_share(p)) << "phase " << p;
  }
}

TEST(PaperShape, VanillaAutovecSpeedsUpSeveralFold) {
  // Figure 11: original auto-vectorization achieves 3–6x vs scalar.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const double scalar =
      ex.run(riscv_vec_scalar(), cfg_of(OptLevel::kScalar, 48)).total_cycles;
  const double vanilla =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, 240)).total_cycles;
  const double speedup = scalar / vanilla;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 8.0);
}

TEST(PaperShape, UnvectorizedPhasesGrowAfterVectorization) {
  // Figure 4: phases 1 + 2 go from a few percent (scalar) to a large share
  // (vanilla vectorized).
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const Measurement s =
      ex.run(riscv_vec_scalar(), cfg_of(OptLevel::kScalar, 240));
  const Measurement v =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, 240));
  const double share_s = s.phase_share(1) + s.phase_share(2);
  const double share_v = v.phase_share(1) + v.phase_share(2);
  EXPECT_GT(share_v, 3.0 * share_s);
  EXPECT_GT(share_v, 0.15);
}

TEST(PaperShape, Vec2IsCounterProductiveOnPhase2) {
  // Figure 5: enabling vectorization of phase 2 with the dof loop innermost
  // degrades phase-2 performance.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  for (int vs : {48, 240}) {
    const double vanilla =
        ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, vs)).phase_cycles(2);
    const double vec2 =
        ex.run(riscv_vec(), cfg_of(OptLevel::kVec2, vs)).phase_cycles(2);
    EXPECT_GT(vec2, vanilla) << "vs=" << vs;
  }
}

TEST(PaperShape, Vec2AvlIsFour) {
  // the Vehave diagnosis: phase-2 AVL ≈ 4 under VEC2
  Fixture& f = fixture();
  MiniApp app(f.mesh, f.state, cfg_of(OptLevel::kVec2, 48));
  vecfd::sim::Vpu vpu(riscv_vec());
  vecfd::trace::VehaveTrace tr(1u << 22);
  vpu.set_observer(&tr);
  (void)app.run(vpu);
  EXPECT_GT(tr.avl(2), 3.0);
  EXPECT_LT(tr.avl(2), 4.5);
}

TEST(PaperShape, IVec2SpeedsUpPhase2Severalfold) {
  // Figure 6: interchanged phase 2 reaches ~7x vs the original at high VS.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const double vanilla =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, 240)).phase_cycles(2);
  const double ivec2 =
      ex.run(riscv_vec(), cfg_of(OptLevel::kIVec2, 240)).phase_cycles(2);
  const double speedup = vanilla / ivec2;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 12.0);
}

TEST(PaperShape, IVec2AvlEqualsVectorSize) {
  Fixture& f = fixture();
  MiniApp app(f.mesh, f.state, cfg_of(OptLevel::kIVec2, 240));
  vecfd::sim::Vpu vpu(riscv_vec());
  vecfd::trace::VehaveTrace tr(1u << 22);
  vpu.set_observer(&tr);
  (void)app.run(vpu);
  EXPECT_NEAR(tr.avl(2), 240.0, 12.0);  // index loads included
}

TEST(PaperShape, Vec1ImprovesPhase1Modestly) {
  // Figure 7: fission yields 1.03–2x on phase 1 (work A stays scalar).
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  for (int vs : {48, 240}) {
    const double fused =
        ex.run(riscv_vec(), cfg_of(OptLevel::kIVec2, vs)).phase_cycles(1);
    const double split =
        ex.run(riscv_vec(), cfg_of(OptLevel::kVec1, vs)).phase_cycles(1);
    const double speedup = fused / split;
    EXPECT_GT(speedup, 1.02) << vs;
    EXPECT_LT(speedup, 3.0) << vs;
  }
}

TEST(PaperShape, OccupancyTracksVectorSize) {
  // Figure 10: Ev ≈ min(VS, vlmax)/vlmax on the vectorized phases.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  for (int vs : {48, 96, 240}) {
    const Measurement m = ex.run(riscv_vec(), cfg_of(OptLevel::kVec1, vs));
    for (int p : {3, 4, 6, 7}) {
      EXPECT_NEAR(m.phase_metrics[p].ev, vs / 256.0, 0.02)
          << "phase " << p << " vs=" << vs;
    }
  }
}

TEST(PaperShape, MemoryInstructionsDominateVectorMix) {
  // §4: "almost 70% of vector instructions are memory type"
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const Measurement m = ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, 240));
  const auto mix = vecfd::metrics::instruction_mix(m.total);
  EXPECT_GT(mix.memory_fraction(), 0.40);
  EXPECT_LT(mix.memory_fraction(), 0.80);
}

TEST(PaperShape, CumulativeOptimizationOrdering) {
  // Figure 11 at a fixed VECTOR_SIZE: scalar slowest; VEC2 worse than
  // vanilla; IVEC2 better than vanilla; VEC1 best.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  const int vs = 240;
  const double scalar =
      ex.run(riscv_vec_scalar(), cfg_of(OptLevel::kScalar, vs)).total_cycles;
  const double vanilla =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVanilla, vs)).total_cycles;
  const double vec2 =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVec2, vs)).total_cycles;
  const double ivec2 =
      ex.run(riscv_vec(), cfg_of(OptLevel::kIVec2, vs)).total_cycles;
  const double vec1 =
      ex.run(riscv_vec(), cfg_of(OptLevel::kVec1, vs)).total_cycles;
  EXPECT_GT(scalar, vanilla);
  EXPECT_GT(vec2, vanilla);   // VEC2 regression
  EXPECT_LT(ivec2, vanilla);  // IVEC2 win
  EXPECT_LE(vec1, ivec2);     // VEC1 on top
  const double final_speedup = scalar / vec1;
  EXPECT_GT(final_speedup, 4.0);
  // can exceed the 8x lane count on this small mesh: the scalar baseline
  // pays full cache-miss exposure while vector streams overlap fills
  EXPECT_LT(final_speedup, 12.0);
}

TEST(PaperShape, PortabilityNoRegressionOnOtherPlatforms) {
  // Figure 12: the optimizations must not hurt on SX-Aurora or MN4.
  Fixture& f = fixture();
  const Experiment ex(f.mesh, f.state);
  for (const auto& machine :
       {vecfd::platforms::sx_aurora(), vecfd::platforms::mn4_avx512()}) {
    const double vanilla =
        ex.run(machine, cfg_of(OptLevel::kVanilla, 240)).total_cycles;
    const double opt =
        ex.run(machine, cfg_of(OptLevel::kVec1, 240)).total_cycles;
    EXPECT_LE(opt, vanilla * 1.01) << machine.name;
  }
}

}  // namespace
