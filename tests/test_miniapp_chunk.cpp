// Tests for the SoA chunk workspace: layout contracts (ivect fastest,
// plane strides), lifecycle, and the VEC2-critical dof-major adjacency.
#include <gtest/gtest.h>

#include "fem/element.h"
#include "miniapp/chunk.h"

namespace {

using vecfd::fem::kDim;
using vecfd::fem::kDofs;
using vecfd::fem::kGauss;
using vecfd::fem::kNodes;
using vecfd::miniapp::ElementChunk;

TEST(Chunk, PlaneStridesAreIvectFastest) {
  ElementChunk ch(32, false);
  // consecutive ivect entries are adjacent (unit-stride vector loads)
  EXPECT_EQ(ch.elcod(1, 3) + 1, ch.elcod(1, 3) + 1);
  EXPECT_EQ(ch.elcod(0, 1) - ch.elcod(0, 0), 32);
  EXPECT_EQ(ch.elcod(1, 0) - ch.elcod(0, 0), 32 * kNodes);
  EXPECT_EQ(ch.gpcar(0, 0, 1) - ch.gpcar(0, 0, 0), 32);
  EXPECT_EQ(ch.gpcar(0, 1, 0) - ch.gpcar(0, 0, 0), 32 * kNodes);
  EXPECT_EQ(ch.gpcar(1, 0, 0) - ch.gpcar(0, 0, 0), 32 * kNodes * kDim);
}

TEST(Chunk, DofMajorUnknownLayoutForVec2) {
  // VEC2's vl=4 strided store must land on the four dof planes of a node:
  // plane stride = kNodes * vs between consecutive dofs of the same node.
  ElementChunk ch(16, false);
  const std::ptrdiff_t plane = ch.elunk(1, 5) - ch.elunk(0, 5);
  EXPECT_EQ(plane, 16 * kNodes);
  // and elpre is exactly the fourth dof plane
  EXPECT_EQ(ch.elpre(2), ch.elunk(kDim, 2));
  // elvel aliases the velocity dof planes
  EXPECT_EQ(ch.elvel(2, 7), ch.elunk(2, 7));
}

TEST(Chunk, ResetRetargetsWithoutReallocation) {
  ElementChunk ch(64, false);
  const double* base = ch.elcod(0, 0);
  ch.reset(128, 64);
  EXPECT_EQ(ch.first(), 128);
  EXPECT_EQ(ch.count(), 64);
  EXPECT_EQ(ch.elcod(0, 0), base);  // buffers reused
  ch.reset(192, 10);                // tail chunk
  EXPECT_EQ(ch.count(), 10);
}

TEST(Chunk, ResetValidation) {
  ElementChunk ch(16, false);
  EXPECT_THROW(ch.reset(0, 0), std::invalid_argument);
  EXPECT_THROW(ch.reset(0, 17), std::invalid_argument);
  EXPECT_NO_THROW(ch.reset(0, 16));
}

TEST(Chunk, ConstructionValidation) {
  EXPECT_THROW(ElementChunk(0, false), std::invalid_argument);
  EXPECT_THROW(ElementChunk(-5, false), std::invalid_argument);
}

TEST(Chunk, MatrixArraysOnlyWhenRequested) {
  ElementChunk without(8, false);
  ElementChunk with(8, true);
  EXPECT_LT(without.footprint_bytes(), with.footprint_bytes());
  // the semi-implicit extras: mass + block, each kNodes² · vs doubles
  const std::size_t extra =
      2u * kNodes * kNodes * 8u * sizeof(double);
  EXPECT_EQ(with.footprint_bytes() - without.footprint_bytes(), extra);
}

TEST(Chunk, FootprintScalesWithVectorSize) {
  // the Figure 9 / Table 6 mechanism: working set ∝ VECTOR_SIZE
  ElementChunk small(16, false);
  ElementChunk big(256, false);
  EXPECT_NEAR(double(big.footprint_bytes()) / small.footprint_bytes(), 16.0,
              0.01);
  // per-element footprint is a few KB (order: ~700 doubles)
  const double per_elem = double(big.footprint_bytes()) / 256;
  EXPECT_GT(per_elem, 2000.0);
  EXPECT_LT(per_elem, 10000.0);
}

TEST(Chunk, DistinctPlanesDoNotAlias) {
  ElementChunk ch(8, true);
  ch.elcod(0, 0)[0] = 1.0;
  ch.elcod(2, 7)[7] = 2.0;
  ch.gpcar(7, 2, 7)[7] = 3.0;
  ch.conv(7, 7)[7] = 4.0;
  ch.visc(0, 0)[0] = 5.0;
  ch.mass(3, 3)[3] = 6.0;
  ch.block(3, 3)[3] = 7.0;
  ch.elrhs(2, 7)[7] = 8.0;
  EXPECT_EQ(ch.elcod(0, 0)[0], 1.0);
  EXPECT_EQ(ch.elcod(2, 7)[7], 2.0);
  EXPECT_EQ(ch.gpcar(7, 2, 7)[7], 3.0);
  EXPECT_EQ(ch.conv(7, 7)[7], 4.0);
  EXPECT_EQ(ch.visc(0, 0)[0], 5.0);
  EXPECT_EQ(ch.mass(3, 3)[3], 6.0);
  EXPECT_EQ(ch.block(3, 3)[3], 7.0);
  EXPECT_EQ(ch.elrhs(2, 7)[7], 8.0);
}

TEST(Chunk, IntArraysPresent) {
  ElementChunk ch(8, false);
  ch.lnods(3)[2] = 42;
  ch.valid()[2] = 1;
  ch.etype()[2] = 0;
  EXPECT_EQ(ch.lnods(3)[2], 42);
  EXPECT_EQ(ch.valid()[2], 1);
  EXPECT_EQ(ch.etype()[2], 0);
}

}  // namespace
