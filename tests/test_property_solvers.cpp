// Property tests for the instrumented Krylov solvers: randomized SPD and
// nonsymmetric CSR systems run through vcg/vbicgstab on all four platform
// configurations (including the scalar-fallback machine) against the host
// cg/bicgstab, asserting the SolveReport residual contract of krylov.h on
// EVERY exit path — convergence, iteration-budget exhaustion and Krylov
// breakdowns: `residual` always equals the true relative residual
// ‖b − A·x‖₂/‖b‖₂ of the returned x, `history` is never left empty after
// work was done, and `converged` agrees with the tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "platforms/platforms.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::CsrMatrix;
using solver::SolveOptions;
using solver::SolveReport;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

/// Random sparse matrix with a dominant diagonal: ~`extra` off-diagonal
/// entries per row, symmetric (SPD) or general (nonsingular either way).
CsrMatrix random_system(int n, int extra, bool spd, std::mt19937& rng) {
  std::uniform_int_distribution<int> col(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, double>>> entries(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < extra; ++k) {
      const int c = col(rng);
      if (c == r) continue;
      const double v = val(rng);
      entries[static_cast<std::size_t>(r)].push_back({c, v});
      adj[static_cast<std::size_t>(r)].push_back(c);
      if (spd) {
        entries[static_cast<std::size_t>(c)].push_back({r, v});
        adj[static_cast<std::size_t>(c)].push_back(r);
      }
    }
  }
  CsrMatrix a(adj);
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    for (const auto& [c, v] : entries[static_cast<std::size_t>(r)]) {
      a.add(r, c, v);
      rowsum[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  for (int r = 0; r < n; ++r) {
    // strict diagonal dominance keeps the system nonsingular (and SPD in
    // the symmetric case); the +0.5 margin keeps Jacobi well conditioned
    a.add(r, r, rowsum[static_cast<std::size_t>(r)] + 0.5 + 0.1 * (r % 7));
  }
  return a;
}

std::vector<double> random_vector(int n, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = u(rng);
  return v;
}

double true_relative_residual(const CsrMatrix& a,
                              const std::vector<double>& b,
                              const std::vector<double>& x) {
  std::vector<double> ax(b.size());
  a.spmv(x, ax);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += (b[i] - ax[i]) * (b[i] - ax[i]);
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// The krylov.h residual contract, checked against a recomputed residual,
/// plus the length invariant: history[0] initial + one entry per counted
/// iteration, so history.size() == iterations + 1 on EVERY exit path.
void expect_contract(const SolveReport& rep, const CsrMatrix& a,
                     const std::vector<double>& b,
                     const std::vector<double>& x, const SolveOptions& opts,
                     const std::string& what) {
  const double truth = true_relative_residual(a, b, x);
  // the report's residual is itself a float computation; compare loosely
  EXPECT_NEAR(rep.residual, truth, 1e-8 * (1.0 + truth)) << what;
  if (rep.converged) {
    EXPECT_LT(rep.residual, opts.rel_tolerance) << what;
  }
  ASSERT_EQ(rep.history.size(),
            static_cast<std::size_t>(rep.iterations) + 1u)
      << what;
  EXPECT_DOUBLE_EQ(rep.history.back(), rep.residual) << what;
}

TEST(PropertySolvers, SpdSystemsOnAllPlatforms) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 40 + 17 * trial;  // odd sizes: remainder strips
    const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
    const std::vector<double> b = random_vector(n, rng);
    const SolveOptions opts{
        .max_iterations = 200, .rel_tolerance = 1e-11, .precond = {}};

    std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
    const SolveReport host = solver::cg(a, b, x_host, opts);
    ASSERT_TRUE(host.converged) << "trial " << trial;
    expect_contract(host, a, b, x_host, opts, "host cg");

    for (const auto& m : kMachines) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep = solver::vcg(vpu, a, b, x, opts, 48);
      const std::string what =
          std::string("vcg on ") + m.name + " trial " + std::to_string(trial);
      EXPECT_TRUE(rep.converged) << what;
      expect_contract(rep, a, b, x, opts, what);
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], x_host[i], 1e-7) << what << " entry " << i;
      }
      if (!m.vector_enabled) {
        EXPECT_EQ(vpu.counters().vector_instrs(), 0u) << what;
      }
    }
  }
}

TEST(PropertySolvers, NonsymmetricSystemsOnAllPlatforms) {
  std::mt19937 rng(98765);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 37 + 23 * trial;
    const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
    const std::vector<double> b = random_vector(n, rng);
    const SolveOptions opts{
        .max_iterations = 300, .rel_tolerance = 1e-11, .precond = {}};

    std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
    const SolveReport host = solver::bicgstab(a, b, x_host, opts);
    ASSERT_TRUE(host.converged) << "trial " << trial;
    expect_contract(host, a, b, x_host, opts, "host bicgstab");

    for (const auto& m : kMachines) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep = solver::vbicgstab(vpu, a, b, x, opts, 64);
      const std::string what = std::string("vbicgstab on ") + m.name +
                               " trial " + std::to_string(trial);
      EXPECT_TRUE(rep.converged) << what;
      expect_contract(rep, a, b, x, opts, what);
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], x_host[i], 1e-7) << what << " entry " << i;
      }
    }
  }
}

TEST(PropertySolvers, IterationBudgetExitKeepsResidualTruthful) {
  std::mt19937 rng(555);
  const int n = 64;
  const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
  const std::vector<double> b = random_vector(n, rng);
  // an impossible tolerance with a tiny budget forces the budget exit
  const SolveOptions opts{
      .max_iterations = 2, .rel_tolerance = 1e-30, .precond = {}};
  for (const auto& m : kMachines) {
    for (const bool use_cg : {true, false}) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep =
          use_cg ? solver::vcg(vpu, a, b, x, opts, 32)
                 : solver::vbicgstab(vpu, a, b, x, opts, 32);
      const std::string what = std::string(use_cg ? "vcg" : "vbicgstab") +
                               " budget exit on " + m.name;
      EXPECT_FALSE(rep.converged) << what;
      EXPECT_EQ(rep.iterations, 2) << what;
      expect_contract(rep, a, b, x, opts, what);
      EXPECT_GT(rep.residual, 0.0) << what;
    }
  }
}

TEST(PropertySolvers, BreakdownExitKeepsResidualTruthful) {
  // diag(1, -1): CG's p·Ap vanishes on the first iteration.  The reported
  // residual must be the true one, never the misleading 0/false pair.
  CsrMatrix a(std::vector<std::vector<int>>(2));
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  const std::vector<double> b{1.0, 1.0};
  const SolveOptions opts;
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x(2, 0.0);
    const SolveReport rep = solver::vcg(vpu, a, b, x, opts, 2);
    const std::string what = std::string("vcg breakdown on ") + m.name;
    EXPECT_FALSE(rep.converged) << what;
    ASSERT_FALSE(rep.history.empty()) << what;
    expect_contract(rep, a, b, x, opts, what);
  }
}

TEST(PropertySolvers, HistoryLengthInvariantOnEveryExitPath) {
  // One report per exit class; the invariant history.size() == iterations+1
  // (and back() == residual) must hold on all of them, for host and Vpu.
  std::mt19937 rng(777);
  const int n = 48;
  const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
  const std::vector<double> b = random_vector(n, rng);

  auto expect_invariant = [](const SolveReport& rep, const std::string& what) {
    ASSERT_EQ(rep.history.size(),
              static_cast<std::size_t>(rep.iterations) + 1u)
        << what;
    EXPECT_DOUBLE_EQ(rep.history.back(), rep.residual) << what;
  };

  // convergence exit
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0);
  expect_invariant(solver::cg(a, b, x1, {}), "cg converged");
  // budget exit
  std::vector<double> x2(static_cast<std::size_t>(n), 0.0);
  expect_invariant(
      solver::cg(a, b, x2,
                 {.max_iterations = 1, .rel_tolerance = 1e-30, .precond = {}}),
      "cg budget");
  // zero-RHS exit
  std::vector<double> x3 = random_vector(n, rng);
  const std::vector<double> zero(static_cast<std::size_t>(n), 0.0);
  expect_invariant(solver::bicgstab(a, zero, x3, {}), "bicgstab zero rhs");
  // already-converged initial guess
  std::vector<double> xref = random_vector(n, rng);
  std::vector<double> bx(static_cast<std::size_t>(n));
  a.spmv(xref, bx);
  std::vector<double> x4 = xref;
  const SolveReport exact = solver::bicgstab(a, bx, x4, {});
  EXPECT_EQ(exact.iterations, 0);
  expect_invariant(exact, "bicgstab exact guess");

  // breakdown exit (cg: p·Ap = 0 on diag(1,-1)), host and every platform
  CsrMatrix ind(std::vector<std::vector<int>>(2));
  ind.add(0, 0, 1.0);
  ind.add(1, 1, -1.0);
  const std::vector<double> b2{1.0, 1.0};
  std::vector<double> x5(2, 0.0);
  const SolveReport broke = solver::cg(ind, b2, x5, {});
  EXPECT_FALSE(broke.converged);
  EXPECT_EQ(broke.iterations, 1);  // the aborted iteration is counted
  expect_invariant(broke, "cg breakdown");
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x(2, 0.0);
    expect_invariant(solver::vcg(vpu, ind, b2, x, {}, 2),
                     std::string("vcg breakdown on ") + m.name);
  }
}

TEST(PropertySolvers, ScaledNormHandlesExtremeMagnitudes) {
  // ‖a‖₂ via sqrt(dot(a,a)) overflows to inf for entries ≳ 1e154 and
  // underflows to 0 for entries ≲ 1e-162 — either corrupts every relative
  // residual computed from it.  The scaled norm must return the
  // analytically known value on host and on all four platforms.
  const int n = 37;
  for (const double mag : {1e160, 1e-160, 1e300, 1e-300, 1.0}) {
    std::vector<double> v(static_cast<std::size_t>(n), mag);
    v[3] = -mag;  // sign mix
    const double expect = mag * std::sqrt(static_cast<double>(n));
    EXPECT_NEAR(solver::norm2(v) / expect, 1.0, 1e-12) << "host mag " << mag;
    for (const auto& m : kMachines) {
      sim::Vpu vpu(m);
      const double got = solver::vnorm2(vpu, v, 16);
      EXPECT_NEAR(got / expect, 1.0, 1e-12) << m.name << " mag " << mag;
    }
  }
  // exact zero stays exact
  const std::vector<double> z(8, 0.0);
  EXPECT_DOUBLE_EQ(solver::norm2(z), 0.0);
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    EXPECT_DOUBLE_EQ(solver::vnorm2(vpu, z, 4), 0.0) << m.name;
  }
  // an inf entry yields inf (not NaN through inf/inf scaling), NaN
  // propagates instead of collapsing to a clean 0
  std::vector<double> vinf(8, 1.0);
  vinf[5] = std::numeric_limits<double>::infinity();
  std::vector<double> vnan(8, 1e200);  // scaled path with a poisoned entry
  vnan[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isinf(solver::norm2(vinf)));
  EXPECT_TRUE(std::isnan(solver::norm2(vnan)));
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    EXPECT_TRUE(std::isinf(solver::vnorm2(vpu, vinf, 4))) << m.name;
    EXPECT_TRUE(std::isnan(solver::vnorm2(vpu, vnan, 4))) << m.name;
  }
}

TEST(PropertySolvers, TinyRhsNoLongerMisreportsConvergence) {
  // Regression for the norm underflow: with ‖b‖∞ ~ 1e-200 the unscaled
  // bnorm = sqrt(dot(b,b)) was exactly 0, so the solvers took the zero-RHS
  // exit and reported x = 0 as "converged, residual 0" — while the true
  // relative residual of x = 0 against this nonzero b is 1.  With the
  // scaled norm the report is truthful on every platform: the underflowing
  // dot products break the recurrence immediately, and the breakdown exit
  // carries the real residual of the returned iterate.
  const int n = 16;
  CsrMatrix a(std::vector<std::vector<int>>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) a.add(i, i, 2.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1e-200);
  b[3] = -1e-200;
  const SolveOptions opts;

  std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
  const SolveReport host = solver::cg(a, b, x_host, opts);
  EXPECT_FALSE(host.converged);
  EXPECT_NEAR(host.residual, 1.0, 1e-12);
  ASSERT_EQ(host.history.size(),
            static_cast<std::size_t>(host.iterations) + 1u);

  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const SolveReport rep = solver::vcg(vpu, a, b, x, opts, 8);
    const std::string what = std::string("tiny-b vcg on ") + m.name;
    EXPECT_FALSE(rep.converged) << what;
    EXPECT_NEAR(rep.residual, 1.0, 1e-12) << what;
    ASSERT_EQ(rep.history.size(),
              static_cast<std::size_t>(rep.iterations) + 1u)
        << what;
  }
}

TEST(PropertySolvers, MultiRhsColumnsHonourTheContractOnAllPlatforms) {
  // k independent columns through the blocked solver: every column's
  // report must satisfy the same contract as a standalone solve, on every
  // exit path the columns individually take.
  std::mt19937 rng(2025);
  const int n = 45;
  const int k = 3;
  const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
  std::vector<double> B(static_cast<std::size_t>(n) * k);
  for (double& v : B) {
    v = std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
  }
  const SolveOptions opts{
      .max_iterations = 300, .rel_tolerance = 1e-11, .precond = {}};

  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> X(static_cast<std::size_t>(n) * k, 0.0);
    const auto reps = solver::vbicgstab_multi(vpu, a, B, X, k, opts, 48);
    ASSERT_EQ(reps.size(), static_cast<std::size_t>(k));
    for (int d = 0; d < k; ++d) {
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const std::vector<double> bd(B.begin() + static_cast<std::ptrdiff_t>(off),
                                   B.begin() + static_cast<std::ptrdiff_t>(off + n));
      const std::vector<double> xd(X.begin() + static_cast<std::ptrdiff_t>(off),
                                   X.begin() + static_cast<std::ptrdiff_t>(off + n));
      const std::string what = std::string("multi col ") + std::to_string(d) +
                               " on " + m.name;
      EXPECT_TRUE(reps[static_cast<std::size_t>(d)].converged) << what;
      expect_contract(reps[static_cast<std::size_t>(d)], a, bd, xd, opts,
                      what);
    }
    if (!m.vector_enabled) {
      EXPECT_EQ(vpu.counters().vector_instrs(), 0u) << m.name;
    }
  }
}

TEST(PropertySolvers, ZeroRhsConvergesToZeroSolutionEverywhere) {
  std::mt19937 rng(31);
  const int n = 33;
  const CsrMatrix a = random_system(n, 2, /*spd=*/true, rng);
  const std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x = random_vector(n, rng);  // nonzero initial guess
    const SolveReport rep = solver::vcg(vpu, a, b, x, {}, 16);
    EXPECT_TRUE(rep.converged) << m.name;
    EXPECT_EQ(rep.iterations, 0) << m.name;
    for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0) << m.name;
  }
}

}  // namespace
