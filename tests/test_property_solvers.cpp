// Property tests for the instrumented Krylov solvers: randomized SPD and
// nonsymmetric CSR systems run through vcg/vbicgstab on all four platform
// configurations (including the scalar-fallback machine) against the host
// cg/bicgstab, asserting the SolveReport residual contract of krylov.h on
// EVERY exit path — convergence, iteration-budget exhaustion and Krylov
// breakdowns: `residual` always equals the true relative residual
// ‖b − A·x‖₂/‖b‖₂ of the returned x, `history` is never left empty after
// work was done, and `converged` agrees with the tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "platforms/platforms.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;
using solver::CsrMatrix;
using solver::SolveOptions;
using solver::SolveReport;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

/// Random sparse matrix with a dominant diagonal: ~`extra` off-diagonal
/// entries per row, symmetric (SPD) or general (nonsingular either way).
CsrMatrix random_system(int n, int extra, bool spd, std::mt19937& rng) {
  std::uniform_int_distribution<int> col(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, double>>> entries(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < extra; ++k) {
      const int c = col(rng);
      if (c == r) continue;
      const double v = val(rng);
      entries[static_cast<std::size_t>(r)].push_back({c, v});
      adj[static_cast<std::size_t>(r)].push_back(c);
      if (spd) {
        entries[static_cast<std::size_t>(c)].push_back({r, v});
        adj[static_cast<std::size_t>(c)].push_back(r);
      }
    }
  }
  CsrMatrix a(adj);
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    for (const auto& [c, v] : entries[static_cast<std::size_t>(r)]) {
      a.add(r, c, v);
      rowsum[static_cast<std::size_t>(r)] += std::abs(v);
    }
  }
  for (int r = 0; r < n; ++r) {
    // strict diagonal dominance keeps the system nonsingular (and SPD in
    // the symmetric case); the +0.5 margin keeps Jacobi well conditioned
    a.add(r, r, rowsum[static_cast<std::size_t>(r)] + 0.5 + 0.1 * (r % 7));
  }
  return a;
}

std::vector<double> random_vector(int n, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = u(rng);
  return v;
}

double true_relative_residual(const CsrMatrix& a,
                              const std::vector<double>& b,
                              const std::vector<double>& x) {
  std::vector<double> ax(b.size());
  a.spmv(x, ax);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += (b[i] - ax[i]) * (b[i] - ax[i]);
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// The krylov.h residual contract, checked against a recomputed residual.
void expect_contract(const SolveReport& rep, const CsrMatrix& a,
                     const std::vector<double>& b,
                     const std::vector<double>& x, const SolveOptions& opts,
                     const std::string& what) {
  const double truth = true_relative_residual(a, b, x);
  // the report's residual is itself a float computation; compare loosely
  EXPECT_NEAR(rep.residual, truth, 1e-8 * (1.0 + truth)) << what;
  if (rep.converged) {
    EXPECT_LT(rep.residual, opts.rel_tolerance) << what;
  }
  if (rep.iterations > 0) {
    ASSERT_FALSE(rep.history.empty()) << what;
    EXPECT_DOUBLE_EQ(rep.history.back(), rep.residual) << what;
  }
}

TEST(PropertySolvers, SpdSystemsOnAllPlatforms) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 40 + 17 * trial;  // odd sizes: remainder strips
    const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
    const std::vector<double> b = random_vector(n, rng);
    const SolveOptions opts{.max_iterations = 200, .rel_tolerance = 1e-11};

    std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
    const SolveReport host = solver::cg(a, b, x_host, opts);
    ASSERT_TRUE(host.converged) << "trial " << trial;
    expect_contract(host, a, b, x_host, opts, "host cg");

    for (const auto& m : kMachines) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep = solver::vcg(vpu, a, b, x, opts, 48);
      const std::string what =
          std::string("vcg on ") + m.name + " trial " + std::to_string(trial);
      EXPECT_TRUE(rep.converged) << what;
      expect_contract(rep, a, b, x, opts, what);
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], x_host[i], 1e-7) << what << " entry " << i;
      }
      if (!m.vector_enabled) {
        EXPECT_EQ(vpu.counters().vector_instrs(), 0u) << what;
      }
    }
  }
}

TEST(PropertySolvers, NonsymmetricSystemsOnAllPlatforms) {
  std::mt19937 rng(98765);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 37 + 23 * trial;
    const CsrMatrix a = random_system(n, 4, /*spd=*/false, rng);
    const std::vector<double> b = random_vector(n, rng);
    const SolveOptions opts{.max_iterations = 300, .rel_tolerance = 1e-11};

    std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
    const SolveReport host = solver::bicgstab(a, b, x_host, opts);
    ASSERT_TRUE(host.converged) << "trial " << trial;
    expect_contract(host, a, b, x_host, opts, "host bicgstab");

    for (const auto& m : kMachines) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep = solver::vbicgstab(vpu, a, b, x, opts, 64);
      const std::string what = std::string("vbicgstab on ") + m.name +
                               " trial " + std::to_string(trial);
      EXPECT_TRUE(rep.converged) << what;
      expect_contract(rep, a, b, x, opts, what);
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], x_host[i], 1e-7) << what << " entry " << i;
      }
    }
  }
}

TEST(PropertySolvers, IterationBudgetExitKeepsResidualTruthful) {
  std::mt19937 rng(555);
  const int n = 64;
  const CsrMatrix a = random_system(n, 3, /*spd=*/true, rng);
  const std::vector<double> b = random_vector(n, rng);
  // an impossible tolerance with a tiny budget forces the budget exit
  const SolveOptions opts{.max_iterations = 2, .rel_tolerance = 1e-30};
  for (const auto& m : kMachines) {
    for (const bool use_cg : {true, false}) {
      sim::Vpu vpu(m);
      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      const SolveReport rep =
          use_cg ? solver::vcg(vpu, a, b, x, opts, 32)
                 : solver::vbicgstab(vpu, a, b, x, opts, 32);
      const std::string what = std::string(use_cg ? "vcg" : "vbicgstab") +
                               " budget exit on " + m.name;
      EXPECT_FALSE(rep.converged) << what;
      EXPECT_EQ(rep.iterations, 2) << what;
      expect_contract(rep, a, b, x, opts, what);
      EXPECT_GT(rep.residual, 0.0) << what;
    }
  }
}

TEST(PropertySolvers, BreakdownExitKeepsResidualTruthful) {
  // diag(1, -1): CG's p·Ap vanishes on the first iteration.  The reported
  // residual must be the true one, never the misleading 0/false pair.
  CsrMatrix a(std::vector<std::vector<int>>(2));
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  const std::vector<double> b{1.0, 1.0};
  const SolveOptions opts;
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x(2, 0.0);
    const SolveReport rep = solver::vcg(vpu, a, b, x, opts, 2);
    const std::string what = std::string("vcg breakdown on ") + m.name;
    EXPECT_FALSE(rep.converged) << what;
    ASSERT_FALSE(rep.history.empty()) << what;
    expect_contract(rep, a, b, x, opts, what);
  }
}

TEST(PropertySolvers, ZeroRhsConvergesToZeroSolutionEverywhere) {
  std::mt19937 rng(31);
  const int n = 33;
  const CsrMatrix a = random_system(n, 2, /*spd=*/true, rng);
  const std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (const auto& m : kMachines) {
    sim::Vpu vpu(m);
    std::vector<double> x = random_vector(n, rng);  // nonzero initial guess
    const SolveReport rep = solver::vcg(vpu, a, b, x, {}, 16);
    EXPECT_TRUE(rep.converged) << m.name;
    EXPECT_EQ(rep.iterations, 0) << m.name;
    for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0) << m.name;
  }
}

}  // namespace
