// Stress suite for the core/parallel.h fan-out primitive — written to give
// TSan (and the clang thread-safety analysis over core::Mutex /
// FirstError) contended executions to chew on: oversubscribed pools, a
// shared accumulator, many-threads-throwing races on the FirstError slot,
// and back-to-back pool lifecycles.  The CI tsan job runs this suite with
// the rest of `ctest -LE slow` under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace {

using vecfd::core::FirstError;
using vecfd::core::parallel_for_index;
using vecfd::core::parallel_for_index_collect;

TEST(ParallelStress, OversubscribedPoolCoversEveryIndexExactlyOnce) {
  // More workers than cores and more tasks than workers: each slot must be
  // written exactly once, with no index skipped or claimed twice.
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_index(n, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelStress, SharedAtomicAccumulatorIsExact) {
  const std::size_t n = 50000;
  std::atomic<long long> sum{0};
  parallel_for_index(n, 8, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i) + 1, std::memory_order_relaxed);
  });
  const long long want = static_cast<long long>(n) * (n + 1) / 2;
  EXPECT_EQ(sum.load(), want);
}

TEST(ParallelStress, ManyConcurrentThrowersKeepExactlyOneException) {
  // Every task throws: the FirstError slot is hammered from all workers at
  // once, yet exactly one exception must survive to the spawning thread
  // and the pool must still join cleanly.
  for (int round = 0; round < 20; ++round) {
    try {
      parallel_for_index(256, 8, [&](std::size_t i) {
        throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected the pool to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
    }
  }
}

TEST(ParallelStress, FailureShortCircuitsLaterClaims) {
  // After a worker records a failure, the claim loop drains: far fewer
  // than `count` tasks should run (never more than count, and the pool
  // must not deadlock waiting for abandoned work).
  std::atomic<std::size_t> ran{0};
  try {
    parallel_for_index(100000, 4, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 0) throw std::logic_error("early");
    });
    FAIL() << "expected rethrow";
  } catch (const std::logic_error&) {
  }
  EXPECT_LE(ran.load(), 100000u);
  EXPECT_GE(ran.load(), 1u);
}

TEST(ParallelStress, BackToBackPoolsReuseCleanly) {
  // Pool construction/teardown is per call; rapid lifecycles must not leak
  // state between rounds (each round's accumulator starts from zero).
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    parallel_for_index(64, 8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ParallelStress, FirstErrorRecordRaceKeepsFirstNonNull) {
  // Direct FirstError contention, independent of the pool: concurrent
  // record() calls must leave exactly one stored exception and a set flag.
  FirstError err;
  parallel_for_index(64, 8, [&](std::size_t i) {
    try {
      throw std::runtime_error("r" + std::to_string(i));
    } catch (...) {
      err.record(std::current_exception());
    }
  });
  EXPECT_TRUE(err.failed());
  EXPECT_THROW(err.rethrow_if_set(), std::runtime_error);
}

TEST(ParallelStress, CollectModeRunsEveryIndexDespiteThrows) {
  // The collect-all-errors mode never short-circuits: a throwing index must
  // not stop its siblings (the per-point isolation contract of
  // Campaign::run_points / run_points_ft).
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  const std::vector<std::exception_ptr> errors =
      parallel_for_index_collect(n, 8, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (i % 7 == 0) throw std::runtime_error("e" + std::to_string(i));
      });
  ASSERT_EQ(errors.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    if (i % 7 == 0) {
      ASSERT_NE(errors[i], nullptr) << "index " << i;
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::runtime_error& e) {
        // Each error lands in ITS index's slot, not just any slot.
        EXPECT_EQ(std::string(e.what()), "e" + std::to_string(i));
      }
    } else {
      EXPECT_EQ(errors[i], nullptr) << "index " << i;
    }
  }
}

TEST(ParallelStress, CollectModeSerialAndParallelAgree) {
  const std::size_t n = 512;
  const auto body = [](std::size_t i) {
    if (i % 3 == 1) throw std::logic_error("x");
  };
  const auto serial = parallel_for_index_collect(n, 1, body);
  const auto parallel = parallel_for_index_collect(n, 8, body);
  ASSERT_EQ(serial.size(), n);
  ASSERT_EQ(parallel.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(serial[i] == nullptr, parallel[i] == nullptr) << "index " << i;
  }
}

TEST(ParallelStress, CollectModeAllCleanReturnsAllNull) {
  const auto errors =
      parallel_for_index_collect(1000, 8, [](std::size_t) {});
  ASSERT_EQ(errors.size(), 1000u);
  for (const std::exception_ptr& e : errors) EXPECT_EQ(e, nullptr);
}

TEST(ParallelStress, SerialFallbackMatchesParallelResult) {
  const std::size_t n = 1000;
  std::vector<double> serial(n), parallel(n);
  parallel_for_index(n, 1, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 0.5;
  });
  parallel_for_index(n, 8, [&](std::size_t i) {
    parallel[i] = static_cast<double>(i) * 0.5;
  });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
