// Dynamic measurement-region guard (mem/measurement_guard.h): freeing a
// Vpu-touched buffer mid-measurement tombstones its canonical lines, and a
// later measured access that re-aliases one — a new allocation inheriting
// the freed buffer's host line — must abort naming the canonical line.
//
// The guard only exists in -DVECFD_MEASUREMENT_GUARD=ON builds (the CI
// lint job); elsewhere the suite records a skip so tier-1 stays green.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "platforms/platforms.h"
#include "sim/vpu.h"

namespace {

using vecfd::sim::Vpu;

#ifdef VECFD_MEASUREMENT_GUARD

/// Reacquire the exact heap block just freed: the line-aligned allocator
/// (mem/aligned_new.cpp) forwards to aligned_alloc, and glibc serves the
/// freed chunk back for the next same-size request — usually on the first
/// try.  Extra allocations are parked in @p held so retries make progress.
double* reacquire_block(std::uintptr_t target, std::size_t elems,
                        std::vector<double*>& held) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    double* p = new double[elems];
    if (reinterpret_cast<std::uintptr_t>(p) == target) return p;
    held.push_back(p);
  }
  return nullptr;
}

TEST(MeasurementGuardDeathTest, ReAliasedCanonicalLineAbortsNamingIt) {
  EXPECT_DEATH(
      {
        Vpu vpu(vecfd::platforms::riscv_vec());
        double* a = new double[16]();
        const auto target = reinterpret_cast<std::uintptr_t>(a);
        vpu.set_vl(8);
        (void)vpu.vload(a);  // first touch: a's line becomes canonical line 0
        delete[] a;          // mid-measurement free → tombstone
        std::vector<double*> held;
        double* b = reacquire_block(target, 16, held);
        ASSERT_NE(b, nullptr) << "allocator never reused the freed block";
        (void)vpu.vload(b);  // re-alias of canonical line 0 → abort
      },
      "re-aliases canonical line 0");
}

TEST(MeasurementGuard, FreeWithoutReTouchIsBenign) {
  Vpu vpu(vecfd::platforms::riscv_vec());
  // c is allocated BEFORE a is freed, so it cannot alias a's lines.
  std::vector<double> c(16, 1.0);
  double* a = new double[16]();
  vpu.set_vl(8);
  (void)vpu.vload(a);
  (void)vpu.vload(c.data());
  delete[] a;  // tombstoned, but the measurement never returns to the line
  (void)vpu.vload(c.data());
  EXPECT_GT(vpu.counters().total_cycles(), 0.0);
}

TEST(MeasurementGuard, FlushClosesTheMeasurementRegion) {
  Vpu vpu(vecfd::platforms::riscv_vec());
  double* a = new double[16]();
  const auto target = reinterpret_cast<std::uintptr_t>(a);
  vpu.set_vl(8);
  (void)vpu.vload(a);
  vpu.reset();  // flush: mappings and tombstones forgotten
  delete[] a;
  std::vector<double*> held;
  double* b = reacquire_block(target, 16, held);
  if (b != nullptr) {
    (void)vpu.vload(b);  // fresh region: same host line is a fresh mapping
    EXPECT_GT(vpu.counters().total_cycles(), 0.0);
    delete[] b;
  }
  for (double* p : held) delete[] p;
}

#else

TEST(MeasurementGuard, SkippedInNonGuardBuild) {
  GTEST_SKIP() << "built without -DVECFD_MEASUREMENT_GUARD=ON; the CI lint "
                  "job runs the guard suite";
}

#endif  // VECFD_MEASUREMENT_GUARD

}  // namespace
