// Deterministic fault injection and the graceful-degradation retry ladder
// (sim/fault_injection.h, core/campaign.h, DESIGN.md §10):
//
//   * the fault-plan grammar: explicit `kind@point[.step]` lists and
//     `seed=N:faults=K` specs parse, round-trip through describe(), and
//     reject malformed tokens by name;
//   * seeded plans are deterministic in (seed, campaign shape) and refuse
//     lookups before materialize();
//   * each in-run fault kind travels its advertised failure path: breakdown
//     through the pressure solver's instrumented failure exit (sharded
//     configs included), zero-diag through the momentum Jacobi setup exit,
//     nan-rhs all the way into a non-finite final divergence;
//   * the retry ladder degrades deflate → cheby → jacobi → shards 1 →
//     ell → csr-host, faults fire on attempt 0 only, a worker death
//     without retries is an isolated "failed" outcome that never disturbs
//     its sibling points, and the outcome CSV carries the
//     attempts/degraded/final_status digest.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/csv.h"
#include "platforms/platforms.h"
#include "sim/fault_injection.h"

namespace {

using namespace vecfd;
using core::Campaign;
using core::CampaignFtOptions;
using core::CampaignOutcome;
using core::CampaignPoint;
using core::RunExtras;
using sim::FaultKind;
using sim::FaultPlan;

// ---------------------------------------------------------------------------
// plan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlan, ExplicitSpecRoundTripsThroughDescribe) {
  const std::string spec = "breakdown@2.1;nan-rhs@0;zero-diag@1.2;worker-death@3";
  FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_FALSE(plan.seeded());
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.faults().size(), 4u);
  EXPECT_EQ(plan.faults()[0].kind, FaultKind::kSolverBreakdown);
  EXPECT_EQ(plan.faults()[0].point, 2);
  EXPECT_EQ(plan.faults()[0].step, 1);
  EXPECT_EQ(plan.faults()[1].kind, FaultKind::kNanRhs);
  EXPECT_EQ(plan.faults()[1].point, 0);
  EXPECT_EQ(plan.faults()[1].step, 0);
  EXPECT_EQ(plan.faults()[3].kind, FaultKind::kWorkerDeath);

  // describe() is a parseable round-trip (worker-death drops the step).
  const FaultPlan again = FaultPlan::parse(plan.describe());
  ASSERT_EQ(again.faults().size(), plan.faults().size());
  for (std::size_t i = 0; i < plan.faults().size(); ++i) {
    EXPECT_EQ(again.faults()[i].kind, plan.faults()[i].kind);
    EXPECT_EQ(again.faults()[i].point, plan.faults()[i].point);
    EXPECT_EQ(again.faults()[i].step, plan.faults()[i].step);
  }
}

TEST(FaultPlan, LookupsAreByPoint) {
  FaultPlan plan = FaultPlan::parse("breakdown@1.2;worker-death@0");
  EXPECT_TRUE(plan.worker_death(0));
  EXPECT_FALSE(plan.worker_death(1));
  const sim::FaultSpec s1 = plan.spec_for(1);
  EXPECT_TRUE(s1.armed());
  EXPECT_TRUE(s1.fires(FaultKind::kSolverBreakdown, 2));
  EXPECT_FALSE(s1.fires(FaultKind::kSolverBreakdown, 1));
  EXPECT_FALSE(s1.fires(FaultKind::kNanRhs, 2));
  // worker-death is not an in-run fault: spec_for(0) stays disarmed.
  EXPECT_FALSE(plan.spec_for(0).armed());
  EXPECT_FALSE(plan.spec_for(7).armed());
}

TEST(FaultPlan, RejectsMalformedSpecsByName) {
  const char* bad[] = {
      "",                  // empty plan
      "bogus@0",           // unknown kind
      "breakdown",         // missing @point
      "breakdown@",        // empty point
      "breakdown@x",       // non-numeric point
      "breakdown@-1",      // negative point
      "breakdown@0.x",     // non-numeric step
      "breakdown@0;;nan-rhs@1",  // empty entry
      "seed=",             // empty seed
      "seed=abc",          // non-numeric seed
      "seed=1:bogus=2",    // unknown option
      "seed=1:faults=0",   // non-positive count
  };
  for (const char* spec : bad) {
    EXPECT_THROW(FaultPlan::parse(spec), std::invalid_argument)
        << "spec '" << spec << "' should not parse";
  }
}

TEST(FaultPlan, SeededPlansAreDeterministicAndGateLookups) {
  FaultPlan plan = FaultPlan::parse("seed=42:faults=3");
  EXPECT_TRUE(plan.seeded());
  EXPECT_FALSE(plan.empty()) << "an unmaterialized seeded plan is not empty";
  // Lookups before materialize() are a programming error, not a silent
  // no-fault answer.
  EXPECT_THROW((void)plan.spec_for(0), std::logic_error);
  EXPECT_THROW((void)plan.worker_death(0), std::logic_error);

  EXPECT_THROW(plan.materialize(0, 5), std::invalid_argument);
  EXPECT_THROW(plan.materialize(4, 0), std::invalid_argument);

  plan.materialize(/*num_points=*/4, /*steps=*/5);
  EXPECT_FALSE(plan.seeded());
  ASSERT_EQ(plan.faults().size(), 3u);
  for (const sim::PlannedFault& f : plan.faults()) {
    EXPECT_NE(f.kind, FaultKind::kNone);
    EXPECT_GE(f.point, 0);
    EXPECT_LT(f.point, 4);
    EXPECT_GE(f.step, 0);
    EXPECT_LT(f.step, 5);
  }

  // Same seed + shape → the identical plan; a different seed diverges.
  FaultPlan twin = FaultPlan::parse("seed=42:faults=3");
  twin.materialize(4, 5);
  EXPECT_EQ(twin.describe(), plan.describe());
  FaultPlan other = FaultPlan::parse("seed=43:faults=3");
  other.materialize(4, 5);
  EXPECT_NE(other.describe(), plan.describe());
}

// ---------------------------------------------------------------------------
// in-run fault paths (through Campaign::run + RunExtras)
// ---------------------------------------------------------------------------

/// One-scenario campaign at test size.
Campaign small_campaign() {
  miniapp::Scenario scen = miniapp::scenario_by_name("cavity");
  scen.mesh.nx = 4;
  scen.mesh.ny = 4;
  scen.mesh.nz = 3;
  return Campaign({scen});
}

CampaignPoint small_point() {
  CampaignPoint p;
  p.scenario = 0;
  p.machine = platforms::riscv_vec();
  p.steps = 3;
  return p;
}

RunExtras fault_extras(FaultKind kind, int step) {
  RunExtras extras;
  extras.fault.kind = kind;
  extras.fault.step = step;
  return extras;
}

TEST(FaultInjection, BreakdownFailsThePressureSolveAtItsStep) {
  const Campaign campaign = small_campaign();
  const core::CampaignRun run = campaign.run(
      small_point(), fault_extras(FaultKind::kSolverBreakdown, 1));
  ASSERT_EQ(run.loop.steps.size(), 3u);
  EXPECT_TRUE(run.loop.steps[0].pressure.failure.empty());
  EXPECT_NE(run.loop.steps[1].pressure.failure.find("injected"),
            std::string::npos)
      << "got: " << run.loop.steps[1].pressure.failure;
  EXPECT_TRUE(run.loop.steps[2].pressure.failure.empty())
      << "the fault is one-shot, not sticky";
  EXPECT_GE(run.solver_failures, 1);
  EXPECT_TRUE(core::attempt_failed(run));
}

TEST(FaultInjection, BreakdownReachesShardedConfigsToo) {
  const Campaign campaign = small_campaign();
  CampaignPoint p = small_point();
  p.shards = 4;
  const core::CampaignRun run =
      campaign.run(p, fault_extras(FaultKind::kSolverBreakdown, 0));
  ASSERT_FALSE(run.loop.steps.empty());
  EXPECT_NE(run.loop.steps[0].pressure.failure.find("injected"),
            std::string::npos)
      << "sharded points must route the injected step through the failure "
         "exit (legacy path) instead of silently dropping the fault";
  EXPECT_TRUE(core::attempt_failed(run));
}

TEST(FaultInjection, ZeroDiagTripsEveryMomentumComponent) {
  const Campaign campaign = small_campaign();
  const core::CampaignRun run = campaign.run(
      small_point(), fault_extras(FaultKind::kZeroDiagonal, 1));
  ASSERT_EQ(run.loop.steps.size(), 3u);
  for (int d = 0; d < fem::kDim; ++d) {
    EXPECT_TRUE(run.loop.steps[0]
                    .momentum[static_cast<std::size_t>(d)]
                    .failure.empty());
    EXPECT_FALSE(run.loop.steps[1]
                     .momentum[static_cast<std::size_t>(d)]
                     .failure.empty())
        << "component " << d;
  }
  EXPECT_GE(run.solver_failures, fem::kDim);
  EXPECT_TRUE(core::attempt_failed(run));
}

TEST(FaultInjection, NanRhsSurfacesInFinalDivergence) {
  const Campaign campaign = small_campaign();
  const core::CampaignRun run =
      campaign.run(small_point(), fault_extras(FaultKind::kNanRhs, 1));
  EXPECT_FALSE(std::isfinite(run.final_divergence))
      << "a poisoned RHS must travel solve → correction → diagnostics, "
         "not be silently absorbed";
  EXPECT_TRUE(core::attempt_failed(run));
}

TEST(FaultInjection, DisarmedExtrasMatchThePlainRun) {
  const Campaign campaign = small_campaign();
  const core::CampaignRun plain = campaign.run(small_point());
  const core::CampaignRun extras = campaign.run(small_point(), RunExtras{});
  EXPECT_EQ(plain.final_divergence, extras.final_divergence);
  EXPECT_EQ(plain.total_cycles, extras.total_cycles);
  EXPECT_EQ(plain.solver_failures, 0);
  EXPECT_FALSE(core::attempt_failed(plain));
}

// ---------------------------------------------------------------------------
// degradation ladder + fault-tolerant sweep
// ---------------------------------------------------------------------------

TEST(RetryLadder, DegradeWalksPrecondThenShardsThenFormat) {
  CampaignPoint p;
  p.precond = solver::PrecondKind::kDeflate;
  p.shards = 4;
  p.format = solver::SpmvFormat::kSell;

  ASSERT_TRUE(core::degrade_point(p));
  EXPECT_EQ(p.precond, solver::PrecondKind::kCheby);
  ASSERT_TRUE(core::degrade_point(p));
  EXPECT_EQ(p.precond, solver::PrecondKind::kJacobi);
  ASSERT_TRUE(core::degrade_point(p));
  EXPECT_EQ(p.shards, 1);
  ASSERT_TRUE(core::degrade_point(p));
  EXPECT_EQ(p.format, solver::SpmvFormat::kEll);
  ASSERT_TRUE(core::degrade_point(p));
  EXPECT_EQ(p.format, solver::SpmvFormat::kCsrHost);
  EXPECT_FALSE(core::degrade_point(p)) << "bottom rung everywhere";
}

TEST(RetryLadder, BreakdownRecoversOnADegradedRung) {
  const Campaign campaign = small_campaign();
  CampaignPoint p = small_point();
  p.precond = solver::PrecondKind::kDeflate;
  const std::vector<CampaignPoint> points = {p};

  FaultPlan plan = FaultPlan::parse("breakdown@0.0");
  CampaignFtOptions opts;
  opts.faults = &plan;
  opts.retry.max_retries = 2;
  const std::vector<CampaignOutcome> outcomes =
      campaign.run_points_ft(points, opts, /*jobs=*/1);

  ASSERT_EQ(outcomes.size(), 1u);
  const CampaignOutcome& o = outcomes[0];
  EXPECT_EQ(o.attempts, 2) << "attempt 0 faulted, attempt 1 ran clean";
  EXPECT_TRUE(o.degraded);
  EXPECT_EQ(o.final_status, "degraded");
  EXPECT_TRUE(o.error.empty());
  // The fault fires on attempt 0 only and the retry stepped one rung down.
  EXPECT_EQ(o.requested.precond, solver::PrecondKind::kDeflate);
  EXPECT_EQ(o.run.point.precond, solver::PrecondKind::kCheby);
  EXPECT_EQ(o.run.solver_failures, 0);
}

TEST(RetryLadder, WorkerDeathWithoutRetriesIsIsolated) {
  const Campaign campaign = small_campaign();
  const std::vector<CampaignPoint> points = {small_point(), small_point()};

  FaultPlan plan = FaultPlan::parse("worker-death@0");
  CampaignFtOptions opts;
  opts.faults = &plan;
  const std::vector<CampaignOutcome> outcomes =
      campaign.run_points_ft(points, opts, /*jobs=*/1);

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].final_status, "failed");
  EXPECT_EQ(outcomes[0].attempts, 1);
  EXPECT_NE(outcomes[0].error.find("worker death"), std::string::npos)
      << "got: " << outcomes[0].error;
  EXPECT_EQ(outcomes[0].run.scenario, "cavity")
      << "a dead point still identifies itself in the CSV";

  // Per-point isolation: the sibling is untouched.
  EXPECT_EQ(outcomes[1].final_status, "ok");
  EXPECT_EQ(outcomes[1].attempts, 1);
  EXPECT_FALSE(outcomes[1].degraded);
  EXPECT_TRUE(outcomes[1].error.empty());
}

TEST(RetryLadder, OutcomeCsvCarriesTheRetryDigest) {
  const Campaign campaign = small_campaign();
  const std::vector<CampaignPoint> points = {small_point(), small_point()};
  FaultPlan plan = FaultPlan::parse("worker-death@0");
  CampaignFtOptions opts;
  opts.faults = &plan;
  const std::vector<CampaignOutcome> outcomes =
      campaign.run_points_ft(points, opts, /*jobs=*/1);

  std::ostringstream os;
  core::write_campaign_csv(os, std::span<const CampaignOutcome>(outcomes));
  std::istringstream is(os.str());
  std::string header, row0, row1;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row0));
  ASSERT_TRUE(std::getline(is, row1));

  const std::string tail = ",attempts,degraded,final_status";
  ASSERT_GE(header.size(), tail.size());
  EXPECT_EQ(header.substr(header.size() - tail.size()), tail);
  EXPECT_EQ(row0.substr(row0.size() - std::string(",1,0,failed").size()),
            ",1,0,failed");
  EXPECT_EQ(row1.substr(row1.size() - std::string(",1,0,ok").size()),
            ",1,0,ok");
  // The dead point's numeric columns are all-zero placeholders, so the row
  // still has the full column count.
  const auto count_commas = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += (c == ',');
    return n;
  };
  EXPECT_EQ(count_commas(row0), count_commas(header));
  EXPECT_EQ(count_commas(row1), count_commas(header));
}

TEST(RetryLadder, LegacyRowsReportSingleCleanAttempt) {
  const Campaign campaign = small_campaign();
  const std::vector<CampaignPoint> points = {small_point()};
  const std::vector<core::CampaignRun> runs =
      campaign.run_points(points, /*jobs=*/1);
  std::ostringstream os;
  core::write_campaign_csv(os, std::span<const core::CampaignRun>(runs));
  std::istringstream is(os.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_EQ(row.substr(row.size() - std::string(",1,0,ok").size()),
            ",1,0,ok")
      << "plain runs carry the inert digest so the schema is uniform";
}

}  // namespace
