// Tests for the timing model — including the paper's calibration anchors:
// FMA ≈ 32 cycles at vl = 256 on RISC-V VEC and the vl-multiple-of-40 FSM
// sweet spot behind VECTOR_SIZE = 240.
#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "sim/timing_model.h"

namespace {

using vecfd::platforms::riscv_vec;
using vecfd::platforms::sx_aurora;
using vecfd::sim::ArithOp;
using vecfd::sim::MachineConfig;
using vecfd::sim::TimingModel;

TEST(TimingModel, FsmFactorUnityOnMultiplesOf40) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  for (int vl : {40, 80, 120, 160, 200, 240}) {
    EXPECT_DOUBLE_EQ(t.fsm_factor(vl), 1.0) << "vl=" << vl;
  }
  for (int vl : {16, 64, 128, 256, 30, 41}) {
    EXPECT_DOUBLE_EQ(t.fsm_factor(vl), m.fsm_penalty) << "vl=" << vl;
  }
}

TEST(TimingModel, FsmQuirkDisabledWhenGroupIsOne) {
  MachineConfig m = riscv_vec();
  m.fsm_group = 1;
  const TimingModel t(m);
  EXPECT_DOUBLE_EQ(t.fsm_factor(256), 1.0);
  EXPECT_DOUBLE_EQ(t.fsm_factor(17), 1.0);
}

TEST(TimingModel, FmaAnchor32CyclesAtVl256) {
  // §4: "one vector FMA takes around 32 cycles with a vector length of 256"
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  const double c256 = t.varith_cycles(256);
  EXPECT_GT(c256, 30.0);
  EXPECT_LT(c256, 42.0);
  // and fewer cycles at shorter lengths
  EXPECT_LT(t.varith_cycles(128), c256);
  EXPECT_LT(t.varith_cycles(16), t.varith_cycles(128));
}

TEST(TimingModel, Vl240BeatsVl256PerElement) {
  // The §5 explanation of the fastest configuration: higher element
  // throughput at vl = 240 than at vl = 256.
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  const double per240 = t.varith_cycles(240) / 240.0;
  const double per256 = t.varith_cycles(256) / 256.0;
  EXPECT_LT(per240, per256);
}

TEST(TimingModel, SxAuroraFmaGraduatesIn8Cycles) {
  // §2.4: a vector FMA performs 512 FLOP and needs 8 cycles to graduate.
  const MachineConfig m = sx_aurora();
  const TimingModel t(m);
  const double c = t.varith_cycles(256) - m.arith_startup;
  EXPECT_DOUBLE_EQ(c, 8.0);
}

TEST(TimingModel, DivCostsMoreThanMul) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  EXPECT_GT(t.varith_cycles(256, ArithOp::kDivSqrt),
            2.0 * t.varith_cycles(256, ArithOp::kSimple));
}

TEST(TimingModel, UnitStrideMemoryFollowsBandwidth) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  // 256 elements · 8 B / 64 B-per-cycle = 32 cycles + startup
  EXPECT_DOUBLE_EQ(t.vmem_unit_cycles(256), m.mem_startup + 32.0);
}

TEST(TimingModel, IndexedSlowerThanStridedSlowerThanUnit) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  EXPECT_GT(t.vmem_indexed_cycles(256), t.vmem_strided_cycles(256));
  EXPECT_GT(t.vmem_strided_cycles(256), t.vmem_unit_cycles(256));
}

TEST(TimingModel, LatencyMonotoneInVl) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  double prev_arith = 0.0;
  double prev_mem = 0.0;
  for (int vl = 8; vl <= 256; vl += 8) {
    const double a = t.varith_cycles(vl);
    const double mcy = t.vmem_unit_cycles(vl);
    EXPECT_GE(a, prev_arith - 3.0) << "vl=" << vl;  // fsm dips allowed
    EXPECT_GT(mcy, prev_mem);
    prev_arith = a;
    prev_mem = mcy;
  }
}

// Property sweep: per-element cost never increases when vl doubles
// (longer vectors amortize startup — the core long-vector premise).
class PerElementCost : public ::testing::TestWithParam<int> {};

TEST_P(PerElementCost, AmortizesStartup) {
  const MachineConfig m = riscv_vec();
  const TimingModel t(m);
  const int vl = GetParam();
  const double per_small = t.varith_cycles(vl) / vl;
  const double per_large = t.varith_cycles(2 * vl) / (2 * vl);
  EXPECT_LE(per_large, per_small * 1.10);  // fsm penalty can add ≤ 7%
}

INSTANTIATE_TEST_SUITE_P(VlSweep, PerElementCost,
                         ::testing::Values(8, 16, 32, 40, 64, 80, 120, 128));

}  // namespace
