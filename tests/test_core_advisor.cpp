// Tests for the co-design Advisor: its diagnostics must retrace the paper's
// own reasoning chain (vanilla → phase 2 opaque bound → VEC2 short vectors
// → IVEC2 → VEC1 fused loop → VECTOR_SIZE 240).
#include <gtest/gtest.h>

#include "core/advisor.h"

namespace {

using vecfd::core::advise;
using vecfd::core::Experiment;
using vecfd::core::Finding;
using vecfd::core::FindingKind;
using vecfd::miniapp::MiniAppConfig;
using vecfd::miniapp::OptLevel;
using vecfd::platforms::riscv_vec;

struct Fixture {
  Fixture() : mesh({.nx = 4, .ny = 4, .nz = 4}), state(mesh) {}
  vecfd::fem::Mesh mesh;
  vecfd::fem::State state;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

const Finding* find_kind(const std::vector<Finding>& fs, FindingKind k,
                         int phase = -1) {
  for (const Finding& f : fs) {
    if (f.kind == k && (phase < 0 || f.phase == phase)) return &f;
  }
  return nullptr;
}

TEST(Advisor, VanillaFlagsPhase2OpaqueBound) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = OptLevel::kVanilla;
  const auto m = ex.run(riscv_vec(), cfg);
  const auto fs = advise(m);
  const Finding* f = find_kind(fs, FindingKind::kOpaqueBound, 2);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("compile-time"), std::string::npos);
  EXPECT_GT(f->severity, 0.02);
}

TEST(Advisor, VanillaFlagsPhase1FusedLoop) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = OptLevel::kVanilla;
  const auto m = ex.run(riscv_vec(), cfg);
  const auto fs = advise(m);
  // phase 1 may be below the 2% floor on small meshes at low VS; accept
  // either the finding or phase-1 share below floor.
  const Finding* f = find_kind(fs, FindingKind::kFusedLoop, 1);
  if (m.phase_share(1) >= 0.02) {
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("fission"), std::string::npos);
  }
}

TEST(Advisor, Vec2FlagsShortVectors) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = OptLevel::kVec2;
  const auto m = ex.run(riscv_vec(), cfg);
  const auto fs = advise(m);
  const Finding* f = find_kind(fs, FindingKind::kShortVectors, 2);
  ASSERT_NE(f, nullptr) << "phase-2 AVL should be ~4 of 256";
  EXPECT_NE(f->message.find("innermost"), std::string::npos);
}

TEST(Advisor, FsmFindingForVl256ButNotVl240) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.opt = OptLevel::kVec1;

  cfg.vector_size = 64;  // 64 % 40 != 0
  const auto m256 = ex.run(riscv_vec(), cfg);
  const auto fs256 = advise(m256);
  EXPECT_NE(find_kind(fs256, FindingKind::kFsmUnfriendlyVl), nullptr);

  // a multiple of 40 silences the finding (4x4x4 mesh: use vs=40)
  cfg.vector_size = 40;
  const auto m240 = ex.run(riscv_vec(), cfg);
  const auto fs240 = advise(m240);
  EXPECT_EQ(find_kind(fs240, FindingKind::kFsmUnfriendlyVl), nullptr);
}

TEST(Advisor, FindingsSortedBySeverity) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = OptLevel::kVanilla;
  const auto fs = advise(ex.run(riscv_vec(), cfg));
  for (std::size_t i = 1; i < fs.size(); ++i) {
    EXPECT_GE(fs[i - 1].severity, fs[i].severity);
  }
}

TEST(Advisor, OptimizedRunQuietsPhase2) {
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = OptLevel::kVec1;
  const auto fs = advise(ex.run(riscv_vec(), cfg));
  EXPECT_EQ(find_kind(fs, FindingKind::kOpaqueBound, 2), nullptr);
  EXPECT_EQ(find_kind(fs, FindingKind::kShortVectors, 2), nullptr);
}

TEST(Advisor, KindNamesAreStable) {
  EXPECT_EQ(vecfd::core::to_string(FindingKind::kOpaqueBound),
            "opaque-bound");
  EXPECT_EQ(vecfd::core::to_string(FindingKind::kFsmUnfriendlyVl),
            "fsm-unfriendly-vl");
  EXPECT_EQ(vecfd::core::to_string(FindingKind::kGatherBound),
            "gather-bound");
  EXPECT_EQ(vecfd::core::to_string(FindingKind::kHealthy), "healthy");
}

TEST(Advisor, RecommendFormatFollowsTheMachineClass) {
  using vecfd::core::recommend_format;
  using vecfd::solver::SpmvFormat;
  // scalar machine: nothing to mirror; long vectors: SELL; short SIMD: ELL
  EXPECT_EQ(recommend_format(vecfd::platforms::riscv_vec_scalar()),
            SpmvFormat::kCsrHost);
  EXPECT_EQ(recommend_format(riscv_vec()), SpmvFormat::kSell);
  EXPECT_EQ(recommend_format(vecfd::platforms::sx_aurora()),
            SpmvFormat::kSell);
  EXPECT_EQ(recommend_format(vecfd::platforms::mn4_avx512()),
            SpmvFormat::kEll);
}

TEST(Advisor, GatherBoundFlagsPadHeavyEllSolveAndNamesTheFormat) {
  // A full-strip ELL solve on the small FEM operator: interior rows of
  // width 27 force ~40% pad lanes in the boundary-heavy mirror, which is
  // exactly the pad-hygiene symptom the finding exists for.  The advice
  // must name the machine's recommended format, not hard-code one.
  Fixture& fx = fixture();
  const Experiment ex(fx.mesh, fx.state);
  MiniAppConfig cfg;
  cfg.vector_size = 240;  // healthy AVL so short-vectors does not mask it
  cfg.opt = OptLevel::kVec1;
  cfg.scheme = vecfd::fem::Scheme::kSemiImplicit;
  cfg.run_solve = true;
  cfg.solve_format = vecfd::solver::SpmvFormat::kEll;
  const auto m = ex.run(riscv_vec(), cfg);
  const auto fs = advise(m);
  const Finding* f = find_kind(fs, FindingKind::kGatherBound, 9);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("pad lanes"), std::string::npos);
  EXPECT_NE(f->message.find("--format sell"), std::string::npos);
  EXPECT_GT(f->severity, 0.0);

  // on the recommended format the finding must not re-suggest a switch —
  // it either goes quiet or (scattered lines) suggests RCM renumbering
  cfg.solve_format = vecfd::solver::SpmvFormat::kSell;
  const auto fs_sell = advise(ex.run(riscv_vec(), cfg));
  const Finding* f2 = find_kind(fs_sell, FindingKind::kGatherBound, 9);
  if (f2 != nullptr) {
    EXPECT_EQ(f2->message.find("--format"), std::string::npos);
    EXPECT_NE(f2->message.find("--rcm"), std::string::npos);
  }
}

}  // namespace
