// Tests pinning the platform models to Table 2 of the paper.
#include <gtest/gtest.h>

#include "platforms/platforms.h"

namespace {

using namespace vecfd::platforms;

TEST(Platforms, RiscvVecTable2) {
  const auto m = riscv_vec();
  EXPECT_EQ(m.name, "riscv-vec");
  EXPECT_DOUBLE_EQ(m.frequency_mhz, 50.0);       // Table 2
  EXPECT_EQ(m.vlmax, 256);                       // 16-kbit registers
  EXPECT_EQ(m.lanes, 8);                         // 8 FPU lanes
  EXPECT_DOUBLE_EQ(m.bytes_per_cycle, 64.0);     // Table 2
  EXPECT_EQ(m.fsm_group, 5);                     // footnote 4
  EXPECT_EQ(m.memory.l2.size_bytes, 1024u * 1024u);  // §2.1.3: 1 MB L2
  EXPECT_TRUE(m.vector_enabled);
}

TEST(Platforms, SxAuroraTable2) {
  const auto m = sx_aurora();
  EXPECT_DOUBLE_EQ(m.frequency_mhz, 1600.0);
  EXPECT_EQ(m.vlmax, 256);
  EXPECT_EQ(m.lanes, 32);  // FMA graduates in 8 cycles = 256/32
  EXPECT_DOUBLE_EQ(m.bytes_per_cycle, 120.0);
  EXPECT_EQ(m.fsm_group, 1);  // no Vitruvius FSM quirk
}

TEST(Platforms, Mn4Avx512Table2) {
  const auto m = mn4_avx512();
  EXPECT_DOUBLE_EQ(m.frequency_mhz, 2100.0);
  EXPECT_EQ(m.vlmax, 8);  // AVX-512: 8 doubles
  EXPECT_EQ(m.fsm_group, 1);
}

TEST(Platforms, ScalarVariantDisablesVectorUnit) {
  const auto s = scalar_variant(riscv_vec());
  EXPECT_FALSE(s.vector_enabled);
  EXPECT_EQ(s.name, "riscv-vec-scalar");
  EXPECT_FALSE(riscv_vec_scalar().vector_enabled);
}

TEST(Platforms, PeakFlopThroughputOrdering) {
  // Table 2 throughput: SX-Aurora (192 F/cyc) > MN4 (32) > RISC-V VEC (16)
  // Our model: 2 FLOP per lane per cycle (FMA).
  const double riscv = 2.0 * riscv_vec().lanes;
  const double aurora = 2.0 * 8 * sx_aurora().lanes / 8;  // 64 F/cyc model
  const double mn4 = 2.0 * mn4_avx512().lanes;
  EXPECT_GT(aurora, mn4);
  EXPECT_GT(mn4, riscv);
}

TEST(Platforms, ClampVl) {
  EXPECT_EQ(riscv_vec().clamp_vl(512), 256);
  EXPECT_EQ(riscv_vec().clamp_vl(40), 40);
  EXPECT_EQ(mn4_avx512().clamp_vl(240), 8);
}

}  // namespace
