// Edge-case and failure-injection tests for the mini-app: degenerate
// machine widths, capacity-less caches, single-element meshes, and odd
// chunk factors — correctness must survive them all.
#include <gtest/gtest.h>

#include <cmath>

#include "fem/reference_assembly.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"

namespace {

using namespace vecfd;

void expect_matches_reference(const fem::Mesh& mesh, const fem::State& state,
                              const miniapp::MiniAppConfig& cfg,
                              const sim::MachineConfig& machine,
                              const char* label) {
  miniapp::MiniApp app(mesh, state, cfg);
  sim::Vpu vpu(machine);
  const auto r = app.run(vpu);
  const fem::ShapeTable shape;
  const auto ref = fem::assemble_global(mesh, state, shape, cfg.scheme);
  ASSERT_EQ(r.rhs.size(), ref.rhs.size()) << label;
  for (std::size_t i = 0; i < r.rhs.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(ref.rhs[i]));
    EXPECT_NEAR(r.rhs[i], ref.rhs[i], 1e-12 * scale) << label << " i=" << i;
  }
}

TEST(MiniAppEdge, VlmaxOneStillCorrect) {
  const fem::Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  const fem::State state(mesh);
  sim::MachineConfig m = platforms::riscv_vec();
  m.vlmax = 1;
  m.lanes = 1;
  for (auto opt : {miniapp::OptLevel::kVanilla, miniapp::OptLevel::kVec2,
                   miniapp::OptLevel::kVec1}) {
    miniapp::MiniAppConfig cfg;
    cfg.vector_size = 8;
    cfg.opt = opt;
    expect_matches_reference(mesh, state, cfg, m,
                             std::string(to_string(opt)).c_str());
  }
}

TEST(MiniAppEdge, VlmaxThreeCannotHoldTheDofCopy) {
  // the VEC2 guard: a machine narrower than kDofs must fall back to the
  // scalar gather and still produce exact results
  const fem::Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  const fem::State state(mesh);
  sim::MachineConfig m = platforms::riscv_vec();
  m.vlmax = 3;
  m.lanes = 1;
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 8;
  cfg.opt = miniapp::OptLevel::kVec2;
  expect_matches_reference(mesh, state, cfg, m, "vec2-vlmax3");
}

TEST(MiniAppEdge, CapacitylessCachesOnlyChangeCycles) {
  const fem::Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  const fem::State state(mesh);
  sim::MachineConfig m = platforms::riscv_vec();
  m.memory.l1.size_bytes = 0;
  m.memory.l1.associativity = 0;
  m.memory.l2.size_bytes = 0;
  m.memory.l2.associativity = 0;
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 8;
  cfg.opt = miniapp::OptLevel::kVec1;
  expect_matches_reference(mesh, state, cfg, m, "no-caches");

  // and the all-miss machine is strictly slower than the cached one
  miniapp::MiniApp app(mesh, state, cfg);
  sim::Vpu flat(m);
  sim::Vpu cached(platforms::riscv_vec());
  EXPECT_GT(app.run(flat).cycles, app.run(cached).cycles);
}

TEST(MiniAppEdge, SingleElementMesh) {
  const fem::Mesh mesh({.nx = 1, .ny = 1, .nz = 1});
  const fem::State state(mesh);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;  // chunk is nearly all padding
  cfg.opt = miniapp::OptLevel::kVec1;
  expect_matches_reference(mesh, state, cfg, platforms::riscv_vec(),
                           "single-element");
}

TEST(MiniAppEdge, VectorSizeLargerThanMesh) {
  const fem::Mesh mesh({.nx = 3, .ny = 3, .nz = 1});  // 9 elements
  const fem::State state(mesh);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 512;
  cfg.opt = miniapp::OptLevel::kVanilla;
  expect_matches_reference(mesh, state, cfg, platforms::riscv_vec(),
                           "vs>mesh");
}

TEST(MiniAppEdge, PrimeVectorSize) {
  // 7 does not divide 24 elements: three chunks, the last one padded
  const fem::Mesh mesh({.nx = 2, .ny = 3, .nz = 4});
  const fem::State state(mesh);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 7;
  cfg.opt = miniapp::OptLevel::kVec1;
  expect_matches_reference(mesh, state, cfg, platforms::riscv_vec(),
                           "vs=7");
}

TEST(MiniAppEdge, SemiImplicitOnForeignMachines) {
  const fem::Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  const fem::State state(mesh);
  const fem::ShapeTable shape;
  const auto ref =
      fem::assemble_global(mesh, state, shape, fem::Scheme::kSemiImplicit);
  for (const auto& machine :
       {platforms::sx_aurora(), platforms::mn4_avx512()}) {
    miniapp::MiniAppConfig cfg;
    cfg.vector_size = 8;
    cfg.scheme = fem::Scheme::kSemiImplicit;
    cfg.opt = miniapp::OptLevel::kVec1;
    miniapp::MiniApp app(mesh, state, cfg);
    sim::Vpu vpu(machine);
    const auto r = app.run(vpu);
    ASSERT_TRUE(r.has_matrix);
    const auto gv = r.matrix.vals();
    const auto rv = ref.matrix.vals();
    ASSERT_EQ(gv.size(), rv.size());
    for (std::size_t i = 0; i < gv.size(); ++i) {
      EXPECT_NEAR(gv[i], rv[i], 1e-12 * std::max(1.0, std::fabs(rv[i])))
          << machine.name;
    }
  }
}

TEST(MiniAppEdge, ExtremePhysicsParameters) {
  const fem::Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  for (fem::Physics phys :
       {fem::Physics{.density = 1e3, .viscosity = 1e-6, .dt = 1e-4},
        fem::Physics{.density = 1e-3, .viscosity = 10.0, .dt = 10.0}}) {
    const fem::State state(mesh, phys);
    miniapp::MiniAppConfig cfg;
    cfg.vector_size = 8;
    cfg.opt = miniapp::OptLevel::kVec1;
    expect_matches_reference(mesh, state, cfg, platforms::riscv_vec(),
                             "extreme-physics");
  }
}


TEST(MiniAppEdge, ShuffledNumberingStillMatchesReference) {
  // unstructured-style node numbering: values identical, only locality
  // (and thus cycles) differ
  const fem::Mesh mesh(
      {.nx = 3, .ny = 3, .nz = 3, .shuffle_nodes = true});
  const fem::State state(mesh);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = miniapp::OptLevel::kVec1;
  expect_matches_reference(mesh, state, cfg, platforms::riscv_vec(),
                           "shuffled");
}

TEST(MiniAppEdge, ShuffledNumberingCostsMoreGatherLocality) {
  // the Table 6 mechanism, isolated: worse node locality -> more L1
  // misses in the gather phases -> more cycles
  const fem::MeshConfig base{.nx = 8, .ny = 8, .nz = 8};
  fem::MeshConfig shuf = base;
  shuf.shuffle_nodes = true;
  const fem::Mesh m_ord(base);
  const fem::Mesh m_shuf(shuf);
  const fem::State s_ord(m_ord);
  const fem::State s_shuf(m_shuf);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 64;
  cfg.opt = miniapp::OptLevel::kVec1;

  auto phase2_misses = [&](const fem::Mesh& m, const fem::State& s) {
    miniapp::MiniApp app(m, s, cfg);
    sim::Vpu vpu(platforms::riscv_vec());
    const auto r = app.run(vpu);
    return r.phase[2].l1_misses;
  };
  EXPECT_GT(phase2_misses(m_shuf, s_shuf), phase2_misses(m_ord, s_ord));
}
}  // namespace
