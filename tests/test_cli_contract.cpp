// CLI contract of the vecfd-run binary: --help exits 0, every invalid
// argument names the offending flag on stderr and exits non-zero, and the
// parallel sweep writes byte-identical CSV to the serial sweep.
//
// CMake injects the binary path as VECFD_RUN_BIN.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sanitizer_support.h"

namespace {

namespace fs = std::filesystem;

const std::string kBin = VECFD_RUN_BIN;

int exit_code(const std::string& args) {
  const std::string cmd = kBin + " " + args + " >/dev/null 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string stderr_of(const std::string& args) {
  const std::string cmd = kBin + " " + args + " 2>&1 1>/dev/null";
  FILE* p = popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  std::string out;
  char buf[256];
  while (p != nullptr && fgets(buf, sizeof buf, p) != nullptr) out += buf;
  if (p != nullptr) pclose(p);
  return out;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(CliContract, HelpExitsZero) {
  EXPECT_EQ(exit_code("--help"), 0);
  EXPECT_EQ(exit_code("-h"), 0);
}

TEST(CliContract, DefaultRunExitsZero) {
  EXPECT_EQ(exit_code("--mesh 4,4,2"), 0);
}

TEST(CliContract, SolveRunExitsZeroAndImpliesSemiScheme) {
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16"), 0);
  EXPECT_EQ(exit_code("--solve --scheme semi --mesh 4,4,2 --vs 16"), 0);
}

TEST(CliContract, FormatFlagAcceptsEveryFormatAndAuto) {
  // the sparse-format knob applies to the chained solve and the transient
  // loop alike; auto resolves through the Advisor per machine
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16 --format csr"), 0);
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16 --format sell"), 0);
  EXPECT_EQ(exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format ell"), 0);
  EXPECT_EQ(exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format auto"), 0);
  EXPECT_EQ(
      exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format sell --rcm"), 0);
}

TEST(CliContract, FormatAndRcmInvalidUsesNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--format bogus", "--format"},
      {"--format", "--format"},  // missing value
      {"--steps 1 --format coo", "--format"},
      {"--rcm", "--rcm"},               // needs a transient run
      {"--solve --rcm", "--rcm"},       // the assembly-chained solve too
  };
  for (const auto& c : cases) {
    EXPECT_EQ(exit_code(c.args), 2) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, TransientRunExitsZeroAndImpliesSemiScheme) {
  // --steps runs the time loop on the default cavity scenario; --scenario
  // alone implies a short loop; both imply --scheme semi
  EXPECT_EQ(exit_code("--steps 2 --mesh 3,3,3 --vs 16"), 0);
  EXPECT_EQ(exit_code("--scenario taylor-green --steps 2 --mesh 3,3,3 "
                      "--vs 16"),
            0);
  EXPECT_EQ(exit_code("--scenario cavity --mesh 3,3,3 --vs 16 --steps 1 "
                      "--scheme semi"),
            0);
}

TEST(CliContract, TransientInvalidArgumentsNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--steps 0", "--steps"},
      {"--steps -3", "--steps"},
      {"--steps banana", "--steps"},
      {"--steps", "--steps"},  // missing value
      {"--steps 2 --scheme explicit", "--steps"},
      {"--scenario bogus --steps 1", "--scenario"},
      {"--scenario", "--scenario"},  // missing value
      {"--scenario cavity --scheme explicit", "--scenario"},
      {"--steps 1 --solve", "--solve"},  // the loop solves on its own
      {"--steps 1 --prv trace", "--prv"},
      {"--steps 1 --advise", "--advise"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(exit_code(c.args), 2) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, TransientCampaignCsvIsDeterministicAcrossJobs) {
  VECFD_SKIP_UNDER_ASAN();
  const fs::path dir = fs::temp_directory_path();
  const fs::path serial = dir / "vecfd_campaign_serial.csv";
  const fs::path parallel = dir / "vecfd_campaign_parallel.csv";
  // single-scenario campaign (--sweep + --scenario restricts the grid) on
  // a tiny mesh so the contract test stays fast
  const std::string base =
      "--sweep --scenario cavity --steps 1 --mesh 3,3,3 ";
  ASSERT_EQ(exit_code(base + "--jobs 1 --csv " + serial.string()), 0);
  ASSERT_EQ(exit_code(base + "--jobs 4 --csv " + parallel.string()), 0);
  const std::string a = slurp(serial);
  const std::string b = slurp(parallel);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("scenario,machine"), std::string::npos);
  EXPECT_NE(a.find("ph11_avl"), std::string::npos);
  EXPECT_EQ(a, b);
  fs::remove(serial);
  fs::remove(parallel);
}

TEST(CliContract, InvalidArgumentsExitNonZeroAndNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--machine bogus", "--machine"},
      {"--vs -7", "--vs"},
      {"--vs 0", "--vs"},
      {"--vs banana", "--vs"},
      {"--mesh 0,0,0", "--mesh"},
      {"--opt turbo", "--opt"},
      {"--scheme magic", "--scheme"},
      {"--jobs -2", "--jobs"},
      {"--frobnicate", "--frobnicate"},
      {"--machine", "--machine"},  // missing value
      {"--solve --scheme explicit", "--solve"},  // solve needs a matrix
      {"--precond bogus", "--precond"},
      {"--precond cheby", "--precond"},  // ladder rungs need --transient
  };
  for (const auto& c : cases) {
    EXPECT_NE(exit_code(c.args), 0) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, FaultToleranceInvalidArgumentsNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--checkpoint-every", "--checkpoint-every"},  // missing value
      {"--checkpoint-dir", "--checkpoint-dir"},
      {"--resume", "--resume"},
      {"--max-retries", "--max-retries"},
      {"--fault-plan", "--fault-plan"},
      {"--steps 1 --checkpoint-every 0 --checkpoint-dir /tmp/x",
       "--checkpoint-every"},
      {"--steps 1 --checkpoint-every -1 --checkpoint-dir /tmp/x",
       "--checkpoint-every"},
      {"--steps 1 --max-retries -1", "--max-retries"},
      // every fault-tolerance knob needs a transient run
      {"--checkpoint-every 1 --checkpoint-dir /tmp/x", "--checkpoint-every"},
      {"--max-retries 2", "--max-retries"},
      {"--fault-plan breakdown@0", "--fault-plan"},
      {"--solve --max-retries 1", "--max-retries"},
      // the checkpoint flags form a contract among themselves
      {"--steps 1 --checkpoint-every 2", "--checkpoint-every"},
      {"--steps 1 --checkpoint-dir /tmp/x", "--checkpoint-dir"},
      {"--steps 1 --resume /tmp/x", "--resume"},
      {"--steps 1 --checkpoint-every 1 --checkpoint-dir /tmp/x "
       "--resume /tmp/x",
       "--resume"},
      // a malformed plan names --fault-plan, not a raw parse error
      {"--steps 1 --mesh 3,3,3 --fault-plan bogus@0", "--fault-plan"},
      {"--steps 1 --mesh 3,3,3 --fault-plan seed=1:faults=0", "--fault-plan"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(exit_code(c.args), 2) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, ResumeRejectsMissingDirAndLeftoverTmp) {
  const fs::path dir =
      fs::temp_directory_path() / "vecfd_cli_resume_contract";
  fs::remove_all(dir);

  // nonexistent directory
  const std::string args =
      "--steps 2 --mesh 3,3,3 --vs 16 --checkpoint-every 1 --resume " +
      dir.string();
  EXPECT_EQ(exit_code(args), 2);
  EXPECT_NE(stderr_of(args).find("--resume"), std::string::npos);

  // a leftover partial write means the previous save died mid-rename:
  // refuse to resume rather than silently load who-knows-what
  fs::create_directories(dir);
  std::ofstream(dir / "point_0.ckpt.tmp") << "partial";
  EXPECT_EQ(exit_code(args), 2);
  EXPECT_NE(stderr_of(args).find(".tmp"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CliContract, CheckpointThenResumeExitsZero) {
  VECFD_SKIP_UNDER_ASAN();
  const fs::path dir = fs::temp_directory_path() / "vecfd_cli_ckpt_run";
  fs::remove_all(dir);
  const std::string base = "--steps 2 --mesh 3,3,3 --vs 16 ";
  ASSERT_EQ(exit_code(base + "--checkpoint-every 1 --checkpoint-dir " +
                      dir.string()),
            0);
  EXPECT_TRUE(fs::exists(dir / "point_0.ckpt"));
  EXPECT_FALSE(fs::exists(dir / "point_0.ckpt.tmp"));
  EXPECT_EQ(exit_code(base + "--checkpoint-every 1 --resume " +
                      dir.string()),
            0);
  fs::remove_all(dir);
}

TEST(CliContract, FaultPlanRunsExitByOutcome) {
  VECFD_SKIP_UNDER_ASAN();
  const std::string base = "--steps 2 --mesh 3,3,3 --vs 16 ";
  // a completed-but-failed point is still a completed campaign: exit 0
  EXPECT_EQ(exit_code(base + "--fault-plan breakdown@0.0"), 0);
  // recovery on the retry ladder: exit 0
  EXPECT_EQ(exit_code(base + "--fault-plan breakdown@0.0 --max-retries 2 "
                             "--precond deflate"),
            0);
  // an unretried worker death leaves a point with no run at all: exit 1
  EXPECT_EQ(exit_code(base + "--fault-plan worker-death@0"), 1);
}

TEST(CliContract, ParallelSweepCsvIsByteIdenticalToSerial) {
  VECFD_SKIP_UNDER_ASAN();
  const fs::path dir = fs::temp_directory_path();
  const fs::path serial = dir / "vecfd_cli_serial.csv";
  const fs::path parallel = dir / "vecfd_cli_parallel.csv";
  const std::string mesh = "--mesh 4,4,2";
  ASSERT_EQ(exit_code("--sweep --jobs 1 " + mesh + " --csv " +
                      serial.string()),
            0);
  ASSERT_EQ(exit_code("--sweep --jobs 4 " + mesh + " --csv " +
                      parallel.string()),
            0);
  const std::string a = slurp(serial);
  const std::string b = slurp(parallel);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  fs::remove(serial);
  fs::remove(parallel);
}

}  // namespace
