// CLI contract of the vecfd-run binary: --help exits 0, every invalid
// argument names the offending flag on stderr and exits non-zero, and the
// parallel sweep writes byte-identical CSV to the serial sweep.
//
// CMake injects the binary path as VECFD_RUN_BIN.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sanitizer_support.h"

namespace {

namespace fs = std::filesystem;

const std::string kBin = VECFD_RUN_BIN;

int exit_code(const std::string& args) {
  const std::string cmd = kBin + " " + args + " >/dev/null 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string stderr_of(const std::string& args) {
  const std::string cmd = kBin + " " + args + " 2>&1 1>/dev/null";
  FILE* p = popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  std::string out;
  char buf[256];
  while (p != nullptr && fgets(buf, sizeof buf, p) != nullptr) out += buf;
  if (p != nullptr) pclose(p);
  return out;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(CliContract, HelpExitsZero) {
  EXPECT_EQ(exit_code("--help"), 0);
  EXPECT_EQ(exit_code("-h"), 0);
}

TEST(CliContract, DefaultRunExitsZero) {
  EXPECT_EQ(exit_code("--mesh 4,4,2"), 0);
}

TEST(CliContract, SolveRunExitsZeroAndImpliesSemiScheme) {
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16"), 0);
  EXPECT_EQ(exit_code("--solve --scheme semi --mesh 4,4,2 --vs 16"), 0);
}

TEST(CliContract, FormatFlagAcceptsEveryFormatAndAuto) {
  // the sparse-format knob applies to the chained solve and the transient
  // loop alike; auto resolves through the Advisor per machine
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16 --format csr"), 0);
  EXPECT_EQ(exit_code("--solve --mesh 4,4,2 --vs 16 --format sell"), 0);
  EXPECT_EQ(exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format ell"), 0);
  EXPECT_EQ(exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format auto"), 0);
  EXPECT_EQ(
      exit_code("--steps 1 --mesh 3,3,3 --vs 16 --format sell --rcm"), 0);
}

TEST(CliContract, FormatAndRcmInvalidUsesNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--format bogus", "--format"},
      {"--format", "--format"},  // missing value
      {"--steps 1 --format coo", "--format"},
      {"--rcm", "--rcm"},               // needs a transient run
      {"--solve --rcm", "--rcm"},       // the assembly-chained solve too
  };
  for (const auto& c : cases) {
    EXPECT_EQ(exit_code(c.args), 2) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, TransientRunExitsZeroAndImpliesSemiScheme) {
  // --steps runs the time loop on the default cavity scenario; --scenario
  // alone implies a short loop; both imply --scheme semi
  EXPECT_EQ(exit_code("--steps 2 --mesh 3,3,3 --vs 16"), 0);
  EXPECT_EQ(exit_code("--scenario taylor-green --steps 2 --mesh 3,3,3 "
                      "--vs 16"),
            0);
  EXPECT_EQ(exit_code("--scenario cavity --mesh 3,3,3 --vs 16 --steps 1 "
                      "--scheme semi"),
            0);
}

TEST(CliContract, TransientInvalidArgumentsNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--steps 0", "--steps"},
      {"--steps -3", "--steps"},
      {"--steps banana", "--steps"},
      {"--steps", "--steps"},  // missing value
      {"--steps 2 --scheme explicit", "--steps"},
      {"--scenario bogus --steps 1", "--scenario"},
      {"--scenario", "--scenario"},  // missing value
      {"--scenario cavity --scheme explicit", "--scenario"},
      {"--steps 1 --solve", "--solve"},  // the loop solves on its own
      {"--steps 1 --prv trace", "--prv"},
      {"--steps 1 --advise", "--advise"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(exit_code(c.args), 2) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, TransientCampaignCsvIsDeterministicAcrossJobs) {
  VECFD_SKIP_UNDER_ASAN();
  const fs::path dir = fs::temp_directory_path();
  const fs::path serial = dir / "vecfd_campaign_serial.csv";
  const fs::path parallel = dir / "vecfd_campaign_parallel.csv";
  // single-scenario campaign (--sweep + --scenario restricts the grid) on
  // a tiny mesh so the contract test stays fast
  const std::string base =
      "--sweep --scenario cavity --steps 1 --mesh 3,3,3 ";
  ASSERT_EQ(exit_code(base + "--jobs 1 --csv " + serial.string()), 0);
  ASSERT_EQ(exit_code(base + "--jobs 4 --csv " + parallel.string()), 0);
  const std::string a = slurp(serial);
  const std::string b = slurp(parallel);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("scenario,machine"), std::string::npos);
  EXPECT_NE(a.find("ph11_avl"), std::string::npos);
  EXPECT_EQ(a, b);
  fs::remove(serial);
  fs::remove(parallel);
}

TEST(CliContract, InvalidArgumentsExitNonZeroAndNameTheFlag) {
  const struct {
    const char* args;
    const char* flag;
  } cases[] = {
      {"--machine bogus", "--machine"},
      {"--vs -7", "--vs"},
      {"--vs 0", "--vs"},
      {"--vs banana", "--vs"},
      {"--mesh 0,0,0", "--mesh"},
      {"--opt turbo", "--opt"},
      {"--scheme magic", "--scheme"},
      {"--jobs -2", "--jobs"},
      {"--frobnicate", "--frobnicate"},
      {"--machine", "--machine"},  // missing value
      {"--solve --scheme explicit", "--solve"},  // solve needs a matrix
      {"--precond bogus", "--precond"},
      {"--precond cheby", "--precond"},  // ladder rungs need --transient
  };
  for (const auto& c : cases) {
    EXPECT_NE(exit_code(c.args), 0) << c.args;
    EXPECT_NE(stderr_of(c.args).find(c.flag), std::string::npos)
        << c.args << " should name " << c.flag << " on stderr";
  }
}

TEST(CliContract, ParallelSweepCsvIsByteIdenticalToSerial) {
  VECFD_SKIP_UNDER_ASAN();
  const fs::path dir = fs::temp_directory_path();
  const fs::path serial = dir / "vecfd_cli_serial.csv";
  const fs::path parallel = dir / "vecfd_cli_parallel.csv";
  const std::string mesh = "--mesh 4,4,2";
  ASSERT_EQ(exit_code("--sweep --jobs 1 " + mesh + " --csv " +
                      serial.string()),
            0);
  ASSERT_EQ(exit_code("--sweep --jobs 4 " + mesh + " --csv " +
                      parallel.string()),
            0);
  const std::string a = slurp(serial);
  const std::string b = slurp(parallel);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  fs::remove(serial);
  fs::remove(parallel);
}

}  // namespace
