// Counter-conservation invariants of the transient time loop: nothing the
// Vpu charges may leak out of the per-step / per-phase accounting.  For
// every scenario × platform:
//
//   * Σ StepReport::cycles == TimeLoopResult::cycles (the per-step deltas
//     tile the run exactly);
//   * Σ_{p=0..kNumInstrumentedPhases} phase[p] == total, field by field
//     (instruction classes, cycles, vl_sum, FLOPs, cache misses).
//
// This pins down the whole class of mid-measurement accounting bugs (work
// charged outside its phase, double-counted deltas, phase snapshots taken
// mid-kernel) that previously had to be chased by hand.
#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "scenario_support.h"

namespace {

using namespace vecfd;
using testsupport::small_scenarios;

const sim::MachineConfig kMachines[] = {
    platforms::riscv_vec(), platforms::riscv_vec_scalar(),
    platforms::sx_aurora(), platforms::mn4_avx512()};

// Field-by-field comparison generated from the counter registry
// (sim::Counters::visit_pairs): a counter is covered by the conservation
// invariant the moment it enters the VECFD_COUNTERS X-macro, with nothing
// to keep in sync here.  Integer counters must tile exactly; the cycle
// accumulators (doubles) are compared to 1e-9 relative, since per-phase
// deltas re-sum floating-point cycle costs in a different association.
void expect_counters_equal(const sim::Counters& got, const sim::Counters& want,
                           const std::string& what) {
  sim::Counters::visit_pairs(
      got, want, [&](const sim::CounterInfo& info, const auto& g,
                     const auto& w) {
        if constexpr (std::is_floating_point_v<std::decay_t<decltype(g)>>) {
          EXPECT_NEAR(g, w, 1e-9 * (1.0 + w)) << what << ": " << info.name;
        } else {
          EXPECT_EQ(g, w) << what << ": " << info.name;
        }
      });
}

TEST(TimeLoopConservation, StepCyclesSumToRunCycles) {
  for (const miniapp::Scenario& s : small_scenarios()) {
    const fem::Mesh mesh(s.mesh);
    for (const auto& m : kMachines) {
      miniapp::TimeLoopConfig cfg;
      cfg.steps = 2;
      cfg.vector_size = 32;
      miniapp::TimeLoop loop(mesh, s, cfg);
      sim::Vpu vpu(m);
      const auto res = loop.run(vpu);
      const std::string what = s.name + std::string(" on ") + m.name;
      ASSERT_EQ(res.steps.size(), 2u) << what;
      double sum = 0.0;
      for (const miniapp::StepReport& st : res.steps) {
        EXPECT_GT(st.cycles, 0.0) << what << " t=" << st.time;
        sum += st.cycles;
      }
      EXPECT_NEAR(sum, res.cycles, 1e-9 * res.cycles) << what;
      EXPECT_NEAR(res.cycles, res.total.total_cycles(), 1e-9 * res.cycles)
          << what;
    }
  }
}

TEST(TimeLoopConservation, PhaseCountersSumToTotals) {
  for (const miniapp::Scenario& s : small_scenarios()) {
    const fem::Mesh mesh(s.mesh);
    for (const auto& m : kMachines) {
      miniapp::TimeLoopConfig cfg;
      cfg.steps = 2;
      cfg.vector_size = 32;
      miniapp::TimeLoop loop(mesh, s, cfg);
      sim::Vpu vpu(m);
      const auto res = loop.run(vpu);
      const std::string what = s.name + std::string(" on ") + m.name;
      ASSERT_EQ(res.phase.size(),
                static_cast<std::size_t>(miniapp::kNumInstrumentedPhases) + 1u)
          << what;
      sim::Counters sum;
      for (const sim::Counters& c : res.phase) sum += c;
      expect_counters_equal(sum, res.total, what);
      // all work is attributed to an instrumented phase: host-side setup
      // charges nothing, so phase 0 ("outside") stays empty
      EXPECT_EQ(res.phase[0].total_instrs(), 0u) << what;
      EXPECT_DOUBLE_EQ(res.phase[0].total_cycles(), 0.0) << what;
    }
  }
}

TEST(TimeLoopConservation, BothMomentumPathsConserve) {
  // The blocked and the per-component phase-9 paths must both satisfy the
  // conservation invariants (the blocked path reshuffles kernel order and
  // masks columns — none of that may leak cycles across phase boundaries).
  miniapp::Scenario s = miniapp::scenario_taylor_green();
  s.mesh.nx = s.mesh.ny = s.mesh.nz = 3;
  const fem::Mesh mesh(s.mesh);
  for (const bool blocked : {true, false}) {
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 2;
    cfg.vector_size = 24;
    cfg.blocked_momentum = blocked;
    miniapp::TimeLoop loop(mesh, s, cfg);
    sim::Vpu vpu(platforms::riscv_vec());
    const auto res = loop.run(vpu);
    const std::string what =
        blocked ? "blocked momentum" : "per-component momentum";
    sim::Counters sum;
    for (const sim::Counters& c : res.phase) sum += c;
    expect_counters_equal(sum, res.total, what);
    double step_sum = 0.0;
    for (const miniapp::StepReport& st : res.steps) step_sum += st.cycles;
    EXPECT_NEAR(step_sum, res.cycles, 1e-9 * res.cycles) << what;
  }
}

}  // namespace
