// Checkpoint/restart contract of miniapp/checkpoint.{h,cpp} (DESIGN.md §10):
//
//   * serialize_state/deserialize_state round-trip every registered field
//     of VECFD_TIMELOOP_STATE bit-exactly, counters included;
//   * save_checkpoint is atomic (`.tmp` + rename, no leftover temp file)
//     and load_checkpoint rejects missing files, foreign magic, version
//     skew, truncation and payload corruption BY NAME;
//   * timeloop_config_hash separates every knob the bit-identity contract
//     depends on, and TimeLoop::restore refuses a mismatched hash;
//   * the crash matrix: checkpoint a short cavity / taylor-green run at
//     EVERY step boundary, restart a fresh TimeLoop from each checkpoint,
//     and the resumed run is bit-identical to the uninterrupted run at the
//     same cadence — fields, residual histories, and every registered
//     counter (visit_pairs), across preconditioner rungs, shard counts,
//     formats and rcm;
//   * a completed-run checkpoint replays to the identical result;
//   * the checkpoint cadence changes only counters, never fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fem/mesh.h"
#include "miniapp/checkpoint.h"
#include "miniapp/driver.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "sim/vpu.h"

namespace {

using namespace vecfd;
using miniapp::TimeLoopCheckpoint;

/// Fresh per-test scratch path under the system temp dir.
std::string scratch_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "vecfd_ckpt_test";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

TimeLoopCheckpoint sample_checkpoint() {
  TimeLoopCheckpoint c;
  c.config_hash = 0x1234'5678'9abc'def0ULL;
  c.next_step = 2;
  c.time = 0.25;
  c.unknowns = {1.0, -2.5, 3.25, 0.0, 1e-300};
  c.unknowns_old = {0.5, 2.0, -1.125, 4.0, -0.0};
  miniapp::StepReport s;
  s.time = 0.125;
  s.momentum[0].converged = true;
  s.momentum[0].iterations = 2;
  s.momentum[0].history = {1.0, 0.5, 1e-12};
  s.momentum[0].residual = 1e-12;
  // deserialize_state re-runs the solver::checked() exit gate, so every
  // synthetic report must satisfy history.size()==iterations+1 and
  // history.back()==residual.
  s.momentum[1].history = {1.0};
  s.momentum[1].residual = 1.0;
  s.momentum[2].history = {1.0};
  s.momentum[2].residual = 1.0;
  s.pressure.converged = false;
  s.pressure.iterations = 1;
  s.pressure.history = {1.0, 0.75};
  s.pressure.residual = 0.75;
  s.pressure.failure = "injected solver breakdown (fault plan)";
  s.div_before = 0.5;
  s.div_after = 0.01;
  s.cycles = 1234.0;
  c.step_reports = {s, s};
  c.total_counters.visit([](const sim::CounterInfo&, auto& v) { v += 7; });
  c.phase_counters.resize(
      static_cast<std::size_t>(miniapp::kNumInstrumentedPhases) + 1);
  c.phase_counters[1].visit([](const sim::CounterInfo&, auto& v) { v += 3; });
  c.all_converged = false;
  c.pressure_makespan_cycles = 987.5;
  return c;
}

void expect_counters_equal(const sim::Counters& a, const sim::Counters& b,
                           const char* what) {
  sim::Counters::visit_pairs(
      a, b, [&](const sim::CounterInfo& info, const auto& x, const auto& y) {
        EXPECT_EQ(x, y) << what << ": counter " << info.name;
      });
}

void expect_report_equal(const solver::SolveReport& a,
                         const solver::SolveReport& b, const char* what) {
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.residual, b.residual) << what;
  EXPECT_EQ(a.history, b.history) << what;
  EXPECT_EQ(a.failure, b.failure) << what;
}

void expect_checkpoint_equal(const TimeLoopCheckpoint& a,
                             const TimeLoopCheckpoint& b) {
  EXPECT_EQ(a.config_hash, b.config_hash);
  EXPECT_EQ(a.next_step, b.next_step);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.unknowns, b.unknowns);
  EXPECT_EQ(a.unknowns_old, b.unknowns_old);
  ASSERT_EQ(a.step_reports.size(), b.step_reports.size());
  for (std::size_t i = 0; i < a.step_reports.size(); ++i) {
    const auto& sa = a.step_reports[i];
    const auto& sb = b.step_reports[i];
    EXPECT_EQ(sa.time, sb.time);
    for (int d = 0; d < fem::kDim; ++d) {
      expect_report_equal(sa.momentum[static_cast<std::size_t>(d)],
                          sb.momentum[static_cast<std::size_t>(d)],
                          "momentum");
    }
    expect_report_equal(sa.pressure, sb.pressure, "pressure");
    EXPECT_EQ(sa.div_before, sb.div_before);
    EXPECT_EQ(sa.div_after, sb.div_after);
    EXPECT_EQ(sa.cycles, sb.cycles);
  }
  expect_counters_equal(a.total_counters, b.total_counters, "totals");
  ASSERT_EQ(a.phase_counters.size(), b.phase_counters.size());
  for (std::size_t p = 0; p < a.phase_counters.size(); ++p) {
    expect_counters_equal(a.phase_counters[p], b.phase_counters[p], "phase");
  }
  EXPECT_EQ(a.all_converged, b.all_converged);
  EXPECT_EQ(a.pressure_makespan_cycles, b.pressure_makespan_cycles);
}

TEST(CheckpointFormat, Crc32KnownVector) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(miniapp::crc32(msg, sizeof msg), 0xCBF43926u);
  EXPECT_EQ(miniapp::crc32(nullptr, 0), 0u);
}

TEST(CheckpointFormat, SerializeRoundTrip) {
  const TimeLoopCheckpoint c = sample_checkpoint();
  const auto buf = miniapp::serialize_state(c);
  expect_checkpoint_equal(miniapp::deserialize_state(buf), c);
}

TEST(CheckpointFormat, DeserializeRejectsTruncation) {
  const auto buf = miniapp::serialize_state(sample_checkpoint());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 buf.size() / 2, buf.size() - 1}) {
    const std::vector<std::uint8_t> cut(buf.begin(),
                                        buf.begin() + static_cast<long>(keep));
    EXPECT_THROW(miniapp::deserialize_state(cut), std::runtime_error)
        << "kept " << keep << " of " << buf.size() << " bytes";
  }
}

TEST(CheckpointFormat, DeserializeRejectsTrailingBytes) {
  auto buf = miniapp::serialize_state(sample_checkpoint());
  buf.push_back(0);
  EXPECT_THROW(miniapp::deserialize_state(buf), std::runtime_error);
}

TEST(CheckpointFile, SaveLoadRoundTripIsAtomic) {
  const std::string path = scratch_path("roundtrip.ckpt");
  const TimeLoopCheckpoint c = sample_checkpoint();
  miniapp::save_checkpoint(path, c);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "atomic save must not leave a .tmp behind";
  expect_checkpoint_equal(miniapp::load_checkpoint(path), c);
  // Overwrite in place (the steady-state of the epoch protocol).
  TimeLoopCheckpoint c2 = c;
  c2.next_step = 3;
  miniapp::save_checkpoint(path, c2);
  EXPECT_EQ(miniapp::load_checkpoint(path).next_step, 3);
}

TEST(CheckpointFile, LoadRejectsMissingFile) {
  try {
    miniapp::load_checkpoint(scratch_path("no_such.ckpt"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no_such.ckpt"), std::string::npos);
  }
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

std::vector<char> read_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<char> bytes;
  int ch;
  while ((ch = std::fgetc(f)) != EOF) bytes.push_back(static_cast<char>(ch));
  std::fclose(f);
  return bytes;
}

TEST(CheckpointFile, LoadRejectsForeignMagicVersionAndCorruption) {
  const std::string path = scratch_path("tamper.ckpt");
  miniapp::save_checkpoint(path, sample_checkpoint());
  const std::vector<char> good = read_bytes(path);

  auto expect_error_containing = [&](const std::vector<char>& bytes,
                                     const char* needle) {
    write_bytes(path, bytes);
    try {
      miniapp::load_checkpoint(path);
      FAIL() << "expected failure mentioning '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual: " << e.what();
    }
  };

  std::vector<char> bad_magic = good;
  bad_magic[0] = 'X';
  expect_error_containing(bad_magic, "magic");

  std::vector<char> bad_version = good;
  bad_version[7] = static_cast<char>(miniapp::kCheckpointVersion + 1);
  expect_error_containing(bad_version, "version");

  std::vector<char> truncated(good.begin(), good.end() - 5);
  expect_error_containing(truncated, "truncated");

  std::vector<char> corrupt = good;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x40);
  expect_error_containing(corrupt, "CRC");
}

// ---------------------------------------------------------------------------
// config hash
// ---------------------------------------------------------------------------

struct HashFixture {
  miniapp::Scenario scen;
  fem::Mesh mesh;
  miniapp::TimeLoopConfig cfg;
  sim::MachineConfig machine = platforms::riscv_vec();

  HashFixture() : scen(miniapp::scenario_by_name("cavity")), mesh([&] {
    scen.mesh.nx = 4;
    scen.mesh.ny = 4;
    scen.mesh.nz = 3;
    return fem::Mesh(scen.mesh);
  }()) {
    cfg.steps = 3;
  }

  std::uint64_t hash() const {
    return miniapp::timeloop_config_hash(scen.name, mesh, cfg, machine);
  }
};

TEST(ConfigHash, SeparatesEveryKnob) {
  HashFixture base;
  const std::uint64_t h0 = base.hash();
  EXPECT_EQ(h0, HashFixture().hash()) << "hash must be deterministic";

  {
    HashFixture f;
    f.cfg.steps = 4;
    EXPECT_NE(f.hash(), h0) << "steps";
  }
  {
    HashFixture f;
    f.cfg.shards = 4;
    EXPECT_NE(f.hash(), h0) << "shards";
  }
  {
    HashFixture f;
    f.cfg.precond = solver::PrecondKind::kCheby;
    EXPECT_NE(f.hash(), h0) << "precond";
  }
  {
    HashFixture f;
    f.cfg.format = solver::SpmvFormat::kSell;
    EXPECT_NE(f.hash(), h0) << "format";
  }
  {
    HashFixture f;
    f.cfg.rcm_renumber = true;
    EXPECT_NE(f.hash(), h0) << "rcm";
  }
  {
    HashFixture f;
    // The cadence changes the counter stream (epoch flushes), so it is
    // part of the contract the hash protects.
    f.cfg.checkpoint_every = 1;
    EXPECT_NE(f.hash(), h0) << "checkpoint_every";
  }
  {
    HashFixture f;
    f.machine = platforms::sx_aurora();
    EXPECT_NE(f.hash(), h0) << "machine";
  }
  {
    HashFixture f;
    f.scen.name = "cavity2";
    EXPECT_NE(f.hash(), h0) << "scenario name";
  }
}

TEST(ConfigHash, RestoreRefusesMismatch) {
  HashFixture f;
  f.cfg.checkpoint_every = 1;
  miniapp::TimeLoop loop(f.mesh, f.scen, f.cfg);
  std::vector<TimeLoopCheckpoint> ckpts;
  loop.set_checkpoint_sink(f.hash(), [&](const TimeLoopCheckpoint& c) {
    ckpts.push_back(c);
  });
  sim::Vpu vpu(f.machine);
  (void)loop.run(vpu);
  ASSERT_FALSE(ckpts.empty());

  miniapp::TimeLoop fresh(f.mesh, f.scen, f.cfg);
  EXPECT_THROW(fresh.restore(ckpts.front(), f.hash() ^ 1), std::runtime_error);
  EXPECT_NO_THROW(fresh.restore(ckpts.front(), f.hash()));
}

// ---------------------------------------------------------------------------
// crash matrix: bit-identical restart at every step boundary
// ---------------------------------------------------------------------------

struct MatrixConfig {
  const char* scenario;
  solver::PrecondKind precond;
  int shards;
  solver::SpmvFormat format;
  bool rcm;
};

constexpr MatrixConfig kMatrix[] = {
    {"cavity", solver::PrecondKind::kJacobi, 1, solver::SpmvFormat::kEll,
     false},
    {"cavity", solver::PrecondKind::kCheby, 4, solver::SpmvFormat::kSell,
     true},
    {"cavity", solver::PrecondKind::kDeflate, 1, solver::SpmvFormat::kEll,
     false},
    {"taylor-green", solver::PrecondKind::kJacobi, 4,
     solver::SpmvFormat::kSell, false},
    {"taylor-green", solver::PrecondKind::kDeflate, 4,
     solver::SpmvFormat::kEll, true},
};

struct FullRun {
  miniapp::TimeLoopResult result;
  std::vector<double> unknowns;
  std::vector<double> unknowns_old;
  std::vector<TimeLoopCheckpoint> checkpoints;
};

miniapp::Scenario matrix_scenario(const MatrixConfig& m) {
  miniapp::Scenario scen = miniapp::scenario_by_name(m.scenario);
  scen.mesh.nx = 4;
  scen.mesh.ny = 4;
  scen.mesh.nz = 3;
  return scen;
}

miniapp::TimeLoopConfig matrix_config(const MatrixConfig& m, int steps,
                                      int cadence) {
  miniapp::TimeLoopConfig cfg;
  cfg.steps = steps;
  cfg.precond = m.precond;
  cfg.shards = m.shards;
  cfg.format = m.format;
  cfg.rcm_renumber = m.rcm;
  cfg.checkpoint_every = cadence;
  return cfg;
}

FullRun run_with_checkpoints(const fem::Mesh& mesh,
                             const miniapp::Scenario& scen,
                             const miniapp::TimeLoopConfig& cfg,
                             const sim::MachineConfig& machine,
                             std::uint64_t hash,
                             const TimeLoopCheckpoint* resume_from) {
  miniapp::TimeLoop loop(mesh, scen, cfg);
  if (resume_from != nullptr) loop.restore(*resume_from, hash);
  FullRun full;
  loop.set_checkpoint_sink(hash, [&](const TimeLoopCheckpoint& c) {
    full.checkpoints.push_back(c);
  });
  sim::Vpu vpu(machine);
  full.result = loop.run(vpu);
  full.unknowns.assign(loop.state().unknowns().begin(),
                       loop.state().unknowns().end());
  full.unknowns_old.assign(loop.state().unknowns_old().begin(),
                           loop.state().unknowns_old().end());
  return full;
}

void expect_run_identical(const FullRun& a, const FullRun& b,
                          const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.unknowns, b.unknowns) << "final fields must be bit-identical";
  EXPECT_EQ(a.unknowns_old, b.unknowns_old);
  EXPECT_EQ(a.result.all_converged, b.result.all_converged);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.pressure_makespan_cycles,
            b.result.pressure_makespan_cycles);
  ASSERT_EQ(a.result.steps.size(), b.result.steps.size());
  for (std::size_t i = 0; i < a.result.steps.size(); ++i) {
    const auto& sa = a.result.steps[i];
    const auto& sb = b.result.steps[i];
    EXPECT_EQ(sa.time, sb.time);
    for (int d = 0; d < fem::kDim; ++d) {
      expect_report_equal(sa.momentum[static_cast<std::size_t>(d)],
                          sb.momentum[static_cast<std::size_t>(d)],
                          "momentum");
    }
    expect_report_equal(sa.pressure, sb.pressure, "pressure");
    EXPECT_EQ(sa.div_before, sb.div_before);
    EXPECT_EQ(sa.div_after, sb.div_after);
    EXPECT_EQ(sa.cycles, sb.cycles) << "step " << i;
  }
  expect_counters_equal(a.result.total, b.result.total, "run totals");
  ASSERT_EQ(a.result.phase.size(), b.result.phase.size());
  for (std::size_t p = 0; p < a.result.phase.size(); ++p) {
    expect_counters_equal(a.result.phase[p], b.result.phase[p], "phase");
  }
}

TEST(CrashMatrix, RestartIsBitIdenticalAtEveryBoundary) {
  constexpr int kSteps = 3;
  const sim::MachineConfig machine = platforms::riscv_vec();
  for (const MatrixConfig& m : kMatrix) {
    const miniapp::Scenario scen = matrix_scenario(m);
    const fem::Mesh mesh(scen.mesh);
    const miniapp::TimeLoopConfig cfg = matrix_config(m, kSteps, 1);
    const std::uint64_t hash =
        miniapp::timeloop_config_hash(scen.name, mesh, cfg, machine);
    const std::string label = std::string(m.scenario) + "/" +
                              solver::to_string(m.precond) + "/shards=" +
                              std::to_string(m.shards);

    const FullRun full =
        run_with_checkpoints(mesh, scen, cfg, machine, hash, nullptr);
    ASSERT_EQ(full.checkpoints.size(), static_cast<std::size_t>(kSteps))
        << label << ": cadence 1 checkpoints every boundary incl. the last";

    // Crash after step k, restart from the k-th checkpoint: bit-identical.
    for (int k = 1; k < kSteps; ++k) {
      const FullRun resumed = run_with_checkpoints(
          mesh, scen, cfg, machine, hash,
          &full.checkpoints[static_cast<std::size_t>(k - 1)]);
      expect_run_identical(full, resumed,
                           label + " restart@" + std::to_string(k));
      // The resumed run re-emits the remaining boundaries identically.
      ASSERT_EQ(resumed.checkpoints.size(),
                static_cast<std::size_t>(kSteps - k));
      expect_checkpoint_equal(resumed.checkpoints.back(),
                              full.checkpoints.back());
    }

    // A completed checkpoint replays to the identical result at zero cost.
    const FullRun replay = run_with_checkpoints(
        mesh, scen, cfg, machine, hash, &full.checkpoints.back());
    expect_run_identical(full, replay, label + " replay");
  }
}

TEST(CrashMatrix, CadenceChangesCountersNeverFields) {
  const MatrixConfig m = kMatrix[1];  // cheby, 4 shards, sell, rcm
  const sim::MachineConfig machine = platforms::riscv_vec();
  const miniapp::Scenario scen = matrix_scenario(m);
  const fem::Mesh mesh(scen.mesh);

  FullRun runs[3];
  const int cadences[3] = {0, 1, 2};
  for (int i = 0; i < 3; ++i) {
    const miniapp::TimeLoopConfig cfg = matrix_config(m, 3, cadences[i]);
    const std::uint64_t hash =
        miniapp::timeloop_config_hash(scen.name, mesh, cfg, machine);
    runs[i] = run_with_checkpoints(mesh, scen, cfg, machine, hash, nullptr);
  }
  // checkpoint_every=0 writes nothing; every cadence produces the same
  // fields and residual histories (the numerics never see the cache).
  EXPECT_TRUE(runs[0].checkpoints.empty());
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(runs[0].unknowns, runs[i].unknowns)
        << "cadence " << cadences[i] << " changed the fields";
    ASSERT_EQ(runs[0].result.steps.size(), runs[i].result.steps.size());
    for (std::size_t s = 0; s < runs[0].result.steps.size(); ++s) {
      EXPECT_EQ(runs[0].result.steps[s].pressure.history,
                runs[i].result.steps[s].pressure.history);
    }
  }
  // The epoch flush is real: a cold restart each step costs extra memory
  // cycles, so cadence 1 differs from cadence 0 in counters.
  EXPECT_NE(runs[0].result.cycles, runs[1].result.cycles)
      << "epoch flushes must be visible in the cycle counters";
}

}  // namespace
