// P-independence of the sharded pressure solve (DESIGN.md §9): the
// ShardedCg contract demands fields, residual histories and convergence
// outcomes BIT-identical to the single-Vpu path for every shard count —
// sharding redistributes work and adds halo counters, never numerics.
//
// Covered here:
//   * solver::ShardedCg vs solver::vcg on the same pinned Laplacian,
//     bitwise (solution, history, iterations, residual), incl. b = 0;
//   * miniapp::TimeLoop runs at P ∈ {1, 2, 4, 8}: identical fields and
//     pressure histories, halo counters live iff P > 1 on the kJacobi
//     vector path, silent legacy fallback (zero halo counters, identical
//     results) for non-Jacobi rungs and scalar machines;
//   * counter conservation with shards: per-step cycle deltas still tile
//     the run and per-phase counters still sum to the totals — the shard
//     Vpus' work (incl. the halo counters, which land in phase 10) is
//     folded into the same accounting as the coordinator's;
//   * sim::HaloExchange unit semantics: values copied bit-for-bit, the
//     three halo counters priced on the documented sides;
//   * the shard-aware core::recommend_format overload and the halo-bound
//     Advisor finding.
#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>
#include <vector>

#include "core/advisor.h"
#include "fem/mesh.h"
#include "fem/partition.h"
#include "fem/projection.h"
#include "fem/shape.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "sim/halo_exchange.h"
#include "sim/vpu.h"
#include "solver/sharding.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;

// ---------------------------------------------------------------------------
// ShardedCg vs vcg, direct
// ---------------------------------------------------------------------------

struct PinnedPoisson {
  explicit PinnedPoisson(int n) : mesh({.nx = n, .ny = n, .nz = n}) {
    const fem::ShapeTable shape;
    a = fem::assemble_pressure_laplacian(mesh, shape);
    const std::vector<int> pins = {0};
    fem::pin_dirichlet(a, pins);
    b.assign(static_cast<std::size_t>(mesh.num_nodes()), 0.0);
    for (std::size_t i = 1; i < b.size(); ++i) {
      b[i] = 1.0 + 0.25 * std::sin(static_cast<double>(i));
    }
  }
  fem::Mesh mesh;
  solver::CsrMatrix a;
  std::vector<double> b;
};

void expect_reports_identical(const solver::SolveReport& got,
                              const solver::SolveReport& want,
                              const std::string& what) {
  EXPECT_EQ(got.converged, want.converged) << what;
  EXPECT_EQ(got.iterations, want.iterations) << what;
  EXPECT_EQ(got.residual, want.residual) << what;  // bitwise
  EXPECT_EQ(got.history, want.history) << what;    // bitwise, every entry
  EXPECT_EQ(got.failure, want.failure) << what;
}

TEST(ShardedCg, BitIdenticalToVcg) {
  PinnedPoisson sys(4);
  const sim::MachineConfig machine = platforms::riscv_vec();
  const int vs = 64;
  const int quantum = solver::solve_effective_strip(vs, machine);
  const int n = sys.mesh.num_nodes();

  sim::Vpu ref_vpu(machine);
  std::vector<double> x_ref(static_cast<std::size_t>(n), 0.0);
  const solver::SolveOptions opts;
  solver::SolveReport ref =
      solver::vcg(ref_vpu, sys.a, sys.b, x_ref, opts, vs);

  for (const int shards : {2, 4, 8}) {
    fem::MeshPartition part = fem::partition_mesh(sys.mesh, shards, quantum);
    solver::ShardedCg scg(std::move(part.plan), sys.a, machine, vs,
                          miniapp::kPressurePhase);
    sim::Vpu coord(machine);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const solver::SolveReport rep = scg.solve(coord, sys.b, x, opts);
    const std::string what = "P=" + std::to_string(shards);
    expect_reports_identical(rep, ref, what);
    EXPECT_EQ(x, x_ref) << what;  // bitwise, every unknown
    EXPECT_GT(scg.makespan_cycles(), 0.0) << what;
    // The distributed work really ran on the shard Vpus.
    std::uint64_t halo = 0;
    for (int p = 0; p < shards; ++p) {
      halo += scg.shard_vpu(p).counters().halo_lines_sent +
              scg.shard_vpu(p).counters().halo_lines_recv;
    }
    EXPECT_GT(halo, 0u) << what;
  }
}

TEST(ShardedCg, BitIdenticalToVcgOnZeroRhs) {
  PinnedPoisson sys(3);
  const sim::MachineConfig machine = platforms::riscv_vec();
  const int vs = 64;
  const int quantum = solver::solve_effective_strip(vs, machine);
  const int n = sys.mesh.num_nodes();
  const std::vector<double> zero_b(static_cast<std::size_t>(n), 0.0);

  sim::Vpu ref_vpu(machine);
  std::vector<double> x_ref(static_cast<std::size_t>(n), 0.0);
  const solver::SolveOptions opts;
  solver::SolveReport ref =
      solver::vcg(ref_vpu, sys.a, zero_b, x_ref, opts, vs);

  fem::MeshPartition part = fem::partition_mesh(sys.mesh, 2, quantum);
  solver::ShardedCg scg(std::move(part.plan), sys.a, machine, vs,
                        miniapp::kPressurePhase);
  sim::Vpu coord(machine);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const solver::SolveReport rep = scg.solve(coord, zero_b, x, opts);
  expect_reports_identical(rep, ref, "zero rhs");
  EXPECT_EQ(x, x_ref);
}

TEST(ShardedCg, RejectsScalarMachineAndZeroDiagonal) {
  PinnedPoisson sys(3);
  const int vs = 64;
  {
    const sim::MachineConfig scalar = platforms::riscv_vec_scalar();
    fem::MeshPartition part = fem::partition_mesh(sys.mesh, 2, vs);
    EXPECT_THROW(solver::ShardedCg(std::move(part.plan), sys.a, scalar, vs,
                                   miniapp::kPressurePhase),
                 std::invalid_argument);
  }
  {
    // A structurally zero diagonal must be detected in the constructor
    // (std::runtime_error), BEFORE any shard state exists — the TimeLoop
    // relies on this to fall back to the legacy instrumented-failure path.
    const sim::MachineConfig machine = platforms::riscv_vec();
    const int quantum = solver::solve_effective_strip(vs, machine);
    solver::CsrMatrix bad = sys.a;
    const auto cols = bad.row_cols(1);
    auto vals = bad.row_vals(1);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == 1) vals[k] = 0.0;
    }
    fem::MeshPartition part = fem::partition_mesh(sys.mesh, 2, quantum);
    EXPECT_THROW(solver::ShardedCg(std::move(part.plan), bad, machine, vs,
                                   miniapp::kPressurePhase),
                 std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// TimeLoop P-independence
// ---------------------------------------------------------------------------

struct LoopRun {
  std::vector<double> fields;           ///< final unknowns
  std::vector<double> pressure_history; ///< concatenated across steps
  std::uint64_t halo_lines = 0;
  std::uint64_t halo_messages = 0;
  double makespan = 0.0;
  miniapp::TimeLoopResult res;
};

LoopRun run_loop(const sim::MachineConfig& machine, int shards,
                 solver::PrecondKind precond = solver::PrecondKind::kJacobi,
                 bool rcm = false) {
  const miniapp::Scenario scen = miniapp::scenario_cavity();
  const fem::Mesh mesh(scen.mesh);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = 2;
  cfg.vector_size = 64;
  cfg.shards = shards;
  cfg.precond = precond;
  cfg.rcm_renumber = rcm;
  miniapp::TimeLoop loop(mesh, scen, cfg);
  sim::Vpu vpu(machine);
  LoopRun r;
  r.res = loop.run(vpu);
  const auto unk = loop.state().unknowns();
  r.fields.assign(unk.begin(), unk.end());
  for (const auto& step : r.res.steps) {
    r.pressure_history.insert(r.pressure_history.end(),
                              step.pressure.history.begin(),
                              step.pressure.history.end());
  }
  const sim::Counters& p10 = r.res.phase[miniapp::kPressurePhase];
  r.halo_lines = p10.halo_lines_sent + p10.halo_lines_recv;
  r.halo_messages = p10.halo_messages;
  r.makespan = r.res.pressure_makespan_cycles;
  return r;
}

TEST(TimeLoopSharding, FieldsAndHistoriesIndependentOfShardCount) {
  const sim::MachineConfig machine = platforms::riscv_vec();
  const LoopRun ref = run_loop(machine, 1);
  EXPECT_EQ(ref.halo_lines, 0u);
  EXPECT_EQ(ref.halo_messages, 0u);
  EXPECT_GT(ref.makespan, 0.0);  // legacy path: phase-10 cycles
  for (const int shards : {2, 4, 8}) {
    const LoopRun r = run_loop(machine, shards);
    const std::string what = "P=" + std::to_string(shards);
    EXPECT_EQ(r.fields, ref.fields) << what;                      // bitwise
    EXPECT_EQ(r.pressure_history, ref.pressure_history) << what;  // bitwise
    EXPECT_GT(r.halo_lines, 0u) << what;
    EXPECT_GT(r.halo_messages, 0u) << what;
    EXPECT_GT(r.makespan, 0.0) << what;
    EXPECT_LT(r.makespan, ref.makespan) << what << ": distributing the "
        "pressure solve must shorten its BSP critical path";
  }
}

TEST(TimeLoopSharding, ComposesWithRcm) {
  const sim::MachineConfig machine = platforms::riscv_vec();
  const LoopRun ref = run_loop(machine, 1, solver::PrecondKind::kJacobi,
                               /*rcm=*/true);
  const LoopRun r = run_loop(machine, 4, solver::PrecondKind::kJacobi,
                             /*rcm=*/true);
  EXPECT_EQ(r.fields, ref.fields);
  EXPECT_EQ(r.pressure_history, ref.pressure_history);
  EXPECT_GT(r.halo_lines, 0u);
}

TEST(TimeLoopSharding, NonJacobiRungsFallBackToLegacyPath) {
  // The sharded replay covers the kJacobi rung; the higher rungs take the
  // documented silent fallback — identical results, no halo counters.
  const sim::MachineConfig machine = platforms::riscv_vec();
  for (const auto kind :
       {solver::PrecondKind::kCheby, solver::PrecondKind::kDeflate}) {
    const LoopRun ref = run_loop(machine, 1, kind);
    const LoopRun r = run_loop(machine, 4, kind);
    const std::string what = to_string(kind);
    EXPECT_EQ(r.fields, ref.fields) << what;
    EXPECT_EQ(r.pressure_history, ref.pressure_history) << what;
    EXPECT_EQ(r.halo_lines, 0u) << what;
    EXPECT_EQ(r.halo_messages, 0u) << what;
  }
}

TEST(TimeLoopSharding, ScalarMachineFallsBackToLegacyPath) {
  const sim::MachineConfig machine = platforms::riscv_vec_scalar();
  const LoopRun ref = run_loop(machine, 1);
  const LoopRun r = run_loop(machine, 4);
  EXPECT_EQ(r.fields, ref.fields);
  EXPECT_EQ(r.pressure_history, ref.pressure_history);
  EXPECT_EQ(r.halo_lines, 0u);
}

TEST(TimeLoopSharding, CountersStillConserveWithShards) {
  // The conservation invariants of test_time_loop_conservation, re-checked
  // on the sharded path: shard-Vpu work (incl. halo counters) must fold
  // into the same per-step / per-phase accounting as the coordinator's.
  const sim::MachineConfig machine = platforms::riscv_vec();
  const LoopRun r = run_loop(machine, 4);
  const miniapp::TimeLoopResult& res = r.res;

  double step_sum = 0.0;
  for (const auto& st : res.steps) step_sum += st.cycles;
  EXPECT_NEAR(step_sum, res.cycles, 1e-9 * res.cycles);
  EXPECT_NEAR(res.cycles, res.total.total_cycles(), 1e-9 * res.cycles);

  sim::Counters phase_sum;
  for (const sim::Counters& pc : res.phase) phase_sum += pc;
  sim::Counters::visit_pairs(
      phase_sum, res.total,
      [&](const sim::CounterInfo& info, const auto& g, const auto& w) {
        if constexpr (std::is_floating_point_v<std::decay_t<decltype(g)>>) {
          EXPECT_NEAR(g, w, 1e-9 * (1.0 + w)) << info.name;
        } else {
          EXPECT_EQ(g, w) << info.name;
        }
      });
  // Every solve on every path reports success on this well-posed problem.
  for (const auto& st : res.steps) {
    EXPECT_TRUE(st.pressure.failure.empty());
    EXPECT_TRUE(st.pressure.converged);
  }
}

// ---------------------------------------------------------------------------
// HaloExchange unit semantics
// ---------------------------------------------------------------------------

TEST(HaloExchange, CopiesValuesAndPricesTheDocumentedSides) {
  // Two shards; shard 1's three ghost slots read owned entries {0, 1, 8}
  // of shard 0.  At 64-byte lines (8 doubles) those indices touch 2 lines
  // on the send side; the 3 contiguous ghost slots start at local index 4
  // and land in 1 line on the receive side.
  std::vector<std::vector<sim::HaloBlock>> plan(2);
  plan[1].push_back(sim::HaloBlock{.src_shard = 0,
                                   .dst_begin = 4,
                                   .src_local = {0, 1, 8}});
  const sim::HaloExchange halo(std::move(plan), 64);

  const std::int32_t idx[] = {0, 1, 8};
  EXPECT_EQ(halo.lines_of(idx), 2u);

  const sim::MachineConfig machine = platforms::riscv_vec();
  sim::Vpu v0(machine), v1(machine);
  std::vector<double> loc0 = {10.0, 11.0, 12.0, 13.0, 14.0,
                              15.0, 16.0, 17.0, 18.0};
  std::vector<double> loc1 = {0.0, 0.0, 0.0, 0.0, -1.0, -1.0, -1.0};
  sim::Vpu* vpus[] = {&v0, &v1};
  double* locals[] = {loc0.data(), loc1.data()};
  halo.exchange(vpus, locals);

  EXPECT_EQ(loc1[4], 10.0);
  EXPECT_EQ(loc1[5], 11.0);
  EXPECT_EQ(loc1[6], 18.0);
  EXPECT_EQ(loc1[0], 0.0);  // owned prefix untouched

  EXPECT_EQ(v0.counters().halo_lines_sent, 2u);   // owner pays the reads
  EXPECT_EQ(v0.counters().halo_lines_recv, 0u);
  EXPECT_EQ(v0.counters().halo_messages, 0u);
  EXPECT_EQ(v1.counters().halo_lines_sent, 0u);
  EXPECT_EQ(v1.counters().halo_lines_recv, 1u);   // receiver pays the write
  EXPECT_EQ(v1.counters().halo_messages, 1u);     // one (recv, owner) pair
}

// ---------------------------------------------------------------------------
// Advisor integration
// ---------------------------------------------------------------------------

TEST(ShardAdvisor, RecommendFormatScalesWithLocalRows) {
  const sim::MachineConfig vec = platforms::riscv_vec();
  ASSERT_GE(vec.vlmax, 64);
  // Plenty of local rows: the unsharded recommendation (SELL) stands.
  EXPECT_EQ(core::recommend_format(vec, 100 * vec.vlmax),
            core::recommend_format(vec));
  EXPECT_EQ(core::recommend_format(vec, 4 * vec.vlmax),
            solver::SpmvFormat::kSell);
  // Below ~4·vlmax rows per shard the slices cannot fill: ELL wins.
  EXPECT_EQ(core::recommend_format(vec, 4 * vec.vlmax - 1),
            solver::SpmvFormat::kEll);
  // Scalar machines stream the host CSR regardless of sharding.
  EXPECT_EQ(core::recommend_format(platforms::riscv_vec_scalar(), 10),
            solver::SpmvFormat::kCsrHost);
}

TEST(ShardAdvisor, FlagsHaloBoundPhase) {
  core::Measurement m;
  m.machine = platforms::riscv_vec();
  m.total_cycles = 100.0;
  const int p = miniapp::kPressurePhase;
  sim::Counters& pc = m.phase[static_cast<std::size_t>(p)];
  pc.vector_cycles = 50.0;  // 50% share: well above the 2% floor
  pc.gather_lines_touched = 1000;
  pc.halo_lines_sent = 150;
  pc.halo_lines_recv = 151;  // ratio 0.301 > 0.2
  // Healthy vectorization so the halo check is reached.
  m.phase_metrics[static_cast<std::size_t>(p)].mv = 0.5;
  m.phase_metrics[static_cast<std::size_t>(p)].avl =
      static_cast<double>(m.machine.vlmax);

  const auto findings = core::advise(m);
  const core::Finding* f = nullptr;
  for (const auto& cand : findings) {
    if (cand.kind == core::FindingKind::kHaloBound) f = &cand;
  }
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->phase, p);
  EXPECT_GT(f->severity, 0.1);
  EXPECT_NE(f->message.find("--shards"), std::string::npos);

  // Under the 20% threshold the finding disappears.
  pc.halo_lines_sent = 50;
  pc.halo_lines_recv = 50;
  for (const auto& cand : core::advise(m)) {
    EXPECT_NE(cand.kind, core::FindingKind::kHaloBound);
  }
}

}  // namespace
