// Verification of the transient semi-implicit time loop (miniapp::TimeLoop).
//
// The Taylor–Green scenario has a closed-form Navier–Stokes solution, which
// turns the whole loop — assembly, momentum BiCGStab, pressure-Poisson CG,
// projection — into a verifiable computation: the L2 velocity error must
// shrink under mesh refinement, and every step's projected velocity must be
// (nearly) discretely divergence-free.  The remaining tests pin the
// instrumentation contract: phases 9–11 carry live counters on every
// platform, the scalar machine never issues a vector instruction, and the
// solve-phase AVL tracks min(VECTOR_SIZE, vlmax).
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"

namespace {

using namespace vecfd;

struct TgRun {
  double l2_error = 0.0;       ///< relative L2 velocity error vs analytic
  miniapp::TimeLoopResult res;
};

/// Run the Taylor–Green scenario on an nelem³ unit cube and measure the
/// final-time velocity error against the analytic solution.
TgRun run_taylor_green(int nelem, int steps, double dt, int vs = 64) {
  miniapp::Scenario s = miniapp::scenario_taylor_green();
  s.mesh.nx = s.mesh.ny = s.mesh.nz = nelem;
  s.physics.dt = dt;
  const fem::Mesh mesh(s.mesh);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = steps;
  cfg.vector_size = vs;
  miniapp::TimeLoop loop(mesh, s, cfg);
  sim::Vpu vpu(platforms::riscv_vec());

  TgRun out;
  out.res = loop.run(vpu);
  double num = 0.0;
  double den = 0.0;
  const double t = loop.time();
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const auto e = s.analytic(mesh, n, t);
    for (int d = 0; d < fem::kDim; ++d) {
      const double diff = loop.state().velocity(n, d) - e[d];
      num += diff * diff;
      den += e[d] * e[d];
    }
  }
  out.l2_error = std::sqrt(num / den);
  return out;
}

TEST(TimeLoopTaylorGreen, ConvergesUnderMeshRefinement) {
  // Small dt so the O(h²) spatial error dominates the O(Δt) splitting
  // error; halving h must shrink the error by a clear factor (observed
  // ≈ 0.50 — the projection's lumped-mass gradient limits it above the
  // pure-interpolation 0.25).
  const TgRun coarse = run_taylor_green(4, 8, 0.0025);
  const TgRun fine = run_taylor_green(8, 8, 0.0025);
  ASSERT_TRUE(coarse.res.all_converged);
  ASSERT_TRUE(fine.res.all_converged);
  EXPECT_LT(coarse.l2_error, 1e-3);
  EXPECT_LT(fine.l2_error, 0.7 * coarse.l2_error)
      << "coarse=" << coarse.l2_error << " fine=" << fine.l2_error;
}

TEST(TimeLoopTaylorGreen, EveryStepIsNearlyDivergenceFree) {
  const TgRun run = run_taylor_green(4, 8, 0.0025);
  ASSERT_EQ(run.res.steps.size(), 8u);
  for (const miniapp::StepReport& st : run.res.steps) {
    // the projection must not amplify the divergence, and the projected
    // field must stay below tolerance (lumped-L2 norm of the weak
    // divergence; observed ≈ 1.5e-4 at this resolution)
    EXPECT_LE(st.div_after, st.div_before) << "t=" << st.time;
    EXPECT_LT(st.div_after, 1e-3) << "t=" << st.time;
  }
}

TEST(TimeLoopTaylorGreen, TighterTimeStepReducesError) {
  const TgRun big = run_taylor_green(6, 4, 0.01);    // T = 0.04
  const TgRun small = run_taylor_green(6, 16, 0.0025);
  ASSERT_TRUE(big.res.all_converged);
  ASSERT_TRUE(small.res.all_converged);
  EXPECT_LT(small.l2_error, 0.8 * big.l2_error)
      << "dt=0.01: " << big.l2_error << "  dt=0.0025: " << small.l2_error;
}

TEST(TimeLoop, Phases9To11CarryCountersOnEveryPlatform) {
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 3, .ny = 3, .nz = 3, .distortion = 0.05};
  const fem::Mesh mesh(s.mesh);
  const sim::MachineConfig machines[] = {
      platforms::riscv_vec(), platforms::riscv_vec_scalar(),
      platforms::sx_aurora(), platforms::mn4_avx512()};
  for (const auto& m : machines) {
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 2;
    cfg.vector_size = 32;
    miniapp::TimeLoop loop(mesh, s, cfg);
    sim::Vpu vpu(m);
    const auto res = loop.run(vpu);
    EXPECT_TRUE(res.all_converged) << m.name;
    ASSERT_EQ(static_cast<int>(res.phase.size()),
              miniapp::kNumInstrumentedPhases + 1);
    for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
      EXPECT_GT(res.phase[static_cast<std::size_t>(p)].total_cycles(), 0.0)
          << m.name << " phase " << p;
    }
    // phase shares account for every cycle (nothing leaks outside phases
    // except the uncounted host-side setup, which charges no Vpu cycles)
    double sum = 0.0;
    for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
      sum += res.phase[static_cast<std::size_t>(p)].total_cycles();
    }
    EXPECT_NEAR(sum, res.cycles, 1e-9 * res.cycles) << m.name;
    if (!m.vector_enabled) {
      EXPECT_EQ(res.total.vector_instrs(), 0u) << m.name;
    } else {
      EXPECT_GT(res.phase[miniapp::kSolvePhase].vmem_indexed_instrs, 0u)
          << m.name;  // the vgather SpMV reaches the momentum solve
      EXPECT_GT(res.phase[miniapp::kPressurePhase].vmem_indexed_instrs, 0u)
          << m.name;  // ...and the pressure solve
    }
  }
}

TEST(TimeLoop, SolvePhaseAvlTracksVectorSize) {
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 6, .ny = 6, .nz = 6, .distortion = 0.05};
  const fem::Mesh mesh(s.mesh);
  const int vlmax = platforms::riscv_vec().vlmax;

  auto solve_avl = [&](int vs) {
    miniapp::TimeLoopConfig cfg;
    cfg.steps = 1;
    cfg.vector_size = vs;
    miniapp::TimeLoop loop(mesh, s, cfg);
    sim::Vpu vpu(platforms::riscv_vec());
    const auto res = loop.run(vpu);
    return metrics::compute(res.phase[miniapp::kSolvePhase], vlmax).avl;
  };

  const double avl_short = solve_avl(16);
  const double avl_long = solve_avl(240);
  EXPECT_NEAR(avl_short, 16.0, 2.0);
  EXPECT_GT(avl_long, 5.0 * avl_short);
}

TEST(TimeLoop, CavityRespectsLidAndWallConditions) {
  miniapp::Scenario s = miniapp::scenario_cavity();
  s.mesh = {.nx = 4, .ny = 4, .nz = 4, .distortion = 0.05};
  const fem::Mesh mesh(s.mesh);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = 2;
  cfg.vector_size = 32;
  miniapp::TimeLoop loop(mesh, s, cfg);
  sim::Vpu vpu(platforms::riscv_vec());
  const auto res = loop.run(vpu);
  ASSERT_TRUE(res.all_converged);

  double interior_motion = 0.0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const auto p = mesh.node(n);
    if (mesh.is_boundary_node(n)) {
      const bool lid = std::abs(p[2] - mesh.config().lz) < 1e-9;
      EXPECT_DOUBLE_EQ(loop.state().velocity(n, 0), lid ? 1.0 : 0.0);
      EXPECT_DOUBLE_EQ(loop.state().velocity(n, 1), 0.0);
      EXPECT_DOUBLE_EQ(loop.state().velocity(n, 2), 0.0);
    } else {
      for (int d = 0; d < fem::kDim; ++d) {
        interior_motion += std::abs(loop.state().velocity(n, d));
      }
    }
  }
  EXPECT_GT(interior_motion, 1e-6);  // the lid drags the interior along
}

TEST(TimeLoop, RejectsDegenerateConfigs) {
  const miniapp::Scenario s = miniapp::scenario_cavity();
  const fem::Mesh mesh({.nx = 3, .ny = 3, .nz = 3});
  miniapp::TimeLoopConfig bad_steps;
  bad_steps.steps = 0;
  EXPECT_THROW(miniapp::TimeLoop(mesh, s, bad_steps), std::invalid_argument);

  miniapp::Scenario no_pins = s;
  no_pins.pressure_pins = [](const fem::Mesh&) { return std::vector<int>{}; };
  miniapp::TimeLoopConfig cfg;
  EXPECT_THROW(miniapp::TimeLoop(mesh, no_pins, cfg), std::invalid_argument);
}

TEST(Scenarios, LibraryIsWellFormed) {
  const auto all = miniapp::all_scenarios();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "cavity");
  EXPECT_EQ(all[1].name, "channel");
  EXPECT_EQ(all[2].name, "taylor-green");
  for (const auto& s : all) {
    EXPECT_EQ(miniapp::scenario_by_name(s.name).name, s.name);
    EXPECT_TRUE(static_cast<bool>(s.initial)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.velocity_bc)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.pressure_pins)) << s.name;
  }
  EXPECT_FALSE(all[0].has_analytic());
  EXPECT_TRUE(all[2].has_analytic());
  EXPECT_THROW(miniapp::scenario_by_name("bogus"), std::invalid_argument);

  // Taylor–Green's analytic field is discretely consistent with its own
  // boundary data and starts from its own initial condition.
  const fem::Mesh mesh(all[2].mesh);
  std::array<double, fem::kDim> bc;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const auto init = all[2].initial(mesh, n);
    const auto exact = all[2].analytic(mesh, n, 0.0);
    for (int c = 0; c < fem::kDofs; ++c) EXPECT_DOUBLE_EQ(init[c], exact[c]);
    if (mesh.is_boundary_node(n)) {
      ASSERT_TRUE(all[2].velocity_bc(mesh, n, 0.0, bc));
      for (int d = 0; d < fem::kDim; ++d) EXPECT_DOUBLE_EQ(bc[d], exact[d]);
    } else {
      EXPECT_FALSE(all[2].velocity_bc(mesh, n, 0.0, bc));
    }
  }
}

}  // namespace
