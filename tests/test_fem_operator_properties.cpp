// Property tests on the reference discrete operators across a sweep of
// physical parameters: conservation (zero row sums), symmetry, scaling
// linearity — the invariants any Navier–Stokes assembly must satisfy.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fem/reference_assembly.h"

namespace {

using namespace vecfd::fem;

class PhysicsSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
 protected:
  Physics physics() const {
    Physics p;
    p.viscosity = std::get<0>(GetParam());
    p.dt = std::get<1>(GetParam());
    p.density = std::get<2>(GetParam());
    return p;
  }
};

TEST_P(PhysicsSweep, SemiImplicitBlockRowSumsEqualMassTerm) {
  // C and V rows sum to zero (Σ_b ∇N_b = 0), so Σ_b K[a][b] must equal
  // dtfac·Σ_b M[a][b] = dtfac·∫N_a — strictly positive.
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  const State state(mesh, physics());
  const ShapeTable shape;
  ElementSystem es;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    assemble_element(mesh, state, shape, e, Scheme::kSemiImplicit, es);
    const double dtfac =
        element_dt_factor(state.physics(), mesh.material(e));
    for (int a = 0; a < kNodes; ++a) {
      double krow = 0.0;
      for (int b = 0; b < kNodes; ++b) krow += es.block_at(a, b);
      EXPECT_GT(krow, 0.0);
      // ∫N_a over the element = vol/8 for the (mildly distorted) hex
      const double vol_a = krow / dtfac;
      EXPECT_NEAR(vol_a, 0.125 * 0.125, 0.25 * 0.125 * 0.125)
          << "e=" << e << " a=" << a;
    }
  }
}

TEST_P(PhysicsSweep, RhsIsLinearInBodyForce) {
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2});
  Physics p0 = physics();
  p0.force[0] = 0.3;
  p0.force[1] = -0.1;
  p0.force[2] = 0.7;
  Physics p2 = p0;
  p2.force[0] *= 2.0;
  p2.force[1] *= 2.0;
  p2.force[2] *= 2.0;
  // zero fields isolate the force term
  State s0(mesh, p0);
  State s2(mesh, p2);
  for (State* s : {&s0, &s2}) {
    std::fill(s->unknowns().begin(), s->unknowns().end(), 0.0);
    std::fill(s->unknowns_old().begin(), s->unknowns_old().end(), 0.0);
  }
  const ShapeTable shape;
  const auto r0 = assemble_global(mesh, s0, shape, Scheme::kExplicit);
  const auto r2 = assemble_global(mesh, s2, shape, Scheme::kExplicit);
  for (std::size_t i = 0; i < r0.rhs.size(); ++i) {
    EXPECT_NEAR(r2.rhs[i], 2.0 * r0.rhs[i],
                1e-12 * std::max(1.0, std::fabs(r0.rhs[i])));
  }
}

TEST_P(PhysicsSweep, ViscousContributionScalesWithViscosity) {
  // with zero force/old-velocity/pressure and a pure velocity field the
  // residual is -(C+V)u; C is ρ-weighted, V is μ-weighted.  Doubling μ at
  // ρ → 0 doubles the residual.
  const Mesh mesh({.nx = 2, .ny = 2, .nz = 2, .distortion = 0.0});
  Physics pa = physics();
  pa.density = 1e-9;  // suppress convection and the dt term
  pa.dt = 1e9;
  pa.force[0] = pa.force[1] = pa.force[2] = 0.0;
  Physics pb = pa;
  pb.viscosity = 2.0 * pa.viscosity;
  if (pa.viscosity == 0.0) GTEST_SKIP() << "needs nonzero viscosity";

  auto make_state = [&](const Physics& p) {
    State s(mesh, p);
    for (int n = 0; n < s.num_nodes(); ++n) {
      // zero pressure and old velocity, keep the analytic velocity
      s.unknowns()[static_cast<std::size_t>(n) * kDofs + kDim] = 0.0;
      for (int d = 0; d < kDim; ++d) {
        s.unknowns_old()[static_cast<std::size_t>(n) * kDofs + d] = 0.0;
      }
    }
    return s;
  };
  const State sa = make_state(pa);
  const State sb = make_state(pb);
  const ShapeTable shape;
  const auto ra = assemble_global(mesh, sa, shape, Scheme::kExplicit);
  const auto rb = assemble_global(mesh, sb, shape, Scheme::kExplicit);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < ra.rhs.size(); ++i) {
    num += rb.rhs[i] * ra.rhs[i];
    den += ra.rhs[i] * ra.rhs[i];
  }
  ASSERT_GT(den, 0.0);
  EXPECT_NEAR(num / den, 2.0, 1e-6);  // rb ≈ 2·ra
}

INSTANTIATE_TEST_SUITE_P(
    Params, PhysicsSweep,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1),  // viscosity
                       ::testing::Values(0.01, 0.1),         // dt
                       ::testing::Values(0.5, 1.0, 2.0)),    // density
    // `param_info`, not `info`: the macro splices this lambda into a gtest
    // function whose parameter is already named `info` (-Wshadow).
    [](const auto& param_info) {
      auto tag = [](double v) {
        std::string s = std::to_string(v);
        for (char& c : s) {
          if (c == '.') c = 'p';
        }
        return s.substr(0, 6);
      };
      return "mu" + tag(std::get<0>(param_info.param)) + "_dt" +
             tag(std::get<1>(param_info.param)) + "_rho" +
             tag(std::get<2>(param_info.param));
    });

TEST(OperatorProperties, UniformFlowHasNoViscousResidual) {
  // a constant velocity field has zero gradient: V·u = 0 and the
  // convective derivative vanishes, so with f = 0, u_old = u, p = 0 the
  // residual reduces to the dt term ∫N ρ/Δt u.
  const Mesh mesh({.nx = 3, .ny = 3, .nz = 3, .distortion = 0.1});
  Physics phys;
  phys.force[2] = 0.0;
  State state(mesh, phys);
  for (int n = 0; n < state.num_nodes(); ++n) {
    double* u = &state.unknowns()[static_cast<std::size_t>(n) * kDofs];
    u[0] = 0.4;
    u[1] = -0.2;
    u[2] = 0.1;
    u[3] = 0.0;
    double* uo = &state.unknowns_old()[static_cast<std::size_t>(n) * kDofs];
    uo[0] = 0.4;
    uo[1] = -0.2;
    uo[2] = 0.1;
  }
  const ShapeTable shape;
  const auto sys = assemble_global(mesh, state, shape, Scheme::kExplicit);
  // residual = M(ρ/Δt)(u_old − u) per row... with u_old = u the convective
  // and viscous parts vanish and the rhs is +∫N ρ/Δt u − (C+V)u = ∫N ρ/Δt u
  // componentwise proportional to (0.4, −0.2, 0.1)
  double dir[3] = {0.0, 0.0, 0.0};
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    for (int d = 0; d < kDim; ++d) {
      dir[d] += sys.rhs[static_cast<std::size_t>(n) * kDim + d];
    }
  }
  EXPECT_NEAR(dir[1] / dir[0], -0.5, 1e-9);
  EXPECT_NEAR(dir[2] / dir[0], 0.25, 1e-9);
}

TEST(OperatorProperties, RefiningTheMeshPreservesForceTotal) {
  for (int n : {2, 4}) {
    const Mesh mesh({.nx = n, .ny = n, .nz = n, .distortion = 0.0});
    Physics phys;
    phys.force[0] = 1.0;
    phys.force[1] = 0.0;
    phys.force[2] = 0.0;
    State state(mesh, phys);
    std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
    std::fill(state.unknowns_old().begin(), state.unknowns_old().end(), 0.0);
    const ShapeTable shape;
    const auto sys = assemble_global(mesh, state, shape, Scheme::kExplicit);
    double total = 0.0;
    for (int node = 0; node < mesh.num_nodes(); ++node) {
      total += sys.rhs[static_cast<std::size_t>(node) * kDim];
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n;  // ρ·f·|Ω|
  }
}

}  // namespace
