// vecfd-run — command-line driver for the co-design toolkit.
//
// Runs the mini-app on any modelled machine / optimization level /
// VECTOR_SIZE (or the full paper sweep), prints the §2.2 metrics and phase
// breakdown, and optionally emits CSV rows, compiler remarks, Advisor
// findings, or a Paraver trace pair (.prv/.pcf).
//
//   vecfd-run --sweep --csv sweep.csv
//   vecfd-run --sweep --solve --csv sweep.csv   # assembly + phase-9 solve
//   vecfd-run --machine sx-aurora --opt ivec2 --vs 240 --advise
//   vecfd-run --opt vec2 --vs 240 --prv trace --remarks
//   vecfd-run --scenario taylor-green --steps 10        # transient loop
//   vecfd-run --sweep --steps 3 --csv campaign.csv      # full campaign
//
// --steps/--scenario switch to the transient time loop (phases 1–11);
// combined with --sweep they batch the full campaign — every scenario ×
// all four platforms × the studied VECTOR_SIZEs — over the thread pool.
//
// The sweep fans out over a thread pool (one Vpu per sweep point); --jobs
// bounds the worker count and --jobs 1 forces the serial path.  Output is
// byte-identical either way.
//
// Exit codes: 0 ok, 2 bad usage (offending flag named on stderr).
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/campaign.h"
#include "core/csv.h"
#include "core/experiment.h"
#include "core/report.h"
#include "compiler/vectorization_model.h"
#include "miniapp/driver.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "sim/fault_injection.h"
#include "trace/paraver.h"
#include "trace/vehave_trace.h"

namespace {

using namespace vecfd;

struct Options {
  std::string machine = "riscv-vec";
  std::string opt = "vec1";
  std::string scheme = "explicit";
  std::string format = "ell";
  bool rcm = false;
  std::string precond = "jacobi";
  int shards = 1;
  int vs = 240;
  int jobs = 0;  ///< sweep worker threads; 0 = all cores, 1 = serial
  bool sweep = false;
  bool solve = false;
  bool scheme_set = false;  ///< --scheme given explicitly
  bool mesh_set = false;    ///< --mesh given explicitly
  bool advise = false;
  bool remarks = false;
  int steps = 0;  ///< > 0 switches to the transient time loop
  std::optional<std::string> scenario;
  int nx = 16, ny = 20, nz = 24;
  std::optional<std::string> csv_path;
  std::optional<std::string> prv_base;
  int checkpoint_every = 0;  ///< > 0 enables the epoch checkpoint protocol
  std::optional<std::string> checkpoint_dir;
  std::optional<std::string> resume_dir;
  int max_retries = 0;
  std::optional<std::string> fault_plan;

  bool transient() const { return steps > 0 || scenario.has_value(); }
};

void usage(std::ostream& os) {
  os << "usage: vecfd-run [options]\n"
        "  --machine M   riscv-vec | riscv-vec-scalar | sx-aurora |\n"
        "                mn4-avx512            (default riscv-vec)\n"
        "  --opt O       scalar | vanilla | vec2 | ivec2 | vec1\n"
        "                                      (default vec1)\n"
        "  --scheme S    explicit | semi       (default explicit)\n"
        "  --format F    csr | ell | sell | auto — operator storage of the\n"
        "                instrumented solves; auto asks the Advisor for the\n"
        "                machine's format     (default ell)\n"
        "  --rcm         reverse-Cuthill-McKee solve-space renumbering\n"
        "                (transient runs)\n"
        "  --precond P   jacobi | cheby | deflate — phase-10 pressure\n"
        "                preconditioner rung (transient runs; DESIGN.md\n"
        "                S8)                  (default jacobi)\n"
        "  --shards N    domain-decomposition shards of the phase-10\n"
        "                pressure solve (transient runs; DESIGN.md S9) —\n"
        "                fields are bit-identical for every N, the halo\n"
        "                and makespan columns change (default 1)\n"
        "  --vs N        VECTOR_SIZE           (default 240)\n"
        "  --sweep       run the paper's full grid {16,64,128,240,256,512}\n"
        "                x {vanilla,vec2,ivec2,vec1} in parallel\n"
        "  --solve       chain the instrumented Krylov solve as phase 9\n"
        "                (implies --scheme semi)\n"
        "  --steps N     run N transient semi-implicit steps (phases 1-11;\n"
        "                implies --scheme semi, default scenario 'cavity');\n"
        "                with --sweep: the full campaign, every scenario x\n"
        "                all four platforms x the studied VECTOR_SIZEs\n"
        "  --scenario S  cavity | channel | taylor-green (implies --steps,\n"
        "                default 5)\n"
        "  --jobs N      sweep worker threads (default 0 = all cores;\n"
        "                1 = serial)\n"
        "  --mesh X,Y,Z  elements per axis     (default 16,20,24)\n"
        "  --csv FILE    append measurement rows as CSV\n"
        "  --checkpoint-every N\n"
        "                transient runs: checkpoint every N steps (epoch\n"
        "                protocol, DESIGN.md S10); needs --checkpoint-dir\n"
        "                or --resume\n"
        "  --checkpoint-dir D\n"
        "                directory for point_<i>.ckpt files (created if\n"
        "                missing)\n"
        "  --resume D    resume every point from its checkpoint in D (same\n"
        "                config and --checkpoint-every as the original run;\n"
        "                the resumed campaign is bit-identical to an\n"
        "                uninterrupted one at that cadence)\n"
        "  --max-retries N\n"
        "                retry failed points up to N times, stepping down\n"
        "                the degradation ladder (deflate->cheby->jacobi,\n"
        "                shards->1, sell->ell->csr) each retry (default 0)\n"
        "  --fault-plan P\n"
        "                deterministic fault injection: 'kind@point[.step]'\n"
        "                entries joined with ';' (kinds: breakdown, nan-rhs,\n"
        "                zero-diag, worker-death) or 'seed=S[:faults=N]'\n"
        "  --prv BASE    write BASE.prv/BASE.pcf Paraver trace (single run)\n"
        "  --advise      print co-design Advisor findings\n"
        "  --remarks     print the compiler model's vectorization remarks\n"
        "  --help\n";
}

/// Report a bad flag/value pair on stderr.  Always returns false so parse
/// call sites can `return fail(...)`.
bool fail(const std::string& flag, const std::string& why) {
  std::cerr << "vecfd-run: " << flag << ": " << why << '\n'
            << "vecfd-run: try --help\n";
  return false;
}

std::optional<sim::MachineConfig> parse_machine(const std::string& name) {
  if (name == "riscv-vec") return platforms::riscv_vec();
  if (name == "riscv-vec-scalar") return platforms::riscv_vec_scalar();
  if (name == "sx-aurora") return platforms::sx_aurora();
  if (name == "mn4-avx512") return platforms::mn4_avx512();
  return std::nullopt;
}

std::optional<miniapp::OptLevel> parse_opt(const std::string& o) {
  if (o == "scalar") return miniapp::OptLevel::kScalar;
  if (o == "vanilla") return miniapp::OptLevel::kVanilla;
  if (o == "vec2") return miniapp::OptLevel::kVec2;
  if (o == "ivec2") return miniapp::OptLevel::kIVec2;
  if (o == "vec1") return miniapp::OptLevel::kVec1;
  return std::nullopt;
}

/// Strict integer parse: the whole string must be a base-10 integer.
std::optional<int> parse_int(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < INT_MIN || v > INT_MAX) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--machine") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.machine = v;
    } else if (a == "--opt") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.opt = v;
    } else if (a == "--scheme") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.scheme = v;
      opt.scheme_set = true;
    } else if (a == "--format") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.format = v;
    } else if (a == "--rcm") {
      opt.rcm = true;
    } else if (a == "--precond") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.precond = v;
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n <= 0) {
        return fail(a, "invalid shard count '" + std::string(v) +
                           "' (want a positive integer)");
      }
      opt.shards = *n;
    } else if (a == "--vs") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n <= 0) {
        return fail(a, "invalid VECTOR_SIZE '" + std::string(v) +
                           "' (want a positive integer)");
      }
      opt.vs = *n;
    } else if (a == "--jobs") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n < 0) {
        return fail(a, "invalid job count '" + std::string(v) +
                           "' (want 0 = all cores, or a positive integer)");
      }
      opt.jobs = *n;
    } else if (a == "--sweep") {
      opt.sweep = true;
    } else if (a == "--solve") {
      opt.solve = true;
    } else if (a == "--steps") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n <= 0) {
        return fail(a, "invalid step count '" + std::string(v) +
                           "' (want a positive integer)");
      }
      opt.steps = *n;
    } else if (a == "--scenario") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.scenario = v;
    } else if (a == "--mesh") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      if (std::sscanf(v, "%d,%d,%d", &opt.nx, &opt.ny, &opt.nz) != 3 ||
          opt.nx <= 0 || opt.ny <= 0 || opt.nz <= 0) {
        return fail(a, "invalid mesh '" + std::string(v) +
                           "' (want X,Y,Z with positive elements per axis)");
      }
      opt.mesh_set = true;
    } else if (a == "--csv") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.csv_path = v;
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n <= 0) {
        return fail(a, "invalid checkpoint cadence '" + std::string(v) +
                           "' (want a positive step count)");
      }
      opt.checkpoint_every = *n;
    } else if (a == "--checkpoint-dir") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.checkpoint_dir = v;
    } else if (a == "--resume") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.resume_dir = v;
    } else if (a == "--max-retries") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n < 0) {
        return fail(a, "invalid retry budget '" + std::string(v) +
                           "' (want 0 or a positive integer)");
      }
      opt.max_retries = *n;
    } else if (a == "--fault-plan") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.fault_plan = v;
    } else if (a == "--prv") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.prv_base = v;
    } else if (a == "--advise") {
      opt.advise = true;
    } else if (a == "--remarks") {
      opt.remarks = true;
    } else {
      return fail(a, "unknown option");
    }
  }
  return true;
}

/// Print the compiler model's remarks for one configuration (--remarks).
void print_remarks(const sim::MachineConfig& machine,
                   const miniapp::MiniAppConfig& cfg) {
  const compiler::VectorizationModel model(
      machine, cfg.opt != miniapp::OptLevel::kScalar);
  std::cout << "vectorization remarks:\n";
  for (const auto& r : compiler::remarks(model, miniapp::loop_infos(cfg))) {
    std::cout << "  " << r << '\n';
  }
  std::cout << '\n';
}

/// Serialize @p rows with @p writer (--csv), atomically: the rows land in
/// `path + ".tmp"` and are renamed over @p path only once fully written, so
/// a killed process never leaves a truncated CSV under the real name.
/// Returns the process exit code so both the single-run and transient paths
/// share one error policy.
template <class Rows, class Writer>
int write_csv_file(const std::string& path, const Rows& rows, Writer writer,
                   const char* what) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      std::cerr << "cannot open " << tmp << '\n';
      return 2;
    }
    writer(os, rows);
    if (!os) {
      std::cerr << "write failed: " << tmp << '\n';
      return 2;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "cannot rename " << tmp << " to " << path << '\n';
    std::remove(tmp.c_str());
    return 2;
  }
  std::cout << "wrote " << rows.size() << ' ' << what << " to " << path
            << '\n';
  return 0;
}

void print_phase_row(core::Table& t, int p, double cycles, double share,
                     const metrics::VectorMetrics& pm) {
  t.add_row({std::to_string(p), core::fmt(cycles, 0), core::fmt_pct(share),
             core::fmt_pct(pm.mv), core::fmt(pm.avl, 1)});
}

void print_campaign_run(const core::CampaignRun& r) {
  std::cout << r.scenario << " / " << r.point.machine.name << " / "
            << to_string(r.point.opt) << " / "
            << to_string(r.point.format)
            << (r.point.rcm_renumber ? "+rcm" : "")
            << (r.point.precond != solver::PrecondKind::kJacobi
                    ? std::string("+") + solver::to_string(r.point.precond)
                    : "")
            << (r.point.shards > 1
                    ? " / shards=" + std::to_string(r.point.shards)
                    : "")
            << " / VECTOR_SIZE=" << r.point.vector_size << " / steps="
            << r.point.steps << '\n';
  std::cout << "  cycles=" << core::fmt(r.total_cycles, 0)
            << "  Mv=" << core::fmt_pct(r.overall.mv)
            << "  Av=" << core::fmt_pct(r.overall.av)
            << "  vCPI=" << core::fmt(r.overall.vcpi, 1)
            << "  AVL=" << core::fmt(r.overall.avl, 1)
            << "  Ev=" << core::fmt_pct(r.overall.ev) << '\n';
  core::Table t({"phase", "cycles", "share", "Mv", "AVL"});
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    const double cycles = r.phase_cycles(p);
    const double share =
        r.total_cycles > 0.0 ? cycles / r.total_cycles : 0.0;
    print_phase_row(t, p, cycles, share,
                    r.phase_metrics[static_cast<std::size_t>(p)]);
  }
  std::cout << t.to_string();
  std::cout << "  solves: momentum " << r.momentum_iterations
            << " iters (phase 9), pressure " << r.pressure_iterations
            << " iters (phase 10), "
            << (r.all_converged ? "all converged" : "NOT all converged")
            << ", final div=" << core::fmt(r.final_divergence, 6);
  if (r.solver_failures > 0) {
    std::cout << ", " << r.solver_failures << " solver FAILURES";
  }
  std::cout << '\n';
}

/// Print one fault-tolerant outcome: the run (when one completed) plus the
/// retry digest; a point whose final attempt never ran prints its error.
void print_campaign_outcome(std::size_t index,
                            const core::CampaignOutcome& o) {
  if (!o.error.empty()) {
    std::cout << o.run.scenario << " / " << o.run.point.machine.name
              << " / VECTOR_SIZE=" << o.run.point.vector_size << '\n'
              << "  point " << index << " FAILED after " << o.attempts
              << (o.attempts == 1 ? " attempt: " : " attempts: ") << o.error
              << '\n';
    return;
  }
  print_campaign_run(o.run);
  if (o.attempts > 1 || o.final_status != "ok") {
    std::cout << "  retry ladder: " << o.attempts << " attempts, status "
              << o.final_status;
    if (o.degraded) {
      std::cout << " (degraded from "
                << solver::to_string(o.requested.precond)
                << "/shards=" << o.requested.shards << '/'
                << to_string(o.requested.format) << " to "
                << solver::to_string(o.run.point.precond)
                << "/shards=" << o.run.point.shards << '/'
                << to_string(o.run.point.format) << ')';
    }
    std::cout << '\n';
  }
}

/// The transient path: a single TimeLoop run, or (--sweep) the full
/// campaign over scenario x platform x VECTOR_SIZE.
int run_transient(const Options& opts, const sim::MachineConfig& machine,
                  miniapp::OptLevel level, solver::SpmvFormat format,
                  sim::FaultPlan fault_plan) {
  solver::PrecondKind precond = solver::PrecondKind::kJacobi;
  solver::precond_from_string(opts.precond, precond);  // validated by caller
  std::vector<miniapp::Scenario> scens;
  if (opts.scenario || !opts.sweep) {
    const std::string name = opts.scenario.value_or("cavity");
    try {
      scens.push_back(miniapp::scenario_by_name(name));
    } catch (const std::invalid_argument&) {
      fail("--scenario", "unknown scenario '" + name + "'");
      return 2;
    }
  } else {
    scens = miniapp::all_scenarios();
  }
  if (opts.mesh_set) {
    for (auto& s : scens) {
      s.mesh.nx = opts.nx;
      s.mesh.ny = opts.ny;
      s.mesh.nz = opts.nz;
    }
  }
  const core::Campaign camp(std::move(scens));

  std::vector<core::CampaignPoint> points;
  if (opts.sweep) {
    const sim::MachineConfig machines[] = {
        platforms::riscv_vec(), platforms::riscv_vec_scalar(),
        platforms::sx_aurora(), platforms::mn4_avx512()};
    points = camp.grid(machines, miniapp::kStudiedVectorSizes, opts.steps);
    for (auto& p : points) {
      p.opt = level;
      p.format = format;
      p.rcm_renumber = opts.rcm;
      p.precond = precond;
      p.shards = opts.shards;
    }
  } else {
    core::CampaignPoint p;
    p.machine = machine;
    p.vector_size = opts.vs;
    p.steps = opts.steps;
    p.opt = level;
    p.format = format;
    p.rcm_renumber = opts.rcm;
    p.precond = precond;
    p.shards = opts.shards;
    points.push_back(p);
  }
  if (opts.format == "auto") {
    // --format auto is a PER-MACHINE and PER-SHARD policy: each platform
    // gets its own recommendation (not the --machine flag's), sized by the
    // rows each shard's Vpu actually streams (DESIGN.md §9).
    for (auto& p : points) {
      p.format = core::recommend_format(
          p.machine, camp.mesh(p.scenario).num_nodes() / p.shards);
    }
  }

  core::CampaignFtOptions ft;
  ft.retry.max_retries = opts.max_retries;
  ft.checkpoint_every = opts.checkpoint_every;
  if (opts.resume_dir) {
    ft.checkpoint_dir = *opts.resume_dir;
    ft.resume = true;
  } else if (opts.checkpoint_dir) {
    ft.checkpoint_dir = *opts.checkpoint_dir;
    std::error_code ec;
    std::filesystem::create_directories(ft.checkpoint_dir, ec);
    if (ec) {
      std::cerr << "vecfd-run: --checkpoint-dir: cannot create '"
                << ft.checkpoint_dir << "': " << ec.message() << '\n';
      return 2;
    }
  }
  if (!fault_plan.empty()) {
    // Seeded plans draw their (kind, point, step) triples from the actual
    // campaign shape; explicit plans are validated against it.
    fault_plan.materialize(static_cast<int>(points.size()), opts.steps);
    ft.faults = &fault_plan;
  }

  const auto outcomes = camp.run_points_ft(points, ft, opts.jobs);
  bool any_dead = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    print_campaign_outcome(i, outcomes[i]);
    if (!outcomes[i].error.empty()) any_dead = true;
    std::cout << '\n';
  }

  if (opts.remarks) {
    miniapp::MiniAppConfig cfg;
    cfg.vector_size = points.front().vector_size;
    cfg.scheme = fem::Scheme::kSemiImplicit;
    cfg.opt = level;
    print_remarks(machine, cfg);
  }

  if (opts.csv_path) {
    const int rc = write_csv_file(
        *opts.csv_path, outcomes,
        [](std::ostream& os, const std::vector<core::CampaignOutcome>& os2) {
          core::write_campaign_csv(os, os2);
        },
        "campaign rows");
    if (rc != 0) return rc;
  }
  // A completed-but-failed run keeps exit 0 (its status is in the CSV, the
  // historic zero-diagonal demo behaviour); only a point that never
  // produced a run — e.g. an un-retried worker death — fails the process.
  return any_dead ? 1 : 0;
}

void print_measurement(const core::Measurement& m) {
  std::cout << m.machine.name << " / " << to_string(m.app.opt)
            << " / VECTOR_SIZE=" << m.app.vector_size << " / "
            << to_string(m.app.scheme) << '\n';
  std::cout << "  cycles=" << core::fmt(m.total_cycles, 0)
            << "  Mv=" << core::fmt_pct(m.overall.mv)
            << "  Av=" << core::fmt_pct(m.overall.av)
            << "  vCPI=" << core::fmt(m.overall.vcpi, 1)
            << "  AVL=" << core::fmt(m.overall.avl, 1)
            << "  Ev=" << core::fmt_pct(m.overall.ev) << '\n';
  core::Table t({"phase", "cycles", "share", "Mv", "AVL",
                 "L1 DCM/ki"});
  // phases 10/11 belong to the transient loop; a --solve run ends at 9
  const int last_phase =
      m.has_solve ? miniapp::kSolvePhase : miniapp::kNumPhases;
  for (int p = 1; p <= last_phase; ++p) {
    t.add_row({std::to_string(p), core::fmt(m.phase_cycles(p), 0),
               core::fmt_pct(m.phase_share(p)),
               core::fmt_pct(m.phase_metrics[p].mv),
               core::fmt(m.phase_metrics[p].avl, 1),
               core::fmt(metrics::l1_dcm_per_kilo_instr(m.phase[p]), 1)});
  }
  std::cout << t.to_string();
  if (m.has_solve) {
    std::cout << "  solve (phase 9): "
              << (m.solve.converged ? "converged" : "NOT converged") << " in "
              << m.solve.iterations
              << " iters, residual=" << core::fmt(m.solve.residual, 12)
              << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    return 2;
  }
  const auto machine = parse_machine(opts.machine);
  if (!machine) {
    fail("--machine", "unknown machine '" + opts.machine + "'");
    return 2;
  }
  const auto level = parse_opt(opts.opt);
  if (!level) {
    fail("--opt", "unknown optimization level '" + opts.opt + "'");
    return 2;
  }
  if (opts.scheme != "explicit" && opts.scheme != "semi") {
    fail("--scheme", "unknown scheme '" + opts.scheme + "'");
    return 2;
  }
  if (opts.solve && !opts.scheme_set) {
    opts.scheme = "semi";  // --solve implies the semi-implicit scheme
  }
  if (opts.solve && opts.scheme != "semi") {
    fail("--solve", "requires --scheme semi (the explicit scheme assembles "
                    "no matrix to solve)");
    return 2;
  }
  solver::SpmvFormat format;
  if (opts.format == "auto") {
    format = core::recommend_format(*machine);
  } else if (const auto f = solver::format_from_string(opts.format)) {
    format = *f;
  } else {
    fail("--format", "unknown format '" + opts.format +
                         "' (want csr, ell, sell or auto)");
    return 2;
  }
  if (opts.rcm && !opts.transient()) {
    fail("--rcm", "requires a transient run (add --steps or --scenario; "
                  "the assembly sweep solves in assembly order)");
    return 2;
  }
  solver::PrecondKind precond = solver::PrecondKind::kJacobi;
  if (!solver::precond_from_string(opts.precond, precond)) {
    fail("--precond", "unknown preconditioner '" + opts.precond +
                          "' (want jacobi, cheby or deflate)");
    return 2;
  }
  if (precond != solver::PrecondKind::kJacobi && !opts.transient()) {
    fail("--precond", "requires a transient run (add --steps or --scenario; "
                      "the ladder preconditions the phase-10 pressure "
                      "solve)");
    return 2;
  }
  if (opts.shards != 1 && !opts.transient()) {
    fail("--shards", "requires a transient run (add --steps or --scenario; "
                     "sharding decomposes the phase-10 pressure solve)");
    return 2;
  }
  if (!opts.transient()) {
    const char* ft_flag = opts.checkpoint_every > 0 ? "--checkpoint-every"
                          : opts.checkpoint_dir    ? "--checkpoint-dir"
                          : opts.resume_dir        ? "--resume"
                          : opts.max_retries > 0   ? "--max-retries"
                          : opts.fault_plan        ? "--fault-plan"
                                                   : nullptr;
    if (ft_flag) {
      fail(ft_flag, "requires a transient run (add --steps or --scenario; "
                    "fault tolerance applies to transient campaigns)");
      return 2;
    }
  }
  if (opts.checkpoint_dir && opts.resume_dir) {
    fail("--checkpoint-dir", "incompatible with --resume (a resumed "
                             "campaign checkpoints back into the directory "
                             "it resumes from)");
    return 2;
  }
  if (opts.checkpoint_every > 0 && !opts.checkpoint_dir &&
      !opts.resume_dir) {
    fail("--checkpoint-every", "requires --checkpoint-dir or --resume "
                               "(somewhere to put the checkpoints)");
    return 2;
  }
  if ((opts.checkpoint_dir || opts.resume_dir) &&
      opts.checkpoint_every <= 0) {
    fail(opts.checkpoint_dir ? "--checkpoint-dir" : "--resume",
         "requires --checkpoint-every (the cadence defines the epoch "
         "protocol, and a resume must replay the original cadence)");
    return 2;
  }
  if (opts.resume_dir) {
    std::error_code ec;
    if (!std::filesystem::is_directory(*opts.resume_dir, ec)) {
      fail("--resume", "'" + *opts.resume_dir + "' is not a directory");
      return 2;
    }
    for (const auto& entry :
         std::filesystem::directory_iterator(*opts.resume_dir, ec)) {
      if (entry.path().extension() == ".tmp") {
        fail("--resume",
             "leftover partial checkpoint '" + entry.path().string() +
                 "' (an interrupted save; delete it to resume from the "
                 "last complete checkpoint)");
        return 2;
      }
    }
  }
  sim::FaultPlan fault_plan;
  if (opts.fault_plan) {
    try {
      fault_plan = sim::FaultPlan::parse(*opts.fault_plan);
    } catch (const std::invalid_argument& e) {
      fail("--fault-plan", e.what());
      return 2;
    }
  }

  if (opts.transient()) {
    if (!opts.scheme_set) {
      opts.scheme = "semi";  // the transient loop is semi-implicit
    }
    if (opts.scheme != "semi") {
      fail(opts.steps > 0 ? "--steps" : "--scenario",
           "requires --scheme semi (the transient loop assembles and solves "
           "the momentum matrix every step)");
      return 2;
    }
    if (opts.solve) {
      fail("--solve", "incompatible with --steps/--scenario (the transient "
                      "loop runs its own instrumented solves)");
      return 2;
    }
    if (opts.prv_base) {
      fail("--prv", "requires an assembly run (omit --steps/--scenario)");
      return 2;
    }
    if (opts.advise) {
      fail("--advise", "requires an assembly run (omit --steps/--scenario)");
      return 2;
    }
    if (opts.steps == 0) opts.steps = 5;  // --scenario implies a short loop
    return run_transient(opts, *machine, *level, format,
                         std::move(fault_plan));
  }

  const fem::Mesh mesh({.nx = opts.nx, .ny = opts.ny, .nz = opts.nz});
  const fem::State state(mesh);
  const core::Experiment ex(mesh, state);

  miniapp::MiniAppConfig cfg;
  cfg.opt = *level;
  cfg.scheme = opts.scheme == "semi" ? fem::Scheme::kSemiImplicit
                                     : fem::Scheme::kExplicit;
  cfg.run_solve = opts.solve;
  cfg.solve_format = format;

  std::vector<core::Measurement> ms;
  if (opts.sweep) {
    ms = ex.sweep_grid(*machine, cfg, miniapp::kStudiedVectorSizes,
                       core::kSweepOptLevels, opts.jobs);
  } else {
    cfg.vector_size = opts.vs;
    ms.push_back(ex.run(*machine, cfg));
  }

  for (const auto& m : ms) {
    print_measurement(m);
    if (opts.advise) {
      std::cout << "advisor findings:\n";
      for (const auto& f : core::advise(m)) {
        std::cout << "  [" << core::to_string(f.kind) << "] " << f.message
                  << '\n';
      }
    }
    std::cout << '\n';
  }

  if (opts.remarks) {
    cfg.vector_size = ms.front().app.vector_size;
    print_remarks(*machine, cfg);
  }

  if (opts.csv_path) {
    const int rc = write_csv_file(
        *opts.csv_path, ms,
        [](std::ostream& os, const std::vector<core::Measurement>& rows) {
          core::write_csv(os, rows);
        },
        "rows");
    if (rc != 0) return rc;
  }

  if (opts.prv_base) {
    if (opts.sweep) {
      std::cerr << "--prv requires a single run (omit --sweep)\n";
      return 2;
    }
    // re-run with tracing enabled
    miniapp::MiniApp app(mesh, state, cfg);
    sim::Vpu vpu(*machine);
    trace::VehaveTrace tr(1u << 22);
    vpu.set_observer(&tr);
    (void)app.run(vpu);
    std::ofstream prv(*opts.prv_base + ".prv");
    std::ofstream pcf(*opts.prv_base + ".pcf");
    if (!prv || !pcf) {
      std::cerr << "cannot open " << *opts.prv_base << ".prv/.pcf\n";
      return 2;
    }
    const std::size_t n = trace::write_paraver_prv(prv, tr);
    trace::write_paraver_pcf(pcf);
    std::cout << "wrote " << n << " trace records to " << *opts.prv_base
              << ".prv (" << tr.dropped() << " dropped)\n";
  }
  return 0;
}
