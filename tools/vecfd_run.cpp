// vecfd-run — command-line driver for the co-design toolkit.
//
// Runs the mini-app on any modelled machine / optimization level /
// VECTOR_SIZE (or the full paper sweep), prints the §2.2 metrics and phase
// breakdown, and optionally emits CSV rows, compiler remarks, Advisor
// findings, or a Paraver trace pair (.prv/.pcf).
//
//   vecfd-run --sweep --csv sweep.csv
//   vecfd-run --sweep --solve --csv sweep.csv   # assembly + phase-9 solve
//   vecfd-run --machine sx-aurora --opt ivec2 --vs 240 --advise
//   vecfd-run --opt vec2 --vs 240 --prv trace --remarks
//
// The sweep fans out over a thread pool (one Vpu per sweep point); --jobs
// bounds the worker count and --jobs 1 forces the serial path.  Output is
// byte-identical either way.
//
// Exit codes: 0 ok, 2 bad usage (offending flag named on stderr).
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/csv.h"
#include "core/experiment.h"
#include "core/report.h"
#include "compiler/vectorization_model.h"
#include "miniapp/driver.h"
#include "trace/paraver.h"
#include "trace/vehave_trace.h"

namespace {

using namespace vecfd;

struct Options {
  std::string machine = "riscv-vec";
  std::string opt = "vec1";
  std::string scheme = "explicit";
  int vs = 240;
  int jobs = 0;  ///< sweep worker threads; 0 = all cores, 1 = serial
  bool sweep = false;
  bool solve = false;
  bool scheme_set = false;  ///< --scheme given explicitly
  bool advise = false;
  bool remarks = false;
  int nx = 16, ny = 20, nz = 24;
  std::optional<std::string> csv_path;
  std::optional<std::string> prv_base;
};

void usage(std::ostream& os) {
  os << "usage: vecfd-run [options]\n"
        "  --machine M   riscv-vec | riscv-vec-scalar | sx-aurora |\n"
        "                mn4-avx512            (default riscv-vec)\n"
        "  --opt O       scalar | vanilla | vec2 | ivec2 | vec1\n"
        "                                      (default vec1)\n"
        "  --scheme S    explicit | semi       (default explicit)\n"
        "  --vs N        VECTOR_SIZE           (default 240)\n"
        "  --sweep       run the paper's full grid {16,64,128,240,256,512}\n"
        "                x {vanilla,vec2,ivec2,vec1} in parallel\n"
        "  --solve       chain the instrumented Krylov solve as phase 9\n"
        "                (implies --scheme semi)\n"
        "  --jobs N      sweep worker threads (default 0 = all cores;\n"
        "                1 = serial)\n"
        "  --mesh X,Y,Z  elements per axis     (default 16,20,24)\n"
        "  --csv FILE    append measurement rows as CSV\n"
        "  --prv BASE    write BASE.prv/BASE.pcf Paraver trace (single run)\n"
        "  --advise      print co-design Advisor findings\n"
        "  --remarks     print the compiler model's vectorization remarks\n"
        "  --help\n";
}

/// Report a bad flag/value pair on stderr.  Always returns false so parse
/// call sites can `return fail(...)`.
bool fail(const std::string& flag, const std::string& why) {
  std::cerr << "vecfd-run: " << flag << ": " << why << '\n'
            << "vecfd-run: try --help\n";
  return false;
}

std::optional<sim::MachineConfig> parse_machine(const std::string& name) {
  if (name == "riscv-vec") return platforms::riscv_vec();
  if (name == "riscv-vec-scalar") return platforms::riscv_vec_scalar();
  if (name == "sx-aurora") return platforms::sx_aurora();
  if (name == "mn4-avx512") return platforms::mn4_avx512();
  return std::nullopt;
}

std::optional<miniapp::OptLevel> parse_opt(const std::string& o) {
  if (o == "scalar") return miniapp::OptLevel::kScalar;
  if (o == "vanilla") return miniapp::OptLevel::kVanilla;
  if (o == "vec2") return miniapp::OptLevel::kVec2;
  if (o == "ivec2") return miniapp::OptLevel::kIVec2;
  if (o == "vec1") return miniapp::OptLevel::kVec1;
  return std::nullopt;
}

/// Strict integer parse: the whole string must be a base-10 integer.
std::optional<int> parse_int(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < INT_MIN || v > INT_MAX) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--machine") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.machine = v;
    } else if (a == "--opt") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.opt = v;
    } else if (a == "--scheme") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.scheme = v;
      opt.scheme_set = true;
    } else if (a == "--vs") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n <= 0) {
        return fail(a, "invalid VECTOR_SIZE '" + std::string(v) +
                           "' (want a positive integer)");
      }
      opt.vs = *n;
    } else if (a == "--jobs") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      const auto n = parse_int(v);
      if (!n || *n < 0) {
        return fail(a, "invalid job count '" + std::string(v) +
                           "' (want 0 = all cores, or a positive integer)");
      }
      opt.jobs = *n;
    } else if (a == "--sweep") {
      opt.sweep = true;
    } else if (a == "--solve") {
      opt.solve = true;
    } else if (a == "--mesh") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      if (std::sscanf(v, "%d,%d,%d", &opt.nx, &opt.ny, &opt.nz) != 3 ||
          opt.nx <= 0 || opt.ny <= 0 || opt.nz <= 0) {
        return fail(a, "invalid mesh '" + std::string(v) +
                           "' (want X,Y,Z with positive elements per axis)");
      }
    } else if (a == "--csv") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.csv_path = v;
    } else if (a == "--prv") {
      const char* v = next();
      if (!v) return fail(a, "missing value");
      opt.prv_base = v;
    } else if (a == "--advise") {
      opt.advise = true;
    } else if (a == "--remarks") {
      opt.remarks = true;
    } else {
      return fail(a, "unknown option");
    }
  }
  return true;
}

void print_measurement(const core::Measurement& m) {
  std::cout << m.machine.name << " / " << to_string(m.app.opt)
            << " / VECTOR_SIZE=" << m.app.vector_size << " / "
            << to_string(m.app.scheme) << '\n';
  std::cout << "  cycles=" << core::fmt(m.total_cycles, 0)
            << "  Mv=" << core::fmt_pct(m.overall.mv)
            << "  Av=" << core::fmt_pct(m.overall.av)
            << "  vCPI=" << core::fmt(m.overall.vcpi, 1)
            << "  AVL=" << core::fmt(m.overall.avl, 1)
            << "  Ev=" << core::fmt_pct(m.overall.ev) << '\n';
  core::Table t({"phase", "cycles", "share", "Mv", "AVL",
                 "L1 DCM/ki"});
  const int last_phase =
      m.has_solve ? miniapp::kNumInstrumentedPhases : miniapp::kNumPhases;
  for (int p = 1; p <= last_phase; ++p) {
    t.add_row({std::to_string(p), core::fmt(m.phase_cycles(p), 0),
               core::fmt_pct(m.phase_share(p)),
               core::fmt_pct(m.phase_metrics[p].mv),
               core::fmt(m.phase_metrics[p].avl, 1),
               core::fmt(metrics::l1_dcm_per_kilo_instr(m.phase[p]), 1)});
  }
  std::cout << t.to_string();
  if (m.has_solve) {
    std::cout << "  solve (phase 9): "
              << (m.solve.converged ? "converged" : "NOT converged") << " in "
              << m.solve.iterations
              << " iters, residual=" << core::fmt(m.solve.residual, 12)
              << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    return 2;
  }
  const auto machine = parse_machine(opts.machine);
  if (!machine) {
    fail("--machine", "unknown machine '" + opts.machine + "'");
    return 2;
  }
  const auto level = parse_opt(opts.opt);
  if (!level) {
    fail("--opt", "unknown optimization level '" + opts.opt + "'");
    return 2;
  }
  if (opts.scheme != "explicit" && opts.scheme != "semi") {
    fail("--scheme", "unknown scheme '" + opts.scheme + "'");
    return 2;
  }
  if (opts.solve && !opts.scheme_set) {
    opts.scheme = "semi";  // --solve implies the semi-implicit scheme
  }
  if (opts.solve && opts.scheme != "semi") {
    fail("--solve", "requires --scheme semi (the explicit scheme assembles "
                    "no matrix to solve)");
    return 2;
  }

  const fem::Mesh mesh({.nx = opts.nx, .ny = opts.ny, .nz = opts.nz});
  const fem::State state(mesh);
  const core::Experiment ex(mesh, state);

  miniapp::MiniAppConfig cfg;
  cfg.opt = *level;
  cfg.scheme = opts.scheme == "semi" ? fem::Scheme::kSemiImplicit
                                     : fem::Scheme::kExplicit;
  cfg.run_solve = opts.solve;

  std::vector<core::Measurement> ms;
  if (opts.sweep) {
    ms = ex.sweep_grid(*machine, cfg, miniapp::kStudiedVectorSizes,
                       core::kSweepOptLevels, opts.jobs);
  } else {
    cfg.vector_size = opts.vs;
    ms.push_back(ex.run(*machine, cfg));
  }

  for (const auto& m : ms) {
    print_measurement(m);
    if (opts.advise) {
      std::cout << "advisor findings:\n";
      for (const auto& f : core::advise(m)) {
        std::cout << "  [" << core::to_string(f.kind) << "] " << f.message
                  << '\n';
      }
    }
    std::cout << '\n';
  }

  if (opts.remarks) {
    cfg.vector_size = ms.front().app.vector_size;
    const compiler::VectorizationModel model(
        *machine, cfg.opt != miniapp::OptLevel::kScalar);
    std::cout << "vectorization remarks:\n";
    for (const auto& r :
         compiler::remarks(model, miniapp::loop_infos(cfg))) {
      std::cout << "  " << r << '\n';
    }
    std::cout << '\n';
  }

  if (opts.csv_path) {
    std::ofstream os(*opts.csv_path);
    if (!os) {
      std::cerr << "cannot open " << *opts.csv_path << '\n';
      return 2;
    }
    core::write_csv(os, ms);
    std::cout << "wrote " << ms.size() << " rows to " << *opts.csv_path
              << '\n';
  }

  if (opts.prv_base) {
    if (opts.sweep) {
      std::cerr << "--prv requires a single run (omit --sweep)\n";
      return 2;
    }
    // re-run with tracing enabled
    miniapp::MiniApp app(mesh, state, cfg);
    sim::Vpu vpu(*machine);
    trace::VehaveTrace tr(1u << 22);
    vpu.set_observer(&tr);
    (void)app.run(vpu);
    std::ofstream prv(*opts.prv_base + ".prv");
    std::ofstream pcf(*opts.prv_base + ".pcf");
    if (!prv || !pcf) {
      std::cerr << "cannot open " << *opts.prv_base << ".prv/.pcf\n";
      return 2;
    }
    const std::size_t n = trace::write_paraver_prv(prv, tr);
    trace::write_paraver_pcf(pcf);
    std::cout << "wrote " << n << " trace records to " << *opts.prv_base
              << ".prv (" << tr.dropped() << " dropped)\n";
  }
  return 0;
}
