#!/usr/bin/env python3
"""vecfd-lint — static checker for this repo's measurement/threading contracts.

Every hard bug in PRs 2-5 was a violated *implicit* contract, found by hand
after the fact.  This tool encodes those contracts as machine-checked rules
(see DESIGN.md §7 for the rule-by-rule rationale and the historical bug each
one fences):

  measured-alloc        no allocation churn of measured buffers inside a
                        measurement region (the PR 3 canonical-line aliasing
                        bug class)
  raw-thread            no std::thread / std::mutex / lock types outside
                        core/parallel.h + core/thread_annotations.h (keeps
                        -Wthread-safety's annotated surface exhaustive)
  solve-report-history  every function returning SolveReport funnels every
                        exit through solver::checked(...) (the PR 4
                        history.size() == iterations + 1 invariant)
  csv-phase-literal     no hard-coded per-phase column names ("ph9_...") in
                        src/ or tools/ — CSV schemas derive columns from
                        miniapp::kNumInstrumentedPhases (the PR 2 desync)
  counter-registry      sim::Counters is an X-macro registry
                        (VECFD_COUNTERS): fields are declared only through
                        it, operator+=/operator-= expand it, and the
                        registry consumers (core/csv.cpp, bench_to_json,
                        the conservation test) never enumerate counters by
                        hand — subsumes and strengthens PR 6's
                        counter-aggregation rule: wiring drift is now
                        structurally impossible instead of merely detected
  strip-mine-contract   inside Vpu&-taking kernel functions, raw loops must
                        not call set_vl or issue vector ops — strip-mining
                        goes through the for_strips helper, whose tail strip
                        carries the effective-AVL accounting (the PR 2
                        tail-mask/AVL bug class)
  determinism-audit     no order-sensitive FP accumulation across
                        parallel_for_index iterations (per-slot results
                        only) and no std::unordered_map/set in the
                        CSV/report output layer — the two hazards that
                        break the byte-identical serial/parallel guarantee
  checkpoint-fields     every field of the VECFD_TIMELOOP_STATE registry
                        (miniapp/checkpoint.h) appears in BOTH
                        serialize_state() and deserialize_state() — a field
                        serialized but not restored (or vice versa)
                        silently breaks restart bit-identity

Engines: with the libclang python bindings installed (`python3-clang`),
function boundaries/signatures come from a real clang parse (--engine
libclang or auto); otherwise a built-in C++ lexer provides them (--engine
lex, always available).  Both engines feed the same rule implementations
and agree on the fixture suite under tests/lint/.

Usage:
  vecfd_lint.py [--repo-root DIR] [--engine auto|lex|libclang] [PATH...]
  vecfd_lint.py --self-test          # run the fixture suite
  vecfd_lint.py --list-rules

With no PATHs, scans src/ tools/ bench/ under the repo root.  Exit codes
follow the vecfd-run contract: 0 clean, 1 findings, 2 usage/internal error.

Suppressions (every suppression carries a justification):
  * inline, on the offending line or the line above:
      // vecfd-lint: allow(rule-id) <justification>
  * repo-wide, one per line in .vecfd-lint-suppressions at the repo root:
      rule-id  path/glob  [expires=PR<N>]  <justification>
    An `expires=PR<N>` field marks the entry for re-justification: once the
    repo is past PR N (current PR inferred from CHANGES.md, override with
    --current-pr), the entry still suppresses but vecfd-lint warns on
    stderr that it is past due.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# shared lexing: comment/string stripping with positions preserved
# --------------------------------------------------------------------------


@dataclass
class StringLiteral:
    line: int
    text: str


@dataclass
class SourceFile:
    path: str  # repo-relative, '/'-separated
    raw: str
    stripped: str  # comments and literal *contents* blanked, layout kept
    strings: list  # list[StringLiteral]
    raw_lines: list  # list[str]


def lex_source(path: str, raw: str) -> SourceFile:
    """Blank comments and string/char literal contents (keeping newlines so
    offsets and line numbers survive), recording string literals for rules
    that inspect them."""
    out = []
    strings = []
    i, n = 0, len(raw)
    line = 1
    mode = "code"  # code | line_comment | block_comment | string | char
    literal = []

    def blank(ch):
        out.append("\n" if ch == "\n" else " ")

    while i < n:
        ch = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if mode == "code":
            if ch == "/" and nxt == "/":
                mode = "line_comment"
                blank(ch)
            elif ch == "/" and nxt == "*":
                mode = "block_comment"
                blank(ch)
            elif ch == '"':
                mode = "string"
                literal = []
                out.append('"')
            elif ch == "'":
                mode = "char"
                out.append("'")
            else:
                out.append(ch)
        elif mode == "line_comment":
            if ch == "\n":
                mode = "code"
            blank(ch)
        elif mode == "block_comment":
            if ch == "*" and nxt == "/":
                blank(ch)
                blank(nxt)
                i += 2
                line += raw[i - 2 : i].count("\n")
                mode = "code"
                continue
            blank(ch)
        elif mode == "string":
            if ch == "\\" and i + 1 < n:
                literal.append(raw[i : i + 2])
                blank(ch)
                blank(nxt)
                i += 2
                line += raw[i - 2 : i].count("\n")
                continue
            if ch == '"':
                strings.append(StringLiteral(line, "".join(literal)))
                out.append('"')
                mode = "code"
            else:
                literal.append(ch)
                blank(ch)
        elif mode == "char":
            if ch == "\\" and i + 1 < n:
                blank(ch)
                blank(nxt)
                i += 2
                line += raw[i - 2 : i].count("\n")
                continue
            if ch == "'":
                out.append("'")
                mode = "code"
            else:
                blank(ch)
        if ch == "\n":
            line += 1
        i += 1

    return SourceFile(
        path=path,
        raw=raw,
        stripped="".join(out),
        strings=strings,
        raw_lines=raw.splitlines(),
    )


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# function extraction (lex engine + optional libclang engine)
# --------------------------------------------------------------------------


@dataclass
class FunctionDef:
    name: str
    ret: str  # return-type text ('' when unknown)
    params: str  # parameter-list text
    body_start: int  # offset of the opening '{' in the stripped text
    body_end: int  # offset one past the closing '}'
    line: int


_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "do",
    "else", "new", "delete", "throw", "case", "default", "alignof",
    "static_assert", "decltype",
}

# A function head: return-type tokens, a name, a parameter list, optional
# specifiers, then the body's '{'.  The return type must end in a
# separator ([\s&*>]) so a bare call statement `foo(args) {` cannot be
# split into ret='f' name='oo'.
_FUNC_RE = re.compile(
    r"(?P<ret>[A-Za-z_][\w:<>,&*\s\[\]]*?[\s&*>])\s*"
    r"(?P<name>~?[A-Za-z_]\w*)\s*"
    r"\((?P<params>[^;{}]*?)\)\s*"
    r"(?P<spec>(?:const|noexcept|override|final|mutable|->\s*[\w:<>&*\s]+"
    r"|VECFD_\w+(?:\([^)]*\))?|\s)*)"
    r"\{"
)


def match_braces(text: str, open_idx: int) -> int:
    """Offset one past the brace matching text[open_idx] (which is '{')."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def find_functions_lex(src: SourceFile) -> list:
    funcs = []
    for m in _FUNC_RE.finditer(src.stripped):
        name = m.group("name").lstrip("~")
        if name in _CONTROL_KEYWORDS:
            continue
        body_start = m.end() - 1
        funcs.append(
            FunctionDef(
                name=name,
                ret=" ".join(m.group("ret").split()),
                params=" ".join(m.group("params").split()),
                body_start=body_start,
                body_end=match_braces(src.stripped, body_start),
                line=line_of(src.stripped, m.start("name")),
            )
        )
    return funcs


def _libclang_index():
    import clang.cindex  # noqa: F401  (ImportError → caller falls back)

    return clang.cindex.Index.create()


def find_functions_libclang(src: SourceFile, repo_root: str) -> list:
    """Function extents from a real clang parse.  Any failure (missing
    bindings, unloadable library, parse wreckage) falls back to the lexer:
    the rules only need extents + signatures, which both engines provide."""
    import clang.cindex as ci

    index = _libclang_index()
    tu = index.parse(
        src.path,
        args=["-std=c++20", "-x", "c++", "-I", os.path.join(repo_root, "src")],
        unsaved_files=[(src.path, src.raw)],
        options=ci.TranslationUnit.PARSE_INCOMPLETE,
    )
    # Offsets from clang refer to the raw text; the stripped text has
    # identical layout (stripping is length-preserving), so they transfer.
    kinds = {
        ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR,
        ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }
    funcs = []

    def visit(cursor):
        for child in cursor.get_children():
            if (
                child.kind in kinds
                and child.is_definition()
                and child.location.file is not None
                and child.location.file.name == src.path
            ):
                ext = child.extent
                start, end = ext.start.offset, ext.end.offset
                body = src.stripped.find("{", start, end)
                if body < 0:
                    continue
                params = ", ".join(
                    a.type.spelling + " " + (a.spelling or "")
                    for a in child.get_arguments()
                )
                funcs.append(
                    FunctionDef(
                        name=child.spelling,
                        ret=child.result_type.spelling,
                        params=params,
                        body_start=body,
                        body_end=match_braces(src.stripped, body),
                        line=child.location.line,
                    )
                )
            visit(child)

    visit(tu.cursor)
    return funcs


def find_functions(src: SourceFile, engine: str, repo_root: str) -> list:
    if engine in ("auto", "libclang"):
        try:
            return find_functions_libclang(src, repo_root)
        except Exception as e:  # noqa: BLE001 — any failure → lexer
            if engine == "libclang":
                print(
                    f"vecfd-lint: libclang engine unavailable ({e}); "
                    "falling back to lex",
                    file=sys.stderr,
                )
    return find_functions_lex(src)


# --------------------------------------------------------------------------
# findings and suppressions
# --------------------------------------------------------------------------


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_INLINE_ALLOW_RE = re.compile(r"vecfd-lint:\s*allow\(([\w\-,\s]+)\)\s*(\S.*)?")


def inline_suppressed(src: SourceFile, finding: Finding) -> bool:
    """`// vecfd-lint: allow(rule) why` on the finding's line or the line
    above.  A marker with no justification text does NOT suppress."""
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(src.raw_lines):
            m = _INLINE_ALLOW_RE.search(src.raw_lines[lineno - 1])
            if m and m.group(2):
                rules = [r.strip() for r in m.group(1).split(",")]
                if finding.rule in rules:
                    return True
    return False


_EXPIRES_RE = re.compile(r"^expires=PR(\d+)$")


@dataclass
class Suppression:
    rule: str
    glob: str
    lineno: int
    expires_pr: int | None = None  # still suppresses past due, but warns


@dataclass
class SuppressionFile:
    entries: list = field(default_factory=list)  # list[Suppression]
    used: set = field(default_factory=set)

    @staticmethod
    def load(path: str) -> "SuppressionFile":
        sup = SuppressionFile()
        if not os.path.exists(path):
            return sup
        with open(path, encoding="utf-8") as f:
            for lineno, raw_line in enumerate(f, 1):
                s = raw_line.strip()
                if not s or s.startswith("#"):
                    continue
                parts = s.split(None, 3)
                expires = None
                if len(parts) >= 3:
                    m = _EXPIRES_RE.match(parts[2])
                    if m:
                        expires = int(m.group(1))
                        del parts[2]
                if len(parts) < 3:
                    raise SystemExit(
                        f"{path}:{lineno}: suppression needs 'rule-id "
                        "path-glob [expires=PRn] justification'"
                    )
                sup.entries.append(
                    Suppression(parts[0], parts[1], lineno, expires)
                )
        return sup

    def matches(self, finding: Finding) -> bool:
        hit = False
        for e in self.entries:
            if e.rule == finding.rule and fnmatch.fnmatch(finding.path, e.glob):
                self.used.add(e.lineno)
                hit = True
        return hit


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------

RULES = {}


def rule(rule_id, doc):
    def deco(fn):
        RULES[rule_id] = (fn, doc)
        fn.rule_id = rule_id
        return fn

    return deco


_VPU_PARAM_RE = re.compile(r"(?:sim\s*::\s*)?Vpu\s*[&*]\s*(\w+)")
_ALLOC_CHURN_RE = re.compile(
    r"(?P<decl>\bstd\s*::\s*vector\s*<[^;()]{0,80}>\s+\w+\s*[;({=])"
    r"|(?P<free>\.\s*(?:resize|shrink_to_fit)\s*\()"
    r"|(?P<del>\bdelete\b)"
)


@rule(
    "measured-alloc",
    "inside a function taking a Vpu&, no local std::vector declaration, "
    ".resize()/.shrink_to_fit() or delete after the first use of the Vpu — "
    "freed host lines let later allocations re-alias canonical cache lines "
    "(PR 3 bug class); hoist workspaces out of the measured region",
)
def rule_measured_alloc(src: SourceFile, funcs: list) -> list:
    findings = []
    for fn in funcs:
        pm = _VPU_PARAM_RE.search(fn.params)
        if not pm:
            continue
        vpu = pm.group(1) or "vpu"
        body = src.stripped[fn.body_start : fn.body_end]
        first_use = re.search(rf"\b{re.escape(vpu)}\b", body)
        if not first_use:
            continue
        for m in _ALLOC_CHURN_RE.finditer(body, first_use.start()):
            if m.group("decl") and "&" in m.group("decl"):
                continue  # reference binding, not a new buffer
            what = (m.group("decl") or m.group("free") or m.group("del")).strip()
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, fn.body_start + m.start()),
                    "measured-alloc",
                    f"allocation churn `{what}` inside the measurement "
                    f"region of {fn.name}() (after first use of Vpu "
                    f"`{vpu}`); hoist the buffer into a reusable workspace",
                )
            )
    return findings


_HALO_WRITE_RE = re.compile(
    r"\b(?P<buf>\w*(?:halo|ghost)\w*)\s*"
    r"(?:\.\s*\w+\s*(?:\(\s*\))?\s*)?"  # .data() / member access
    r"\[[^\]]*\]\s*(?:[+\-*/|&^]?=)(?!=)"
)
_SHARD_EXCHANGE_ALLOWED = ("src/sim/halo_exchange.cpp",)


@rule(
    "shard-exchange",
    "inside a function taking a Vpu&, no raw store into a halo/ghost-named "
    "buffer after the first use of the Vpu — ghost slots are refreshed "
    "only by sim::HaloExchange::exchange, which prices the transfer in "
    "the halo_lines_sent/recv/halo_messages counters; a raw store moves "
    "remote data for free and desynchronizes the volume model "
    "(same measurement-integrity class as measured-alloc)",
)
def rule_shard_exchange(src: SourceFile, funcs: list) -> list:
    if src.path in _SHARD_EXCHANGE_ALLOWED:
        return []
    findings = []
    for fn in funcs:
        pm = _VPU_PARAM_RE.search(fn.params)
        if not pm:
            continue
        vpu = pm.group(1) or "vpu"
        body = src.stripped[fn.body_start : fn.body_end]
        first_use = re.search(rf"\b{re.escape(vpu)}\b", body)
        if not first_use:
            continue
        for m in _HALO_WRITE_RE.finditer(body, first_use.start()):
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, fn.body_start + m.start()),
                    "shard-exchange",
                    f"raw store into ghost/halo buffer `{m.group('buf')}` "
                    f"inside the measurement region of {fn.name}() (after "
                    f"first use of Vpu `{vpu}`); ghost slots are written "
                    "only by sim::HaloExchange::exchange so the transfer "
                    "is priced in the halo counters",
                )
            )
    return findings


_RAW_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|mutex|recursive_mutex|shared_mutex|"
    r"timed_mutex|recursive_timed_mutex|condition_variable(?:_any)?|"
    r"scoped_lock|lock_guard|unique_lock|shared_lock|async|promise|"
    r"packaged_task)\b"
)
_RAW_THREAD_ALLOWED = ("src/core/parallel.h", "src/core/thread_annotations.h")


@rule(
    "raw-thread",
    "std::thread/std::mutex/lock primitives only in core/parallel.h and "
    "core/thread_annotations.h — all fan-out goes through "
    "parallel_for_index and all locking through the annotated core::Mutex, "
    "so clang -Wthread-safety sees every lock in the process",
)
def rule_raw_thread(src: SourceFile, funcs: list) -> list:
    if src.path in _RAW_THREAD_ALLOWED:
        return []
    return [
        Finding(
            src.path,
            line_of(src.stripped, m.start()),
            "raw-thread",
            f"raw std::{m.group(1)} outside core/parallel.h; use "
            "core::parallel_for_index / core::Mutex (thread_annotations.h) "
            "so the threading surface stays annotated and TSan-covered",
        )
        for m in _RAW_THREAD_RE.finditer(src.stripped)
    ]


_REPORT_RET_RE = re.compile(
    r"^(?:static\s+)?(?:solver\s*::\s*)?"
    r"(?:std\s*::\s*vector\s*<\s*(?:solver\s*::\s*)?SolveReport\s*>|"
    r"SolveReport)$"
)
_REPORT_DECL_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*vector\s*<\s*(?:solver\s*::\s*)?SolveReport\s*>"
    r"|(?:solver\s*::\s*)?SolveReport)\s+(\w+)\s*[;({=]"
)
_RETURN_ID_RE = re.compile(r"\breturn\s+(\w+)\s*;")
_RETURN_BRACE_RE = re.compile(r"\breturn\s+(?:solver\s*::\s*)?SolveReport\s*\{")


@rule(
    "solve-report-history",
    "every function returning SolveReport (or a vector of them) must route "
    "each return through solver::checked(...), the always-on gate for the "
    "history.size() == iterations + 1 contract (PR 4 invariant)",
)
def rule_solve_report_history(src: SourceFile, funcs: list) -> list:
    findings = []
    for fn in funcs:
        if not _REPORT_RET_RE.match(fn.ret.strip()):
            continue
        body = src.stripped[fn.body_start : fn.body_end]
        report_vars = {m.group(1) for m in _REPORT_DECL_RE.finditer(body)}
        for m in _RETURN_ID_RE.finditer(body):
            if m.group(1) in report_vars:
                findings.append(
                    Finding(
                        src.path,
                        line_of(src.stripped, fn.body_start + m.start()),
                        "solve-report-history",
                        f"{fn.name}() returns `{m.group(1)}` without "
                        "solver::checked(...); every SolveReport exit must "
                        "pass the history-invariant gate (krylov.h)",
                    )
                )
        for m in _RETURN_BRACE_RE.finditer(body):
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, fn.body_start + m.start()),
                    "solve-report-history",
                    f"{fn.name}() returns a SolveReport literal without "
                    "solver::checked(...)",
                )
            )
    return findings


_PH_LITERAL_RE = re.compile(r"ph\d")


@rule(
    "csv-phase-literal",
    'no hard-coded per-phase column name ("ph9_cycles", ...) in string '
    "literals — both CSV schemas derive their phase columns from "
    "miniapp::kNumInstrumentedPhases (the PR 2 header/row desync).  "
    "bench/'s human-readable display tables are exempted repo-wide in "
    ".vecfd-lint-suppressions",
)
def rule_csv_phase_literal(src: SourceFile, funcs: list) -> list:
    return [
        Finding(
            src.path,
            s.line,
            "csv-phase-literal",
            f'string literal "{s.text}" hard-codes a phase column; derive '
            "phase columns from miniapp::kNumInstrumentedPhases",
        )
        for s in src.strings
        if _PH_LITERAL_RE.search(s.text)
    ]


_COUNTER_FIELD_RE = re.compile(
    r"^\s*(?:std\s*::\s*)?(?:uint64_t|double)\s+(\w+)\s*=", re.M
)
_REGISTRY_ENTRY_RE = re.compile(r"^\s*X\(\s*(\w+)\s*,", re.M)


def _member_section(text: str, signature: str) -> str:
    """Body of the *definition* of `signature` (skipping declarations: the
    occurrence must be followed by a parameter list and then '{', not ';')."""
    pos = 0
    while True:
        i = text.find(signature, pos)
        if i < 0:
            return ""
        pos = i + len(signature)
        after = text[pos:].lstrip()
        if after.startswith("{"):  # struct/class body: no parameter list
            open_idx = text.index("{", pos)
            return text[open_idx : match_braces(text, open_idx)]
        paren = text.find("(", pos)
        if paren < 0:
            return ""
        depth, j = 0, paren
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        tail = text[j + 1 :].lstrip()
        if tail.startswith("{"):
            open_idx = text.index("{", j + 1)
            return text[open_idx : match_braces(text, open_idx)]


def _registry_block(stripped: str, macro: str = "VECFD_COUNTERS"):
    """(start, end) offsets of the `#define <macro>(X)` macro body — the
    define line plus every backslash-continued line — or None."""
    m = re.search(r"#\s*define\s+" + macro + r"\s*\(", stripped)
    if not m:
        return None
    end = m.start()
    while True:
        nl = stripped.find("\n", end)
        if nl < 0:
            return (m.start(), len(stripped))
        line = stripped[end:nl]
        if not line.rstrip().endswith("\\"):
            return (m.start(), nl)
        end = nl + 1


def _mask_nested_braces(text: str) -> str:
    """Blank everything inside brace pairs (member-function bodies inside a
    struct body), keeping layout, so member-declaration regexes only see
    the struct's own declaration lines."""
    out = list(text)
    depth = 0
    for i, ch in enumerate(text):
        if ch == "{":
            depth += 1
            continue
        if ch == "}":
            depth -= 1
            continue
        if depth > 0 and ch != "\n":
            out[i] = " "
    return "".join(out)


def _load_stripped(repo_root: str, relpath: str):
    abspath = os.path.join(repo_root, relpath.replace("/", os.sep))
    if not os.path.exists(abspath):
        return None
    return lex_source(relpath, open(abspath, encoding="utf-8").read())


# Files generated from the counter registry: these may iterate it
# (visit / visit_fields / visit_pairs / VECFD_COUNTERS expansion) but must
# never name an individual counter, or the hand-kept enumeration can drift
# the moment the registry grows.
_REGISTRY_CONSUMERS = (
    "src/core/csv.cpp",
    "tools/bench_to_json.cpp",
    "tests/test_time_loop_conservation.cpp",
)


@rule(
    "counter-registry",
    "sim::Counters is an X-macro registry: every field is declared through "
    "VECFD_COUNTERS, operator+= / operator-= expand the registry instead of "
    "enumerating fields, and the registry consumers (core/csv.cpp, "
    "tools/bench_to_json.cpp, the conservation test) go through the "
    "visit*() visitors — so a counter added to the registry is wired "
    "everywhere at once, and a hand-kept per-field list anywhere is a "
    "finding (subsumes PR 6's counter-aggregation rule)",
)
def rule_counter_registry(repo_root: str) -> list:
    src = _load_stripped(repo_root, "src/sim/counters.h")
    if src is None:
        return []
    findings = []

    block = _registry_block(src.stripped)
    if block is None:
        return [
            Finding(
                "src/sim/counters.h", 1, "counter-registry",
                "no VECFD_COUNTERS X-macro registry — counters must be "
                "declared through the registry (see DESIGN.md §7)",
            )
        ]
    fields = _REGISTRY_ENTRY_RE.findall(src.stripped[block[0] : block[1]])
    if not fields:
        return [
            Finding(
                "src/sim/counters.h", line_of(src.stripped, block[0]),
                "counter-registry",
                "VECFD_COUNTERS registry is empty",
            )
        ]

    # 1. No bare data members in struct Counters outside the registry: a
    #    smuggled field silently skips aggregation, CSV and conservation.
    struct_start = src.stripped.find("struct Counters")
    struct_body = _member_section(src.stripped, "struct Counters")
    if struct_body:
        open_idx = src.stripped.index("{", struct_start)
        decl_surface = _mask_nested_braces(struct_body[1:-1])
        for m in _COUNTER_FIELD_RE.finditer(decl_surface):
            findings.append(
                Finding(
                    "src/sim/counters.h",
                    line_of(src.stripped, open_idx + 1 + m.start(1)),
                    "counter-registry",
                    f"data member `{m.group(1)}` declared outside the "
                    "VECFD_COUNTERS registry; add it as a registry entry "
                    "so aggregation, CSV schemas and the conservation "
                    "test pick it up",
                )
            )

    # 2. The aggregation operators must be macro expansions, not hand lists.
    for op in ("operator+=", "operator-="):
        body = _member_section(src.stripped, op)
        if not body:
            findings.append(
                Finding(
                    "src/sim/counters.h", 1, "counter-registry",
                    f"Counters::{op} has no definition expanding "
                    "VECFD_COUNTERS",
                )
            )
            continue
        pos = src.stripped.find(op)
        if "VECFD_COUNTERS" not in body:
            findings.append(
                Finding(
                    "src/sim/counters.h", line_of(src.stripped, pos),
                    "counter-registry",
                    f"Counters::{op} does not expand the VECFD_COUNTERS "
                    "registry — hand-written aggregation drifts the moment "
                    "a counter is added",
                )
            )
            continue
        named = [n for n in fields if re.search(rf"\b{n}\b", body)]
        if named:
            findings.append(
                Finding(
                    "src/sim/counters.h", line_of(src.stripped, pos),
                    "counter-registry",
                    f"Counters::{op} names counter(s) "
                    + ", ".join(f"`{n}`" for n in named)
                    + " alongside the VECFD_COUNTERS expansion; the "
                    "operator body must be a pure registry expansion",
                )
            )

    # 3. Registry consumers never name individual counters — they iterate
    #    the registry through the visitors, so coverage is structural.
    for rel in _REGISTRY_CONSUMERS:
        consumer = _load_stripped(repo_root, rel)
        if consumer is None:
            continue
        for name in fields:
            for m in re.finditer(rf"\b{name}\b", consumer.stripped):
                f = Finding(
                    rel, line_of(consumer.stripped, m.start()),
                    "counter-registry",
                    f"registry consumer names counter `{name}` directly; "
                    "iterate the registry (Counters::visit / visit_fields "
                    "/ visit_pairs) so new counters cannot be skipped",
                )
                if not inline_suppressed(consumer, f):
                    findings.append(f)
    return findings


_STATE_ENTRY_RE = re.compile(r"^\s*X\(\s*(\w+)\s*\)", re.M)


@rule(
    "checkpoint-fields",
    "the TimeLoop checkpoint state is an X-macro registry "
    "(VECFD_TIMELOOP_STATE in miniapp/checkpoint.h): every registered "
    "field must appear in BOTH serialize_state() and deserialize_state() "
    "(miniapp/checkpoint.cpp) — a field written but never restored (or "
    "restored but never written) silently breaks the checkpoint/restart "
    "bit-identity contract instead of failing a build",
)
def rule_checkpoint_fields(repo_root: str) -> list:
    header = _load_stripped(repo_root, "src/miniapp/checkpoint.h")
    if header is None:
        return []
    findings = []

    block = _registry_block(header.stripped, "VECFD_TIMELOOP_STATE")
    if block is None:
        return [
            Finding(
                "src/miniapp/checkpoint.h", 1, "checkpoint-fields",
                "no VECFD_TIMELOOP_STATE X-macro registry — checkpoint "
                "fields must be declared through the registry so "
                "serialize/deserialize coverage is checkable",
            )
        ]
    fields = _STATE_ENTRY_RE.findall(header.stripped[block[0] : block[1]])
    if not fields:
        return [
            Finding(
                "src/miniapp/checkpoint.h", line_of(header.stripped, block[0]),
                "checkpoint-fields",
                "VECFD_TIMELOOP_STATE registry is empty",
            )
        ]

    impl = _load_stripped(repo_root, "src/miniapp/checkpoint.cpp")
    if impl is None:
        return [
            Finding(
                "src/miniapp/checkpoint.h", line_of(header.stripped, block[0]),
                "checkpoint-fields",
                "VECFD_TIMELOOP_STATE registry has no implementation file "
                "(src/miniapp/checkpoint.cpp)",
            )
        ]
    for func in ("serialize_state", "deserialize_state"):
        body = _member_section(impl.stripped, func)
        if not body:
            findings.append(
                Finding(
                    "src/miniapp/checkpoint.cpp", 1, "checkpoint-fields",
                    f"{func}() has no definition in checkpoint.cpp",
                )
            )
            continue
        pos = impl.stripped.find(func)
        for name in fields:
            if not re.search(rf"\b{name}\b", body):
                findings.append(
                    Finding(
                        "src/miniapp/checkpoint.cpp",
                        line_of(impl.stripped, pos),
                        "checkpoint-fields",
                        f"{func}() never mentions registered checkpoint "
                        f"field `{name}` (VECFD_TIMELOOP_STATE); a field "
                        "covered in only one direction breaks restart "
                        "bit-identity",
                    )
                )
    return findings


_LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
_FOR_STRIPS_CALL_RE = re.compile(r"\bfor_strips\s*(?:<[^>]*>\s*)?\(")


def match_parens(text: str, open_idx: int) -> int:
    """Offset one past the ')' matching text[open_idx] (which is '(')."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


@rule(
    "strip-mine-contract",
    "inside a Vpu&-taking kernel function, raw for/while loops must not "
    "call vpu.set_vl() or issue vector ops (vpu.v*) — strip-mining goes "
    "through the for_strips helper, whose tail strip carries the "
    "effective-AVL/tail-mask accounting (the PR 2 bug class where a "
    "hand-rolled tail strip ran at the wrong AVL).  The for_strips "
    "definition itself is exempt; slab loops inside a for_strips lambda "
    "run at a granted vl and are fine",
)
def rule_strip_mine(src: SourceFile, funcs: list) -> list:
    findings = []
    for fn in funcs:
        if fn.name == "for_strips":
            continue
        pm = _VPU_PARAM_RE.search(fn.params)
        if not pm:
            continue
        vpu = pm.group(1) or "vpu"
        body = src.stripped[fn.body_start : fn.body_end]

        # Extents of for_strips(...) calls: everything inside (including the
        # strip-body lambda) is the sanctioned pattern.
        exempt = []
        for m in _FOR_STRIPS_CALL_RE.finditer(body):
            open_idx = body.index("(", m.start())
            exempt.append((m.start(), match_parens(body, open_idx)))

        def exempted(pos):
            return any(a <= pos < b for a, b in exempt)

        # Extents of raw loops outside those calls.
        loops = []
        for m in _LOOP_RE.finditer(body):
            if exempted(m.start()):
                continue
            open_idx = body.index("(", m.start())
            head_end = match_parens(body, open_idx)
            tail = body[head_end:]
            brace = len(tail) - len(tail.lstrip())
            if tail.lstrip().startswith("{"):
                end = match_braces(body, head_end + brace)
            else:
                end = body.find(";", head_end)
                end = len(body) if end < 0 else end + 1
            loops.append((m.start(), end))

        issue_re = re.compile(
            rf"\b{re.escape(vpu)}\s*\.\s*(set_vl|v\w+)\s*\("
        )
        offenders = [
            m for m in issue_re.finditer(body)
            if not exempted(m.start())
            and any(a <= m.start() < b for a, b in loops)
        ]
        if offenders:
            first = offenders[0]
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, fn.body_start + first.start()),
                    "strip-mine-contract",
                    f"{fn.name}() issues `{vpu}.{first.group(1)}` inside a "
                    f"raw loop ({len(offenders)} vector issue(s) outside "
                    "for_strips); strip-mine through for_strips so the "
                    "tail strip carries the effective-AVL accounting",
                )
            )
    return findings


_UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set)\b")
# The layers whose bytes reach CSV/JSON/report output: iteration order must
# be deterministic there.  (mem/ and solver/ internals may hash freely.)
_OUTPUT_LAYER_PREFIXES = (
    "src/core/", "src/metrics/", "src/stats/", "src/trace/", "tools/",
    "bench/",
)
_PARALLEL_CALL_RE = re.compile(r"\bparallel_for_index\s*\(")
_COMPOUND_ASSIGN_RE = re.compile(r"(?<![\w\].])(\w+)\s*[+\-*/]=(?!=)")


@rule(
    "determinism-audit",
    "two hazards that break the byte-identical serial/parallel guarantee: "
    "(1) compound assignment into a variable captured from outside a "
    "parallel_for_index callback — iteration interleaving makes FP "
    "accumulation order-dependent; write per-slot results and reduce after "
    "the join; (2) std::unordered_map/unordered_set anywhere in the "
    "CSV/report output layer (src/core, src/metrics, src/stats, src/trace, "
    "tools, bench) — iteration order is unspecified and varies across "
    "libstdc++ versions, so emitted rows silently reorder",
)
def rule_determinism_audit(src: SourceFile, funcs: list) -> list:
    findings = []

    # (1) cross-iteration accumulation in parallel callbacks.
    for call in _PARALLEL_CALL_RE.finditer(src.stripped):
        open_idx = src.stripped.index("(", call.start())
        extent = src.stripped[open_idx:match_parens(src.stripped, open_idx)]
        for m in _COMPOUND_ASSIGN_RE.finditer(extent):
            name = m.group(1)
            # Declared inside the callback (a per-iteration local
            # accumulator) is fine: a type-ish token precedes the name.
            if re.search(
                rf"[A-Za-z_][\w:<>]*[\s&]\s*{re.escape(name)}\s*[={{;(]",
                extent[: m.start()],
            ):
                continue
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, open_idx + m.start()),
                    "determinism-audit",
                    f"`{name}` is accumulated across parallel_for_index "
                    "iterations; the interleaving makes the reduction "
                    "order-dependent — write per-slot results and reduce "
                    "deterministically after the join",
                )
            )

    # (2) unordered containers in the output layer.  Bare fixture names
    # (no directory) opt in so the fixture pair can exercise the rule.
    in_output_layer = "/" not in src.path or src.path.startswith(
        _OUTPUT_LAYER_PREFIXES
    )
    if in_output_layer:
        for m in _UNORDERED_RE.finditer(src.stripped):
            findings.append(
                Finding(
                    src.path,
                    line_of(src.stripped, m.start()),
                    "determinism-audit",
                    f"std::unordered_{m.group(1)} in the output layer: "
                    "iteration order is unspecified, so CSV/report bytes "
                    "depend on the standard library — use std::map / "
                    "std::set or sort before emitting",
                )
            )
    return findings


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

_SCAN_EXTS = (".h", ".cpp", ".cc", ".hpp")
_FILE_RULES = [
    rule_measured_alloc,
    rule_shard_exchange,
    rule_raw_thread,
    rule_solve_report_history,
    rule_csv_phase_literal,
    rule_strip_mine,
    rule_determinism_audit,
]
# Repo-level rules: they inspect fixed files relative to a repo root (the
# real one, or a mini-root fixture dir under tests/lint/).
_REPO_RULES = [
    rule_counter_registry,
    rule_checkpoint_fields,
]


def scan_file(abspath: str, relpath: str, engine: str, repo_root: str) -> list:
    raw = open(abspath, encoding="utf-8", errors="replace").read()
    src = lex_source(relpath.replace(os.sep, "/"), raw)
    funcs = find_functions(src, engine, repo_root)
    findings = []
    for fn_rule in _FILE_RULES:
        findings.extend(f for f in fn_rule(src, funcs) if not inline_suppressed(src, f))
    return findings


def scan_tree(repo_root: str, paths: list, engine: str) -> list:
    findings = []
    for p in paths:
        absp = p if os.path.isabs(p) else os.path.join(repo_root, p)
        if os.path.isfile(absp):
            rel = os.path.relpath(absp, repo_root)
            findings.extend(scan_file(absp, rel, engine, repo_root))
            continue
        for dirpath, _dirnames, filenames in os.walk(absp):
            for name in sorted(filenames):
                if not name.endswith(_SCAN_EXTS):
                    continue
                fp = os.path.join(dirpath, name)
                rel = os.path.relpath(fp, repo_root)
                findings.extend(scan_file(fp, rel, engine, repo_root))
    for repo_rule in _REPO_RULES:
        findings.extend(repo_rule(repo_root))
    return findings


# --------------------------------------------------------------------------
# fixture self-test: every fixture file declares its expected findings with
# `EXPECT-FINDING(rule-id)` comment markers on the offending lines; clean
# fixtures carry none and must produce none.
# --------------------------------------------------------------------------

_EXPECT_RE = re.compile(r"EXPECT-FINDING\(([\w\-]+)\)")


def self_test(repo_root: str, engine: str) -> int:
    fixture_dir = os.path.join(repo_root, "tests", "lint")
    if not os.path.isdir(fixture_dir):
        print(f"vecfd-lint: no fixture dir at {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    cases = 0

    def check(name, got, want):
        nonlocal failures, cases
        cases += 1
        got, want = sorted(got), sorted(want)
        if got != want:
            failures += 1
            print(f"FAIL {name}")
            for g in got:
                marker = "unexpected" if g not in want else "ok"
                print(f"  got  ({marker}): {g}")
            for w in want:
                if w not in got:
                    print(f"  missing      : {w}")
        else:
            print(f"ok   {name} ({len(want)} expected finding(s))")

    for name in sorted(os.listdir(fixture_dir)):
        path = os.path.join(fixture_dir, name)
        if os.path.isfile(path) and name.endswith(_SCAN_EXTS):
            raw = open(path, encoding="utf-8").read()
            want = [
                (lineno, m.group(1))
                for lineno, text in enumerate(raw.splitlines(), 1)
                for m in _EXPECT_RE.finditer(text)
            ]
            # Scanned under their bare name: fixtures exercise every rule,
            # including ones whose tree scope excludes tests/.
            got = [
                (f.line, f.rule)
                for f in scan_file(path, name, engine, repo_root)
            ]
            check(name, got, want)
        elif os.path.isdir(path) and os.path.isdir(
            os.path.join(path, "src")
        ):
            # Repo-level-rule fixtures: a mini repo root.  Every repo rule
            # runs against it (each skips when its files are absent), and
            # findings can land in any file, so EXPECT markers are
            # collected from every file and keyed by repo-relative path.
            want = []
            for dirpath, _dn, filenames in os.walk(path):
                for fname in sorted(filenames):
                    if not fname.endswith(_SCAN_EXTS):
                        continue
                    fp = os.path.join(dirpath, fname)
                    rel = os.path.relpath(fp, path).replace(os.sep, "/")
                    raw = open(fp, encoding="utf-8").read()
                    want.extend(
                        (rel, lineno, m.group(1))
                        for lineno, text in enumerate(raw.splitlines(), 1)
                        for m in _EXPECT_RE.finditer(text)
                    )
            got = [
                (f.path, f.line, f.rule)
                for repo_rule in _REPO_RULES
                for f in repo_rule(path)
            ]
            check(name + "/", got, want)

    print(f"{cases} fixture case(s), {failures} failure(s)")
    return 1 if failures else 0


_CHANGES_PR_RE = re.compile(r"^- PR (\d+):", re.M)


def _infer_current_pr(repo_root: str):
    """The PR under development = highest '- PR n:' in CHANGES.md, plus one
    (CHANGES.md records *merged* PRs).  None when CHANGES.md is absent."""
    path = os.path.join(repo_root, "CHANGES.md")
    if not os.path.exists(path):
        return None
    nums = _CHANGES_PR_RE.findall(open(path, encoding="utf-8").read())
    return max(int(n) for n in nums) + 1 if nums else None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="vecfd-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src tools bench)")
    ap.add_argument("--repo-root", default=".", help="repository root")
    ap.add_argument(
        "--engine", choices=("auto", "lex", "libclang"), default="auto",
        help="function-boundary engine (auto: libclang if importable)",
    )
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the tests/lint fixture suite")
    ap.add_argument(
        "--current-pr", type=int, default=None,
        help="PR number for expires=PR<N> checks (default: inferred from "
        "the highest '- PR n:' line in CHANGES.md, plus one)",
    )
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id, (_fn, doc) in sorted(RULES.items()):
            print(f"{rule_id}\n    {doc}\n")
        return 0

    repo_root = os.path.abspath(args.repo_root)
    if args.self_test:
        return self_test(repo_root, args.engine)

    paths = args.paths or ["src", "tools", "bench"]
    suppressions = SuppressionFile.load(
        os.path.join(repo_root, ".vecfd-lint-suppressions")
    )
    findings = [
        f for f in scan_tree(repo_root, paths, args.engine)
        if not suppressions.matches(f)
    ]
    for f in findings:
        print(f)
    current_pr = (
        args.current_pr
        if args.current_pr is not None
        else _infer_current_pr(repo_root)
    )
    for e in suppressions.entries:
        if e.lineno not in suppressions.used:
            print(
                f"vecfd-lint: note: unused suppression at "
                f".vecfd-lint-suppressions:{e.lineno} ({e.rule} {e.glob})",
                file=sys.stderr,
            )
        if (
            e.expires_pr is not None
            and current_pr is not None
            and current_pr > e.expires_pr
        ):
            print(
                f"vecfd-lint: warning: suppression at "
                f".vecfd-lint-suppressions:{e.lineno} ({e.rule} {e.glob}) "
                f"expired at PR{e.expires_pr} (current PR{current_pr}); "
                "re-justify or remove it",
                file=sys.stderr,
            )
    if findings:
        print(f"vecfd-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("vecfd-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
