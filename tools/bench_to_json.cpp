// bench_to_json — perf-trajectory baseline emitter.
//
// Runs the measurement cores of bench/multirhs_speedup and
// bench/spmv_format_sweep (shared in bench/bench_metrics.h) on a FIXED
// workload — independent of VECFD_BENCH_SMALL, so the checked-in baseline
// and any CI run measure the same thing — and serializes the scalar
// metrics as JSON:
//
//   { "schema": "vecfd-bench-v1",
//     "benches": { "<bench>": { "<metric>": <number>, ... }, ... } }
//
// Modes:
//   bench_to_json --out FILE          write the baseline (the PR workflow:
//                                     regenerate, review the diff, commit)
//   bench_to_json --check FILE        re-measure and compare against FILE
//                                     within --tolerance (default 1e-6
//                                     relative); exit 1 on drift or missing
//                                     metrics — the CI guard that keeps
//                                     BENCH_PR5.json honest
//   bench_to_json --counters-out FILE dump every sim::Counters registry
//                                     counter of a fixed tiny transient run
//                                     ("vecfd-counters-v1").  Generated from
//                                     the VECFD_COUNTERS X-macro via
//                                     Counters::visit(), so a counter added
//                                     to the registry lands here with no
//                                     wiring — and a hand-kept metric list
//                                     here is a vecfd-lint counter-registry
//                                     finding.
//
// The simulation is deterministic, so drift beyond last-ulp accumulation
// differences between compilers means a real perf change: regenerate the
// baseline in the same PR and let the reviewer see the trajectory.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "bench_metrics.h"
#include "fem/mesh.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "sim/counters.h"

namespace {

using namespace vecfd;
using Metrics = std::map<std::string, double>;
using Report = std::map<std::string, Metrics>;

/// multirhs_speedup core: blocked vs per-component momentum solve on the
/// cavity flow, worst slab reduction / AVL drift over the studied sizes.
Metrics measure_multirhs() {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 6, .ny = 6, .nz = 6};
  const fem::Mesh mesh(scen.mesh);
  const int steps = 2;
  Metrics m;
  double worst_redux = 1e30;
  double worst_avl_drift = 0.0;
  for (const int vs : {64, 256}) {
    const auto pc = bench::run_transient_point(
        mesh, scen, platforms::riscv_vec(), vs, steps, /*blocked=*/false,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/true);
    const auto blk = bench::run_transient_point(
        mesh, scen, platforms::riscv_vec(), vs, steps, /*blocked=*/true,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/true);
    // the same slab-accounting identity bench/multirhs_speedup prints
    const bench::SlabComparison cmp = bench::compare_slab_traffic(pc, blk);
    if (!cmp.valid) {
      std::cerr << "multirhs paths diverged at VS=" << vs
                << " — slab accounting invalid\n";
      std::exit(1);
    }
    worst_redux = std::min(worst_redux, cmp.redux);
    worst_avl_drift = std::max(worst_avl_drift, cmp.avl_drift);
    const std::string tag = "vs" + std::to_string(vs);
    m["slab_redux_" + tag] = cmp.redux;
    // JSON metric key for the fixed phase-9 speedup headline, not a CSV
    // schema column:
    // vecfd-lint: allow(csv-phase-literal) fixed headline key, not a schema
    m["ph9_speedup_" + tag] =
        blk.cycles > 0.0 ? pc.cycles / blk.cycles : 0.0;
  }
  m["worst_slab_redux"] = worst_redux;
  m["worst_avl_drift"] = worst_avl_drift;
  return m;
}

/// spmv_format_sweep core: ell vs sell(+rcm) on a shuffled-numbering
/// cavity at VS 256 on the two long-vector platforms.
Metrics measure_format_sweep() {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 10, .ny = 10, .nz = 10, .shuffle_nodes = true};
  const fem::Mesh mesh(scen.mesh);
  const int steps = 2;
  const int vs = 256;
  Metrics m;
  for (const auto& machine :
       {platforms::riscv_vec(), platforms::sx_aurora()}) {
    const auto ell = bench::run_transient_point(
        mesh, scen, machine, vs, steps, /*blocked=*/true,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/false);
    const auto sell_rcm = bench::run_transient_point(
        mesh, scen, machine, vs, steps, /*blocked=*/true,
        solver::SpmvFormat::kSell, /*rcm=*/true, /*spinup=*/false);
    const std::string tag = machine.name;
    m["gather_line_redux_" + tag] =
        ell.gather_lines_per_iteration() > 0.0
            ? sell_rcm.gather_lines_per_iteration() /
                  ell.gather_lines_per_iteration()
            : 0.0;
    m["solve_cycle_ratio_" + tag] =
        ell.solve_cycles() > 0.0
            ? sell_rcm.solve_cycles() / ell.solve_cycles()
            : 0.0;
    m["ell_pad_fraction_" + tag] = ell.pad_fraction();
    m["sell_rcm_pad_fraction_" + tag] = sell_rcm.pad_fraction();
    m["sell_rcm_coalesced_lanes_" + tag] =
        // vecfd-lint: allow(counter-registry) SolveStats field, not Counters
        static_cast<double>(sell_rcm.coalesced_lanes);
  }
  return m;
}

/// precond_ladder core: the three rungs of the pressure preconditioner
/// ladder (DESIGN.md §8) on a fixed 8^3 cavity — pressure iterations and
/// phase-10 cycles per rung plus the Jacobi-relative iteration reductions
/// the bench gates on.
Metrics measure_precond_ladder() {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 8, .ny = 8, .nz = 8};
  const fem::Mesh mesh(scen.mesh);
  const int steps = 2;
  const int vs = 240;
  Metrics m;
  double jacobi_iters = 0.0;
  for (const auto kind :
       {solver::PrecondKind::kJacobi, solver::PrecondKind::kCheby,
        solver::PrecondKind::kDeflate}) {
    const auto st = bench::run_transient_point(
        mesh, scen, platforms::riscv_vec(), vs, steps, /*blocked=*/true,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/false, kind);
    const std::string tag = solver::to_string(kind);
    m["pressure_iters_" + tag] = st.pressure_iterations;
    m["pressure_cycles_" + tag] = st.cycles_p10;
    if (kind == solver::PrecondKind::kJacobi) {
      jacobi_iters = st.pressure_iterations;
    } else if (jacobi_iters > 0.0) {
      m["iter_redux_" + tag] = st.pressure_iterations / jacobi_iters;
    }
  }
  return m;
}

/// shard_scaling core (DESIGN.md §9): the domain-decomposed pressure solve
/// on a fixed 8^3 cavity — BSP makespan and halo volume vs shard count,
/// plus the surface-to-volume ratio under refinement at fixed P.  The
/// pressure iteration counts are emitted per P so the baseline itself
/// documents the P-independence contract (they must all be equal).
Metrics measure_shard_scaling() {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 8, .ny = 8, .nz = 8};
  const fem::Mesh mesh(scen.mesh);
  const int steps = 2;
  const int vs = 240;
  Metrics m;
  double base_makespan = 0.0;
  for (const int p : {1, 4, 8}) {
    const auto st = bench::run_transient_point(
        mesh, scen, platforms::riscv_vec(), vs, steps, /*blocked=*/true,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/false,
        solver::PrecondKind::kJacobi, p);
    char tagbuf[16];
    std::snprintf(tagbuf, sizeof tagbuf, "p%d", p);
    const std::string tag = tagbuf;
    m["makespan_" + tag] = st.pressure_makespan;
    m["halo_lines_" + tag] = static_cast<double>(st.halo_lines);
    m["pressure_iters_" + tag] = st.pressure_iterations;
    if (p == 1) {
      base_makespan = st.pressure_makespan;
    } else if (st.pressure_makespan > 0.0) {
      m["makespan_speedup_" + tag] = base_makespan / st.pressure_makespan;
    }
    if (p == 8) {
      // vecfd-lint: allow(counter-registry) SolveStats field, not Counters
      m["halo_messages_p8"] = static_cast<double>(st.halo_messages);
    }
  }
  // Surface-to-volume under refinement, 4 shards at a 64-strip quantum
  // (all subdomains populated on both meshes — see bench/shard_scaling).
  for (const int nref : {6, 8}) {
    scen.mesh = {.nx = nref, .ny = nref, .nz = nref};
    const fem::Mesh rmesh(scen.mesh);
    const auto st = bench::run_transient_point(
        rmesh, scen, platforms::riscv_vec(), 64, steps, /*blocked=*/true,
        solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/false,
        solver::PrecondKind::kJacobi, 4);
    const std::string rtag = std::to_string(nref);
    m["s2v_ratio_" + rtag] =
        st.p10_gather_lines > 0
            ? static_cast<double>(st.halo_lines) /
                  static_cast<double>(st.p10_gather_lines)
            : 0.0;
  }
  return m;
}

/// --counters-out: every registered counter of one fixed tiny transient
/// run, emitted in registry order straight from Counters::visit().  The
/// metric set IS the registry — there is no list here to forget to extend.
int write_counter_totals(const std::string& path) {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = {.nx = 4, .ny = 4, .nz = 4};
  const fem::Mesh mesh(scen.mesh);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = 1;
  cfg.vector_size = 64;
  miniapp::TimeLoop loop(mesh, scen, cfg);
  sim::Vpu vpu(platforms::riscv_vec());
  const auto res = loop.run(vpu);

  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << '\n';
    return 2;
  }
  os << "{\n  \"schema\": \"vecfd-counters-v1\",\n"
     << "  \"workload\": \"cavity 4x4x4, 1 step, vs=64, riscv-vec\",\n"
     << "  \"counters\": {\n";
  bool first = true;
  res.total.visit([&](const sim::CounterInfo& info, const auto& v) {
    if (!first) os << ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", static_cast<double>(v));
    os << "    \"" << info.name << "\": " << buf;
  });
  os << "\n  }\n}\n";
  std::cout << "wrote " << path << '\n';
  return 0;
}

void write_json(std::ostream& os, const Report& report) {
  os << "{\n  \"schema\": \"vecfd-bench-v1\",\n  \"benches\": {\n";
  bool first_bench = true;
  for (const auto& [bench, metrics] : report) {
    if (!first_bench) os << ",\n";
    first_bench = false;
    os << "    \"" << bench << "\": {\n";
    bool first = true;
    for (const auto& [key, value] : metrics) {
      if (!first) os << ",\n";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", value);
      os << "      \"" << key << "\": " << buf;
    }
    os << "\n    }";
  }
  os << "\n  }\n}\n";
}

struct Baseline {
  Report report;
  bool schema_ok = false;  ///< carried the "vecfd-bench-v1" schema marker
  std::string parse_error;  ///< non-empty: corrupt line (exit-2 contract)

  std::size_t num_metrics() const {
    std::size_t n = 0;
    for (const auto& [bench, metrics] : report) n += metrics.size();
    return n;
  }
};

/// Minimal reader for the exact shape write_json emits: "key": number
/// pairs nested two levels deep.  Not a general JSON parser — it only has
/// to round-trip our own files.  A nested bench opens ONLY on a line whose
/// value is "{" — a "key": value line whose value fails to parse as a
/// number is a corrupt baseline (parse_error), never silently treated as
/// an opener (that bug used to swallow every later metric into a
/// phantom bench and report them all MISSING).
std::optional<Baseline> read_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  Baseline baseline;
  std::string bench;
  std::string line;
  while (std::getline(is, line)) {
    const auto q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    const auto q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string key = line.substr(q1 + 1, q2 - q1 - 1);
    if (key == "schema") {
      baseline.schema_ok =
          line.find("\"vecfd-bench-v1\"", q2 + 1) != std::string::npos;
      continue;
    }
    if (key == "benches") continue;
    const auto colon = line.find(':', q2);
    if (colon == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    if (last != std::string::npos && line[last] == '{') {
      bench = key;  // a nested object opens: "<bench>": {
      continue;
    }
    const std::string rest = line.substr(colon + 1);
    char* end = nullptr;
    const double v = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str()) {
      baseline.parse_error = "unparseable metric value in line: " + line;
      return baseline;
    }
    baseline.report[bench][key] = v;
  }
  return baseline;
}

/// Baseline-file contract, enforced BEFORE any measurement runs: a missing,
/// unreadable or corrupt baseline is a usage error (exit 2, offending path
/// on stderr), distinct from measured drift (exit 1) — CI must not spend a
/// measurement pass to discover a broken checkout, and a truncated
/// BENCH_PR5.json must not masquerade as "everything drifted".
std::optional<Baseline> load_baseline(const std::string& path) {
  auto baseline = read_json(path);
  if (!baseline) {
    std::cerr << "bench_to_json: cannot read baseline " << path << '\n';
    return std::nullopt;
  }
  if (!baseline->parse_error.empty()) {
    std::cerr << "bench_to_json: corrupt baseline " << path << ": "
              << baseline->parse_error << '\n';
    return std::nullopt;
  }
  if (!baseline->schema_ok) {
    std::cerr << "bench_to_json: corrupt baseline " << path
              << ": missing \"schema\": \"vecfd-bench-v1\" marker\n";
    return std::nullopt;
  }
  if (baseline->num_metrics() == 0) {
    std::cerr << "bench_to_json: corrupt baseline " << path
              << ": no numeric metrics\n";
    return std::nullopt;
  }
  return baseline;
}

int check(const Report& got, const Report& want, double tolerance) {
  int bad = 0;
  for (const auto& [bench, metrics] : want) {
    for (const auto& [key, w] : metrics) {
      const auto bi = got.find(bench);
      if (bi == got.end() || bi->second.find(key) == bi->second.end()) {
        std::cerr << "MISSING  " << bench << '.' << key << '\n';
        ++bad;
        continue;
      }
      const double g = bi->second.at(key);
      if (std::abs(g - w) > tolerance * (1.0 + std::abs(w))) {
        std::cerr << "DRIFT    " << bench << '.' << key << ": baseline "
                  << w << ", measured " << g << '\n';
        ++bad;
      }
    }
  }
  for (const auto& [bench, metrics] : got) {
    for (const auto& [key, value] : metrics) {
      (void)value;
      const auto bi = want.find(bench);
      if (bi == want.end() || bi->second.find(key) == bi->second.end()) {
        std::cerr << "NEW      " << bench << '.' << key
                  << " (not in baseline — regenerate with --out)\n";
        ++bad;
      }
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  std::string counters_path;
  double tolerance = 1e-6;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--out") {
      const char* v = next();
      if (!v) {
        std::cerr << "bench_to_json: --out: missing value\n";
        return 2;
      }
      out_path = v;
    } else if (a == "--check") {
      const char* v = next();
      if (!v) {
        std::cerr << "bench_to_json: --check: missing value\n";
        return 2;
      }
      check_path = v;
    } else if (a == "--counters-out") {
      const char* v = next();
      if (!v) {
        std::cerr << "bench_to_json: --counters-out: missing value\n";
        return 2;
      }
      counters_path = v;
    } else if (a == "--tolerance") {
      const char* v = next();
      if (!v) {
        std::cerr << "bench_to_json: --tolerance: missing value\n";
        return 2;
      }
      char* end = nullptr;
      tolerance = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(tolerance) ||
          tolerance < 0.0) {
        std::cerr << "bench_to_json: --tolerance: invalid value '" << v
                  << "' (want a non-negative relative tolerance)\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_to_json (--out FILE | --check FILE | "
                   "--counters-out FILE) [--tolerance REL]\n";
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }
  if (!counters_path.empty()) {
    if (!out_path.empty() || !check_path.empty()) {
      std::cerr << "bench_to_json: --counters-out excludes --out / --check\n";
      return 2;
    }
    return write_counter_totals(counters_path);
  }
  if (out_path.empty() == check_path.empty()) {
    std::cerr << "bench_to_json: pass exactly one of --out / --check / "
                 "--counters-out\n";
    return 2;
  }

  // Validate the baseline before the measurement pass: a broken file must
  // fail fast (exit 2) instead of after minutes of simulation.
  std::optional<Baseline> baseline;
  if (!check_path.empty()) {
    baseline = load_baseline(check_path);
    if (!baseline) return 2;
  }

  Report report;
  report["multirhs_speedup"] = measure_multirhs();
  report["spmv_format_sweep"] = measure_format_sweep();
  report["precond_ladder"] = measure_precond_ladder();
  report["shard_scaling"] = measure_shard_scaling();

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot open " << out_path << '\n';
      return 2;
    }
    write_json(os, report);
    std::cout << "wrote " << out_path << '\n';
    return 0;
  }

  const int bad = check(report, baseline->report, tolerance);
  if (bad > 0) {
    std::cerr << bad << " metric(s) drifted from " << check_path << '\n';
    return 1;
  }
  std::cout << "all metrics within " << tolerance << " of " << check_path
            << '\n';
  return 0;
}
