// Table 5 — "vCPI, AVL and number of vector instructions in phase 6".
//
// Paper (phase 6, vanilla autovec):
//   VS    vCPI   AVL   #vinstr
//   16    9.71   16    14.3e5
//   64    23.39  64    19.1e5
//   128   28.56  128   9.6e5
//   240   41.19  240   5.1e5
//   256   43.10  256   4.7e5
//   512   45.30  256   4.7e5
// Shape targets: AVL = min(VS, 256); vCPI grows with vl; #vinstr scales
// with 1/AVL beyond 64 and is *smaller* at 16 (partial vectorization).
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Table 5",
                            "phase-6 vCPI / AVL / vector instructions");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVanilla;

  core::Table t({"VECTOR_SIZE", "vCPI", "AVL", "# vector instrs",
                 "paper vCPI", "paper AVL"});
  const char* paper_vcpi[] = {"9.71", "23.39", "28.56", "41.19", "43.10",
                              "45.30"};
  const char* paper_avl[] = {"16", "64", "128", "240", "256", "256"};
  int i = 0;
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    const auto& p6 = m.phase_metrics[6];
    t.add_row({std::to_string(vs), core::fmt(p6.vcpi, 2),
               core::fmt(p6.avl, 0), core::fmt_sci(double(p6.vector_instrs)),
               paper_vcpi[i], paper_avl[i]});
    ++i;
  }
  std::cout << t.to_string();
  return 0;
}
