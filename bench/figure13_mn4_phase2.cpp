// Figure 13 — "Speed-up optimizations on MareNostrum 4": overall mini-app
// speed-up alongside the phase-2 speed-up.
//
// Paper: the MN4 overall gain is explained by phase 2 — the interchange
// reduces L1/L2 data-cache misses and the total instruction count even on
// a short-vector (AVX-512) machine.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 13",
                            "MareNostrum 4: overall vs phase-2 speed-up");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  const auto machine = platforms::mn4_avx512();

  core::Table t({"VECTOR_SIZE", "mini-app speedup", "phase-2 speedup",
                 "phase-2 L1-miss ratio", "phase-2 instr ratio"});
  for (int vs : bench::kVectorSizes) {
    miniapp::MiniAppConfig cfg;
    cfg.vector_size = vs;
    cfg.opt = miniapp::OptLevel::kVanilla;
    const auto vanilla = ex.run(machine, cfg);
    cfg.opt = miniapp::OptLevel::kVec1;
    const auto opt = ex.run(machine, cfg);

    const double app = vanilla.total_cycles / opt.total_cycles;
    const double ph2 = vanilla.phase_cycles(2) / opt.phase_cycles(2);
    const double miss_ratio =
        opt.phase[2].l1_misses /
        std::max(1.0, double(vanilla.phase[2].l1_misses));
    const double instr_ratio =
        double(opt.phase[2].total_instrs()) /
        std::max<double>(1.0, double(vanilla.phase[2].total_instrs()));
    t.add_row({std::to_string(vs), core::fmt_speedup(app),
               core::fmt_speedup(ph2), core::fmt(miss_ratio, 2),
               core::fmt(instr_ratio, 2)});
  }
  std::cout << t.to_string();
  std::cout << "\npaper: the phase-2 speed-up drives the overall MN4 curve "
               "via fewer L1/L2 misses and fewer instructions.\n";
  return 0;
}
