// Shared transient-solve measurement core for the co-design benches and
// the tools/bench_to_json perf-baseline emitter: one TimeLoop run distilled
// into the solve-phase numbers the studies compare (cycles, AVL, occupancy,
// memory-op mix, gather-quality counters, Krylov iteration counts).
//
// bench/multirhs_speedup and bench/spmv_format_sweep print tables from
// these stats; tools/bench_to_json serializes them into BENCH_PR5.json so
// later PRs can diff against a checked-in perf trajectory.  Keeping the
// measurement in ONE place guarantees the JSON baseline and the human
// tables can never drift apart.
#pragma once

#include <cstdint>

#include "core/campaign.h"
#include "fem/mesh.h"
#include "metrics/metrics.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"
#include "sim/vpu.h"
#include "solver/format.h"

namespace vecfd::bench {

/// The format study's case set, shared by bench/spmv_format_sweep and the
/// transient_campaign appendix so the two reports can never drift apart.
struct FormatCase {
  const char* name;
  solver::SpmvFormat format;
  bool rcm;
};

inline constexpr FormatCase kFormatCases[] = {
    {"csr-host", solver::SpmvFormat::kCsrHost, false},
    {"ell", solver::SpmvFormat::kEll, false},
    {"sell", solver::SpmvFormat::kSell, false},
    {"sell+rcm", solver::SpmvFormat::kSell, true},
};

/// Solve-stage digest of one transient run: phase 9 (momentum) and
/// phase 10 (pressure) — the two Krylov consumers of the sparse format.
struct SolveStats {
  double cycles = 0.0;        ///< phase-9 cycles
  double cycles_p10 = 0.0;    ///< phase-10 cycles
  double avl = 0.0;           ///< phase-9 average vector length
  double ev = 0.0;            ///< phase-9 occupancy
  std::uint64_t unit = 0;     ///< phase-9 unit-stride vector memory ops
  std::uint64_t indexed = 0;  ///< phase-9 gathers/scatters
  std::uint64_t gather_lanes = 0;
  std::uint64_t gather_lines = 0;   ///< distinct lines touched by gathers
  std::uint64_t pad_lanes = 0;
  std::uint64_t coalesced_lanes = 0;
  std::uint64_t halo_lines = 0;      ///< phase-10 halo lines sent + received
  std::uint64_t halo_messages = 0;   ///< phase-10 ghost-exchange messages
  std::uint64_t p10_gather_lines = 0;  ///< phase-10 gathered lines alone
  double pressure_makespan = 0.0;    ///< phase-10 BSP critical path (§9)
  double p10_avl = 0.0;              ///< phase-10 average vector length
  int iterations = 0;               ///< Σ momentum iterations (phase 9)
  int pressure_iterations = 0;      ///< Σ pressure iterations (phase 10)

  int solve_iterations() const { return iterations + pressure_iterations; }
  double solve_cycles() const { return cycles + cycles_p10; }
  /// Distinct x-lines gathered per Krylov iteration (phases 9+10) — the
  /// locality metric the SELL+RCM acceptance bounds.
  double gather_lines_per_iteration() const {
    const int it = solve_iterations();
    return it > 0 ? static_cast<double>(gather_lines) / it : 0.0;
  }
  /// Pad share of all x-access lanes issued by the SpMV kernels.
  double pad_fraction() const {
    const double lanes = static_cast<double>(gather_lanes + pad_lanes +
                                             coalesced_lanes);
    return lanes > 0.0 ? static_cast<double>(pad_lanes) / lanes : 0.0;
  }
};

/// Blocked-vs-per-component slab accounting (DESIGN.md §5), from the
/// per-phase counters alone: in the per-component path every gather pairs
/// with exactly one value + one index slab load (slab = 2 × indexed), and
/// the two paths are per-column instruction-identical elsewhere, so the
/// blocked count is slab − Δ(unit loads).  The identity — and therefore
/// every derived number — is only `valid` when the paths really did run
/// in lockstep (equal iteration and gather counts); callers must check it
/// before quoting the reduction.  Single source for bench/multirhs_speedup
/// and tools/bench_to_json so the table and the checked-in baseline can
/// never desynchronize.
struct SlabComparison {
  bool valid = false;
  double slab_pc = 0.0;   ///< per-component operator slab loads
  double slab_blk = 0.0;  ///< blocked operator slab loads
  double redux = 0.0;     ///< slab_pc / slab_blk
  double avl_drift = 0.0; ///< |AVL_blk − AVL_pc| / AVL_pc
};

inline SlabComparison compare_slab_traffic(const SolveStats& pc,
                                           const SolveStats& blk) {
  SlabComparison c;
  c.valid = pc.iterations == blk.iterations && pc.indexed == blk.indexed;
  c.slab_pc = 2.0 * static_cast<double>(pc.indexed);
  c.slab_blk = c.slab_pc - static_cast<double>(pc.unit - blk.unit);
  c.redux = c.slab_blk > 0.0 ? c.slab_pc / c.slab_blk : 0.0;
  c.avl_drift = pc.avl > 0.0 ? (blk.avl > pc.avl ? blk.avl - pc.avl
                                                 : pc.avl - blk.avl) / pc.avl
                             : 0.0;
  return c;
}

/// One measured transient point.  With @p spinup a first (unmeasured) pass
/// develops the flow so all momentum components have real work — the
/// regime the multi-RHS comparison must run in; run() resets the machine,
/// so the second pass is an independent measurement of a developed flow.
inline SolveStats run_transient_point(
    const fem::Mesh& mesh, const miniapp::Scenario& scen,
    const sim::MachineConfig& machine, int vs, int steps, bool blocked,
    solver::SpmvFormat format, bool rcm, bool spinup,
    solver::PrecondKind precond = solver::PrecondKind::kJacobi,
    int shards = 1) {
  miniapp::TimeLoopConfig cfg;
  cfg.steps = steps;
  cfg.vector_size = vs;
  cfg.blocked_momentum = blocked;
  cfg.format = format;
  cfg.rcm_renumber = rcm;
  cfg.precond = precond;
  cfg.shards = shards;
  miniapp::TimeLoop loop(mesh, scen, cfg);
  sim::Vpu vpu(machine);
  if (spinup) (void)loop.run(vpu);
  const auto res = loop.run(vpu);

  SolveStats st;
  const auto& p9 = res.phase[miniapp::kSolvePhase];
  const auto& p10 = res.phase[miniapp::kPressurePhase];
  st.cycles = p9.total_cycles();
  st.cycles_p10 = p10.total_cycles();
  const auto m = metrics::compute(p9, machine.vlmax);
  st.avl = m.avl;
  st.ev = m.ev;
  st.unit = p9.vmem_unit_instrs;
  st.indexed = p9.vmem_indexed_instrs;
  st.gather_lanes = p9.gather_lanes + p10.gather_lanes;
  st.gather_lines = p9.gather_lines_touched + p10.gather_lines_touched;
  st.pad_lanes = p9.pad_lanes + p10.pad_lanes;
  st.coalesced_lanes = p9.coalesced_lanes + p10.coalesced_lanes;
  st.halo_lines = p10.halo_lines_sent + p10.halo_lines_recv;
  st.halo_messages = p10.halo_messages;
  st.p10_gather_lines = p10.gather_lines_touched;
  st.pressure_makespan = res.pressure_makespan_cycles;
  st.p10_avl = metrics::compute(p10, machine.vlmax).avl;
  for (const auto& step : res.steps) {
    for (const auto& rep : step.momentum) st.iterations += rep.iterations;
    st.pressure_iterations += step.pressure.iterations;
  }
  return st;
}

}  // namespace vecfd::bench
