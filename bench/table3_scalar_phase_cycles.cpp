// Table 3 — "Percentage total cycles spent per phase" (scalar build).
//
// Paper: the mini-app compiled with vectorization disabled on the RISC-V
// vector system; phases 6, 7, 3, 4 account for ~90% of total cycles and
// phases 1+2 for ~4%.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Table 3",
                            "% total cycles per phase — scalar build");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kScalar;
  cfg.vector_size = 16;  // the paper's scalar reference configuration
  const auto m = ex.run(platforms::riscv_vec_scalar(), cfg);

  core::Table t({"phase", "cycles", "% total cycles"});
  for (int p = 1; p <= 8; ++p) {
    t.add_row({std::to_string(p), core::fmt(m.phase_cycles(p), 0),
               core::fmt_pct(m.phase_share(p))});
  }
  std::cout << t.to_string();

  const double top4 = m.phase_share(6) + m.phase_share(7) +
                      m.phase_share(3) + m.phase_share(4);
  std::cout << "\nphases {6,7,3,4} share: " << core::fmt_pct(top4)
            << "   (paper: ~90%)\n";
  std::cout << "phases {1,2} share:     "
            << core::fmt_pct(m.phase_share(1) + m.phase_share(2))
            << "   (paper: ~4%)\n";
  return 0;
}
