// Ablation bench — quantifies the design choices DESIGN.md calls out:
//
//   1. the FSM throughput quirk (fsm_group = 5) — without it, 256 would be
//      the fastest VECTOR_SIZE instead of 240;
//   2. the cache hierarchy — with infinite caches the phase-1/8 growth with
//      VECTOR_SIZE disappears;
//   3. the time scheme — semi-implicit assembly makes phase 8 (global CSR
//      scatter) the dominant scalar residue.
#include "bench_common.h"

namespace {

using namespace vecfd;

void fsm_ablation(const core::Experiment& ex) {
  std::cout << "--- ablation 1: FSM throughput quirk ------------------\n";
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;
  for (bool quirk : {true, false}) {
    sim::MachineConfig m = platforms::riscv_vec();
    if (!quirk) {
      m.fsm_group = 1;
      m.fsm_penalty = 1.0;
    }
    double best = 0.0;
    int best_vs = 0;
    for (int vs : bench::kVectorSizes) {
      cfg.vector_size = vs;
      const double cycles = ex.run(m, cfg).total_cycles;
      if (best == 0.0 || cycles < best) {
        best = cycles;
        best_vs = vs;
      }
    }
    std::cout << (quirk ? "with quirk   " : "without quirk")
              << " -> fastest VECTOR_SIZE = " << best_vs << "\n";
  }
  std::cout << "(paper lesson for hardware architects: the 240-vs-256 "
               "effect comes from the lane-feeding FSM)\n\n";
}

void cache_ablation(const core::Experiment& ex) {
  std::cout << "--- ablation 2: cache hierarchy ------------------------\n";
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;
  core::Table t({"VECTOR_SIZE", "ph1+ph8 share (real $)",
                 "ph1+ph8 share (ideal $)"});
  for (int vs : {16, 128, 512}) {
    cfg.vector_size = vs;
    const auto real = ex.run(platforms::riscv_vec(), cfg);
    sim::MachineConfig ideal = platforms::riscv_vec();
    ideal.memory.l2_latency = 0.0;
    ideal.memory.mem_latency = 0.0;
    const auto flat = ex.run(ideal, cfg);
    t.add_row({std::to_string(vs),
               core::fmt_pct(real.phase_share(1) + real.phase_share(8)),
               core::fmt_pct(flat.phase_share(1) + flat.phase_share(8))});
  }
  std::cout << t.to_string();
  std::cout << "(the Figure 9 deviation of phases 1/8 is cache-driven: it "
               "flattens with zero miss penalties)\n\n";
}

void scheme_ablation(const core::Experiment& ex) {
  std::cout << "--- ablation 3: explicit vs semi-implicit scheme --------\n";
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;
  cfg.vector_size = 240;
  core::Table t({"scheme", "total cycles", "phase-8 share"});
  for (auto scheme : {fem::Scheme::kExplicit, fem::Scheme::kSemiImplicit}) {
    cfg.scheme = scheme;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    t.add_row({to_string(scheme), core::fmt(m.total_cycles, 0),
               core::fmt_pct(m.phase_share(8))});
  }
  std::cout << t.to_string();
  std::cout << "(§2.3: element matrices are computed only under the "
               "semi-implicit scheme — and their scatter makes phase 8 "
               "the bottleneck)\n";
}

}  // namespace

int main() {
  std::cout << core::banner("ablation", "design-choice ablations");
  bench::Workload w;
  bench::print_workload(w);
  const core::Experiment ex(w.mesh, w.state);
  fsm_ablation(ex);
  cache_ablation(ex);
  scheme_ablation(ex);
  return 0;
}
