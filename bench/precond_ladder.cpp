// Preconditioner ladder — the phase-10 co-design study (DESIGN.md §8):
// jacobi / cheby / deflate on the cavity pressure-Poisson solve across mesh
// refinements, comparing pressure iterations and simulated phase-10 cycles.
//
// The ladder trades instrumented work per iteration (Chebyshev SpMVs,
// deflation transfers) for iteration count; the Jacobi-relative columns
// make the trade visible.  Two-level deflation caps the effective condition
// number, so its iteration count must LEVEL OFF under refinement while
// Jacobi's grows — that separation is the acceptance gate.
//
// Every rung's residual history is bit-identical across SpMV formats
// (csr-host / ell / sell): all rung arithmetic flows through the mirrored
// operator apply and format-independent kernels.  The bench re-verifies
// this directly on the pinned Laplacian before measuring.
//
// Acceptance (exit 1 on failure): on the finest refinement, deflation
// converges the pressure solve in at most HALF the Jacobi iterations, and
// the rungs order deflate <= cheby <= jacobi.
#include "bench_common.h"

#include <string>
#include <vector>

#include "bench_metrics.h"
#include "fem/projection.h"
#include "fem/shape.h"
#include "solver/preconditioner.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;

constexpr solver::PrecondKind kRungs[] = {solver::PrecondKind::kJacobi,
                                          solver::PrecondKind::kCheby,
                                          solver::PrecondKind::kDeflate};

/// Solve the pinned cavity Laplacian once per format and demand bitwise
/// equal residual histories (the format-equivalence contract, extended to
/// every rung of the ladder).
bool histories_bit_identical(const fem::Mesh& mesh,
                             solver::PrecondKind kind) {
  const fem::ShapeTable shape;
  solver::CsrMatrix a = fem::assemble_pressure_laplacian(mesh, shape);
  const int pin[] = {0};
  fem::pin_dirichlet(a, pin);
  const int n = a.rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  b[0] = 0.0;  // pinned row
  solver::SolveOptions opts{.max_iterations = 400, .rel_tolerance = 1e-10,
                            .precond = {}};
  opts.precond.kind = kind;
  opts.precond.aggregates = fem::structured_aggregates(mesh, 2);

  std::vector<double> ref_hist;
  for (const auto format :
       {solver::SpmvFormat::kCsrHost, solver::SpmvFormat::kEll,
        solver::SpmvFormat::kSell}) {
    sim::Vpu vpu(platforms::riscv_vec());
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const auto rep =
        solver::vcg(vpu, a, b, x, opts, 240, nullptr, format);
    if (!rep.converged) return false;
    if (ref_hist.empty()) {
      ref_hist = rep.history;
    } else if (rep.history != ref_hist) {  // bitwise, via double ==
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace vecfd;
  std::cout << core::banner("Preconditioner ladder",
                            "jacobi/cheby/deflate x cavity refinement: "
                            "pressure iterations, phase-10 cycles");

  std::vector<int> refinements = {6, 8, 12};
  if (bench::small_run()) refinements = {6, 8};
  const sim::MachineConfig machine = platforms::riscv_vec();
  const int vs = 240;
  const int steps = 2;
  std::cout << "scenario cavity, riscv-vec, VECTOR_SIZE=" << vs << ", "
            << steps << " steps per point"
            << (bench::small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";

  core::Table t({"mesh", "precond", "p10 iters", "iters vs jacobi",
                 "p10 cycles", "cycles vs jacobi"});
  bool accepted = false;
  bool formats_ok = true;
  for (std::size_t ri = 0; ri < refinements.size(); ++ri) {
    const int nref = refinements[ri];
    miniapp::Scenario scen = miniapp::scenario_cavity();
    scen.mesh = {.nx = nref, .ny = nref, .nz = nref};
    const fem::Mesh mesh(scen.mesh);
    const bool finest = ri + 1 == refinements.size();

    int jacobi_iters = 0;
    double jacobi_cycles = 0.0;
    int cheby_iters = 0;
    for (const auto kind : kRungs) {
      formats_ok = formats_ok && histories_bit_identical(mesh, kind);
      const auto st = bench::run_transient_point(
          mesh, scen, machine, vs, steps, /*blocked=*/true,
          solver::SpmvFormat::kEll, /*rcm=*/false, /*spinup=*/false, kind);
      if (kind == solver::PrecondKind::kJacobi) {
        jacobi_iters = st.pressure_iterations;
        jacobi_cycles = st.cycles_p10;
      }
      if (kind == solver::PrecondKind::kCheby) {
        cheby_iters = st.pressure_iterations;
      }
      if (finest && kind == solver::PrecondKind::kDeflate) {
        accepted = jacobi_iters >= 2 * st.pressure_iterations &&
                   st.pressure_iterations <= cheby_iters &&
                   cheby_iters <= jacobi_iters;
      }
      const std::string mesh_tag = std::to_string(nref) + "^3";
      t.add_row({mesh_tag, solver::to_string(kind),
                 std::to_string(st.pressure_iterations),
                 jacobi_iters > 0
                     ? core::fmt(static_cast<double>(st.pressure_iterations) /
                                     jacobi_iters, 2) + "x"
                     : "-",
                 core::fmt(st.cycles_p10, 0),
                 jacobi_cycles > 0.0
                     ? core::fmt(st.cycles_p10 / jacobi_cycles, 2) + "x"
                     : "-"});
    }
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide: Jacobi iterations grow with refinement "
               "(kappa ~ h^-2); the Chebyshev rung divides them by a "
               "kappa-independent factor; the balancing two-level rung "
               "caps kappa, so its count levels off.  Acceptance: on the "
               "finest mesh deflation needs <= half the Jacobi iterations "
               "with deflate <= cheby <= jacobi (acceptance"
            << (accepted ? " met" : " NOT met")
            << "), and every rung's residual history is bit-identical "
               "across csr/ell/sell (check "
            << (formats_ok ? "passed" : "FAILED") << ").\n";
  return accepted && formats_ok ? 0 : 1;
}
