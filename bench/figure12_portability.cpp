// Figure 12 — "Speed-up optimizations on different HPC platforms":
// fully-optimized (VEC1) vs original vanilla-vectorized, on RISC-V VEC,
// NEC SX-Aurora and MareNostrum 4.
//
// Paper: up to 1.45x on RISC-V VEC (growing with VECTOR_SIZE), up to 1.64x
// on SX-Aurora at 240 then decreasing at 512 (phase-8 indexed accesses),
// and a modest but positive speed-up on MN4 — portability holds.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner(
      "Figure 12", "optimized-vs-vanilla speed-up across platforms");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  const sim::MachineConfig machines[] = {platforms::riscv_vec(),
                                         platforms::sx_aurora(),
                                         platforms::mn4_avx512()};

  // One flat point list — sizes × machines × {vanilla, VEC1} — fanned out
  // over all cores in a single run_points call.
  std::vector<core::SweepPoint> points;
  for (int vs : bench::kVectorSizes) {
    for (const auto& machine : machines) {
      miniapp::MiniAppConfig cfg;
      cfg.vector_size = vs;
      cfg.opt = miniapp::OptLevel::kVanilla;
      points.push_back({machine, cfg});
      cfg.opt = miniapp::OptLevel::kVec1;
      points.push_back({machine, cfg});
    }
  }
  const auto ms = ex.run_points(points, bench::sweep_jobs());

  core::Table t({"VECTOR_SIZE", "riscv-vec", "sx-aurora", "mn4-avx512"});
  std::size_t i = 0;
  for (int vs : bench::kVectorSizes) {
    std::vector<std::string> row{std::to_string(vs)};
    for (std::size_t m = 0; m < std::size(machines); ++m) {
      const double vanilla = ms[i++].total_cycles;
      const double opt = ms[i++].total_cycles;
      row.push_back(core::fmt_speedup(vanilla / opt));
    }
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\npaper: RISC-V up to 1.45x; SX-Aurora 1.64x at 240 then "
               "lower at 512; MN4 positive everywhere (no regression).\n";
  return 0;
}
