// Figure 6 — "Resulting cycles phase 2" with IVEC2 (loop interchange).
//
// Paper: forcing the element (ivect) dimension innermost yields vector
// instructions with vl = VECTOR_SIZE and a phase-2 speed-up of up to 7.38x
// vs the original at VECTOR_SIZE = 256.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 6",
                            "phase-2 cycles with IVEC2 (interchange)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;

  core::Table t({"VECTOR_SIZE", "original", "VEC2", "IVEC2",
                 "IVEC2 speedup"});
  double speedup256 = 0.0;
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    cfg.opt = miniapp::OptLevel::kVanilla;
    const double vanilla =
        ex.run(platforms::riscv_vec(), cfg).phase_cycles(2);
    cfg.opt = miniapp::OptLevel::kVec2;
    const double vec2 = ex.run(platforms::riscv_vec(), cfg).phase_cycles(2);
    cfg.opt = miniapp::OptLevel::kIVec2;
    const double ivec2 = ex.run(platforms::riscv_vec(), cfg).phase_cycles(2);
    if (vs == 256) speedup256 = vanilla / ivec2;
    t.add_row({std::to_string(vs), core::fmt(vanilla, 0),
               core::fmt(vec2, 0), core::fmt(ivec2, 0),
               core::fmt_speedup(vanilla / ivec2)});
  }
  std::cout << t.to_string();
  std::cout << "\nIVEC2 phase-2 speedup at VECTOR_SIZE = 256: "
            << core::fmt_speedup(speedup256) << "   (paper: 7.38x)\n";
  return 0;
}
