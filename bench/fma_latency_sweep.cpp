// §4 synthetic anchor — "we measured the vector FMA instruction latencies
// through a synthetic benchmark and found that one vector FMA takes around
// 32 cycles with a vector length of 256, while with a lower vector length
// takes less cycles".
//
// This bench replays that synthetic experiment on the timing model: one
// back-to-back FMA stream per vector length, reporting cycles/instruction
// and elements/cycle (showing the multiple-of-40 FSM sweet spot).
#include "bench_common.h"

#include "sim/vpu.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("synthetic",
                            "vector FMA latency vs vector length");
  const auto machine = platforms::riscv_vec();
  std::cout << "machine: " << machine.name << ", " << machine.lanes
            << " lanes, fsm group " << machine.fsm_group << "\n\n";

  core::Table t({"vl", "cycles/FMA", "elements/cycle", "fsm factor"});
  const sim::TimingModel tm(machine);
  for (int vl : {8, 16, 32, 40, 64, 80, 120, 128, 160, 200, 240, 248, 256}) {
    const double c = tm.varith_cycles(vl);
    t.add_row({std::to_string(vl), core::fmt(c, 2), core::fmt(vl / c, 2),
               core::fmt(tm.fsm_factor(vl), 2)});
  }
  std::cout << t.to_string();

  // verify against an executed instruction stream (not just the formula)
  sim::Vpu vpu(machine);
  std::vector<double> a(256, 1.0);
  vpu.set_vl(256);
  const auto va = vpu.vload(a.data());
  const double before = vpu.counters().vector_cycles;
  const int n = 1000;
  sim::Vec acc = vpu.vsplat(0.0);
  for (int i = 0; i < n; ++i) acc = vpu.vfma(va, va, acc);
  const double per_fma =
      (vpu.counters().vector_cycles - before) / n;
  std::cout << "\nexecuted-stream check @ vl=256: "
            << core::fmt(per_fma, 2)
            << " cycles per FMA   (paper: ~32; includes the off-multiple "
               "FSM penalty)\n";
  return 0;
}
