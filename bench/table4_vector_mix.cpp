// Table 4 — "Vanilla vector instruction mix Mv", phases × VECTOR_SIZE.
//
// Paper: phases 1, 2 and 8 stay at ~0% everywhere; at VECTOR_SIZE = 16
// only phase 7 (plus slivers of 3 and 6) vectorizes; from 64 upward the
// mix saturates.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Table 4",
                            "vector instruction mix Mv per phase (vanilla)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVanilla;

  std::vector<std::string> headers{"VECTOR_SIZE"};
  for (int p = 1; p <= 8; ++p) headers.push_back("ph" + std::to_string(p));
  core::Table t(std::move(headers));

  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    std::vector<std::string> row{std::to_string(vs)};
    for (int p = 1; p <= 8; ++p) {
      row.push_back(core::fmt_pct(m.phase_metrics[p].mv, 0));
    }
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\npaper pattern: phases 1/2/8 ~0% everywhere; vs=16 row "
               "mostly red except phase 7; saturation from vs=64.\n";
  return 0;
}
