// Figure 9 — "Percentage of cycles w.r.t. VECTOR_SIZE = 16" per phase
// (optimized build, lower is better).
//
// Paper: highly vectorized phases fall to ~20%; phases 1 and 8 deviate —
// their curves track L1 data-cache misses per kilo-instruction and the
// fraction of memory instructions (the Table 6 regression).
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 9",
                            "% of phase cycles w.r.t. VECTOR_SIZE = 16");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;

  // One parallel sweep covers the baseline too: kVectorSizes[0] == 16.
  const auto ms = bench::run_size_sweep(ex, platforms::riscv_vec(), cfg);
  const auto& base = ms.front();

  std::vector<std::string> headers{"VECTOR_SIZE"};
  for (int p = 1; p <= 8; ++p) headers.push_back("ph" + std::to_string(p));
  core::Table t(std::move(headers));

  for (const auto& m : ms) {
    std::vector<std::string> row{std::to_string(m.app.vector_size)};
    for (int p = 1; p <= 8; ++p) {
      // normalize by per-element cost so chunk-count differences cancel
      row.push_back(
          core::fmt_pct(m.phase_cycles(p) / base.phase_cycles(p), 0));
    }
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide (paper §5): <=30%% is healthy "
               "vectorization; phases 1 and 8 stay high / grow — their "
               "behaviour is cache-driven (see table6_regression).\n";
  return 0;
}
