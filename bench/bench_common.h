// Shared setup for the paper-reproduction bench binaries.
//
// Every table/figure of the evaluation runs on the same workload: a
// structured hex mesh of 16×20×24 = 7680 elements (divisible by every
// studied VECTOR_SIZE: 16, 64, 128, 240, 256, 512) with the deterministic
// Taylor–Green-style initial field.  VECFD_BENCH_SMALL=1 in the
// environment switches to a 960-element mesh for quick runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/advisor.h"
#include "core/experiment.h"
#include "core/report.h"
#include "fem/mesh.h"
#include "fem/state.h"
#include "metrics/metrics.h"
#include "platforms/platforms.h"

namespace vecfd::bench {

inline bool small_run() {
  const char* e = std::getenv("VECFD_BENCH_SMALL");
  return e != nullptr && e[0] == '1';
}

struct Workload {
  Workload()
      : mesh(small_run()
                 ? fem::MeshConfig{.nx = 8, .ny = 10, .nz = 12}
                 : fem::MeshConfig{.nx = 16, .ny = 20, .nz = 24}),
        state(mesh) {}
  fem::Mesh mesh;
  fem::State state;
};

/// The paper's studied VECTOR_SIZE values (§2.3).
inline constexpr int kVectorSizes[] = {16, 64, 128, 240, 256, 512};

/// Worker threads for sweep fan-out: VECFD_BENCH_JOBS in the environment
/// (unset/0 = all cores, 1 = serial).  Results are byte-identical at any
/// job count; the knob exists for timing comparisons.
inline int sweep_jobs() {
  const char* e = std::getenv("VECFD_BENCH_JOBS");
  return e != nullptr ? std::atoi(e) : 0;
}

/// The paper's full evaluation grid — kVectorSizes × {vanilla, VEC2, IVEC2,
/// VEC1} on one machine — fanned out over all cores.  Size-major: the
/// measurement for (kVectorSizes[si], core::kSweepOptLevels[oi]) is at
/// index si * std::size(core::kSweepOptLevels) + oi.
inline std::vector<core::Measurement> run_paper_grid(
    const core::Experiment& ex, const sim::MachineConfig& machine,
    miniapp::MiniAppConfig cfg) {
  return ex.sweep_grid(machine, cfg, kVectorSizes, core::kSweepOptLevels,
                       sweep_jobs());
}

/// Parallel kVectorSizes sweep at a fixed optimization level.
inline std::vector<core::Measurement> run_size_sweep(
    const core::Experiment& ex, const sim::MachineConfig& machine,
    miniapp::MiniAppConfig cfg) {
  return ex.sweep_vector_sizes(machine, cfg, kVectorSizes, sweep_jobs());
}

inline void print_workload(const Workload& w) {
  std::cout << "workload: " << w.mesh.num_elements() << " hex elements, "
            << w.mesh.num_nodes() << " nodes"
            << (small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";
}

}  // namespace vecfd::bench
