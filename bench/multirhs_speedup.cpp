// Multi-RHS speedup — the memory-traffic case for the blocked phase-9
// momentum solve (DESIGN.md §5): per studied VECTOR_SIZE the transient
// loop runs twice, blocked (vbicgstab_multi, shared operator slabs) and
// per-component (the sequential 9a–9c reference), and the solve-phase
// counters quantify the exchange.
//
// Slab accounting from the existing per-phase memory counters alone:
//
//   * per-component path: every (strip, slab) visit issues exactly one
//     value vload + one index vload_i32 + one vgather, so
//     slab_pc = 2 × ph9.vmem_indexed;
//   * the two paths are per-column instruction-identical everywhere else
//     (same gathers, stores, BLAS-1 traffic — asserted via equal iteration
//     counts and equal indexed counts), so the blocked slab count is
//     slab_b = slab_pc − (unit_pc − unit_b).
//
// The acceptance claim: ≥ 2.5× fewer operator value/index slab loads per
// solve-phase iteration with kDim = 3 components (3× when all columns
// converge together), at solve-phase AVL within 2% of the per-component
// path — fusion must buy traffic, not occupancy.
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "bench_metrics.h"
#include "miniapp/time_loop.h"

namespace {

// One path = one measured transient run (bench_metrics.h); the spin-up
// pass develops the flow so all kDim momentum columns have real work to
// share slabs across — the regime a transient run lives in.
vecfd::bench::SolveStats run_path(const vecfd::fem::Mesh& mesh,
                                  const vecfd::miniapp::Scenario& scen,
                                  int vs, int steps, bool blocked) {
  using namespace vecfd;
  return bench::run_transient_point(mesh, scen, platforms::riscv_vec(), vs,
                                    steps, blocked,
                                    solver::SpmvFormat::kEll,
                                    /*rcm=*/false, /*spinup=*/true);
}

}  // namespace

int main() {
  using namespace vecfd;
  std::cout << core::banner("Multi-RHS speedup",
                            "blocked vs per-component momentum solve: "
                            "operator slab loads, AVL, cycles");

  miniapp::Scenario scen = miniapp::scenario_cavity();
  if (bench::small_run()) {
    scen.mesh.nx = scen.mesh.ny = scen.mesh.nz = 3;
  }
  const fem::Mesh mesh(scen.mesh);
  const int steps = 4;
  std::cout << "scenario " << scen.name << ": " << mesh.num_elements()
            << " hex elements, " << steps << " steps, riscv-vec"
            << (bench::small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";

  core::Table t({"VS", "iters", "slab/it pc", "slab/it blk", "slab redux",
                 "AVL pc", "AVL blk", "Ev blk", "ph9 speedup"});
  double worst_redux = 1e30;
  double worst_avl_drift = 0.0;
  for (const int vs : bench::kVectorSizes) {
    const bench::SolveStats pc =
        run_path(mesh, scen, vs, steps, /*blocked=*/false);
    const bench::SolveStats blk =
        run_path(mesh, scen, vs, steps, /*blocked=*/true);
    const bench::SlabComparison cmp = bench::compare_slab_traffic(pc, blk);
    if (!cmp.valid) {
      std::cout << "MISMATCH at VS=" << vs
                << ": paths diverged (iters " << pc.iterations << " vs "
                << blk.iterations << ", gathers " << pc.indexed << " vs "
                << blk.indexed << ") — slab accounting invalid\n";
      return 1;
    }
    worst_redux = std::min(worst_redux, cmp.redux);
    worst_avl_drift = std::max(worst_avl_drift, cmp.avl_drift);
    t.add_row({std::to_string(vs), std::to_string(pc.iterations),
               core::fmt(cmp.slab_pc / pc.iterations, 0),
               core::fmt(cmp.slab_blk / blk.iterations, 0),
               core::fmt(cmp.redux, 2) + "x", core::fmt(pc.avl, 1),
               core::fmt(blk.avl, 1), core::fmt_pct(blk.ev),
               core::fmt(pc.cycles / blk.cycles, 2) + "x"});
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide: the blocked solve streams each ELL "
               "value/index slab once for all " << fem::kDim
            << " momentum components, so operator slab loads per solve-phase "
               "iteration drop ~"
            << fem::kDim << "x (worst point " << core::fmt(worst_redux, 2)
            << "x, acceptance floor 2.5x) while AVL stays within "
            << core::fmt(100.0 * worst_avl_drift, 2)
            << "% of the per-component path (bound 2%).\n";
  return worst_redux >= 2.5 && worst_avl_drift <= 0.02 ? 0 : 1;
}
