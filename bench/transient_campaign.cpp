// Transient campaign — the co-design occupancy report for the full
// semi-implicit time loop: every scenario × all four platforms × the
// studied VECTOR_SIZEs, each point running N pressure-projection steps
// (assembly phases 1–8 + momentum BiCGStab 9 + pressure CG 10 + BLAS-1
// correction 11) with per-phase counters.
//
// The reading mirrors the assembly study: the solve stage dominates the
// per-step cycle budget once the loop is transient, its AVL tracks
// min(VECTOR_SIZE, vlmax) — so long-vector occupancy in the SOLVE phases,
// not assembly, is where the co-design case is won at scale.
#include "bench_common.h"

#include "bench_metrics.h"
#include "core/campaign.h"
#include "core/csv.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Transient campaign",
                            "scenario x platform x VECTOR_SIZE occupancy of "
                            "the semi-implicit time loop");

  auto scens = miniapp::all_scenarios();
  if (bench::small_run()) {
    for (auto& s : scens) {
      s.mesh.nx = std::max(3, s.mesh.nx / 2);
      s.mesh.ny = std::max(3, s.mesh.ny / 2);
      s.mesh.nz = std::max(3, s.mesh.nz / 2);
    }
  }
  const int steps = bench::small_run() ? 2 : 3;
  const core::Campaign camp(std::move(scens));
  for (std::size_t i = 0; i < camp.scenarios().size(); ++i) {
    const auto& s = camp.scenarios()[i];
    std::cout << "scenario " << s.name << ": "
              << camp.mesh(static_cast<int>(i)).num_elements()
              << " hex elements — " << s.description << '\n';
  }
  std::cout << "steps per point: " << steps
            << (bench::small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";

  const sim::MachineConfig machines[] = {
      platforms::riscv_vec(), platforms::riscv_vec_scalar(),
      platforms::sx_aurora(), platforms::mn4_avx512()};
  const auto points = camp.grid(machines, bench::kVectorSizes, steps);
  const auto runs = camp.run_points(points, bench::sweep_jobs());

  core::Table t({"scenario", "machine", "VS", "cycles", "solve share",
                 "ph9 AVL", "ph9 Ev", "ph10 AVL", "iters 9/10", "div"});
  for (const auto& r : runs) {
    const double solve_cycles =
        r.phase_cycles(miniapp::kSolvePhase) +
        r.phase_cycles(miniapp::kPressurePhase) +
        r.phase_cycles(miniapp::kCorrectionPhase);
    const auto& p9 = r.phase_metrics[miniapp::kSolvePhase];
    const auto& p10 = r.phase_metrics[miniapp::kPressurePhase];
    t.add_row({r.scenario, r.point.machine.name,
               std::to_string(r.point.vector_size),
               core::fmt(r.total_cycles, 0),
               core::fmt_pct(r.total_cycles > 0.0
                                 ? solve_cycles / r.total_cycles
                                 : 0.0),
               core::fmt(p9.avl, 1), core::fmt_pct(p9.ev),
               core::fmt(p10.avl, 1),
               std::to_string(r.momentum_iterations) + "/" +
                   std::to_string(r.pressure_iterations),
               core::fmt(r.final_divergence, 4)});
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide: per step the solve stage (phases 9-11) "
               "dominates the cycle budget, and its AVL saturates at "
               "min(VECTOR_SIZE, vlmax) — the transient loop is where long "
               "vectors pay off.\n";

  // ---- blocked vs per-component momentum: operator-slab traffic --------
  // The campaign above runs the (default) blocked multi-RHS phase 9; the
  // per-component reference quantifies what the fusion buys.  Slab loads
  // from the per-phase counters alone: in the per-component path every
  // gather pairs with one value + one index slab load (slab = 2×indexed),
  // and the paths are instruction-identical outside the shared slabs, so
  // slab_blocked = slab_pc − Δ(unit loads).  See bench/multirhs_speedup
  // for the deeper per-VECTOR_SIZE study.
  std::cout << "\nblocked multi-RHS phase 9 vs per-component (scenario "
            << camp.scenarios()[0].name << ", riscv-vec):\n\n";
  std::vector<core::CampaignPoint> cmp_points;
  for (int vs : bench::kVectorSizes) {
    core::CampaignPoint p;
    p.scenario = 0;
    p.machine = platforms::riscv_vec();
    p.vector_size = vs;
    p.steps = steps;
    for (const bool blocked : {true, false}) {
      p.blocked_momentum = blocked;
      cmp_points.push_back(p);
    }
  }
  const auto cmp_runs = camp.run_points(cmp_points, bench::sweep_jobs());
  core::Table ct({"VS", "ph9 slab loads", "blocked slabs", "slab redux",
                  "ph9 AVL", "ph9 Ev", "ph9 speedup"});
  for (std::size_t i = 0; i + 1 < cmp_runs.size(); i += 2) {
    const auto& blk = cmp_runs[i].loop.phase[miniapp::kSolvePhase];
    const auto& pc = cmp_runs[i + 1].loop.phase[miniapp::kSolvePhase];
    if (blk.vmem_indexed_instrs != pc.vmem_indexed_instrs) {
      // the Δunit identity needs per-column-identical paths
      std::cout << "VS " << cmp_runs[i].point.vector_size
                << ": paths diverged (gathers differ) — slab accounting "
                   "skipped\n";
      continue;
    }
    const double slab_pc = 2.0 * static_cast<double>(pc.vmem_indexed_instrs);
    const double slab_blk =
        slab_pc - (static_cast<double>(pc.vmem_unit_instrs) -
                   static_cast<double>(blk.vmem_unit_instrs));
    const auto& m9 = cmp_runs[i].phase_metrics[miniapp::kSolvePhase];
    ct.add_row({std::to_string(cmp_runs[i].point.vector_size),
                core::fmt(slab_pc, 0), core::fmt(slab_blk, 0),
                core::fmt(slab_pc / slab_blk, 2) + "x", core::fmt(m9.avl, 1),
                core::fmt_pct(m9.ev),
                core::fmt(pc.total_cycles() / blk.total_cycles(), 2) + "x"});
  }
  std::cout << ct.to_string();

  // ---- sparse-format co-design summary (DESIGN.md §6) ------------------
  // The campaign above runs the (default) padded-ELL mirror; the format
  // knob trades gather traffic at bit-identical residual histories.  The
  // strip must stay well below the node count so the operator splits into
  // several SELL slices (one whole-matrix slice makes every format the
  // same layout); the shuffled-numbering study where RCM earns its keep
  // is bench/spmv_format_sweep.
  const int vs_fmt = bench::small_run() ? 16 : 64;
  std::cout << "\nsparse formats on scenario " << camp.scenarios()[0].name
            << " (riscv-vec, VS " << vs_fmt << ", blocked phase 9):\n\n";
  core::Table ft({"format", "solve cyc/it", "gl/it", "pad frac",
                  "coalesced", "ph9 AVL"});
  for (const auto& fc : bench::kFormatCases) {
    const auto st = bench::run_transient_point(
        camp.mesh(0), camp.scenarios()[0], platforms::riscv_vec(), vs_fmt,
        steps, /*blocked=*/true, fc.format, fc.rcm, /*spinup=*/false);
    ft.add_row({fc.name,
                core::fmt(st.solve_iterations() > 0
                              ? st.solve_cycles() / st.solve_iterations()
                              : 0.0,
                          0),
                core::fmt(st.gather_lines_per_iteration(), 0),
                core::fmt_pct(st.pad_fraction()),
                std::to_string(st.coalesced_lanes),
                core::fmt(st.avl, 1)});
  }
  std::cout << ft.to_string();
  std::cout << "\nformats trade counters, never numerics: the residual "
               "histories behind every row above are bit-identical "
               "(test_format_equivalence).\n";
  return 0;
}
