// Figure 11 — "Speed-up with respect to scalar VECTOR_SIZE = 16".
//
// Paper: vanilla auto-vectorization reaches 3–6x (fastest at
// VECTOR_SIZE = 240); VEC2 regresses; IVEC2 overtakes vanilla everywhere;
// VEC1 reaches 3.5–7.6x with the maximum at VECTOR_SIZE = 240.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 11",
                            "speed-up vs scalar (VECTOR_SIZE = 16)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 16;
  cfg.opt = miniapp::OptLevel::kScalar;
  const double scalar_cycles =
      ex.run(platforms::riscv_vec_scalar(), cfg).total_cycles;
  std::cout << "scalar baseline (vs=16): " << core::fmt(scalar_cycles, 0)
            << " cycles\n\n";

  const auto grid = bench::run_paper_grid(ex, platforms::riscv_vec(), cfg);
  constexpr std::size_t nopts = std::size(core::kSweepOptLevels);

  core::Table t({"VECTOR_SIZE", "original", "VEC2", "IVEC2", "VEC1"});
  double best = 0.0;
  int best_vs = 0;
  for (std::size_t si = 0; si < std::size(bench::kVectorSizes); ++si) {
    const int vs = bench::kVectorSizes[si];
    std::vector<std::string> row{std::to_string(vs)};
    for (std::size_t oi = 0; oi < nopts; ++oi) {
      const auto& m = grid[si * nopts + oi];
      const double speedup = scalar_cycles / m.total_cycles;
      row.push_back(core::fmt_speedup(speedup));
      if (core::kSweepOptLevels[oi] == miniapp::OptLevel::kVec1 &&
          speedup > best) {
        best = speedup;
        best_vs = vs;
      }
    }
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\nbest fully-optimized speed-up: "
            << core::fmt_speedup(best) << " at VECTOR_SIZE = " << best_vs
            << "   (paper: 7.6x at 240)\n";
  return 0;
}
