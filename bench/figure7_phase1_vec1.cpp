// Figure 7 — "Resulting cycles phase 1" with VEC1 (loop fission).
//
// Paper: splitting work A (non-vectorizable bookkeeping) from work B
// (vectorizable coordinate gather) lets work B run on the VPU.  Speed-ups
// range 1.03–1.56x, reaching 2x at VECTOR_SIZE = 512 — modest, because
// only work B uses vector instructions.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 7", "phase-1 cycles with VEC1 (fission)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;

  core::Table t({"VECTOR_SIZE", "fused (IVEC2)", "split (VEC1)",
                 "VEC1 speedup"});
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    cfg.opt = miniapp::OptLevel::kIVec2;
    const double fused = ex.run(platforms::riscv_vec(), cfg).phase_cycles(1);
    cfg.opt = miniapp::OptLevel::kVec1;
    const double split = ex.run(platforms::riscv_vec(), cfg).phase_cycles(1);
    t.add_row({std::to_string(vs), core::fmt(fused, 0),
               core::fmt(split, 0), core::fmt_speedup(fused / split)});
  }
  std::cout << t.to_string();
  std::cout << "\npaper: 1.03-1.56x across VECTOR_SIZE, 2x at 512; work A "
               "stays scalar, capping the gain.\n";
  return 0;
}
