// Figure 3 — "Absolute number and type of vector instructions executed when
// enabling auto-vectorization" vs VECTOR_SIZE.
//
// Paper: the count of vector instructions shrinks as VECTOR_SIZE grows
// (longer vectors per instruction); there are no control-lane instructions
// in the hot loops; almost 70% of vector instructions are memory type.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner(
      "Figure 3", "vector instruction count by type (vanilla autovec)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVanilla;

  core::Table t({"VECTOR_SIZE", "arith", "mem-unit", "mem-strided",
                 "mem-indexed", "ctrl", "total", "% memory"});
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    const auto mix = metrics::instruction_mix(m.total);
    t.add_row({std::to_string(vs), core::fmt_sci(double(mix.arith)),
               core::fmt_sci(double(mix.mem_unit)),
               core::fmt_sci(double(mix.mem_strided)),
               core::fmt_sci(double(mix.mem_indexed)),
               core::fmt_sci(double(mix.ctrl)),
               core::fmt_sci(double(mix.total())),
               core::fmt_pct(mix.memory_fraction())});
  }
  std::cout << t.to_string();
  std::cout << "\npaper: totals decrease with VECTOR_SIZE; memory "
               "instructions dominate the mix (~70%).\n";
  return 0;
}
