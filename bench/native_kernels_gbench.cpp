// google-benchmark suite for the host-compiled loop-order kernels — the
// "runs on an AVX-512 desktop" half of the reproduction.  The same source
// transformations the paper applies to Alya are measured on the machine
// this binary runs on: vanilla (bound reload) vs dof-inner (VEC2) vs
// ivect-inner (IVEC2), and fused vs split phase 1.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "fem/element.h"
#include "miniapp/native_kernels.h"

namespace {

namespace native = vecfd::miniapp::native;
using vecfd::fem::kDim;
using vecfd::fem::kDofs;
using vecfd::fem::kGauss;
using vecfd::fem::kNodes;

struct Data {
  explicit Data(int vector_size, int nnode = 9000) : vs(vector_size) {
    std::mt19937 rng(123);
    std::uniform_int_distribution<int> node(0, nnode - 1);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    lnods.resize(static_cast<std::size_t>(kNodes) * vs);
    for (auto& n : lnods) n = node(rng);
    unk.resize(static_cast<std::size_t>(nnode) * kDofs);
    unk_old.resize(unk.size());
    for (auto& v : unk) v = val(rng);
    for (auto& v : unk_old) v = val(rng);
    elunk.assign(static_cast<std::size_t>(kDofs) * kNodes * vs, 0.0);
    elvel_old.assign(static_cast<std::size_t>(kDim) * kNodes * vs, 0.0);
  }
  int vs;
  std::vector<std::int32_t> lnods;
  std::vector<double> unk, unk_old, elunk, elvel_old;
};

void BM_Phase2Vanilla(benchmark::State& state) {
  Data d(static_cast<int>(state.range(0)));
  const int bound = d.vs;
  for (auto _ : state) {
    native::phase2_vanilla(d.lnods.data(), d.unk.data(), d.unk_old.data(),
                           d.elunk.data(), d.elvel_old.data(), &bound);
    benchmark::DoNotOptimize(d.elunk.data());
  }
  state.SetItemsProcessed(state.iterations() * d.vs);
}

void BM_Phase2DofInner(benchmark::State& state) {
  Data d(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    native::phase2_dof_inner(d.lnods.data(), d.unk.data(), d.unk_old.data(),
                             d.elunk.data(), d.elvel_old.data(), d.vs);
    benchmark::DoNotOptimize(d.elunk.data());
  }
  state.SetItemsProcessed(state.iterations() * d.vs);
}

void BM_Phase2IvectInner(benchmark::State& state) {
  Data d(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    native::phase2_ivect_inner(d.lnods.data(), d.unk.data(),
                               d.unk_old.data(), d.elunk.data(),
                               d.elvel_old.data(), d.vs);
    benchmark::DoNotOptimize(d.elunk.data());
  }
  state.SetItemsProcessed(state.iterations() * d.vs);
}

BENCHMARK(BM_Phase2Vanilla)->Arg(16)->Arg(64)->Arg(240)->Arg(512);
BENCHMARK(BM_Phase2DofInner)->Arg(16)->Arg(64)->Arg(240)->Arg(512);
BENCHMARK(BM_Phase2IvectInner)->Arg(16)->Arg(64)->Arg(240)->Arg(512);

void BM_Phase1Fused(benchmark::State& state) {
  const int vs = static_cast<int>(state.range(0));
  const int nelem = 4096;
  const int nnode = 9000;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> node(0, nnode - 1);
  std::vector<std::int32_t> mesh_lnods(
      static_cast<std::size_t>(nelem) * kNodes);
  for (auto& n : mesh_lnods) n = node(rng);
  std::vector<std::int32_t> elmat(nelem, 0);
  std::vector<double> coords(static_cast<std::size_t>(nnode) * kDim, 1.0);
  std::vector<std::int32_t> lnods(static_cast<std::size_t>(kNodes) * vs);
  std::vector<double> dtfac(vs);
  std::vector<double> elcod(static_cast<std::size_t>(kDim) * kNodes * vs);
  for (auto _ : state) {
    native::phase1_fused(mesh_lnods.data(), elmat.data(), coords.data(),
                         lnods.data(), dtfac.data(), elcod.data(), 0, vs,
                         20.0);
    benchmark::DoNotOptimize(elcod.data());
  }
  state.SetItemsProcessed(state.iterations() * vs);
}

void BM_Phase1Split(benchmark::State& state) {
  const int vs = static_cast<int>(state.range(0));
  const int nelem = 4096;
  const int nnode = 9000;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> node(0, nnode - 1);
  std::vector<std::int32_t> mesh_lnods(
      static_cast<std::size_t>(nelem) * kNodes);
  for (auto& n : mesh_lnods) n = node(rng);
  std::vector<std::int32_t> elmat(nelem, 0);
  std::vector<double> coords(static_cast<std::size_t>(nnode) * kDim, 1.0);
  std::vector<std::int32_t> lnods(static_cast<std::size_t>(kNodes) * vs);
  std::vector<double> dtfac(vs);
  std::vector<double> elcod(static_cast<std::size_t>(kDim) * kNodes * vs);
  for (auto _ : state) {
    native::phase1_split(mesh_lnods.data(), elmat.data(), coords.data(),
                         lnods.data(), dtfac.data(), elcod.data(), 0, vs,
                         20.0);
    benchmark::DoNotOptimize(elcod.data());
  }
  state.SetItemsProcessed(state.iterations() * vs);
}

BENCHMARK(BM_Phase1Fused)->Arg(64)->Arg(240)->Arg(512);
BENCHMARK(BM_Phase1Split)->Arg(64)->Arg(240)->Arg(512);

void BM_ConvBlock(benchmark::State& state) {
  const int vs = static_cast<int>(state.range(0));
  std::vector<double> wmat(static_cast<std::size_t>(kGauss) * kNodes * vs,
                           1.01);
  std::vector<double> dmat(wmat.size(), 0.99);
  std::vector<double> conv(static_cast<std::size_t>(kNodes) * kNodes * vs);
  for (auto _ : state) {
    native::conv_block(wmat.data(), dmat.data(), conv.data(), vs);
    benchmark::DoNotOptimize(conv.data());
  }
  state.SetItemsProcessed(state.iterations() * vs);
  state.counters["flops/elem"] = kGauss * kNodes * kNodes * 2.0;
}

BENCHMARK(BM_ConvBlock)->Arg(64)->Arg(240)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
