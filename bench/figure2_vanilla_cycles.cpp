// Figure 2 — "Total cycles spent in the vanilla mini-app enabling
// auto-vectorization" vs VECTOR_SIZE.
//
// Paper: cycles fall steeply from VECTOR_SIZE = 16, the fastest
// configuration is VECTOR_SIZE = 240, and 256/512 are slightly slower.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 2",
                            "total cycles, vanilla auto-vectorization");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVanilla;

  core::Table t({"VECTOR_SIZE", "total cycles", "vs fastest"});
  double best = 0.0;
  int best_vs = 0;
  std::vector<std::pair<int, double>> rows;
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    rows.emplace_back(vs, m.total_cycles);
    if (best == 0.0 || m.total_cycles < best) {
      best = m.total_cycles;
      best_vs = vs;
    }
  }
  for (const auto& [vs, cycles] : rows) {
    t.add_row({std::to_string(vs), core::fmt(cycles, 0),
               core::fmt(cycles / best, 3)});
  }
  std::cout << t.to_string();
  std::cout << "\nfastest configuration: VECTOR_SIZE = " << best_vs
            << "   (paper: 240)\n";
  return 0;
}
