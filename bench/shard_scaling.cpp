// Shard scaling — the domain-decomposition co-design study (DESIGN.md §9):
// the cavity pressure-Poisson solve partitioned over P instrumented Vpus
// with ghost refreshes priced through the halo counters.
//
// Two tables:
//   1. STRONG scaling at a fixed mesh: the phase-10 BSP makespan (max shard
//      cycles per parallel epoch + the coordinator's reduction folds) must
//      fall as P grows while the halo-volume counters rise — the classic
//      surface-vs-compute trade, now visible in counters.
//   2. SURFACE-TO-VOLUME at fixed P: refining the mesh grows subdomain
//      volumes (owned gathered lines) faster than their surfaces (halo
//      lines), so the halo/owned ratio must FALL monotonically — the 1-D
//      strip partition's surface is O(P·width²) against an O(width³)
//      volume.
//
// P-independence is re-verified before measuring: fields and residual
// histories of every sharded run are demanded bitwise equal to the P=1
// legacy path (the contract of solver::ShardedCg).
//
// Acceptance (exit 1 on failure): on the strong-scaling mesh the P=8
// makespan is at most HALF the P=1 phase-10 cycles, every field/history
// comparison is bitwise clean, and the halo/owned ratio decreases under
// refinement.
#include "bench_common.h"

#include <string>
#include <vector>

#include "bench_metrics.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "sim/vpu.h"

namespace {

using namespace vecfd;

/// One sharded transient run distilled: the scaling metrics plus the raw
/// material of the bit-identity check (final fields, pressure histories).
struct ShardRun {
  double makespan = 0.0;      ///< phase-10 BSP critical path
  double p10_cycles = 0.0;    ///< total phase-10 work (all Vpus)
  double p10_avl = 0.0;
  std::uint64_t halo_lines = 0;
  std::uint64_t halo_messages = 0;
  std::uint64_t owned_lines = 0;  ///< phase-10 gathered lines
  int iters = 0;
  std::vector<double> history;  ///< concatenated pressure histories
  std::vector<double> fields;   ///< final unknowns (u, v, w, p)
};

ShardRun run_point(const fem::MeshConfig& mc, int shards, int vs, int steps,
                   const sim::MachineConfig& machine) {
  miniapp::Scenario scen = miniapp::scenario_cavity();
  scen.mesh = mc;
  const fem::Mesh mesh(mc);
  miniapp::TimeLoopConfig cfg;
  cfg.steps = steps;
  cfg.vector_size = vs;
  cfg.shards = shards;
  miniapp::TimeLoop loop(mesh, scen, cfg);
  sim::Vpu vpu(machine);
  const auto res = loop.run(vpu);

  ShardRun r;
  r.makespan = res.pressure_makespan_cycles;
  const sim::Counters& p10 = res.phase[miniapp::kPressurePhase];
  r.p10_cycles = p10.total_cycles();
  r.p10_avl = metrics::compute(p10, machine.vlmax).avl;
  r.halo_lines = p10.halo_lines_sent + p10.halo_lines_recv;
  r.halo_messages = p10.halo_messages;
  r.owned_lines = p10.gather_lines_touched;
  for (const auto& step : res.steps) {
    r.iters += step.pressure.iterations;
    r.history.insert(r.history.end(), step.pressure.history.begin(),
                     step.pressure.history.end());
  }
  const auto unk = loop.state().unknowns();
  r.fields.assign(unk.begin(), unk.end());
  return r;
}

}  // namespace

int main() {
  using namespace vecfd;
  std::cout << core::banner("Shard scaling",
                            "domain-decomposition pressure solve: BSP "
                            "makespan, halo volume, P-independence");

  const sim::MachineConfig machine = platforms::riscv_vec();
  const int vs = 240;
  const int steps = 2;
  const int strong_n = bench::small_run() ? 8 : 12;
  std::vector<int> refinements = {8, 10, 12};
  if (bench::small_run()) refinements = {6, 8};
  std::cout << "scenario cavity, riscv-vec, VECTOR_SIZE=" << vs << ", "
            << steps << " steps per point"
            << (bench::small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";

  // ---- strong scaling: fixed mesh, P = 1, 2, 4, 8 -------------------------
  const fem::MeshConfig strong_mesh{.nx = strong_n, .ny = strong_n,
                                    .nz = strong_n};
  core::Table strong({"shards", "p10 makespan", "speedup", "halo lines",
                      "halo msgs", "p10 AVL", "identical"});
  bool identical_ok = true;
  double base_makespan = 0.0;
  double p8_makespan = 0.0;
  ShardRun ref;
  for (const int p : {1, 2, 4, 8}) {
    const ShardRun r = run_point(strong_mesh, p, vs, steps, machine);
    const bool same =
        r.history == ref.history && r.fields == ref.fields;  // bitwise
    if (p == 1) {
      ref = r;
      base_makespan = r.makespan;
    } else {
      identical_ok = identical_ok && same;
    }
    if (p == 8) p8_makespan = r.makespan;
    strong.add_row(
        {std::to_string(p), core::fmt(r.makespan, 0),
         base_makespan > 0.0
             ? core::fmt(base_makespan / r.makespan, 2) + "x"
             : "-",
         std::to_string(r.halo_lines), std::to_string(r.halo_messages),
         core::fmt(r.p10_avl, 1), p == 1 ? "(ref)" : (same ? "yes" : "NO")});
  }
  std::cout << "strong scaling, cavity " << strong_n << "^3:\n"
            << strong.to_string() << '\n';
  const bool strong_ok =
      p8_makespan > 0.0 && p8_makespan <= 0.5 * base_makespan;

  // ---- surface-to-volume: fixed P, refine the mesh ------------------------
  // A finer strip (VECTOR_SIZE 64) keeps all P subdomains populated on
  // every refinement: with the 240-strip quantum the coarse meshes round
  // some shards down to zero rows, and the interface COUNT (not the
  // surface physics) would dominate the ratio.
  const int fixed_p = 4;
  const int s2v_vs = 64;
  core::Table s2v({"mesh", "halo lines", "owned lines", "halo/owned"});
  bool s2v_ok = true;
  double prev_ratio = 0.0;
  for (std::size_t ri = 0; ri < refinements.size(); ++ri) {
    const int nref = refinements[ri];
    const fem::MeshConfig mc{.nx = nref, .ny = nref, .nz = nref};
    const ShardRun r = run_point(mc, fixed_p, s2v_vs, steps, machine);
    const double ratio =
        r.owned_lines > 0
            ? static_cast<double>(r.halo_lines) /
                  static_cast<double>(r.owned_lines)
            : 0.0;
    if (ri > 0) s2v_ok = s2v_ok && ratio < prev_ratio;
    prev_ratio = ratio;
    s2v.add_row({std::to_string(nref) + "^3", std::to_string(r.halo_lines),
                 std::to_string(r.owned_lines), core::fmt(ratio, 4)});
  }
  std::cout << "surface-to-volume, " << fixed_p
            << " shards, VECTOR_SIZE=" << s2v_vs << ":\n"
            << s2v.to_string();

  std::cout << "\nreading guide: sharding distributes the CG's vector work "
               "over P instrumented Vpus, so the BSP makespan (max shard "
               "per epoch + serial reduction folds) falls with P while the "
               "halo counters price the growing subdomain surface; under "
               "refinement at fixed P the surface grows one power of the "
               "mesh width slower than the volume, so halo/owned falls.  "
               "Acceptance: P=8 makespan <= half of P=1 ("
            << (strong_ok ? "met" : "NOT met")
            << "), fields and residual histories bit-identical across P ("
            << (identical_ok ? "met" : "NOT met")
            << "), halo/owned strictly decreasing under refinement ("
            << (s2v_ok ? "met" : "NOT met") << ").\n";
  return strong_ok && identical_ok && s2v_ok ? 0 : 1;
}
