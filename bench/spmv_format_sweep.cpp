// SpMV format sweep — the sparse-format co-design study (DESIGN.md §6):
// csr-host / ell / sell / sell+rcm × long-vector platforms × VECTOR_SIZE on
// a production-like (shuffled-numbering) cavity flow, comparing per Krylov
// iteration the simulated solve cycles, the distinct x-cache-lines gathered
// (the locality the formats fight over), the pad-lane fraction and AVL.
//
// Residual histories are bit-identical across formats (the equivalence
// suite asserts it), so every ratio below is a pure storage/traffic effect
// at IDENTICAL numerics — the co-design comparison the paper's methodology
// demands.
//
// Acceptance (exit 1 on failure): at VECTOR_SIZE ≥ 256 on at least one
// long-vector platform, sell+rcm gathers ≥ 30% fewer cache lines per solve
// iteration than the ELL baseline AND reduces simulated phase-9/10 cycles.
#include "bench_common.h"

#include <string>

#include "bench_metrics.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("SpMV format sweep",
                            "csr-host/ell/sell x platform x VECTOR_SIZE: "
                            "gathered lines, pad lanes, solve cycles");

  miniapp::Scenario scen = miniapp::scenario_cavity();
  // Production numbering: shuffled nodes (unstructured-like), the regime
  // renumbering exists for.  The mesh must dwarf one strip or every gather
  // trivially touches most of x.
  scen.mesh = {.nx = 12, .ny = 12, .nz = 12};
  // even the small mesh must keep nodes ≫ vlmax·(doubles per line), or the
  // VS=256 strips span most of x and no numbering can cut gathered lines
  if (bench::small_run()) scen.mesh = {.nx = 10, .ny = 10, .nz = 10};
  scen.mesh.shuffle_nodes = true;
  const fem::Mesh mesh(scen.mesh);
  const int steps = 2;
  std::cout << "scenario " << scen.name << " (shuffled numbering): "
            << mesh.num_elements() << " hex elements, " << mesh.num_nodes()
            << " nodes, " << steps << " steps"
            << (bench::small_run() ? " (VECFD_BENCH_SMALL)" : "") << "\n\n";

  const sim::MachineConfig machines[] = {platforms::riscv_vec(),
                                         platforms::sx_aurora(),
                                         platforms::mn4_avx512()};
  const int sizes[] = {64, 256, 512};

  core::Table t({"machine", "VS", "format", "solve cyc/it", "gl/it",
                 "gl redux", "pad frac", "coalesced", "AVL"});
  bool accepted = false;
  for (const auto& machine : machines) {
    for (const int vs : sizes) {
      double ell_gl = 0.0;
      double ell_cycles = 0.0;
      for (const auto& c : bench::kFormatCases) {
        const auto st = bench::run_transient_point(
            mesh, scen, machine, vs, steps, /*blocked=*/true, c.format,
            c.rcm, /*spinup=*/false);
        const double gl_it = st.gather_lines_per_iteration();
        const double cyc_it =
            st.solve_iterations() > 0
                ? st.solve_cycles() / st.solve_iterations()
                : 0.0;
        if (std::string(c.name) == "ell") {
          ell_gl = gl_it;
          ell_cycles = cyc_it;
        }
        const bool vs_ok = vs >= 256 && machine.vlmax >= 256;
        const double redux = ell_gl > 0.0 ? gl_it / ell_gl : 0.0;
        if (std::string(c.name) == "sell+rcm" && vs_ok && redux <= 0.7 &&
            cyc_it < ell_cycles) {
          accepted = true;
        }
        t.add_row({machine.name, std::to_string(vs), c.name,
                   core::fmt(cyc_it, 0), core::fmt(gl_it, 0),
                   ell_gl > 0.0 ? core::fmt(redux, 2) + "x" : "-",
                   core::fmt_pct(st.pad_fraction()),
                   std::to_string(st.coalesced_lanes),
                   core::fmt(st.avl, 1)});
      }
    }
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide: on a shuffled (production-like) numbering "
               "the ELL mirror gathers x from nearly one cache line per "
               "lane; σ-sorted SELL sheds the pad lanes and RCM packs each "
               "strip's columns into a band, so sell+rcm must cut the "
               "gathered lines per solve iteration by >= 30% at long "
               "vector lengths (acceptance"
            << (accepted ? " met" : " NOT met") << ").\n";
  return accepted ? 0 : 1;
}
