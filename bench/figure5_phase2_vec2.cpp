// Figure 5 — "Absolute cycles phase 2": vanilla vs VEC2.
//
// Paper: making VECTOR_DIM a compile-time constant lets the compiler
// vectorize phase 2 — and it *degrades* performance (AVL = 4; decoding,
// issuing and dispatching vector instructions computing only 4 elements
// produces significant overhead).
#include "bench_common.h"

#include "miniapp/driver.h"
#include "trace/vehave_trace.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 5",
                            "phase-2 cycles: vanilla vs VEC2 (AVL = 4)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;

  core::Table t({"VECTOR_SIZE", "original (scalar)", "VEC2 (vl=4)",
                 "VEC2/original"});
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    cfg.opt = miniapp::OptLevel::kVanilla;
    const double vanilla =
        ex.run(platforms::riscv_vec(), cfg).phase_cycles(2);
    cfg.opt = miniapp::OptLevel::kVec2;
    const double vec2 = ex.run(platforms::riscv_vec(), cfg).phase_cycles(2);
    t.add_row({std::to_string(vs), core::fmt(vanilla, 0),
               core::fmt(vec2, 0), core::fmt(vec2 / vanilla, 2)});
  }
  std::cout << t.to_string();

  // the Vehave diagnosis: measure phase-2 AVL under VEC2
  miniapp::MiniAppConfig c2;
  c2.vector_size = 240;
  c2.opt = miniapp::OptLevel::kVec2;
  miniapp::MiniApp app(w.mesh, w.state, c2);
  sim::Vpu vpu(platforms::riscv_vec());
  trace::VehaveTrace tr(1u << 23);
  vpu.set_observer(&tr);
  (void)app.run(vpu);
  std::cout << "\nVehave-style measured phase-2 AVL under VEC2: "
            << core::fmt(tr.avl(2), 1)
            << " elements of 256   (paper: 4)\n";
  return 0;
}
