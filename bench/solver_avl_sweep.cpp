// Solver AVL sweep — the co-design case for long vectors in the SOLVE
// stage: the phase-9 Krylov solve (ELL SpMV with unit-stride value/index
// loads + vgather of x[cols], BLAS-1 strip-mined at VECTOR_SIZE) measured
// across the studied VECTOR_SIZE values.
//
// The claim mirrored from the assembly study: the gather-bound SpMV keeps
// its vector instruction mix flat while AVL climbs with the strip length,
// so occupancy Ev → 1 and cycles fall — the indexed-load workload is
// exactly where long vectors pay off (paper §2.3, §5).
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Solver AVL sweep",
                            "phase-9 solve occupancy vs VECTOR_SIZE");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;
  cfg.scheme = fem::Scheme::kSemiImplicit;
  cfg.run_solve = true;

  const auto ms = bench::run_size_sweep(ex, platforms::riscv_vec(), cfg);

  core::Table t({"VECTOR_SIZE", "solve cycles", "share", "iters", "Mv",
                 "AVL", "Ev", "vCPI"});
  const int p = miniapp::kSolvePhase;
  for (const auto& m : ms) {
    t.add_row({std::to_string(m.app.vector_size),
               core::fmt(m.phase_cycles(p), 0), core::fmt_pct(m.phase_share(p)),
               std::to_string(m.solve.iterations),
               core::fmt_pct(m.phase_metrics[p].mv),
               core::fmt(m.phase_metrics[p].avl, 1),
               core::fmt_pct(m.phase_metrics[p].ev),
               core::fmt(m.phase_metrics[p].vcpi, 1)});
  }
  std::cout << t.to_string();
  std::cout << "\nreading guide: AVL saturates at vlmax ("
            << platforms::riscv_vec().vlmax
            << ") once VECTOR_SIZE >= vlmax — the vgather SpMV exploits the "
               "full register, and solve cycles drop accordingly.\n";
  return 0;
}
