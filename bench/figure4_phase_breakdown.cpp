// Figure 4 — "Percentage cycles spent per phase" after vanilla
// auto-vectorization, per VECTOR_SIZE.
//
// Paper: the formerly dominant phases (6, 7, 3, 4) drop from ~90% to ~50%;
// the non-vectorized phases 1 and 2 grow to ~38% as VECTOR_SIZE increases,
// and phase 2 becomes the most time-consuming phase.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 4",
                            "% cycles per phase after vanilla autovec");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVanilla;

  std::vector<std::string> headers{"VECTOR_SIZE"};
  for (int p = 1; p <= 8; ++p) headers.push_back("ph" + std::to_string(p));
  headers.push_back("ph1+ph2");
  core::Table t(std::move(headers));

  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    std::vector<std::string> row{std::to_string(vs)};
    for (int p = 1; p <= 8; ++p) {
      row.push_back(core::fmt_pct(m.phase_share(p), 1));
    }
    row.push_back(core::fmt_pct(m.phase_share(1) + m.phase_share(2), 1));
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\npaper: phases 1+2 grow to ~38% at large VECTOR_SIZE; "
               "phase 2 is the most consuming phase.\n";
  return 0;
}
