// Figure 10 — "Vector occupancy" Ev per phase × VECTOR_SIZE (higher is
// better).
//
// Paper: occupancy approaches 100% when VECTOR_SIZE reaches the physical
// register size (256 DP elements); phase 8 has no occupancy (not
// vectorized) and is omitted.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 10", "vector occupancy Ev per phase");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;

  std::vector<std::string> headers{"VECTOR_SIZE"};
  for (int p = 1; p <= 7; ++p) headers.push_back("ph" + std::to_string(p));
  core::Table t(std::move(headers));

  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    std::vector<std::string> row{std::to_string(vs)};
    for (int p = 1; p <= 7; ++p) {
      row.push_back(core::fmt_pct(m.phase_metrics[p].ev, 0));
    }
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\npaper: near-100% occupancy once VECTOR_SIZE reaches the "
               "256-element register size; phase 8 omitted (scalar).\n";
  return 0;
}
