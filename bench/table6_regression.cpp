// Table 6 — "Coefficient of determination phase 1 and phase 8".
//
// Paper: regressing phase cycles on (L1 DCM per kilo-instruction, fraction
// of memory instructions) across the VECTOR_SIZE sweep explains the curves
// of the poorly/non-vectorized phases: R² = 0.903 (phase 1), 0.966
// (phase 8).
#include "bench_common.h"

#include "stats/ols.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner(
      "Table 6", "R² of phase cycles vs (L1 DCM/ki, % memory instrs)");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;

  std::vector<core::Measurement> ms;
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    ms.push_back(ex.run(platforms::riscv_vec(), cfg));
  }

  core::Table t({"phase", "CoD (R^2)", "regressors", "paper"});
  for (int phase : {1, 8}) {
    std::vector<double> cycles;
    std::vector<double> dcm_ki;
    std::vector<double> mem_frac;
    for (const auto& m : ms) {
      // per-element phase cost, so chunk-count differences cancel
      cycles.push_back(m.phase_cycles(phase) / w.mesh.num_elements());
      dcm_ki.push_back(metrics::l1_dcm_per_kilo_instr(m.phase[phase]));
      mem_frac.push_back(metrics::memory_instr_fraction(m.phase[phase]));
    }
    // A fully scalar phase executes the same per-element instruction mix at
    // every VECTOR_SIZE, making %mem constant (collinear with the
    // intercept); drop degenerate regressors before fitting.
    std::vector<std::vector<double>> xs;
    std::string used;
    if (stats::variance(dcm_ki) > 1e-12) {
      xs.push_back(dcm_ki);
      used += "L1-DCM/ki";
    }
    if (stats::variance(mem_frac) > 1e-12) {
      xs.push_back(mem_frac);
      used += used.empty() ? "%mem" : " + %mem";
    }
    const auto fit = stats::ols_fit(xs, cycles);
    t.add_row({"Phase " + std::to_string(phase),
               core::fmt(fit.r_squared, 3), used,
               phase == 1 ? "0.903" : "0.966"});
  }
  std::cout << t.to_string();
  std::cout << "\n(6 observations, as in the paper's sweep; constant "
               "regressors dropped)\n";
  return 0;
}
