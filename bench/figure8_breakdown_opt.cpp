// Figure 8 — "Percentage total cycles spent per phase after optimizations"
// (VEC1 = vanilla + VEC2-fix + IVEC2 + fission applied).
//
// Paper: phases 1 and 2 shrink to a narrow share; the non-vectorized
// phase 8 keeps growing with VECTOR_SIZE while the vectorized phases stay
// almost constant from VECTOR_SIZE >= 128.
#include "bench_common.h"

int main() {
  using namespace vecfd;
  std::cout << core::banner("Figure 8",
                            "% cycles per phase after all optimizations");
  bench::Workload w;
  bench::print_workload(w);

  const core::Experiment ex(w.mesh, w.state);
  miniapp::MiniAppConfig cfg;
  cfg.opt = miniapp::OptLevel::kVec1;

  std::vector<std::string> headers{"VECTOR_SIZE"};
  for (int p = 1; p <= 8; ++p) headers.push_back("ph" + std::to_string(p));
  core::Table t(std::move(headers));

  double ph8_first = 0.0;
  double ph8_last = 0.0;
  for (int vs : bench::kVectorSizes) {
    cfg.vector_size = vs;
    const auto m = ex.run(platforms::riscv_vec(), cfg);
    std::vector<std::string> row{std::to_string(vs)};
    for (int p = 1; p <= 8; ++p) {
      row.push_back(core::fmt_pct(m.phase_share(p), 1));
    }
    if (vs == bench::kVectorSizes[0]) ph8_first = m.phase_share(8);
    ph8_last = m.phase_share(8);
    t.add_row(row);
  }
  std::cout << t.to_string();
  std::cout << "\nphase-8 share grows from " << core::fmt_pct(ph8_first)
            << " to " << core::fmt_pct(ph8_last)
            << " across the sweep (paper: keeps increasing with "
               "VECTOR_SIZE).\n";
  return 0;
}
