// codesign_loop — the paper's iterative methodology (§3) as an executable
// walkthrough: measure → diagnose with the Advisor → apply the suggested
// source transformation → repeat, until no actionable finding remains.
//
// The printed narrative retraces §4 exactly: vanilla autovec → phase 2
// opaque bound → VEC2 (counter-productive, AVL=4) → IVEC2 (interchange) →
// VEC1 (fission) → VECTOR_SIZE=240 sweet spot.
//
//   $ ./examples/codesign_loop
#include <iostream>

#include "core/advisor.h"
#include "core/experiment.h"
#include "core/report.h"

namespace {

using namespace vecfd;

void print_measurement(const core::Measurement& m) {
  std::cout << "  machine=" << m.machine.name
            << " opt=" << to_string(m.app.opt)
            << " VECTOR_SIZE=" << m.app.vector_size << '\n'
            << "  total cycles: " << core::fmt(m.total_cycles, 0)
            << "  (Mv=" << core::fmt_pct(m.overall.mv)
            << ", Av=" << core::fmt_pct(m.overall.av)
            << ", AVL=" << core::fmt(m.overall.avl, 1) << ")\n";
  std::cout << "  hottest phases:";
  for (int p = 1; p <= 8; ++p) {
    if (m.phase_share(p) > 0.15) {
      std::cout << "  ph" << p << "=" << core::fmt_pct(m.phase_share(p));
    }
  }
  std::cout << '\n';
}

void print_findings(const std::vector<core::Finding>& fs) {
  for (const auto& f : fs) {
    std::cout << "  [" << core::to_string(f.kind) << ", severity "
              << core::fmt_pct(f.severity) << "] " << f.message << '\n';
  }
}

}  // namespace

int main() {
  const fem::Mesh mesh({.nx = 8, .ny = 10, .nz = 12});
  const fem::State state(mesh);
  const core::Experiment ex(mesh, state);
  const auto machine = platforms::riscv_vec();

  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 256;
  cfg.opt = miniapp::OptLevel::kVanilla;

  const struct {
    miniapp::OptLevel next;
    const char* action;
  } steps[] = {
      {miniapp::OptLevel::kVec2,
       "make VECTOR_DIM a compile-time constant (VEC2)"},
      {miniapp::OptLevel::kIVec2,
       "interchange the phase-2 loop nest: ivect innermost (IVEC2)"},
      {miniapp::OptLevel::kVec1,
       "split phase-1 work A from work B (VEC1 fission)"},
  };

  std::cout << "co-design loop on " << mesh.num_elements()
            << " elements\n\n";

  int iteration = 1;
  for (const auto& step : steps) {
    std::cout << "== iteration " << iteration++ << " ==\n";
    const auto m = ex.run(machine, cfg);
    print_measurement(m);
    std::cout << "findings:\n";
    print_findings(core::advise(m));
    std::cout << "action: " << step.action << "\n\n";
    cfg.opt = step.next;
  }

  std::cout << "== final measurement ==\n";
  auto m = ex.run(machine, cfg);
  print_measurement(m);
  std::cout << "findings:\n";
  print_findings(core::advise(m));

  // last lesson: the FSM-friendly vector length
  std::cout << "\naction: set VECTOR_SIZE to a multiple of "
            << machine.lanes * machine.fsm_group << " -> 240\n\n";
  cfg.vector_size = 240;
  std::cout << "== with VECTOR_SIZE = 240 ==\n";
  const auto m240 = ex.run(machine, cfg);
  print_measurement(m240);
  std::cout << "findings:\n";
  print_findings(core::advise(m240));
  std::cout << "\nspeedup of the last step alone: "
            << core::fmt_speedup(m.total_cycles / m240.total_cycles) << '\n';
  return 0;
}
