// Transient Taylor–Green vortex — the verifiable time loop, end to end.
//
// Runs the decaying-vortex scenario (the one with a closed-form
// Navier–Stokes solution) through miniapp::TimeLoop on the RISC-V VEC
// machine at two mesh resolutions and prints, per step, the Krylov work
// and the projected divergence — then the L2 error against the analytic
// solution, demonstrating the convergence the test suite asserts.
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "miniapp/time_loop.h"
#include "platforms/platforms.h"

using namespace vecfd;

namespace {

double run_once(int nelem, bool print_steps) {
  miniapp::Scenario s = miniapp::scenario_taylor_green();
  s.mesh.nx = s.mesh.ny = s.mesh.nz = nelem;
  s.physics.dt = 0.005;
  const fem::Mesh mesh(s.mesh);

  miniapp::TimeLoopConfig cfg;
  cfg.steps = 8;
  cfg.vector_size = 240;
  miniapp::TimeLoop loop(mesh, s, cfg);
  sim::Vpu vpu(platforms::riscv_vec());
  const miniapp::TimeLoopResult res = loop.run(vpu);

  if (print_steps) {
    core::Table t({"t", "BiCGStab iters (9a/9b/9c)", "CG iters", "div u*",
                   "div u^{n+1}"});
    for (const auto& st : res.steps) {
      t.add_row({core::fmt(st.time, 3),
                 std::to_string(st.momentum[0].iterations) + "/" +
                     std::to_string(st.momentum[1].iterations) + "/" +
                     std::to_string(st.momentum[2].iterations),
                 std::to_string(st.pressure.iterations),
                 core::fmt(st.div_before, 6), core::fmt(st.div_after, 6)});
    }
    std::cout << t.to_string();
    const double solve_share =
        (res.phase[miniapp::kSolvePhase].total_cycles() +
         res.phase[miniapp::kPressurePhase].total_cycles() +
         res.phase[miniapp::kCorrectionPhase].total_cycles()) /
        res.cycles;
    std::cout << "solve stage (phases 9-11): "
              << core::fmt_pct(solve_share) << " of "
              << core::fmt(res.cycles, 0) << " cycles\n\n";
  }

  double num = 0.0;
  double den = 0.0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    const auto e = s.analytic(mesh, n, loop.time());
    for (int d = 0; d < fem::kDim; ++d) {
      const double diff = loop.state().velocity(n, d) - e[d];
      num += diff * diff;
      den += e[d] * e[d];
    }
  }
  return std::sqrt(num / den);
}

}  // namespace

int main() {
  std::cout << core::banner("Transient Taylor-Green vortex",
                            "semi-implicit projection loop vs the analytic "
                            "solution");
  const double err_coarse = run_once(4, /*print_steps=*/true);
  const double err_fine = run_once(8, /*print_steps=*/false);
  std::cout << "relative L2 velocity error at t = 0.04:\n"
            << "  4x4x4 mesh: " << core::fmt(err_coarse, 6) << '\n'
            << "  8x8x8 mesh: " << core::fmt(err_fine, 6) << "  ("
            << core::fmt(err_fine / err_coarse, 2)
            << "x — the loop converges under refinement)\n";
  return 0;
}
