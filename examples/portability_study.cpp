// portability_study — the §5 portability argument as a runnable study:
// the same source-level optimizations, evaluated on the three modelled
// platforms plus a user-defined custom machine, with per-platform metrics.
//
// Demonstrates how to define your own MachineConfig and check whether a
// tuning made for one vector architecture helps or hurts on another —
// the question the paper's co-design methodology is built to answer.
//
//   $ ./examples/portability_study
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace vecfd;
  const fem::Mesh mesh({.nx = 8, .ny = 10, .nz = 12});
  const fem::State state(mesh);
  const core::Experiment ex(mesh, state);

  // a hypothetical next-generation part: wider FSM-friendly unit, more
  // lanes, bigger L2 — the kind of what-if the co-design loop feeds back
  // to hardware architects (§7)
  sim::MachineConfig next_gen = platforms::riscv_vec();
  next_gen.name = "riscv-vec-ng";
  next_gen.frequency_mhz = 1000.0;
  next_gen.lanes = 16;
  next_gen.fsm_penalty = 1.02;  // improved lane-feeding FSM
  next_gen.memory.l2.size_bytes = 4 * 1024 * 1024;

  const sim::MachineConfig machines[] = {
      platforms::riscv_vec(), platforms::sx_aurora(),
      platforms::mn4_avx512(), next_gen};

  std::cout << "portability of the paper's optimizations (VECTOR_SIZE "
               "sweep, optimized VEC1 vs vanilla)\n\n";

  for (const auto& machine : machines) {
    core::Table t({"VECTOR_SIZE", "vanilla cycles", "VEC1 cycles",
                   "speedup", "Mv", "AVL", "wall ms"});
    for (int vs : {16, 64, 128, 240, 256, 512}) {
      miniapp::MiniAppConfig cfg;
      cfg.vector_size = vs;
      cfg.opt = miniapp::OptLevel::kVanilla;
      const auto v = ex.run(machine, cfg);
      cfg.opt = miniapp::OptLevel::kVec1;
      const auto o = ex.run(machine, cfg);
      const double ms =
          o.total_cycles / (machine.frequency_mhz * 1e3);
      t.add_row({std::to_string(vs), core::fmt(v.total_cycles, 0),
                 core::fmt(o.total_cycles, 0),
                 core::fmt_speedup(v.total_cycles / o.total_cycles),
                 core::fmt_pct(o.overall.mv), core::fmt(o.overall.avl, 0),
                 core::fmt(ms, 2)});
    }
    std::cout << "### " << machine.name << " (vlmax " << machine.vlmax
              << ", " << machine.lanes << " lanes, "
              << machine.frequency_mhz << " MHz)\n"
              << t.to_string() << '\n';
  }

  std::cout << "takeaway: speedup >= 1.0 everywhere — the source changes "
               "made for the long-vector prototype do not penalize the "
               "other platforms (paper §5, Figure 12).\n";
  return 0;
}
