// quickstart — the smallest end-to-end use of the vecfd public API:
// build a mesh and flow state, run the 8-phase assembly mini-app on the
// simulated RISC-V long-vector machine, and read the §2.2 metrics.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/report.h"
#include "fem/mesh.h"
#include "fem/state.h"
#include "metrics/metrics.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"

int main() {
  using namespace vecfd;

  // 1. A structured hex mesh and a deterministic flow state.
  const fem::Mesh mesh({.nx = 8, .ny = 8, .nz = 8});
  const fem::State state(mesh);

  // 2. Configure the mini-app: VECTOR_SIZE chunking, explicit scheme, all
  //    source optimizations applied (the paper's final version).
  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 240;
  cfg.opt = miniapp::OptLevel::kVec1;

  // 3. Run on the modelled RISC-V VEC prototype.
  const miniapp::MiniApp app(mesh, state, cfg);
  sim::Vpu vpu(platforms::riscv_vec());
  const miniapp::MiniAppResult result = app.run(vpu);

  // 4. Inspect the counters the co-design methodology is built on.
  const auto m = metrics::compute(result.total, vpu.vlmax());
  std::cout << "assembled RHS entries : " << result.rhs.size() << '\n'
            << "total cycles          : " << core::fmt(result.cycles, 0)
            << '\n'
            << "modelled wall time    : " << core::fmt(vpu.seconds() * 1e3, 2)
            << " ms @ " << vpu.config().frequency_mhz << " MHz\n"
            << "vector instruction mix: " << core::fmt_pct(m.mv) << '\n'
            << "vector activity       : " << core::fmt_pct(m.av) << '\n'
            << "average vector length : " << core::fmt(m.avl, 1) << '\n'
            << "vector occupancy      : " << core::fmt_pct(m.ev) << '\n';

  // 5. Per-phase view (phase 6 — convection — should dominate the FLOPs).
  core::Table t({"phase", "cycles", "Mv", "AVL"});
  for (int p = 1; p <= 8; ++p) {
    const auto pm = metrics::compute(result.phase[p], vpu.vlmax());
    t.add_row({std::to_string(p), core::fmt(pm.total_cycles, 0),
               core::fmt_pct(pm.mv), core::fmt(pm.avl, 1)});
  }
  std::cout << '\n' << t.to_string();
  return 0;
}
