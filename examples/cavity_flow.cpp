// cavity_flow — a real (small) CFD computation through the full pipeline:
// the mini-app assembles the semi-implicit momentum system per time step,
// the instrumented long-vector BiCGStab (solver/vkernels.h) solves it, and
// the lid-driven velocity field evolves.
//
// This is the "CFD = assembly + algebraic solver" structure of §2.3 put
// together end-to-end: the assembly is the exact instrumented kernel the
// paper optimizes, and the solves run through the same simulated machine
// as phase 9, so the run reports vector metrics for BOTH stages.
//
//   $ ./examples/cavity_flow
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "fem/mesh.h"
#include "fem/state.h"
#include "metrics/metrics.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"
#include "solver/vkernels.h"

namespace {

using namespace vecfd;

/// Dirichlet conditions of the lid-driven cavity: u = (1,0,0) on the top
/// face, no-slip elsewhere on the boundary.  Applied by row substitution.
void apply_velocity_bcs(const fem::Mesh& mesh, solver::CsrMatrix& a,
                        std::vector<double>& rhs_d, int dim) {
  const auto& mc = mesh.config();
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (!mesh.is_boundary_node(n)) continue;
    const bool lid = mesh.node(n)[2] >= mc.lz - 1e-12;
    const double value = (dim == 0 && lid) ? 1.0 : 0.0;
    // zero the row, set the diagonal, pin the rhs
    auto vals = a.row_vals(n);
    const auto cols = a.row_cols(n);
    for (std::size_t k = 0; k < vals.size(); ++k) {
      vals[k] = cols[k] == n ? 1.0 : 0.0;
    }
    rhs_d[static_cast<std::size_t>(n)] = value;
  }
}

}  // namespace

int main() {
  const fem::Mesh mesh({.nx = 8, .ny = 8, .nz = 8, .distortion = 0.0});
  fem::Physics phys;
  phys.viscosity = 0.05;
  phys.dt = 0.1;
  phys.force[2] = 0.0;
  fem::State state(mesh, phys);
  // start from rest: the lid BC drives the flow
  std::fill(state.unknowns().begin(), state.unknowns().end(), 0.0);
  std::fill(state.unknowns_old().begin(), state.unknowns_old().end(), 0.0);

  miniapp::MiniAppConfig cfg;
  cfg.vector_size = 240;
  cfg.opt = miniapp::OptLevel::kVec1;
  cfg.scheme = fem::Scheme::kSemiImplicit;

  sim::Vpu vpu(platforms::riscv_vec());
  const int nsteps = 5;
  const int nn = mesh.num_nodes();

  std::cout << "lid-driven cavity, " << mesh.num_elements()
            << " elements, " << nsteps << " time steps\n\n";
  core::Table t({"step", "assembly cycles", "Mv", "solve AVL",
                 "solver iters (x,y,z)", "max |u|", "lid u at center"});

  for (int step = 1; step <= nsteps; ++step) {
    const miniapp::MiniApp app(mesh, state, cfg);
    miniapp::MiniAppResult sys = app.run(vpu);
    const auto m = metrics::compute(sys.total, vpu.vlmax());

    // Solve K u_d = f_d + (ρ/Δt) M u_d^n per component.  The mini-app's K
    // already contains the ρ/Δt mass term and its RHS the ρ/Δt u^n load.
    // Each solve runs through the Vpu as phase 9, strip-mined at
    // VECTOR_SIZE — the same instrumentation as `vecfd-run --solve`.
    std::vector<double> unew(static_cast<std::size_t>(nn) * fem::kDim);
    std::string iters;
    for (int d = 0; d < fem::kDim; ++d) {
      std::vector<double> rhs_d(static_cast<std::size_t>(nn));
      sim::ScopedPhase scope(vpu.profiler(), miniapp::kSolvePhase);
      solver::vpack_strided(vpu, sys.rhs.data() + d, fem::kDim, rhs_d,
                            cfg.vector_size);
      solver::CsrMatrix a = sys.matrix;  // per-component copy (BCs differ)
      apply_velocity_bcs(mesh, a, rhs_d, d);
      std::vector<double> x(static_cast<std::size_t>(nn), 0.0);
      const auto rep = solver::vbicgstab(
          vpu, a, rhs_d, x,
          {.max_iterations = 400, .rel_tolerance = 1e-9, .precond = {}},
          cfg.vector_size);
      if (!rep.converged) {
        std::cerr << "solver failed to converge at step " << step << '\n';
        return 1;
      }
      if (d) iters += ',';
      iters += std::to_string(rep.iterations);
      for (int n = 0; n < nn; ++n) {
        unew[static_cast<std::size_t>(n) * fem::kDim + d] = x[n];
      }
    }
    const auto solve_m = metrics::compute(
        vpu.profiler().phase(miniapp::kSolvePhase), vpu.vlmax());

    double umax = 0.0;
    for (double v : unew) umax = std::max(umax, std::fabs(v));
    // probe: u_x just below the lid center
    const int nx = mesh.config().nx;
    const int probe =
        nx / 2 + (nx + 1) * (nx / 2 + (nx + 1) * (nx - 1));
    t.add_row({std::to_string(step), core::fmt(sys.cycles, 0),
               core::fmt_pct(m.mv), core::fmt(solve_m.avl, 1), iters,
               core::fmt(umax, 4),
               core::fmt(unew[static_cast<std::size_t>(probe) * 3], 4)});

    state.push_time_level(unew);
  }
  std::cout << t.to_string();
  std::cout << "\nthe lid drags the cavity fluid: max |u| grows toward the "
               "lid speed (1.0) and interior flow develops.\n";
  return 0;
}
