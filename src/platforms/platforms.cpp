#include "platforms/platforms.h"

namespace vecfd::platforms {

sim::MachineConfig riscv_vec() {
  sim::MachineConfig m;
  m.name = "riscv-vec";
  m.frequency_mhz = 50.0;
  m.vector_enabled = true;
  m.vlmax = 256;
  m.lanes = 8;
  m.fsm_group = 5;      // 8 lanes x 5 FSM groups => multiples of 40 are fast
  m.fsm_penalty = 1.12;
  m.arith_startup = 4.0;   // FMA @ vl=256: 4 + 256/8 * 1.12 ~= 40 cycles;
                           // @ vl=240: 4 + 30 = 34 (anchor: ~32 measured)
  m.mem_startup = 14.0;
  m.div_factor = 8.0;
  m.ctrl_factor = 0.5;
  m.bytes_per_cycle = 64.0;  // Table 2; DDR4 behind a wide FPGA bus
  m.indexed_elems_per_cycle = 2.0;
  m.strided_elems_per_cycle = 4.0;
  m.miss_overlap_unit = 0.02;     // streams are prefetch-covered
  m.miss_overlap_indexed = 0.35;  // the gather engine overlaps line fills
  m.miss_overlap_strided = 0.9;   // short strided ops drain per element
  m.scalar_cpi = 1.7;           // in-order core: FP dependency stalls
  m.scalar_mem_cpi = 1.7;
  // The paper does not publish the prototype's L1 geometry.  128 KB is the
  // size that reconciles Figure 2 (vanilla fastest at VECTOR_SIZE = 240)
  // with Figure 4 (phase-2 share jumping at 256): the phase-2 chunk
  // working set (~105 KB at 240) still fits, the 256/512 ones do not.
  m.memory.l1 = {.size_bytes = 128 * 1024,
                 .line_bytes = 64,
                 .associativity = 8,
                 .name = "L1D"};
  m.memory.l2 = {.size_bytes = 1024 * 1024,  // §2.1.3: 1 MB of L2
                 .line_bytes = 64,
                 .associativity = 16,
                 .name = "L2"};
  m.memory.l1_latency = 0.0;
  m.memory.l2_latency = 12.0;
  m.memory.mem_latency = 40.0;  // DDR4 at 50 MHz core clock is few-cycle
  return m;
}

sim::MachineConfig riscv_vec_scalar() { return scalar_variant(riscv_vec()); }

sim::MachineConfig sx_aurora() {
  sim::MachineConfig m;
  m.name = "sx-aurora";
  m.frequency_mhz = 1600.0;
  m.vector_enabled = true;
  m.vlmax = 256;
  m.lanes = 32;        // vector FMA performs 512 FLOP, graduates in 8 cycles
  m.fsm_group = 1;     // no Vitruvius FSM quirk
  m.fsm_penalty = 1.0;
  m.arith_startup = 6.0;
  m.mem_startup = 14.0;
  m.div_factor = 8.0;
  m.ctrl_factor = 0.5;
  m.bytes_per_cycle = 120.0;  // Table 2
  m.indexed_elems_per_cycle = 4.0;
  m.strided_elems_per_cycle = 8.0;
  m.miss_overlap_unit = 0.02;
  m.miss_overlap_indexed = 0.5;  // §5: indexed accesses are costly on the VE
  m.miss_overlap_strided = 0.9;
  m.scalar_cpi = 1.1;            // modest scalar unit next to the VPU
  m.scalar_mem_cpi = 1.1;
  m.memory.l1 = {.size_bytes = 32 * 1024,
                 .line_bytes = 128,
                 .associativity = 8,
                 .name = "L1D"};
  m.memory.l2 = {.size_bytes = 2 * 1024 * 1024,  // per-core LLC slice
                 .line_bytes = 128,
                 .associativity = 16,
                 .name = "LLC"};
  m.memory.l1_latency = 0.0;
  m.memory.l2_latency = 30.0;
  m.memory.mem_latency = 160.0;  // HBM2 at 1.6 GHz
  return m;
}

sim::MachineConfig mn4_avx512() {
  sim::MachineConfig m;
  m.name = "mn4-avx512";
  m.frequency_mhz = 2100.0;
  m.vector_enabled = true;
  m.vlmax = 8;    // one ZMM register of doubles
  m.lanes = 16;   // two 8-wide FMA ports per core
  m.fsm_group = 1;
  m.fsm_penalty = 1.0;
  m.arith_startup = 0.25;  // out-of-order core hides most issue latency
  m.mem_startup = 0.5;
  m.div_factor = 4.0;
  m.ctrl_factor = 0.5;
  m.bytes_per_cycle = 64.0;  // one 512-bit load per cycle near cache
  m.indexed_elems_per_cycle = 1.0;  // AVX-512 gathers are element-serial
  m.strided_elems_per_cycle = 2.0;
  m.miss_overlap_unit = 0.05;
  m.miss_overlap_indexed = 0.4;  // OoO window overlaps some gather misses
  m.miss_overlap_strided = 0.6;
  m.scalar_cpi = 0.4;            // ~2.5 IPC superscalar scalar code
  m.scalar_mem_cpi = 0.5;
  m.memory.l1 = {.size_bytes = 32 * 1024,
                 .line_bytes = 64,
                 .associativity = 8,
                 .name = "L1D"};
  m.memory.l2 = {.size_bytes = 1024 * 1024,
                 .line_bytes = 64,
                 .associativity = 16,
                 .name = "L2"};
  m.memory.l1_latency = 0.0;
  m.memory.l2_latency = 14.0;
  m.memory.mem_latency = 190.0;  // DRAM at 2.1 GHz
  return m;
}

sim::MachineConfig scalar_variant(sim::MachineConfig cfg) {
  cfg.vector_enabled = false;
  cfg.name += "-scalar";
  return cfg;
}

}  // namespace vecfd::platforms
