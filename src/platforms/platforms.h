// vecfd::platforms — machine configurations for the paper's three systems
// (Table 2), expressed as vecfd::sim::MachineConfig instances.
//
//                 RISC-V VEC   MareNostrum 4    SX-Aurora
//   freq [MHz]        50           2100            1600
//   vlmax (DP)       256              8             256
//   FMA law      32 cyc @256     pipelined       8 cyc graduate
//   BW [B/cyc]        64           11.2*            120
//
// * Table 2's 11.2 B/cycle for MN4 is sustained DRAM bandwidth per core;
//   near-cache vector transfers run at one 512-bit load per cycle, which is
//   what the streaming term of the timing model represents.  DRAM latency
//   is carried by the cache-miss penalties instead.  See DESIGN.md §3.
#pragma once

#include "sim/machine_config.h"

namespace vecfd::platforms {

/// The EPI RISC-V vector prototype (Avispado + Vitruvius VPU, RVV 0.7.1):
/// 16-kbit registers (256 DP elements), 8 FPU lanes, FSM sweet spot at
/// vl % 40 == 0, 1 MB L2, FPGA at 50 MHz.
sim::MachineConfig riscv_vec();

/// Same machine with the vector unit disabled (the paper's scalar baseline:
/// "running the mini-app scalar on the RISC-V vector system with
/// vectorization disabled").
sim::MachineConfig riscv_vec_scalar();

/// NEC SX-Aurora VE20B vector engine: 256-element registers, 32 FMA slots
/// (one vector FMA graduates in 8 cycles), 120 B/cycle, 1.6 GHz.
sim::MachineConfig sx_aurora();

/// MareNostrum 4 node core: Intel Xeon Platinum 8160 with AVX-512
/// (8 DP elements, 2 FMA ports), 2.1 GHz.
sim::MachineConfig mn4_avx512();

/// Turn any configuration into its scalar twin (vector unit disabled);
/// name gains a "-scalar" suffix.
sim::MachineConfig scalar_variant(sim::MachineConfig cfg);

}  // namespace vecfd::platforms
