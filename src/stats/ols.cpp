#include "stats/ols.h"

#include <cmath>
#include <stdexcept>

namespace vecfd::stats {

namespace {

/// Solve the dense symmetric system A·x = b in place (Gaussian elimination
/// with partial pivoting; A is (k+1)² — tiny).
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("ols_fit: singular normal equations "
                               "(collinear regressors?)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri][c] * x[c];
    x[ri] = s / a[ri][ri];
  }
  return x;
}

}  // namespace

double OlsResult::predict(std::span<const double> x) const {
  if (x.size() + 1 != beta.size()) {
    throw std::invalid_argument("OlsResult::predict: wrong regressor count");
  }
  double yhat = beta[0];
  for (std::size_t j = 0; j < x.size(); ++j) yhat += beta[j + 1] * x[j];
  return yhat;
}

OlsResult ols_fit(const std::vector<std::vector<double>>& xs,
                  std::span<const double> y) {
  const std::size_t n = y.size();
  const std::size_t k = xs.size();
  if (n == 0) throw std::invalid_argument("ols_fit: empty sample");
  for (const auto& col : xs) {
    if (col.size() != n) {
      throw std::invalid_argument("ols_fit: regressor length != n");
    }
  }
  if (n <= k) {
    throw std::invalid_argument("ols_fit: need more observations than "
                                "regressors");
  }

  // Normal equations on the design matrix [1 | X]: (XᵀX) β = Xᵀy.
  const std::size_t m = k + 1;
  std::vector<std::vector<double>> xtx(m, std::vector<double>(m, 0.0));
  std::vector<double> xty(m, 0.0);
  auto design = [&](std::size_t row, std::size_t col) -> double {
    return col == 0 ? 1.0 : xs[col - 1][row];
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      const double di = design(r, i);
      xty[i] += di * y[r];
      for (std::size_t j = 0; j < m; ++j) xtx[i][j] += di * design(r, j);
    }
  }

  OlsResult res;
  res.beta = solve_dense(std::move(xtx), std::move(xty));
  res.n = n;
  res.k = k;

  const double ybar = mean(y);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> xrow(k);
    for (std::size_t j = 0; j < k; ++j) xrow[j] = xs[j][r];
    const double e = y[r] - res.predict(xrow);
    res.ss_res += e * e;
    const double d = y[r] - ybar;
    res.ss_tot += d * d;
  }
  // Degenerate constant-y sample (ss_tot == 0): R² = 1 only if the fit is
  // actually perfect; a nonzero residual on a constant target is the worst
  // possible fit, not the best, so report 0 instead of the old 1.0.
  if (res.ss_tot > 0.0) {
    res.r_squared = 1.0 - res.ss_res / res.ss_tot;
  } else {
    res.r_squared = res.ss_res > 0.0 ? 0.0 : 1.0;
  }
  return res;
}

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("pearson: size mismatch or empty");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace vecfd::stats
