// vecfd::stats — ordinary least squares with R².
//
// §5 of the paper explains the cycle curves of the non-vectorized phases by
// regressing phase cycles on (L1 DCM per kilo-instruction, % memory
// instructions) and reporting coefficients of determination of 0.903 and
// 0.966 (Table 6).  This module provides that multiple-linear-regression
// machinery (normal equations, small dense solve, R²).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vecfd::stats {

struct OlsResult {
  std::vector<double> beta;  ///< [intercept, b1, b2, ...]
  double r_squared = 0.0;    ///< coefficient of determination
  double ss_res = 0.0;       ///< residual sum of squares
  double ss_tot = 0.0;       ///< total sum of squares
  std::size_t n = 0;         ///< observations
  std::size_t k = 0;         ///< regressors (excluding intercept)

  /// Model prediction for one observation's regressor values.
  double predict(std::span<const double> x) const;
};

/// Fit y ≈ β₀ + Σ βⱼ Xⱼ.
///
/// @param xs one vector per regressor, each of length n
/// @param y  dependent variable, length n
/// @throws std::invalid_argument on shape mismatch or n ≤ k (underdetermined)
/// @throws std::runtime_error if the normal equations are singular
///         (e.g. perfectly collinear regressors)
OlsResult ols_fit(const std::vector<std::vector<double>>& xs,
                  std::span<const double> y);

// ---- small summary-statistics helpers used by reports and tests ---------
double mean(std::span<const double> v);
double variance(std::span<const double> v);  ///< population variance
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace vecfd::stats
