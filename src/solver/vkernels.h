// vecfd::solver — Vpu-instrumented long-vector solve kernels.
//
// The paper's co-design argument is made on indexed-access kernels; the
// canonical one in CFD is the SpMV inside the Krylov solve (§2.3: "assembly
// and algebraic linear solver").  This layer re-implements the solver side
// of krylov.h against the sim::Vpu instruction API, so the solve gets the
// same per-phase counters (Mv, Av, vCPI, AVL, Ev, cache misses) as the
// eight assembly phases:
//
//   * SpMV runs on a column-major padded ELL mirror of the CSR operator —
//     the classic long-vector layout: each of the `width` slabs is walked
//     with a unit-stride `vload` of values, a unit-stride `vload_i32` of
//     column indices and a `vgather` of x[cols[k]], accumulated with `vfma`
//     across a strip of rows.  Every instruction runs at the strip's vector
//     length, so AVL approaches vlmax for large strips.
//   * The BLAS-1 kernels (dot, norm2, axpy, ...) strip-mine the same way.
//   * vcg / vbicgstab mirror the host cg / bicgstab step for step
//     (including the breakdown-reporting contract of krylov.h) and agree
//     with them to solver tolerance.
//
// Every kernel takes a `strip` parameter — the requested software strip
// length, Alya's VECTOR_SIZE applied to the solve; <= 0 means vlmax.  On a
// scalar-only machine configuration (vector_enabled == false) each kernel
// falls back to an instrumented scalar loop computing identical values, so
// the scalar/vector comparison the paper draws for assembly extends to the
// solve.
//
// Operator setup (the ELL mirror, the Jacobi diagonal) is host-side and
// uncounted: the co-design analysis targets the iteration loop, and in a
// time-stepping code the setup amortizes over many solves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/format.h"
#include "solver/krylov.h"
#include "solver/sell.h"

namespace vecfd::solver {

/// The canonical strip-miner: the ONE place a raw loop may drive set_vl.
/// fn(i, vl) sees vl = min(strip, n - i) already granted via vsetvl; the
/// tail strip carries the effective-AVL/tail-mask accounting, and every
/// strip charges the 2-op loop-control overhead.  vecfd-lint rule
/// `strip-mine-contract` rejects vector issues in raw loops outside calls
/// to this helper — new kernels (the preconditioner ladder included) must
/// route their strip traversal through it.
template <class Fn>
void for_strips(sim::Vpu& vpu, int n, int strip, Fn&& fn) {
  for (int i = 0; i < n;) {
    const int vl = vpu.set_vl(std::min(strip, n - i));
    fn(i, vl);
    vpu.sarith(2);  // strip bump + loop bound check
    i += vl;
  }
}

/// Column-major padded ELL mirror of a CsrMatrix.
///
/// Rows shorter than `width` are padded with (column −1, 0.0) entries: the
/// negative column is the Vpu's masked-lane convention (vgather reads +0.0
/// and generates NO cache traffic — a pad must not fake locality on a real
/// line), and the fma adds exactly +0.0, so vspmv reproduces
/// CsrMatrix::spmv's per-row summation order and values bit for bit.
class EllMatrix {
 public:
  EllMatrix() = default;
  explicit EllMatrix(const CsrMatrix& a);

  /// Re-mirror @p a, reusing the existing slab storage when the shape
  /// (rows × width) is unchanged — no reallocation, so repeated solves on
  /// an updated operator keep touching the same memory lines (the
  /// determinism requirement of mem/memory_hierarchy.h).
  void assign(const CsrMatrix& a);

  int rows() const { return rows_; }
  int width() const { return width_; }  ///< max nonzeros per row

  /// Slab j (j in [0, width)): entry j of every row, row-contiguous.
  const double* vals(int j) const {
    return vals_.data() + static_cast<std::size_t>(j) * rows_;
  }
  const std::int32_t* cols(int j) const {
    return cols_.data() + static_cast<std::size_t>(j) * rows_;
  }

 private:
  int rows_ = 0;
  int width_ = 0;
  std::vector<double> vals_;        // [width][rows]
  std::vector<std::int32_t> cols_;  // [width][rows]
};

/// The strip length the solve kernels actually run at for a requested
/// VECTOR_SIZE on @p machine: on a vector machine a request of <= 0 or
/// > vlmax is granted vlmax (the vsetvl clamp); a scalar-only machine runs
/// instrumented scalar loops, so the request passes through untouched.
/// Single source of truth for the `effective_strip` CSV column — sweep rows
/// for e.g. VECTOR_SIZE 512 on a vlmax = 256 machine are otherwise
/// mislabeled, since every kernel silently ran at 256.
int solve_effective_strip(int requested, const sim::MachineConfig& machine);

// ---- instrumented kernels ---------------------------------------------
// All lengths must match; dimension mismatches throw std::invalid_argument.

/// y = A·x through the Vpu (unit-stride slab loads + vgather + vfma).
void vspmv(sim::Vpu& vpu, const EllMatrix& a, std::span<const double> x,
           std::span<double> y, int strip = 0);

/// y = A·x on the SELL-C-σ mirror: per slice, slabs stream at the slice's
/// OWN width (pads shrink to the per-slice excess) and slabs whose column
/// run coalesces issue a unit-stride vload of x instead of the vgather
/// (counted in coalesced_lanes); results are scattered back to original
/// row order — or unit-stride-stored when the slice kept its rows
/// contiguous — so y is bit-identical to the ELL/CSR product.  The strip
/// is clamped to the slice height (one slice = one set_vl strip when the
/// matrix was built with C = solve_effective_strip).
void vspmv(sim::Vpu& vpu, const SellMatrix& a, std::span<const double> x,
           std::span<double> y, int strip = 0);

/// y = A·x streaming the HOST CSR arrays on the scalar core — the
/// csr-host format: ragged rows defeat vectorization, so this is the
/// instrumented scalar baseline every mirror format is compared against
/// (identical values: same per-row accumulation order, no pads).
void vspmv(sim::Vpu& vpu, const CsrMatrix& a, std::span<const double> x,
           std::span<double> y);

/// Operator mirror in a selected storage format: one assign/apply surface
/// over csr-host / ELL / SELL so solvers and the TimeLoop switch format
/// with a single knob (DESIGN.md §6).  For kCsrHost no mirror is built —
/// the CSR matrix is captured by reference and must outlive apply() calls;
/// for kSell @p slice_height is the slice height C (pass the effective
/// solve strip).  Reassigning reuses slab storage in place (the
/// determinism requirement of mem/memory_hierarchy.h).
class OperatorMirror {
 public:
  void assign(const CsrMatrix& a, SpmvFormat format, int slice_height);

  SpmvFormat format() const { return format_; }
  int rows() const { return rows_; }
  const EllMatrix& ell() const { return ell_; }
  const SellMatrix& sell() const { return sell_; }

  /// y = A·x in the mirrored format (dispatches to the vspmv overloads).
  void apply(sim::Vpu& vpu, std::span<const double> x, std::span<double> y,
             int strip = 0) const;

  /// Blocked Y_d = A·X_d for k node-major columns (see vspmv_multi); the
  /// csr-host format degrades to one scalar pass per active column.
  void apply_multi(sim::Vpu& vpu, std::span<const double> x,
                   std::span<double> y, int k, int strip = 0,
                   std::span<const char> active = {}) const;

 private:
  SpmvFormat format_ = SpmvFormat::kEll;
  int rows_ = 0;
  const CsrMatrix* csr_ = nullptr;
  EllMatrix ell_;
  SellMatrix sell_;
};

double vdot(sim::Vpu& vpu, std::span<const double> a,
            std::span<const double> b, int strip = 0);

/// Overflow/underflow-safe ‖a‖₂, branching on the same kNormSumSqMin/Max
/// trust bounds as the host norm2 (krylov.h): the common path is the
/// one-pass sqrt(vdot(a,a)); only a suspect squared sum (overflowed,
/// near-denormal, zero, or non-finite) triggers an instrumented ‖a‖∞
/// rescan (vabs + vredmax) and the scaled m·sqrt(Σ(aᵢ/m)²) evaluation —
/// norms of ~1e±300 vectors stay finite, so breakdown exits never
/// misreport convergence off an inf/0 norm, and ordinary solves pay
/// nothing.  The scalar fallback computes identical values.
double vnorm2(sim::Vpu& vpu, std::span<const double> a, int strip = 0);

/// y += alpha·x
void vaxpy(sim::Vpu& vpu, double alpha, std::span<const double> x,
           std::span<double> y, int strip = 0);

/// y = x + beta·y (the CG direction update)
void vxpby(sim::Vpu& vpu, std::span<const double> x, double beta,
           std::span<double> y, int strip = 0);

/// out = a - b (out may alias a or b)
void vsub(sim::Vpu& vpu, std::span<const double> a, std::span<const double> b,
          std::span<double> out, int strip = 0);

void vcopy(sim::Vpu& vpu, std::span<const double> src, std::span<double> dst,
           int strip = 0);

/// x *= alpha (the power-iteration normalization and Chebyshev direction
/// rescale).
void vscal(sim::Vpu& vpu, double alpha, std::span<double> x, int strip = 0);

void vfill(sim::Vpu& vpu, std::span<double> dst, double value, int strip = 0);

/// z = dinv ⊙ r (Jacobi application); an empty dinv degrades to a copy.
void vjacobi_apply(sim::Vpu& vpu, std::span<const double> dinv,
                   std::span<const double> r, std::span<double> z,
                   int strip = 0);

/// out[i] = base[i·stride] — strided extraction of one field component from
/// an interleaved [node·kDim] array (the RHS slice feeding the solve).
void vpack_strided(sim::Vpu& vpu, const double* base, std::ptrdiff_t stride,
                   std::span<double> out, int strip = 0);

// ---- multi-RHS (blocked) kernels --------------------------------------
// A "block" is k same-length columns stored node-major: column d occupies
// [d·n, (d+1)·n) of the span, so every column is a unit-stride stream and
// each column's instruction sequence is identical to the single-RHS kernel
// above (per-column results are bit-for-bit equal).  The lever is the
// shared operator: vspmv_multi walks each ELL (value, index) slab with ONE
// unit-stride vload pair per strip and feeds all k gather/fma streams from
// it — k× fewer operator slab loads than k single SpMVs (DESIGN.md §5).
// The BLAS-1 _multi kernels fuse the k columns into a single strip-mined
// pass (one vsetvl / loop-control sequence per strip for all columns),
// returning per-column results.
//
// All take an optional `active` mask of size k (empty = all active):
// inactive columns are neither read nor written — the solvers mask out
// converged/broken-down columns so their iterates stay frozen exactly as a
// standalone solve would leave them.  On a scalar-only machine every multi
// kernel degrades to the single-RHS scalar fallback per active column.

/// Y_d = A·X_d for every active column (shared slab loads, k gather/fma
/// streams).
void vspmv_multi(sim::Vpu& vpu, const EllMatrix& a, std::span<const double> x,
                 std::span<double> y, int k, int strip = 0,
                 std::span<const char> active = {});

/// SELL-C-σ blocked SpMV: each slice's value/index (and scatter-id) slabs
/// are loaded ONCE per strip and feed all k active gather/fma streams —
/// the same sharing lever as the ELL overload, on the leaner slab set.
void vspmv_multi(sim::Vpu& vpu, const SellMatrix& a,
                 std::span<const double> x, std::span<double> y, int k,
                 int strip = 0, std::span<const char> active = {});

/// out[d] = A_d · B_d (single fused pass; inactive columns keep out[d]).
void vdot_multi(sim::Vpu& vpu, std::span<const double> a,
                std::span<const double> b, int k, std::span<double> out,
                int strip = 0, std::span<const char> active = {});

/// Y_d += alpha[d]·X_d (per-column scalars, single fused pass).
void vaxpy_multi(sim::Vpu& vpu, std::span<const double> alpha,
                 std::span<const double> x, std::span<double> y, int k,
                 int strip = 0, std::span<const char> active = {});

/// out_d = A_d − B_d (out may alias either input).
void vsub_multi(sim::Vpu& vpu, std::span<const double> a,
                std::span<const double> b, std::span<double> out, int k,
                int strip = 0, std::span<const char> active = {});

void vcopy_multi(sim::Vpu& vpu, std::span<const double> src,
                 std::span<double> dst, int k, int strip = 0,
                 std::span<const char> active = {});

/// Z_d = dinv ⊙ R_d — the ONE shared Jacobi diagonal applied per column.
/// The diagonal is re-loaded per column (cache-hot), keeping each column's
/// instruction stream identical to vjacobi_apply; an empty dinv copies.
void vjacobi_apply_multi(sim::Vpu& vpu, std::span<const double> dinv,
                         std::span<const double> r, std::span<double> z,
                         int k, int strip = 0,
                         std::span<const char> active = {});

// ---- instrumented Krylov solvers --------------------------------------
// Step-for-step mirrors of krylov.h's cg / bicgstab, including the Jacobi
// preconditioner and the breakdown-reporting contract.  The CSR operator is
// mirrored into the requested SpmvFormat internally (SELL slices at the
// effective strip); because every format masks its pads and preserves the
// per-row accumulation order, the residual HISTORY of a solve is
// bit-identical across formats on every exit path (test_format_equivalence
// asserts this per platform × scenario) — only the counters change.

/// Reusable scratch for the instrumented solvers.  One solve = one ELL
/// mirror + a handful of work vectors; callers running MANY solves in one
/// instrumented measurement (the transient TimeLoop) must pass the same
/// workspace to every call so no Vpu-touched buffer is freed and
/// re-allocated mid-measurement — the deterministic memory model renames
/// host lines in first-touch order, so alloc/free churn of touched lines
/// would make cache behaviour depend on allocator history (see
/// mem/memory_hierarchy.h).  Buffers grow on first use and are reused (no
/// reallocation) when system sizes repeat.  The multi-RHS solver sizes the
/// same work vectors to k·n, so one workspace must not alternate between
/// single- and multi-RHS solves of different block sizes within a
/// measurement (the resize would be exactly the mid-measurement
/// realloc churn the workspace exists to prevent).
class Preconditioner;  // solver/preconditioner.h

struct KrylovWorkspace {
  OperatorMirror op;
  std::vector<double> dinv;
  std::vector<double> r, z, p, q, s, t, u, w;
  /// vcg's ladder rung (solver/preconditioner.h), created on first solve
  /// and reused so its Vpu-touched scratch persists across the
  /// measurement like every other workspace buffer.
  std::shared_ptr<Preconditioner> precond;
};

SolveReport vcg(sim::Vpu& vpu, const CsrMatrix& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts = {},
                int strip = 0, KrylovWorkspace* ws = nullptr,
                SpmvFormat format = SpmvFormat::kEll);

SolveReport vbicgstab(sim::Vpu& vpu, const CsrMatrix& a,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts = {}, int strip = 0,
                      KrylovWorkspace* ws = nullptr,
                      SpmvFormat format = SpmvFormat::kEll);

/// Multi-RHS mirror of the host bicgstab_multi (krylov.h), built on the
/// blocked kernels above: k node-major columns advance in lockstep, the
/// k Krylov recurrences stay independent (per-column scalars, convergence
/// and breakdown lifecycle — one SolveReport per column under the full
/// krylov.h contract), and every ELL slab streamed by the two SpMVs per
/// iteration is loaded once for all active columns instead of once per
/// column.  Column d returns bit-for-bit the iterate of a standalone
/// vbicgstab(a, b_d, x_d) at the same strip — the transient TimeLoop's
/// phase-9 blocked momentum solve rests on that equivalence.  The
/// workspace's block buffers size to k·n; as with the single-RHS solvers,
/// one workspace must serve the whole measurement.
std::vector<SolveReport> vbicgstab_multi(sim::Vpu& vpu, const CsrMatrix& a,
                                         std::span<const double> b,
                                         std::span<double> x, int k,
                                         const SolveOptions& opts = {},
                                         int strip = 0,
                                         KrylovWorkspace* ws = nullptr,
                                         SpmvFormat format =
                                             SpmvFormat::kEll);

}  // namespace vecfd::solver
