// vecfd::solver — the phase-10 preconditioner ladder (DESIGN.md §8).
//
// Three rungs for the SPD pressure-Poisson vcg, weakest to strongest:
//
//   kJacobi   z = D⁻¹ r — the historic behaviour.  Setup issues NO Vpu
//             instructions and touches no Vpu memory, so selecting this
//             rung reproduces the pre-ladder vcg instruction stream bit
//             for bit.
//   kCheby    z = p_k(D⁻¹A) D⁻¹ r — a degree-k Chebyshev polynomial in
//             the Jacobi-scaled operator, targeting [λmax·boost/ratio,
//             λmax·boost].  λmax of D⁻¹A is estimated by a few power
//             iterations run THROUGH the instrumented vspmv path during
//             setup, inside the caller's phase scope, so the estimation
//             cost lands in the phase-10 counters like everything else.
//             p_k > 0 on the whole spectrum (the boost keeps the interval
//             covering it), hence M⁻¹ = p_k(D⁻¹A)D⁻¹ is SPD and plain CG
//             remains valid.
//   kDeflate  z = Q r + (I − QA) D⁻¹ (I − AQ) r with Q = P A_c⁻¹ Pᵀ — a
//             balancing two-level coarse correction over structured-mesh
//             aggregates (PrecondOptions::aggregates;
//             fem::structured_aggregates composed with the active solve
//             ordering).  Pᵀ is a ragged gather-sum walked in padded
//             slabs exactly like the ELL vspmv (pads are masked −1
//             columns: +0.0, zero traffic); P is the width-1 gather
//             z[i] += α·zc[agg[i]].  A_c = PᵀAP is Galerkin-assembled on
//             the host and solved by the HOST cg to a tight tolerance —
//             the coarse solve is deliberately host-side/uncounted (it is
//             the part a real co-designed machine would NOT put on the
//             long vector unit), while the transfer kernels and the two
//             fine SpMVs per apply are instrumented.  Q symmetric PSD and
//             (I − QA) = (I − AQ)ᵀ keep M⁻¹ SPD (see apply_deflate).
//
// Every rung computes identical values on the vector and scalar paths, and
// across SpMV formats (csr/ell/sell × rcm): the power iterations go through
// OperatorMirror::apply, whose product is bit-identical across formats, and
// the transfer kernels are format-independent — so residual HISTORIES of a
// preconditioned solve stay bit-identical across formats on every exit
// path, exactly as test_format_equivalence demands of the Jacobi rung.
//
// Setup runs host-side work first (slab/aggregate construction, Galerkin
// assembly, inverse diagonal) and only then issues instructions; all
// Vpu-touched scratch lives in the Preconditioner and is re-assigned (never
// reallocated at a stable system size) per setup, satisfying the
// measured-alloc determinism rule.  A zero diagonal throws
// std::runtime_error out of setup(); the solvers convert it into the
// SolveReport::failure exit (krylov.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/krylov.h"
#include "solver/vkernels.h"

namespace vecfd::solver {

class Preconditioner {
 public:
  /// Build the rung selected by @p opts (precond.kind; jacobi_precondition
  /// == false degrades to the identity, i.e. un-preconditioned CG) for
  /// operator @p a mirrored as @p op.  Host-side construction happens
  /// before any instruction is issued; kCheby then runs its instrumented
  /// power iterations.  @p op must stay alive and assigned to @p a for the
  /// lifetime of subsequent apply() calls.
  /// @throws std::runtime_error on a zero diagonal (all rungs use D⁻¹).
  /// @throws std::invalid_argument on malformed deflation aggregates.
  void setup(sim::Vpu& vpu, const CsrMatrix& a, const OperatorMirror& op,
             const SolveOptions& opts, int strip);

  /// z = M⁻¹ r for the rung built by the last setup().
  void apply(sim::Vpu& vpu, std::span<const double> r, std::span<double> z,
             int strip);

  PrecondKind kind() const { return kind_; }

  // Chebyshev diagnostics (valid after a kCheby setup) — the estimated
  // λmax of D⁻¹A and the target interval [a, b] (exposed for tests).
  double lambda_max() const { return lambda_max_; }
  double interval_lo() const { return theta_ - delta_; }
  double interval_hi() const { return theta_ + delta_; }

  /// Number of coarse unknowns (valid after a kDeflate setup).
  int coarse_rows() const { return coarse_rows_; }

 private:
  void setup_host(const CsrMatrix& a, const SolveOptions& opts);
  void setup_cheby_bounds(sim::Vpu& vpu, int strip);
  void apply_cheby(sim::Vpu& vpu, std::span<const double> r,
                   std::span<double> z, int strip);
  void apply_deflate(sim::Vpu& vpu, std::span<const double> r,
                     std::span<double> z, int strip);

  PrecondKind kind_ = PrecondKind::kJacobi;
  bool identity_ = false;  ///< jacobi_precondition == false
  const OperatorMirror* op_ = nullptr;
  int n_ = 0;
  std::vector<double> dinv_;

  // Chebyshev state: knobs captured at setup, target interval
  // midpoint/half-width, and scratch.
  int degree_ = 0;
  int power_its_ = 8;
  double boost_ = 1.1;
  double ratio_ = 30.0;
  double lambda_max_ = 0.0;
  double theta_ = 1.0;
  double delta_ = 0.5;
  std::vector<double> pw_v_, pw_w_;   // power-iteration vectors
  std::vector<double> chb_pr_, chb_d_, chb_az_;

  // Deflation state: aggregate transfer slabs + host coarse problem.
  int coarse_rows_ = 0;
  int pt_width_ = 0;
  std::vector<std::int32_t> agg_ids_;  // fine i -> aggregate id (gather P)
  std::vector<std::int32_t> pt_cols_;  // [width][coarse_rows] slabs (Pᵀ)
  CsrMatrix coarse_;                   // A_c = PᵀAP (host)
  SolveOptions coarse_opts_;
  std::vector<double> rc_, zc_;        // coarse residual / correction
  std::vector<double> df_t_, df_y_;    // fine-level balancing scratch
};

}  // namespace vecfd::solver
