// vecfd::solver — compressed-sparse-row matrix.
//
// The algebraic substrate of the CFD pipeline (§2.3: "CFD applications are
// often structured into two primary operations: assembly and algebraic
// linear solver").  The mini-app covers assembly; this module provides the
// solver side used by the full-flow example and the semi-implicit scheme.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vecfd::solver {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build a square matrix with an explicit sparsity pattern.
  /// @param adjacency adjacency[i] lists the column indices of row i
  ///        (need not be sorted; duplicates are merged; the diagonal is
  ///        added if missing).  Values start at zero.
  explicit CsrMatrix(const std::vector<std::vector<int>>& adjacency);

  int rows() const { return static_cast<int>(rowptr_.size()) - 1; }
  std::size_t nnz() const { return cols_.size(); }

  std::span<const int> row_cols(int r) const;
  std::span<const double> row_vals(int r) const;
  std::span<double> row_vals(int r);

  /// Index of entry (r, c) in the value array, or -1 if not in the pattern.
  std::ptrdiff_t find(int r, int c) const;

  /// Add @p v to entry (r, c).  @throws std::out_of_range if (r, c) is not
  /// part of the pattern — assembly into a missing entry is a meshing bug.
  void add(int r, int c, double v);

  double at(int r, int c) const;  ///< 0.0 if outside the pattern

  void set_zero();  ///< reset values, keep the pattern

  /// y = A·x
  void spmv(std::span<const double> x, std::span<double> y) const;

  std::span<const int> rowptr() const { return rowptr_; }
  std::span<const int> cols() const { return cols_; }
  std::span<const double> vals() const { return vals_; }
  std::span<double> vals() { return vals_; }

 private:
  std::vector<int> rowptr_{0};
  std::vector<int> cols_;
  std::vector<double> vals_;
};

/// Symmetric permutation B = P·A·Pᵀ for perm[new] = old: row/column `new`
/// of B carries row/column perm[new] of A, so solving B·(P x) = P b is the
/// same linear system renumbered.  This is how a bandwidth-minimizing
/// ordering (fem::rcm_ordering) is applied to an assembled operator without
/// touching the assembly itself.  Columns are re-sorted by the CsrMatrix
/// constructor; values follow their entries.
CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const int> perm);

/// Bandwidth max |r − c| over the pattern — the quantity RCM minimizes and
/// the gather-locality proxy the mesh tests assert on.
int bandwidth(const CsrMatrix& a);

}  // namespace vecfd::solver
