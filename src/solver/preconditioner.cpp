#include "solver/preconditioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace vecfd::solver {

namespace {

/// rc[c] = Σ r[f] over the fine members f of aggregate c — the Pᵀ
/// restriction, walked in padded column-major slabs exactly like the ELL
/// vspmv: slab j holds the j-th member of every aggregate (or −1, the
/// masked-pad convention: vgather reads +0.0 and generates no traffic).
/// All transfer values are 1.0, so the slab value load drops out and the
/// fma degrades to a vadd.  The scalar fallback accumulates in the same
/// slab order, so values are identical.
void vrestrict_sum(sim::Vpu& vpu, const std::int32_t* cols, int width, int nc,
                   std::span<const double> r, std::span<double> rc,
                   int strip) {
  if (vpu.config().vector_enabled) {
    for_strips(vpu, nc, solve_effective_strip(strip, vpu.config()),
               [&](int i, int) {
      sim::Vec acc = vpu.vsplat(0.0);
      for (int j = 0; j < width; ++j) {
        const sim::Vec idx =
            vpu.vload_i32(cols + static_cast<std::size_t>(j) * nc + i);
        const sim::Vec xs = vpu.vgather(r.data(), idx);
        acc = vpu.vadd(acc, xs);
        vpu.sarith(1);  // slab-loop control
      }
      vpu.vstore(rc.data() + i, acc);
    });
  } else {
    for (int c = 0; c < nc; ++c) {
      double s = 0.0;
      for (int j = 0; j < width; ++j) {
        const std::int32_t f =
            vpu.sload_i32(cols + static_cast<std::size_t>(j) * nc + c);
        vpu.sarith(1);  // pad-mask test
        if (f < 0) {    // masked pad lane: skipped, zero data traffic
          vpu.note_pad_lanes(1);
          continue;
        }
        s = vpu.sadd(s, vpu.sload(r.data() + f));
      }
      vpu.sstore(rc.data() + c, s);
      vpu.sarith(1);
    }
  }
}

/// z[i] += alpha · zc[agg[i]] — the P prolongation, a width-1 gather
/// folded into an axpy (alpha = ±1 covers the balancing combination).
void vprolong_axpy(sim::Vpu& vpu, const std::int32_t* agg, double alpha,
                   std::span<const double> zc, std::span<double> z,
                   int strip) {
  const int n = static_cast<int>(z.size());
  if (vpu.config().vector_enabled) {
    for_strips(vpu, n, solve_effective_strip(strip, vpu.config()),
               [&](int i, int) {
      const sim::Vec idx = vpu.vload_i32(agg + i);
      const sim::Vec cs = vpu.vgather(zc.data(), idx);
      const sim::Vec vz = vpu.vload(z.data() + i);
      vpu.vstore(z.data() + i, vpu.vfma_s(cs, alpha, vz));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const std::int32_t c = vpu.sload_i32(agg + i);
      const double zi = vpu.sload(z.data() + i);
      const double ci = vpu.sload(zc.data() + c);
      vpu.sstore(z.data() + i, vpu.sfma(ci, alpha, zi));
      vpu.sarith(1);
    }
  }
}

}  // namespace

void Preconditioner::setup(sim::Vpu& vpu, const CsrMatrix& a,
                           const OperatorMirror& op, const SolveOptions& opts,
                           int strip) {
  // all host-side construction first: nothing below issues an instruction
  // or touches Vpu memory until the (kCheby-only) power iterations
  op_ = &op;
  setup_host(a, opts);
  if (kind_ == PrecondKind::kCheby && !identity_) {
    setup_cheby_bounds(vpu, strip);
  }
}

void Preconditioner::setup_host(const CsrMatrix& a, const SolveOptions& opts) {
  n_ = a.rows();
  kind_ = opts.precond.kind;
  identity_ = !opts.jacobi_precondition;
  if (identity_) {
    dinv_.clear();  // vjacobi_apply on an empty diagonal degrades to copy
    return;
  }
  jacobi_inverse_diagonal_into(a, dinv_);  // throws on a zero diagonal
  const std::size_t un = static_cast<std::size_t>(n_);

  if (kind_ == PrecondKind::kCheby) {
    degree_ = std::max(1, opts.precond.cheby_degree);
    power_its_ = std::max(1, opts.precond.power_iterations);
    boost_ = opts.precond.cheby_boost;
    ratio_ = std::max(1.125, opts.precond.cheby_ratio);
    pw_v_.assign(un, 0.0);
    pw_w_.assign(un, 0.0);
    chb_pr_.assign(un, 0.0);
    chb_d_.assign(un, 0.0);
    chb_az_.assign(un, 0.0);
    // deterministic seed with components on every mode (a constant seed
    // can be exactly orthogonal to the dominant eigenvector on a
    // symmetric lattice); host-written, like every operator setup
    for (std::size_t i = 0; i < un; ++i) {
      pw_v_[i] = 1.0 + static_cast<double>((i * 2654435761u) & 1023u) / 1024.0;
    }
    return;
  }

  if (kind_ == PrecondKind::kDeflate) {
    const std::vector<int>& agg = opts.precond.aggregates;
    if (agg.size() != un) {
      throw std::invalid_argument(
          "Preconditioner: deflation aggregates must map every fine row "
          "(got " + std::to_string(agg.size()) + " for n = " +
          std::to_string(n_) + ")");
    }
    int nc = 0;
    for (const int c : agg) {
      if (c < 0) {
        throw std::invalid_argument(
            "Preconditioner: negative aggregate id");
      }
      nc = std::max(nc, c + 1);
    }
    std::vector<int> count(static_cast<std::size_t>(nc), 0);
    for (const int c : agg) ++count[static_cast<std::size_t>(c)];
    pt_width_ = 0;
    for (int c = 0; c < nc; ++c) {
      if (count[static_cast<std::size_t>(c)] == 0) {
        throw std::invalid_argument(
            "Preconditioner: empty aggregate " + std::to_string(c) +
            " (coarse operator would be singular)");
      }
      pt_width_ = std::max(pt_width_, count[static_cast<std::size_t>(c)]);
    }
    coarse_rows_ = nc;

    agg_ids_.assign(un, 0);
    for (std::size_t i = 0; i < un; ++i) {
      agg_ids_[i] = static_cast<std::int32_t>(agg[i]);
    }
    // Pᵀ slabs: slab j lists the j-th fine member (ascending id) of every
    // aggregate, −1 when the aggregate is shorter
    pt_cols_.assign(
        static_cast<std::size_t>(pt_width_) * static_cast<std::size_t>(nc),
        -1);
    std::vector<int> fill(static_cast<std::size_t>(nc), 0);
    for (int i = 0; i < n_; ++i) {
      const int c = agg[static_cast<std::size_t>(i)];
      const int j = fill[static_cast<std::size_t>(c)]++;
      pt_cols_[static_cast<std::size_t>(j) * nc + c] =
          static_cast<std::int32_t>(i);
    }

    // Galerkin coarse operator A_c = PᵀAP: every fine entry (i, j, v)
    // lands on (agg[i], agg[j]).  Host-assembled, host-solved.
    std::vector<std::vector<int>> cadj(static_cast<std::size_t>(nc));
    for (int i = 0; i < n_; ++i) {
      const int ci = agg[static_cast<std::size_t>(i)];
      for (const int j : a.row_cols(i)) {
        cadj[static_cast<std::size_t>(ci)].push_back(
            agg[static_cast<std::size_t>(j)]);
      }
    }
    coarse_ = CsrMatrix(cadj);
    for (int i = 0; i < n_; ++i) {
      const int ci = agg[static_cast<std::size_t>(i)];
      const auto cs = a.row_cols(i);
      const auto vs = a.row_vals(i);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        coarse_.add(ci, agg[static_cast<std::size_t>(cs[k])], vs[k]);
      }
    }
    coarse_opts_ = SolveOptions{};
    coarse_opts_.max_iterations = opts.precond.coarse_max_iterations;
    coarse_opts_.rel_tolerance = opts.precond.coarse_rel_tolerance;
    rc_.assign(static_cast<std::size_t>(nc), 0.0);
    zc_.assign(static_cast<std::size_t>(nc), 0.0);
    df_t_.assign(un, 0.0);
    df_y_.assign(un, 0.0);
  }
}

void Preconditioner::setup_cheby_bounds(sim::Vpu& vpu, int strip) {
  // Power iteration for λmax(D⁻¹A) on the instrumented vspmv path: the
  // operator applications and normalizations are counter-priced inside
  // the caller's phase scope; the interval arithmetic below is setup
  // scalar work, uncounted like the rest of operator construction.
  double lam = 1.0;
  for (int t = 0; t < power_its_; ++t) {
    op_->apply(vpu, pw_v_, pw_w_, strip);            // w = A v
    vjacobi_apply(vpu, dinv_, pw_w_, pw_w_, strip);  // w = D⁻¹ w
    const double nrm = vnorm2(vpu, pw_w_, strip);
    if (nrm == 0.0 || !std::isfinite(nrm)) break;
    lam = nrm;
    std::swap(pw_v_, pw_w_);
    vscal(vpu, 1.0 / lam, pw_v_, strip);             // v = w / ‖w‖
  }
  lambda_max_ = lam > 0.0 && std::isfinite(lam) ? lam : 1.0;
  const double hi = lambda_max_ * boost_;
  const double lo = hi / ratio_;
  theta_ = 0.5 * (hi + lo);
  delta_ = 0.5 * (hi - lo);
}

void Preconditioner::apply(sim::Vpu& vpu, std::span<const double> r,
                           std::span<double> z, int strip) {
  if (identity_ || kind_ == PrecondKind::kJacobi) {
    // bit-identical to the historic inline Jacobi (or plain copy) path
    vjacobi_apply(vpu, dinv_, r, z, strip);
    return;
  }
  if (kind_ == PrecondKind::kCheby) {
    apply_cheby(vpu, r, z, strip);
  } else {
    apply_deflate(vpu, r, z, strip);
  }
}

void Preconditioner::apply_cheby(sim::Vpu& vpu, std::span<const double> r,
                                 std::span<double> z, int strip) {
  // Chebyshev semi-iteration on (D⁻¹A) z = D⁻¹r from z = 0 (Saad, alg.
  // 12.1), run for `degree_` updates: z_k = p_{k−1}(D⁻¹A) D⁻¹ r with the
  // error polynomial T_k((θ−λ)/δ)/T_k(θ/δ), |·| < 1 on (0, 2θ) ⊃ the
  // spectrum — so p > 0 there and M⁻¹ = p(D⁻¹A)D⁻¹ stays SPD.
  const double sigma1 = theta_ / delta_;
  vjacobi_apply(vpu, dinv_, r, chb_pr_, strip);  // pr = D⁻¹ r (the "f")
  vcopy(vpu, chb_pr_, chb_d_, strip);
  vscal(vpu, 1.0 / theta_, chb_d_, strip);       // d₀ = (1/θ)·f
  vcopy(vpu, chb_d_, z, strip);                  // z₁ = d₀
  double rho = 1.0 / sigma1;
  for (int k = 2; k <= degree_; ++k) {
    op_->apply(vpu, z, chb_az_, strip);               // az = A z
    vjacobi_apply(vpu, dinv_, chb_az_, chb_az_, strip);
    const double rho_new = 1.0 / (2.0 * sigma1 - rho);
    vsub(vpu, chb_pr_, chb_az_, chb_az_, strip);      // az = f − D⁻¹A z
    vscal(vpu, rho_new * rho, chb_d_, strip);
    vaxpy(vpu, 2.0 * rho_new / delta_, chb_az_, chb_d_, strip);
    vaxpy(vpu, 1.0, chb_d_, z, strip);                // z += d
    rho = rho_new;
  }
}

void Preconditioner::apply_deflate(sim::Vpu& vpu, std::span<const double> r,
                                   std::span<double> z, int strip) {
  // Balancing two-level correction with Q = P A_c⁻¹ Pᵀ:
  //
  //   z = Q r + (I − QA) D⁻¹ (I − AQ) r
  //
  // (I − QA) = (I − AQ)ᵀ, so the second term is Eᵀ D⁻¹ E with E = I − AQ
  // — symmetric PSD — and Q is symmetric PSD; their sum is definite (E r
  // = 0 forces r into range(AQ), where rᵀQr > 0 unless r = 0), so M⁻¹
  // stays SPD and plain CG remains valid.  Unlike the purely additive
  // D⁻¹ + Q form, the pre/post projections keep the coarse and fine
  // corrections from fighting over the low modes, which is what makes
  // the iteration count level off under refinement.  Cost per apply: two
  // fine SpMVs (instrumented, via the active format) + two coarse host
  // solves + both transfer kernels.
  vrestrict_sum(vpu, pt_cols_.data(), pt_width_, coarse_rows_, r, rc_,
                strip);
  // the coarse solve is host-side by design (DESIGN.md §8): a real
  // co-designed machine keeps the tiny serial solve off the vector unit
  std::fill(zc_.begin(), zc_.end(), 0.0);
  cg(coarse_, rc_, zc_, coarse_opts_);
  vfill(vpu, z, 0.0, strip);
  vprolong_axpy(vpu, agg_ids_.data(), 1.0, zc_, z, strip);   // z = Q r
  op_->apply(vpu, z, df_t_, strip);                          // t = A Q r
  vsub(vpu, r, df_t_, df_t_, strip);                         // t = (I−AQ) r
  vjacobi_apply(vpu, dinv_, df_t_, df_y_, strip);            // y = D⁻¹ t
  vaxpy(vpu, 1.0, df_y_, z, strip);                          // z = Q r + y
  op_->apply(vpu, df_y_, df_t_, strip);                      // t = A y
  vrestrict_sum(vpu, pt_cols_.data(), pt_width_, coarse_rows_, df_t_, rc_,
                strip);
  std::fill(zc_.begin(), zc_.end(), 0.0);
  cg(coarse_, rc_, zc_, coarse_opts_);
  vprolong_axpy(vpu, agg_ids_.data(), -1.0, zc_, z, strip);  // z −= Q A y
}

}  // namespace vecfd::solver
