#include "solver/vkernels.h"

#include <algorithm>
#include <stdexcept>

namespace vecfd::solver {

EllMatrix::EllMatrix(const CsrMatrix& a) { assign(a); }

void EllMatrix::assign(const CsrMatrix& a) {
  rows_ = a.rows();
  width_ = 0;
  for (int r = 0; r < rows_; ++r) {
    width_ = std::max(width_, static_cast<int>(a.row_cols(r).size()));
  }
  const std::size_t cells =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(rows_);
  vals_.assign(cells, 0.0);
  cols_.assign(cells, 0);
  for (int r = 0; r < rows_; ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (int j = 0; j < width_; ++j) {
      const std::size_t k = static_cast<std::size_t>(j) * rows_ + r;
      if (j < static_cast<int>(cs.size())) {
        vals_[k] = vs[static_cast<std::size_t>(j)];
        cols_[k] = cs[static_cast<std::size_t>(j)];
      } else {
        cols_[k] = r;  // padding: contributes exactly 0·x[r]
      }
    }
  }
}

namespace {

bool vector_path(const sim::Vpu& vpu) { return vpu.config().vector_enabled; }

int effective_strip(const sim::Vpu& vpu, int strip) {
  return strip <= 0 || strip > vpu.vlmax() ? vpu.vlmax() : strip;
}

/// Strip-mined traversal of [0, n): fn(i, vl) sees vl = min(strip, n - i)
/// already granted via vsetvl.
template <class Fn>
void for_strips(sim::Vpu& vpu, int n, int strip, Fn&& fn) {
  for (int i = 0; i < n;) {
    const int vl = vpu.set_vl(std::min(strip, n - i));
    fn(i, vl);
    vpu.sarith(2);  // strip bump + loop bound check
    i += vl;
  }
}

void check_len(std::size_t got, std::size_t want, const char* what) {
  if (got != want) {
    throw std::invalid_argument(std::string(what) + ": dimension mismatch");
  }
}

/// out = base + scale·scaled (out may alias either input).
void axpby_into(sim::Vpu& vpu, std::span<const double> base, double scale,
                std::span<const double> scaled, std::span<double> out,
                int strip) {
  const int n = static_cast<int>(out.size());
  check_len(base.size(), out.size(), "axpby_into");
  check_len(scaled.size(), out.size(), "axpby_into");
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vb = vpu.vload(base.data() + i);
      const sim::Vec vs = vpu.vload(scaled.data() + i);
      vpu.vstore(out.data() + i, vpu.vfma_s(vs, scale, vb));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double bi = vpu.sload(base.data() + i);
      const double si = vpu.sload(scaled.data() + i);
      vpu.sstore(out.data() + i, vpu.sfma(si, scale, bi));
      vpu.sarith(1);
    }
  }
}

/// p = r + beta·(p − omega·v), the BiCGStab direction update.
void bicgstab_p_update(sim::Vpu& vpu, std::span<const double> r, double beta,
                       double omega, std::span<const double> v,
                       std::span<double> p, int strip) {
  const int n = static_cast<int>(p.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vp = vpu.vload(p.data() + i);
      const sim::Vec vv = vpu.vload(v.data() + i);
      const sim::Vec vr = vpu.vload(r.data() + i);
      const sim::Vec tmp = vpu.vfma_s(vv, -omega, vp);
      vpu.vstore(p.data() + i, vpu.vfma_s(tmp, beta, vr));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double pi = vpu.sload(p.data() + i);
      const double vi = vpu.sload(v.data() + i);
      const double ri = vpu.sload(r.data() + i);
      vpu.sstore(p.data() + i, vpu.sfma(vpu.sfma(vi, -omega, pi), beta, ri));
      vpu.sarith(1);
    }
  }
}

/// Breakdown exit mirroring krylov.cpp's contract, residual computed
/// through the Vpu so the exit stays instrumented.
SolveReport& vbreakdown_exit(sim::Vpu& vpu, SolveReport& rep,
                             std::span<const double> r, double bnorm,
                             const SolveOptions& opts, int strip) {
  const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
  rep.residual = rel;
  rep.history.push_back(rel);
  if (rel < opts.rel_tolerance) rep.converged = true;
  return rep;
}

}  // namespace

void vspmv(sim::Vpu& vpu, const EllMatrix& a, std::span<const double> x,
           std::span<double> y, int strip) {
  const int n = a.rows();
  check_len(x.size(), static_cast<std::size_t>(n), "vspmv");
  check_len(y.size(), static_cast<std::size_t>(n), "vspmv");
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      sim::Vec acc = vpu.vsplat(0.0);
      for (int j = 0; j < a.width(); ++j) {
        const sim::Vec vv = vpu.vload(a.vals(j) + i);
        const sim::Vec idx = vpu.vload_i32(a.cols(j) + i);
        const sim::Vec xs = vpu.vgather(x.data(), idx);
        acc = vpu.vfma(vv, xs, acc);
        vpu.sarith(1);  // slab-loop control
      }
      vpu.vstore(y.data() + i, acc);
    });
  } else {
    for (int r = 0; r < n; ++r) {
      double s = 0.0;
      for (int j = 0; j < a.width(); ++j) {
        const double v = vpu.sload(a.vals(j) + r);
        const std::int32_t c = vpu.sload_i32(a.cols(j) + r);
        const double xv = vpu.sload(x.data() + c);
        s = vpu.sfma(v, xv, s);
        vpu.sarith(1);
      }
      vpu.sstore(y.data() + r, s);
      vpu.sarith(1);
    }
  }
}

double vdot(sim::Vpu& vpu, std::span<const double> a,
            std::span<const double> b, int strip) {
  check_len(b.size(), a.size(), "vdot");
  const int n = static_cast<int>(a.size());
  double s = 0.0;
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec va = vpu.vload(a.data() + i);
      const sim::Vec vb = vpu.vload(b.data() + i);
      s = vpu.sadd(s, vpu.vredsum(vpu.vmul(va, vb)));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double ai = vpu.sload(a.data() + i);
      const double bi = vpu.sload(b.data() + i);
      s = vpu.sfma(ai, bi, s);
      vpu.sarith(1);
    }
  }
  return s;
}

double vnorm2(sim::Vpu& vpu, std::span<const double> a, int strip) {
  return vpu.ssqrt(vdot(vpu, a, a, strip));
}

void vaxpy(sim::Vpu& vpu, double alpha, std::span<const double> x,
           std::span<double> y, int strip) {
  axpby_into(vpu, y, alpha, x, y, strip);
}

void vxpby(sim::Vpu& vpu, std::span<const double> x, double beta,
           std::span<double> y, int strip) {
  axpby_into(vpu, x, beta, y, y, strip);
}

void vsub(sim::Vpu& vpu, std::span<const double> a, std::span<const double> b,
          std::span<double> out, int strip) {
  check_len(a.size(), out.size(), "vsub");
  check_len(b.size(), out.size(), "vsub");
  const int n = static_cast<int>(out.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec va = vpu.vload(a.data() + i);
      const sim::Vec vb = vpu.vload(b.data() + i);
      vpu.vstore(out.data() + i, vpu.vsub(va, vb));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double ai = vpu.sload(a.data() + i);
      const double bi = vpu.sload(b.data() + i);
      vpu.sstore(out.data() + i, vpu.ssub(ai, bi));
      vpu.sarith(1);
    }
  }
}

void vcopy(sim::Vpu& vpu, std::span<const double> src, std::span<double> dst,
           int strip) {
  check_len(src.size(), dst.size(), "vcopy");
  const int n = static_cast<int>(dst.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      vpu.vstore(dst.data() + i, vpu.vload(src.data() + i));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(dst.data() + i, vpu.sload(src.data() + i));
      vpu.sarith(1);
    }
  }
}

void vfill(sim::Vpu& vpu, std::span<double> dst, double value, int strip) {
  const int n = static_cast<int>(dst.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      vpu.vstore(dst.data() + i, vpu.vsplat(value));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(dst.data() + i, value);
      vpu.sarith(1);
    }
  }
}

void vjacobi_apply(sim::Vpu& vpu, std::span<const double> dinv,
                   std::span<const double> r, std::span<double> z,
                   int strip) {
  if (dinv.empty()) {
    vcopy(vpu, r, z, strip);
    return;
  }
  check_len(dinv.size(), r.size(), "vjacobi_apply");
  check_len(z.size(), r.size(), "vjacobi_apply");
  const int n = static_cast<int>(r.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vd = vpu.vload(dinv.data() + i);
      const sim::Vec vr = vpu.vload(r.data() + i);
      vpu.vstore(z.data() + i, vpu.vmul(vd, vr));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double di = vpu.sload(dinv.data() + i);
      const double ri = vpu.sload(r.data() + i);
      vpu.sstore(z.data() + i, vpu.smul(di, ri));
      vpu.sarith(1);
    }
  }
}

void vpack_strided(sim::Vpu& vpu, const double* base, std::ptrdiff_t stride,
                   std::span<double> out, int strip) {
  const int n = static_cast<int>(out.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec v = vpu.vload_strided(base + stride * i, stride);
      vpu.vstore(out.data() + i, v);
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(out.data() + i, vpu.sload(base + stride * i));
      vpu.sarith(1);
    }
  }
}

SolveReport vcg(sim::Vpu& vpu, const CsrMatrix& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts, int strip,
                KrylovWorkspace* ws) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("vcg: dimension mismatch");
  }
  SolveReport rep;
  const double bnorm = vnorm2(vpu, b, strip);
  if (bnorm == 0.0) {
    vfill(vpu, x, 0.0, strip);
    rep.converged = true;
    return rep;
  }
  KrylovWorkspace local;
  if (ws == nullptr) ws = &local;
  std::vector<double>& dinv = ws->dinv;
  if (opts.jacobi_precondition) {
    jacobi_inverse_diagonal_into(a, dinv);
  } else {
    dinv.clear();
  }
  ws->ell.assign(a);
  const EllMatrix& ell = ws->ell;

  std::vector<double>&r = ws->r, &z = ws->z, &p = ws->p, &ap = ws->q;
  r.assign(n, 0.0);
  z.assign(n, 0.0);
  p.assign(n, 0.0);
  ap.assign(n, 0.0);
  vspmv(vpu, ell, x, r, strip);
  vsub(vpu, b, r, r, strip);
  vjacobi_apply(vpu, dinv, r, z, strip);
  vcopy(vpu, z, p, strip);
  double rz = vdot(vpu, r, z, strip);

  for (int it = 0; it < opts.max_iterations; ++it) {
    vspmv(vpu, ell, p, ap, strip);
    const double pap = vdot(vpu, p, ap, strip);
    if (pap == 0.0) {
      return vbreakdown_exit(vpu, rep, r, bnorm, opts, strip);
    }
    const double alpha = vpu.sdiv(rz, pap);
    vaxpy(vpu, alpha, p, x, strip);
    vaxpy(vpu, -alpha, ap, r, strip);
    const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return rep;
    }
    vjacobi_apply(vpu, dinv, r, z, strip);
    const double rz_new = vdot(vpu, r, z, strip);
    const double beta = vpu.sdiv(rz_new, rz);
    rz = rz_new;
    vxpby(vpu, z, beta, p, strip);
  }
  return rep;
}

SolveReport vbicgstab(sim::Vpu& vpu, const CsrMatrix& a,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts, int strip,
                      KrylovWorkspace* ws) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("vbicgstab: dimension mismatch");
  }
  SolveReport rep;
  const double bnorm = vnorm2(vpu, b, strip);
  if (bnorm == 0.0) {
    vfill(vpu, x, 0.0, strip);
    rep.converged = true;
    return rep;
  }
  KrylovWorkspace local;
  if (ws == nullptr) ws = &local;
  std::vector<double>& dinv = ws->dinv;
  if (opts.jacobi_precondition) {
    jacobi_inverse_diagonal_into(a, dinv);
  } else {
    dinv.clear();
  }
  ws->ell.assign(a);
  const EllMatrix& ell = ws->ell;

  std::vector<double>&r = ws->r, &r0 = ws->z, &p = ws->p, &v = ws->q;
  std::vector<double>&s = ws->s, &t = ws->t, &phat = ws->u, &shat = ws->w;
  r.assign(n, 0.0);
  r0.assign(n, 0.0);
  p.assign(n, 0.0);
  v.assign(n, 0.0);
  s.assign(n, 0.0);
  t.assign(n, 0.0);
  phat.assign(n, 0.0);
  shat.assign(n, 0.0);
  vspmv(vpu, ell, x, r, strip);
  vsub(vpu, b, r, r, strip);
  vcopy(vpu, r, r0, strip);
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  for (int it = 0; it < opts.max_iterations; ++it) {
    double rho_new = vdot(vpu, r0, r, strip);
    bool restart = it == 0;
    if (rho_new == 0.0) {
      // serious breakdown: restart with r0 = r (see krylov.cpp)
      vcopy(vpu, r, r0, strip);
      rho_new = vdot(vpu, r, r, strip);
      if (rho_new == 0.0) {
        return vbreakdown_exit(vpu, rep, r, bnorm, opts, strip);
      }
      restart = true;
    }
    if (restart) {
      vcopy(vpu, r, p, strip);
    } else {
      const double beta =
          vpu.smul(vpu.sdiv(rho_new, rho), vpu.sdiv(alpha, omega));
      bicgstab_p_update(vpu, r, beta, omega, v, p, strip);
    }
    rho = rho_new;
    vjacobi_apply(vpu, dinv, p, phat, strip);
    vspmv(vpu, ell, phat, v, strip);
    const double r0v = vdot(vpu, r0, v, strip);
    if (r0v == 0.0) {
      return vbreakdown_exit(vpu, rep, r, bnorm, opts, strip);
    }
    alpha = vpu.sdiv(rho, r0v);
    axpby_into(vpu, r, -alpha, v, s, strip);
    const double srel = vpu.sdiv(vnorm2(vpu, s, strip), bnorm);
    if (srel < opts.rel_tolerance) {
      vaxpy(vpu, alpha, phat, x, strip);
      rep.iterations = it + 1;
      rep.residual = srel;
      rep.history.push_back(srel);
      rep.converged = true;
      return rep;
    }
    vjacobi_apply(vpu, dinv, s, shat, strip);
    vspmv(vpu, ell, shat, t, strip);
    const double tt = vdot(vpu, t, t, strip);
    if (tt == 0.0) {
      // apply the valid half-step so x matches the reported residual s
      vaxpy(vpu, alpha, phat, x, strip);
      return vbreakdown_exit(vpu, rep, s, bnorm, opts, strip);
    }
    omega = vpu.sdiv(vdot(vpu, t, s, strip), tt);
    vaxpy(vpu, alpha, phat, x, strip);
    vaxpy(vpu, omega, shat, x, strip);
    axpby_into(vpu, s, -omega, t, r, strip);
    const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return rep;
    }
    if (omega == 0.0) break;
  }
  return rep;
}

}  // namespace vecfd::solver
