#include "solver/vkernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "solver/preconditioner.h"

namespace vecfd::solver {

EllMatrix::EllMatrix(const CsrMatrix& a) { assign(a); }

void EllMatrix::assign(const CsrMatrix& a) {
  rows_ = a.rows();
  width_ = 0;
  for (int r = 0; r < rows_; ++r) {
    width_ = std::max(width_, static_cast<int>(a.row_cols(r).size()));
  }
  const std::size_t cells =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(rows_);
  vals_.assign(cells, 0.0);
  cols_.assign(cells, 0);
  for (int r = 0; r < rows_; ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    for (int j = 0; j < width_; ++j) {
      const std::size_t k = static_cast<std::size_t>(j) * rows_ + r;
      if (j < static_cast<int>(cs.size())) {
        vals_[k] = vs[static_cast<std::size_t>(j)];
        cols_[k] = cs[static_cast<std::size_t>(j)];
      } else {
        cols_[k] = -1;  // masked pad: +0.0 and zero cache traffic
      }
    }
  }
}

int solve_effective_strip(int requested, const sim::MachineConfig& machine) {
  if (!machine.vector_enabled) return requested;  // scalar loops honour it
  return requested <= 0 || requested > machine.vlmax ? machine.vlmax
                                                     : requested;
}

namespace {

bool vector_path(const sim::Vpu& vpu) { return vpu.config().vector_enabled; }

int effective_strip(const sim::Vpu& vpu, int strip) {
  return solve_effective_strip(strip, vpu.config());
}

// for_strips — the canonical strip-miner — now lives in vkernels.h so the
// preconditioner kernels share it.

void check_len(std::size_t got, std::size_t want, const char* what) {
  if (got != want) {
    throw std::invalid_argument(std::string(what) + ": dimension mismatch");
  }
}

/// out = base + scale·scaled (out may alias either input).
void axpby_into(sim::Vpu& vpu, std::span<const double> base, double scale,
                std::span<const double> scaled, std::span<double> out,
                int strip) {
  const int n = static_cast<int>(out.size());
  check_len(base.size(), out.size(), "axpby_into");
  check_len(scaled.size(), out.size(), "axpby_into");
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vb = vpu.vload(base.data() + i);
      const sim::Vec vs = vpu.vload(scaled.data() + i);
      vpu.vstore(out.data() + i, vpu.vfma_s(vs, scale, vb));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double bi = vpu.sload(base.data() + i);
      const double si = vpu.sload(scaled.data() + i);
      vpu.sstore(out.data() + i, vpu.sfma(si, scale, bi));
      vpu.sarith(1);
    }
  }
}

/// p = r + beta·(p − omega·v), the BiCGStab direction update.
void bicgstab_p_update(sim::Vpu& vpu, std::span<const double> r, double beta,
                       double omega, std::span<const double> v,
                       std::span<double> p, int strip) {
  const int n = static_cast<int>(p.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vp = vpu.vload(p.data() + i);
      const sim::Vec vv = vpu.vload(v.data() + i);
      const sim::Vec vr = vpu.vload(r.data() + i);
      const sim::Vec tmp = vpu.vfma_s(vv, -omega, vp);
      vpu.vstore(p.data() + i, vpu.vfma_s(tmp, beta, vr));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double pi = vpu.sload(p.data() + i);
      const double vi = vpu.sload(v.data() + i);
      const double ri = vpu.sload(r.data() + i);
      vpu.sstore(p.data() + i, vpu.sfma(vpu.sfma(vi, -omega, pi), beta, ri));
      vpu.sarith(1);
    }
  }
}

/// SELL slice height for a solver-built mirror: the effective strip, with
/// a fixed fallback for the degenerate scalar-machine strip<=0 request
/// (layout only — the scalar fallback walks lanes either way).
int mirror_slice_height(int strip, const sim::MachineConfig& m) {
  const int eff = solve_effective_strip(strip, m);
  return eff > 0 ? eff : 64;
}

/// Breakdown exit mirroring krylov.cpp's contract (aborted iteration @p it
/// counted, true residual appended — the history.size() == iterations + 1
/// invariant), residual computed through the Vpu so the exit stays
/// instrumented.
SolveReport& vbreakdown_exit(sim::Vpu& vpu, SolveReport& rep, int it,
                             std::span<const double> r, double bnorm,
                             const SolveOptions& opts, int strip) {
  const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
  rep.iterations = it + 1;
  rep.residual = rel;
  rep.history.push_back(rel);
  if (rel < opts.rel_tolerance) rep.converged = true;
  return checked(rep);
}

/// Mirror of krylov.cpp's guard: rungs above Jacobi live on the SPD vcg
/// path only; the nonsymmetric solvers reject them loudly.
void vrequire_jacobi_rung(const SolveOptions& opts, const char* who) {
  if (opts.jacobi_precondition &&
      opts.precond.kind != PrecondKind::kJacobi) {
    throw std::invalid_argument(
        std::string(who) + ": preconditioner '" +
        to_string(opts.precond.kind) +
        "' is only available on the SPD vcg path (use vcg, or kJacobi)");
  }
}

/// Instrumented failure exit (SolveReport::failure, see krylov.h): the
/// preconditioner could not be built, the solve never ran, x is untouched.
/// The true residual of that iterate is computed through the Vpu so even
/// the failure path stays counter-priced; @p r is workspace scratch.
SolveReport& vfailure_exit(sim::Vpu& vpu, SolveReport& rep, const char* why,
                           const OperatorMirror& op, std::span<const double> b,
                           std::span<const double> x, std::span<double> r,
                           double bnorm, const SolveOptions& opts, int strip) {
  op.apply(vpu, x, r, strip);
  vsub(vpu, b, r, r, strip);
  const double rel0 = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
  rep.failure = why;
  rep.iterations = 0;
  rep.residual = rel0;
  rep.history.assign(1, rel0);
  rep.converged = rel0 < opts.rel_tolerance;
  return checked(rep);
}

}  // namespace

void vspmv(sim::Vpu& vpu, const EllMatrix& a, std::span<const double> x,
           std::span<double> y, int strip) {
  const int n = a.rows();
  check_len(x.size(), static_cast<std::size_t>(n), "vspmv");
  check_len(y.size(), static_cast<std::size_t>(n), "vspmv");
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      sim::Vec acc = vpu.vsplat(0.0);
      for (int j = 0; j < a.width(); ++j) {
        const sim::Vec vv = vpu.vload(a.vals(j) + i);
        const sim::Vec idx = vpu.vload_i32(a.cols(j) + i);
        const sim::Vec xs = vpu.vgather(x.data(), idx);
        acc = vpu.vfma(vv, xs, acc);
        vpu.sarith(1);  // slab-loop control
      }
      vpu.vstore(y.data() + i, acc);
    });
  } else {
    for (int r = 0; r < n; ++r) {
      double s = 0.0;
      for (int j = 0; j < a.width(); ++j) {
        const std::int32_t c = vpu.sload_i32(a.cols(j) + r);
        vpu.sarith(1);  // pad-mask test
        if (c < 0) {    // masked pad lane: skipped, zero data traffic
          vpu.note_pad_lanes(1);
          continue;
        }
        const double v = vpu.sload(a.vals(j) + r);
        const double xv = vpu.sload(x.data() + c);
        s = vpu.sfma(v, xv, s);
        vpu.sarith(1);
      }
      vpu.sstore(y.data() + r, s);
      vpu.sarith(1);
    }
  }
}

void vspmv(sim::Vpu& vpu, const SellMatrix& a, std::span<const double> x,
           std::span<double> y, int strip) {
  const int n = a.rows();
  check_len(x.size(), static_cast<std::size_t>(n), "vspmv(sell)");
  check_len(y.size(), static_cast<std::size_t>(n), "vspmv(sell)");
  if (!vector_path(vpu)) {
    // Scalar fallback walks lanes in slice order (the layout's memory
    // order); per-row accumulation order is CSR order, values identical.
    for (int s = 0; s < a.num_slices(); ++s) {
      const int nr = a.slice_rows(s);
      const std::int32_t* ids = a.row_ids(s);
      for (int l = 0; l < nr; ++l) {
        const std::int32_t rid = vpu.sload_i32(ids + l);
        double acc = 0.0;
        for (int j = 0; j < a.slice_width(s); ++j) {
          const std::int32_t c = vpu.sload_i32(a.cols(s, j) + l);
          vpu.sarith(1);  // pad-mask test
          if (c < 0) {
            vpu.note_pad_lanes(1);
            continue;
          }
          const double v = vpu.sload(a.vals(s, j) + l);
          const double xv = vpu.sload(x.data() + c);
          acc = vpu.sfma(v, xv, acc);
          vpu.sarith(1);
        }
        vpu.sstore(y.data() + rid, acc);
        vpu.sarith(1);
      }
    }
    return;
  }
  const int eff = effective_strip(vpu, strip);
  for (int s = 0; s < a.num_slices(); ++s) {
    const int nr = a.slice_rows(s);
    const int base = a.slice_row_base(s);
    for (int i = 0; i < nr;) {
      // vecfd-lint: allow(strip-mine-contract) slice-local strip loop: SELL
      const int vl = vpu.set_vl(std::min(eff, nr - i));
      sim::Vec acc = vpu.vsplat(0.0);
      for (int j = 0; j < a.slice_width(s); ++j) {
        const sim::Vec vv = vpu.vload(a.vals(s, j) + i);
        const int c0 = a.coalesced_col(s, j);
        sim::Vec xs;
        if (c0 >= 0) {
          // coalescing fast path: the slab's columns are the unit run
          // c0+i .. c0+i+vl−1, so the gather degenerates to a vload
          xs = vpu.vload(x.data() + c0 + i);
          vpu.note_coalesced_lanes(static_cast<std::uint64_t>(vl));
        } else {
          const sim::Vec idx = vpu.vload_i32(a.cols(s, j) + i);
          xs = vpu.vgather(x.data(), idx);
        }
        acc = vpu.vfma(vv, xs, acc);
        vpu.sarith(1);  // slab-loop control
      }
      if (base >= 0) {
        vpu.vstore(y.data() + base + i, acc);
      } else {
        const sim::Vec ridx = vpu.vload_i32(a.row_ids(s) + i);
        vpu.vscatter(y.data(), ridx, acc);
      }
      vpu.sarith(2);  // strip bump + loop bound check
      i += vl;
    }
    vpu.sarith(1);  // slice-loop control
  }
}

// CsrMatrix stores `int` indices; the Vpu's index loads take int32_t.  The
// two are the same type on every supported ABI — assert it so a port to an
// ILP64-style ABI fails loudly here instead of corrupting index loads.
static_assert(sizeof(int) == sizeof(std::int32_t),
              "csr-host SpMV assumes 32-bit int column indices");

void vspmv(sim::Vpu& vpu, const CsrMatrix& a, std::span<const double> x,
           std::span<double> y) {
  const int n = a.rows();
  check_len(x.size(), static_cast<std::size_t>(n), "vspmv(csr)");
  check_len(y.size(), static_cast<std::size_t>(n), "vspmv(csr)");
  for (int r = 0; r < n; ++r) {
    const auto cs = a.row_cols(r);
    const auto vs = a.row_vals(r);
    double s = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const double v = vpu.sload(vs.data() + k);
      const std::int32_t c = vpu.sload_i32(
          reinterpret_cast<const std::int32_t*>(cs.data()) + k);
      const double xv = vpu.sload(x.data() + c);
      s = vpu.sfma(v, xv, s);
      vpu.sarith(1);
    }
    vpu.sstore(y.data() + r, s);
    vpu.sarith(1);
  }
}

void OperatorMirror::assign(const CsrMatrix& a, SpmvFormat format,
                            int slice_height) {
  format_ = format;
  rows_ = a.rows();
  csr_ = &a;
  switch (format_) {
    case SpmvFormat::kCsrHost:
      break;  // no mirror: apply() streams the host arrays
    case SpmvFormat::kEll:
      ell_.assign(a);
      break;
    case SpmvFormat::kSell:
      sell_.assign(a, slice_height);
      break;
  }
}

void OperatorMirror::apply(sim::Vpu& vpu, std::span<const double> x,
                           std::span<double> y, int strip) const {
  switch (format_) {
    case SpmvFormat::kCsrHost: vspmv(vpu, *csr_, x, y); return;
    case SpmvFormat::kEll:     vspmv(vpu, ell_, x, y, strip); return;
    case SpmvFormat::kSell:    vspmv(vpu, sell_, x, y, strip); return;
  }
}

double vdot(sim::Vpu& vpu, std::span<const double> a,
            std::span<const double> b, int strip) {
  check_len(b.size(), a.size(), "vdot");
  const int n = static_cast<int>(a.size());
  double s = 0.0;
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec va = vpu.vload(a.data() + i);
      const sim::Vec vb = vpu.vload(b.data() + i);
      s = vpu.sadd(s, vpu.vredsum(vpu.vmul(va, vb)));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double ai = vpu.sload(a.data() + i);
      const double bi = vpu.sload(b.data() + i);
      s = vpu.sfma(ai, bi, s);
      vpu.sarith(1);
    }
  }
  return s;
}

double vnorm2(sim::Vpu& vpu, std::span<const double> a, int strip) {
  const double s = vdot(vpu, a, a, strip);
  if (s > kNormSumSqMin && s < kNormSumSqMax) {
    return vpu.ssqrt(s);  // common path: the one-pass sum is trustworthy
  }
  // Rare rescan (mirrors norm2 in krylov.cpp): instrumented ‖a‖∞ pass
  // picks the scale, then the scaled sum — so extreme-magnitude vectors
  // cost a second pass but ordinary solves never pay for it.
  const int n = static_cast<int>(a.size());
  double m = 0.0;
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const double sm = vpu.vredmax(vpu.vabs(vpu.vload(a.data() + i)));
      if (sm > m || std::isnan(sm)) m = sm;  // NaN-propagating running max
      vpu.sarith(1);
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double av = std::fabs(vpu.sload(a.data() + i));
      if (av > m || std::isnan(av)) m = av;
      vpu.sarith(1);
    }
  }
  if (m == 0.0) return 0.0;
  if (std::isinf(m)) return m;  // an inf entry: the norm IS inf, not NaN
  double ssq = 0.0;
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec q = vpu.vdiv(vpu.vload(a.data() + i), vpu.vsplat(m));
      ssq = vpu.sadd(ssq, vpu.vredsum(vpu.vmul(q, q)));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double q = vpu.sdiv(vpu.sload(a.data() + i), m);
      ssq = vpu.sfma(q, q, ssq);
      vpu.sarith(1);
    }
  }
  return vpu.smul(m, vpu.ssqrt(ssq));
}

void vaxpy(sim::Vpu& vpu, double alpha, std::span<const double> x,
           std::span<double> y, int strip) {
  axpby_into(vpu, y, alpha, x, y, strip);
}

void vxpby(sim::Vpu& vpu, std::span<const double> x, double beta,
           std::span<double> y, int strip) {
  axpby_into(vpu, x, beta, y, y, strip);
}

void vsub(sim::Vpu& vpu, std::span<const double> a, std::span<const double> b,
          std::span<double> out, int strip) {
  check_len(a.size(), out.size(), "vsub");
  check_len(b.size(), out.size(), "vsub");
  const int n = static_cast<int>(out.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec va = vpu.vload(a.data() + i);
      const sim::Vec vb = vpu.vload(b.data() + i);
      vpu.vstore(out.data() + i, vpu.vsub(va, vb));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double ai = vpu.sload(a.data() + i);
      const double bi = vpu.sload(b.data() + i);
      vpu.sstore(out.data() + i, vpu.ssub(ai, bi));
      vpu.sarith(1);
    }
  }
}

void vcopy(sim::Vpu& vpu, std::span<const double> src, std::span<double> dst,
           int strip) {
  check_len(src.size(), dst.size(), "vcopy");
  const int n = static_cast<int>(dst.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      vpu.vstore(dst.data() + i, vpu.vload(src.data() + i));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(dst.data() + i, vpu.sload(src.data() + i));
      vpu.sarith(1);
    }
  }
}

void vscal(sim::Vpu& vpu, double alpha, std::span<double> x, int strip) {
  const int n = static_cast<int>(x.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      vpu.vstore(x.data() + i, vpu.vmul_s(vpu.vload(x.data() + i), alpha));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(x.data() + i, vpu.smul(vpu.sload(x.data() + i), alpha));
      vpu.sarith(1);
    }
  }
}

void vfill(sim::Vpu& vpu, std::span<double> dst, double value, int strip) {
  const int n = static_cast<int>(dst.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      vpu.vstore(dst.data() + i, vpu.vsplat(value));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(dst.data() + i, value);
      vpu.sarith(1);
    }
  }
}

void vjacobi_apply(sim::Vpu& vpu, std::span<const double> dinv,
                   std::span<const double> r, std::span<double> z,
                   int strip) {
  if (dinv.empty()) {
    vcopy(vpu, r, z, strip);
    return;
  }
  check_len(dinv.size(), r.size(), "vjacobi_apply");
  check_len(z.size(), r.size(), "vjacobi_apply");
  const int n = static_cast<int>(r.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec vd = vpu.vload(dinv.data() + i);
      const sim::Vec vr = vpu.vload(r.data() + i);
      vpu.vstore(z.data() + i, vpu.vmul(vd, vr));
    });
  } else {
    for (int i = 0; i < n; ++i) {
      const double di = vpu.sload(dinv.data() + i);
      const double ri = vpu.sload(r.data() + i);
      vpu.sstore(z.data() + i, vpu.smul(di, ri));
      vpu.sarith(1);
    }
  }
}

void vpack_strided(sim::Vpu& vpu, const double* base, std::ptrdiff_t stride,
                   std::span<double> out, int strip) {
  const int n = static_cast<int>(out.size());
  if (vector_path(vpu)) {
    for_strips(vpu, n, effective_strip(vpu, strip), [&](int i, int) {
      const sim::Vec v = vpu.vload_strided(base + stride * i, stride);
      vpu.vstore(out.data() + i, v);
    });
  } else {
    for (int i = 0; i < n; ++i) {
      vpu.sstore(out.data() + i, vpu.sload(base + stride * i));
      vpu.sarith(1);
    }
  }
}

// ---- multi-RHS (blocked) kernels --------------------------------------
// Per-column instruction sequences are kept identical to the single-RHS
// kernels above (same loads, same FMA order), so per-column results are
// bit-for-bit equal; the fusion shares the strip loop and — in vspmv_multi
// — the operator value/index slab loads across all active columns.

namespace {

bool col_active(std::span<const char> active, int d) {
  return active.empty() || active[static_cast<std::size_t>(d)] != 0;
}

bool any_active(std::span<const char> active, int k) {
  for (int d = 0; d < k; ++d) {
    if (col_active(active, d)) return true;
  }
  return false;
}

/// Common multi-kernel argument validation; returns the column length n.
std::size_t check_multi(std::size_t block_size, int k,
                        std::span<const char> active, const char* what) {
  if (k <= 0) {
    throw std::invalid_argument(std::string(what) + ": k must be positive");
  }
  if (block_size % static_cast<std::size_t>(k) != 0) {
    throw std::invalid_argument(std::string(what) + ": dimension mismatch");
  }
  if (!active.empty() && active.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument(std::string(what) + ": active mask size");
  }
  return block_size / static_cast<std::size_t>(k);
}

}  // namespace

void vspmv_multi(sim::Vpu& vpu, const EllMatrix& a, std::span<const double> x,
                 std::span<double> y, int k, int strip,
                 std::span<const char> active) {
  const std::size_t n = check_multi(y.size(), k, active, "vspmv_multi");
  check_len(x.size(), y.size(), "vspmv_multi");
  check_len(n, static_cast<std::size_t>(a.rows()), "vspmv_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vspmv(vpu, a, x.subspan(off, n), y.subspan(off, n), strip);
    }
    return;
  }
  // Vec accumulators hold register values; this storage is never
  // vload/vstore'd, so no canonical line ever maps to it and its free
  // cannot re-alias a measured buffer.
  // vecfd-lint: allow(measured-alloc) register-value storage, never mapped
  std::vector<sim::Vec> acc(static_cast<std::size_t>(k));
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (col_active(active, d)) {
        acc[static_cast<std::size_t>(d)] = vpu.vsplat(0.0);
      }
    }
    for (int j = 0; j < a.width(); ++j) {
      // ONE value/index slab load feeds every active gather/fma stream.
      const sim::Vec vv = vpu.vload(a.vals(j) + i);
      const sim::Vec idx = vpu.vload_i32(a.cols(j) + i);
      for (int d = 0; d < k; ++d) {
        if (!col_active(active, d)) continue;
        const sim::Vec xs =
            vpu.vgather(x.data() + static_cast<std::size_t>(d) * n, idx);
        acc[static_cast<std::size_t>(d)] =
            vpu.vfma(vv, xs, acc[static_cast<std::size_t>(d)]);
        vpu.sarith(1);  // stream-loop control
      }
    }
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      vpu.vstore(y.data() + static_cast<std::size_t>(d) * n + i,
                 acc[static_cast<std::size_t>(d)]);
    }
  });
}

void vspmv_multi(sim::Vpu& vpu, const SellMatrix& a,
                 std::span<const double> x, std::span<double> y, int k,
                 int strip, std::span<const char> active) {
  const std::size_t n = check_multi(y.size(), k, active, "vspmv_multi(sell)");
  check_len(x.size(), y.size(), "vspmv_multi(sell)");
  check_len(n, static_cast<std::size_t>(a.rows()), "vspmv_multi(sell)");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vspmv(vpu, a, x.subspan(off, n), y.subspan(off, n), strip);
    }
    return;
  }
  const int eff = effective_strip(vpu, strip);
  // Vec accumulators, as above: register values only, never mapped.
  // vecfd-lint: allow(measured-alloc) register-value storage, never mapped
  std::vector<sim::Vec> acc(static_cast<std::size_t>(k));
  for (int s = 0; s < a.num_slices(); ++s) {
    const int nr = a.slice_rows(s);
    const int base = a.slice_row_base(s);
    for (int i = 0; i < nr;) {
      // vecfd-lint: allow(strip-mine-contract) slice-local strip loop: SELL
      const int vl = vpu.set_vl(std::min(eff, nr - i));
      for (int d = 0; d < k; ++d) {
        if (col_active(active, d)) {
          acc[static_cast<std::size_t>(d)] = vpu.vsplat(0.0);
        }
      }
      for (int j = 0; j < a.slice_width(s); ++j) {
        // ONE value (and, off the fast path, index) slab load feeds every
        // active stream — the same sharing lever as the ELL overload.
        const sim::Vec vv = vpu.vload(a.vals(s, j) + i);
        const int c0 = a.coalesced_col(s, j);
        sim::Vec idx;
        if (c0 < 0) idx = vpu.vload_i32(a.cols(s, j) + i);
        for (int d = 0; d < k; ++d) {
          if (!col_active(active, d)) continue;
          const double* xd = x.data() + static_cast<std::size_t>(d) * n;
          sim::Vec xs;
          if (c0 >= 0) {
            xs = vpu.vload(xd + c0 + i);
            vpu.note_coalesced_lanes(static_cast<std::uint64_t>(vl));
          } else {
            xs = vpu.vgather(xd, idx);
          }
          acc[static_cast<std::size_t>(d)] =
              vpu.vfma(vv, xs, acc[static_cast<std::size_t>(d)]);
          vpu.sarith(1);  // stream-loop control
        }
      }
      if (base >= 0) {
        for (int d = 0; d < k; ++d) {
          if (!col_active(active, d)) continue;
          vpu.vstore(y.data() + static_cast<std::size_t>(d) * n + base + i,
                     acc[static_cast<std::size_t>(d)]);
        }
      } else {
        const sim::Vec ridx = vpu.vload_i32(a.row_ids(s) + i);
        for (int d = 0; d < k; ++d) {
          if (!col_active(active, d)) continue;
          vpu.vscatter(y.data() + static_cast<std::size_t>(d) * n, ridx,
                       acc[static_cast<std::size_t>(d)]);
        }
      }
      vpu.sarith(2);  // strip bump + loop bound check
      i += vl;
    }
    vpu.sarith(1);  // slice-loop control
  }
}

void OperatorMirror::apply_multi(sim::Vpu& vpu, std::span<const double> x,
                                 std::span<double> y, int k, int strip,
                                 std::span<const char> active) const {
  switch (format_) {
    case SpmvFormat::kCsrHost: {
      const std::size_t n =
          check_multi(y.size(), k, active, "apply_multi(csr)");
      check_len(x.size(), y.size(), "apply_multi(csr)");
      for (int d = 0; d < k; ++d) {
        if (!col_active(active, d)) continue;
        const std::size_t off = static_cast<std::size_t>(d) * n;
        vspmv(vpu, *csr_, x.subspan(off, n), y.subspan(off, n));
      }
      return;
    }
    case SpmvFormat::kEll:
      vspmv_multi(vpu, ell_, x, y, k, strip, active);
      return;
    case SpmvFormat::kSell:
      vspmv_multi(vpu, sell_, x, y, k, strip, active);
      return;
  }
}

void vdot_multi(sim::Vpu& vpu, std::span<const double> a,
                std::span<const double> b, int k, std::span<double> out,
                int strip, std::span<const char> active) {
  const std::size_t n = check_multi(a.size(), k, active, "vdot_multi");
  check_len(b.size(), a.size(), "vdot_multi");
  check_len(out.size(), static_cast<std::size_t>(k), "vdot_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      out[static_cast<std::size_t>(d)] =
          vdot(vpu, a.subspan(off, n), b.subspan(off, n), strip);
    }
    return;
  }
  for (int d = 0; d < k; ++d) {
    if (col_active(active, d)) out[static_cast<std::size_t>(d)] = 0.0;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const sim::Vec va = vpu.vload(a.data() + off + i);
      const sim::Vec vb = vpu.vload(b.data() + off + i);
      out[static_cast<std::size_t>(d)] = vpu.sadd(
          out[static_cast<std::size_t>(d)], vpu.vredsum(vpu.vmul(va, vb)));
    }
  });
}

void vaxpy_multi(sim::Vpu& vpu, std::span<const double> alpha,
                 std::span<const double> x, std::span<double> y, int k,
                 int strip, std::span<const char> active) {
  const std::size_t n = check_multi(y.size(), k, active, "vaxpy_multi");
  check_len(x.size(), y.size(), "vaxpy_multi");
  check_len(alpha.size(), static_cast<std::size_t>(k), "vaxpy_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vaxpy(vpu, alpha[static_cast<std::size_t>(d)], x.subspan(off, n),
            y.subspan(off, n), strip);
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const sim::Vec vy = vpu.vload(y.data() + off + i);
      const sim::Vec vx = vpu.vload(x.data() + off + i);
      vpu.vstore(y.data() + off + i,
                 vpu.vfma_s(vx, alpha[static_cast<std::size_t>(d)], vy));
    }
  });
}

void vsub_multi(sim::Vpu& vpu, std::span<const double> a,
                std::span<const double> b, std::span<double> out, int k,
                int strip, std::span<const char> active) {
  const std::size_t n = check_multi(out.size(), k, active, "vsub_multi");
  check_len(a.size(), out.size(), "vsub_multi");
  check_len(b.size(), out.size(), "vsub_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vsub(vpu, a.subspan(off, n), b.subspan(off, n), out.subspan(off, n),
           strip);
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const sim::Vec va = vpu.vload(a.data() + off + i);
      const sim::Vec vb = vpu.vload(b.data() + off + i);
      vpu.vstore(out.data() + off + i, vpu.vsub(va, vb));
    }
  });
}

void vcopy_multi(sim::Vpu& vpu, std::span<const double> src,
                 std::span<double> dst, int k, int strip,
                 std::span<const char> active) {
  const std::size_t n = check_multi(dst.size(), k, active, "vcopy_multi");
  check_len(src.size(), dst.size(), "vcopy_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vcopy(vpu, src.subspan(off, n), dst.subspan(off, n), strip);
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vpu.vstore(dst.data() + off + i, vpu.vload(src.data() + off + i));
    }
  });
}

void vjacobi_apply_multi(sim::Vpu& vpu, std::span<const double> dinv,
                         std::span<const double> r, std::span<double> z,
                         int k, int strip, std::span<const char> active) {
  if (dinv.empty()) {
    vcopy_multi(vpu, r, z, k, strip, active);
    return;
  }
  const std::size_t n = check_multi(z.size(), k, active,
                                    "vjacobi_apply_multi");
  check_len(r.size(), z.size(), "vjacobi_apply_multi");
  check_len(dinv.size(), n, "vjacobi_apply_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      vjacobi_apply(vpu, dinv, r.subspan(off, n), z.subspan(off, n), strip);
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const sim::Vec vd = vpu.vload(dinv.data() + i);
      const sim::Vec vr = vpu.vload(r.data() + off + i);
      vpu.vstore(z.data() + off + i, vpu.vmul(vd, vr));
    }
  });
}

namespace {

/// out_d = base_d + scale[d]·scaled_d for every active column — the blocked
/// axpby_into (the s / r updates of the multi solver).
void axpby_into_multi(sim::Vpu& vpu, std::span<const double> base,
                      std::span<const double> scale,
                      std::span<const double> scaled, std::span<double> out,
                      int k, int strip, std::span<const char> active) {
  const std::size_t n = check_multi(out.size(), k, active,
                                    "axpby_into_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      axpby_into(vpu, base.subspan(off, n), scale[static_cast<std::size_t>(d)],
                 scaled.subspan(off, n), out.subspan(off, n), strip);
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      const sim::Vec vb = vpu.vload(base.data() + off + i);
      const sim::Vec vs = vpu.vload(scaled.data() + off + i);
      vpu.vstore(out.data() + off + i,
                 vpu.vfma_s(vs, scale[static_cast<std::size_t>(d)], vb));
    }
  });
}

/// Blocked BiCGStab direction update: restart columns take p_d = r_d, the
/// rest p_d = r_d + beta[d]·(p_d − omega[d]·v_d) — per-column identical to
/// vcopy / bicgstab_p_update.
void bicgstab_p_update_multi(sim::Vpu& vpu, std::span<const double> r,
                             std::span<const double> beta,
                             std::span<const double> omega,
                             std::span<const double> v, std::span<double> p,
                             int k, std::span<const char> restart, int strip,
                             std::span<const char> active) {
  const std::size_t n = check_multi(p.size(), k, active,
                                    "bicgstab_p_update_multi");
  if (!any_active(active, k)) return;
  if (!vector_path(vpu) || k == 1) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      if (restart[static_cast<std::size_t>(d)]) {
        vcopy(vpu, r.subspan(off, n), p.subspan(off, n), strip);
      } else {
        bicgstab_p_update(vpu, r.subspan(off, n),
                          beta[static_cast<std::size_t>(d)],
                          omega[static_cast<std::size_t>(d)],
                          v.subspan(off, n), p.subspan(off, n), strip);
      }
    }
    return;
  }
  for_strips(vpu, static_cast<int>(n), effective_strip(vpu, strip),
             [&](int i, int) {
    for (int d = 0; d < k; ++d) {
      if (!col_active(active, d)) continue;
      const std::size_t off = static_cast<std::size_t>(d) * n;
      if (restart[static_cast<std::size_t>(d)]) {
        vpu.vstore(p.data() + off + i, vpu.vload(r.data() + off + i));
        continue;
      }
      const sim::Vec vp = vpu.vload(p.data() + off + i);
      const sim::Vec vv = vpu.vload(v.data() + off + i);
      const sim::Vec vr = vpu.vload(r.data() + off + i);
      const sim::Vec tmp =
          vpu.vfma_s(vv, -omega[static_cast<std::size_t>(d)], vp);
      vpu.vstore(p.data() + off + i,
                 vpu.vfma_s(tmp, beta[static_cast<std::size_t>(d)], vr));
    }
  });
}

}  // namespace

SolveReport vcg(sim::Vpu& vpu, const CsrMatrix& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts, int strip,
                KrylovWorkspace* ws, SpmvFormat format) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("vcg: dimension mismatch");
  }
  SolveReport rep;
  const double bnorm = vnorm2(vpu, b, strip);
  if (bnorm == 0.0) {
    vfill(vpu, x, 0.0, strip);
    rep.converged = true;
    rep.history.push_back(0.0);
    return checked(rep);
  }
  KrylovWorkspace local;
  if (ws == nullptr) ws = &local;
  ws->op.assign(a, format, mirror_slice_height(strip, vpu.config()));
  const OperatorMirror& op = ws->op;

  std::vector<double>&r = ws->r, &z = ws->z, &p = ws->p, &ap = ws->q;
  r.assign(n, 0.0);
  z.assign(n, 0.0);
  p.assign(n, 0.0);
  ap.assign(n, 0.0);
  // Fault-plan hook (sim/fault_injection.h): fail through the regular
  // instrumented failure exit, so the report carries the true residual of
  // the untouched iterate exactly like a genuine breakdown would.
  if (opts.inject_breakdown) {
    return checked(vfailure_exit(vpu, rep,
                                 "injected solver breakdown (fault plan)", op,
                                 b, x, r, bnorm, opts, strip));
  }
  // The ladder rung (solver/preconditioner.h).  kJacobi issues no setup
  // instructions, so that rung's stream is bit-identical to the historic
  // inline-Jacobi vcg; kCheby's power iterations run here, inside the
  // caller's phase scope, so eigenvalue estimation is counter-priced.
  if (!ws->precond) ws->precond = std::make_shared<Preconditioner>();
  try {
    ws->precond->setup(vpu, a, op, opts, strip);
  } catch (const std::runtime_error& e) {
    return checked(
        vfailure_exit(vpu, rep, e.what(), op, b, x, r, bnorm, opts, strip));
  }
  op.apply(vpu, x, r, strip);
  vsub(vpu, b, r, r, strip);
  const double rel0 = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
  rep.residual = rel0;
  rep.history.push_back(rel0);
  if (rel0 < opts.rel_tolerance) {
    rep.converged = true;
    return checked(rep);
  }
  ws->precond->apply(vpu, r, z, strip);
  vcopy(vpu, z, p, strip);
  double rz = vdot(vpu, r, z, strip);

  for (int it = 0; it < opts.max_iterations; ++it) {
    op.apply(vpu, p, ap, strip);
    const double pap = vdot(vpu, p, ap, strip);
    if (pap == 0.0) {
      return checked(vbreakdown_exit(vpu, rep, it, r, bnorm, opts, strip));
    }
    const double alpha = vpu.sdiv(rz, pap);
    vaxpy(vpu, alpha, p, x, strip);
    vaxpy(vpu, -alpha, ap, r, strip);
    const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return checked(rep);
    }
    ws->precond->apply(vpu, r, z, strip);
    const double rz_new = vdot(vpu, r, z, strip);
    const double beta = vpu.sdiv(rz_new, rz);
    rz = rz_new;
    vxpby(vpu, z, beta, p, strip);
  }
  return checked(rep);
}

SolveReport vbicgstab(sim::Vpu& vpu, const CsrMatrix& a,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts, int strip,
                      KrylovWorkspace* ws, SpmvFormat format) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("vbicgstab: dimension mismatch");
  }
  vrequire_jacobi_rung(opts, "vbicgstab");
  SolveReport rep;
  const double bnorm = vnorm2(vpu, b, strip);
  if (bnorm == 0.0) {
    vfill(vpu, x, 0.0, strip);
    rep.converged = true;
    rep.history.push_back(0.0);
    return checked(rep);
  }
  KrylovWorkspace local;
  if (ws == nullptr) ws = &local;
  ws->op.assign(a, format, mirror_slice_height(strip, vpu.config()));
  const OperatorMirror& op = ws->op;

  std::vector<double>&r = ws->r, &r0 = ws->z, &p = ws->p, &v = ws->q;
  std::vector<double>&s = ws->s, &t = ws->t, &phat = ws->u, &shat = ws->w;
  r.assign(n, 0.0);
  r0.assign(n, 0.0);
  p.assign(n, 0.0);
  v.assign(n, 0.0);
  s.assign(n, 0.0);
  t.assign(n, 0.0);
  phat.assign(n, 0.0);
  shat.assign(n, 0.0);
  std::vector<double>& dinv = ws->dinv;
  if (opts.jacobi_precondition) {
    try {
      jacobi_inverse_diagonal_into(a, dinv);
    } catch (const std::runtime_error& e) {
      return checked(
          vfailure_exit(vpu, rep, e.what(), op, b, x, r, bnorm, opts, strip));
    }
  } else {
    dinv.clear();
  }
  op.apply(vpu, x, r, strip);
  vsub(vpu, b, r, r, strip);
  const double rel0 = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
  rep.residual = rel0;
  rep.history.push_back(rel0);
  if (rel0 < opts.rel_tolerance) {
    rep.converged = true;
    return checked(rep);
  }
  vcopy(vpu, r, r0, strip);
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  for (int it = 0; it < opts.max_iterations; ++it) {
    double rho_new = vdot(vpu, r0, r, strip);
    bool restart = it == 0;
    if (rho_new == 0.0) {
      // serious breakdown: restart with r0 = r (see krylov.cpp)
      vcopy(vpu, r, r0, strip);
      rho_new = vdot(vpu, r, r, strip);
      if (rho_new == 0.0) {
        return checked(vbreakdown_exit(vpu, rep, it, r, bnorm, opts, strip));
      }
      restart = true;
    }
    if (restart) {
      vcopy(vpu, r, p, strip);
    } else {
      const double beta =
          vpu.smul(vpu.sdiv(rho_new, rho), vpu.sdiv(alpha, omega));
      bicgstab_p_update(vpu, r, beta, omega, v, p, strip);
    }
    rho = rho_new;
    vjacobi_apply(vpu, dinv, p, phat, strip);
    op.apply(vpu, phat, v, strip);
    const double r0v = vdot(vpu, r0, v, strip);
    if (r0v == 0.0) {
      return checked(vbreakdown_exit(vpu, rep, it, r, bnorm, opts, strip));
    }
    alpha = vpu.sdiv(rho, r0v);
    axpby_into(vpu, r, -alpha, v, s, strip);
    const double srel = vpu.sdiv(vnorm2(vpu, s, strip), bnorm);
    if (srel < opts.rel_tolerance) {
      vaxpy(vpu, alpha, phat, x, strip);
      rep.iterations = it + 1;
      rep.residual = srel;
      rep.history.push_back(srel);
      rep.converged = true;
      return checked(rep);
    }
    vjacobi_apply(vpu, dinv, s, shat, strip);
    op.apply(vpu, shat, t, strip);
    const double tt = vdot(vpu, t, t, strip);
    if (tt == 0.0) {
      // apply the valid half-step so x matches the reported residual s
      vaxpy(vpu, alpha, phat, x, strip);
      return checked(vbreakdown_exit(vpu, rep, it, s, bnorm, opts, strip));
    }
    omega = vpu.sdiv(vdot(vpu, t, s, strip), tt);
    vaxpy(vpu, alpha, phat, x, strip);
    vaxpy(vpu, omega, shat, x, strip);
    axpby_into(vpu, s, -omega, t, r, strip);
    const double rel = vpu.sdiv(vnorm2(vpu, r, strip), bnorm);
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return checked(rep);
    }
    if (omega == 0.0) break;
  }
  return checked(rep);
}

std::vector<SolveReport> vbicgstab_multi(sim::Vpu& vpu, const CsrMatrix& a,
                                         std::span<const double> b,
                                         std::span<double> x, int k,
                                         const SolveOptions& opts, int strip,
                                         KrylovWorkspace* ws,
                                         SpmvFormat format) {
  if (k <= 0) {
    throw std::invalid_argument("vbicgstab_multi: k must be positive");
  }
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const std::size_t cells = n * static_cast<std::size_t>(k);
  if (b.size() != cells || x.size() != cells) {
    throw std::invalid_argument("vbicgstab_multi: dimension mismatch");
  }
  vrequire_jacobi_rung(opts, "vbicgstab_multi");
  auto bcol = [&](int d) {
    return b.subspan(static_cast<std::size_t>(d) * n, n);
  };
  auto xcol = [&](int d) {
    return x.subspan(static_cast<std::size_t>(d) * n, n);
  };
  auto ccol = [&](const std::vector<double>& blk, int d) {
    return std::span<const double>(blk).subspan(
        static_cast<std::size_t>(d) * n, n);
  };
  auto mcol = [&](std::vector<double>& blk, int d) {
    return std::span<double>(blk).subspan(static_cast<std::size_t>(d) * n, n);
  };

  const std::size_t uk = static_cast<std::size_t>(k);
  std::vector<SolveReport> reps(uk);
  std::vector<char> active(uk, 0);
  std::vector<char> restart(uk, 0);
  std::vector<double> bnorm(uk, 0.0), rho(uk, 1.0), alpha(uk, 1.0);
  std::vector<double> omega(uk, 1.0), scal(uk, 0.0), ts(uk, 0.0);
  std::vector<double> beta(uk, 0.0), negscale(uk, 0.0);
  int remaining = 0;

  for (int d = 0; d < k; ++d) {
    bnorm[static_cast<std::size_t>(d)] = vnorm2(vpu, bcol(d), strip);
    if (bnorm[static_cast<std::size_t>(d)] == 0.0) {
      vfill(vpu, xcol(d), 0.0, strip);
      reps[static_cast<std::size_t>(d)].converged = true;
      reps[static_cast<std::size_t>(d)].history.push_back(0.0);
    } else {
      active[static_cast<std::size_t>(d)] = 1;
      ++remaining;
    }
  }
  if (remaining == 0) return checked(reps);

  KrylovWorkspace local;
  if (ws == nullptr) ws = &local;
  ws->op.assign(a, format, mirror_slice_height(strip, vpu.config()));
  const OperatorMirror& op = ws->op;

  std::vector<double>&R = ws->r, &R0 = ws->z, &P = ws->p, &V = ws->q;
  std::vector<double>&S = ws->s, &T = ws->t, &Phat = ws->u, &Shat = ws->w;
  std::vector<double>& dinv = ws->dinv;
  if (opts.jacobi_precondition) {
    try {
      jacobi_inverse_diagonal_into(a, dinv);
    } catch (const std::runtime_error& e) {
      // per-column instrumented failure exits; zero-RHS columns already
      // took their ordinary exit above
      R.assign(cells, 0.0);
      for (int d = 0; d < k; ++d) {
        const std::size_t ud = static_cast<std::size_t>(d);
        if (!active[ud]) continue;
        vfailure_exit(vpu, reps[ud], e.what(), op, bcol(d), xcol(d),
                      mcol(R, d), bnorm[ud], opts, strip);
      }
      return checked(reps);
    }
  } else {
    dinv.clear();
  }
  R.assign(cells, 0.0);
  R0.assign(cells, 0.0);
  P.assign(cells, 0.0);
  V.assign(cells, 0.0);
  S.assign(cells, 0.0);
  T.assign(cells, 0.0);
  Phat.assign(cells, 0.0);
  Shat.assign(cells, 0.0);

  auto retire = [&](int d) {
    active[static_cast<std::size_t>(d)] = 0;
    --remaining;
  };

  op.apply_multi(vpu, x, R, k, strip, active);
  vsub_multi(vpu, b, R, R, k, strip, active);
  for (int d = 0; d < k; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    if (!active[ud]) continue;
    const double rel0 = vpu.sdiv(vnorm2(vpu, ccol(R, d), strip), bnorm[ud]);
    reps[ud].residual = rel0;
    reps[ud].history.push_back(rel0);
    if (rel0 < opts.rel_tolerance) {
      reps[ud].converged = true;
      retire(d);
    }
  }
  if (remaining > 0) vcopy_multi(vpu, R, R0, k, strip, active);

  auto column_breakdown = [&](int d, int it, std::span<const double> res) {
    vbreakdown_exit(vpu, reps[static_cast<std::size_t>(d)], it, res,
                    bnorm[static_cast<std::size_t>(d)], opts, strip);
    retire(d);
  };

  for (int it = 0; it < opts.max_iterations && remaining > 0; ++it) {
    vdot_multi(vpu, R0, R, k, scal, strip, active);  // per-column ρ
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      restart[ud] = it == 0 ? 1 : 0;
      if (scal[ud] == 0.0) {
        // serious breakdown in column d: restart with r0 = r (see krylov.cpp)
        vcopy(vpu, ccol(R, d), mcol(R0, d), strip);
        scal[ud] = vdot(vpu, ccol(R, d), ccol(R, d), strip);
        if (scal[ud] == 0.0) {
          column_breakdown(d, it, ccol(R, d));
          continue;
        }
        restart[ud] = 1;
      }
      if (!restart[ud]) {
        beta[ud] = vpu.smul(vpu.sdiv(scal[ud], rho[ud]),
                            vpu.sdiv(alpha[ud], omega[ud]));
      }
      rho[ud] = scal[ud];
    }
    if (remaining == 0) break;
    bicgstab_p_update_multi(vpu, R, beta, omega, V, P, k, restart, strip,
                            active);
    vjacobi_apply_multi(vpu, dinv, P, Phat, k, strip, active);
    op.apply_multi(vpu, Phat, V, k, strip, active);
    vdot_multi(vpu, R0, V, k, scal, strip, active);  // per-column r₀·v
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      if (scal[ud] == 0.0) {
        column_breakdown(d, it, ccol(R, d));
        continue;
      }
      alpha[ud] = vpu.sdiv(rho[ud], scal[ud]);
      negscale[ud] = -alpha[ud];
    }
    if (remaining == 0) break;
    axpby_into_multi(vpu, R, negscale, V, S, k, strip, active);  // s = r − αv
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      const double srel =
          vpu.sdiv(vnorm2(vpu, ccol(S, d), strip), bnorm[ud]);
      if (srel < opts.rel_tolerance) {
        vaxpy(vpu, alpha[ud], ccol(Phat, d), xcol(d), strip);
        reps[ud].iterations = it + 1;
        reps[ud].residual = srel;
        reps[ud].history.push_back(srel);
        reps[ud].converged = true;
        retire(d);
      }
    }
    if (remaining == 0) break;
    vjacobi_apply_multi(vpu, dinv, S, Shat, k, strip, active);
    op.apply_multi(vpu, Shat, T, k, strip, active);
    vdot_multi(vpu, T, T, k, scal, strip, active);  // per-column t·t
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      if (scal[ud] == 0.0) {
        // apply the valid half-step so x matches the reported residual s
        vaxpy(vpu, alpha[ud], ccol(Phat, d), xcol(d), strip);
        column_breakdown(d, it, ccol(S, d));
      }
    }
    if (remaining == 0) break;
    vdot_multi(vpu, T, S, k, ts, strip, active);
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      omega[ud] = vpu.sdiv(ts[ud], scal[ud]);
      negscale[ud] = -omega[ud];
    }
    vaxpy_multi(vpu, alpha, Phat, x, k, strip, active);
    vaxpy_multi(vpu, omega, Shat, x, k, strip, active);
    axpby_into_multi(vpu, S, negscale, T, R, k, strip, active);  // r = s − ωt
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      const double rel = vpu.sdiv(vnorm2(vpu, ccol(R, d), strip), bnorm[ud]);
      reps[ud].history.push_back(rel);
      reps[ud].iterations = it + 1;
      reps[ud].residual = rel;
      if (rel < opts.rel_tolerance) {
        reps[ud].converged = true;
        retire(d);
        continue;
      }
      if (omega[ud] == 0.0) retire(d);  // ω breakdown: already reported
    }
  }
  return checked(reps);
}

}  // namespace vecfd::solver
