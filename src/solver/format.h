// vecfd::solver — sparse operator storage formats (DESIGN.md §6).
//
// The instrumented solvers mirror the host CSR operator into the format the
// target machine wants; which format that is became a first-class co-design
// knob with this layer:
//
//   kCsrHost — no mirror: the host CSR arrays are streamed row by row on
//              the scalar core (a long-vector machine cannot vectorize the
//              ragged rows).  The baseline a format study compares against.
//   kEll     — column-major padded ELL: every slab is walked at the strip
//              length with unit-stride value/index loads + one x-gather.
//              Rows pay the GLOBAL row-width maximum in pad lanes.
//   kSell    — SELL-C-σ: rows sorted by length inside σ-sized windows
//              (stable, so per-row accumulation order is preserved and
//              results stay bit-identical), then packed into slices of C
//              rows, each stored at its OWN width.  Pads shrink to the
//              per-slice excess, and slabs whose column run is contiguous
//              coalesce into unit-stride loads.
//
// The numerical contract: all three formats consume the same CSR row order
// and mask (not compute) their pads, so every SpMV — and therefore every
// SolveReport residual history — is bit-identical across formats.
// core::recommend_format picks a default per machine.
#pragma once

#include <optional>
#include <string_view>

namespace vecfd::solver {

enum class SpmvFormat { kCsrHost, kEll, kSell };

constexpr std::string_view to_string(SpmvFormat f) {
  switch (f) {
    case SpmvFormat::kCsrHost: return "csr-host";
    case SpmvFormat::kEll:     return "ell";
    case SpmvFormat::kSell:    return "sell";
  }
  return "?";
}

/// Accepts the CLI spellings: "csr" / "csr-host", "ell", "sell".
constexpr std::optional<SpmvFormat> format_from_string(std::string_view s) {
  if (s == "csr" || s == "csr-host") return SpmvFormat::kCsrHost;
  if (s == "ell") return SpmvFormat::kEll;
  if (s == "sell") return SpmvFormat::kSell;
  return std::nullopt;
}

}  // namespace vecfd::solver
