// vecfd::solver — SELL-C-σ storage (sliced ELLPACK with σ-window sorting).
//
// The long-vector format the co-design layer prefers over plain ELL
// (DESIGN.md §6): rows are stably sorted by descending length inside
// windows of σ consecutive rows, then packed into slices of C rows; every
// slice stores its slabs column-major at the SLICE's maximum row width, so
// the pad volume is the per-slice excess instead of the global one.  Two
// properties make it a drop-in replacement for the ELL mirror:
//
//   * Bit-identity.  The sort permutes ROWS only; each row still consumes
//     its CSR entries in CSR order, pads are masked (negative column
//     sentinel — Vpu::vgather reads +0.0, no memory traffic) and the
//     result lane is scattered back to the original row, so y is
//     bit-for-bit the CSR/ELL product and residual histories are format-
//     independent.
//   * Coalescing.  assign() detects, per (slice, slab), column runs that
//     are exactly [c0, c0+1, ..., c0+rows-1] with no pads; the SpMV kernel
//     issues a unit-stride vload of x[c0..] for those instead of a vgather
//     (counted in Counters::coalesced_lanes).  On an RCM-banded operator
//     over a structured mesh most slabs coalesce.
//
// Choose C = the solve strip (solver::solve_effective_strip) so one slice
// is one vsetvl strip; σ = kDefaultSigmaSlices·C keeps the sort window —
// and therefore the scatter distance of any row — small enough that the
// y-store stays cache-local.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/csr.h"

namespace vecfd::solver {

class SellMatrix {
 public:
  /// σ as a multiple of the slice height C: windows always hold whole
  /// slices, so each slice's rows come from one window and pads form a
  /// lane suffix per slab.
  static constexpr int kDefaultSigmaSlices = 4;

  SellMatrix() = default;
  SellMatrix(const CsrMatrix& a, int slice_height,
             int sigma_slices = kDefaultSigmaSlices);

  /// (Re)build the mirror, reusing the slab storage when the shape allows —
  /// repeated solves on an updated operator keep touching the same memory
  /// lines (the determinism requirement of mem/memory_hierarchy.h).
  void assign(const CsrMatrix& a, int slice_height,
              int sigma_slices = kDefaultSigmaSlices);

  int rows() const { return rows_; }
  int slice_height() const { return c_; }
  int sigma() const { return sigma_; }
  int num_slices() const { return num_slices_; }

  /// Lanes in slice s (slice_height, smaller for the tail slice).
  int slice_rows(int s) const {
    const int base = s * c_;
    return rows_ - base < c_ ? rows_ - base : c_;
  }
  int slice_width(int s) const {
    return width_[static_cast<std::size_t>(s)];
  }

  /// Slab j of slice s (j in [0, slice_width(s))): entry j of each of the
  /// slice's rows, lane-contiguous; padded lanes carry (col −1, 0.0).
  const double* vals(int s, int j) const {
    return vals_.data() + off_[static_cast<std::size_t>(s)] +
           static_cast<std::size_t>(j) *
               static_cast<std::size_t>(slice_rows(s));
  }
  const std::int32_t* cols(int s, int j) const {
    return cols_.data() + off_[static_cast<std::size_t>(s)] +
           static_cast<std::size_t>(j) *
               static_cast<std::size_t>(slice_rows(s));
  }

  /// Original row id of each lane of slice s (the y-scatter indices).
  const std::int32_t* row_ids(int s) const {
    return row_ids_.data() + static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(c_);
  }

  /// First original row when slice s holds the contiguous run
  /// [base, base+slice_rows(s)) in order — the store coalesces to a
  /// unit-stride vstore; −1 otherwise.
  int slice_row_base(int s) const {
    return row_base_[static_cast<std::size_t>(s)];
  }

  /// Start column c0 when slab j of slice s is the pad-free unit run
  /// [c0, c0+slice_rows(s)); −1 otherwise (the vgather path).
  int coalesced_col(int s, int j) const {
    return coal_[static_cast<std::size_t>(slab_off_[
               static_cast<std::size_t>(s)]) +
               static_cast<std::size_t>(j)];
  }

  /// The row permutation: permutation()[q] is the original row stored at
  /// sorted position q (lane q % C of slice q / C).
  const std::vector<std::int32_t>& permutation() const { return row_ids_; }

  // ---- layout statistics (benches/tests) -------------------------------
  std::uint64_t cells() const { return cells_; }          ///< Σ width·rows
  std::uint64_t pad_cells() const { return pad_cells_; }  ///< masked cells

 private:
  int rows_ = 0;
  int c_ = 0;          ///< slice height C
  int sigma_ = 0;      ///< sort-window length in rows
  int num_slices_ = 0;
  std::uint64_t cells_ = 0;
  std::uint64_t pad_cells_ = 0;
  std::vector<int> width_;             // [slice]
  std::vector<std::size_t> off_;       // [slice] → vals_/cols_ offset
  std::vector<int> slab_off_;          // [slice] → coal_ offset (Σ widths)
  std::vector<std::int32_t> row_ids_;  // [slice·C + lane] → original row
  std::vector<int> row_base_;          // [slice] contiguous-run base or −1
  std::vector<std::int32_t> coal_;     // [slab] unit-run start col or −1
  std::vector<double> vals_;           // per-slice column-major slabs
  std::vector<std::int32_t> cols_;
};

}  // namespace vecfd::solver
