// vecfd::solver — domain-decomposition sharding of the SPD vcg path
// (DESIGN.md §9).
//
// A ShardPlan carves the solve-ordered index range [0, n) into P
// contiguous, strip-aligned ownership ranges plus per-shard overlap-1
// ghost sets; ShardedCg replays the exact vcg recurrence with every
// vector value distributed across P instrumented Vpus (one memory
// hierarchy per shard) and ghost refreshes priced through
// sim::HaloExchange.
//
// P-independence contract: the solution field, every residual-history
// entry and the iteration/convergence outcome are BIT-identical to the
// single-Vpu solver::vcg for any shard count.  The proof obligations
// (each discharged in tests/test_partition.cpp and DESIGN.md §9):
//   1. ownership bounds are multiples of the effective-strip quantum, so
//      every global strip lies wholly inside one shard and the shard-local
//      for_strips loops reproduce the global strip decomposition;
//   2. reductions keep the global order: shards record their RAW per-strip
//      vredsum/vredmax partials and the coordinator folds them with the
//      same scalar recurrence (sadd / NaN-sticky max) over the global
//      strip sequence — never a shard-local pre-accumulation;
//   3. the restricted operator mirrors keep each owned row's CSR entry
//      order with pads that are exact fma no-ops (an fma chain seeded at
//      +0.0 can never produce −0.0, so a shorter local pad tail cannot
//      change the stored row result);
//   4. elementwise kernels are order-free per element, and ghost reads see
//      owner values copied bit-for-bit by HaloExchange before every
//      operator application.
//
// Cost model: shard Vpus price the distributed compute; the coordinator
// Vpu prices the serial reduction folds; HaloExchange prices communication
// volume in cache lines.  The BSP makespan (max shard delta per parallel
// epoch + all coordinator cycles) is the strong-scaling metric
// bench/shard_scaling gates.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/halo_exchange.h"
#include "sim/machine_config.h"
#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/krylov.h"

namespace vecfd::solver {

/// Contiguous strip-aligned partition of the solve-ordered range [0, n):
/// shard p owns [bounds[p], bounds[p+1]) and additionally sees the sorted
/// ghost ids ghosts[p] (its overlap-1 halo).  Local numbering per shard:
/// owned id g maps to g - bounds[p]; ghost g maps to num_owned(p) + its
/// position in ghosts[p].
struct ShardPlan {
  int shards = 1;
  int quantum = 1;  ///< strip quantum the interior bounds are aligned to
  std::vector<int> bounds;               ///< size shards+1, ascending
  std::vector<std::vector<int>> ghosts;  ///< per shard, sorted ascending

  int size() const { return bounds.empty() ? 0 : bounds.back(); }
  int num_owned(int p) const {
    return bounds[static_cast<std::size_t>(p) + 1] -
           bounds[static_cast<std::size_t>(p)];
  }
  int num_ghosts(int p) const {
    return static_cast<int>(ghosts[static_cast<std::size_t>(p)].size());
  }
  int local_size(int p) const { return num_owned(p) + num_ghosts(p); }
  /// Shard owning global id @p g.
  int owner(int g) const;
  /// Local index of @p g in shard @p p's numbering, or -1 if not present.
  int local_index(int p, int g) const;
};

/// Strip-aligned 1-D ownership bounds: bounds[p] is quantum·round(p·n /
/// (shards·quantum)) clamped into [0, n] (monotone by construction), and
/// bounds[shards] = n.  Guarantees |num_owned(p) − n/shards| ≤ quantum and
/// that every interior bound is a multiple of the quantum, so global
/// strips never straddle shards.
std::vector<int> strip_bounds(int n, int shards, int quantum);

/// Sharded replay of solver::vcg for the kJacobi rung on vector machines:
/// P shard Vpus carry the distributed vector work, the coordinator Vpu
/// carries the reduction folds, HaloExchange refreshes ghosts before each
/// operator application.  Results are bit-identical to vcg (see header
/// comment); counters land on the shard Vpus (aggregate via shard_vpu())
/// and the coordinator.
class ShardedCg {
 public:
  /// @throws std::runtime_error on a zero operator diagonal (the caller
  /// must fall back to the legacy path, which reports the failure through
  /// its instrumented SolveReport::failure exit).
  /// @throws std::invalid_argument when the plan's ghost closure does not
  /// cover the matrix pattern or the machine is not a vector machine.
  ShardedCg(ShardPlan plan, const CsrMatrix& a,
            const sim::MachineConfig& machine, int strip, int phase,
            int num_phases = sim::kDefaultNumPhases);

  /// One distributed solve; @p coord is the caller's (serial) Vpu whose
  /// current phase scope prices the reduction folds.
  SolveReport solve(sim::Vpu& coord, std::span<const double> b,
                    std::span<double> x, const SolveOptions& opts);

  int shards() const { return plan_.shards; }
  const ShardPlan& plan() const { return plan_; }
  const sim::HaloExchange& halo() const { return *halo_; }
  sim::Vpu& shard_vpu(int p) { return *shards_[static_cast<std::size_t>(p)].vpu; }
  const sim::Vpu& shard_vpu(int p) const {
    return *shards_[static_cast<std::size_t>(p)].vpu;
  }

  /// Accumulated BSP makespan: Σ over parallel epochs of the slowest
  /// shard's cycle delta, plus every coordinator cycle spent in solve().
  double makespan_cycles() const { return makespan_; }

  /// Reset shard Vpus, the makespan and the epoch clock (call at the start
  /// of a measured run, alongside the coordinator's Vpu::reset()).
  void reset();

 private:
  struct Shard {
    std::unique_ptr<sim::Vpu> vpu;
    int rows = 0;   ///< owned rows
    int width = 0;  ///< local ELL width (max owned-row nnz)
    // Restricted operator: column-major ELL slabs over owned rows, local
    // column ids (owned prefix, then ghosts), -1 masked pads, global CSR
    // row entry order preserved.
    std::vector<double> ell_vals;
    std::vector<std::int32_t> ell_cols;
    std::vector<double> dinv;   ///< owned slice of the Jacobi inverse diagonal
    std::vector<double> x, p;   ///< local_size: owned + ghost slots
    std::vector<double> b, r, z, ap;  ///< owned only
    std::vector<double> partials;     ///< raw per-strip reduction partials
  };

  template <class Fn>
  void for_shards(Fn&& fn);  ///< parallel epoch + makespan sync
  void sync_epoch();

  double fold_sum(sim::Vpu& coord) const;  ///< global-strip-order sadd fold
  double fold_max() const;                 ///< NaN-sticky max fold (host)

  void seg_dot_partials(int p, const double* a, const double* bb, int n);
  void seg_max_partials(int p, const double* a, int n);
  void seg_scaled_partials(int p, const double* a, int n, double m);
  void seg_spmv(int p, const double* xloc, double* yloc);

  /// Split vnorm2 over a per-shard owned span selected by @p get.
  template <class Get>
  double sharded_norm2(sim::Vpu& coord, Get&& get);
  template <class Get, class GetB>
  double sharded_dot(sim::Vpu& coord, Get&& get_a, GetB&& get_b);

  void exchange_into(std::vector<double> Shard::*vec);

  ShardPlan plan_;
  int strip_ = 1;  ///< effective strip (== plan quantum)
  int phase_ = 0;
  std::vector<Shard> shards_;
  std::unique_ptr<sim::HaloExchange> halo_;
  // Scratch pointer tables for HaloExchange calls, sized once in the
  // constructor so exchanges never allocate mid-measurement.
  std::vector<sim::Vpu*> vpu_ptrs_;
  std::vector<double*> local_ptrs_;
  std::vector<double> epoch_last_;  ///< per-shard cycle snapshot
  double makespan_ = 0.0;
};

}  // namespace vecfd::solver
