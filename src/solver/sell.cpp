#include "solver/sell.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace vecfd::solver {

SellMatrix::SellMatrix(const CsrMatrix& a, int slice_height,
                       int sigma_slices) {
  assign(a, slice_height, sigma_slices);
}

void SellMatrix::assign(const CsrMatrix& a, int slice_height,
                        int sigma_slices) {
  if (slice_height <= 0) {
    throw std::invalid_argument("SellMatrix: slice height must be positive");
  }
  if (sigma_slices <= 0) {
    throw std::invalid_argument("SellMatrix: sigma_slices must be positive");
  }
  rows_ = a.rows();
  c_ = slice_height;
  sigma_ = sigma_slices * slice_height;
  num_slices_ = (rows_ + c_ - 1) / c_;

  // σ-window stable sort by descending row length: stability keeps the
  // relative order of equal-length rows, so the permutation — and with it
  // the layout — is a deterministic function of the pattern alone.
  row_ids_.resize(static_cast<std::size_t>(num_slices_) *
                  static_cast<std::size_t>(c_));
  std::iota(row_ids_.begin(), row_ids_.begin() + rows_, 0);
  for (int w0 = 0; w0 < rows_; w0 += sigma_) {
    const int w1 = std::min(w0 + sigma_, rows_);
    std::stable_sort(row_ids_.begin() + w0, row_ids_.begin() + w1,
                     [&](std::int32_t x, std::int32_t y) {
                       return a.row_cols(x).size() > a.row_cols(y).size();
                     });
  }
  // Tail lanes beyond the last row mirror the last valid row id; the SpMV
  // kernels never read them (set_vl stops at slice_rows), but keeping them
  // in-range makes the buffer safe to load wholesale.
  for (int q = rows_; q < num_slices_ * c_; ++q) {
    row_ids_[static_cast<std::size_t>(q)] = rows_ > 0 ? rows_ - 1 : 0;
  }

  width_.resize(static_cast<std::size_t>(num_slices_));
  off_.resize(static_cast<std::size_t>(num_slices_));
  slab_off_.resize(static_cast<std::size_t>(num_slices_));
  row_base_.resize(static_cast<std::size_t>(num_slices_));
  std::size_t cells = 0;
  int slabs = 0;
  for (int s = 0; s < num_slices_; ++s) {
    const int nr = slice_rows(s);
    const std::int32_t* ids = row_ids(s);
    int w = 0;
    bool contiguous = true;
    for (int l = 0; l < nr; ++l) {
      w = std::max(w, static_cast<int>(a.row_cols(ids[l]).size()));
      contiguous = contiguous && ids[l] == ids[0] + l;
    }
    width_[static_cast<std::size_t>(s)] = w;
    off_[static_cast<std::size_t>(s)] = cells;
    slab_off_[static_cast<std::size_t>(s)] = slabs;
    row_base_[static_cast<std::size_t>(s)] = contiguous ? ids[0] : -1;
    cells += static_cast<std::size_t>(w) * static_cast<std::size_t>(nr);
    slabs += w;
  }
  cells_ = cells;

  vals_.assign(cells, 0.0);
  cols_.assign(cells, -1);
  coal_.assign(static_cast<std::size_t>(slabs), -1);
  pad_cells_ = 0;
  for (int s = 0; s < num_slices_; ++s) {
    const int nr = slice_rows(s);
    const std::int32_t* ids = row_ids(s);
    double* sv = vals_.data() + off_[static_cast<std::size_t>(s)];
    std::int32_t* sc = cols_.data() + off_[static_cast<std::size_t>(s)];
    for (int j = 0; j < slice_width(s); ++j) {
      bool unit_run = true;
      std::int32_t c0 = -1;
      for (int l = 0; l < nr; ++l) {
        const std::size_t k =
            static_cast<std::size_t>(j) * static_cast<std::size_t>(nr) +
            static_cast<std::size_t>(l);
        const auto cs = a.row_cols(ids[l]);
        if (j < static_cast<int>(cs.size())) {
          sv[k] = a.row_vals(ids[l])[static_cast<std::size_t>(j)];
          sc[k] = cs[static_cast<std::size_t>(j)];
          if (l == 0) c0 = sc[k];
          unit_run = unit_run && sc[k] == c0 + l;
        } else {
          // masked pad: the gather lane reads +0.0 with no memory traffic
          sv[k] = 0.0;
          sc[k] = -1;
          ++pad_cells_;
          unit_run = false;
        }
      }
      if (unit_run) {
        coal_[static_cast<std::size_t>(
                  slab_off_[static_cast<std::size_t>(s)]) +
              static_cast<std::size_t>(j)] = c0;
      }
    }
  }
}

}  // namespace vecfd::solver
