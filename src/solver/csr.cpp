#include "solver/csr.h"

#include <algorithm>
#include <stdexcept>

namespace vecfd::solver {

CsrMatrix::CsrMatrix(const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  rowptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> row;
  for (int r = 0; r < n; ++r) {
    row = adjacency[static_cast<std::size_t>(r)];
    row.push_back(r);  // ensure the diagonal
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (int c : row) {
      if (c < 0 || c >= n) {
        throw std::out_of_range("CsrMatrix: adjacency column out of range");
      }
      cols_.push_back(c);
    }
    rowptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<int>(cols_.size());
  }
  vals_.assign(cols_.size(), 0.0);
}

std::span<const int> CsrMatrix::row_cols(int r) const {
  const auto b = static_cast<std::size_t>(rowptr_[r]);
  const auto e = static_cast<std::size_t>(rowptr_[r + 1]);
  return {cols_.data() + b, e - b};
}

std::span<const double> CsrMatrix::row_vals(int r) const {
  const auto b = static_cast<std::size_t>(rowptr_[r]);
  const auto e = static_cast<std::size_t>(rowptr_[r + 1]);
  return {vals_.data() + b, e - b};
}

std::span<double> CsrMatrix::row_vals(int r) {
  const auto b = static_cast<std::size_t>(rowptr_[r]);
  const auto e = static_cast<std::size_t>(rowptr_[r + 1]);
  return {vals_.data() + b, e - b};
}

std::ptrdiff_t CsrMatrix::find(int r, int c) const {
  if (r < 0 || r >= rows()) return -1;
  const auto cs = row_cols(r);
  const auto it = std::lower_bound(cs.begin(), cs.end(), c);
  if (it == cs.end() || *it != c) return -1;
  return rowptr_[r] + (it - cs.begin());
}

void CsrMatrix::add(int r, int c, double v) {
  const std::ptrdiff_t i = find(r, c);
  if (i < 0) {
    throw std::out_of_range("CsrMatrix::add: entry outside sparsity pattern");
  }
  vals_[static_cast<std::size_t>(i)] += v;
}

double CsrMatrix::at(int r, int c) const {
  const std::ptrdiff_t i = find(r, c);
  return i < 0 ? 0.0 : vals_[static_cast<std::size_t>(i)];
}

void CsrMatrix::set_zero() { std::fill(vals_.begin(), vals_.end(), 0.0); }

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  const int n = rows();
  if (static_cast<int>(x.size()) != n || static_cast<int>(y.size()) != n) {
    throw std::invalid_argument("CsrMatrix::spmv: dimension mismatch");
  }
  for (int r = 0; r < n; ++r) {
    double s = 0.0;
    const auto b = rowptr_[r];
    const auto e = rowptr_[r + 1];
    for (int k = b; k < e; ++k) {
      s += vals_[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = s;
  }
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const int> perm) {
  const int n = a.rows();
  if (static_cast<int>(perm.size()) != n) {
    throw std::invalid_argument("permute_symmetric: permutation size");
  }
  std::vector<int> inv(static_cast<std::size_t>(n), -1);
  for (int q = 0; q < n; ++q) {
    const int old = perm[static_cast<std::size_t>(q)];
    if (old < 0 || old >= n || inv[static_cast<std::size_t>(old)] != -1) {
      throw std::invalid_argument("permute_symmetric: not a permutation");
    }
    inv[static_cast<std::size_t>(old)] = q;
  }
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    const auto cs = a.row_cols(perm[static_cast<std::size_t>(q)]);
    adj[static_cast<std::size_t>(q)].reserve(cs.size());
    for (int c : cs) {
      adj[static_cast<std::size_t>(q)].push_back(
          inv[static_cast<std::size_t>(c)]);
    }
  }
  CsrMatrix b(adj);
  for (int q = 0; q < n; ++q) {
    const int old = perm[static_cast<std::size_t>(q)];
    const auto cs = a.row_cols(old);
    const auto vs = a.row_vals(old);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      b.add(q, inv[static_cast<std::size_t>(cs[k])], vs[k]);
    }
  }
  return b;
}

int bandwidth(const CsrMatrix& a) {
  int bw = 0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c : a.row_cols(r)) {
      bw = std::max(bw, c > r ? c - r : r - c);
    }
  }
  return bw;
}

}  // namespace vecfd::solver
