// vecfd::solver — Krylov solvers with optional Jacobi preconditioning.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "solver/csr.h"

namespace vecfd::solver {

struct SolveOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;  ///< on ‖r‖₂ / ‖b‖₂
  bool jacobi_precondition = true;
};

struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;      ///< final relative residual
  std::vector<double> history;  ///< relative residual per iteration
};

/// Conjugate gradients — for symmetric positive-definite systems (e.g. the
/// pressure Poisson operator or the pure-viscous momentum matrix).
SolveReport cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// BiCGStab — for the nonsymmetric semi-implicit momentum operator
/// (convection makes it non-self-adjoint).
SolveReport bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Inverse-diagonal of @p a (the Jacobi preconditioner).
/// @throws std::runtime_error on a zero diagonal entry.
std::vector<double> jacobi_inverse_diagonal(const CsrMatrix& a);

// small BLAS-1 helpers shared by the solvers (exposed for tests)
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace vecfd::solver
