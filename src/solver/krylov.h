// vecfd::solver — Krylov solvers with optional Jacobi preconditioning.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "solver/csr.h"

namespace vecfd::solver {

struct SolveOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;  ///< on ‖r‖₂ / ‖b‖₂
  bool jacobi_precondition = true;
};

/// Breakdown-reporting contract: every exit path — convergence, iteration
/// budget exhausted, or a Krylov breakdown (cg: p·Ap = 0; bicgstab:
/// r₀·v = 0, t·t = 0, ω = 0, or a failed ρ restart) — leaves `residual`
/// equal to the true relative residual ‖b − A·x‖₂ / ‖b‖₂ of the returned
/// `x`, and appends it to `history`.  A breakdown therefore never returns
/// the misleading `residual == 0, converged == false` pair; conversely, a
/// breakdown with an exactly zero residual (e.g. an exact initial guess)
/// reports `converged == true`.  On a breakdown exit `history` may hold one
/// entry more than `iterations` completed.
struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;      ///< final relative residual (see contract above)
  std::vector<double> history;  ///< relative residual per iteration
};

/// Conjugate gradients — for symmetric positive-definite systems (e.g. the
/// pressure Poisson operator or the pure-viscous momentum matrix).
SolveReport cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// BiCGStab — for the nonsymmetric semi-implicit momentum operator
/// (convection makes it non-self-adjoint).
SolveReport bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Inverse-diagonal of @p a (the Jacobi preconditioner).
/// @throws std::runtime_error on a zero diagonal entry.
std::vector<double> jacobi_inverse_diagonal(const CsrMatrix& a);

/// In-place variant: fills @p out (resized to a.rows()), reusing its
/// storage across repeated calls — used by workspace-reusing solvers.
void jacobi_inverse_diagonal_into(const CsrMatrix& a,
                                  std::vector<double>& out);

// small BLAS-1 helpers shared by the solvers (exposed for tests)
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace vecfd::solver
