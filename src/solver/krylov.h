// vecfd::solver — Krylov solvers with optional Jacobi preconditioning.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "solver/csr.h"

namespace vecfd::solver {

/// Preconditioner ladder for the SPD (phase-10 pressure-Poisson) solve,
/// weakest to strongest.  Every rung above kJacobi is built from the same
/// instrumented kernels the counter model already prices (DESIGN.md §8);
/// only the SPD vcg path accepts the higher rungs — the nonsymmetric
/// bicgstab solvers reject them loudly.
enum class PrecondKind {
  kJacobi,   ///< inverse diagonal (current behaviour, bit-identical)
  kCheby,    ///< Chebyshev polynomial in the Jacobi-scaled operator
  kDeflate,  ///< Jacobi + two-level coarse correction (aggregates)
};

constexpr const char* to_string(PrecondKind k) {
  switch (k) {
    case PrecondKind::kJacobi:  return "jacobi";
    case PrecondKind::kCheby:   return "cheby";
    case PrecondKind::kDeflate: return "deflate";
  }
  return "?";
}

/// CLI spelling -> kind; returns false on an unknown name (the vecfd-run
/// --precond exit-2 contract reports the offending value).
bool precond_from_string(std::string_view name, PrecondKind& out);

/// Knobs for the non-trivial rungs.  Defaults are the studied operating
/// point (bench/precond_ladder); all of them are deterministic.
struct PrecondOptions {
  PrecondKind kind = PrecondKind::kJacobi;

  // -- Chebyshev rung -----------------------------------------------------
  /// Polynomial degree (SpMVs per apply).  3 triples the per-iteration
  /// operator work and roughly halves the CG iteration count on the
  /// studied meshes — between Jacobi and deflation on the ladder.
  int cheby_degree = 3;
  /// Instrumented power iterations estimating λmax of D⁻¹A on the
  /// selected vspmv path (charged to the surrounding solve phase).
  int power_iterations = 8;
  /// Safety factor on the λmax estimate (power iteration approaches the
  /// true value from below; the polynomial must stay positive on the
  /// whole spectrum to keep the preconditioned operator SPD).
  double cheby_boost = 1.1;
  /// Target interval is [λmax·boost/ratio, λmax·boost]: the polynomial
  /// damps this band hard and leaves the low modes to CG itself.
  double cheby_ratio = 30.0;

  // -- deflation rung -----------------------------------------------------
  /// Fine row -> aggregate id (size n, ids dense in [0, num aggregates)).
  /// The TimeLoop fills this from fem::structured_aggregates composed
  /// with the active solve ordering; empty aggregates are rejected.
  std::vector<int> aggregates;
  /// Host coarse-solve (CG on the Galerkin operator PᵀAP) controls.
  int coarse_max_iterations = 500;
  double coarse_rel_tolerance = 1e-12;
};

struct SolveOptions {
  int max_iterations = 1000;
  double rel_tolerance = 1e-10;  ///< on ‖r‖₂ / ‖b‖₂
  /// false disables preconditioning entirely (precond.kind is ignored and
  /// the solve runs un-preconditioned, as before the ladder existed).
  bool jacobi_precondition = true;
  /// Which ladder rung to run when preconditioning is enabled.
  PrecondOptions precond;
  /// Deterministic fault hook (sim/fault_injection.h): when set, the
  /// instrumented vcg fails immediately through its regular failure exit —
  /// same instrumented true-residual path a genuine Krylov breakdown takes
  /// — so campaigns can rehearse the retry ladder on demand.  Never set by
  /// production configs.
  bool inject_breakdown = false;
};

/// Reporting contract, honoured on EVERY exit path of every solver in this
/// library (cg/bicgstab, the instrumented vcg/vbicgstab, and the multi-RHS
/// bicgstab_multi/vbicgstab_multi per column):
///
///   * `residual` equals the true relative residual ‖b − A·x‖₂ / ‖b‖₂ of
///     the returned `x` — a Krylov breakdown (cg: p·Ap = 0; bicgstab:
///     r₀·v = 0, t·t = 0, ω = 0, or a failed ρ restart) never returns the
///     misleading `residual == 0, converged == false` pair, and a breakdown
///     with a residual already below tolerance (e.g. an exact initial
///     guess) reports `converged == true`.
///   * `history[0]` is the relative residual of the incoming iterate; every
///     counted iteration appends exactly one entry, and a breakdown exit
///     counts the aborted iteration (its SpMV work was spent, and for the
///     bicgstab t·t breakdown the half-step was applied) and appends the
///     true residual of the returned iterate.  Hence the length invariant
///
///         history.size() == iterations + 1   and
///         history.back() == residual
///
///     holds on convergence, budget exhaustion, breakdowns and the trivial
///     b = 0 / already-converged-guess exits alike (test_property_solvers
///     asserts it on every path).
///   * A preconditioner that cannot be built (e.g. a structurally zero
///     diagonal feeding Jacobi) is a per-solve FAILURE, not an exception
///     escaping to the caller: the solver returns with `failure` naming the
///     cause, `iterations == 0`, the untouched iterate, and the contract
///     above intact (`history == {rel0}` with the true residual of that
///     iterate) — a bad point fails its campaign row instead of aborting
///     the whole campaign.
struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;      ///< final relative residual (see contract above)
  std::vector<double> history;  ///< [0] initial + one entry per iteration
  /// Non-empty: the solve could not run (preconditioner setup failed);
  /// x is the incoming iterate, untouched.
  std::string failure;
};

/// Always-on exit gate for the contract above: every solver return path in
/// this library funnels through `checked(...)` — vecfd-lint rule
/// `solve-report-history` rejects a bare `return rep;` in any function
/// returning SolveReport — so a producer that breaks the
/// `history.size() == iterations + 1` / `history.back() == residual`
/// invariant fails loudly at the exit that broke it instead of corrupting
/// downstream per-iteration analyses (the PR 4 off-by-one class).
/// @throws std::logic_error on a violated invariant.
SolveReport& checked(SolveReport& rep);

/// Per-column gate for the multi-RHS producers.
std::vector<SolveReport>& checked(std::vector<SolveReport>& reps);

/// Conjugate gradients — for symmetric positive-definite systems (e.g. the
/// pressure Poisson operator or the pure-viscous momentum matrix).
SolveReport cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// BiCGStab — for the nonsymmetric semi-implicit momentum operator
/// (convection makes it non-self-adjoint).
SolveReport bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Multi-RHS BiCGStab: solves A·x_d = b_d for k right-hand sides sharing
/// one operator.  @p b and @p x hold k node-major columns (column d spans
/// [d·n, (d+1)·n)); the k recurrences are mathematically independent and
/// advanced in lockstep, each with its own Krylov scalars and its own
/// convergence / breakdown lifecycle, so column d returns bit-for-bit the
/// iterate a standalone `bicgstab(a, b_d, x_d)` would — the host reference
/// `vbicgstab_multi` (solver/vkernels.h) mirrors step for step.  A column
/// that converges or breaks down is masked out of all further work.  One
/// SolveReport per column, each honouring the full contract above.
std::vector<SolveReport> bicgstab_multi(const CsrMatrix& a,
                                        std::span<const double> b,
                                        std::span<double> x, int k,
                                        const SolveOptions& opts = {});

/// Inverse-diagonal of @p a (the Jacobi preconditioner).
/// @throws std::runtime_error on a zero diagonal entry.
std::vector<double> jacobi_inverse_diagonal(const CsrMatrix& a);

/// In-place variant: fills @p out (resized to a.rows()), reusing its
/// storage across repeated calls — used by workspace-reusing solvers.
void jacobi_inverse_diagonal_into(const CsrMatrix& a,
                                  std::vector<double>& out);

// small BLAS-1 helpers shared by the solvers (exposed for tests)
double dot(std::span<const double> a, std::span<const double> b);

/// Trust bounds on the squared sum dot(a,a): a value inside them neither
/// overflowed nor sits so deep in the denormal range that sqrt would lose
/// the residual's precision.  Outside them (or for 0 / non-finite sums)
/// norm2 re-scans for ‖a‖∞ and evaluates the scaled m·sqrt(Σ(aᵢ/m)²)
/// instead.  Shared with the instrumented vnorm2 so host and Vpu paths
/// branch identically.
inline constexpr double kNormSumSqMin = 1e-280;
inline constexpr double kNormSumSqMax = 1e280;

/// Overflow/underflow-safe Euclidean norm.  The common path is exactly the
/// one-pass sqrt(dot(a,a)); only when the squared sum falls outside the
/// trust bounds above does a second ‖a‖∞ pass pick a scale, so norms of
/// magnitude ~1e±300 stay finite (a vector containing ±inf still reports
/// inf, and NaN propagates) and breakdown exits never misreport
/// convergence off an inf/0 norm.
double norm2(std::span<const double> a);

void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace vecfd::solver
