#include "solver/krylov.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vecfd::solver {

SolveReport& checked(SolveReport& rep) {
  const bool len_ok =
      rep.history.size() == static_cast<std::size_t>(rep.iterations) + 1;
  // NaN residuals (a diverged solve) must compare equal to themselves here.
  const bool back_ok =
      !rep.history.empty() &&
      (rep.history.back() == rep.residual ||
       (std::isnan(rep.history.back()) && std::isnan(rep.residual)));
  if (!len_ok || !back_ok) {
    throw std::logic_error(
        "SolveReport contract violated at solver exit: history.size()=" +
        std::to_string(rep.history.size()) +
        ", iterations=" + std::to_string(rep.iterations) +
        " (want size == iterations + 1 and history.back() == residual; "
        "see krylov.h)");
  }
  return rep;
}

std::vector<SolveReport>& checked(std::vector<SolveReport>& reps) {
  for (SolveReport& rep : reps) checked(rep);
  return reps;
}

bool precond_from_string(std::string_view name, PrecondKind& out) {
  if (name == "jacobi") {
    out = PrecondKind::kJacobi;
  } else if (name == "cheby") {
    out = PrecondKind::kCheby;
  } else if (name == "deflate") {
    out = PrecondKind::kDeflate;
  } else {
    return false;
  }
  return true;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: dimension mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) {
  const double s = dot(a, a);
  if (s > kNormSumSqMin && s < kNormSumSqMax) {
    return std::sqrt(s);  // common path: trustworthy one-pass sum
  }
  // Rare rescan: the sum overflowed (inf/NaN), underflowed toward the
  // denormal range, or is 0 for a possibly-nonzero input.  Pick the scale
  // ‖a‖∞ and evaluate m·sqrt(Σ(aᵢ/m)²).
  double m = 0.0;
  for (const double v : a) {
    const double av = std::fabs(v);
    if (av > m || std::isnan(av)) m = av;  // NaN-propagating max
  }
  if (m == 0.0) return 0.0;
  if (std::isinf(m)) return m;  // an inf entry: the norm IS inf, not NaN
  double ssq = 0.0;
  for (const double v : a) {
    const double q = v / m;
    ssq += q * q;
  }
  return m * std::sqrt(ssq);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: dimension mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> jacobi_inverse_diagonal(const CsrMatrix& a) {
  std::vector<double> inv;
  jacobi_inverse_diagonal_into(a, inv);
  return inv;
}

void jacobi_inverse_diagonal_into(const CsrMatrix& a,
                                  std::vector<double>& out) {
  const int n = a.rows();
  out.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    const double d = a.at(r, r);
    if (d == 0.0) {
      throw std::runtime_error("jacobi preconditioner: zero diagonal at row " +
                               std::to_string(r));
    }
    out[static_cast<std::size_t>(r)] = 1.0 / d;
  }
}

namespace {
void apply_precond(const std::vector<double>& dinv,
                   std::span<const double> r, std::span<double> z) {
  if (dinv.empty()) {
    std::copy(r.begin(), r.end(), z.begin());
  } else {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = dinv[i] * r[i];
  }
}

/// Breakdown exit (see the contract in krylov.h): count the aborted
/// iteration @p it, record the true relative residual of the current
/// iterate so callers never see the misleading `residual == 0,
/// converged == false` pair, and flag convergence if the breakdown happened
/// because the residual is already below tolerance.  Keeps the
/// `history.size() == iterations + 1` invariant on the breakdown path.
SolveReport& breakdown_exit(SolveReport& rep, int it,
                            std::span<const double> r, double bnorm,
                            double rel_tolerance) {
  const double rel = norm2(r) / bnorm;
  rep.iterations = it + 1;
  rep.residual = rel;
  rep.history.push_back(rel);
  if (rel < rel_tolerance) rep.converged = true;
  return checked(rep);
}

/// The ladder beyond Jacobi lives in the instrumented SPD vcg path only
/// (solver/preconditioner.h); the nonsymmetric host/bicgstab solvers reject
/// the higher rungs loudly instead of silently running Jacobi.
void require_jacobi_rung(const SolveOptions& opts, const char* who) {
  if (opts.jacobi_precondition &&
      opts.precond.kind != PrecondKind::kJacobi) {
    throw std::invalid_argument(
        std::string(who) + ": preconditioner '" +
        to_string(opts.precond.kind) +
        "' is only available on the SPD vcg path (use vcg, or kJacobi)");
  }
}

/// Failure exit (see SolveReport::failure): the preconditioner could not
/// be built, so the solve never ran.  x is the caller's iterate untouched;
/// the contract still holds with history == {rel0} and iterations == 0.
SolveReport& failure_exit(SolveReport& rep, const char* why,
                          const CsrMatrix& a, std::span<const double> b,
                          std::span<const double> x, double bnorm,
                          double rel_tolerance) {
  std::vector<double> r(b.size());
  a.spmv(x, r);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - r[i];
  const double rel0 = norm2(r) / bnorm;
  rep.failure = why;
  rep.iterations = 0;
  rep.residual = rel0;
  rep.history.assign(1, rel0);
  rep.converged = rel0 < rel_tolerance;
  return checked(rep);
}
}  // namespace

SolveReport cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("cg: dimension mismatch");
  }
  require_jacobi_rung(opts, "cg");
  SolveReport rep;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    rep.converged = true;
    rep.history.push_back(0.0);
    return checked(rep);
  }
  std::vector<double> dinv;
  if (opts.jacobi_precondition) {
    try {
      dinv = jacobi_inverse_diagonal(a);
    } catch (const std::runtime_error& e) {
      return checked(
          failure_exit(rep, e.what(), a, b, x, bnorm, opts.rel_tolerance));
    }
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.spmv(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double rel0 = norm2(r) / bnorm;
  rep.residual = rel0;
  rep.history.push_back(rel0);
  if (rel0 < opts.rel_tolerance) {
    rep.converged = true;
    return checked(rep);
  }
  apply_precond(dinv, r, z);
  p = z;
  double rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a.spmv(p, ap);
    const double pap = dot(p, ap);
    if (pap == 0.0) {
      return checked(breakdown_exit(rep, it, r, bnorm, opts.rel_tolerance));
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rel = norm2(r) / bnorm;
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return checked(rep);
    }
    apply_precond(dinv, r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return checked(rep);
}

SolveReport bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != a.rows() || x.size() != n) {
    throw std::invalid_argument("bicgstab: dimension mismatch");
  }
  require_jacobi_rung(opts, "bicgstab");
  SolveReport rep;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    rep.converged = true;
    rep.history.push_back(0.0);
    return checked(rep);
  }
  std::vector<double> dinv;
  if (opts.jacobi_precondition) {
    try {
      dinv = jacobi_inverse_diagonal(a);
    } catch (const std::runtime_error& e) {
      return checked(
          failure_exit(rep, e.what(), a, b, x, bnorm, opts.rel_tolerance));
    }
  }

  std::vector<double> r(n), r0(n), p(n, 0.0), v(n, 0.0), s(n), t(n);
  std::vector<double> phat(n), shat(n);
  a.spmv(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double rel0 = norm2(r) / bnorm;
  rep.residual = rel0;
  rep.history.push_back(rel0);
  if (rel0 < opts.rel_tolerance) {
    rep.converged = true;
    return checked(rep);
  }
  r0 = r;
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  for (int it = 0; it < opts.max_iterations; ++it) {
    double rho_new = dot(r0, r);
    bool restart = it == 0;
    if (rho_new == 0.0) {
      // serious breakdown: the shadow residual became orthogonal to r
      // (common when Dirichlet rows decouple); restart with r0 = r.
      r0 = r;
      rho_new = dot(r, r);
      if (rho_new == 0.0) {
        // r is exactly zero: the iterate is an exact solution.
        return checked(breakdown_exit(rep, it, r, bnorm, opts.rel_tolerance));
      }
      restart = true;
    }
    if (restart) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    rho = rho_new;
    apply_precond(dinv, p, phat);
    a.spmv(phat, v);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) {
      return checked(breakdown_exit(rep, it, r, bnorm, opts.rel_tolerance));
    }
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) / bnorm < opts.rel_tolerance) {
      axpy(alpha, phat, x);
      rep.iterations = it + 1;
      rep.residual = norm2(s) / bnorm;
      rep.history.push_back(rep.residual);
      rep.converged = true;
      return checked(rep);
    }
    apply_precond(dinv, s, shat);
    a.spmv(shat, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      // Apply the valid half-step so x is consistent with the reported
      // residual s = b - A·(x + α·p̂).
      axpy(alpha, phat, x);
      return checked(breakdown_exit(rep, it, s, bnorm, opts.rel_tolerance));
    }
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    const double rel = norm2(r) / bnorm;
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      return checked(rep);
    }
    // ω = 0 is a breakdown, but x, residual and history were just updated
    // above, so the exit already satisfies the reporting contract.
    if (omega == 0.0) break;
  }
  return checked(rep);
}

std::vector<SolveReport> bicgstab_multi(const CsrMatrix& a,
                                        std::span<const double> b,
                                        std::span<double> x, int k,
                                        const SolveOptions& opts) {
  if (k <= 0) {
    throw std::invalid_argument("bicgstab_multi: k must be positive");
  }
  const std::size_t n = static_cast<std::size_t>(a.rows());
  if (b.size() != n * static_cast<std::size_t>(k) || x.size() != b.size()) {
    throw std::invalid_argument("bicgstab_multi: dimension mismatch");
  }
  require_jacobi_rung(opts, "bicgstab_multi");
  auto ccol = [n](std::span<const double> blk, int d) {
    return blk.subspan(static_cast<std::size_t>(d) * n, n);
  };
  auto mcol = [n](std::span<double> blk, int d) {
    return blk.subspan(static_cast<std::size_t>(d) * n, n);
  };

  std::vector<SolveReport> reps(static_cast<std::size_t>(k));
  std::vector<char> active(static_cast<std::size_t>(k), 0);
  std::vector<double> bnorm(static_cast<std::size_t>(k), 0.0);
  std::vector<double> rho(static_cast<std::size_t>(k), 1.0);
  std::vector<double> alpha(static_cast<std::size_t>(k), 1.0);
  std::vector<double> omega(static_cast<std::size_t>(k), 1.0);
  int remaining = 0;

  std::vector<double> dinv;
  if (opts.jacobi_precondition) {
    try {
      dinv = jacobi_inverse_diagonal(a);
    } catch (const std::runtime_error& e) {
      // every non-trivial column fails identically; zero-RHS columns keep
      // their ordinary exit (they never needed the preconditioner)
      for (int d = 0; d < k; ++d) {
        SolveReport& rep = reps[static_cast<std::size_t>(d)];
        auto xd = mcol(x, d);
        const double bn = norm2(ccol(b, d));
        if (bn == 0.0) {
          std::fill(xd.begin(), xd.end(), 0.0);
          rep.converged = true;
          rep.history.push_back(0.0);
        } else {
          failure_exit(rep, e.what(), a, ccol(b, d), xd, bn,
                       opts.rel_tolerance);
        }
      }
      return checked(reps);
    }
  }

  const std::size_t cells = n * static_cast<std::size_t>(k);
  std::vector<double> R(cells, 0.0), R0(cells, 0.0), P(cells, 0.0);
  std::vector<double> V(cells, 0.0), S(cells, 0.0), T(cells, 0.0);
  std::vector<double> Phat(cells, 0.0), Shat(cells, 0.0);

  for (int d = 0; d < k; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    SolveReport& rep = reps[ud];
    auto xd = mcol(x, d);
    bnorm[ud] = norm2(ccol(b, d));
    if (bnorm[ud] == 0.0) {
      std::fill(xd.begin(), xd.end(), 0.0);
      rep.converged = true;
      rep.history.push_back(0.0);
      continue;
    }
    auto rd = mcol(R, d);
    a.spmv(xd, rd);
    const auto bd = ccol(b, d);
    for (std::size_t i = 0; i < n; ++i) rd[i] = bd[i] - rd[i];
    const double rel0 = norm2(rd) / bnorm[ud];
    rep.residual = rel0;
    rep.history.push_back(rel0);
    if (rel0 < opts.rel_tolerance) {
      rep.converged = true;
      continue;
    }
    std::copy(rd.begin(), rd.end(), mcol(R0, d).begin());
    active[ud] = 1;
    ++remaining;
  }

  auto retire = [&](int d) {
    active[static_cast<std::size_t>(d)] = 0;
    --remaining;
  };
  auto column_breakdown = [&](int d, int it, std::span<const double> res) {
    breakdown_exit(reps[static_cast<std::size_t>(d)], it, res,
                   bnorm[static_cast<std::size_t>(d)], opts.rel_tolerance);
    retire(d);
  };

  for (int it = 0; it < opts.max_iterations && remaining > 0; ++it) {
    for (int d = 0; d < k; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (!active[ud]) continue;
      SolveReport& rep = reps[ud];
      auto xd = mcol(x, d);
      auto rd = mcol(R, d);
      auto r0d = mcol(R0, d);
      auto pd = mcol(P, d);
      auto vd = mcol(V, d);
      auto sd = mcol(S, d);
      auto td = mcol(T, d);
      auto phatd = mcol(Phat, d);
      auto shatd = mcol(Shat, d);

      double rho_new = dot(r0d, rd);
      bool restart = it == 0;
      if (rho_new == 0.0) {
        // serious breakdown: restart with r0 = r (see bicgstab above)
        std::copy(rd.begin(), rd.end(), r0d.begin());
        rho_new = dot(rd, rd);
        if (rho_new == 0.0) {
          column_breakdown(d, it, rd);
          continue;
        }
        restart = true;
      }
      if (restart) {
        std::copy(rd.begin(), rd.end(), pd.begin());
      } else {
        const double beta = (rho_new / rho[ud]) * (alpha[ud] / omega[ud]);
        for (std::size_t i = 0; i < n; ++i) {
          pd[i] = rd[i] + beta * (pd[i] - omega[ud] * vd[i]);
        }
      }
      rho[ud] = rho_new;
      apply_precond(dinv, pd, phatd);
      a.spmv(phatd, vd);
      const double r0v = dot(r0d, vd);
      if (r0v == 0.0) {
        column_breakdown(d, it, rd);
        continue;
      }
      alpha[ud] = rho[ud] / r0v;
      for (std::size_t i = 0; i < n; ++i) sd[i] = rd[i] - alpha[ud] * vd[i];
      if (norm2(sd) / bnorm[ud] < opts.rel_tolerance) {
        axpy(alpha[ud], phatd, xd);
        rep.iterations = it + 1;
        rep.residual = norm2(sd) / bnorm[ud];
        rep.history.push_back(rep.residual);
        rep.converged = true;
        retire(d);
        continue;
      }
      apply_precond(dinv, sd, shatd);
      a.spmv(shatd, td);
      const double tt = dot(td, td);
      if (tt == 0.0) {
        axpy(alpha[ud], phatd, xd);  // valid half-step (see bicgstab above)
        column_breakdown(d, it, sd);
        continue;
      }
      omega[ud] = dot(td, sd) / tt;
      for (std::size_t i = 0; i < n; ++i) {
        xd[i] += alpha[ud] * phatd[i] + omega[ud] * shatd[i];
        rd[i] = sd[i] - omega[ud] * td[i];
      }
      const double rel = norm2(rd) / bnorm[ud];
      rep.history.push_back(rel);
      rep.iterations = it + 1;
      rep.residual = rel;
      if (rel < opts.rel_tolerance) {
        rep.converged = true;
        retire(d);
        continue;
      }
      if (omega[ud] == 0.0) retire(d);  // ω breakdown: already reported
    }
  }
  return checked(reps);
}

}  // namespace vecfd::solver
