#include "solver/sharding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "solver/vkernels.h"

namespace vecfd::solver {

int ShardPlan::owner(int g) const {
  // Last p with bounds[p] <= g: empty shards share their neighbour's bound
  // and can never contain g, so upper_bound lands on the real owner.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), g);
  int p = static_cast<int>(it - bounds.begin()) - 1;
  if (p < 0) p = 0;
  if (p >= shards) p = shards - 1;
  return p;
}

int ShardPlan::local_index(int p, int g) const {
  const std::size_t sp = static_cast<std::size_t>(p);
  if (g >= bounds[sp] && g < bounds[sp + 1]) return g - bounds[sp];
  const auto& gh = ghosts[sp];
  const auto it = std::lower_bound(gh.begin(), gh.end(), g);
  if (it != gh.end() && *it == g) {
    return num_owned(p) + static_cast<int>(it - gh.begin());
  }
  return -1;
}

std::vector<int> strip_bounds(int n, int shards, int quantum) {
  if (n < 0 || shards < 1 || quantum < 1) {
    throw std::invalid_argument("strip_bounds: need n >= 0, shards >= 1, "
                                "quantum >= 1");
  }
  std::vector<int> b(static_cast<std::size_t>(shards) + 1, 0);
  for (int p = 1; p < shards; ++p) {
    // round-half-up of p*n / (shards*quantum), in exact integer arithmetic
    const long long num = 2LL * p * n + 1LL * shards * quantum;
    const long long den = 2LL * shards * quantum;
    long long bp = static_cast<long long>(quantum) * (num / den);
    if (bp > n) bp = n;
    if (bp < b[static_cast<std::size_t>(p) - 1]) {
      bp = b[static_cast<std::size_t>(p) - 1];
    }
    b[static_cast<std::size_t>(p)] = static_cast<int>(bp);
  }
  b[static_cast<std::size_t>(shards)] = n;
  return b;
}

ShardedCg::ShardedCg(ShardPlan plan, const CsrMatrix& a,
                     const sim::MachineConfig& machine, int strip, int phase,
                     int num_phases)
    : plan_(std::move(plan)), phase_(phase) {
  if (!machine.vector_enabled) {
    throw std::invalid_argument(
        "ShardedCg: vector machines only (the scalar dot recurrence is a "
        "sequential sfma chain and does not decompose over shards)");
  }
  strip_ = solve_effective_strip(strip, machine);
  if (plan_.quantum != strip_) {
    throw std::invalid_argument(
        "ShardedCg: plan quantum must equal the effective strip so global "
        "strips never straddle shards");
  }
  if (plan_.size() != a.rows() ||
      static_cast<int>(plan_.ghosts.size()) != plan_.shards ||
      static_cast<int>(plan_.bounds.size()) != plan_.shards + 1) {
    throw std::invalid_argument("ShardedCg: malformed plan");
  }
  // Global inverse diagonal FIRST: a zero diagonal throws here, before any
  // shard state exists, so the caller can fall back to the legacy path and
  // reproduce its instrumented SolveReport::failure exit bit for bit.
  const std::vector<double> dinv_global = jacobi_inverse_diagonal(a);

  const int line_bytes = machine.memory.l1.line_bytes;
  shards_.resize(static_cast<std::size_t>(plan_.shards));
  std::vector<std::vector<sim::HaloBlock>> blocks(
      static_cast<std::size_t>(plan_.shards));
  for (int p = 0; p < plan_.shards; ++p) {
    Shard& sh = shards_[static_cast<std::size_t>(p)];
    sh.vpu = std::make_unique<sim::Vpu>(machine, num_phases);
    sh.rows = plan_.num_owned(p);
    const int base = plan_.bounds[static_cast<std::size_t>(p)];
    const std::size_t rows = static_cast<std::size_t>(sh.rows);
    const std::size_t lsize = static_cast<std::size_t>(plan_.local_size(p));
    sh.x.assign(lsize, 0.0);
    sh.p.assign(lsize, 0.0);
    sh.b.assign(rows, 0.0);
    sh.r.assign(rows, 0.0);
    sh.z.assign(rows, 0.0);
    sh.ap.assign(rows, 0.0);
    sh.dinv.assign(dinv_global.begin() + base,
                   dinv_global.begin() + base + sh.rows);
    sh.partials.reserve(rows == 0 ? 0 : (rows - 1) / strip_ + 1);

    sh.width = 0;
    for (int r = 0; r < sh.rows; ++r) {
      sh.width = std::max(
          sh.width, static_cast<int>(a.row_cols(base + r).size()));
    }
    const std::size_t cells = static_cast<std::size_t>(sh.width) * rows;
    sh.ell_vals.assign(cells, 0.0);
    sh.ell_cols.assign(cells, -1);  // masked pads, exact fma no-ops
    for (int r = 0; r < sh.rows; ++r) {
      const auto cs = a.row_cols(base + r);
      const auto vs = a.row_vals(base + r);
      for (std::size_t j = 0; j < cs.size(); ++j) {
        const int lc = plan_.local_index(p, cs[j]);
        if (lc < 0) {
          throw std::invalid_argument(
              "ShardedCg: matrix column outside the plan's overlap-1 ghost "
              "closure");
        }
        const std::size_t k = j * rows + static_cast<std::size_t>(r);
        sh.ell_vals[k] = vs[j];
        sh.ell_cols[k] = lc;
      }
    }

    // Ghosts are sorted by global id and ownership ranges ascend, so each
    // owner's contribution is one contiguous run of the ghost list.
    const auto& gh = plan_.ghosts[static_cast<std::size_t>(p)];
    std::size_t i = 0;
    while (i < gh.size()) {
      const int owner = plan_.owner(gh[i]);
      sim::HaloBlock blk;
      blk.src_shard = owner;
      blk.dst_begin = sh.rows + static_cast<int>(i);
      const int src_base = plan_.bounds[static_cast<std::size_t>(owner)];
      while (i < gh.size() && plan_.owner(gh[i]) == owner) {
        blk.src_local.push_back(gh[i] - src_base);
        ++i;
      }
      blocks[static_cast<std::size_t>(p)].push_back(std::move(blk));
    }
  }
  halo_ = std::make_unique<sim::HaloExchange>(std::move(blocks), line_bytes);
  vpu_ptrs_.assign(static_cast<std::size_t>(plan_.shards), nullptr);
  local_ptrs_.assign(static_cast<std::size_t>(plan_.shards), nullptr);
  epoch_last_.assign(static_cast<std::size_t>(plan_.shards), 0.0);
}

void ShardedCg::reset() {
  for (Shard& sh : shards_) sh.vpu->reset();
  std::fill(epoch_last_.begin(), epoch_last_.end(), 0.0);
  makespan_ = 0.0;
}

void ShardedCg::sync_epoch() {
  double mx = 0.0;
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    const double now = shards_[p].vpu->counters().total_cycles();
    const double delta = now - epoch_last_[p];
    epoch_last_[p] = now;
    if (delta > mx) mx = delta;
  }
  makespan_ += mx;
}

template <class Fn>
void ShardedCg::for_shards(Fn&& fn) {
  core::parallel_for_index(
      shards_.size(), static_cast<int>(shards_.size()),
      [&](std::size_t p) { fn(static_cast<int>(p)); });
  sync_epoch();
}

double ShardedCg::fold_sum(sim::Vpu& coord) const {
  // Global strip order: shard partial lists concatenate in shard order
  // because ownership ranges ascend — the exact sadd recurrence of vdot.
  double s = 0.0;
  for (const Shard& sh : shards_) {
    for (const double part : sh.partials) s = coord.sadd(s, part);
  }
  return s;
}

double ShardedCg::fold_max() const {
  // NaN-sticky running max over the global strip sequence, mirroring the
  // vnorm2 rescan combine (host-side there too — no instruction charged).
  double m = 0.0;
  for (const Shard& sh : shards_) {
    for (const double sm : sh.partials) {
      if (sm > m || std::isnan(sm)) m = sm;
    }
  }
  return m;
}

void ShardedCg::seg_dot_partials(int p, const double* a, const double* bb,
                                 int n) {
  Shard& sh = shards_[static_cast<std::size_t>(p)];
  sim::Vpu& vpu = *sh.vpu;
  sim::ScopedPhase scope(vpu.profiler(), phase_);
  sh.partials.clear();
  for_strips(vpu, n, strip_, [&](int i, int) {
    const sim::Vec va = vpu.vload(a + i);
    const sim::Vec vb = vpu.vload(bb + i);
    sh.partials.push_back(vpu.vredsum(vpu.vmul(va, vb)));
  });
}

void ShardedCg::seg_max_partials(int p, const double* a, int n) {
  Shard& sh = shards_[static_cast<std::size_t>(p)];
  sim::Vpu& vpu = *sh.vpu;
  sim::ScopedPhase scope(vpu.profiler(), phase_);
  sh.partials.clear();
  for_strips(vpu, n, strip_, [&](int i, int) {
    sh.partials.push_back(vpu.vredmax(vpu.vabs(vpu.vload(a + i))));
    vpu.sarith(1);  // running-max combine, as in the vnorm2 rescan
  });
}

void ShardedCg::seg_scaled_partials(int p, const double* a, int n, double m) {
  Shard& sh = shards_[static_cast<std::size_t>(p)];
  sim::Vpu& vpu = *sh.vpu;
  sim::ScopedPhase scope(vpu.profiler(), phase_);
  sh.partials.clear();
  for_strips(vpu, n, strip_, [&](int i, int) {
    const sim::Vec q = vpu.vdiv(vpu.vload(a + i), vpu.vsplat(m));
    sh.partials.push_back(vpu.vredsum(vpu.vmul(q, q)));
  });
}

void ShardedCg::seg_spmv(int p, const double* xloc, double* yloc) {
  Shard& sh = shards_[static_cast<std::size_t>(p)];
  sim::Vpu& vpu = *sh.vpu;
  sim::ScopedPhase scope(vpu.profiler(), phase_);
  const std::size_t rows = static_cast<std::size_t>(sh.rows);
  for_strips(vpu, sh.rows, strip_, [&](int i, int) {
    sim::Vec acc = vpu.vsplat(0.0);
    for (int j = 0; j < sh.width; ++j) {
      const std::size_t k =
          static_cast<std::size_t>(j) * rows + static_cast<std::size_t>(i);
      const sim::Vec vv = vpu.vload(sh.ell_vals.data() + k);
      const sim::Vec idx = vpu.vload_i32(sh.ell_cols.data() + k);
      const sim::Vec xs = vpu.vgather(xloc, idx);
      acc = vpu.vfma(vv, xs, acc);
      vpu.sarith(1);  // slab-loop control
    }
    vpu.vstore(yloc + i, acc);
  });
}

template <class Get>
double ShardedCg::sharded_norm2(sim::Vpu& coord, Get&& get) {
  for_shards([&](int p) {
    seg_dot_partials(p, get(p), get(p),
                     shards_[static_cast<std::size_t>(p)].rows);
  });
  const double s = fold_sum(coord);
  if (s > kNormSumSqMin && s < kNormSumSqMax) {
    return coord.ssqrt(s);
  }
  for_shards([&](int p) {
    seg_max_partials(p, get(p), shards_[static_cast<std::size_t>(p)].rows);
  });
  const double m = fold_max();
  if (m == 0.0) return 0.0;
  if (std::isinf(m)) return m;
  for_shards([&](int p) {
    seg_scaled_partials(p, get(p),
                        shards_[static_cast<std::size_t>(p)].rows, m);
  });
  const double ssq = fold_sum(coord);
  return coord.smul(m, coord.ssqrt(ssq));
}

template <class Get, class GetB>
double ShardedCg::sharded_dot(sim::Vpu& coord, Get&& get_a, GetB&& get_b) {
  for_shards([&](int p) {
    seg_dot_partials(p, get_a(p), get_b(p),
                     shards_[static_cast<std::size_t>(p)].rows);
  });
  return fold_sum(coord);
}

void ShardedCg::exchange_into(std::vector<double> Shard::*vec) {
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    vpu_ptrs_[p] = shards_[p].vpu.get();
    local_ptrs_[p] = (shards_[p].*vec).data();
    vpu_ptrs_[p]->profiler().begin(phase_);
  }
  halo_->exchange(vpu_ptrs_, local_ptrs_);
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    vpu_ptrs_[p]->profiler().end(phase_);
  }
}

SolveReport ShardedCg::solve(sim::Vpu& coord, std::span<const double> b,
                             std::span<double> x, const SolveOptions& opts) {
  const std::size_t n = b.size();
  if (static_cast<int>(n) != plan_.size() || x.size() != n) {
    throw std::invalid_argument("ShardedCg::solve: dimension mismatch");
  }
  if (!opts.jacobi_precondition ||
      opts.precond.kind != PrecondKind::kJacobi) {
    throw std::invalid_argument(
        "ShardedCg::solve: only the kJacobi rung is sharded (other rungs "
        "take the legacy single-Vpu path)");
  }
  const double coord0 = coord.counters().total_cycles();

  // Initial owned-data distribution: host-side marshalling, deliberately
  // uncounted (it is data placement, not halo traffic).
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    Shard& sh = shards_[p];
    const int base = plan_.bounds[p];
    std::copy(b.begin() + base, b.begin() + base + sh.rows, sh.b.begin());
    std::copy(x.begin() + base, x.begin() + base + sh.rows, sh.x.begin());
  }
  const auto gather_x = [&]() {
    for (std::size_t p = 0; p < shards_.size(); ++p) {
      const Shard& sh = shards_[p];
      std::copy(sh.x.begin(), sh.x.begin() + sh.rows,
                x.begin() + plan_.bounds[p]);
    }
  };
  const auto owned = [](std::vector<double>& v, int rows) {
    return std::span<double>(v.data(), static_cast<std::size_t>(rows));
  };
  const auto finish = [&](SolveReport& rep) -> SolveReport& {
    makespan_ += coord.counters().total_cycles() - coord0;
    return checked(rep);
  };

  SolveReport rep;
  const double bnorm =
      sharded_norm2(coord, [&](int p) {
        return shards_[static_cast<std::size_t>(p)].b.data();
      });
  if (bnorm == 0.0) {
    for_shards([&](int p) {
      Shard& sh = shards_[static_cast<std::size_t>(p)];
      sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
      vfill(*sh.vpu, owned(sh.x, sh.rows), 0.0, strip_);
    });
    gather_x();
    rep.converged = true;
    rep.history.push_back(0.0);
    return finish(rep);
  }

  // r = b - A x
  exchange_into(&Shard::x);
  for_shards([&](int p) {
    Shard& sh = shards_[static_cast<std::size_t>(p)];
    seg_spmv(p, sh.x.data(), sh.ap.data());
    sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
    vsub(*sh.vpu, sh.b, owned(sh.ap, sh.rows), owned(sh.r, sh.rows), strip_);
  });
  const double rel0 = coord.sdiv(
      sharded_norm2(coord, [&](int p) {
        return shards_[static_cast<std::size_t>(p)].r.data();
      }),
      bnorm);
  rep.residual = rel0;
  rep.history.push_back(rel0);
  if (rel0 < opts.rel_tolerance) {
    gather_x();
    rep.converged = true;
    return finish(rep);
  }

  for_shards([&](int p) {
    Shard& sh = shards_[static_cast<std::size_t>(p)];
    sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
    vjacobi_apply(*sh.vpu, sh.dinv, sh.r, owned(sh.z, sh.rows), strip_);
    vcopy(*sh.vpu, sh.z, owned(sh.p, sh.rows), strip_);
  });
  double rz = sharded_dot(
      coord,
      [&](int p) { return shards_[static_cast<std::size_t>(p)].r.data(); },
      [&](int p) { return shards_[static_cast<std::size_t>(p)].z.data(); });

  for (int it = 0; it < opts.max_iterations; ++it) {
    exchange_into(&Shard::p);
    for_shards([&](int p) {
      Shard& sh = shards_[static_cast<std::size_t>(p)];
      seg_spmv(p, sh.p.data(), sh.ap.data());
      seg_dot_partials(p, sh.p.data(), sh.ap.data(), sh.rows);
    });
    const double pap = fold_sum(coord);
    if (pap == 0.0) {
      // Breakdown exit, mirroring vbreakdown_exit: the aborted iteration
      // is counted and the true residual appended.
      const double rel = coord.sdiv(
          sharded_norm2(coord, [&](int p) {
            return shards_[static_cast<std::size_t>(p)].r.data();
          }),
          bnorm);
      rep.iterations = it + 1;
      rep.residual = rel;
      rep.history.push_back(rel);
      if (rel < opts.rel_tolerance) rep.converged = true;
      gather_x();
      return finish(rep);
    }
    const double alpha = coord.sdiv(rz, pap);
    for_shards([&](int p) {
      Shard& sh = shards_[static_cast<std::size_t>(p)];
      sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
      vaxpy(*sh.vpu, alpha, owned(sh.p, sh.rows), owned(sh.x, sh.rows),
            strip_);
      vaxpy(*sh.vpu, -alpha, sh.ap, owned(sh.r, sh.rows), strip_);
    });
    const double rel = coord.sdiv(
        sharded_norm2(coord, [&](int p) {
          return shards_[static_cast<std::size_t>(p)].r.data();
        }),
        bnorm);
    rep.history.push_back(rel);
    rep.iterations = it + 1;
    rep.residual = rel;
    if (rel < opts.rel_tolerance) {
      rep.converged = true;
      gather_x();
      return finish(rep);
    }
    for_shards([&](int p) {
      Shard& sh = shards_[static_cast<std::size_t>(p)];
      sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
      vjacobi_apply(*sh.vpu, sh.dinv, sh.r, owned(sh.z, sh.rows), strip_);
    });
    const double rz_new = sharded_dot(
        coord,
        [&](int p) { return shards_[static_cast<std::size_t>(p)].r.data(); },
        [&](int p) { return shards_[static_cast<std::size_t>(p)].z.data(); });
    const double beta = coord.sdiv(rz_new, rz);
    rz = rz_new;
    for_shards([&](int p) {
      Shard& sh = shards_[static_cast<std::size_t>(p)];
      sim::ScopedPhase scope(sh.vpu->profiler(), phase_);
      vxpby(*sh.vpu, sh.z, beta, owned(sh.p, sh.rows), strip_);
    });
  }
  gather_x();
  return finish(rep);
}

}  // namespace vecfd::solver
