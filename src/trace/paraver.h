// vecfd::trace — Paraver-compatible trace export.
//
// The paper visualizes both Extrae and Vehave traces with Paraver (§2.1.4).
// We emit the textual .prv format (header + state/event records) so traces
// produced by the simulator can be inspected with the same workflow:
//   * one state record per phase region (state value = phase id), and
//   * one event record per traced vector instruction
//     (event type 42000001 = instruction kind, 42000002 = vector length).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/vehave_trace.h"

namespace vecfd::trace {

struct ParaverExportOptions {
  /// Scale factor from modelled cycles to the integer "time" of the trace.
  double time_per_cycle = 1.0;
  std::string application_name = "vecfd-miniapp";
};

/// Write @p trace as a .prv body to @p os.  Returns the number of records
/// written.  The companion .pcf/.row metadata is written by
/// `write_paraver_pcf` so the file set loads cleanly.
std::size_t write_paraver_prv(std::ostream& os, const VehaveTrace& trace,
                              const ParaverExportOptions& opts = {});

/// Write the .pcf metadata (event type names and value labels).
void write_paraver_pcf(std::ostream& os);

}  // namespace vecfd::trace
