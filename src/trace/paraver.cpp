#include "trace/paraver.h"

#include <cmath>
#include <ostream>

namespace vecfd::trace {

namespace {
constexpr long long kEventKind = 42000001;
constexpr long long kEventVl = 42000002;
constexpr long long kEventPhase = 42000003;

long long kind_code(sim::InstrKind k) {
  return static_cast<long long>(k) + 1;
}
}  // namespace

std::size_t write_paraver_prv(std::ostream& os, const VehaveTrace& trace,
                              const ParaverExportOptions& opts) {
  // Total trace time: summed cycles of recorded instructions.
  double total = 0.0;
  for (const TraceRecord& r : trace.records()) total += r.cycles;
  const auto total_time =
      static_cast<long long>(std::ceil(total * opts.time_per_cycle)) + 1;

  // Header: #Paraver (date): duration : nodes(cpus) : apps : app info
  os << "#Paraver (01/01/2024 at 00:00):" << total_time
     << ":1(1):1:1(1:1)\n";

  double clock = 0.0;
  std::size_t written = 0;
  for (const TraceRecord& r : trace.records()) {
    const auto t = static_cast<long long>(clock * opts.time_per_cycle);
    // Event record: 2:cpu:app:task:thread:time:type:value[:type:value...]
    os << "2:1:1:1:1:" << t << ':' << kEventKind << ':' << kind_code(r.kind)
       << ':' << kEventVl << ':' << r.vl << ':' << kEventPhase << ':'
       << r.phase << '\n';
    clock += r.cycles;
    ++written;
  }
  return written;
}

void write_paraver_pcf(std::ostream& os) {
  os << "EVENT_TYPE\n"
     << "0 " << kEventKind << " Instruction kind\n"
     << "VALUES\n";
  for (int k = 0; k <= static_cast<int>(sim::InstrKind::kVCtrl); ++k) {
    os << (k + 1) << ' '
       << sim::to_string(static_cast<sim::InstrKind>(k)) << '\n';
  }
  os << "\nEVENT_TYPE\n"
     << "0 " << kEventVl << " Vector length\n"
     << "\nEVENT_TYPE\n"
     << "0 " << kEventPhase << " Mini-app phase\n";
}

}  // namespace vecfd::trace
