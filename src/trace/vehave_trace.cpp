#include "trace/vehave_trace.h"

namespace vecfd::trace {

double VehaveTrace::avl(int phase) const {
  std::uint64_t n = 0;
  std::uint64_t sum = 0;
  for (const TraceRecord& r : records_) {
    if (!sim::is_vector(r.kind)) continue;
    if (phase >= 0 && r.phase != phase) continue;
    ++n;
    sum += static_cast<std::uint64_t>(r.vl);
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

std::uint64_t VehaveTrace::count(sim::InstrKind kind, int phase) const {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.kind != kind) continue;
    if (phase >= 0 && r.phase != phase) continue;
    ++n;
  }
  return n;
}

}  // namespace vecfd::trace
