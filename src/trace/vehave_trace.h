// vecfd::trace — Vehave-style per-instruction vector trace.
//
// The paper's RISC-V vector emulator (Vehave, §2.1.2) records every vector
// instruction executed — its type and vector length — which is how the
// authors measure AVL and diagnose the VEC2 regression (AVL = 4).  This
// class plays that role: it observes the simulated instruction stream and
// keeps a bounded record suitable for AVL queries and Paraver export.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/vpu.h"

namespace vecfd::trace {

struct TraceRecord {
  std::uint32_t seq = 0;    ///< instruction sequence number
  std::int16_t phase = 0;   ///< mini-app phase (0 = outside)
  sim::InstrKind kind{};    ///< instruction class
  std::int32_t vl = 0;      ///< vector length (0 for scalar/vconfig)
  float cycles = 0.0f;      ///< modelled execution cycles
};

class VehaveTrace final : public sim::InstrObserver {
 public:
  /// @param capacity maximum retained records; further records are counted
  ///        but dropped (`dropped()`), keeping memory bounded on big runs.
  explicit VehaveTrace(std::size_t capacity = 1u << 20)
      : capacity_(capacity) {
    records_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }

  void on_instr(int phase, sim::InstrKind kind, int vl,
                double cycles) override {
    ++seq_;
    if (!vectors_only_ || sim::is_vector(kind)) {
      if (records_.size() < capacity_) {
        records_.push_back(TraceRecord{seq_, static_cast<std::int16_t>(phase),
                                       kind, vl,
                                       static_cast<float>(cycles)});
      } else {
        ++dropped_;
      }
    }
  }

  /// Restrict recording to VPU instructions (Vehave's behaviour). Default on.
  void set_vectors_only(bool v) { vectors_only_ = v; }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::uint64_t dropped() const { return dropped_; }

  void clear() {
    records_.clear();
    dropped_ = 0;
    seq_ = 0;
  }

  /// Average vector length over recorded vector instructions, optionally
  /// restricted to one phase (phase < 0 means all phases).
  double avl(int phase = -1) const;

  /// Number of recorded vector instructions of a given kind / phase.
  std::uint64_t count(sim::InstrKind kind, int phase = -1) const;

 private:
  std::size_t capacity_;
  bool vectors_only_ = true;
  std::vector<TraceRecord> records_;
  std::uint64_t dropped_ = 0;
  std::uint32_t seq_ = 0;
};

}  // namespace vecfd::trace
