#include "metrics/metrics.h"

namespace vecfd::metrics {

VectorMetrics compute(const sim::Counters& c, int vlmax) {
  VectorMetrics m;
  m.vector_instrs = c.vector_instrs();
  m.total_instrs = c.total_instrs();
  m.vector_cycles = c.vector_cycles;
  m.total_cycles = c.total_cycles();

  if (m.total_instrs > 0) {
    m.mv = static_cast<double>(m.vector_instrs) /
           static_cast<double>(m.total_instrs);
  }
  if (m.total_cycles > 0.0) {
    m.av = m.vector_cycles / m.total_cycles;
  }
  if (m.vector_instrs > 0) {
    m.vcpi = m.vector_cycles / static_cast<double>(m.vector_instrs);
    m.avl = static_cast<double>(c.vl_sum) /
            static_cast<double>(m.vector_instrs);
  }
  if (vlmax > 0) {
    m.ev = m.avl / static_cast<double>(vlmax);
  }
  return m;
}

InstructionMix instruction_mix(const sim::Counters& c) {
  InstructionMix mix;
  mix.arith = c.varith_instrs;
  mix.mem_unit = c.vmem_unit_instrs;
  mix.mem_strided = c.vmem_strided_instrs;
  mix.mem_indexed = c.vmem_indexed_instrs;
  mix.ctrl = c.vctrl_instrs;
  return mix;
}

double l1_dcm_per_kilo_instr(const sim::Counters& c) {
  const std::uint64_t instrs = c.total_instrs();
  if (instrs == 0) return 0.0;
  return 1000.0 * static_cast<double>(c.l1_misses) /
         static_cast<double>(instrs);
}

double memory_instr_fraction(const sim::Counters& c) {
  const std::uint64_t instrs = c.total_instrs();
  if (instrs == 0) return 0.0;
  return static_cast<double>(c.scalar_mem_instrs + c.vmem_instrs()) /
         static_cast<double>(instrs);
}

}  // namespace vecfd::metrics
