// vecfd::metrics — the paper's vectorization-efficiency metrics (§2.2).
//
//   Mv  = iv / it        vector instruction mix            ∈ [0, 1]
//   Av  = cv / ct        vector activity                   ∈ [0, 1]
//   Cv  = cv / iv        cycles per vector instruction (vCPI)
//   AVL = Σ vl_k / iv    average vector length
//   Ev  = AVL / vlmax    vector occupancy                  ∈ [0, 1]
//
// All are pure functions of the hardware Counters plus the machine's vlmax,
// so they can be evaluated for a whole run or any instrumented phase.
#pragma once

#include <cstdint>

#include "sim/counters.h"

namespace vecfd::metrics {

struct VectorMetrics {
  double mv = 0.0;    ///< vector instruction mix
  double av = 0.0;    ///< vector activity
  double vcpi = 0.0;  ///< cycles per vector instruction
  double avl = 0.0;   ///< average vector length
  double ev = 0.0;    ///< vector occupancy

  std::uint64_t vector_instrs = 0;
  std::uint64_t total_instrs = 0;
  double vector_cycles = 0.0;
  double total_cycles = 0.0;
};

/// Evaluate the §2.2 metrics for @p c on a machine with @p vlmax.
/// Degenerate inputs (no instructions, no vector instructions) yield zeros
/// rather than NaNs so reports stay printable.
VectorMetrics compute(const sim::Counters& c, int vlmax);

/// Breakdown of the vector-instruction population by class — the data behind
/// Figure 3 ("almost 70% of vector instructions are memory type").
struct InstructionMix {
  std::uint64_t arith = 0;
  std::uint64_t mem_unit = 0;
  std::uint64_t mem_strided = 0;
  std::uint64_t mem_indexed = 0;
  std::uint64_t ctrl = 0;

  std::uint64_t memory() const { return mem_unit + mem_strided + mem_indexed; }
  std::uint64_t total() const { return arith + memory() + ctrl; }
  /// Fraction of vector instructions that access memory.
  double memory_fraction() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(memory()) / static_cast<double>(t);
  }
};

InstructionMix instruction_mix(const sim::Counters& c);

/// L1 data-cache misses per kilo-instruction — the regressor of Table 6.
double l1_dcm_per_kilo_instr(const sim::Counters& c);

/// Fraction of executed instructions that access memory (scalar + vector) —
/// the second regressor of Table 6.
double memory_instr_fraction(const sim::Counters& c);

}  // namespace vecfd::metrics
