#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vecfd::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string fmt_speedup(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string banner(const std::string& artifact, const std::string& title) {
  std::ostringstream os;
  const std::string line(72, '=');
  os << line << '\n'
     << artifact << " — " << title << '\n'
     << line << '\n';
  return os.str();
}

}  // namespace vecfd::core
