#include "core/experiment.h"

#include <cstddef>

#include "core/parallel.h"

namespace vecfd::core {

Experiment::Experiment(const fem::Mesh& mesh, const fem::State& state)
    : mesh_(&mesh), state_(&state) {}

Measurement Experiment::run(const sim::MachineConfig& machine,
                            const miniapp::MiniAppConfig& app) const {
  miniapp::MiniApp ma(*mesh_, *state_, app);
  sim::Vpu vpu(machine);
  miniapp::MiniAppResult r = ma.run(vpu);

  Measurement m;
  m.machine = machine;
  m.app = app;
  m.plan = ma.plan(machine);
  m.total = r.total;
  m.total_cycles = r.total.total_cycles();
  for (int p = 0; p <= miniapp::kNumInstrumentedPhases; ++p) {
    m.phase[p] = r.phase[p];
    m.phase_metrics[p] = metrics::compute(r.phase[p], machine.vlmax);
  }
  m.overall = metrics::compute(r.total, machine.vlmax);
  m.solve = std::move(r.solve);
  m.has_solve = r.has_solve;
  m.rhs = std::move(r.rhs);
  return m;
}

std::vector<Measurement> Experiment::run_points(
    std::span<const SweepPoint> points, int jobs) const {
  std::vector<Measurement> out(points.size());
  parallel_for_index(points.size(), jobs, [&](std::size_t i) {
    out[i] = run(points[i].machine, points[i].app);
  });
  return out;
}

std::vector<Measurement> Experiment::sweep_vector_sizes(
    const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
    std::span<const int> sizes, int jobs) const {
  std::vector<SweepPoint> points;
  points.reserve(sizes.size());
  for (int vs : sizes) {
    app.vector_size = vs;
    points.push_back({machine, app});
  }
  return run_points(points, jobs);
}

std::vector<Measurement> Experiment::sweep_opt_levels(
    const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
    std::span<const miniapp::OptLevel> levels, int jobs) const {
  std::vector<SweepPoint> points;
  points.reserve(levels.size());
  for (miniapp::OptLevel o : levels) {
    app.opt = o;
    points.push_back({machine, app});
  }
  return run_points(points, jobs);
}

std::vector<Measurement> Experiment::sweep_grid(
    const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
    std::span<const int> sizes, std::span<const miniapp::OptLevel> levels,
    int jobs) const {
  std::vector<SweepPoint> points;
  points.reserve(sizes.size() * levels.size());
  for (int vs : sizes) {
    for (miniapp::OptLevel o : levels) {
      app.vector_size = vs;
      app.opt = o;
      points.push_back({machine, app});
    }
  }
  return run_points(points, jobs);
}

}  // namespace vecfd::core
