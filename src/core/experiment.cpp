#include "core/experiment.h"

namespace vecfd::core {

Experiment::Experiment(const fem::Mesh& mesh, const fem::State& state)
    : mesh_(&mesh), state_(&state) {}

Measurement Experiment::run(const sim::MachineConfig& machine,
                            const miniapp::MiniAppConfig& app) const {
  miniapp::MiniApp ma(*mesh_, *state_, app);
  sim::Vpu vpu(machine);
  miniapp::MiniAppResult r = ma.run(vpu);

  Measurement m;
  m.machine = machine;
  m.app = app;
  m.plan = ma.plan(machine);
  m.total = r.total;
  m.total_cycles = r.total.total_cycles();
  for (int p = 0; p <= 8; ++p) {
    m.phase[p] = r.phase[p];
    m.phase_metrics[p] = metrics::compute(r.phase[p], machine.vlmax);
  }
  m.overall = metrics::compute(r.total, machine.vlmax);
  m.rhs = std::move(r.rhs);
  return m;
}

std::vector<Measurement> Experiment::sweep_vector_sizes(
    const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
    std::span<const int> sizes) const {
  std::vector<Measurement> out;
  out.reserve(sizes.size());
  for (int vs : sizes) {
    app.vector_size = vs;
    out.push_back(run(machine, app));
  }
  return out;
}

std::vector<Measurement> Experiment::sweep_opt_levels(
    const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
    std::span<const miniapp::OptLevel> levels) const {
  std::vector<Measurement> out;
  out.reserve(levels.size());
  for (miniapp::OptLevel o : levels) {
    app.opt = o;
    out.push_back(run(machine, app));
  }
  return out;
}

}  // namespace vecfd::core
