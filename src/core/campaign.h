// vecfd::core — transient co-design campaigns.
//
// The assembly study sweeps VECTOR_SIZE × optimization level on one machine
// (core/experiment.h); the transient study batches whole time-loop runs
// over scenario × platform × VECTOR_SIZE, on the same work-stealing fan-out
// (core/parallel.h).  Every campaign point owns its TimeLoop (scenario
// state) and Vpu; the per-scenario meshes are built once and shared
// read-only, so parallel campaigns return results in deterministic point
// order exactly like the assembly sweeps.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "fem/mesh.h"
#include "metrics/metrics.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "sim/machine_config.h"

namespace vecfd::core {

/// One transient campaign point: which scenario (index into the campaign's
/// scenario list), which machine, and the loop shape.
struct CampaignPoint {
  int scenario = 0;
  sim::MachineConfig machine;
  int vector_size = 240;
  int steps = 5;
  miniapp::OptLevel opt = miniapp::OptLevel::kVec1;
  /// Phase-9 path (see TimeLoopConfig::blocked_momentum): true = fused
  /// multi-RHS block solve, false = sequential per-component reference.
  bool blocked_momentum = true;
  /// Operator storage format of the instrumented solves (csr-host / ell /
  /// sell — see TimeLoopConfig::format and DESIGN.md §6).
  solver::SpmvFormat format = solver::SpmvFormat::kEll;
  /// RCM solve-space renumbering (see TimeLoopConfig::rcm_renumber).
  bool rcm_renumber = false;
  /// Pressure preconditioner rung (see TimeLoopConfig::precond and the
  /// ladder of solver/preconditioner.h; `vecfd-run --precond`).
  solver::PrecondKind precond = solver::PrecondKind::kJacobi;
  /// Pressure-solve shard count (see TimeLoopConfig::shards and DESIGN.md
  /// §9; `vecfd-run --shards`).  Fields and residual histories are
  /// bit-identical across shard counts, so per-point convergence columns
  /// (iterations, failures, divergence) are shard-invariant by contract.
  int shards = 1;
};

/// One executed campaign point: the full TimeLoopResult plus the §2.2
/// metrics per phase (1..kNumInstrumentedPhases) and a convergence digest.
struct CampaignRun {
  std::string scenario;
  CampaignPoint point;
  miniapp::TimeLoopResult loop;

  double total_cycles = 0.0;
  metrics::VectorMetrics overall;
  std::array<metrics::VectorMetrics, miniapp::kNumInstrumentedPhases + 1>
      phase_metrics{};

  int momentum_iterations = 0;  ///< Σ over steps and components (phase 9)
  int pressure_iterations = 0;  ///< Σ over steps (phase 10)
  double final_divergence = 0.0;  ///< div_after of the last step
  bool all_converged = false;
  /// Σ over steps of solves that exited through SolveReport::failure
  /// (setup errors such as a zero operator diagonal) — distinct from a
  /// mere non-convergence, which leaves failure empty.
  int solver_failures = 0;

  double phase_cycles(int p) const {
    return loop.phase[static_cast<std::size_t>(p)].total_cycles();
  }
};

class Campaign {
 public:
  /// Builds one mesh per scenario up front (campaigns share them
  /// read-only).  Callers wanting refined/smaller meshes adjust
  /// Scenario::mesh before constructing the Campaign.
  explicit Campaign(std::vector<miniapp::Scenario> scenarios =
                        miniapp::all_scenarios());

  const std::vector<miniapp::Scenario>& scenarios() const {
    return scenarios_;
  }
  const fem::Mesh& mesh(int scenario_index) const {
    return meshes_[static_cast<std::size_t>(scenario_index)];
  }

  /// The full grid: every scenario × @p machines × @p sizes, scenario-major
  /// then machine then size.
  std::vector<CampaignPoint> grid(std::span<const sim::MachineConfig> machines,
                                  std::span<const int> sizes,
                                  int steps) const;

  /// Run one point.
  CampaignRun run(const CampaignPoint& point) const;

  /// Run every point, fanning out over @p jobs workers (0 = all cores,
  /// 1 = serial); results land in point order.
  std::vector<CampaignRun> run_points(std::span<const CampaignPoint> points,
                                      int jobs = 0) const;

 private:
  std::vector<miniapp::Scenario> scenarios_;
  std::vector<fem::Mesh> meshes_;
};

}  // namespace vecfd::core
