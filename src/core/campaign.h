// vecfd::core — transient co-design campaigns.
//
// The assembly study sweeps VECTOR_SIZE × optimization level on one machine
// (core/experiment.h); the transient study batches whole time-loop runs
// over scenario × platform × VECTOR_SIZE, on the same work-stealing fan-out
// (core/parallel.h).  Every campaign point owns its TimeLoop (scenario
// state) and Vpu; the per-scenario meshes are built once and shared
// read-only, so parallel campaigns return results in deterministic point
// order exactly like the assembly sweeps.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "fem/mesh.h"
#include "metrics/metrics.h"
#include "miniapp/scenarios.h"
#include "miniapp/time_loop.h"
#include "sim/fault_injection.h"
#include "sim/machine_config.h"

namespace vecfd::core {

/// One transient campaign point: which scenario (index into the campaign's
/// scenario list), which machine, and the loop shape.
struct CampaignPoint {
  int scenario = 0;
  sim::MachineConfig machine;
  int vector_size = 240;
  int steps = 5;
  miniapp::OptLevel opt = miniapp::OptLevel::kVec1;
  /// Phase-9 path (see TimeLoopConfig::blocked_momentum): true = fused
  /// multi-RHS block solve, false = sequential per-component reference.
  bool blocked_momentum = true;
  /// Operator storage format of the instrumented solves (csr-host / ell /
  /// sell — see TimeLoopConfig::format and DESIGN.md §6).
  solver::SpmvFormat format = solver::SpmvFormat::kEll;
  /// RCM solve-space renumbering (see TimeLoopConfig::rcm_renumber).
  bool rcm_renumber = false;
  /// Pressure preconditioner rung (see TimeLoopConfig::precond and the
  /// ladder of solver/preconditioner.h; `vecfd-run --precond`).
  solver::PrecondKind precond = solver::PrecondKind::kJacobi;
  /// Pressure-solve shard count (see TimeLoopConfig::shards and DESIGN.md
  /// §9; `vecfd-run --shards`).  Fields and residual histories are
  /// bit-identical across shard counts, so per-point convergence columns
  /// (iterations, failures, divergence) are shard-invariant by contract.
  int shards = 1;
};

/// One executed campaign point: the full TimeLoopResult plus the §2.2
/// metrics per phase (1..kNumInstrumentedPhases) and a convergence digest.
struct CampaignRun {
  std::string scenario;
  CampaignPoint point;
  miniapp::TimeLoopResult loop;

  double total_cycles = 0.0;
  metrics::VectorMetrics overall;
  std::array<metrics::VectorMetrics, miniapp::kNumInstrumentedPhases + 1>
      phase_metrics{};

  int momentum_iterations = 0;  ///< Σ over steps and components (phase 9)
  int pressure_iterations = 0;  ///< Σ over steps (phase 10)
  double final_divergence = 0.0;  ///< div_after of the last step
  bool all_converged = false;
  /// Σ over steps of solves that exited through SolveReport::failure
  /// (setup errors such as a zero operator diagonal) — distinct from a
  /// mere non-convergence, which leaves failure empty.
  int solver_failures = 0;

  double phase_cycles(int p) const {
    return loop.phase[static_cast<std::size_t>(p)].total_cycles();
  }
};

/// Per-run robustness knobs threaded into one Campaign::run invocation:
/// the planned fault (if any) and the checkpoint protocol.  The default
/// object is inert — run(point) delegates with RunExtras{} and is
/// bit-for-bit the historic behaviour.
struct RunExtras {
  /// Planned fault for this run (sim/fault_injection.h); fault.armed() ==
  /// false means a clean run.
  sim::FaultSpec fault{};
  /// Epoch cadence forwarded to TimeLoopConfig::checkpoint_every (0 = the
  /// historic no-checkpoint instruction stream).
  int checkpoint_every = 0;
  /// Checkpoint file this run saves to (and resumes from, when `resume`).
  /// Empty = no sink even if checkpoint_every > 0 (epoch flushes still
  /// happen — the cadence, not the sink, defines the counter stream).
  std::string checkpoint_file;
  /// Restore from `checkpoint_file` before running, if the file exists.
  /// The checkpoint's config hash must match this point's; a mismatch
  /// throws rather than silently breaking bit-identity.
  bool resume = false;
};

/// Graceful-degradation retry budget for fault-tolerant campaigns.
struct RetryPolicy {
  /// Retries after the first attempt (0 = fail immediately, the historic
  /// behaviour).  Each retry first steps the point down one rung of
  /// degrade_point()'s ladder.
  int max_retries = 0;
};

/// Campaign-level fault-tolerance options (run_points_ft).
struct CampaignFtOptions {
  RetryPolicy retry;
  /// Deterministic fault plan, already materialized for this campaign's
  /// point count (nullptr = no faults).  Faults fire on attempt 0 only:
  /// retries are the recovery path and must run clean.
  const sim::FaultPlan* faults = nullptr;
  /// Directory for per-point checkpoint files (`point_<i>.ckpt`); empty =
  /// no checkpointing.  Checkpoints are written on attempt 0 only — a
  /// degraded retry runs under a different config hash and must not
  /// overwrite a resumable attempt-0 checkpoint with an unloadable one.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  /// Resume every point from its checkpoint file where one exists.
  bool resume = false;
};

/// One fault-tolerant campaign outcome: the final run (possibly from a
/// degraded point), the originally requested point, and the retry digest
/// that lands in the campaign CSV (`attempts`, `degraded`,
/// `final_status`).
struct CampaignOutcome {
  CampaignRun run;
  CampaignPoint requested;
  int attempts = 0;
  bool degraded = false;
  /// "ok" | "degraded" | "failed".
  std::string final_status;
  /// Exception text of the final attempt, when that attempt never produced
  /// a run (e.g. an un-retried worker death).  Empty whenever `run` is
  /// real — including runs that completed but failed their solves.
  std::string error;
};

/// Step @p point one rung down the graceful-degradation ladder, cheapest
/// robustness concession first: preconditioner deflate → cheby → jacobi,
/// then shards → 1, then operator format sell → ell → csr-host.  Returns
/// false when the point is already on the bottom rung everywhere.
bool degrade_point(CampaignPoint& point);

/// Did a completed run fail?  True on instrumented solver failures or a
/// non-finite final divergence — NOT on mere non-convergence, which the
/// campaign CSV already reports per point without failing it.
bool attempt_failed(const CampaignRun& run);

class Campaign {
 public:
  /// Builds one mesh per scenario up front (campaigns share them
  /// read-only).  Callers wanting refined/smaller meshes adjust
  /// Scenario::mesh before constructing the Campaign.
  explicit Campaign(std::vector<miniapp::Scenario> scenarios =
                        miniapp::all_scenarios());

  const std::vector<miniapp::Scenario>& scenarios() const {
    return scenarios_;
  }
  const fem::Mesh& mesh(int scenario_index) const {
    return meshes_[static_cast<std::size_t>(scenario_index)];
  }

  /// The full grid: every scenario × @p machines × @p sizes, scenario-major
  /// then machine then size.
  std::vector<CampaignPoint> grid(std::span<const sim::MachineConfig> machines,
                                  std::span<const int> sizes,
                                  int steps) const;

  /// Run one point.
  CampaignRun run(const CampaignPoint& point) const;

  /// Run one point with robustness extras: an injected fault and/or the
  /// checkpoint/resume protocol (see RunExtras).
  CampaignRun run(const CampaignPoint& point, const RunExtras& extras) const;

  /// Run every point, fanning out over @p jobs workers (0 = all cores,
  /// 1 = serial); results land in point order.  Exceptions no longer
  /// short-circuit the sweep: every point runs, then the first captured
  /// exception (in point order) is rethrown.
  std::vector<CampaignRun> run_points(std::span<const CampaignPoint> points,
                                      int jobs = 0) const;

  /// Fault-tolerant sweep: run every point with per-point isolation (a
  /// throwing point becomes a "failed" outcome, never an exception here),
  /// injecting @p opts.faults on first attempts and walking the
  /// degradation ladder on failures up to the retry budget.  Outcomes land
  /// in point order.
  std::vector<CampaignOutcome> run_points_ft(
      std::span<const CampaignPoint> points, const CampaignFtOptions& opts,
      int jobs = 0) const;

 private:
  std::vector<miniapp::Scenario> scenarios_;
  std::vector<fem::Mesh> meshes_;
};

}  // namespace vecfd::core
