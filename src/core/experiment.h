// vecfd::core — experiment runner.
//
// The paper's methodology (§3) is a measurement loop: run the instrumented
// mini-app on a machine, read the per-phase counters, evaluate the §2.2
// metrics, decide the next optimization.  This module packages one turn of
// that loop (run → Measurement) and the sweeps the evaluation section is
// built from (VECTOR_SIZE × optimization level × machine).
//
// Sweeps fan out over a thread pool: every sweep point owns an independent
// Vpu and MiniApp, the shared Mesh/State are only read, and results land in
// a pre-sized vector slot per point — so parallel runs are race-free and
// return measurements in the same deterministic order as a serial loop.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fem/mesh.h"
#include "fem/state.h"
#include "metrics/metrics.h"
#include "miniapp/config.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"
#include "sim/machine_config.h"

namespace vecfd::core {

/// One measured mini-app execution.
struct Measurement {
  sim::MachineConfig machine;
  miniapp::MiniAppConfig app;
  miniapp::PhasePlan plan;

  double total_cycles = 0.0;
  sim::Counters total;
  /// Per-phase counters, 1..kNumInstrumentedPhases (0 = outside).  Phase 9
  /// is the Krylov solve and stays zero unless app.run_solve is set.
  std::array<sim::Counters, miniapp::kNumInstrumentedPhases + 1> phase{};

  metrics::VectorMetrics overall;
  std::array<metrics::VectorMetrics, miniapp::kNumInstrumentedPhases + 1>
      phase_metrics{};

  /// Phase-9 solve convergence report (valid when has_solve).
  solver::SolveReport solve;
  bool has_solve = false;

  /// Assembled RHS (kept so callers can verify results / chain a solve).
  std::vector<double> rhs;

  double phase_cycles(int p) const { return phase[p].total_cycles(); }
  /// Fraction of total cycles spent in phase p.
  double phase_share(int p) const {
    return total_cycles > 0.0 ? phase_cycles(p) / total_cycles : 0.0;
  }
};

/// One point of a sweep: a machine plus a full mini-app configuration.
struct SweepPoint {
  sim::MachineConfig machine;
  miniapp::MiniAppConfig app;
};

class Experiment {
 public:
  /// Mesh and state must outlive the Experiment.
  Experiment(const fem::Mesh& mesh, const fem::State& state);

  /// Run one configuration on one machine.
  Measurement run(const sim::MachineConfig& machine,
                  const miniapp::MiniAppConfig& app) const;

  /// Run every sweep point, fanning out over @p jobs worker threads
  /// (jobs <= 0 → std::thread::hardware_concurrency).  Results are returned
  /// in point order regardless of scheduling, byte-identical to a serial
  /// loop over run().
  std::vector<Measurement> run_points(std::span<const SweepPoint> points,
                                      int jobs = 0) const;

  /// Sweep VECTOR_SIZE at a fixed optimization level.
  std::vector<Measurement> sweep_vector_sizes(
      const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
      std::span<const int> sizes, int jobs = 0) const;

  /// Sweep optimization levels at a fixed VECTOR_SIZE.
  std::vector<Measurement> sweep_opt_levels(
      const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
      std::span<const miniapp::OptLevel> levels, int jobs = 0) const;

  /// The full evaluation grid: sizes × levels on one machine, size-major
  /// (all levels of sizes[0], then sizes[1], ...).
  std::vector<Measurement> sweep_grid(
      const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
      std::span<const int> sizes, std::span<const miniapp::OptLevel> levels,
      int jobs = 0) const;

  const fem::Mesh& mesh() const { return *mesh_; }
  const fem::State& state() const { return *state_; }

 private:
  const fem::Mesh* mesh_;
  const fem::State* state_;
};

/// All optimization levels in paper order.
inline constexpr miniapp::OptLevel kAllOptLevels[] = {
    miniapp::OptLevel::kScalar, miniapp::OptLevel::kVanilla,
    miniapp::OptLevel::kVec2, miniapp::OptLevel::kIVec2,
    miniapp::OptLevel::kVec1};

/// The vectorized levels the evaluation sweeps (§4 figures): everything the
/// auto-vectorizer produces, scalar baseline excluded.
inline constexpr miniapp::OptLevel kSweepOptLevels[] = {
    miniapp::OptLevel::kVanilla, miniapp::OptLevel::kVec2,
    miniapp::OptLevel::kIVec2, miniapp::OptLevel::kVec1};

}  // namespace vecfd::core
