// vecfd::core — experiment runner.
//
// The paper's methodology (§3) is a measurement loop: run the instrumented
// mini-app on a machine, read the per-phase counters, evaluate the §2.2
// metrics, decide the next optimization.  This module packages one turn of
// that loop (run → Measurement) and the sweeps the evaluation section is
// built from (VECTOR_SIZE × optimization level × machine).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fem/mesh.h"
#include "fem/state.h"
#include "metrics/metrics.h"
#include "miniapp/config.h"
#include "miniapp/driver.h"
#include "platforms/platforms.h"
#include "sim/machine_config.h"

namespace vecfd::core {

/// One measured mini-app execution.
struct Measurement {
  sim::MachineConfig machine;
  miniapp::MiniAppConfig app;
  miniapp::PhasePlan plan;

  double total_cycles = 0.0;
  sim::Counters total;
  std::array<sim::Counters, 9> phase{};  ///< 1..8 (0 = outside)

  metrics::VectorMetrics overall;
  std::array<metrics::VectorMetrics, 9> phase_metrics{};

  /// Assembled RHS (kept so callers can verify results / chain a solve).
  std::vector<double> rhs;

  double phase_cycles(int p) const { return phase[p].total_cycles(); }
  /// Fraction of total cycles spent in phase p.
  double phase_share(int p) const {
    return total_cycles > 0.0 ? phase_cycles(p) / total_cycles : 0.0;
  }
};

class Experiment {
 public:
  /// Mesh and state must outlive the Experiment.
  Experiment(const fem::Mesh& mesh, const fem::State& state);

  /// Run one configuration on one machine.
  Measurement run(const sim::MachineConfig& machine,
                  const miniapp::MiniAppConfig& app) const;

  /// Sweep VECTOR_SIZE at a fixed optimization level.
  std::vector<Measurement> sweep_vector_sizes(
      const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
      std::span<const int> sizes) const;

  /// Sweep optimization levels at a fixed VECTOR_SIZE.
  std::vector<Measurement> sweep_opt_levels(
      const sim::MachineConfig& machine, miniapp::MiniAppConfig app,
      std::span<const miniapp::OptLevel> levels) const;

  const fem::Mesh& mesh() const { return *mesh_; }
  const fem::State& state() const { return *state_; }

 private:
  const fem::Mesh* mesh_;
  const fem::State* state_;
};

/// All optimization levels in paper order.
inline constexpr miniapp::OptLevel kAllOptLevels[] = {
    miniapp::OptLevel::kScalar, miniapp::OptLevel::kVanilla,
    miniapp::OptLevel::kVec2, miniapp::OptLevel::kIVec2,
    miniapp::OptLevel::kVec1};

}  // namespace vecfd::core
