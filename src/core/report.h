// vecfd::core — paper-style table rendering.
//
// Every bench binary prints its table/figure data through these helpers so
// the output format is uniform and diffable (EXPERIMENTS.md records it).
#pragma once

#include <string>
#include <vector>

namespace vecfd::core {

/// Simple aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// number formatting helpers
std::string fmt(double v, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);  ///< 0.42 → "42.0%"
std::string fmt_speedup(double v);                        ///< 7.6 → "7.60x"
std::string fmt_sci(double v, int precision = 2);         ///< 1.43e+06

/// Render a title banner for a bench binary, naming the paper artifact.
std::string banner(const std::string& artifact, const std::string& title);

}  // namespace vecfd::core
