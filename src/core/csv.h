// vecfd::core — CSV export of measurements.
//
// Plotting the paper's figures from fresh data is part of the workflow this
// library supports; every Measurement row carries the §2.2 metrics and the
// per-phase counters so a spreadsheet or matplotlib script can regenerate
// any chart of the evaluation.
#pragma once

#include <iosfwd>
#include <span>

#include "core/campaign.h"
#include "core/experiment.h"

namespace vecfd::core {

/// Write the header row of `write_measurement_row`.
void write_csv_header(std::ostream& os);

/// One CSV row per measurement: machine, config (the requested
/// `vector_size` plus the `effective_strip` the solve kernels actually ran
/// at — solver::solve_effective_strip), totals, §2.2 metrics and per-phase
/// cycles/Mv/AVL for phases 1..miniapp::kNumInstrumentedPhases (ph9 is the
/// Krylov solve; ph10/ph11 belong to the transient loop; unused phase
/// columns are zero).
void write_measurement_row(std::ostream& os, const Measurement& m);

/// Convenience: header + all rows.
void write_csv(std::ostream& os, std::span<const Measurement> ms);

/// Header row of `write_campaign_row`.
void write_campaign_csv_header(std::ostream& os);

/// One CSV row per transient campaign run: scenario, machine, loop shape,
/// totals, §2.2 metrics, per-phase cycles/Mv/AVL for every instrumented
/// phase (1..kNumInstrumentedPhases — the same derivation as the sweep
/// schema), the convergence digest (Krylov iterations, final projected
/// divergence) and the retry digest (a plain run writes the
/// `attempts=1,degraded=0,final_status=ok` defaults).
void write_campaign_row(std::ostream& os, const CampaignRun& r);

/// One CSV row per fault-tolerant outcome: the same schema, with the real
/// `attempts`/`degraded`/`final_status` digest.  An outcome whose final
/// attempt never produced a run (CampaignOutcome::error) still emits a
/// full-width row — identity columns plus zeros through the same counter
/// registry iteration — so the CSV never goes ragged.
void write_campaign_outcome_row(std::ostream& os, const CampaignOutcome& o);

/// Convenience: header + all rows.
void write_campaign_csv(std::ostream& os, std::span<const CampaignRun> rs);

/// Convenience: header + all outcome rows.
void write_campaign_csv(std::ostream& os,
                        std::span<const CampaignOutcome> outcomes);

}  // namespace vecfd::core
