// vecfd::core — CSV export of measurements.
//
// Plotting the paper's figures from fresh data is part of the workflow this
// library supports; every Measurement row carries the §2.2 metrics and the
// per-phase counters so a spreadsheet or matplotlib script can regenerate
// any chart of the evaluation.
#pragma once

#include <iosfwd>
#include <span>

#include "core/experiment.h"

namespace vecfd::core {

/// Write the header row of `write_measurement_row`.
void write_csv_header(std::ostream& os);

/// One CSV row per measurement: machine, config, totals, §2.2 metrics and
/// per-phase cycles/Mv/AVL for phases 1..miniapp::kNumInstrumentedPhases
/// (ph9 is the Krylov solve; its columns are zero when run_solve is off).
void write_measurement_row(std::ostream& os, const Measurement& m);

/// Convenience: header + all rows.
void write_csv(std::ostream& os, std::span<const Measurement> ms);

}  // namespace vecfd::core
