// vecfd::core — the sweep-engine fan-out primitive.
//
// Both the assembly sweeps (core/experiment.h) and the transient campaigns
// (core/campaign.h) map an index range onto independent, pre-sized result
// slots.  This helper owns the shared mechanics: dynamic work-stealing over
// the index (expensive points don't serialize behind cheap ones), each
// worker writing only its claimed slot (deterministic, race-free order),
// and first-exception propagation after all workers join.
//
// This header and core/thread_annotations.h are the ONLY files allowed to
// touch std::thread / std::mutex directly (vecfd-lint rule `raw-thread`);
// everything shared across the workers is annotated for clang's
// -Wthread-safety analysis, which the CI lint job compiles with -Werror.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace vecfd::core {

/// First-exception capture shared by a worker pool: many workers may fail,
/// exactly one exception survives to be rethrown on the spawning thread.
/// The `failed` flag is read on the hot claim path, so it stays a relaxed
/// atomic outside the capability; the exception slot itself is written at
/// most once per pool and only under the mutex.
class FirstError {
 public:
  /// Record @p e if no earlier failure was recorded.
  void record(std::exception_ptr e) VECFD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!error_) error_ = e;
    failed_.store(true, std::memory_order_relaxed);
  }

  /// Cheap cross-thread poll: has any worker failed yet?
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// Rethrow the recorded exception, if any.  Call after the pool joined
  /// (single-threaded again), never from inside a worker.
  void rethrow_if_set() VECFD_EXCLUDES(mu_) {
    std::exception_ptr e;
    {
      MutexLock lock(mu_);
      e = error_;
    }
    if (e) std::rethrow_exception(e);
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ VECFD_GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

/// Invoke `fn(i)` for every i in [0, count), fanning out over @p jobs
/// worker threads (jobs <= 0 → std::thread::hardware_concurrency; 1 →
/// plain serial loop).  `fn` must be safe to call concurrently for
/// distinct indices.  The first exception thrown by any invocation is
/// rethrown here after the pool drains.
template <class Fn>
void parallel_for_index(std::size_t count, int jobs, Fn&& fn) {
  if (count == 0) return;

  unsigned workers = jobs > 0 ? static_cast<unsigned>(jobs)
                              : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = static_cast<unsigned>(count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  FirstError error;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || error.failed()) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        error.record(std::current_exception());
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  error.rethrow_if_set();
}

/// Collect-all-errors variant: invoke `fn(i)` for every i in [0, count)
/// like parallel_for_index, but NEVER short-circuit — a throwing index is
/// captured into its own slot of the returned vector (null = success) and
/// the remaining indices still run.  Fault-tolerant campaigns
/// (core/campaign.h run_points_ft) use this so one dead point cannot take
/// the rest of the sweep down with it; the sweep engine keeps the
/// first-error semantics above.
template <class Fn>
std::vector<std::exception_ptr> parallel_for_index_collect(std::size_t count,
                                                           int jobs,
                                                           Fn&& fn) {
  std::vector<std::exception_ptr> errors(count);
  if (count == 0) return errors;

  unsigned workers = jobs > 0 ? static_cast<unsigned>(jobs)
                              : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = static_cast<unsigned>(count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    return errors;
  }

  std::atomic<std::size_t> next{0};

  // Each worker writes only errors[i] for indices it claimed, so the slots
  // need no lock; the joins below publish them to the spawning thread.
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return errors;
}

}  // namespace vecfd::core
