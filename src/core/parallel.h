// vecfd::core — the sweep-engine fan-out primitive.
//
// Both the assembly sweeps (core/experiment.h) and the transient campaigns
// (core/campaign.h) map an index range onto independent, pre-sized result
// slots.  This helper owns the shared mechanics: dynamic work-stealing over
// the index (expensive points don't serialize behind cheap ones), each
// worker writing only its claimed slot (deterministic, race-free order),
// and first-exception propagation after all workers join.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vecfd::core {

/// Invoke `fn(i)` for every i in [0, count), fanning out over @p jobs
/// worker threads (jobs <= 0 → std::thread::hardware_concurrency; 1 →
/// plain serial loop).  `fn` must be safe to call concurrently for
/// distinct indices.  The first exception thrown by any invocation is
/// rethrown here after the pool drains.
template <class Fn>
void parallel_for_index(std::size_t count, int jobs, Fn&& fn) {
  if (count == 0) return;

  unsigned workers = jobs > 0 ? static_cast<unsigned>(jobs)
                              : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = static_cast<unsigned>(count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace vecfd::core
