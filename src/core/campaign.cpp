#include "core/campaign.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/parallel.h"
#include "miniapp/checkpoint.h"
#include "sim/vpu.h"

namespace vecfd::core {

namespace {

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

bool degrade_point(CampaignPoint& point) {
  using solver::PrecondKind;
  using solver::SpmvFormat;
  if (point.precond == PrecondKind::kDeflate) {
    point.precond = PrecondKind::kCheby;
    return true;
  }
  if (point.precond == PrecondKind::kCheby) {
    point.precond = PrecondKind::kJacobi;
    return true;
  }
  if (point.shards > 1) {
    point.shards = 1;
    return true;
  }
  if (point.format == SpmvFormat::kSell) {
    point.format = SpmvFormat::kEll;
    return true;
  }
  if (point.format == SpmvFormat::kEll) {
    point.format = SpmvFormat::kCsrHost;
    return true;
  }
  return false;
}

bool attempt_failed(const CampaignRun& run) {
  return run.solver_failures > 0 || !std::isfinite(run.final_divergence);
}

Campaign::Campaign(std::vector<miniapp::Scenario> scenarios)
    : scenarios_(std::move(scenarios)) {
  if (scenarios_.empty()) {
    throw std::invalid_argument("Campaign: no scenarios");
  }
  meshes_.reserve(scenarios_.size());
  for (const miniapp::Scenario& s : scenarios_) {
    meshes_.emplace_back(s.mesh);
  }
}

std::vector<CampaignPoint> Campaign::grid(
    std::span<const sim::MachineConfig> machines, std::span<const int> sizes,
    int steps) const {
  std::vector<CampaignPoint> points;
  points.reserve(scenarios_.size() * machines.size() * sizes.size());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    for (const sim::MachineConfig& m : machines) {
      for (int vs : sizes) {
        CampaignPoint p;
        p.scenario = static_cast<int>(s);
        p.machine = m;
        p.vector_size = vs;
        p.steps = steps;
        points.push_back(p);
      }
    }
  }
  return points;
}

CampaignRun Campaign::run(const CampaignPoint& point) const {
  return run(point, RunExtras{});
}

CampaignRun Campaign::run(const CampaignPoint& point,
                          const RunExtras& extras) const {
  if (point.scenario < 0 ||
      point.scenario >= static_cast<int>(scenarios_.size())) {
    throw std::out_of_range("Campaign::run: bad scenario index");
  }
  const miniapp::Scenario& scen =
      scenarios_[static_cast<std::size_t>(point.scenario)];
  miniapp::TimeLoopConfig cfg;
  cfg.steps = point.steps;
  cfg.vector_size = point.vector_size;
  cfg.opt = point.opt;
  cfg.blocked_momentum = point.blocked_momentum;
  cfg.format = point.format;
  cfg.rcm_renumber = point.rcm_renumber;
  cfg.precond = point.precond;
  cfg.shards = point.shards;
  cfg.checkpoint_every = extras.checkpoint_every;
  cfg.fault = extras.fault;

  miniapp::TimeLoop loop(mesh(point.scenario), scen, cfg);
  if (!extras.checkpoint_file.empty()) {
    const std::uint64_t hash = miniapp::timeloop_config_hash(
        scen.name, mesh(point.scenario), cfg, point.machine);
    if (extras.resume && file_exists(extras.checkpoint_file)) {
      loop.restore(miniapp::load_checkpoint(extras.checkpoint_file), hash);
    }
    if (extras.checkpoint_every > 0) {
      const std::string file = extras.checkpoint_file;
      loop.set_checkpoint_sink(
          hash, [file](const miniapp::TimeLoopCheckpoint& c) {
            miniapp::save_checkpoint(file, c);
          });
    }
  }
  sim::Vpu vpu(point.machine);

  CampaignRun run;
  run.scenario = scen.name;
  run.point = point;
  run.loop = loop.run(vpu);
  run.total_cycles = run.loop.cycles;
  run.overall = metrics::compute(run.loop.total, point.machine.vlmax);
  for (int p = 0; p <= miniapp::kNumInstrumentedPhases; ++p) {
    run.phase_metrics[static_cast<std::size_t>(p)] = metrics::compute(
        run.loop.phase[static_cast<std::size_t>(p)], point.machine.vlmax);
  }
  // One aggregated failure count per POINT: the sharded pressure path
  // returns a single SolveReport per step (never one per shard), and its
  // setup failures fall back to the legacy solve whose instrumented
  // failure exit is counted here exactly once — so solver_failures /
  // precond columns stay consistent across shard counts.
  for (const miniapp::StepReport& s : run.loop.steps) {
    for (const solver::SolveReport& m : s.momentum) {
      run.momentum_iterations += m.iterations;
      if (!m.failure.empty()) ++run.solver_failures;
    }
    run.pressure_iterations += s.pressure.iterations;
    if (!s.pressure.failure.empty()) ++run.solver_failures;
  }
  if (!run.loop.steps.empty()) {
    run.final_divergence = run.loop.steps.back().div_after;
  }
  run.all_converged = run.loop.all_converged;
  return run;
}

std::vector<CampaignRun> Campaign::run_points(
    std::span<const CampaignPoint> points, int jobs) const {
  std::vector<CampaignRun> out(points.size());
  // Collect-and-continue: a bad point no longer cancels its siblings
  // mid-flight, so the surviving results are deterministic; the first
  // error (in point order, not discovery order) still reaches the caller.
  std::vector<std::exception_ptr> errors =
      parallel_for_index_collect(points.size(), jobs, [&](std::size_t i) {
        out[i] = run(points[i]);
      });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return out;
}

std::vector<CampaignOutcome> Campaign::run_points_ft(
    std::span<const CampaignPoint> points, const CampaignFtOptions& opts,
    int jobs) const {
  std::vector<CampaignOutcome> out(points.size());
  parallel_for_index_collect(points.size(), jobs, [&](std::size_t i) {
    CampaignOutcome& o = out[i];
    o.requested = points[i];
    CampaignPoint current = points[i];
    const int point_index = static_cast<int>(i);
    const sim::FaultSpec fault =
        opts.faults != nullptr ? opts.faults->spec_for(point_index)
                               : sim::FaultSpec{};
    const bool death =
        opts.faults != nullptr && opts.faults->worker_death(point_index);

    for (int attempt = 0;; ++attempt) {
      o.attempts = attempt + 1;
      bool ran = false;
      try {
        if (attempt == 0 && death) {
          throw std::runtime_error("injected worker death (fault plan)");
        }
        RunExtras extras;
        if (attempt == 0) {
          // Faults and checkpoints belong to attempt 0 only: retries are
          // the recovery path and must run clean, and a degraded retry's
          // config hash would make its checkpoint unloadable by a later
          // --resume of the requested point.
          extras.fault = fault;
          extras.checkpoint_every = opts.checkpoint_every;
          extras.resume = opts.resume;
          if (opts.checkpoint_every > 0 && !opts.checkpoint_dir.empty()) {
            extras.checkpoint_file = opts.checkpoint_dir + "/point_" +
                                     std::to_string(i) + ".ckpt";
          }
        }
        o.run = run(current, extras);
        ran = true;
        o.error.clear();
      } catch (const std::exception& e) {
        o.error = e.what();
      }

      if (ran && !attempt_failed(o.run)) {
        o.final_status = o.degraded ? "degraded" : "ok";
        return;
      }
      CampaignPoint next = current;
      if (attempt >= opts.retry.max_retries || !degrade_point(next)) {
        // Exhausted (or bottom rung already): keep the last real run if
        // one completed, else synthesize the row identity so the CSV can
        // still name the point that died.
        if (!ran && o.run.scenario.empty()) {
          o.run.scenario =
              scenarios_[static_cast<std::size_t>(current.scenario)].name;
          o.run.point = current;
        }
        o.final_status = "failed";
        return;
      }
      current = next;
      o.degraded = true;
    }
  });
  return out;
}

}  // namespace vecfd::core
