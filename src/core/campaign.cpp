#include "core/campaign.h"

#include <stdexcept>

#include "core/parallel.h"
#include "sim/vpu.h"

namespace vecfd::core {

Campaign::Campaign(std::vector<miniapp::Scenario> scenarios)
    : scenarios_(std::move(scenarios)) {
  if (scenarios_.empty()) {
    throw std::invalid_argument("Campaign: no scenarios");
  }
  meshes_.reserve(scenarios_.size());
  for (const miniapp::Scenario& s : scenarios_) {
    meshes_.emplace_back(s.mesh);
  }
}

std::vector<CampaignPoint> Campaign::grid(
    std::span<const sim::MachineConfig> machines, std::span<const int> sizes,
    int steps) const {
  std::vector<CampaignPoint> points;
  points.reserve(scenarios_.size() * machines.size() * sizes.size());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    for (const sim::MachineConfig& m : machines) {
      for (int vs : sizes) {
        CampaignPoint p;
        p.scenario = static_cast<int>(s);
        p.machine = m;
        p.vector_size = vs;
        p.steps = steps;
        points.push_back(p);
      }
    }
  }
  return points;
}

CampaignRun Campaign::run(const CampaignPoint& point) const {
  if (point.scenario < 0 ||
      point.scenario >= static_cast<int>(scenarios_.size())) {
    throw std::out_of_range("Campaign::run: bad scenario index");
  }
  const miniapp::Scenario& scen =
      scenarios_[static_cast<std::size_t>(point.scenario)];
  miniapp::TimeLoopConfig cfg;
  cfg.steps = point.steps;
  cfg.vector_size = point.vector_size;
  cfg.opt = point.opt;
  cfg.blocked_momentum = point.blocked_momentum;
  cfg.format = point.format;
  cfg.rcm_renumber = point.rcm_renumber;
  cfg.precond = point.precond;
  cfg.shards = point.shards;

  miniapp::TimeLoop loop(mesh(point.scenario), scen, cfg);
  sim::Vpu vpu(point.machine);

  CampaignRun run;
  run.scenario = scen.name;
  run.point = point;
  run.loop = loop.run(vpu);
  run.total_cycles = run.loop.cycles;
  run.overall = metrics::compute(run.loop.total, point.machine.vlmax);
  for (int p = 0; p <= miniapp::kNumInstrumentedPhases; ++p) {
    run.phase_metrics[static_cast<std::size_t>(p)] = metrics::compute(
        run.loop.phase[static_cast<std::size_t>(p)], point.machine.vlmax);
  }
  // One aggregated failure count per POINT: the sharded pressure path
  // returns a single SolveReport per step (never one per shard), and its
  // setup failures fall back to the legacy solve whose instrumented
  // failure exit is counted here exactly once — so solver_failures /
  // precond columns stay consistent across shard counts.
  for (const miniapp::StepReport& s : run.loop.steps) {
    for (const solver::SolveReport& m : s.momentum) {
      run.momentum_iterations += m.iterations;
      if (!m.failure.empty()) ++run.solver_failures;
    }
    run.pressure_iterations += s.pressure.iterations;
    if (!s.pressure.failure.empty()) ++run.solver_failures;
  }
  if (!run.loop.steps.empty()) {
    run.final_divergence = run.loop.steps.back().div_after;
  }
  run.all_converged = run.loop.all_converged;
  return run;
}

std::vector<CampaignRun> Campaign::run_points(
    std::span<const CampaignPoint> points, int jobs) const {
  std::vector<CampaignRun> out(points.size());
  parallel_for_index(points.size(), jobs, [&](std::size_t i) {
    out[i] = run(points[i]);
  });
  return out;
}

}  // namespace vecfd::core
