// vecfd::core — Clang thread-safety annotations and annotated lock types.
//
// The concurrency contract of this repo is narrow on purpose: ALL fan-out
// goes through core::parallel_for_index, and any state shared across its
// workers is guarded by the annotated types below.  Annotating that small
// surface lets clang's -Wthread-safety analysis (enabled with -Werror in
// the CI lint job) prove at compile time that every access to
// VECFD_GUARDED_BY state happens under its capability — turning the
// "forgot the lock on one path" bug class into a build failure instead of
// a TSan flake.  vecfd-lint rule `raw-thread` is the other half of the
// contract: std::thread / std::mutex may not appear outside this header
// and core/parallel.h, so there is no unannotated locking to miss.
//
// The macros expand to nothing on compilers without the attribute (GCC),
// so the annotations are free in every non-clang build.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VECFD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VECFD_THREAD_ANNOTATION
#define VECFD_THREAD_ANNOTATION(x)
#endif

#define VECFD_CAPABILITY(x) VECFD_THREAD_ANNOTATION(capability(x))
#define VECFD_SCOPED_CAPABILITY VECFD_THREAD_ANNOTATION(scoped_lockable)
#define VECFD_GUARDED_BY(x) VECFD_THREAD_ANNOTATION(guarded_by(x))
#define VECFD_PT_GUARDED_BY(x) VECFD_THREAD_ANNOTATION(pt_guarded_by(x))
#define VECFD_REQUIRES(...) \
  VECFD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VECFD_ACQUIRE(...) \
  VECFD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VECFD_RELEASE(...) \
  VECFD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VECFD_EXCLUDES(...) VECFD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define VECFD_RETURN_CAPABILITY(x) VECFD_THREAD_ANNOTATION(lock_returned(x))
#define VECFD_NO_THREAD_SAFETY_ANALYSIS \
  VECFD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vecfd::core {

/// std::mutex wrapped as an annotated capability: the analysis only tracks
/// types that carry the `capability` attribute, so shared state must be
/// guarded by THIS type (and locked through MutexLock) for
/// -Wthread-safety to see it.
class VECFD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VECFD_ACQUIRE() { mu_.lock(); }
  void unlock() VECFD_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a scoped capability so the analysis
/// knows the capability is held for exactly the scope of the guard.
class VECFD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VECFD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VECFD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace vecfd::core
