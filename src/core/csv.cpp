#include "core/csv.h"

#include <ostream>

#include "sim/counters.h"
#include "solver/vkernels.h"

namespace vecfd::core {

namespace {
/// RAII precision bump: metrics written with enough digits to plot from.
class ScopedPrecision {
 public:
  explicit ScopedPrecision(std::ostream& os)
      : os_(os), saved_(os.precision(12)) {}
  ~ScopedPrecision() { os_.precision(saved_); }

 private:
  std::ostream& os_;
  std::streamsize saved_;
};
/// Counter columns derive from the sim::Counters registry: header and row
/// writers iterate the same VECFD_COUNTERS entries (filtered by schema
/// tag), so registering a CSV-tagged counter wires both at once and a
/// hand-kept column list cannot drift (vecfd-lint rule `counter-registry`).
template <class Filter>
void write_counter_columns(std::ostream& os, Filter in_schema) {
  sim::Counters::visit_fields([&](const sim::CounterInfo& info) {
    if (in_schema(info.csv)) os << ',' << info.csv_column;
  });
}

template <class Filter>
void write_counter_values(std::ostream& os, const sim::Counters& c,
                          Filter in_schema) {
  c.visit([&](const sim::CounterInfo& info, const auto& v) {
    if (in_schema(info.csv)) os << ',' << v;
  });
}
}  // namespace

// Header and row iterate the SAME phase-count constant: deriving both from
// miniapp::kNumInstrumentedPhases makes it impossible for them to desync
// (they previously hard-coded `p <= 8` independently).
// `effective_strip` sits next to `vector_size` and records the strip the
// solve kernels actually ran at (solver::solve_effective_strip — vsetvl
// clamps requests above vlmax), so e.g. vs=512 rows on a vlmax=256 machine
// are no longer mislabeled.  Both row writers derive it from that one
// function.
void write_csv_header(std::ostream& os) {
  os << "machine,opt,scheme,format,vector_size,effective_strip,total_cycles,"
        "total_instrs,vector_instrs,mv,av,vcpi,avl,ev";
  write_counter_columns(os, sim::in_sweep_csv);
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    os << ",ph" << p << "_cycles,ph" << p << "_mv,ph" << p << "_avl";
  }
  os << '\n';
}

void write_measurement_row(std::ostream& os, const Measurement& m) {
  const ScopedPrecision prec(os);
  os << m.machine.name << ',' << to_string(m.app.opt) << ','
     << to_string(m.app.scheme) << ',' << to_string(m.app.solve_format)
     << ',' << m.app.vector_size << ','
     << solver::solve_effective_strip(m.app.vector_size, m.machine) << ','
     << m.total_cycles << ',' << m.total.total_instrs() << ','
     << m.total.vector_instrs() << ',' << m.overall.mv << ',' << m.overall.av
     << ',' << m.overall.vcpi << ',' << m.overall.avl << ','
     << m.overall.ev;
  write_counter_values(os, m.total, sim::in_sweep_csv);
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    os << ',' << m.phase_cycles(p) << ',' << m.phase_metrics[p].mv << ','
       << m.phase_metrics[p].avl;
  }
  os << '\n';
}

void write_csv(std::ostream& os, std::span<const Measurement> ms) {
  write_csv_header(os);
  for (const Measurement& m : ms) write_measurement_row(os, m);
}

void write_campaign_csv_header(std::ostream& os) {
  os << "scenario,machine,opt,format,rcm,precond,shards,vector_size,"
        "effective_strip,steps,"
        "total_cycles,total_instrs,vector_instrs,mv,av,vcpi,avl,ev";
  write_counter_columns(os, sim::in_campaign_csv);
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    os << ",ph" << p << "_cycles,ph" << p << "_mv,ph" << p << "_avl";
  }
  os << ",momentum_iters,pressure_iters,final_div,all_converged,"
        "solver_failures,pressure_makespan_cycles,"
        "attempts,degraded,final_status\n";
}

namespace {
// Everything up to the retry digest: shared by the plain-run writer (which
// closes the row with the `1,0,ok` defaults) and the outcome writer.
void write_campaign_row_body(std::ostream& os, const CampaignRun& r) {
  os << r.scenario << ',' << r.point.machine.name << ','
     << to_string(r.point.opt) << ',' << to_string(r.point.format) << ','
     << (r.point.rcm_renumber ? 1 : 0) << ','
     << solver::to_string(r.point.precond) << ',' << r.point.shards << ','
     << r.point.vector_size << ','
     << solver::solve_effective_strip(r.point.vector_size, r.point.machine)
     << ',' << r.point.steps << ',' << r.total_cycles << ','
     << r.loop.total.total_instrs() << ',' << r.loop.total.vector_instrs()
     << ',' << r.overall.mv << ',' << r.overall.av << ',' << r.overall.vcpi
     << ',' << r.overall.avl << ',' << r.overall.ev;
  write_counter_values(os, r.loop.total, sim::in_campaign_csv);
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    const auto& pm = r.phase_metrics[static_cast<std::size_t>(p)];
    os << ',' << r.phase_cycles(p) << ',' << pm.mv << ',' << pm.avl;
  }
  os << ',' << r.momentum_iterations << ',' << r.pressure_iterations << ','
     << r.final_divergence << ',' << (r.all_converged ? 1 : 0) << ','
     << r.solver_failures << ',' << r.loop.pressure_makespan_cycles;
}
}  // namespace

void write_campaign_row(std::ostream& os, const CampaignRun& r) {
  const ScopedPrecision prec(os);
  write_campaign_row_body(os, r);
  os << ",1,0,ok\n";
}

void write_campaign_outcome_row(std::ostream& os, const CampaignOutcome& o) {
  const ScopedPrecision prec(os);
  if (!o.error.empty()) {
    // The final attempt never produced a run: keep the row identity (the
    // same columns, zero-filled through the same registry iteration as a
    // real row) so downstream plots see the point, not a ragged CSV.
    CampaignRun zero = o.run;
    zero.loop.phase.assign(
        static_cast<std::size_t>(miniapp::kNumInstrumentedPhases) + 1, {});
    write_campaign_row_body(os, zero);
  } else {
    write_campaign_row_body(os, o.run);
  }
  os << ',' << o.attempts << ',' << (o.degraded ? 1 : 0) << ','
     << (o.final_status.empty() ? "ok" : o.final_status) << '\n';
}

void write_campaign_csv(std::ostream& os, std::span<const CampaignRun> rs) {
  write_campaign_csv_header(os);
  for (const CampaignRun& r : rs) write_campaign_row(os, r);
}

void write_campaign_csv(std::ostream& os,
                        std::span<const CampaignOutcome> outcomes) {
  write_campaign_csv_header(os);
  for (const CampaignOutcome& o : outcomes) write_campaign_outcome_row(os, o);
}

}  // namespace vecfd::core
