#include "core/advisor.h"

#include <algorithm>
#include <limits>

#include "metrics/metrics.h"

namespace vecfd::core {

std::string to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kNotVectorized:   return "not-vectorized";
    case FindingKind::kShortVectors:    return "short-vectors";
    case FindingKind::kFsmUnfriendlyVl: return "fsm-unfriendly-vl";
    case FindingKind::kFusedLoop:       return "fused-loop";
    case FindingKind::kOpaqueBound:     return "opaque-bound";
    case FindingKind::kCachePressure:   return "cache-pressure";
    case FindingKind::kGatherBound:     return "gather-bound";
    case FindingKind::kHaloBound:       return "halo-bound";
    case FindingKind::kHealthy:         return "healthy";
  }
  return "?";
}

solver::SpmvFormat recommend_format(const sim::MachineConfig& machine,
                                    int local_rows) {
  if (!machine.vector_enabled) return solver::SpmvFormat::kCsrHost;
  if (machine.vlmax < 64) return solver::SpmvFormat::kEll;
  // SELL-C-σ pays through filled slices; a sharded restriction with fewer
  // than ~4 vlmax-rows per Vpu leaves the slice bookkeeping unamortized
  // and the padded ELL mirror wins (DESIGN.md §9).
  return local_rows >= 4 * machine.vlmax ? solver::SpmvFormat::kSell
                                         : solver::SpmvFormat::kEll;
}

solver::SpmvFormat recommend_format(const sim::MachineConfig& machine) {
  return recommend_format(machine, std::numeric_limits<int>::max());
}

namespace {

/// The plan remark most relevant to a phase (first non-vectorized subkernel,
/// else the first subkernel).
std::string phase_remark(const miniapp::PhasePlan& plan, int phase) {
  const std::string prefix = "phase" + std::to_string(phase);
  std::string fallback;
  for (const auto& [id, d] : plan.all()) {
    if (id.rfind(prefix, 0) != 0) continue;
    if (fallback.empty()) fallback = d.remark;
    if (!d.vectorize) return d.remark;
  }
  return fallback;
}

}  // namespace

std::vector<Finding> advise(const Measurement& m) {
  std::vector<Finding> findings;
  const sim::MachineConfig& mc = m.machine;

  // All instrumented phases, including the phase-9 solve when present.
  for (int p = 1; p <= miniapp::kNumInstrumentedPhases; ++p) {
    const double share = m.phase_share(p);
    const metrics::VectorMetrics& pm = m.phase_metrics[p];
    if (share < 0.02) continue;  // below the noise floor of the methodology

    const std::string remark = phase_remark(m.plan, p);

    if (mc.vector_enabled && pm.mv < 0.05) {
      Finding f;
      f.phase = p;
      f.severity = share;
      if (remark.find("not a compile-time constant") != std::string::npos) {
        f.kind = FindingKind::kOpaqueBound;
        f.message = "phase " + std::to_string(p) +
                    " is scalar because the compiler cannot see the loop "
                    "bound (" + remark +
                    "); declare the trip count as a compile-time constant";
      } else if (remark.find("fused") != std::string::npos) {
        f.kind = FindingKind::kFusedLoop;
        f.message = "phase " + std::to_string(p) +
                    " executes scalar because vectorizable work shares its "
                    "outer loop with non-vectorizable work (" + remark +
                    "); split the loop (fission)";
      } else {
        f.kind = FindingKind::kNotVectorized;
        f.message = "phase " + std::to_string(p) + " is not vectorized: " +
                    remark;
      }
      findings.push_back(std::move(f));
      continue;
    }

    if (mc.vector_enabled && pm.mv >= 0.05 &&
        pm.avl < 0.25 * mc.vlmax && pm.avl > 0.0) {
      Finding f;
      f.kind = FindingKind::kShortVectors;
      f.phase = p;
      f.severity = share;
      f.message =
          "phase " + std::to_string(p) + " vectorizes with AVL " +
          std::to_string(pm.avl).substr(0, 5) + " of vlmax " +
          std::to_string(mc.vlmax) +
          "; interchange the loop nest so the longest dimension is "
          "innermost";
      findings.push_back(std::move(f));
      continue;
    }

    const sim::Counters& pc = m.phase[p];

    // Sharded-solve surface-to-volume: ghost traffic priced by the halo
    // counters against the useful gathered lines of the same phase.  Over
    // 20% means the subdomain surfaces rival their volumes — the partition
    // is too fine for this mesh (DESIGN.md §9).  Checked before gather
    // quality: a halo-dominated phase should shed shards before it shops
    // for storage formats.
    if (pc.halo_lines_sent + pc.halo_lines_recv > 0 &&
        pc.gather_lines_touched > 0) {
      const double halo =
          static_cast<double>(pc.halo_lines_sent + pc.halo_lines_recv);
      const double ratio = halo / static_cast<double>(pc.gather_lines_touched);
      if (ratio > 0.2) {
        Finding f;
        f.kind = FindingKind::kHaloBound;
        f.phase = p;
        f.severity = share * std::min(ratio, 1.0);
        f.message =
            "phase " + std::to_string(p) + " exchanges " +
            std::to_string(100.0 * ratio).substr(0, 4) +
            "% as many halo cache lines as it gathers; the subdomain "
            "surface rivals its volume — run fewer, fatter shards "
            "(--shards) or refine the mesh";
        findings.push_back(std::move(f));
        continue;
      }
    }

    // Solve-phase gather quality: few reused lines per gathered lane (a
    // scattered numbering) or a pad-heavy ELL mirror — the formats lever.
    if (mc.vector_enabled && p >= miniapp::kSolvePhase &&
        pc.vmem_indexed_instrs > 0) {
      const double lanes = static_cast<double>(pc.gather_lanes);
      const double lines = static_cast<double>(pc.gather_lines_touched);
      const double masked = static_cast<double>(pc.pad_lanes);
      const double coal = static_cast<double>(pc.coalesced_lanes);
      const double lanes_per_line = lines > 0.0 ? lanes / lines : 8.0;
      const double pad_frac =
          lanes + masked + coal > 0.0 ? masked / (lanes + masked + coal)
                                      : 0.0;
      if (lanes_per_line < 2.0 || pad_frac > 0.25) {
        // Actionable advice only: a format switch when the run is not
        // already on this machine's recommended storage, RCM renumbering
        // (a transient-loop knob) when the lines themselves are scattered.
        // Pad-heavy but already on the recommended format has no lever
        // here — fall through to the cache-pressure check below.
        const solver::SpmvFormat rec = recommend_format(mc);
        std::string action;
        if (m.app.solve_format != rec) {
          action = "switch to this machine's recommended operator storage "
                   "(--format " + std::string(to_string(rec)) + ")";
          if (lanes_per_line < 2.0) {
            action += " and renumber the unknowns (--rcm on a transient "
                      "run) to band the x-gathers";
          }
        } else if (lanes_per_line < 2.0) {
          action = "renumber the unknowns (--rcm on a transient run) to "
                   "band the x-gathers";
        }
        if (!action.empty()) {
          Finding f;
          f.kind = FindingKind::kGatherBound;
          f.phase = p;
          f.severity = share * 0.75;
          f.message =
              "phase " + std::to_string(p) + " gathers average " +
              std::to_string(lanes_per_line).substr(0, 4) +
              " elements per touched cache line with " +
              std::to_string(100.0 * pad_frac).substr(0, 4) +
              "% pad lanes; " + action;
          findings.push_back(std::move(f));
          continue;
        }
      }
    }

    const double dcm_ki = metrics::l1_dcm_per_kilo_instr(m.phase[p]);
    if (dcm_ki > 50.0 && metrics::memory_instr_fraction(m.phase[p]) > 0.4) {
      Finding f;
      f.kind = FindingKind::kCachePressure;
      f.phase = p;
      f.severity = share * 0.5;  // actionable, but bounded by memory system
      f.message = "phase " + std::to_string(p) + " sees " +
                  std::to_string(dcm_ki).substr(0, 6) +
                  " L1 misses per kilo-instruction; the VECTOR_SIZE chunk "
                  "working set likely exceeds L1 — consider a smaller "
                  "VECTOR_SIZE or blocking";
      findings.push_back(std::move(f));
    }
  }

  // machine-level lesson: FSM-unfriendly vector length (the 240-vs-256 one)
  if (mc.vector_enabled && mc.fsm_group > 1) {
    const int group = mc.lanes * mc.fsm_group;
    const int vl = std::min(m.app.vector_size, mc.vlmax);
    if (vl % group != 0 && m.overall.mv > 0.05) {
      Finding f;
      f.kind = FindingKind::kFsmUnfriendlyVl;
      f.phase = 0;
      f.severity = (mc.fsm_penalty - 1.0) * m.overall.av;
      f.message =
          "vector length " + std::to_string(vl) + " is not a multiple of " +
          std::to_string(group) + " (lanes x fsm_group); VECTOR_SIZE " +
          "multiples of " + std::to_string(group) +
          " maximize element throughput on this machine (e.g. 240)";
      findings.push_back(std::move(f));
    }
  }

  if (findings.empty()) {
    findings.push_back(
        {FindingKind::kHealthy, 0, 0.0,
         "no actionable vectorization finding above the 2% cycle floor"});
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.severity > b.severity;
                   });
  return findings;
}

}  // namespace vecfd::core
