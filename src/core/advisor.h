// vecfd::core — the co-design Advisor.
//
// §7 of the paper distills the study into lessons for application
// developers, system-software developers and hardware architects.  The
// Advisor encodes those lessons as executable diagnostics: given a
// Measurement it points at the phase limiting performance and says *why*
// (unvectorized loop, short AVL, FSM-unfriendly vector length, cache
// pressure), citing the compiler model's remark for the offending loop.
// The `codesign_loop` example drives the full iterate-measure-refactor
// cycle with it.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace vecfd::core {

enum class FindingKind {
  kNotVectorized,      ///< hot phase with Mv ≈ 0
  kShortVectors,       ///< vectorized but AVL ≪ vlmax (the VEC2 symptom)
  kFsmUnfriendlyVl,    ///< vl not a multiple of lanes·fsm_group (the 240 lesson)
  kFusedLoop,          ///< vectorizable work fused with non-vectorizable (VEC1)
  kOpaqueBound,        ///< loop bound not compile-time constant (VEC2 lesson)
  kCachePressure,      ///< high L1 DCM/ki on a memory-bound phase
  kHealthy,            ///< nothing actionable
};

struct Finding {
  FindingKind kind = FindingKind::kHealthy;
  int phase = 0;            ///< 0 = whole application
  double severity = 0.0;    ///< cycle share at stake, [0, 1]
  std::string message;      ///< human-readable diagnosis + suggested action
};

/// Analyze a measurement; findings come sorted by severity (largest first).
std::vector<Finding> advise(const Measurement& m);

std::string to_string(FindingKind k);

}  // namespace vecfd::core
