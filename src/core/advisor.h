// vecfd::core — the co-design Advisor.
//
// §7 of the paper distills the study into lessons for application
// developers, system-software developers and hardware architects.  The
// Advisor encodes those lessons as executable diagnostics: given a
// Measurement it points at the phase limiting performance and says *why*
// (unvectorized loop, short AVL, FSM-unfriendly vector length, cache
// pressure), citing the compiler model's remark for the offending loop.
// The `codesign_loop` example drives the full iterate-measure-refactor
// cycle with it.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "solver/format.h"

namespace vecfd::core {

enum class FindingKind {
  kNotVectorized,      ///< hot phase with Mv ≈ 0
  kShortVectors,       ///< vectorized but AVL ≪ vlmax (the VEC2 symptom)
  kFsmUnfriendlyVl,    ///< vl not a multiple of lanes·fsm_group (the 240 lesson)
  kFusedLoop,          ///< vectorizable work fused with non-vectorizable (VEC1)
  kOpaqueBound,        ///< loop bound not compile-time constant (VEC2 lesson)
  kCachePressure,      ///< high L1 DCM/ki on a memory-bound phase
  kGatherBound,        ///< solve-phase gathers touch ~1 line/lane or drown
                       ///< in pad lanes — the SELL/RCM lever (DESIGN.md §6)
  kHaloBound,          ///< sharded solve moves more halo lines than 20% of
                       ///< its gathered lines — surface dominates volume;
                       ///< fewer/fatter shards (DESIGN.md §9)
  kHealthy,            ///< nothing actionable
};

struct Finding {
  FindingKind kind = FindingKind::kHealthy;
  int phase = 0;            ///< 0 = whole application
  double severity = 0.0;    ///< cycle share at stake, [0, 1]
  std::string message;      ///< human-readable diagnosis + suggested action
};

/// Analyze a measurement; findings come sorted by severity (largest first).
std::vector<Finding> advise(const Measurement& m);

std::string to_string(FindingKind k);

/// Per-platform sparse-format recommendation for the instrumented solves
/// (the `--format auto` policy of vecfd-run; DESIGN.md §6): a scalar-only
/// machine streams the host CSR (no vector mirror to win with); a
/// long-vector machine (vlmax ≥ 64) wants SELL-C-σ, whose sliced pads and
/// gather-coalescing pay exactly where gathers dominate; a short-SIMD
/// machine keeps the padded ELL mirror — at vlmax ~8 the slice
/// bookkeeping outweighs the pads it removes.
solver::SpmvFormat recommend_format(const sim::MachineConfig& machine);

/// Shard-aware variant: @p local_rows is the operator row count each Vpu
/// actually streams (total rows / shards under domain decomposition,
/// DESIGN.md §9).  SELL-C-σ amortizes its slice bookkeeping over many
/// rows; when a shard's restriction drops below ~4·vlmax rows the slices
/// can no longer fill and the padded ELL mirror wins even on long-vector
/// machines.  recommend_format(machine) is the unsharded special case.
solver::SpmvFormat recommend_format(const sim::MachineConfig& machine,
                                    int local_rows);

}  // namespace vecfd::core
