// vecfd::mem — two-level cache hierarchy with latency attribution.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/cache.h"

namespace vecfd::mem {

/// Latency parameters and per-level geometry of the modelled hierarchy.
/// Defaults approximate the RISC-V VEC FPGA prototype of the paper (§2.1.3:
/// 1 MB L2, DDR4 main memory; L1 geometry is not published — see DESIGN.md).
struct HierarchyConfig {
  CacheConfig l1{.size_bytes = 64 * 1024,
                 .line_bytes = 64,
                 .associativity = 8,
                 .name = "L1D"};
  CacheConfig l2{.size_bytes = 1024 * 1024,
                 .line_bytes = 64,
                 .associativity = 16,
                 .name = "L2"};
  double l1_latency = 0.0;   ///< cycles beyond the pipelined base cost
  double l2_latency = 14.0;  ///< extra cycles when served from L2
  double mem_latency = 80.0; ///< extra cycles when served from DRAM
};

/// Which level served an access, plus the extra (beyond-L1) cycle cost.
struct AccessResult {
  int level = 1;        ///< 1 = L1 hit, 2 = L2 hit, 3 = memory
  double penalty = 0.0; ///< extra cycles attributable to this access
};

/// Inclusive two-level data-cache hierarchy.
///
/// Each `access()` touches one cache line; vector memory instructions call
/// `touch_range()` / repeated `access()` per element depending on their
/// access pattern (the caller — vecfd::sim — decides, because the pattern is
/// an instruction property).
///
/// Addresses are canonicalized before they reach the caches: each host
/// cache line is renamed, in first-touch order, onto a dense simulated
/// line space with in-line offsets preserved.  Host virtual addresses only
/// identify a line — where the allocator placed a buffer (ASLR, heap
/// history, per-thread arenas) cannot influence hit/miss behaviour, so a
/// measurement is a pure function of its access sequence.  Together with
/// the line-aligned global allocator (mem/aligned_new.cpp) this makes
/// sweeps reproducible run-to-run and lets the parallel sweep engine
/// promise byte-identical results to the serial path.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(HierarchyConfig cfg);
  /// Closes the measurement region in VECFD_MEASUREMENT_GUARD builds
  /// (measurement_guard.h); trivial otherwise.
  ~MemoryHierarchy();
  MemoryHierarchy(const MemoryHierarchy&) = default;
  MemoryHierarchy& operator=(const MemoryHierarchy&) = default;

  /// Touch the line containing @p addr.
  AccessResult access(std::uintptr_t addr);

  /// Touch every line overlapping [addr, addr + bytes).  Returns the summed
  /// penalty and the count of L1 misses in @p l1_misses_out (optional).
  double touch_range(std::uintptr_t addr, std::size_t bytes,
                     std::uint64_t* l1_misses_out = nullptr);

  /// Invalidate all cached lines and forget the canonical address mapping
  /// (e.g. between independent experiments).
  void flush();

  const HierarchyConfig& config() const { return cfg_; }
  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

  std::uint64_t l1_accesses() const { return l1_.accesses(); }
  std::uint64_t l1_misses() const { return l1_.misses(); }
  std::uint64_t l2_misses() const { return l2_.misses(); }

 private:
  /// Map @p addr into the dense first-touch canonical space.
  std::uintptr_t canonical(std::uintptr_t addr);

  HierarchyConfig cfg_;
  Cache l1_;
  Cache l2_;
  std::uintptr_t line_mask_;
  std::unordered_map<std::uintptr_t, std::uintptr_t> line_map_;
  std::uintptr_t next_line_ = 0;
};

}  // namespace vecfd::mem
