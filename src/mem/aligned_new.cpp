// vecfd::mem — cache-line-aligned global allocation.
//
// The memory hierarchy renames host cache lines into a dense canonical
// space in first-touch order (memory_hierarchy.h).  That erases *where* a
// buffer lives, but a buffer's offset modulo the line size still decides
// how many lines it spans and which elements share one.  Forcing every
// heap allocation onto a line boundary removes that last source of
// allocator-dependent behaviour: a measurement becomes a pure function of
// its access sequence, so repeated runs — serial or fanned out across
// threads — produce byte-identical results.
//
// The alignment must cover the LARGEST line size any modelled platform
// uses — SX-Aurora's 128 bytes (platforms.cpp) — or buffers land at
// 0-or-64 mod 128 depending on heap history and sweeps on that machine go
// nondeterministic again.
//
// Replacing the global operator new/delete set covers every std::vector
// and std::string in the process without touching any container type.
// std::free accepts std::aligned_alloc pointers, but all matching deletes
// are replaced alongside the news so the pairing is explicit.
#include <cstdint>
#include <cstdlib>
#include <new>

#include "mem/measurement_guard.h"

// The guard hooks below are inline no-ops unless VECFD_MEASUREMENT_GUARD is
// defined (measurement_guard.h), so non-guard builds keep the exact
// allocator code path and stay byte-stable against BENCH_PR5.json.

namespace {

constexpr std::size_t kMaxLineBytes = 128;

void* aligned_alloc_or_handler(std::size_t size) {
  // aligned_alloc requires size to be a multiple of the alignment.
  if (size > SIZE_MAX - (kMaxLineBytes - 1)) return nullptr;
  const std::size_t padded =
      (size + kMaxLineBytes - 1) & ~(kMaxLineBytes - 1);
  for (;;) {
    if (void* p =
            std::aligned_alloc(kMaxLineBytes, padded ? padded : kMaxLineBytes)) {
      return p;
    }
    if (std::new_handler h = std::get_new_handler()) {
      h();
    } else {
      return nullptr;
    }
  }
}

void* aligned_new(std::size_t size) {
  if (void* p = aligned_alloc_or_handler(size)) {
    vecfd::mem::guard::on_allocate(p, size);
    return p;
  }
  throw std::bad_alloc();
}

void* tracked_nothrow_new(std::size_t size) noexcept {
  void* p = aligned_alloc_or_handler(size);
  if (p != nullptr) vecfd::mem::guard::on_allocate(p, size);
  return p;
}

void tracked_free(void* p) noexcept {
  vecfd::mem::guard::on_deallocate(p);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return aligned_new(size); }
void* operator new[](std::size_t size) { return aligned_new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_nothrow_new(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_nothrow_new(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  const std::size_t a = static_cast<std::size_t>(align);
  if (a <= kMaxLineBytes) return aligned_new(size);
  if (size > SIZE_MAX - (a - 1)) throw std::bad_alloc();
  const std::size_t padded = (size + a - 1) & ~(a - 1);
  for (;;) {
    if (void* p = std::aligned_alloc(a, padded ? padded : a)) {
      vecfd::mem::guard::on_allocate(p, size);
      return p;
    }
    if (std::new_handler h = std::get_new_handler()) {
      h();
    } else {
      throw std::bad_alloc();
    }
  }
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
