// vecfd::mem — measurement-guard registry (see measurement_guard.h).
//
// The whole translation unit is empty unless VECFD_MEASUREMENT_GUARD is
// defined: non-guard builds pay nothing, and the hooks they call are the
// inline no-ops from the header.
#ifdef VECFD_MEASUREMENT_GUARD

#include "mem/measurement_guard.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/thread_annotations.h"

namespace vecfd::mem::guard {
namespace {

/// One canonically-mapped host line of one live hierarchy.
struct LineState {
  std::uint64_t canonical_line = 0;
  /// Set when the backing heap block was freed while this mapping was
  /// live.  The tombstone itself is legal; a later measured re-touch of
  /// the line (a new buffer re-aliasing it) is the abort condition.
  bool freed = false;
};

/// Per-hierarchy host-line map.  Campaign fan-out runs one hierarchy per
/// worker thread, and read-only inputs (meshes) are touched by several
/// hierarchies at once, so lines are keyed per hierarchy and the registry
/// is locked (core::Mutex — the annotated type the raw-thread lint rule
/// and -Wthread-safety know about).
using HierarchyLines = std::unordered_map<std::uintptr_t, LineState>;

/// All allocations step on 128-byte boundaries (mem/aligned_new.cpp) and
/// every modelled line size divides into 64-byte steps, so scanning a
/// freed block at this granularity visits every possible line key.
constexpr std::uintptr_t kScanStep = 64;

class Registry {
 public:
  void on_allocate(void* p, std::size_t bytes) VECFD_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    blocks_[reinterpret_cast<std::uintptr_t>(p)] = bytes;
  }

  void on_deallocate(void* p) VECFD_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const auto it = blocks_.find(addr);
    if (it == blocks_.end()) return;  // predates the registry (static init)
    const std::size_t bytes = it->second;
    blocks_.erase(it);
    if (hierarchies_.empty() || bytes == 0) return;
    // Tombstone every mapped line the block covers, in every live
    // hierarchy's measurement region.
    const std::uintptr_t first = addr & ~(kScanStep - 1);
    const std::uintptr_t last = (addr + bytes - 1) & ~(kScanStep - 1);
    for (auto& [hierarchy, lines] : hierarchies_) {
      for (std::uintptr_t a = first; a <= last; a += kScanStep) {
        const auto line = lines.find(a);
        if (line != lines.end()) line->second.freed = true;
      }
    }
  }

  void on_line_mapped(const void* hierarchy, std::uintptr_t host_line,
                      std::uint64_t canonical_line) VECFD_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    hierarchies_[hierarchy][host_line] = LineState{canonical_line, false};
  }

  void on_line_retouched(const void* hierarchy,
                         std::uintptr_t host_line) VECFD_EXCLUDES(mu_) {
    bool fire = false;
    std::uint64_t canonical = 0;
    {
      core::MutexLock lock(mu_);
      const auto h = hierarchies_.find(hierarchy);
      if (h == hierarchies_.end()) return;
      const auto line = h->second.find(host_line);
      if (line == h->second.end() || !line->second.freed) return;
      fire = true;
      canonical = line->second.canonical_line;
    }
    if (fire) abort_on_alias(host_line, canonical);
  }

  void on_hierarchy_reset(const void* hierarchy) VECFD_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    hierarchies_.erase(hierarchy);
  }

 private:
  [[noreturn]] static void abort_on_alias(std::uintptr_t host_line,
                                          std::uint64_t canonical_line) {
    std::fprintf(
        stderr,
        "vecfd measurement guard: measured access re-aliases canonical line "
        "%" PRIu64 " (host line 0x%" PRIxPTR "), whose backing buffer was "
        "freed mid-measurement.\nA new allocation inherited the freed "
        "buffer's canonical cache line, so hit/miss behaviour now depends "
        "on allocator history — the measurement is no longer a pure "
        "function of its access sequence.\nHoist the buffer out of the "
        "measured region (reusable workspace, in-place assign) as in "
        "DESIGN.md §7.\n",
        canonical_line, host_line);
    std::abort();
  }

  core::Mutex mu_;
  /// ptr -> requested size of every live heap block.
  std::unordered_map<std::uintptr_t, std::size_t> blocks_
      VECFD_GUARDED_BY(mu_);
  /// Live hierarchy -> its canonically-mapped host lines.
  std::unordered_map<const void*, HierarchyLines> hierarchies_
      VECFD_GUARDED_BY(mu_);
};

/// Leaked singleton: hooks fire from global operator new/delete during
/// static init and teardown, so the registry must outlive everything.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// The registry's own containers allocate through the hooked global
/// operator new; this per-thread flag breaks the recursion (re-entrant
/// allocations are registry-internal, never measured buffers).
thread_local bool in_guard = false;

class ReentryGuard {
 public:
  ReentryGuard() { in_guard = true; }
  ~ReentryGuard() { in_guard = false; }
};

}  // namespace

void on_allocate(void* p, std::size_t bytes) {
  if (in_guard) return;
  ReentryGuard g;
  registry().on_allocate(p, bytes);
}

void on_deallocate(void* p) {
  if (in_guard || p == nullptr) return;
  ReentryGuard g;
  registry().on_deallocate(p);
}

void on_line_mapped(const void* hierarchy, std::uintptr_t host_line,
                    std::uint64_t canonical_line) {
  if (in_guard) return;
  ReentryGuard g;
  registry().on_line_mapped(hierarchy, host_line, canonical_line);
}

void on_line_retouched(const void* hierarchy, std::uintptr_t host_line) {
  if (in_guard) return;
  ReentryGuard g;
  registry().on_line_retouched(hierarchy, host_line);
}

void on_hierarchy_reset(const void* hierarchy) {
  if (in_guard) return;
  ReentryGuard g;
  registry().on_hierarchy_reset(hierarchy);
}

}  // namespace vecfd::mem::guard

#endif  // VECFD_MEASUREMENT_GUARD
