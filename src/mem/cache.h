// vecfd::mem — set-associative cache model.
//
// The paper's analysis of the non-vectorized phases (Figure 9, Table 6)
// hinges on L1/L2 data-cache-miss behaviour as the application working set
// grows with VECTOR_SIZE.  This module provides the cache substrate that
// the vecfd::sim machine consults on every modelled memory access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vecfd::mem {

/// Geometry and identity of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;  ///< total capacity
  std::size_t line_bytes = 64;         ///< cache-line size (power of two)
  unsigned associativity = 8;          ///< ways per set
  std::string name = "L1";             ///< used in reports and errors

  /// Number of sets implied by the geometry (0 for a capacity-less cache).
  std::size_t num_sets() const {
    const std::size_t way_bytes = line_bytes * associativity;
    return way_bytes == 0 ? 0 : size_bytes / way_bytes;
  }
};

/// Set-associative, write-allocate cache with LRU replacement.
///
/// The model is tag-only: it tracks which lines are resident, not their
/// contents (the simulator executes real arithmetic on real host memory, so
/// contents are always exact).  A `size_bytes == 0` configuration is valid
/// and behaves as "always miss" — used by tests and by machine configs that
/// model a cache-less path.
class Cache {
 public:
  /// @throws std::invalid_argument for non-power-of-two line sizes or
  ///         zero associativity with non-zero capacity.
  explicit Cache(CacheConfig cfg);

  /// Touch the line containing @p addr.  @return true on hit.  On a miss the
  /// line is installed, evicting the LRU way of its set.
  bool access(std::uintptr_t addr);

  /// Drop all resident lines and reset nothing else (hit/miss counters are
  /// preserved so a flush mid-measurement stays visible in the statistics).
  void flush();

  const CacheConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }

  /// Number of lines currently resident (for tests / introspection).
  std::size_t resident_lines() const;

 private:
  struct Way {
    std::uintptr_t tag = 0;
    std::uint64_t stamp = 0;  // LRU timestamp; larger == more recent
    bool valid = false;
  };

  CacheConfig cfg_;
  std::size_t num_sets_;
  unsigned line_shift_;
  std::vector<Way> ways_;  // num_sets_ * associativity, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vecfd::mem
