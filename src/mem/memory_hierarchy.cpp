#include "mem/memory_hierarchy.h"

namespace vecfd::mem {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2) {}

AccessResult MemoryHierarchy::access(std::uintptr_t addr) {
  if (l1_.access(addr)) {
    return {1, cfg_.l1_latency};
  }
  if (l2_.access(addr)) {
    return {2, cfg_.l1_latency + cfg_.l2_latency};
  }
  return {3, cfg_.l1_latency + cfg_.l2_latency + cfg_.mem_latency};
}

double MemoryHierarchy::touch_range(std::uintptr_t addr, std::size_t bytes,
                                    std::uint64_t* l1_misses_out) {
  if (bytes == 0) return 0.0;
  const std::size_t line = l1_.config().line_bytes;
  const std::uintptr_t first = addr & ~(static_cast<std::uintptr_t>(line) - 1);
  const std::uintptr_t last = (addr + bytes - 1) &
                              ~(static_cast<std::uintptr_t>(line) - 1);
  double penalty = 0.0;
  std::uint64_t misses = 0;
  for (std::uintptr_t a = first; a <= last; a += line) {
    const AccessResult r = access(a);
    penalty += r.penalty;
    misses += r.level > 1 ? 1 : 0;
  }
  if (l1_misses_out != nullptr) *l1_misses_out += misses;
  return penalty;
}

void MemoryHierarchy::flush() {
  l1_.flush();
  l2_.flush();
}

}  // namespace vecfd::mem
