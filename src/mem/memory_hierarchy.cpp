#include "mem/memory_hierarchy.h"

#include <stdexcept>

#include "mem/measurement_guard.h"

namespace vecfd::mem {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig cfg)
    : cfg_(cfg),
      l1_(cfg.l1),
      l2_(cfg.l2),
      line_mask_(static_cast<std::uintptr_t>(cfg.l1.line_bytes) - 1) {
  // Canonicalization renames at L1-line granularity; with a larger L2 line
  // the renaming would scramble which L1 lines share an L2 line based on
  // touch order.  No modelled platform does that — refuse rather than be
  // silently wrong.
  if (cfg_.l1.line_bytes != cfg_.l2.line_bytes) {
    throw std::invalid_argument(
        "MemoryHierarchy: L1/L2 line sizes must match");
  }
}

std::uintptr_t MemoryHierarchy::canonical(std::uintptr_t addr) {
  // Line-granular first-touch renaming: the n-th distinct host line becomes
  // canonical line n; offsets inside the line are preserved.  Distinct host
  // lines stay distinct (locality and working-set size are untouched) while
  // the absolute placement the allocator chose is erased.
  const std::uintptr_t line = addr & ~line_mask_;
  const auto [it, inserted] =
      line_map_.try_emplace(line, next_line_ * (line_mask_ + 1));
  if (inserted) {
    guard::on_line_mapped(this, line, next_line_);
    ++next_line_;
  } else {
    // Aborts in guard builds if this line's backing buffer was freed
    // mid-measurement and a new allocation is re-aliasing it; a no-op
    // otherwise (measurement_guard.h).
    guard::on_line_retouched(this, line);
  }
  return it->second | (addr & line_mask_);
}

AccessResult MemoryHierarchy::access(std::uintptr_t addr) {
  const std::uintptr_t canon = canonical(addr);
  if (l1_.access(canon)) {
    return {1, cfg_.l1_latency};
  }
  if (l2_.access(canon)) {
    return {2, cfg_.l1_latency + cfg_.l2_latency};
  }
  return {3, cfg_.l1_latency + cfg_.l2_latency + cfg_.mem_latency};
}

double MemoryHierarchy::touch_range(std::uintptr_t addr, std::size_t bytes,
                                    std::uint64_t* l1_misses_out) {
  if (bytes == 0) return 0.0;
  const std::uintptr_t first = addr & ~line_mask_;
  const std::uintptr_t last = (addr + bytes - 1) & ~line_mask_;
  double penalty = 0.0;
  std::uint64_t misses = 0;
  for (std::uintptr_t a = first; a <= last; a += line_mask_ + 1) {
    const AccessResult r = access(a);
    penalty += r.penalty;
    misses += r.level > 1 ? 1 : 0;
  }
  if (l1_misses_out != nullptr) *l1_misses_out += misses;
  return penalty;
}

void MemoryHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  line_map_.clear();
  next_line_ = 0;
  guard::on_hierarchy_reset(this);
}

MemoryHierarchy::~MemoryHierarchy() { guard::on_hierarchy_reset(this); }

}  // namespace vecfd::mem
