// vecfd::mem — dynamic measurement-region guard (VECFD_MEASUREMENT_GUARD).
//
// The determinism contract of the memory model (DESIGN.md §1, §7): a
// buffer that an active MemoryHierarchy has renamed into canonical line
// space must stay alive until the hierarchy is flushed.  Freeing it
// mid-measurement lets a later allocation land on the same host cache line
// and silently inherit the canonical mapping — hit/miss behaviour then
// depends on allocator history, the exact bug class PR 3 fixed by hand in
// the TimeLoop workspaces.
//
// vecfd-lint rule `measured-alloc` fences the pattern statically; this
// guard is the dynamic complement for the aliasing it cannot see (frees
// reached through containers, conditional paths, destructors).  Built with
// -DVECFD_MEASUREMENT_GUARD=ON (CMake option, CI lint job):
//
//   * the line-aligned global allocator reports every heap block to the
//     guard registry,
//   * MemoryHierarchy reports each first-touch line mapping and each
//     re-touch of an already-mapped line,
//   * freeing a block whose lines are canonically mapped by a live
//     hierarchy TOMBSTONES those lines (the free alone is harmless if the
//     measurement never returns to them),
//   * a measured access that re-touches a tombstoned line — a new buffer
//     re-aliasing the canonical line of a freed one — aborts with a
//     diagnostic naming the canonical line (test_measurement_guard
//     triggers it deliberately).
//
// In non-guard builds every hook below is an empty inline function: zero
// code, zero overhead, benches byte-stable (acceptance-checked against
// BENCH_PR5.json).
#pragma once

#include <cstddef>
#include <cstdint>

namespace vecfd::mem::guard {

#ifdef VECFD_MEASUREMENT_GUARD

/// Allocator hooks (called by mem/aligned_new.cpp on every heap block).
void on_allocate(void* p, std::size_t bytes);
void on_deallocate(void* p);

/// Hierarchy hooks (called by MemoryHierarchy).  @p host_line is the
/// line-aligned host address, @p canonical_line the dense index it was
/// renamed to.
void on_line_mapped(const void* hierarchy, std::uintptr_t host_line,
                    std::uint64_t canonical_line);
/// Re-touch of a line already in the hierarchy's map: aborts if the line
/// was tombstoned by a mid-measurement free.
void on_line_retouched(const void* hierarchy, std::uintptr_t host_line);
/// Measurement region closed (flush or destruction): forget the
/// hierarchy's mappings and tombstones.
void on_hierarchy_reset(const void* hierarchy);

#else

inline void on_allocate(void*, std::size_t) {}
inline void on_deallocate(void*) {}
inline void on_line_mapped(const void*, std::uintptr_t, std::uint64_t) {}
inline void on_line_retouched(const void*, std::uintptr_t) {}
inline void on_hierarchy_reset(const void*) {}

#endif

}  // namespace vecfd::mem::guard
