#include "mem/cache.h"

#include <bit>
#include <stdexcept>

namespace vecfd::mem {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.line_bytes == 0 || !std::has_single_bit(cfg_.line_bytes)) {
    throw std::invalid_argument("cache '" + cfg_.name +
                                "': line_bytes must be a power of two");
  }
  if (cfg_.size_bytes != 0 && cfg_.associativity == 0) {
    throw std::invalid_argument("cache '" + cfg_.name +
                                "': associativity must be > 0");
  }
  num_sets_ = cfg_.num_sets();
  if (cfg_.size_bytes != 0 && num_sets_ == 0) {
    throw std::invalid_argument("cache '" + cfg_.name +
                                "': capacity smaller than one set");
  }
  line_shift_ = static_cast<unsigned>(std::countr_zero(cfg_.line_bytes));
  ways_.assign(num_sets_ * cfg_.associativity, Way{});
}

bool Cache::access(std::uintptr_t addr) {
  if (num_sets_ == 0) {  // capacity-less cache: every access misses
    ++misses_;
    return false;
  }
  const std::uintptr_t line = addr >> line_shift_;
  // XOR-fold the upper line bits into the set index.  Virtual-address
  // simulation is otherwise hostage to where the allocator happened to
  // place a buffer; folding models the physical-page scattering real
  // hierarchies see and removes pathological alias patterns.
  const std::uintptr_t folded = line ^ (line / num_sets_);
  const std::size_t set = static_cast<std::size_t>(folded % num_sets_);
  Way* base = &ways_[set * cfg_.associativity];
  ++tick_;

  Way* victim = base;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.stamp = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way over evicting
    } else if (victim->valid && way.stamp < victim->stamp) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->stamp = tick_;
  victim->valid = true;
  ++misses_;
  return false;
}

void Cache::flush() {
  for (Way& w : ways_) w.valid = false;
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const Way& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

}  // namespace vecfd::mem
