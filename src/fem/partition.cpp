#include "fem/partition.h"

#include <algorithm>
#include <stdexcept>

namespace vecfd::fem {

MeshPartition partition_mesh(const Mesh& mesh, int shards, int quantum,
                             std::span<const int> perm) {
  const int n = mesh.num_nodes();
  if (shards < 1 || quantum < 1) {
    throw std::invalid_argument(
        "partition_mesh: need shards >= 1 and quantum >= 1");
  }
  if (!perm.empty() && static_cast<int>(perm.size()) != n) {
    throw std::invalid_argument("partition_mesh: perm size mismatch");
  }
  // inv[node] = solve index; identity when no ordering was supplied.
  std::vector<int> inv(static_cast<std::size_t>(n), -1);
  if (perm.empty()) {
    for (int i = 0; i < n; ++i) inv[static_cast<std::size_t>(i)] = i;
  } else {
    for (int i = 0; i < n; ++i) {
      const int old = perm[static_cast<std::size_t>(i)];
      if (old < 0 || old >= n || inv[static_cast<std::size_t>(old)] != -1) {
        throw std::invalid_argument(
            "partition_mesh: perm is not a permutation");
      }
      inv[static_cast<std::size_t>(old)] = i;
    }
  }

  MeshPartition part;
  part.plan.shards = shards;
  part.plan.quantum = quantum;
  part.plan.bounds = solver::strip_bounds(n, shards, quantum);
  part.plan.ghosts.assign(static_cast<std::size_t>(shards), {});

  // Overlap-1 ghost closure in solve ordering: for every owned node, the
  // solve indices of its mesh neighbours that land outside the ownership
  // range.  node_adjacency() is the assembled operator's sparsity pattern,
  // so the closure covers every matrix column the shard's rows reference.
  const std::vector<std::vector<int>> adj = mesh.node_adjacency();
  for (int p = 0; p < shards; ++p) {
    const int lo = part.plan.bounds[static_cast<std::size_t>(p)];
    const int hi = part.plan.bounds[static_cast<std::size_t>(p) + 1];
    auto& ghosts = part.plan.ghosts[static_cast<std::size_t>(p)];
    for (int g = lo; g < hi; ++g) {
      const int node = perm.empty() ? g : perm[static_cast<std::size_t>(g)];
      for (const int nb : adj[static_cast<std::size_t>(node)]) {
        const int h = inv[static_cast<std::size_t>(nb)];
        if (h < lo || h >= hi) ghosts.push_back(h);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  }

  // Element -> shard owning its lowest solve-ordered node.
  part.element_shard.assign(static_cast<std::size_t>(mesh.num_elements()), 0);
  for (int e = 0; e < mesh.num_elements(); ++e) {
    int best = n;
    for (const std::int32_t node : mesh.element(e)) {
      best = std::min(best, inv[static_cast<std::size_t>(node)]);
    }
    part.element_shard[static_cast<std::size_t>(e)] = part.plan.owner(best);
  }
  return part;
}

}  // namespace vecfd::fem
