#include "fem/projection.h"

#include <stdexcept>

#include "fem/reference_assembly.h"

namespace vecfd::fem {

solver::CsrMatrix assemble_pressure_laplacian(const Mesh& mesh,
                                              const ShapeTable& shape) {
  solver::CsrMatrix l(mesh.node_adjacency());
  ElementGeometry geo;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    element_geometry(mesh, shape, e, geo);
    const auto ln = mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        double acc = 0.0;
        for (int g = 0; g < kGauss; ++g) {
          double q = geo.gpcar[g][0][a] * geo.gpcar[g][0][b];
          q = geo.gpcar[g][1][a] * geo.gpcar[g][1][b] + q;
          q = geo.gpcar[g][2][a] * geo.gpcar[g][2][b] + q;
          acc = geo.gpvol[g] * q + acc;
        }
        l.add(ln[a], ln[b], acc);
      }
    }
  }
  return l;
}

solver::CsrMatrix assemble_dt_mass(const Mesh& mesh, const Physics& phys,
                                   const ShapeTable& shape) {
  solver::CsrMatrix m(mesh.node_adjacency());
  ElementGeometry geo;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    element_geometry(mesh, shape, e, geo);
    const double dtfac = element_dt_factor(phys, mesh.material(e));
    const auto ln = mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        double acc = 0.0;
        for (int g = 0; g < kGauss; ++g) {
          const double nn = shape.n(g, a) * shape.n(g, b);
          acc = geo.gpvol[g] * nn + acc;
        }
        m.add(ln[a], ln[b], dtfac * acc);
      }
    }
  }
  return m;
}

std::vector<double> assemble_lumped_mass(const Mesh& mesh,
                                         const ShapeTable& shape) {
  std::vector<double> ml(static_cast<std::size_t>(mesh.num_nodes()), 0.0);
  ElementGeometry geo;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    element_geometry(mesh, shape, e, geo);
    const auto ln = mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      double acc = 0.0;
      for (int g = 0; g < kGauss; ++g) {
        acc = geo.gpvol[g] * shape.n(g, a) + acc;
      }
      ml[static_cast<std::size_t>(ln[a])] += acc;
    }
  }
  return ml;
}

void assemble_weak_divergence_into(const Mesh& mesh, const ShapeTable& shape,
                                   std::span<const double> vel,
                                   std::vector<double>& div) {
  const std::size_t nn = static_cast<std::size_t>(mesh.num_nodes());
  if (vel.size() != nn * kDim) {
    throw std::invalid_argument("assemble_weak_divergence: bad velocity size");
  }
  div.assign(nn, 0.0);
  ElementGeometry geo;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    element_geometry(mesh, shape, e, geo);
    const auto ln = mesh.element(e);
    for (int g = 0; g < kGauss; ++g) {
      // (∇·u)(g) = Σ_d Σ_b ∂N_b/∂x_d u_{b,d}
      double dv = 0.0;
      for (int d = 0; d < kDim; ++d) {
        for (int b = 0; b < kNodes; ++b) {
          dv = geo.gpcar[g][d][b] * vel[static_cast<std::size_t>(ln[b]) * kDim +
                                        static_cast<std::size_t>(d)] +
               dv;
        }
      }
      const double dvv = dv * geo.gpvol[g];
      for (int a = 0; a < kNodes; ++a) {
        div[static_cast<std::size_t>(ln[a])] += shape.n(g, a) * dvv;
      }
    }
  }
}

void assemble_weak_gradient_into(const Mesh& mesh, const ShapeTable& shape,
                                 std::span<const double> p,
                                 std::vector<double>& grad) {
  const std::size_t nn = static_cast<std::size_t>(mesh.num_nodes());
  if (p.size() != nn) {
    throw std::invalid_argument("assemble_weak_gradient: bad field size");
  }
  grad.assign(nn * kDim, 0.0);
  ElementGeometry geo;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    element_geometry(mesh, shape, e, geo);
    const auto ln = mesh.element(e);
    for (int g = 0; g < kGauss; ++g) {
      double gp[kDim];
      for (int d = 0; d < kDim; ++d) {
        double s = 0.0;
        for (int b = 0; b < kNodes; ++b) {
          s = geo.gpcar[g][d][b] * p[static_cast<std::size_t>(ln[b])] + s;
        }
        gp[d] = s * geo.gpvol[g];
      }
      for (int a = 0; a < kNodes; ++a) {
        const double na = shape.n(g, a);
        for (int d = 0; d < kDim; ++d) {
          grad[static_cast<std::size_t>(ln[a]) * kDim +
               static_cast<std::size_t>(d)] += na * gp[d];
        }
      }
    }
  }
}

void pin_dirichlet(solver::CsrMatrix& a, std::span<const int> nodes) {
  std::vector<char> pinned(static_cast<std::size_t>(a.rows()), 0);
  for (int r : nodes) {
    if (r < 0 || r >= a.rows()) {
      throw std::out_of_range("pin_dirichlet: node outside matrix");
    }
    pinned[static_cast<std::size_t>(r)] = 1;
  }
  for (int r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    const bool row_pinned = pinned[static_cast<std::size_t>(r)] != 0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const bool col_pinned = pinned[static_cast<std::size_t>(cols[k])] != 0;
      if (row_pinned || col_pinned) {
        vals[k] = (cols[k] == r && row_pinned) ? 1.0 : 0.0;
      }
    }
  }
}

}  // namespace vecfd::fem
