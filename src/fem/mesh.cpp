#include "fem/mesh.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vecfd::fem {

std::vector<int> rcm_ordering(const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  // Deduplicated neighbour lists sorted by (degree, id) — the visit order
  // Cuthill–McKee prescribes; sorting once per node keeps the BFS linear.
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(n));
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    std::vector<int>& row = nbr[static_cast<std::size_t>(v)];
    row.assign(adjacency[static_cast<std::size_t>(v)].begin(),
               adjacency[static_cast<std::size_t>(v)].end());
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row.erase(std::remove(row.begin(), row.end(), v), row.end());  // self
    degree[static_cast<std::size_t>(v)] = static_cast<int>(row.size());
  }
  for (int v = 0; v < n; ++v) {
    std::vector<int>& row = nbr[static_cast<std::size_t>(v)];
    std::sort(row.begin(), row.end(), [&](int a, int b) {
      const int da = degree[static_cast<std::size_t>(a)];
      const int db = degree[static_cast<std::size_t>(b)];
      return da != db ? da < db : a < b;
    });
  }

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  for (int seeded = 0; seeded < n;) {
    // component seed: unvisited node of minimum degree, lowest id on ties
    int seed = -1;
    for (int v = 0; v < n; ++v) {
      if (visited[static_cast<std::size_t>(v)]) continue;
      if (seed < 0 || degree[static_cast<std::size_t>(v)] <
                          degree[static_cast<std::size_t>(seed)]) {
        seed = v;
      }
    }
    visited[static_cast<std::size_t>(seed)] = 1;
    order.push_back(seed);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      for (int w : nbr[static_cast<std::size_t>(order[head])]) {
        if (visited[static_cast<std::size_t>(w)]) continue;
        visited[static_cast<std::size_t>(w)] = 1;
        order.push_back(w);
      }
    }
    seeded = static_cast<int>(order.size());
  }
  std::reverse(order.begin(), order.end());  // the "reverse" in RCM
  return order;
}

std::vector<int> structured_aggregates(const Mesh& mesh, int factor) {
  if (factor < 1) {
    throw std::invalid_argument(
        "structured_aggregates: factor must be >= 1");
  }
  const MeshConfig& cfg = mesh.config();
  const double dx = cfg.lx / cfg.nx;
  const double dy = cfg.ly / cfg.ny;
  const double dz = cfg.lz / cfg.nz;
  // blocks per axis over the (n+1)-node lattice; the last block on each
  // axis may be partial but never empty
  const int bx = (cfg.nx + 1 + factor - 1) / factor;
  const int by = (cfg.ny + 1 + factor - 1) / factor;
  const int n = mesh.num_nodes();
  std::vector<int> agg(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto p = mesh.node(i);
    // distortion moves interior nodes by < 0.3 of a cell, so rounding to
    // the nearest lattice plane recovers the undistorted index exactly
    const int ix = static_cast<int>(std::lround(p[0] / dx));
    const int iy = static_cast<int>(std::lround(p[1] / dy));
    const int iz = static_cast<int>(std::lround(p[2] / dz));
    agg[static_cast<std::size_t>(i)] =
        (ix / factor) + bx * ((iy / factor) + by * (iz / factor));
  }
  return agg;
}

Mesh::Mesh(const MeshConfig& cfg) : cfg_(cfg) {
  if (cfg.nx <= 0 || cfg.ny <= 0 || cfg.nz <= 0) {
    throw std::invalid_argument("Mesh: element counts must be positive");
  }
  if (cfg.lx <= 0.0 || cfg.ly <= 0.0 || cfg.lz <= 0.0) {
    throw std::invalid_argument("Mesh: domain lengths must be positive");
  }
  if (cfg.distortion < 0.0 || cfg.distortion > 0.3) {
    throw std::invalid_argument(
        "Mesh: distortion must stay in [0, 0.3] to keep Jacobians positive");
  }

  const int npx = cfg.nx + 1;
  const int npy = cfg.ny + 1;
  const int npz = cfg.nz + 1;
  num_nodes_ = npx * npy * npz;
  num_elements_ = cfg.nx * cfg.ny * cfg.nz;

  coords_.resize(static_cast<std::size_t>(num_nodes_) * kDim);
  boundary_.assign(static_cast<std::size_t>(num_nodes_), 0);
  const double dx = cfg.lx / cfg.nx;
  const double dy = cfg.ly / cfg.ny;
  const double dz = cfg.lz / cfg.nz;
  constexpr double pi = std::numbers::pi;

  for (int k = 0; k < npz; ++k) {
    for (int j = 0; j < npy; ++j) {
      for (int i = 0; i < npx; ++i) {
        const int n = i + npx * (j + npy * k);
        const double x = i * dx;
        const double y = j * dy;
        const double z = k * dz;
        // Interior nodes get a smooth sinusoidal displacement; boundary
        // nodes stay put so the domain remains a box.
        const bool bnd = i == 0 || i == cfg.nx || j == 0 || j == cfg.ny ||
                         k == 0 || k == cfg.nz;
        double ox = 0.0;
        double oy = 0.0;
        double oz = 0.0;
        if (!bnd && cfg.distortion > 0.0) {
          ox = cfg.distortion * dx * std::sin(2.0 * pi * y / cfg.ly) *
               std::sin(2.0 * pi * z / cfg.lz);
          oy = cfg.distortion * dy * std::sin(2.0 * pi * z / cfg.lz) *
               std::sin(2.0 * pi * x / cfg.lx);
          oz = cfg.distortion * dz * std::sin(2.0 * pi * x / cfg.lx) *
               std::sin(2.0 * pi * y / cfg.ly);
        }
        coords_[3 * n + 0] = x + ox;
        coords_[3 * n + 1] = y + oy;
        coords_[3 * n + 2] = z + oz;
        boundary_[static_cast<std::size_t>(n)] = bnd ? 1 : 0;
      }
    }
  }

  // Optional deterministic node renumbering (Fisher–Yates with a fixed
  // LCG), applied to coordinates, boundary flags and — below — lnods.
  std::vector<int> perm(static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) perm[static_cast<std::size_t>(n)] = n;
  if (cfg.shuffle_nodes) {
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (int n = num_nodes_ - 1; n > 0; --n) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      const int j = static_cast<int>((s >> 33) % (n + 1));
      std::swap(perm[static_cast<std::size_t>(n)],
                perm[static_cast<std::size_t>(j)]);
    }
    std::vector<double> coords(coords_.size());
    std::vector<std::uint8_t> bnd(boundary_.size());
    for (int n = 0; n < num_nodes_; ++n) {
      const int p = perm[static_cast<std::size_t>(n)];
      for (int d = 0; d < kDim; ++d) coords[3 * p + d] = coords_[3 * n + d];
      bnd[static_cast<std::size_t>(p)] = boundary_[static_cast<std::size_t>(n)];
    }
    coords_ = std::move(coords);
    boundary_ = std::move(bnd);
  }

  lnods_.resize(static_cast<std::size_t>(num_elements_) * kNodes);
  elmat_.assign(static_cast<std::size_t>(num_elements_), 0);
  auto node_id = [&](int i, int j, int k) {
    return perm[static_cast<std::size_t>(i + npx * (j + npy * k))];
  };
  int e = 0;
  for (int k = 0; k < cfg.nz; ++k) {
    for (int j = 0; j < cfg.ny; ++j) {
      for (int i = 0; i < cfg.nx; ++i, ++e) {
        std::int32_t* ln = &lnods_[static_cast<std::size_t>(e) * kNodes];
        // Ordering matches fem::shape_values' reference-node ordering.
        ln[0] = node_id(i, j, k);
        ln[1] = node_id(i + 1, j, k);
        ln[2] = node_id(i + 1, j + 1, k);
        ln[3] = node_id(i, j + 1, k);
        ln[4] = node_id(i, j, k + 1);
        ln[5] = node_id(i + 1, j, k + 1);
        ln[6] = node_id(i + 1, j + 1, k + 1);
        ln[7] = node_id(i, j + 1, k + 1);
        // A couple of material bands so phase-1 "work A" has real data to
        // branch on.
        elmat_[static_cast<std::size_t>(e)] = (k < cfg.nz / 2) ? 0 : 1;
      }
    }
  }
}

std::vector<std::vector<int>> Mesh::node_adjacency() const {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes_));
  for (int e = 0; e < num_elements_; ++e) {
    const auto ln = element(e);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        adj[static_cast<std::size_t>(ln[a])].push_back(ln[b]);
      }
    }
  }
  return adj;  // CsrMatrix's constructor sorts and dedups
}

int Mesh::num_chunks(int vector_size) const {
  if (vector_size <= 0) {
    throw std::invalid_argument("Mesh::num_chunks: vector_size must be > 0");
  }
  return (num_elements_ + vector_size - 1) / vector_size;
}

Mesh::ChunkRange Mesh::chunk(int vector_size, int chunk_index) const {
  const int nc = num_chunks(vector_size);
  if (chunk_index < 0 || chunk_index >= nc) {
    throw std::out_of_range("Mesh::chunk: chunk index out of range");
  }
  ChunkRange r;
  r.first = chunk_index * vector_size;
  const int remaining = num_elements_ - r.first;
  r.count = remaining < vector_size ? remaining : vector_size;
  return r;
}

}  // namespace vecfd::fem
