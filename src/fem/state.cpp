#include "fem/state.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vecfd::fem {

State::State(const Mesh& mesh, Physics phys)
    : num_nodes_(mesh.num_nodes()), phys_(phys) {
  if (phys_.density <= 0.0 || phys_.viscosity < 0.0 || phys_.dt <= 0.0) {
    throw std::invalid_argument("State: non-physical parameters");
  }
  unk_.resize(static_cast<std::size_t>(num_nodes_) * kDofs);
  unk_old_.resize(unk_.size());
  constexpr double pi = std::numbers::pi;
  const auto& mc = mesh.config();
  for (int n = 0; n < num_nodes_; ++n) {
    const auto x = mesh.node(n);
    const double sx = std::sin(pi * x[0] / mc.lx);
    const double sy = std::sin(pi * x[1] / mc.ly);
    const double sz = std::sin(pi * x[2] / mc.lz);
    const double cx = std::cos(pi * x[0] / mc.lx);
    const double cy = std::cos(pi * x[1] / mc.ly);
    const double cz = std::cos(pi * x[2] / mc.lz);
    double* u = &unk_[static_cast<std::size_t>(n) * kDofs];
    u[0] = sx * cy * cz;
    u[1] = -cx * sy * cz;
    u[2] = 0.25 * cx * cy * sz;
    u[3] = 0.5 * (cx * cx + cy * cy - 1.0);  // pressure
    double* uo = &unk_old_[static_cast<std::size_t>(n) * kDofs];
    // previous level: slightly decayed field, so ∂u/∂t terms are non-zero
    uo[0] = 0.95 * u[0];
    uo[1] = 0.95 * u[1];
    uo[2] = 0.95 * u[2];
    uo[3] = u[3];
  }
}

void State::push_time_level(std::span<const double> new_velocity) {
  if (new_velocity.size() !=
      static_cast<std::size_t>(num_nodes_) * kDim) {
    throw std::invalid_argument("State::push_time_level: bad velocity size");
  }
  unk_old_ = unk_;
  for (int n = 0; n < num_nodes_; ++n) {
    for (int d = 0; d < kDim; ++d) {
      unk_[static_cast<std::size_t>(n) * kDofs + d] =
          new_velocity[static_cast<std::size_t>(n) * kDim + d];
    }
  }
}

}  // namespace vecfd::fem
