#include "fem/reference_assembly.h"

#include <cmath>

namespace vecfd::fem {

double element_dt_factor(const Physics& phys, std::int32_t material) {
  const double base = phys.density / phys.dt;
  // Material band 1 models a locally adjusted time scale; the branch is the
  // kind of per-element bookkeeping phase-1 "work A" performs.
  return material == 0 ? base : 1.02 * base;
}

void element_geometry(const Mesh& mesh, const ShapeTable& shape, int elem,
                      ElementGeometry& out) {
  const auto ln = mesh.element(elem);
  double elcod[kDim][kNodes];
  for (int a = 0; a < kNodes; ++a) {
    const auto x = mesh.node(ln[a]);
    for (int d = 0; d < kDim; ++d) elcod[d][a] = x[d];
  }
  double (&gpcar)[kGauss][kDim][kNodes] = out.gpcar;
  double (&gpvol)[kGauss] = out.gpvol;
  for (int g = 0; g < kGauss; ++g) {
    double jac[kDim][kDim];
    for (int i = 0; i < kDim; ++i) {
      for (int j = 0; j < kDim; ++j) {
        double s = 0.0;
        for (int a = 0; a < kNodes; ++a) {
          s = elcod[i][a] * shape.dn(g, j, a) + s;
        }
        jac[i][j] = s;
      }
    }
    // cofactors (expression trees match the phase-3 kernel: mul, then a
    // fused multiply-subtract `t − a·b`)
    auto cof = [&](int r1, int c1, int r2, int c2, int r3, int c3, int r4,
                   int c4) {
      const double t = jac[r1][c1] * jac[r2][c2];
      return t - jac[r3][c3] * jac[r4][c4];
    };
    const double c00 = cof(1, 1, 2, 2, 1, 2, 2, 1);
    const double c01 = cof(1, 2, 2, 0, 1, 0, 2, 2);
    const double c02 = cof(1, 0, 2, 1, 1, 1, 2, 0);
    const double c10 = cof(0, 2, 2, 1, 0, 1, 2, 2);
    const double c11 = cof(0, 0, 2, 2, 0, 2, 2, 0);
    const double c12 = cof(0, 1, 2, 0, 0, 0, 2, 1);
    const double c20 = cof(0, 1, 1, 2, 0, 2, 1, 1);
    const double c21 = cof(0, 2, 1, 0, 0, 0, 1, 2);
    const double c22 = cof(0, 0, 1, 1, 0, 1, 1, 0);
    double det = jac[0][2] * c02;
    det = jac[0][1] * c01 + det;
    det = jac[0][0] * c00 + det;
    const double invdet = 1.0 / det;
    // jinv[j][d] = ∂ξ_j/∂x_d
    double jinv[kDim][kDim];
    jinv[0][0] = c00 * invdet;
    jinv[0][1] = c10 * invdet;
    jinv[0][2] = c20 * invdet;
    jinv[1][0] = c01 * invdet;
    jinv[1][1] = c11 * invdet;
    jinv[1][2] = c21 * invdet;
    jinv[2][0] = c02 * invdet;
    jinv[2][1] = c12 * invdet;
    jinv[2][2] = c22 * invdet;

    gpvol[g] = shape.weight(g) * det;
    for (int d = 0; d < kDim; ++d) {
      for (int a = 0; a < kNodes; ++a) {
        double s = 0.0;
        for (int j = 0; j < kDim; ++j) {
          s = jinv[j][d] * shape.dn(g, j, a) + s;
        }
        gpcar[g][d][a] = s;
      }
    }
  }
}

void assemble_element(const Mesh& mesh, const State& state,
                      const ShapeTable& shape, int elem, Scheme scheme,
                      ElementSystem& out) {
  const Physics& phys = state.physics();
  const auto ln = mesh.element(elem);

  // ---- phase 1/2 equivalents: gather ------------------------------------
  double elvel[2][kDim][kNodes];
  double elpre[kNodes];
  for (int a = 0; a < kNodes; ++a) {
    const int n = ln[a];
    for (int d = 0; d < kDim; ++d) {
      elvel[0][d][a] = state.velocity(n, d);
      elvel[1][d][a] = state.velocity_old(n, d);
    }
    elpre[a] = state.pressure(n);
  }
  const double dtfac = element_dt_factor(phys, mesh.material(elem));

  // ---- phase 3 equivalent: Jacobian, gpcar, gpvol ------------------------
  ElementGeometry geo;
  element_geometry(mesh, shape, elem, geo);
  const auto& gpcar = geo.gpcar;
  const auto& gpvol = geo.gpvol;

  // ---- phase 4 equivalent: Gauss-point arrays -----------------------------
  double gpvel[kGauss][2][kDim];
  double gpadv[kGauss][kDim];
  double gpgve[kGauss][kDim][kDim];  // [j][d] = ∂u_d/∂x_j
  double gppre[kGauss];
  for (int g = 0; g < kGauss; ++g) {
    for (int l = 0; l < 2; ++l) {
      for (int d = 0; d < kDim; ++d) {
        double s = 0.0;
        for (int a = 0; a < kNodes; ++a) {
          s = shape.n(g, a) * elvel[l][d][a] + s;
        }
        gpvel[g][l][d] = s;
      }
    }
    for (int d = 0; d < kDim; ++d) gpadv[g][d] = gpvel[g][0][d];
    for (int j = 0; j < kDim; ++j) {
      for (int d = 0; d < kDim; ++d) {
        double s = 0.0;
        for (int a = 0; a < kNodes; ++a) {
          s = gpcar[g][j][a] * elvel[0][d][a] + s;
        }
        gpgve[g][j][d] = s;
      }
    }
    double s = 0.0;
    for (int a = 0; a < kNodes; ++a) {
      s = shape.n(g, a) * elpre[a] + s;
    }
    gppre[g] = s;
  }

  // ---- phase 5 equivalent: stabilization + time-integration arrays -------
  // rt[g][d] = (ρ f_d + dtfac·u_old)·gpvol,  pt[g] = gppre·gpvol
  double tau[kGauss];
  double rt[kGauss][kDim];
  double pt[kGauss];
  for (int g = 0; g < kGauss; ++g) {
    const double h = std::cbrt(gpvol[g]);
    double s = gpadv[g][0] * gpadv[g][0];
    s = gpadv[g][1] * gpadv[g][1] + s;
    s = gpadv[g][2] * gpadv[g][2] + s;
    const double advnorm = std::sqrt(s);
    const double t1 = h * h;
    const double t2 = t1 * phys.density;
    const double d1 = (4.0 * phys.viscosity) / t2;
    const double t4 = advnorm * 2.0;
    const double d2 = t4 / h;
    double den = d1 + d2;
    den = den + dtfac;
    // velocity-gradient contribution (keeps gpgve load-bearing): row-major
    // Frobenius norm of ∇u
    double s2 = gpgve[g][0][0] * gpgve[g][0][0];
    for (int j = 0; j < kDim; ++j) {
      for (int d = 0; d < kDim; ++d) {
        if (j == 0 && d == 0) continue;
        s2 = gpgve[g][j][d] * gpgve[g][j][d] + s2;
      }
    }
    const double gn = std::sqrt(s2);
    den = gn * 0.1 + den;
    tau[g] = 1.0 / den;
    for (int d = 0; d < kDim; ++d) {
      const double cd = phys.density * phys.force[d];
      const double t = dtfac * gpvel[g][1][d];
      const double f = t + cd;
      rt[g][d] = f * gpvol[g];
    }
    pt[g] = gppre[g] * gpvol[g];
  }

  for (double& v : out.rhs) v = 0.0;
  for (double& v : out.block) v = 0.0;

  // mass block (semi-implicit only): M[a][b] = Σ_g N_a N_b gpvol
  double mass[kNodes][kNodes] = {};
  if (scheme == Scheme::kSemiImplicit) {
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        double acc = 0.0;
        for (int g = 0; g < kGauss; ++g) {
          const double nn = shape.n(g, a) * shape.n(g, b);
          acc = gpvol[g] * nn + acc;
        }
        mass[a][b] = acc;
      }
    }
  }

  // ---- phase 6 equivalent: SUPG convection --------------------------------
  // D[g][a] = adv·∇N_a ;  W[g][a] = (N_a + τ D_a)·ρ·gpvol
  double dmat[kGauss][kNodes];
  double wmat[kGauss][kNodes];
  for (int g = 0; g < kGauss; ++g) {
    for (int a = 0; a < kNodes; ++a) {
      double s = gpadv[g][0] * gpcar[g][0][a];
      s = gpadv[g][1] * gpcar[g][1][a] + s;
      s = gpadv[g][2] * gpcar[g][2][a] + s;
      dmat[g][a] = s;
      const double w = tau[g] * s + shape.n(g, a);
      const double rv = phys.density * gpvol[g];
      wmat[g][a] = w * rv;
    }
  }
  double conv[kNodes][kNodes];
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      double s = 0.0;
      for (int g = 0; g < kGauss; ++g) {
        s = wmat[g][a] * dmat[g][b] + s;
      }
      conv[a][b] = s;
    }
  }
  // residual assembly: elrhs[d][a] = Σ_g (N·rt + gpcar·pt)  −  Σ_b C[a][b]·u_b
  for (int a = 0; a < kNodes; ++a) {
    for (int d = 0; d < kDim; ++d) {
      double acc = 0.0;
      for (int g = 0; g < kGauss; ++g) {
        acc = rt[g][d] * shape.n(g, a) + acc;
        acc = gpcar[g][d][a] * pt[g] + acc;
      }
      for (int b = 0; b < kNodes; ++b) {
        acc = acc - conv[a][b] * elvel[0][d][b];
      }
      out.rhs[d * kNodes + a] = acc;
    }
  }

  // ---- phase 7 equivalent: viscosity (symmetric block) -------------------
  double visc[kNodes][kNodes];
  for (int a = 0; a < kNodes; ++a) {
    for (int b = a; b < kNodes; ++b) {
      double s = 0.0;
      for (int g = 0; g < kGauss; ++g) {
        double q = gpcar[g][0][a] * gpcar[g][0][b];
        q = gpcar[g][1][a] * gpcar[g][1][b] + q;
        q = gpcar[g][2][a] * gpcar[g][2][b] + q;
        const double mv = phys.viscosity * gpvol[g];
        s = mv * q + s;
      }
      visc[a][b] = s;
      visc[b][a] = s;
    }
  }
  for (int a = 0; a < kNodes; ++a) {
    for (int d = 0; d < kDim; ++d) {
      double acc = out.rhs[d * kNodes + a];
      for (int b = 0; b < kNodes; ++b) {
        acc = acc - visc[a][b] * elvel[0][d][b];
      }
      out.rhs[d * kNodes + a] = acc;
    }
  }

  if (scheme == Scheme::kSemiImplicit) {
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        const double m = dtfac * mass[a][b];
        const double cv = conv[a][b] + visc[a][b];
        out.block[a * kNodes + b] = m + cv;
      }
    }
  }
}

GlobalSystem assemble_global(const Mesh& mesh, const State& state,
                             const ShapeTable& shape, Scheme scheme) {
  GlobalSystem sys;
  sys.rhs.assign(static_cast<std::size_t>(mesh.num_nodes()) * kDim, 0.0);
  if (scheme == Scheme::kSemiImplicit) {
    sys.matrix = solver::CsrMatrix(mesh.node_adjacency());
    sys.has_matrix = true;
  }
  ElementSystem es;
  for (int e = 0; e < mesh.num_elements(); ++e) {
    assemble_element(mesh, state, shape, e, scheme, es);
    const auto ln = mesh.element(e);
    for (int a = 0; a < kNodes; ++a) {
      const int n = ln[a];
      for (int d = 0; d < kDim; ++d) {
        sys.rhs[static_cast<std::size_t>(n) * kDim + d] +=
            es.rhs[d * kNodes + a];
      }
    }
    if (scheme == Scheme::kSemiImplicit) {
      for (int a = 0; a < kNodes; ++a) {
        for (int b = 0; b < kNodes; ++b) {
          sys.matrix.add(ln[a], ln[b], es.block[a * kNodes + b]);
        }
      }
    }
  }
  return sys;
}

}  // namespace vecfd::fem
