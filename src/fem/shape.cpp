#include "fem/shape.h"

#include <stdexcept>

namespace vecfd::fem {

namespace {
// Reference-node coordinates of the Q1 hexahedron, standard ordering.
constexpr std::array<std::array<double, 3>, kNodes> kRefNodes = {{
    {-1.0, -1.0, -1.0},
    {+1.0, -1.0, -1.0},
    {+1.0, +1.0, -1.0},
    {-1.0, +1.0, -1.0},
    {-1.0, -1.0, +1.0},
    {+1.0, -1.0, +1.0},
    {+1.0, +1.0, +1.0},
    {-1.0, +1.0, +1.0},
}};
}  // namespace

std::array<double, kNodes> shape_values(const std::array<double, 3>& xi) {
  std::array<double, kNodes> n{};
  for (int a = 0; a < kNodes; ++a) {
    n[a] = 0.125 * (1.0 + kRefNodes[a][0] * xi[0]) *
           (1.0 + kRefNodes[a][1] * xi[1]) * (1.0 + kRefNodes[a][2] * xi[2]);
  }
  return n;
}

std::array<double, kDim * kNodes> shape_derivatives(
    const std::array<double, 3>& xi) {
  std::array<double, kDim * kNodes> dn{};
  for (int a = 0; a < kNodes; ++a) {
    const double fx = 1.0 + kRefNodes[a][0] * xi[0];
    const double fy = 1.0 + kRefNodes[a][1] * xi[1];
    const double fz = 1.0 + kRefNodes[a][2] * xi[2];
    dn[0 * kNodes + a] = 0.125 * kRefNodes[a][0] * fy * fz;
    dn[1 * kNodes + a] = 0.125 * fx * kRefNodes[a][1] * fz;
    dn[2 * kNodes + a] = 0.125 * fx * fy * kRefNodes[a][2];
  }
  return dn;
}

ShapeTable::ShapeTable(const HexQuadrature& quad) : ng_(quad.size()) {
  if (ng_ != kGauss) {
    throw std::invalid_argument(
        "ShapeTable: the assembly kernels are specialized for the 2x2x2 rule "
        "(8 Gauss points)");
  }
  for (int g = 0; g < ng_; ++g) {
    const auto nv = shape_values(quad.point(g));
    const auto dv = shape_derivatives(quad.point(g));
    for (int a = 0; a < kNodes; ++a) n_[g * kNodes + a] = nv[a];
    for (int j = 0; j < kDim; ++j) {
      for (int a = 0; a < kNodes; ++a) {
        dn_[(g * kDim + j) * kNodes + a] = dv[j * kNodes + a];
      }
    }
    w_[g] = quad.weight(g);
  }
}

}  // namespace vecfd::fem
