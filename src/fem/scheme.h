// vecfd::fem — time-integration scheme selector.
//
// §2.3 of the paper: "Element matrices are computed only if the
// semi-implicit numerical scheme is considered."  The explicit scheme
// assembles only the right-hand side; the semi-implicit scheme additionally
// assembles the momentum operator into the global sparse matrix
// (making phase 8 markedly heavier).
#pragma once

namespace vecfd::fem {

enum class Scheme {
  kExplicit,      ///< RHS-only assembly (the paper's default configuration)
  kSemiImplicit,  ///< RHS + element matrices scattered into the global CSR
};

constexpr const char* to_string(Scheme s) {
  return s == Scheme::kExplicit ? "explicit" : "semi-implicit";
}

}  // namespace vecfd::fem
