// vecfd::fem — trilinear (Q1) hexahedron shape functions.
#pragma once

#include <array>

#include "fem/element.h"
#include "fem/quadrature.h"

namespace vecfd::fem {

/// Evaluate the 8 trilinear shape functions at reference point (ξ, η, ζ).
std::array<double, kNodes> shape_values(const std::array<double, 3>& xi);

/// Evaluate the reference-space derivatives ∂N_a/∂ξ_j, laid out [j][a].
std::array<double, kDim * kNodes> shape_derivatives(
    const std::array<double, 3>& xi);

/// Shape functions and derivatives tabulated at the Gauss points of the
/// standard 2×2×2 rule — the constant tables every assembly kernel reads
/// (in Alya these are the `gpsha` / `deriv` element-type tables).
class ShapeTable {
 public:
  explicit ShapeTable(const HexQuadrature& quad = HexQuadrature{2});

  /// N_a evaluated at Gauss point g.
  double n(int g, int a) const { return n_[g * kNodes + a]; }
  /// ∂N_a/∂ξ_j evaluated at Gauss point g.
  double dn(int g, int j, int a) const {
    return dn_[(g * kDim + j) * kNodes + a];
  }
  /// Quadrature weight of Gauss point g.
  double weight(int g) const { return w_[g]; }

  int num_gauss() const { return ng_; }

 private:
  int ng_ = 0;
  std::array<double, kGauss * kNodes> n_{};
  std::array<double, kGauss * kDim * kNodes> dn_{};
  std::array<double, kGauss> w_{};
};

}  // namespace vecfd::fem
