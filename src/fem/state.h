// vecfd::fem — nodal flow state and physical parameters.
//
// Unknowns are stored node-major with the four degrees of freedom
// (u, v, w, p) contiguous per node.  This AoS layout matters to the paper's
// story: it is what makes the compiler's VEC2 attempt vectorize the short
// per-node dof loop (AVL = 4) instead of the long element dimension.
#pragma once

#include <span>
#include <vector>

#include "fem/element.h"
#include "fem/mesh.h"

namespace vecfd::fem {

struct Physics {
  double density = 1.0;    ///< ρ
  double viscosity = 0.01; ///< μ
  double dt = 0.05;        ///< time-step size
  double force[kDim] = {0.0, 0.0, -0.1};  ///< body force (e.g. gravity)
};

class State {
 public:
  /// Initialize with a smooth deterministic analytic field (a Taylor–Green
  /// style vortex plus a pressure wave); `old` holds the previous time level.
  explicit State(const Mesh& mesh, Physics phys = {});

  int num_nodes() const { return num_nodes_; }
  const Physics& physics() const { return phys_; }
  Physics& physics() { return phys_; }

  /// Current unknowns, [node][kDofs] = (u, v, w, p).
  std::span<const double> unknowns() const { return unk_; }
  std::span<double> unknowns() { return unk_; }
  /// Previous-time-level unknowns, same layout.
  std::span<const double> unknowns_old() const { return unk_old_; }
  std::span<double> unknowns_old() { return unk_old_; }

  const double* unknowns_data() const { return unk_.data(); }
  const double* unknowns_old_data() const { return unk_old_.data(); }

  double velocity(int node, int dim) const { return unk_[node * kDofs + dim]; }
  double pressure(int node) const { return unk_[node * kDofs + kDim]; }
  double velocity_old(int node, int dim) const {
    return unk_old_[node * kDofs + dim];
  }

  /// Advance: current becomes old; @p new_velocity ([node][kDim]) becomes
  /// current velocity (pressure is carried over).
  void push_time_level(std::span<const double> new_velocity);

 private:
  int num_nodes_ = 0;
  Physics phys_;
  std::vector<double> unk_;      // [node][4]
  std::vector<double> unk_old_;  // [node][4]
};

}  // namespace vecfd::fem
