// vecfd::fem — golden scalar Navier–Stokes element assembly.
//
// This is the correctness oracle for every mini-app variant: a plain,
// unvectorized, simulator-free implementation of exactly the computation
// the 8 phases perform (gather → Jacobian → Gauss-point arrays → time
// integration → convection → viscosity → scatter).  The floating-point
// evaluation order matches the phase kernels term by term, so agreement is
// expected at (near) machine precision for every VECTOR_SIZE and
// optimization level.
//
// Discretization: Q1 hexahedra, 2×2×2 Gauss rule, SUPG-stabilized
// convection, Laplacian viscous form.  The momentum operator's
// dimension-block structure is diagonal (one shared pnode×pnode block),
// see DESIGN.md §2 for the relation to Alya's storage.
#pragma once

#include <array>
#include <vector>

#include "fem/element.h"
#include "fem/mesh.h"
#include "fem/scheme.h"
#include "fem/shape.h"
#include "fem/state.h"
#include "solver/csr.h"

namespace vecfd::fem {

/// Per-element assembly output.
struct ElementSystem {
  /// Momentum residual RHS, laid out [d][a] (dimension-major).
  std::array<double, kDim * kNodes> rhs{};
  /// Combined semi-implicit block K = (ρ/Δt)·M + C + V, laid out [a][b].
  /// Only filled for Scheme::kSemiImplicit.
  std::array<double, kNodes * kNodes> block{};

  double rhs_at(int d, int a) const { return rhs[d * kNodes + a]; }
  double block_at(int a, int b) const { return block[a * kNodes + b]; }
};

/// Per-element geometry at the Gauss points: Cartesian shape derivatives
/// and weighted Jacobian determinants (the phase-3 output).  Shared by the
/// reference assembly and the projection operators (fem/projection.h) so
/// every operator sees bit-identical element geometry.
struct ElementGeometry {
  /// gpcar[g][d][a] = ∂N_a/∂x_d at Gauss point g.
  double gpcar[kGauss][kDim][kNodes];
  /// gpvol[g] = w_g·det J at Gauss point g.
  double gpvol[kGauss];
};

/// Evaluate the geometry pipeline (gather coords → Jacobian → cofactor
/// inverse → gpcar/gpvol) for element @p elem.
void element_geometry(const Mesh& mesh, const ShapeTable& shape, int elem,
                      ElementGeometry& out);

/// Assemble one element.  @p elem must be a valid element id.
void assemble_element(const Mesh& mesh, const State& state,
                      const ShapeTable& shape, int elem, Scheme scheme,
                      ElementSystem& out);

/// Fully assembled global system.
struct GlobalSystem {
  std::vector<double> rhs;    ///< [node·kDim], dimension-major per node
  solver::CsrMatrix matrix;   ///< scalar momentum operator (semi-implicit)
  bool has_matrix = false;
};

/// Assemble the whole mesh in ascending element order (the order the
/// chunked mini-app also uses, so floating-point accumulation matches).
GlobalSystem assemble_global(const Mesh& mesh, const State& state,
                             const ShapeTable& shape, Scheme scheme);

/// The per-element ρ/Δt factor including the material adjustment performed
/// by phase-1 "work A" (shared here so reference and mini-app agree).
double element_dt_factor(const Physics& phys, std::int32_t material);

}  // namespace vecfd::fem
