// vecfd::fem — deterministic mesh partitioner for domain-decomposition
// sharding (DESIGN.md §9).
//
// partition_mesh carves the solve-ordered node range into P contiguous,
// strip-aligned ownership ranges (solver::strip_bounds) and derives, per
// shard, the overlap-1 ghost closure from the mesh's node adjacency — the
// sparsity pattern of the assembled scalar operator, so every column a
// shard's owned rows reference is locally addressable.  Composes with
// fem::rcm_ordering through @p perm (perm[new] = old, the same convention
// as solver::permute_symmetric): ownership and ghosts are computed in the
// SOLVE ordering, exactly the index space the sharded solver works in.
//
// Elements are assigned to the shard owning their lowest solve-ordered
// node — a deterministic rule that keeps element work aligned with the
// node ownership the halo volume is priced against.
#pragma once

#include <span>
#include <vector>

#include "fem/mesh.h"
#include "solver/sharding.h"

namespace vecfd::fem {

struct MeshPartition {
  solver::ShardPlan plan;
  std::vector<int> element_shard;  ///< size mesh.num_elements()
};

/// Partition @p mesh into @p shards subdomains with ownership bounds
/// aligned to @p quantum (the solver's effective strip).  @p perm is the
/// solve ordering (perm[new] = old node id); empty means identity.
/// @throws std::invalid_argument on shards < 1, quantum < 1, or a perm
/// that is not a permutation of the mesh's nodes.
MeshPartition partition_mesh(const Mesh& mesh, int shards, int quantum,
                             std::span<const int> perm = {});

}  // namespace vecfd::fem
