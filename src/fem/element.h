// vecfd::fem — compile-time element description.
//
// The mini-app mirrors Alya's Nastin assembly on trilinear (Q1) hexahedra:
// 8 nodes, 8 Gauss points, 3 space dimensions.  These are compile-time
// constants throughout — exactly the kind of information the paper's VEC2
// lesson says the compiler must see ("provide loop limits at compile time").
#pragma once

namespace vecfd::fem {

inline constexpr int kDim = 3;    ///< ndime
inline constexpr int kNodes = 8;  ///< pnode (Q1 hexahedron)
inline constexpr int kGauss = 8;  ///< pgaus (2×2×2 Gauss–Legendre)
inline constexpr int kDofs = 4;   ///< velocity (3) + pressure (1) per node

}  // namespace vecfd::fem
