// vecfd::fem — Gauss–Legendre quadrature on [-1, 1] and its tensor-product
// extension to the reference hexahedron [-1, 1]³.
#pragma once

#include <array>
#include <vector>

namespace vecfd::fem {

/// 1-D Gauss–Legendre rule with @p n points (n ∈ [1, 4]).
/// Exact for polynomials of degree ≤ 2n − 1.
struct GaussRule1D {
  std::vector<double> points;
  std::vector<double> weights;
};

/// @throws std::invalid_argument for unsupported point counts.
GaussRule1D gauss_legendre_1d(int n);

/// Tensor-product rule on the reference hexahedron.
struct HexQuadrature {
  /// @param n_per_axis points per axis (default 2 → the mini-app's 8-point
  ///        rule, pgaus = 8).
  explicit HexQuadrature(int n_per_axis = 2);

  int size() const { return static_cast<int>(weights_.size()); }
  /// Reference coordinates (ξ, η, ζ) of point @p g.
  const std::array<double, 3>& point(int g) const { return points_[g]; }
  double weight(int g) const { return weights_[g]; }

 private:
  std::vector<std::array<double, 3>> points_;
  std::vector<double> weights_;
};

}  // namespace vecfd::fem
