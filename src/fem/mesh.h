// vecfd::fem — structured hexahedral mesh with VECTOR_SIZE chunking.
//
// Alya packs mesh elements into VECTOR_SIZE-sized groups processed per
// kernel call (§2.3: "VECTOR_SIZE ... represents the amount of elements the
// kernel processes per single call from a bigger mesh").  The mesh exposes
// the same chunk view; the layout of element data inside a chunk (SoA with
// the element index fastest) lives in vecfd::miniapp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fem/element.h"

namespace vecfd::fem {

struct MeshConfig {
  int nx = 8, ny = 8, nz = 8;          ///< elements per axis
  double lx = 1.0, ly = 1.0, lz = 1.0; ///< domain lengths
  /// Smooth coordinate distortion amplitude (fraction of the cell size);
  /// non-zero keeps Jacobians non-trivial, as in a real CFD mesh.
  double distortion = 0.05;
  /// Deterministically permute the node numbering.  Production meshes
  /// (Alya's included) are rarely lexicographically ordered; shuffling
  /// degrades the gather locality of phases 1/2/8 the way an unstructured
  /// numbering does, which stresses the cache-driven behaviour the paper
  /// analyzes in Table 6.
  bool shuffle_nodes = false;
};

/// Reverse-Cuthill–McKee ordering of a node adjacency (the sparsity
/// pattern the scalar operators assemble into): perm[new] = old.  BFS from
/// a minimum-degree node, visiting neighbours by ascending (degree, id),
/// then reversed — the classic bandwidth-minimizing numbering that turns
/// the solve-phase x-gathers into near-banded, cache-line-reusing accesses
/// (the OP2 lesson the sparse-format co-design layer builds on; DESIGN.md
/// §6).  Fully deterministic; handles disconnected components by
/// restarting from the lowest-id unvisited minimum-degree node.  Self
/// edges are ignored; the input may contain duplicates.
std::vector<int> rcm_ordering(const std::vector<std::vector<int>>& adjacency);

class Mesh;

/// Deflation coarse space for the preconditioner ladder (solver::
/// Preconditioner, DESIGN.md §8): group the (nx+1)·(ny+1)·(nz+1) nodes
/// into lattice blocks of `factor` nodes per axis and return, per node,
/// its aggregate id.  The lattice index of every node is recovered from
/// its coordinates — distortion offsets interior nodes by at most
/// `distortion` (≤ 0.3) of a cell per axis, so round(coord/d) is exact —
/// which makes the result independent of node numbering (shuffle-robust)
/// and fully deterministic.  Aggregate ids are dense in [0, n_aggregates)
/// and every aggregate is non-empty (partial blocks at the high faces are
/// simply smaller).  @throws std::invalid_argument when factor < 1.
std::vector<int> structured_aggregates(const Mesh& mesh, int factor);

class Mesh {
 public:
  explicit Mesh(const MeshConfig& cfg);

  int num_nodes() const { return num_nodes_; }
  int num_elements() const { return num_elements_; }
  const MeshConfig& config() const { return cfg_; }

  /// Coordinates of node n (AoS: x, y, z contiguous per node).
  std::span<const double, kDim> node(int n) const {
    return std::span<const double, kDim>(&coords_[3 * n], kDim);
  }
  const double* coords_data() const { return coords_.data(); }

  /// Connectivity of element e (8 node ids).
  std::span<const std::int32_t, kNodes> element(int e) const {
    return std::span<const std::int32_t, kNodes>(&lnods_[kNodes * e], kNodes);
  }
  const std::int32_t* lnods_data() const { return lnods_.data(); }

  /// Material id per element (used by the phase-1 "work A" bookkeeping).
  std::int32_t material(int e) const { return elmat_[e]; }
  const std::int32_t* material_data() const { return elmat_.data(); }

  /// Nodes on the domain boundary (for Dirichlet conditions in examples).
  bool is_boundary_node(int n) const { return boundary_[n] != 0; }

  /// Node-to-node adjacency (including self) — the sparsity pattern of the
  /// assembled scalar operator.
  std::vector<std::vector<int>> node_adjacency() const;

  // ---- VECTOR_SIZE chunk view -------------------------------------------
  int num_chunks(int vector_size) const;
  struct ChunkRange {
    int first = 0;  ///< first element id
    int count = 0;  ///< valid elements (≤ vector_size for the tail chunk)
  };
  ChunkRange chunk(int vector_size, int chunk_index) const;

 private:
  MeshConfig cfg_;
  int num_nodes_ = 0;
  int num_elements_ = 0;
  std::vector<double> coords_;        // [node][3]
  std::vector<std::int32_t> lnods_;   // [elem][8]
  std::vector<std::int32_t> elmat_;   // [elem]
  std::vector<std::uint8_t> boundary_;  // [node]
};

}  // namespace vecfd::fem
