#include "fem/quadrature.h"

#include <cmath>
#include <stdexcept>

namespace vecfd::fem {

GaussRule1D gauss_legendre_1d(int n) {
  GaussRule1D r;
  switch (n) {
    case 1:
      r.points = {0.0};
      r.weights = {2.0};
      break;
    case 2: {
      const double p = 1.0 / std::sqrt(3.0);
      r.points = {-p, p};
      r.weights = {1.0, 1.0};
      break;
    }
    case 3: {
      const double p = std::sqrt(3.0 / 5.0);
      r.points = {-p, 0.0, p};
      r.weights = {5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0};
      break;
    }
    case 4: {
      const double a = std::sqrt(3.0 / 7.0 - 2.0 / 7.0 * std::sqrt(6.0 / 5.0));
      const double b = std::sqrt(3.0 / 7.0 + 2.0 / 7.0 * std::sqrt(6.0 / 5.0));
      const double wa = (18.0 + std::sqrt(30.0)) / 36.0;
      const double wb = (18.0 - std::sqrt(30.0)) / 36.0;
      r.points = {-b, -a, a, b};
      r.weights = {wb, wa, wa, wb};
      break;
    }
    default:
      throw std::invalid_argument(
          "gauss_legendre_1d: supported point counts are 1..4");
  }
  return r;
}

HexQuadrature::HexQuadrature(int n_per_axis) {
  const GaussRule1D r1 = gauss_legendre_1d(n_per_axis);
  const int n = n_per_axis;
  points_.reserve(static_cast<std::size_t>(n) * n * n);
  weights_.reserve(static_cast<std::size_t>(n) * n * n);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        points_.push_back({r1.points[i], r1.points[j], r1.points[k]});
        weights_.push_back(r1.weights[i] * r1.weights[j] * r1.weights[k]);
      }
    }
  }
}

}  // namespace vecfd::fem
