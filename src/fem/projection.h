// vecfd::fem — pressure-projection operators for the transient loop.
//
// The semi-implicit time step of the mini-app is a classic incremental
// pressure-projection (Chorin/Temam with pressure increment):
//
//   1. momentum:    K u* = (ρ/Δt)·M u^n + F + G p^n     (phases 1–9)
//   2. pressure:    L φ  = −(ρ/Δt)·D u*                  (phase 10, SPD CG)
//   3. correction:  u^{n+1} = u* − (Δt/ρ)·M_L⁻¹ Ĝ φ,  p^{n+1} = p^n + φ
//                                                        (phase 11, BLAS-1)
//
// This module assembles the host-side operators of steps 2–3 on the scalar
// pressure space (one dof per node, the mesh's node adjacency pattern):
//
//   L    stiffness (Laplacian)  L[a][b]  = ∫ ∇N_a·∇N_b          (SPD)
//   M_L  lumped mass            M_L[a]   = ∫ N_a
//   Mdt  dtfac-weighted mass    Mdt[a][b] = Σ_e dtfac_e ∫ N_a N_b
//   D    weak divergence        (D u)_a  = ∫ N_a ∇·u
//   Ĝ    weak gradient          (Ĝ p)_{a,d} = ∫ N_a ∂p/∂x_d
//
// Like the ELL mirror of solver/vkernels.h, operator assembly here is
// host-side and uncounted: L / M_L / Mdt are built once per campaign and
// amortize over every time step, and the per-step D/Ĝ evaluations feed the
// instrumented phase-10/11 kernels that the co-design analysis targets.
// The geometry pipeline (Jacobian → gpcar → gpvol) reuses the expression
// order of fem/reference_assembly.cpp so all operators see identical
// element geometry.  See DESIGN.md §4.
#pragma once

#include <span>
#include <vector>

#include "fem/element.h"
#include "fem/mesh.h"
#include "fem/shape.h"
#include "fem/state.h"
#include "solver/csr.h"

namespace vecfd::fem {

/// Stiffness matrix L[a][b] = Σ_e Σ_g ∇N_a·∇N_b gpvol on the node-adjacency
/// pattern — the SPD pressure-Poisson operator of phase 10.
solver::CsrMatrix assemble_pressure_laplacian(const Mesh& mesh,
                                              const ShapeTable& shape);

/// dtfac-weighted consistent mass Mdt[a][b] = Σ_e dtfac_e Σ_g N_a N_b gpvol
/// with dtfac_e = element_dt_factor(phys, material_e) — the time-derivative
/// block of the momentum operator K, split out so the transient loop can
/// form the backward-Euler RHS b = rhs_assembled + (K − Mdt)·u^n.
solver::CsrMatrix assemble_dt_mass(const Mesh& mesh, const Physics& phys,
                                   const ShapeTable& shape);

/// Lumped mass M_L[a] = Σ_e Σ_g N_a gpvol (row-sum lumping; every entry is
/// strictly positive on a valid mesh).
std::vector<double> assemble_lumped_mass(const Mesh& mesh,
                                         const ShapeTable& shape);

/// Weak divergence (D u)_a = Σ_e Σ_g N_a (∇·u)(g) gpvol of a nodal velocity
/// field `vel` laid out [node·kDim].  Reuses @p out's storage across
/// repeated calls: the TimeLoop evaluates D every step and feeds `out` to
/// instrumented kernels, so its memory lines must stay put (see
/// mem/memory_hierarchy.h on first-touch determinism).
void assemble_weak_divergence_into(const Mesh& mesh, const ShapeTable& shape,
                                   std::span<const double> vel,
                                   std::vector<double>& out);

/// Weak gradient (Ĝ p)_{a,d} = Σ_e Σ_g N_a (∂p/∂x_d)(g) gpvol of a nodal
/// scalar field `p` [node]; laid out [node·kDim].  Same reuse contract as
/// the divergence.
void assemble_weak_gradient_into(const Mesh& mesh, const ShapeTable& shape,
                                 std::span<const double> p,
                                 std::vector<double>& out);

/// Impose homogeneous Dirichlet rows symmetrically: for every node r in
/// @p nodes, row r and column r are zeroed and the diagonal set to 1, so an
/// SPD matrix stays SPD (the pinned-node regularization of the pure-Neumann
/// Poisson problem, or a Dirichlet outlet plane).  Callers zero the matching
/// RHS entries.  @p nodes must be valid row indices.
void pin_dirichlet(solver::CsrMatrix& a, std::span<const int> nodes);

}  // namespace vecfd::fem
