// Phase 6: SUPG convection — the advective derivative D, the weighted test
// function W, the convection block C = Σ W·D, and the momentum residual
// (time/pressure integral minus C·u).  The FMA-dominated heart of the
// mini-app (§2.3: "three sets of nested loops involving heavy arithmetic").
// Phase 7: the symmetric viscous block and its application, plus the
// combined semi-implicit element matrix K = dtfac·M + C + V.
#include "miniapp/phases.h"

namespace vecfd::miniapp {

using fem::kDim;
using fem::kGauss;
using fem::kNodes;
using sim::Vec;
using sim::Vpu;

namespace {

// ---- phase 6 subkernels ---------------------------------------------------

void p6_dw_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g, int off,
                  int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  const fem::Physics& phys = ctx.state->physics();
  vpu.set_vl(n);
  const Vec a0 = vpu.vload(ch.gpadv(g, 0) + off);
  const Vec a1 = vpu.vload(ch.gpadv(g, 1) + off);
  const Vec a2 = vpu.vload(ch.gpadv(g, 2) + off);
  const Vec tg = vpu.vload(ch.tau(g) + off);
  const Vec vol = vpu.vload(ch.gpvol(g) + off);
  const Vec rv = vpu.vmul_s(vol, phys.density);
  for (int a = 0; a < kNodes; ++a) {
    const Vec c0 = vpu.vload(ch.gpcar(g, 0, a) + off);
    const Vec c1 = vpu.vload(ch.gpcar(g, 1, a) + off);
    const Vec c2 = vpu.vload(ch.gpcar(g, 2, a) + off);
    Vec t = vpu.vmul(a0, c0);
    t = vpu.vfma(a1, c1, t);
    t = vpu.vfma(a2, c2, t);
    vpu.vstore(ch.dmat(g, a) + off, t);
    const Vec nsp = vpu.vsplat(sh.n(g, a));
    const Vec w = vpu.vfma(tg, t, nsp);
    const Vec wm = vpu.vmul(w, rv);
    vpu.vstore(ch.wmat(g, a) + off, wm);
  }
}

void p6_dw_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g, int off,
                  int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  const fem::Physics& phys = ctx.state->physics();
  for (int iv = off; iv < off + n; ++iv) {
    const double a0 = vpu.sload(ch.gpadv(g, 0) + iv);
    const double a1 = vpu.sload(ch.gpadv(g, 1) + iv);
    const double a2 = vpu.sload(ch.gpadv(g, 2) + iv);
    const double tg = vpu.sload(ch.tau(g) + iv);
    const double vol = vpu.sload(ch.gpvol(g) + iv);
    const double rv = vpu.smul(vol, phys.density);
    for (int a = 0; a < kNodes; ++a) {
      const double c0 = vpu.sload(ch.gpcar(g, 0, a) + iv);
      const double c1 = vpu.sload(ch.gpcar(g, 1, a) + iv);
      const double c2 = vpu.sload(ch.gpcar(g, 2, a) + iv);
      double t = vpu.smul(a0, c0);
      t = vpu.sfma(a1, c1, t);
      t = vpu.sfma(a2, c2, t);
      vpu.sstore(ch.dmat(g, a) + iv, t);
      const double w = vpu.sfma(tg, t, sh.n(g, a));
      const double wm = vpu.smul(w, rv);
      vpu.sstore(ch.wmat(g, a) + iv, wm);
    }
  }
}

void p6_cab_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                   int n) {
  (void)ctx;
  vpu.set_vl(n);
  for (int a = 0; a < kNodes; ++a) {
    Vec wa[kGauss];
    for (int g = 0; g < kGauss; ++g) wa[g] = vpu.vload(ch.wmat(g, a) + off);
    for (int b = 0; b < kNodes; ++b) {
      Vec acc = vpu.vmul(wa[0], vpu.vload(ch.dmat(0, b) + off));
      for (int g = 1; g < kGauss; ++g) {
        acc = vpu.vfma(wa[g], vpu.vload(ch.dmat(g, b) + off), acc);
      }
      vpu.vstore(ch.conv(a, b) + off, acc);
    }
  }
}

void p6_cab_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                   int n) {
  (void)ctx;
  for (int iv = off; iv < off + n; ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      double wa[kGauss];
      for (int g = 0; g < kGauss; ++g) wa[g] = vpu.sload(ch.wmat(g, a) + iv);
      for (int b = 0; b < kNodes; ++b) {
        double acc = vpu.smul(wa[0], vpu.sload(ch.dmat(0, b) + iv));
        for (int g = 1; g < kGauss; ++g) {
          acc = vpu.sfma(wa[g], vpu.sload(ch.dmat(g, b) + iv), acc);
        }
        vpu.sstore(ch.conv(a, b) + iv, acc);
      }
    }
  }
}

void p6_apply_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                     int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  for (int a = 0; a < kNodes; ++a) {
    for (int d = 0; d < kDim; ++d) {
      Vec acc = vpu.vmul_s(vpu.vload(ch.gprhs(0, d) + off), sh.n(0, a));
      acc = vpu.vfma(vpu.vload(ch.gpcar(0, d, a) + off),
                     vpu.vload(ch.gppre_t(0) + off), acc);
      for (int g = 1; g < kGauss; ++g) {
        acc = vpu.vfma_s(vpu.vload(ch.gprhs(g, d) + off), sh.n(g, a), acc);
        acc = vpu.vfma(vpu.vload(ch.gpcar(g, d, a) + off),
                       vpu.vload(ch.gppre_t(g) + off), acc);
      }
      for (int b = 0; b < kNodes; ++b) {
        acc = vpu.vfnma(vpu.vload(ch.conv(a, b) + off),
                        vpu.vload(ch.elvel(d, b) + off), acc);
      }
      vpu.vstore(ch.elrhs(d, a) + off, acc);
    }
  }
}

void p6_apply_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                     int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      for (int d = 0; d < kDim; ++d) {
        double acc = vpu.smul(vpu.sload(ch.gprhs(0, d) + iv), sh.n(0, a));
        acc = vpu.sfma(vpu.sload(ch.gpcar(0, d, a) + iv),
                       vpu.sload(ch.gppre_t(0) + iv), acc);
        for (int g = 1; g < kGauss; ++g) {
          acc = vpu.sfma(vpu.sload(ch.gprhs(g, d) + iv), sh.n(g, a), acc);
          acc = vpu.sfma(vpu.sload(ch.gpcar(g, d, a) + iv),
                         vpu.sload(ch.gppre_t(g) + iv), acc);
        }
        for (int b = 0; b < kNodes; ++b) {
          acc = vpu.sfnma(vpu.sload(ch.conv(a, b) + iv),
                          vpu.sload(ch.elvel(d, b) + iv), acc);
        }
        vpu.sstore(ch.elrhs(d, a) + iv, acc);
      }
    }
  }
}

// ---- phase 7 subkernels ---------------------------------------------------

void p7_blk_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                   int n) {
  const fem::Physics& phys = ctx.state->physics();
  vpu.set_vl(n);
  Vec mv[kGauss];
  for (int g = 0; g < kGauss; ++g) {
    mv[g] = vpu.vmul_s(vpu.vload(ch.gpvol(g) + off), phys.viscosity);
  }
  for (int a = 0; a < kNodes; ++a) {
    for (int b = a; b < kNodes; ++b) {
      Vec acc;
      for (int g = 0; g < kGauss; ++g) {
        Vec q = vpu.vmul(vpu.vload(ch.gpcar(g, 0, a) + off),
                         vpu.vload(ch.gpcar(g, 0, b) + off));
        q = vpu.vfma(vpu.vload(ch.gpcar(g, 1, a) + off),
                     vpu.vload(ch.gpcar(g, 1, b) + off), q);
        q = vpu.vfma(vpu.vload(ch.gpcar(g, 2, a) + off),
                     vpu.vload(ch.gpcar(g, 2, b) + off), q);
        acc = g == 0 ? vpu.vmul(mv[0], q) : vpu.vfma(mv[g], q, acc);
      }
      vpu.vstore(ch.visc(a, b) + off, acc);
      if (b != a) vpu.vstore(ch.visc(b, a) + off, acc);
    }
  }
}

void p7_blk_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                   int n) {
  const fem::Physics& phys = ctx.state->physics();
  for (int iv = off; iv < off + n; ++iv) {
    double mv[kGauss];
    for (int g = 0; g < kGauss; ++g) {
      mv[g] = vpu.smul(vpu.sload(ch.gpvol(g) + iv), phys.viscosity);
    }
    for (int a = 0; a < kNodes; ++a) {
      for (int b = a; b < kNodes; ++b) {
        double acc = 0.0;
        for (int g = 0; g < kGauss; ++g) {
          double q = vpu.smul(vpu.sload(ch.gpcar(g, 0, a) + iv),
                              vpu.sload(ch.gpcar(g, 0, b) + iv));
          q = vpu.sfma(vpu.sload(ch.gpcar(g, 1, a) + iv),
                       vpu.sload(ch.gpcar(g, 1, b) + iv), q);
          q = vpu.sfma(vpu.sload(ch.gpcar(g, 2, a) + iv),
                       vpu.sload(ch.gpcar(g, 2, b) + iv), q);
          acc = g == 0 ? vpu.smul(mv[0], q) : vpu.sfma(mv[g], q, acc);
        }
        vpu.sstore(ch.visc(a, b) + iv, acc);
        if (b != a) vpu.sstore(ch.visc(b, a) + iv, acc);
      }
    }
  }
}

void p7_apply_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                     int n) {
  (void)ctx;
  vpu.set_vl(n);
  for (int a = 0; a < kNodes; ++a) {
    for (int d = 0; d < kDim; ++d) {
      Vec acc = vpu.vload(ch.elrhs(d, a) + off);
      for (int b = 0; b < kNodes; ++b) {
        acc = vpu.vfnma(vpu.vload(ch.visc(a, b) + off),
                        vpu.vload(ch.elvel(d, b) + off), acc);
      }
      vpu.vstore(ch.elrhs(d, a) + off, acc);
    }
  }
}

void p7_apply_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                     int n) {
  (void)ctx;
  for (int iv = off; iv < off + n; ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      for (int d = 0; d < kDim; ++d) {
        double acc = vpu.sload(ch.elrhs(d, a) + iv);
        for (int b = 0; b < kNodes; ++b) {
          acc = vpu.sfnma(vpu.sload(ch.visc(a, b) + iv),
                          vpu.sload(ch.elvel(d, b) + iv), acc);
        }
        vpu.sstore(ch.elrhs(d, a) + iv, acc);
      }
    }
  }
}

// semi-implicit: K = dtfac·M + (C + V)
void p7_block_vector(Vpu& vpu, ElementChunk& ch, int off, int n) {
  vpu.set_vl(n);
  const Vec dtf = vpu.vload(ch.dtfac() + off);
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      const Vec m = vpu.vmul(dtf, vpu.vload(ch.mass(a, b) + off));
      const Vec cv = vpu.vadd(vpu.vload(ch.conv(a, b) + off),
                              vpu.vload(ch.visc(a, b) + off));
      vpu.vstore(ch.block(a, b) + off, vpu.vadd(m, cv));
    }
  }
}

void p7_block_scalar(Vpu& vpu, ElementChunk& ch, int off, int n) {
  for (int iv = off; iv < off + n; ++iv) {
    const double dtf = vpu.sload(ch.dtfac() + iv);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        const double m = vpu.smul(dtf, vpu.sload(ch.mass(a, b) + iv));
        const double cv = vpu.sadd(vpu.sload(ch.conv(a, b) + iv),
                                   vpu.sload(ch.visc(a, b) + iv));
        vpu.sstore(ch.block(a, b) + iv, vpu.sadd(m, cv));
      }
    }
  }
}

}  // namespace

void phase6(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  const int vs = ch.vs();
  const int gs = detail::group_size(vpu, ch);
  for (int off = 0; off < vs; off += gs) {
    const int n = gs < vs - off ? gs : vs - off;
    for (int g = 0; g < kGauss; ++g) {
      if (plan.p6_dw.vectorize) {
        p6_dw_vector(vpu, ctx, ch, g, off, n);
      } else {
        p6_dw_scalar(vpu, ctx, ch, g, off, n);
      }
    }
    if (plan.p6_cab.vectorize) {
      p6_cab_vector(vpu, ctx, ch, off, n);
    } else {
      p6_cab_scalar(vpu, ctx, ch, off, n);
    }
    if (plan.p6_apply.vectorize) {
      p6_apply_vector(vpu, ctx, ch, off, n);
    } else {
      p6_apply_scalar(vpu, ctx, ch, off, n);
    }
  }
}

void phase7(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  const bool semi = ctx.cfg.scheme == fem::Scheme::kSemiImplicit;
  const int vs = ch.vs();
  const int gs = detail::group_size(vpu, ch);
  for (int off = 0; off < vs; off += gs) {
    const int n = gs < vs - off ? gs : vs - off;
    if (plan.p7_blk.vectorize) {
      p7_blk_vector(vpu, ctx, ch, off, n);
    } else {
      p7_blk_scalar(vpu, ctx, ch, off, n);
    }
    if (plan.p7_apply.vectorize) {
      p7_apply_vector(vpu, ctx, ch, off, n);
    } else {
      p7_apply_scalar(vpu, ctx, ch, off, n);
    }
    if (semi) {
      if (plan.p7_blk.vectorize) {
        p7_block_vector(vpu, ch, off, n);
      } else {
        p7_block_scalar(vpu, ch, off, n);
      }
    }
  }
}

}  // namespace vecfd::miniapp
