// vecfd::miniapp — the VECTOR_SIZE element-chunk workspace.
//
// Alya processes elements in packs of VECTOR_SIZE with every element-local
// array laid out structure-of-arrays, the element index (ivect) fastest.
// That layout is the whole point of the paper's IVEC2 optimization: it puts
// the long dimension innermost so that unit-stride vector instructions can
// cover it.  All plane accessors below return the base of a contiguous
// [vs]-long strip.
#pragma once

#include <cstdint>
#include <vector>

#include "fem/element.h"

namespace vecfd::miniapp {

class ElementChunk {
 public:
  explicit ElementChunk(int vector_size, bool with_matrix);

  int vs() const { return vs_; }
  int count() const { return count_; }
  int first() const { return first_; }
  bool with_matrix() const { return with_matrix_; }

  /// Re-target the workspace at a new chunk of elements (buffers reused).
  void reset(int first_element, int count);

  // ---- phase-1 outputs ---------------------------------------------------
  std::int32_t* lnods(int a) { return lnods_.data() + a * vs_; }
  double* dtfac() { return dtfac_.data(); }
  std::int32_t* valid() { return valid_.data(); }
  /// Element-type dispatch code computed by work A (Alya selects the
  /// shape-function tables with it; our single-type mesh always yields 0).
  std::int32_t* etype() { return etype_.data(); }
  double* elcod(int d, int a) {
    return elcod_.data() + (d * fem::kNodes + a) * vs_;
  }

  // ---- phase-2 outputs -----------------------------------------------------
  /// Current unknowns, dof-major: planes 0..2 velocity, plane 3 pressure.
  /// The dof-major layout makes VEC2's vl=4 strided store land exactly on
  /// the four planes of one node.
  double* elunk(int dof, int a) {
    return elunk_.data() + (dof * fem::kNodes + a) * vs_;
  }
  double* elvel(int d, int a) { return elunk(d, a); }
  double* elpre(int a) { return elunk(fem::kDim, a); }
  double* elvel_old(int d, int a) {
    return elvel_old_.data() + (d * fem::kNodes + a) * vs_;
  }

  // ---- phase-3 work -------------------------------------------------------
  double* jtmp(int i, int j) {
    return jtmp_.data() + (i * fem::kDim + j) * vs_;
  }
  double* itmp(int j, int d) {
    return itmp_.data() + (j * fem::kDim + d) * vs_;
  }
  double* gpcar(int g, int d, int a) {
    return gpcar_.data() +
           ((g * fem::kDim + d) * fem::kNodes + a) * vs_;
  }
  double* gpvol(int g) { return gpvol_.data() + g * vs_; }

  // ---- phase-4 outputs -------------------------------------------------------
  double* gpvel(int l, int g, int d) {
    return gpvel_.data() + ((l * fem::kGauss + g) * fem::kDim + d) * vs_;
  }
  double* gpadv(int g, int d) {
    return gpadv_.data() + (g * fem::kDim + d) * vs_;
  }
  double* gpgve(int g, int j, int d) {
    return gpgve_.data() + ((g * fem::kDim + j) * fem::kDim + d) * vs_;
  }
  double* gppre(int g) { return gppre_.data() + g * vs_; }

  // ---- phase-5 outputs ---------------------------------------------------------
  double* tau(int g) { return tau_.data() + g * vs_; }
  /// rt = (ρf + dtfac·u_old)·gpvol  (time-integration RHS × measure)
  double* gprhs(int g, int d) {
    return gprhs_.data() + (g * fem::kDim + d) * vs_;
  }
  /// pt = gppre·gpvol
  double* gppre_t(int g) { return gppre_t_.data() + g * vs_; }
  double* mass(int a, int b) {
    return mass_.data() + (a * fem::kNodes + b) * vs_;
  }

  // ---- phase-6/7 outputs ------------------------------------------------------
  double* dmat(int g, int a) {
    return dmat_.data() + (g * fem::kNodes + a) * vs_;
  }
  double* wmat(int g, int a) {
    return wmat_.data() + (g * fem::kNodes + a) * vs_;
  }
  double* conv(int a, int b) {
    return conv_.data() + (a * fem::kNodes + b) * vs_;
  }
  double* visc(int a, int b) {
    return visc_.data() + (a * fem::kNodes + b) * vs_;
  }
  double* block(int a, int b) {
    return block_.data() + (a * fem::kNodes + b) * vs_;
  }
  double* elrhs(int d, int a) {
    return elrhs_.data() + (d * fem::kNodes + a) * vs_;
  }

  /// Total workspace footprint in bytes (drives the Figure 9 / Table 6
  /// cache behaviour as VECTOR_SIZE grows).
  std::size_t footprint_bytes() const;

 private:
  int vs_ = 0;
  int count_ = 0;
  int first_ = 0;
  bool with_matrix_ = false;

  std::vector<std::int32_t> lnods_;
  std::vector<double> dtfac_;
  std::vector<std::int32_t> valid_;
  std::vector<std::int32_t> etype_;
  std::vector<double> elcod_;
  std::vector<double> elunk_;
  std::vector<double> elvel_old_;
  std::vector<double> jtmp_;
  std::vector<double> itmp_;
  std::vector<double> gpcar_;
  std::vector<double> gpvol_;
  std::vector<double> gpvel_;
  std::vector<double> gpadv_;
  std::vector<double> gpgve_;
  std::vector<double> gppre_;
  std::vector<double> tau_;
  std::vector<double> gprhs_;
  std::vector<double> gppre_t_;
  std::vector<double> mass_;
  std::vector<double> dmat_;
  std::vector<double> wmat_;
  std::vector<double> conv_;
  std::vector<double> visc_;
  std::vector<double> block_;
  std::vector<double> elrhs_;
};

}  // namespace vecfd::miniapp
