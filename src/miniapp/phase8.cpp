// Phase 8: validity check and scatter of the element contributions into the
// global right-hand side (and the global CSR matrix under the semi-implicit
// scheme).  Indexed stores with unprovable aliasing: never vectorized —
// and increasingly expensive as VECTOR_SIZE grows the chunk working set
// (the Figure 9 / Table 6 behaviour).
#include "miniapp/phases.h"

namespace vecfd::miniapp {

using fem::kDim;
using fem::kNodes;
using sim::Vpu;

void phase8(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  std::vector<double>& grhs = *ctx.global_rhs;
  solver::CsrMatrix* mat = ctx.global_matrix;

  for (int iv = 0; iv < ch.vs(); ++iv) {
    const std::int32_t ok = vpu.sload_i32(ch.valid() + iv);
    vpu.sarith(1);  // branch
    if (ok == 0) continue;

    for (int a = 0; a < kNodes; ++a) {
      const std::int32_t node = vpu.sload_i32(ch.lnods(a) + iv);
      vpu.sarith(1);  // row base address
      for (int d = 0; d < kDim; ++d) {
        const double v = vpu.sload(ch.elrhs(d, a) + iv);
        double* slot = &grhs[static_cast<std::size_t>(node) * kDim + d];
        const double r = vpu.sload(slot);
        vpu.sstore(slot, vpu.sadd(r, v));
      }
    }

    if (mat != nullptr) {
      for (int a = 0; a < kNodes; ++a) {
        const std::int32_t row = vpu.sload_i32(ch.lnods(a) + iv);
        for (int b = 0; b < kNodes; ++b) {
          const std::int32_t col = vpu.sload_i32(ch.lnods(b) + iv);
          const double k = vpu.sload(ch.block(a, b) + iv);
          const std::ptrdiff_t idx = mat->find(row, col);
          // model the CSR position lookup: rowptr load + short search
          vpu.sload_i32(&mat->rowptr()[static_cast<std::size_t>(row)]);
          vpu.sload_i32(&mat->cols()[static_cast<std::size_t>(idx)]);
          vpu.sarith(4);
          double* slot = &mat->vals()[static_cast<std::size_t>(idx)];
          const double cur = vpu.sload(slot);
          vpu.sstore(slot, vpu.sadd(cur, k));
        }
      }
    }
  }
}

}  // namespace vecfd::miniapp
