// vecfd::miniapp — versioned, CRC-guarded TimeLoop checkpoint/restart.
//
// ROADMAP item 2 wants campaigns to behave like a long-lived service, and
// a service must be able to snapshot a transient run mid-flight and replay
// it after a crash BIT-IDENTICALLY — fields, residual histories and every
// registered counter.  The numerics side is free: the cache model is
// tag-only (contents are always exact, mem/cache.h), so fields and Krylov
// histories never depend on machine state.  The counters are the hard
// part: they depend on cache warmth and on the canonical first-touch line
// renaming of mem/memory_hierarchy.h, which a fresh process cannot
// reproduce mid-stream.  The protocol therefore makes checkpointing a
// MEASURED EVENT with epoch semantics (DESIGN.md §10):
//
//   * with TimeLoopConfig::checkpoint_every = N, every N-th step boundary
//     captures the accumulated state below and then FLUSHES every memory
//     hierarchy (coordinator and shard Vpus alike) — caches invalidated,
//     canonical map forgotten;
//   * each epoch hence starts cold with an empty canonical map, so its
//     counter stream is a pure function of the (bit-identical) fields and
//     the config — a restarted process reproduces it exactly;
//   * checkpoint_every = 0 (the default) touches nothing: the historic
//     instruction stream, golden CSVs and BENCH baselines are bit-for-bit
//     unchanged.
//
// The serialized state is the VECFD_TIMELOOP_STATE registry below: like
// the counter registry (sim/counters.h) it is the single source of truth,
// and the vecfd-lint rule `checkpoint-fields` requires every registered
// field to appear in BOTH serialize_state() and deserialize_state(), so a
// field added to the struct cannot silently skip one direction and corrupt
// restarts.
//
// File format: an 8-byte magic+version header, the payload byte count, a
// CRC-32 of the payload, then the payload.  save_checkpoint() writes
// `<path>.tmp` and renames — an interrupted writer never leaves a
// truncated file under the real name, and `vecfd-run --resume` rejects
// leftover `.tmp` files loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "miniapp/time_loop.h"
#include "sim/counters.h"
#include "sim/machine_config.h"

namespace vecfd::miniapp {

// The TimeLoop state registry: X(field) per serialized field of
// TimeLoopCheckpoint, in serialization order.  serialize_state() and
// deserialize_state() must mention every entry (vecfd-lint rule
// `checkpoint-fields`); appending fields keeps old readers failing cleanly
// on the version byte rather than misparsing.
#define VECFD_TIMELOOP_STATE(X) \
  X(config_hash)                \
  X(next_step)                  \
  X(time)                       \
  X(unknowns)                   \
  X(unknowns_old)               \
  X(step_reports)               \
  X(total_counters)             \
  X(phase_counters)             \
  X(all_converged)              \
  X(pressure_makespan_cycles)

/// Full resumable TimeLoop state at an epoch boundary: both time levels of
/// the fields, the step cursor, every StepReport produced so far (with
/// residual histories), and the accumulated counters of ALL Vpus
/// (coordinator + shards, total and per phase).
struct TimeLoopCheckpoint {
  /// FNV-1a digest of the (scenario, mesh, config, machine) tuple that
  /// wrote the checkpoint (timeloop_config_hash).  restore() refuses a
  /// mismatch: resuming under different knobs would break the bit-identity
  /// contract silently.
  std::uint64_t config_hash = 0;
  std::int64_t next_step = 0;  ///< first step the resumed run executes
  double time = 0.0;           ///< simulated time at the boundary
  std::vector<double> unknowns;      ///< [node][kDofs], current level
  std::vector<double> unknowns_old;  ///< [node][kDofs], previous level
  std::vector<StepReport> step_reports;  ///< steps [0, next_step)
  sim::Counters total_counters;          ///< Σ all Vpus, run so far
  /// Per-phase counters 0..kNumInstrumentedPhases, Σ all Vpus.
  std::vector<sim::Counters> phase_counters;
  bool all_converged = true;
  /// Accumulated phase-10 critical-path cycles (ShardedCg makespan carry;
  /// the legacy path re-derives it from phase_counters).
  double pressure_makespan_cycles = 0.0;
};

/// On-disk format version (the byte after the magic).  Bump on any payload
/// layout change; load_checkpoint rejects other versions by name.
inline constexpr std::uint8_t kCheckpointVersion = 1;

/// Serialize @p c to the versioned payload (header excluded).  Every
/// registered field, in registry order.
std::vector<std::uint8_t> serialize_state(const TimeLoopCheckpoint& c);

/// Inverse of serialize_state.
/// @throws std::runtime_error on truncated payloads or a counter-registry
/// shape mismatch (a checkpoint from a different registry generation).
TimeLoopCheckpoint deserialize_state(const std::vector<std::uint8_t>& buf);

/// Write @p c to @p path atomically: serialize, frame with magic/version/
/// size/CRC-32, write `<path>.tmp`, rename.  @throws std::runtime_error on
/// I/O failure (the `.tmp` is removed best-effort).
void save_checkpoint(const std::string& path, const TimeLoopCheckpoint& c);

/// Read and verify a checkpoint file: magic, version, payload size and
/// CRC-32 must all match before deserialize_state runs.
/// @throws std::runtime_error naming the failure (missing file, foreign
/// magic, version skew, truncation, CRC mismatch).
TimeLoopCheckpoint load_checkpoint(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected) of @p data — the checkpoint frame
/// integrity check, exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// FNV-1a digest of everything the bit-identity contract depends on: the
/// scenario name, mesh shape, physics, the full TimeLoopConfig (including
/// checkpoint_every — the epoch cadence changes the counter stream) and
/// the machine model.  Campaign code computes it once per point and
/// threads it through save/restore opaquely.
std::uint64_t timeloop_config_hash(const std::string& scenario_name,
                                   const fem::Mesh& mesh,
                                   const TimeLoopConfig& cfg,
                                   const sim::MachineConfig& machine);

}  // namespace vecfd::miniapp
